// Coarsening ablation (paper §6, future work): "we are currently
// investigating the use of activity levels of communication to make better
// decisions while coarsening.  In addition, different schemes for
// coarsening and refinement are also being studied."
//
// Compares the paper's fanout coarsening against heavy-edge matching, each
// with and without activity weighting, on static quality AND on the actual
// Time Warp run statistics for s9234.

#include <cstdio>

#include "bench_common.hpp"
#include "logicsim/activity.hpp"
#include "multilevel/weights.hpp"
#include "partition/metrics.hpp"
#include "partition/multilevel_partitioner.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace pls;

  util::Cli cli("Coarsening ablation — fanout vs heavy-edge, ± activity");
  bench::add_common_flags(cli);
  cli.add_flag("k", "number of nodes", "8");
  cli.add_flag("circuit", "benchmark", "s9234");
  if (!cli.parse(argc, argv)) return 1;
  const bench::BenchConfig cfg = bench::config_from_cli(cli);
  bench::require_activity_off(cfg, "bench_coarsening_ablation");
  const auto k = static_cast<std::uint32_t>(bench::get_flag_u64(cli, "k", 1, 1024));
  const std::string name = cli.get("circuit");

  const circuit::Circuit c = bench::make_benchmark(name, cfg);

  // Shared activity profile from a sequential pre-simulation, mapped to
  // the work/traffic weights both multilevel pipelines consume.
  framework::DriverConfig base = bench::driver_config(cfg, "Multilevel", k);
  const logicsim::ActivityProfile activity =
      logicsim::profile_activity(c, base.model, cfg.end_time / 4);
  const multilevel::VertexTrafficWeights weights =
      multilevel::weights_from_activity(activity.work, activity.traffic);

  struct Variant {
    const char* label;
    partition::CoarsenScheme scheme;
    bool use_activity;
  };
  const Variant variants[] = {
      {"fanout", partition::CoarsenScheme::kFanout, false},
      {"fanout+activity", partition::CoarsenScheme::kFanout, true},
      {"heavy-edge", partition::CoarsenScheme::kHeavyEdge, false},
      {"heavy-edge+activity", partition::CoarsenScheme::kHeavyEdge, true},
  };

  util::AsciiTable table({"Scheme", "EdgeCut", "Imbalance", "Time(s)",
                          "Rollbacks", "AppMsgs"});
  util::CsvWriter csv(cfg.csv_dir + "/coarsening_ablation.csv",
                      {"circuit", "scheme", "k", "edge_cut", "imbalance",
                       "seconds", "rollbacks", "app_messages"});

  for (const Variant& v : variants) {
    framework::DriverConfig dc = bench::driver_config(cfg, "Multilevel", k);
    dc.multilevel.scheme = v.scheme;
    if (v.use_activity) dc.multilevel.weights = &weights;
    const framework::DriverResult res = framework::run_parallel(c, dc);
    table.add_row({v.label, std::to_string(res.edge_cut),
                   util::AsciiTable::num(res.imbalance, 3),
                   util::AsciiTable::num(res.run.wall_seconds),
                   std::to_string(res.run.totals.total_rollbacks()),
                   std::to_string(res.run.totals.inter_node_messages)});
    csv.row({name, v.label, std::to_string(k), std::to_string(res.edge_cut),
             util::AsciiTable::num(res.imbalance, 4),
             util::AsciiTable::num(res.run.wall_seconds, 4),
             std::to_string(res.run.totals.total_rollbacks()),
             std::to_string(res.run.totals.inter_node_messages)});
  }

  std::printf("Coarsening ablation on %s at k=%u\n%s", name.c_str(), k,
              table.render().c_str());
  std::printf("CSV: %s\n", csv.path().c_str());
  return 0;
}
