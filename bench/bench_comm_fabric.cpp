// Comm-fabric strong-scaling bench: wall time and channel traffic of an
// inter-node-heavy run at nodes = 2, 4, 8 with send coalescing off
// (per-message one-message batches — the old protocol's traffic shape)
// versus on (one Batch per destination per LTSF burst).
//
// The workload is deliberately communication-bound: a Random partition of
// a paper benchmark circuit maximizes the cut, so nearly every committed
// send crosses the channel — the regime the paper's fast-Ethernet testbed
// lived in and the one the coalescer targets.  Committed results are
// bit-identical between the two modes (tests/warped_comm_test.cpp and
// the kernel matrix prove it); this harness measures what the batching
// buys: batches/messages ratio and end-to-end wall time.

#include <cstdio>

#include "bench_common.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace pls;

  util::Cli cli("Comm fabric — coalesced vs per-message channel scaling");
  bench::add_common_flags(cli);
  cli.add_flag("max-nodes", "largest node count (sweep is 2,4,..,max)", "8");
  cli.add_flag("circuit", "benchmark to sweep", "s9234");
  cli.add_flag("strategy",
               "partitioning strategy (Random = max cut, the worst-case "
               "inter-node traffic the fabric must absorb)",
               "Random");
  if (!cli.parse(argc, argv)) return 1;
  const bench::BenchConfig cfg = bench::config_from_cli(cli);
  const auto max_nodes =
      static_cast<std::uint32_t>(bench::get_flag_u64(cli, "max-nodes", 2, 64));
  const std::string circuit_name = cli.get("circuit");
  const std::string strategy = cli.get("strategy");
  bench::require_activity_off(cfg, "bench_comm_fabric");

  const circuit::Circuit c = bench::make_benchmark(circuit_name, cfg);
  const auto mode = bench::throttle_modes(cfg).front();

  util::AsciiTable table({"Nodes", "Wall off (s)", "Wall on (s)", "Speedup",
                          "Msgs", "Batches", "Avg batch"});
  util::CsvWriter csv(cfg.csv_dir + "/comm_fabric.csv",
                      {"circuit", "strategy", "nodes", "coalesce",
                       "wall_seconds", "committed", "app_messages",
                       "batches", "batch_msgs", "avg_batch_msgs",
                       "max_batch_msgs", "rollbacks"});

  for (std::uint32_t nodes = 2; nodes <= max_nodes; nodes *= 2) {
    double wall[2] = {0.0, 0.0};
    std::uint64_t batches = 0;
    std::uint64_t batch_msgs = 0;
    for (const bool coalesce : {false, true}) {
      bench::BenchConfig cell_cfg = cfg;
      cell_cfg.coalesce = coalesce;
      const auto avg = bench::run_parallel_averaged(c, cell_cfg, strategy,
                                                    nodes, mode, "off");
      const auto& totals = avg.last.run.totals;
      wall[coalesce ? 1 : 0] = avg.wall_seconds;
      if (coalesce) {
        batches = totals.batches_sent;
        batch_msgs = totals.batch_msgs_sent;
      }
      const double avg_batch =
          totals.batches_sent > 0
              ? static_cast<double>(totals.batch_msgs_sent) /
                    static_cast<double>(totals.batches_sent)
              : 0.0;
      csv.row({circuit_name, strategy, std::to_string(nodes),
               coalesce ? "on" : "off",
               util::AsciiTable::num(avg.wall_seconds, 3),
               util::AsciiTable::num(avg.committed, 0),
               util::AsciiTable::num(avg.app_messages, 0),
               std::to_string(totals.batches_sent),
               std::to_string(totals.batch_msgs_sent),
               util::AsciiTable::num(avg_batch, 2),
               std::to_string(totals.max_batch_msgs),
               util::AsciiTable::num(avg.rollbacks, 0)});
    }
    table.add_row({std::to_string(nodes), util::AsciiTable::num(wall[0], 3),
                   util::AsciiTable::num(wall[1], 3),
                   util::AsciiTable::num(wall[1] > 0 ? wall[0] / wall[1] : 0.0,
                                         2),
                   std::to_string(batch_msgs), std::to_string(batches),
                   util::AsciiTable::num(
                       batches > 0 ? static_cast<double>(batch_msgs) /
                                         static_cast<double>(batches)
                                   : 0.0,
                       2)});
  }

  std::printf("Comm fabric — %s/%s coalesced vs per-message\n%s",
              circuit_name.c_str(), strategy.c_str(), table.render().c_str());
  std::printf("CSV: %s\n", csv.path().c_str());
  return 0;
}
