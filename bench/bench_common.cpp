#include "bench_common.hpp"

#include <algorithm>
#include <functional>

#include "circuit/generator.hpp"
#include "framework/registry.hpp"
#include "logicsim/lanes.hpp"
#include "obs/export.hpp"
#include "util/check.hpp"

namespace pls::bench {
namespace {

/// Split a comma-separated mode spec, dedup order-preserving; `resolve`
/// validates each token (failing fast on junk) and may rewrite it.
std::vector<std::string> split_modes(
    const std::string& flag, const std::string& spec,
    const std::function<std::string(const std::string&)>& resolve) {
  std::vector<std::string> modes;
  std::size_t start = 0;
  while (start <= spec.size()) {
    const std::size_t comma = spec.find(',', start);
    const std::string tok =
        spec.substr(start, comma == std::string::npos ? std::string::npos
                                                      : comma - start);
    const std::string mode = resolve(tok);
    if (std::find(modes.begin(), modes.end(), mode) == modes.end()) {
      modes.push_back(mode);
    }
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  PLS_CHECK_MSG(!modes.empty(), "--" << flag << ": empty mode list");
  return modes;
}

}  // namespace

void add_common_flags(util::Cli& cli) {
  cli.add_flag("scale", "circuit size multiplier (1.0 = paper sizes)", "1.0");
  cli.add_flag("end", "virtual-time horizon", "1200");
  cli.add_flag("repeats", "runs averaged per cell", "1");
  cli.add_flag("seed", "master seed", "2000");
  cli.add_flag("csv", "directory for CSV output", ".");
  cli.add_flag("event-cost-ns", "CPU cost per event batch", "2000");
  cli.add_flag("send-overhead-ns", "CPU cost per inter-node message",
               "1500");
  cli.add_flag("latency-ns", "inter-node delivery latency", "25000");
  cli.add_flag("window", "optimism window in virtual time (0 = unbounded)",
               "0");
  cli.add_flag("throttle",
               "optimism throttle mode(s): auto | adaptive | fixed | "
               "unlimited, comma-separated for mode columns",
               "auto");
  cli.add_flag("activity",
               "activity-guided partitioning mode(s): off | profile | "
               "warmup, comma-separated for unweighted-vs-activity columns",
               "off");
  cli.add_flag("repartition",
               "dynamic repartitioning mode(s): off | gvt, comma-separated "
               "for static-vs-adaptive columns",
               "off");
  cli.add_flag("drift",
               "shift the hot input cone at half the horizon (drifting "
               "stimulus for repartitioning experiments)",
               "false");
  cli.add_flag("rollback-budget",
               "adaptive throttle: target rolled-back/processed fraction",
               "0.2");
  cli.add_flag("batch", "LTSF batches per kernel poll", "8");
  cli.add_flag("coalesce",
               "per-destination send batching on the inter-node channel "
               "(false = flush every message as a one-message batch)",
               "true");
  cli.add_flag("gvt-us", "wall-clock microseconds between GVT rounds",
               "2000");
  cli.add_flag("lanes",
               "bit-parallel stimulus lanes per event word (1 = scalar "
               "engine, up to 64 Monte Carlo scenarios per run)",
               "1");
  cli.add_flag("stim-period", "virtual time between input vectors", "50");
  cli.add_flag("clock-period", "flip-flop clock period", "10");
  cli.add_flag("trace",
               "write Perfetto trace JSON here (sweep cells insert their "
               "label before the extension; empty = off)",
               "");
  cli.add_flag("metrics-interval",
               "metrics sampling interval in ms (0 = off, or 10 when "
               "--trace is set)",
               "0");
}

std::uint64_t get_flag_u64(const util::Cli& cli, const std::string& name,
                           std::uint64_t lo, std::uint64_t hi) {
  const std::int64_t raw = cli.get_int(name);
  PLS_CHECK_MSG(raw >= 0, "--" << name << " must be non-negative, got "
                                << raw);
  const auto v = static_cast<std::uint64_t>(raw);
  PLS_CHECK_MSG(v >= lo && v <= hi, "--" << name << " must be in ["
                                          << lo << ", " << hi << "], got "
                                          << v);
  return v;
}

BenchConfig config_from_cli(const util::Cli& cli) {
  BenchConfig cfg;
  cfg.scale = cli.get_double("scale");
  // Checked reads: every one of these lands in an unsigned config field, so
  // a negative (or absurdly large) value would otherwise wrap silently.
  cfg.end_time = get_flag_u64(cli, "end", 1, std::uint64_t{1} << 60);
  cfg.repeats =
      static_cast<std::uint32_t>(get_flag_u64(cli, "repeats", 1, 100000));
  cfg.seed = get_flag_u64(cli, "seed", 0, ~std::uint64_t{0} >> 1);
  cfg.csv_dir = cli.get("csv");
  cfg.event_cost_ns =
      get_flag_u64(cli, "event-cost-ns", 0, 1'000'000'000);
  cfg.send_overhead_ns =
      get_flag_u64(cli, "send-overhead-ns", 0, 1'000'000'000);
  cfg.latency_ns = get_flag_u64(cli, "latency-ns", 0, 10'000'000'000ull);
  cfg.optimism_window =
      get_flag_u64(cli, "window", 0, std::uint64_t{1} << 60);
  cfg.throttle = cli.get("throttle");
  cfg.activity = cli.get("activity");
  cfg.repartition = cli.get("repartition");
  cfg.drift = cli.get_bool("drift");
  cfg.rollback_budget = cli.get_double("rollback-budget");
  cfg.max_batches_per_poll =
      static_cast<std::uint32_t>(get_flag_u64(cli, "batch", 1, 1 << 20));
  cfg.coalesce = cli.get_bool("coalesce");
  // Capped well below the kernel's 30 s deadlock watchdog: a GVT interval
  // longer than the watchdog window guarantees a false stall abort.
  cfg.gvt_interval_us = get_flag_u64(cli, "gvt-us", 1, 10'000'000);
  cfg.lanes = static_cast<std::uint32_t>(
      get_flag_u64(cli, "lanes", 1, logicsim::kMaxLanes));
  cfg.stim_period = get_flag_u64(cli, "stim-period", 1, 1u << 30);
  cfg.clock_period = get_flag_u64(cli, "clock-period", 1, 1u << 30);
  cfg.trace_path = cli.get("trace");
  cfg.metrics_interval_ms = get_flag_u64(cli, "metrics-interval", 0, 60'000);
  PLS_CHECK_MSG(cfg.scale > 0.0 && cfg.scale <= 4.0,
                "--scale must be in (0, 4]");
  PLS_CHECK_MSG(cfg.rollback_budget > 0.0 && cfg.rollback_budget < 1.0,
                "--rollback-budget must be in (0, 1)");
  throttle_modes(cfg);     // fail fast on a malformed --throttle spec
  activity_modes(cfg);     // ... and on a malformed --activity spec
  repartition_modes(cfg);  // ... and on a malformed --repartition spec
  return cfg;
}

std::vector<std::string> activity_modes(const BenchConfig& cfg) {
  return split_modes("activity", cfg.activity, [](const std::string& tok) {
    PLS_CHECK_MSG(tok == "off" || tok == "profile" || tok == "warmup",
                  "--activity: unknown mode '"
                      << tok << "' (want off|profile|warmup)");
    return tok;
  });
}

std::vector<std::string> repartition_modes(const BenchConfig& cfg) {
  return split_modes(
      "repartition", cfg.repartition, [](const std::string& tok) {
        PLS_CHECK_MSG(tok == "off" || tok == "gvt",
                      "--repartition: unknown mode '" << tok
                                                      << "' (want off|gvt)");
        return tok;
      });
}

void apply_repartition(framework::DriverConfig& dc, const std::string& mode) {
  // Every 4 completed GVT rounds: frequent enough to track a mid-run
  // drift, coarse enough that the incremental refinement and migrations
  // amortize over real progress.
  dc.repartition_interval = mode == "gvt" ? 4 : 0;
}

void require_activity_off(const BenchConfig& cfg, const char* bench_name) {
  PLS_CHECK_MSG(cfg.activity == "off",
                bench_name << " builds its own weighting variants and does "
                              "not sweep --activity (got '"
                           << cfg.activity
                           << "'); use bench_partition_quality or the "
                              "fig4/fig5/fig6/table2 harnesses instead");
}

void apply_activity(framework::DriverConfig& dc, const std::string& mode) {
  if (mode == "off") {
    dc.use_activity = false;
    return;
  }
  dc.use_activity = true;
  dc.activity_source = mode == "warmup"
                           ? framework::DriverConfig::ActivitySource::kWarmup
                           : framework::DriverConfig::ActivitySource::kProfile;
}

std::vector<SweepCell> sweep_cells(const BenchConfig& cfg) {
  const auto tmodes = throttle_modes(cfg);
  const auto amodes = activity_modes(cfg);
  const auto rmodes = repartition_modes(cfg);
  std::vector<SweepCell> cells;
  for (const auto& rep : rmodes) {
    for (const auto& act : amodes) {
      for (const auto tmode : tmodes) {
        for (const auto& strategy : strategies()) {
          const bool weighted = framework::strategy_consumes_weights(strategy);
          if (act != "off" && !weighted) continue;
          if (rep != "off" && !weighted) continue;
          SweepCell cell{tmode, act, strategy, rep, strategy};
          if (tmodes.size() > 1) {
            cell.label += std::string("@") + warped::to_string(tmode);
          }
          if (amodes.size() > 1 && act != "off") cell.label += "+" + act;
          if (rmodes.size() > 1 && rep != "off") cell.label += "+repart";
          cells.push_back(std::move(cell));
        }
      }
    }
  }
  return cells;
}

std::vector<warped::ThrottleMode> throttle_modes(const BenchConfig& cfg) {
  const auto names =
      split_modes("throttle", cfg.throttle, [&](const std::string& tok) {
        warped::ThrottleMode mode;
        if (tok == "auto") {
          // Historical semantics: --window N used to mean a fixed window.
          mode = cfg.optimism_window > 0 ? warped::ThrottleMode::kFixed
                                         : warped::ThrottleMode::kAdaptive;
        } else {
          PLS_CHECK_MSG(warped::parse_throttle_mode(tok, &mode),
                        "--throttle: unknown mode '"
                            << tok
                            << "' (want auto|adaptive|fixed|unlimited)");
        }
        return std::string(warped::to_string(mode));
      });
  std::vector<warped::ThrottleMode> modes;
  for (const auto& name : names) {
    warped::ThrottleMode mode;
    PLS_CHECK(warped::parse_throttle_mode(name, &mode));
    modes.push_back(mode);
  }
  return modes;
}


circuit::Circuit make_benchmark(const std::string& name,
                                const BenchConfig& cfg) {
  circuit::GeneratorSpec spec = circuit::iscas_spec(name, cfg.seed);
  if (cfg.scale != 1.0) {
    auto scaled = [&](std::size_t n) {
      return std::max<std::size_t>(
          4, static_cast<std::size_t>(static_cast<double>(n) * cfg.scale));
    };
    spec.num_comb_gates = scaled(spec.num_comb_gates);
    spec.num_dffs = scaled(spec.num_dffs);
    spec.num_inputs = std::max<std::size_t>(4, spec.num_inputs);
    spec.num_outputs =
        std::min(spec.num_outputs, spec.num_comb_gates / 4 + 1);
  }
  return circuit::generate(spec);
}

const std::vector<std::string>& strategies() {
  // The registry's listing is already in the paper's presentation order
  // (plus the hypergraph partitioner); sharing it means a strategy added
  // there automatically appears in every bench harness.
  return framework::partitioner_names();
}

framework::DriverConfig driver_config(const BenchConfig& cfg,
                                      const std::string& partitioner,
                                      std::uint32_t nodes) {
  framework::DriverConfig dc;
  dc.partitioner = partitioner;
  dc.num_nodes = nodes;
  dc.seed = cfg.seed;
  dc.end_time = cfg.end_time;
  dc.event_cost_ns = cfg.event_cost_ns;
  dc.send_overhead_ns = cfg.send_overhead_ns;
  dc.latency_ns = cfg.latency_ns;
  dc.throttle.mode = throttle_modes(cfg).front();
  dc.throttle.target_rollback_fraction = cfg.rollback_budget;
  dc.optimism_window = cfg.optimism_window;
  dc.max_batches_per_poll = cfg.max_batches_per_poll;
  dc.coalesce = cfg.coalesce;
  dc.gvt_interval_us = cfg.gvt_interval_us;
  dc.lanes = cfg.lanes;
  dc.model.stim_period = cfg.stim_period;
  dc.model.clock_period = cfg.clock_period;
  dc.model.clock_phase = cfg.clock_period / 2;
  // Drifting stimulus: the hot input cone shifts at half the horizon.
  // Applied here so the sequential reference sees the identical workload.
  dc.model.stim_drift_at = cfg.drift ? cfg.end_time / 2 : 0;
  dc.max_live_entries_per_node = cfg.max_live_entries_per_node;
  dc.obs.trace = !cfg.trace_path.empty();
  dc.obs.metrics_interval_us = cfg.metrics_interval_ms * 1000;
  if (dc.obs.trace && dc.obs.metrics_interval_us == 0) {
    dc.obs.metrics_interval_us = 10'000;  // tracing implies a 10 ms sampler
  }
  // --activity is deliberately NOT applied here: partition-only and
  // ablation callers build their own weighting, and silently activity-
  // weighting their baseline rows would corrupt the comparison.  Sweeping
  // callers go through apply_activity / run_parallel_averaged per cell.
  return dc;
}

AveragedRun run_parallel_averaged(const circuit::Circuit& c,
                                  const BenchConfig& cfg,
                                  const std::string& partitioner,
                                  std::uint32_t nodes,
                                  warped::ThrottleMode mode,
                                  const std::string& activity_mode,
                                  const std::string& repartition_mode) {
  AveragedRun avg;
  framework::DriverConfig base = driver_config(cfg, partitioner, nodes);
  base.throttle.mode = mode;
  apply_activity(base, activity_mode);
  apply_repartition(base, repartition_mode);
  for (std::uint32_t r = 0; r < cfg.repeats; ++r) {
    framework::DriverConfig dc = base;
    dc.seed = cfg.seed + r;  // paper: repeated five times, averaged
    framework::DriverResult res = framework::run_parallel(c, dc);
    avg.wall_seconds += res.run.wall_seconds;
    avg.app_messages +=
        static_cast<double>(res.run.totals.inter_node_messages);
    avg.rollbacks += static_cast<double>(res.run.totals.total_rollbacks());
    avg.committed += static_cast<double>(res.run.totals.events_committed);
    avg.anti_messages +=
        static_cast<double>(res.run.totals.anti_messages_sent);
    avg.events_processed +=
        static_cast<double>(res.run.totals.events_processed);
    avg.events_rolled_back +=
        static_cast<double>(res.run.totals.events_rolled_back);
    avg.throttle_shrinks +=
        static_cast<double>(res.run.totals.throttle_shrinks);
    avg.throttle_grows +=
        static_cast<double>(res.run.totals.throttle_grows);
    avg.lps_migrated += static_cast<double>(res.lps_migrated);
    avg.repartitions += static_cast<double>(res.run.repartitions);
    for (const auto& lp : res.run.per_lp) {
      avg.committed_transitions +=
          static_cast<double>(lp.sends_committed);
    }
    avg.out_of_memory |= res.run.out_of_memory;
    avg.last = std::move(res);
  }
  const double n = static_cast<double>(cfg.repeats);
  avg.wall_seconds /= n;
  avg.app_messages /= n;
  avg.rollbacks /= n;
  avg.committed /= n;
  avg.anti_messages /= n;
  avg.events_processed /= n;
  avg.events_rolled_back /= n;
  avg.throttle_shrinks /= n;
  avg.throttle_grows /= n;
  avg.lps_migrated /= n;
  avg.repartitions /= n;
  avg.committed_transitions /= n;
  export_obs_artifacts(cfg, avg.last,
                       partitioner + "_" + warped::to_string(mode) +
                           (activity_mode != "off" ? "_" + activity_mode
                                                   : std::string()) +
                           (repartition_mode != "off" ? "_rep"
                                                      : std::string()) +
                           "_n" + std::to_string(nodes));
  return avg;
}

void export_obs_artifacts(const BenchConfig& cfg,
                          const framework::DriverResult& res,
                          const std::string& cell_label) {
  if (cfg.trace_path.empty() || res.obs == nullptr) return;
  std::string label = cell_label;
  for (char& ch : label) {
    const bool ok = (ch >= 'a' && ch <= 'z') || (ch >= 'A' && ch <= 'Z') ||
                    (ch >= '0' && ch <= '9') || ch == '_' || ch == '-';
    if (!ok) ch = '_';
  }
  // Insert the cell label before the extension (after the last '.' in the
  // file name, not in a directory component).
  std::string path = cfg.trace_path;
  const std::size_t slash = path.find_last_of('/');
  const std::size_t dot = path.find_last_of('.');
  if (dot != std::string::npos &&
      (slash == std::string::npos || dot > slash)) {
    path.insert(dot, "." + label);
  } else {
    path += "." + label;
  }
  obs::write_perfetto_trace_file(path, *res.obs);
  obs::write_metrics_csv_file(path + ".metrics.csv", *res.obs);
}

double run_sequential_averaged(const circuit::Circuit& c,
                               const BenchConfig& cfg) {
  double total = 0.0;
  for (std::uint32_t r = 0; r < cfg.repeats; ++r) {
    framework::DriverConfig dc = driver_config(cfg, "Multilevel", 1);
    dc.seed = cfg.seed + r;
    total += framework::run_sequential(c, dc).wall_seconds;
  }
  return total / static_cast<double>(cfg.repeats);
}

}  // namespace pls::bench
