#include "bench_common.hpp"

#include <algorithm>

#include "circuit/generator.hpp"
#include "framework/registry.hpp"
#include "util/check.hpp"

namespace pls::bench {

void add_common_flags(util::Cli& cli) {
  cli.add_flag("scale", "circuit size multiplier (1.0 = paper sizes)", "1.0");
  cli.add_flag("end", "virtual-time horizon", "1200");
  cli.add_flag("repeats", "runs averaged per cell", "1");
  cli.add_flag("seed", "master seed", "2000");
  cli.add_flag("csv", "directory for CSV output", ".");
  cli.add_flag("event-cost-ns", "CPU cost per event batch", "2000");
  cli.add_flag("send-overhead-ns", "CPU cost per inter-node message",
               "1500");
  cli.add_flag("latency-ns", "inter-node delivery latency", "25000");
  cli.add_flag("window", "optimism window in virtual time (0 = unbounded)",
               "0");
  cli.add_flag("gvt-us", "wall-clock microseconds between GVT rounds",
               "2000");
  cli.add_flag("stim-period", "virtual time between input vectors", "50");
  cli.add_flag("clock-period", "flip-flop clock period", "10");
}

BenchConfig config_from_cli(const util::Cli& cli) {
  BenchConfig cfg;
  cfg.scale = cli.get_double("scale");
  cfg.end_time = static_cast<warped::SimTime>(cli.get_int("end"));
  cfg.repeats = static_cast<std::uint32_t>(cli.get_int("repeats"));
  cfg.seed = static_cast<std::uint64_t>(cli.get_int("seed"));
  cfg.csv_dir = cli.get("csv");
  cfg.event_cost_ns = static_cast<std::uint64_t>(cli.get_int("event-cost-ns"));
  cfg.send_overhead_ns =
      static_cast<std::uint64_t>(cli.get_int("send-overhead-ns"));
  cfg.latency_ns = static_cast<std::uint64_t>(cli.get_int("latency-ns"));
  cfg.optimism_window = static_cast<std::uint64_t>(cli.get_int("window"));
  cfg.gvt_interval_us = static_cast<std::uint64_t>(cli.get_int("gvt-us"));
  cfg.stim_period = static_cast<warped::SimTime>(cli.get_int("stim-period"));
  cfg.clock_period =
      static_cast<warped::SimTime>(cli.get_int("clock-period"));
  PLS_CHECK_MSG(cfg.scale > 0.0 && cfg.scale <= 4.0,
                "--scale must be in (0, 4]");
  PLS_CHECK_MSG(cfg.repeats >= 1, "--repeats must be >= 1");
  return cfg;
}

circuit::Circuit make_benchmark(const std::string& name,
                                const BenchConfig& cfg) {
  circuit::GeneratorSpec spec = circuit::iscas_spec(name, cfg.seed);
  if (cfg.scale != 1.0) {
    auto scaled = [&](std::size_t n) {
      return std::max<std::size_t>(
          4, static_cast<std::size_t>(static_cast<double>(n) * cfg.scale));
    };
    spec.num_comb_gates = scaled(spec.num_comb_gates);
    spec.num_dffs = scaled(spec.num_dffs);
    spec.num_inputs = std::max<std::size_t>(4, spec.num_inputs);
    spec.num_outputs =
        std::min(spec.num_outputs, spec.num_comb_gates / 4 + 1);
  }
  return circuit::generate(spec);
}

const std::vector<std::string>& strategies() {
  // The registry's listing is already in the paper's presentation order
  // (plus the hypergraph partitioner); sharing it means a strategy added
  // there automatically appears in every bench harness.
  return framework::partitioner_names();
}

framework::DriverConfig driver_config(const BenchConfig& cfg,
                                      const std::string& partitioner,
                                      std::uint32_t nodes) {
  framework::DriverConfig dc;
  dc.partitioner = partitioner;
  dc.num_nodes = nodes;
  dc.seed = cfg.seed;
  dc.end_time = cfg.end_time;
  dc.event_cost_ns = cfg.event_cost_ns;
  dc.send_overhead_ns = cfg.send_overhead_ns;
  dc.latency_ns = cfg.latency_ns;
  dc.optimism_window = cfg.optimism_window;
  dc.gvt_interval_us = cfg.gvt_interval_us;
  dc.model.stim_period = cfg.stim_period;
  dc.model.clock_period = cfg.clock_period;
  dc.model.clock_phase = cfg.clock_period / 2;
  dc.max_live_entries_per_node = cfg.max_live_entries_per_node;
  return dc;
}

AveragedRun run_parallel_averaged(const circuit::Circuit& c,
                                  const BenchConfig& cfg,
                                  const std::string& partitioner,
                                  std::uint32_t nodes) {
  AveragedRun avg;
  for (std::uint32_t r = 0; r < cfg.repeats; ++r) {
    framework::DriverConfig dc = driver_config(cfg, partitioner, nodes);
    dc.seed = cfg.seed + r;  // paper: repeated five times, averaged
    framework::DriverResult res = framework::run_parallel(c, dc);
    avg.wall_seconds += res.run.wall_seconds;
    avg.app_messages +=
        static_cast<double>(res.run.totals.inter_node_messages);
    avg.rollbacks += static_cast<double>(res.run.totals.total_rollbacks());
    avg.committed += static_cast<double>(res.run.totals.events_committed);
    avg.anti_messages +=
        static_cast<double>(res.run.totals.anti_messages_sent);
    avg.out_of_memory |= res.run.out_of_memory;
    avg.last = std::move(res);
  }
  const double n = static_cast<double>(cfg.repeats);
  avg.wall_seconds /= n;
  avg.app_messages /= n;
  avg.rollbacks /= n;
  avg.committed /= n;
  avg.anti_messages /= n;
  return avg;
}

double run_sequential_averaged(const circuit::Circuit& c,
                               const BenchConfig& cfg) {
  double total = 0.0;
  for (std::uint32_t r = 0; r < cfg.repeats; ++r) {
    framework::DriverConfig dc = driver_config(cfg, "Multilevel", 1);
    dc.seed = cfg.seed + r;
    total += framework::run_sequential(c, dc).wall_seconds;
  }
  return total / static_cast<double>(cfg.repeats);
}

}  // namespace pls::bench
