#pragma once
// Shared infrastructure for the paper-reproduction harnesses.
//
// Every table/figure binary uses the same calibrated "modeled NOW"
// configuration (DESIGN.md §3.2) and the same circuit construction, so the
// numbers across tables and figures are mutually consistent, exactly as
// they were produced by one testbed in the paper.
//
// Common flags (all binaries):
//   --scale S     shrink circuits to S × their published size (default 1.0;
//                 use 0.25 for a quick smoke run)
//   --end T       virtual-time horizon (default 1200)
//   --repeats N   runs averaged per cell (paper used 5; default 1 here)
//   --seed X      master seed
//   --csv DIR     directory for CSV output (default ".")

#include <cstdint>
#include <string>
#include <vector>

#include "circuit/circuit.hpp"
#include "framework/driver.hpp"
#include "util/cli.hpp"

namespace pls::bench {

struct BenchConfig {
  double scale = 1.0;
  warped::SimTime end_time = 1200;
  std::uint32_t repeats = 1;
  std::uint64_t seed = 2000;
  std::string csv_dir = ".";

  // Modeled-testbed calibration: event grain ≈ 2 µs (generated VHDL process
  // execution), message overhead ≈ 1.5 µs, wire latency ≈ 25 µs — the
  // fast-Ethernet regime where one cut signal costs ~a dozen event grains.
  std::uint64_t event_cost_ns = 2000;
  std::uint64_t send_overhead_ns = 1500;
  std::uint64_t latency_ns = 25000;

  /// Optimism window in virtual-time units (0 = unbounded Time Warp);
  /// see KernelConfig::optimism_window.
  std::uint64_t optimism_window = 0;

  /// Throttle mode spec from --throttle: "auto" (fixed when --window > 0,
  /// adaptive otherwise, preserving the historical --window semantics) or
  /// any comma-separated list of adaptive|fixed|unlimited — benches with
  /// throttle-mode columns sweep the list.
  std::string throttle = "auto";
  /// Activity-guided partitioning spec from --activity: comma-separated
  /// list of off|profile|warmup (see DriverConfig::use_activity /
  /// activity_source).  Benches with activity column groups sweep the
  /// list; non-"off" modes only apply to the multilevel strategies.
  std::string activity = "off";
  /// Dynamic repartitioning spec from --repartition: comma-separated list
  /// of off|gvt.  "gvt" turns on GVT-epoch repartitioning with live LP
  /// migration (DriverConfig::repartition_interval); like --activity it
  /// only applies to the weight-consuming multilevel strategies, and
  /// benches with static-vs-adaptive column groups sweep the list.
  std::string repartition = "off";
  /// Drifting stimulus (--drift): shift the hot input cone at half the
  /// horizon (ModelOptions::stim_drift_at = end_time / 2), the workload
  /// any static partition ages under and dynamic repartitioning tracks.
  bool drift = false;
  /// Target rollback fraction for the adaptive controller.
  double rollback_budget = 0.20;
  /// LTSF batches per kernel main-loop iteration.
  std::uint32_t max_batches_per_poll = 8;

  /// Send coalescing (--coalesce, default on): per-destination batching of
  /// inter-node messages (DriverConfig::coalesce).  Committed results are
  /// bit-identical either way — the flag exists for before/after comm
  /// benches, not correctness.
  bool coalesce = true;

  /// Wall-clock microseconds between GVT rounds.
  std::uint64_t gvt_interval_us = 2000;

  /// Gate-level model timing (see logicsim::ModelOptions).
  warped::SimTime stim_period = 50;
  warped::SimTime clock_period = 10;

  /// Bit-parallel stimulus lanes (--lanes, 1-64): 1 runs the classic
  /// scalar engine; N > 1 runs N Monte Carlo scenarios per event through
  /// the batched word-wise engine (DriverConfig::lanes).  Throughput
  /// columns then report events/sec alongside committed lane
  /// transitions/sec, the work metric that scales with N.
  std::uint32_t lanes = 1;

  /// Per-node live-entry cap (0 = unlimited); emulates the paper's 128 MB
  /// workstations for the Table 2 out-of-memory cell.
  std::size_t max_live_entries_per_node = 0;

  /// Observability (--trace / --metrics-interval): when trace_path is
  /// non-empty every measured parallel run records a kernel trace and the
  /// last repeat of each sweep cell is exported as Perfetto JSON (the cell
  /// label is inserted before the extension) plus a metrics CSV next to
  /// it.  metrics_interval_ms sizes the background sampler cadence; 0
  /// with tracing on defaults to 10 ms, 0 with tracing off disables obs.
  std::string trace_path;
  std::uint64_t metrics_interval_ms = 0;
};

/// Register the common flags on a Cli.
void add_common_flags(util::Cli& cli);

/// Extract a BenchConfig after cli.parse().
BenchConfig config_from_cli(const util::Cli& cli);

/// Checked integer flag read: rejects values outside [lo, hi] with a clear
/// message instead of letting negatives / overlarge values silently wrap
/// through the unsigned config casts.
std::uint64_t get_flag_u64(const util::Cli& cli, const std::string& name,
                           std::uint64_t lo, std::uint64_t hi);

/// Resolve cfg.throttle into concrete kernel modes ("auto" expands using
/// cfg.optimism_window; a comma-separated list expands in order, deduped).
std::vector<warped::ThrottleMode> throttle_modes(const BenchConfig& cfg);

/// Resolve cfg.activity into concrete driver modes ("off" / "profile" /
/// "warmup"), deduped, order-preserving; rejects unknown tokens.
std::vector<std::string> activity_modes(const BenchConfig& cfg);

/// Resolve cfg.repartition into concrete modes ("off" / "gvt"), deduped,
/// order-preserving; rejects unknown tokens.
std::vector<std::string> repartition_modes(const BenchConfig& cfg);

/// Configure one repartition mode on a driver config ("gvt" = repartition
/// every 4 completed GVT rounds; "off" = static).
void apply_repartition(framework::DriverConfig& dc, const std::string& mode);

/// Fail fast unless --activity is plain "off" — for benches that build
/// their own weighting variants (the ablations) and would otherwise
/// silently ignore or corrupt the flag.
void require_activity_off(const BenchConfig& cfg, const char* bench_name);

/// Configure one activity mode on a driver config.
void apply_activity(framework::DriverConfig& dc, const std::string& mode);

/// One cell of a (throttle × activity × strategy) sweep.  Activity modes
/// other than "off" only pair with the weight-consuming strategies, so a
/// sweep stays honest: no silently-ignored use_activity cells.
struct SweepCell {
  warped::ThrottleMode throttle;
  std::string activity;
  std::string strategy;
  std::string repartition = "off";
  /// "Strategy[@throttle][+activity][+repart]" column header
  std::string label;
};

/// Cross product of --throttle, --activity and --repartition with the
/// per-mode strategy sets; suffixes appear in labels only for dimensions
/// actually swept.
std::vector<SweepCell> sweep_cells(const BenchConfig& cfg);

/// The paper's three benchmarks, scaled.  scale=1 reproduces Table 1's
/// exact interface counts.
circuit::Circuit make_benchmark(const std::string& name,
                                const BenchConfig& cfg);

/// The paper's six strategies in presentation order, plus "MultilevelHG"
/// (the native hypergraph partitioner) for head-to-head comparison.
const std::vector<std::string>& strategies();

/// Driver config preset for one parallel run.  Resolves a multi-mode
/// --throttle list to its FIRST mode and leaves --activity off; sweeping
/// benches override both per SweepCell (via run_parallel_averaged /
/// apply_activity), and ablation-style benches that cannot honor
/// --activity fail fast through require_activity_off.
framework::DriverConfig driver_config(const BenchConfig& cfg,
                                      const std::string& partitioner,
                                      std::uint32_t nodes);

/// Averaged parallel run (repeats > 1 reruns with distinct stimulus seeds,
/// like the paper's five-repetition averages).
struct AveragedRun {
  double wall_seconds = 0.0;
  double app_messages = 0.0;
  double rollbacks = 0.0;
  double committed = 0.0;
  double anti_messages = 0.0;
  double events_processed = 0.0;
  double events_rolled_back = 0.0;
  double throttle_shrinks = 0.0;
  double throttle_grows = 0.0;
  double lps_migrated = 0.0;   ///< LPs live-migrated (dynamic repartitioning)
  double repartitions = 0.0;   ///< migration plans adopted
  /// Committed lane transitions (popcount-weighted sends): with --lanes N
  /// one committed event carries up to N of these, so transitions/sec is
  /// the batching speedup metric.
  double committed_transitions = 0.0;
  bool out_of_memory = false;
  framework::DriverResult last;  ///< static metrics of the last repeat

  /// events_rolled_back / events_processed — the wasted-work ratio the
  /// adaptive throttle targets (0 when nothing was processed).
  double rollback_fraction() const noexcept {
    return events_processed > 0 ? events_rolled_back / events_processed : 0.0;
  }
};

/// Every sweeping bench names its cell explicitly (one call per
/// SweepCell: throttle mode + activity mode + strategy).
AveragedRun run_parallel_averaged(const circuit::Circuit& c,
                                  const BenchConfig& cfg,
                                  const std::string& partitioner,
                                  std::uint32_t nodes,
                                  warped::ThrottleMode mode,
                                  const std::string& activity_mode,
                                  const std::string& repartition_mode = "off");

/// Averaged sequential reference run.
double run_sequential_averaged(const circuit::Circuit& c,
                               const BenchConfig& cfg);

/// Export a finished run's obs artifacts (no-op when cfg.trace_path is
/// empty or the run carried no session): Perfetto trace JSON at
/// cfg.trace_path with `.{sanitized cell_label}` inserted before the
/// extension, and the metrics series at `<that path>.metrics.csv`.
void export_obs_artifacts(const BenchConfig& cfg,
                          const framework::DriverResult& res,
                          const std::string& cell_label);

}  // namespace pls::bench
