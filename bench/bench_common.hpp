#pragma once
// Shared infrastructure for the paper-reproduction harnesses.
//
// Every table/figure binary uses the same calibrated "modeled NOW"
// configuration (DESIGN.md §3.2) and the same circuit construction, so the
// numbers across tables and figures are mutually consistent, exactly as
// they were produced by one testbed in the paper.
//
// Common flags (all binaries):
//   --scale S     shrink circuits to S × their published size (default 1.0;
//                 use 0.25 for a quick smoke run)
//   --end T       virtual-time horizon (default 1200)
//   --repeats N   runs averaged per cell (paper used 5; default 1 here)
//   --seed X      master seed
//   --csv DIR     directory for CSV output (default ".")

#include <cstdint>
#include <string>
#include <vector>

#include "circuit/circuit.hpp"
#include "framework/driver.hpp"
#include "util/cli.hpp"

namespace pls::bench {

struct BenchConfig {
  double scale = 1.0;
  warped::SimTime end_time = 1200;
  std::uint32_t repeats = 1;
  std::uint64_t seed = 2000;
  std::string csv_dir = ".";

  // Modeled-testbed calibration: event grain ≈ 2 µs (generated VHDL process
  // execution), message overhead ≈ 1.5 µs, wire latency ≈ 25 µs — the
  // fast-Ethernet regime where one cut signal costs ~a dozen event grains.
  std::uint64_t event_cost_ns = 2000;
  std::uint64_t send_overhead_ns = 1500;
  std::uint64_t latency_ns = 25000;

  /// Optimism window in virtual-time units (0 = unbounded Time Warp);
  /// see KernelConfig::optimism_window.
  std::uint64_t optimism_window = 0;

  /// Wall-clock microseconds between GVT rounds.
  std::uint64_t gvt_interval_us = 2000;

  /// Gate-level model timing (see logicsim::ModelOptions).
  warped::SimTime stim_period = 50;
  warped::SimTime clock_period = 10;

  /// Per-node live-entry cap (0 = unlimited); emulates the paper's 128 MB
  /// workstations for the Table 2 out-of-memory cell.
  std::size_t max_live_entries_per_node = 0;
};

/// Register the common flags on a Cli.
void add_common_flags(util::Cli& cli);

/// Extract a BenchConfig after cli.parse().
BenchConfig config_from_cli(const util::Cli& cli);

/// The paper's three benchmarks, scaled.  scale=1 reproduces Table 1's
/// exact interface counts.
circuit::Circuit make_benchmark(const std::string& name,
                                const BenchConfig& cfg);

/// The paper's six strategies in presentation order, plus "MultilevelHG"
/// (the native hypergraph partitioner) for head-to-head comparison.
const std::vector<std::string>& strategies();

/// Driver config preset for one parallel run.
framework::DriverConfig driver_config(const BenchConfig& cfg,
                                      const std::string& partitioner,
                                      std::uint32_t nodes);

/// Averaged parallel run (repeats > 1 reruns with distinct stimulus seeds,
/// like the paper's five-repetition averages).
struct AveragedRun {
  double wall_seconds = 0.0;
  double app_messages = 0.0;
  double rollbacks = 0.0;
  double committed = 0.0;
  double anti_messages = 0.0;
  bool out_of_memory = false;
  framework::DriverResult last;  ///< static metrics of the last repeat
};

AveragedRun run_parallel_averaged(const circuit::Circuit& c,
                                  const BenchConfig& cfg,
                                  const std::string& partitioner,
                                  std::uint32_t nodes);

/// Averaged sequential reference run.
double run_sequential_averaged(const circuit::Circuit& c,
                               const BenchConfig& cfg);

}  // namespace pls::bench
