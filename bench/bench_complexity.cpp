// Verifies the paper's complexity claim (§1/§6): "The complexity of the
// multilevel algorithm is O(N_E) … making the multilevel partitioning
// technique a fast linear time heuristic.  Since the multilevel technique
// is a linear time heuristic, it can be easily scaled to partition for a
// large number of processors."
//
// The harness sweeps circuit sizes, times the full three-phase pipeline and
// reports ns per edge (flat ⇒ linear), plus a sweep over k showing the
// near-independence of partition count.

#include <cstdio>

#include "bench_common.hpp"
#include "circuit/generator.hpp"
#include "partition/multilevel_partitioner.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

int main(int argc, char** argv) {
  using namespace pls;

  util::Cli cli("Complexity — multilevel partition time vs circuit size");
  bench::add_common_flags(cli);
  cli.add_flag("k", "number of parts for the size sweep", "8");
  if (!cli.parse(argc, argv)) return 1;
  const bench::BenchConfig cfg = bench::config_from_cli(cli);
  bench::require_activity_off(cfg, "bench_complexity");
  const auto k = static_cast<std::uint32_t>(bench::get_flag_u64(cli, "k", 1, 1024));

  util::AsciiTable table({"Gates", "Edges", "Levels", "Cut", "Time(ms)",
                          "ns/edge"});
  util::CsvWriter csv(cfg.csv_dir + "/complexity.csv",
                      {"gates", "edges", "levels", "cut", "ms", "ns_per_edge",
                       "k"});

  const partition::MultilevelPartitioner ml;
  for (std::size_t gates : {500u, 1000u, 2000u, 4000u, 8000u, 16000u,
                            32000u}) {
    circuit::GeneratorSpec spec;
    spec.name = "sweep";
    spec.num_comb_gates = gates;
    spec.num_inputs = std::max<std::size_t>(8, gates / 80);
    spec.num_outputs = std::max<std::size_t>(4, gates / 120);
    spec.num_dffs = gates / 16;
    spec.seed = cfg.seed;
    const circuit::Circuit c = circuit::generate(spec);

    // Median-of-3 timing.
    double best_ms = 1e18;
    partition::MultilevelTrace trace;
    for (int rep = 0; rep < 3; ++rep) {
      util::WallTimer t;
      ml.run_traced(c, k, cfg.seed + rep, &trace);
      best_ms = std::min(best_ms, t.elapsed_seconds() * 1e3);
    }
    const double ns_per_edge =
        best_ms * 1e6 / static_cast<double>(c.num_edges());
    table.add_row({std::to_string(gates), std::to_string(c.num_edges()),
                   std::to_string(trace.level_sizes.size()),
                   std::to_string(trace.final_quality),
                   util::AsciiTable::num(best_ms),
                   util::AsciiTable::num(ns_per_edge, 1)});
    csv.row({std::to_string(gates), std::to_string(c.num_edges()),
             std::to_string(trace.level_sizes.size()),
             std::to_string(trace.final_quality),
             util::AsciiTable::num(best_ms, 4),
             util::AsciiTable::num(ns_per_edge, 2), std::to_string(k)});
  }
  std::printf("Multilevel partitioning time vs size (k=%u) — linear if "
              "ns/edge stays flat\n%s",
              k, table.render().c_str());

  // k sweep on a fixed circuit.
  util::AsciiTable ktable({"k", "Time(ms)", "Cut"});
  const circuit::Circuit c9234 = bench::make_benchmark("s9234", cfg);
  for (std::uint32_t kk : {2u, 4u, 8u, 16u, 32u, 64u}) {
    util::WallTimer t;
    partition::MultilevelTrace trace;
    ml.run_traced(c9234, kk, cfg.seed, &trace);
    ktable.add_row({std::to_string(kk),
                    util::AsciiTable::num(t.elapsed_seconds() * 1e3),
                    std::to_string(trace.final_quality)});
  }
  std::printf("\nScaling with partition count on s9234\n%s",
              ktable.render().c_str());
  std::printf("CSV: %s\n", csv.path().c_str());
  return 0;
}
