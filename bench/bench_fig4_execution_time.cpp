// Reproduces paper Figure 4: "Execution times of s9234" — wall-clock
// simulation time versus number of nodes (1..8) for all six partitioning
// strategies, with the sequential simulator as the horizontal reference.
//
// Expected shape (paper §5): the multilevel algorithm outperforms all other
// strategies once more than 4 nodes are involved; Cluster and DFS
// deteriorate with node count (lack of concurrency); Topological is limited
// by communication.

#include <cstdio>

#include "bench_common.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace pls;

  util::Cli cli("Figure 4 — execution times of s9234 vs number of nodes");
  bench::add_common_flags(cli);
  cli.add_flag("max-nodes", "largest node count", "8");
  cli.add_flag("circuit", "benchmark to sweep", "s9234");
  if (!cli.parse(argc, argv)) return 1;
  const bench::BenchConfig cfg = bench::config_from_cli(cli);
  const auto max_nodes =
      static_cast<std::uint32_t>(bench::get_flag_u64(cli, "max-nodes", 1, 64));
  const std::string circuit_name = cli.get("circuit");

  const circuit::Circuit c = bench::make_benchmark(circuit_name, cfg);
  const double seq = bench::run_sequential_averaged(c, cfg);
  std::printf("%s sequential reference: %.2fs\n", circuit_name.c_str(), seq);

  const auto cells = bench::sweep_cells(cfg);
  std::vector<std::string> header{"Nodes", "Sequential"};
  for (const auto& cell : cells) header.push_back(cell.label);
  util::AsciiTable table(header);
  util::CsvWriter csv(cfg.csv_dir + "/fig4_execution_time.csv",
                      {"circuit", "nodes", "strategy", "throttle",
                       "activity", "seconds", "seq_seconds", "lanes",
                       "events_per_s", "trans_per_s",
                       "trans_per_s_per_lane"});

  for (std::uint32_t nodes = 1; nodes <= max_nodes; ++nodes) {
    std::vector<std::string> row{std::to_string(nodes),
                                 util::AsciiTable::num(seq)};
    for (const auto& cell : cells) {
      const auto avg = bench::run_parallel_averaged(
          c, cfg, cell.strategy, nodes, cell.throttle, cell.activity);
      row.push_back(util::AsciiTable::num(avg.wall_seconds));
      // Throughput columns: committed events/sec plus committed lane
      // transitions/sec — with --lanes N one event carries up to N
      // transitions, so trans_per_s is the batching speedup metric and
      // trans_per_s_per_lane its per-scenario normalization.
      const double wall = avg.wall_seconds > 0 ? avg.wall_seconds : 1e-9;
      const double ev_s = avg.committed / wall;
      const double tr_s = avg.committed_transitions / wall;
      csv.row({circuit_name, std::to_string(nodes), cell.strategy,
               warped::to_string(cell.throttle), cell.activity,
               util::AsciiTable::num(avg.wall_seconds, 4),
               util::AsciiTable::num(seq, 4), std::to_string(cfg.lanes),
               util::AsciiTable::num(ev_s, 1),
               util::AsciiTable::num(tr_s, 1),
               util::AsciiTable::num(tr_s / cfg.lanes, 1)});
      std::fflush(stdout);
    }
    table.add_row(row);
  }

  std::printf("Figure 4 — %s execution times (seconds)\n%s",
              circuit_name.c_str(), table.render().c_str());
  std::printf("CSV: %s\n", csv.path().c_str());
  return 0;
}
