// Reproduces paper Figure 5: "Messaging statistics for s9234 model" —
// the number of inter-node application messages versus node count for all
// six partitioning strategies.
//
// Expected shape (paper §5): the multilevel algorithm reduces communication
// in the 8–16 processor (4–8 node) region; the Cone partitioner is also
// low; the Topological partitioner's large edge cut makes it the heaviest.

#include <cstdio>

#include "bench_common.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace pls;

  util::Cli cli("Figure 5 — application messages of s9234 vs nodes");
  bench::add_common_flags(cli);
  cli.add_flag("max-nodes", "largest node count", "8");
  cli.add_flag("circuit", "benchmark to sweep", "s9234");
  if (!cli.parse(argc, argv)) return 1;
  const bench::BenchConfig cfg = bench::config_from_cli(cli);
  const auto max_nodes =
      static_cast<std::uint32_t>(bench::get_flag_u64(cli, "max-nodes", 2, 64));
  const std::string circuit_name = cli.get("circuit");

  const circuit::Circuit c = bench::make_benchmark(circuit_name, cfg);

  // The unweighted-vs-activity comparison lives here: --activity
  // off,profile adds "Multilevel+profile" / "MultilevelHG+profile" column
  // groups whose app_messages measure what traffic-weighted partitions
  // actually save at runtime.  Likewise --repartition off,gvt (usually
  // with --drift) adds "+repart" static-vs-adaptive column groups: under
  // a drifting stimulus a static partition ages mid-run, and the adaptive
  // columns show what GVT-epoch repartitioning with live LP migration
  // recovers.
  const auto cells = bench::sweep_cells(cfg);
  std::vector<std::string> header{"Nodes"};
  for (const auto& cell : cells) header.push_back(cell.label);
  util::AsciiTable table(header);
  util::CsvWriter csv(cfg.csv_dir + "/fig5_messaging.csv",
                      {"circuit", "nodes", "strategy", "throttle",
                       "activity", "repartition", "app_messages",
                       "anti_messages", "rollbacks", "static_comm_volume",
                       "weighted_imbalance", "lps_migrated",
                       "repartitions"});

  for (std::uint32_t nodes = 2; nodes <= max_nodes; ++nodes) {
    std::vector<std::string> row{std::to_string(nodes)};
    for (const auto& cell : cells) {
      const auto avg = bench::run_parallel_averaged(
          c, cfg, cell.strategy, nodes, cell.throttle, cell.activity,
          cell.repartition);
      row.push_back(util::AsciiTable::num(avg.app_messages, 0));
      csv.row({circuit_name, std::to_string(nodes), cell.strategy,
               warped::to_string(cell.throttle), cell.activity,
               cell.repartition,
               util::AsciiTable::num(avg.app_messages, 0),
               util::AsciiTable::num(avg.anti_messages, 0),
               util::AsciiTable::num(avg.rollbacks, 0),
               std::to_string(avg.last.comm_volume),
               util::AsciiTable::num(avg.last.weighted_imbalance, 3),
               util::AsciiTable::num(avg.lps_migrated, 1),
               util::AsciiTable::num(avg.repartitions, 1)});
    }
    table.add_row(row);
  }

  std::printf("Figure 5 — %s application messages\n%s",
              circuit_name.c_str(), table.render().c_str());
  std::printf("CSV: %s\n", csv.path().c_str());
  return 0;
}
