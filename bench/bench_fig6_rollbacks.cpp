// Reproduces paper Figure 6: "Rollback behaviour of s9234" — the total
// number of rollbacks versus node count for all six partitioning
// strategies.
//
// Expected shape (paper §5): "the multilevel algorithm greatly reduces the
// number of rollbacks during simulation; highlighting the equilibrium
// achieved between concurrency and communication"; Cluster, DFS and
// Topological suffer, particularly at high node counts.

#include <cstdio>

#include "bench_common.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace pls;

  util::Cli cli("Figure 6 — total rollbacks of s9234 vs nodes");
  bench::add_common_flags(cli);
  cli.add_flag("max-nodes", "largest node count", "8");
  cli.add_flag("circuit", "benchmark to sweep", "s9234");
  if (!cli.parse(argc, argv)) return 1;
  const bench::BenchConfig cfg = bench::config_from_cli(cli);
  const auto max_nodes =
      static_cast<std::uint32_t>(bench::get_flag_u64(cli, "max-nodes", 2, 64));
  const std::string circuit_name = cli.get("circuit");

  const circuit::Circuit c = bench::make_benchmark(circuit_name, cfg);
  // One column group per (throttle × activity) mode pair (suffixes only
  // when a dimension is swept, so the single-mode table keeps its
  // historical shape).
  const auto cells = bench::sweep_cells(cfg);
  std::vector<std::string> header{"Nodes"};
  for (const auto& cell : cells) header.push_back(cell.label);
  util::AsciiTable table(header);
  util::CsvWriter csv(cfg.csv_dir + "/fig6_rollbacks.csv",
                      {"circuit", "nodes", "strategy", "throttle",
                       "activity", "rollbacks", "committed_events",
                       "events_processed", "events_rolled_back",
                       "rollback_fraction"});

  for (std::uint32_t nodes = 2; nodes <= max_nodes; ++nodes) {
    std::vector<std::string> row{std::to_string(nodes)};
    for (const auto& cell : cells) {
      const auto avg = bench::run_parallel_averaged(
          c, cfg, cell.strategy, nodes, cell.throttle, cell.activity);
      row.push_back(util::AsciiTable::num(avg.rollbacks, 0));
      csv.row({circuit_name, std::to_string(nodes), cell.strategy,
               warped::to_string(cell.throttle), cell.activity,
               util::AsciiTable::num(avg.rollbacks, 0),
               util::AsciiTable::num(avg.committed, 0),
               util::AsciiTable::num(avg.events_processed, 0),
               util::AsciiTable::num(avg.events_rolled_back, 0),
               util::AsciiTable::num(avg.rollback_fraction(), 4)});
    }
    table.add_row(row);
  }

  std::printf("Figure 6 — %s total rollbacks\n%s", circuit_name.c_str(),
              table.render().c_str());
  std::printf("CSV: %s\n", csv.path().c_str());
  return 0;
}
