// Google-benchmark micro measurements of the kernel's primitive costs:
// gate evaluation, event queue insertion, batch commit + snapshot,
// rollback + cancellation, fossil collection, mailbox transfer, and the
// multilevel pipeline phases.  These are the constants behind the
// macro-level tables (a committed event in the gate model costs a handful
// of these primitives).

#include <benchmark/benchmark.h>

#include "circuit/generator.hpp"
#include "graph/weighted_graph.hpp"
#include "logicsim/gate_eval.hpp"
#include "partition/coarsen.hpp"
#include "partition/initial.hpp"
#include "partition/refine.hpp"
#include "util/rng.hpp"
#include "warped/comm.hpp"
#include "warped/lp_runtime.hpp"

namespace {

using namespace pls;

class NullLp final : public warped::LogicalProcess {
 public:
  void init(warped::Context&) override {}
  void execute(warped::Context&, warped::EventBatch) override {}
};

warped::Event make_event(warped::SimTime recv, std::uint64_t id) {
  warped::Event e;
  e.recv_time = recv;
  e.send_time = recv > 0 ? recv - 1 : 0;
  e.target = 0;
  e.sender = 1;
  e.id = id;
  return e;
}

void BM_GateEval(benchmark::State& state) {
  std::uint64_t in = 0x5a5a;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        logicsim::eval_gate(circuit::GateType::kNand, in, 4));
    in = (in << 1) | (in >> 63);
  }
}
BENCHMARK(BM_GateEval);

void BM_EventInsertOrdered(benchmark::State& state) {
  NullLp lp;
  std::uint64_t id = 1;
  warped::SimTime t = 1;
  warped::LpRuntime rt(0, &lp);
  for (auto _ : state) {
    rt.insert(make_event(t++, id++));
    if (rt.input_queue().size() > 4096) {
      state.PauseTiming();
      rt = warped::LpRuntime(0, &lp);
      state.ResumeTiming();
    }
  }
}
BENCHMARK(BM_EventInsertOrdered);

void BM_BatchCommitWithSnapshot(benchmark::State& state) {
  NullLp lp;
  warped::LpRuntime rt(0, &lp);
  std::vector<warped::Event> batch;
  warped::SimTime t = 1;
  std::uint64_t id = 1;
  for (auto _ : state) {
    rt.insert(make_event(t, id++));
    rt.begin_batch(batch);
    rt.commit_batch(t, batch.size());
    ++t;
    if (t % 4096 == 0) {
      state.PauseTiming();
      rt.fossil_collect(t - 1);
      state.ResumeTiming();
    }
  }
}
BENCHMARK(BM_BatchCommitWithSnapshot);

void BM_RollbackDepth(benchmark::State& state) {
  const auto depth = static_cast<std::uint64_t>(state.range(0));
  NullLp lp;
  std::uint64_t id = 1;
  for (auto _ : state) {
    state.PauseTiming();
    warped::LpRuntime rt(0, &lp);
    std::vector<warped::Event> batch;
    for (std::uint64_t i = 1; i <= depth; ++i) {
      rt.insert(make_event(i * 2, id++));
    }
    for (std::uint64_t i = 0; i < depth; ++i) {
      rt.begin_batch(batch);
      rt.commit_batch(batch.front().recv_time, batch.size());
      warped::Event out = make_event(batch.front().recv_time + 1, id++);
      out.send_time = batch.front().recv_time;
      out.sender = 0;
      out.target = 9;
      rt.record_output(out);
    }
    state.ResumeTiming();
    benchmark::DoNotOptimize(rt.insert(make_event(1, id++)));
  }
  state.SetLabel("rollback of " + std::to_string(depth) + " batches");
}
BENCHMARK(BM_RollbackDepth)->Arg(8)->Arg(64)->Arg(512);

void BM_MailboxTransfer(benchmark::State& state) {
  warped::Mailbox box;
  std::vector<warped::InFlight> buf;
  std::uint64_t seq = 0;
  for (auto _ : state) {
    for (int i = 0; i < 16; ++i) {
      warped::InFlight f;
      f.deliver_at_ns = seq;
      f.seq = seq++;
      f.event = make_event(seq, seq);
      box.push(std::move(f));
    }
    buf.clear();
    box.drain(buf);
    benchmark::DoNotOptimize(buf.size());
  }
}
BENCHMARK(BM_MailboxTransfer);

void BM_CoarsenS9234(benchmark::State& state) {
  const circuit::Circuit c = circuit::make_iscas_like("s9234", 7);
  for (auto _ : state) {
    partition::CoarsenOptions opt;
    opt.threshold = 64;
    benchmark::DoNotOptimize(partition::coarsen(c, opt).num_levels());
  }
}
BENCHMARK(BM_CoarsenS9234)->Unit(benchmark::kMillisecond);

void BM_GreedyRefineFinestLevel(benchmark::State& state) {
  const circuit::Circuit c = circuit::make_iscas_like("s9234", 7);
  const auto g = graph::WeightedGraph::from_circuit(c);
  util::Rng rng(3);
  partition::Partition base;
  base.k = 8;
  base.assign.resize(g.num_vertices());
  for (auto& a : base.assign) {
    a = static_cast<partition::PartId>(rng.below(8));
  }
  for (auto _ : state) {
    partition::Partition p = base;
    partition::RefineOptions opt;
    benchmark::DoNotOptimize(
        partition::GreedyRefiner().refine(g, p, opt).cut_after);
  }
}
BENCHMARK(BM_GreedyRefineFinestLevel)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
