// Google-benchmark micro measurements of the kernel's primitive costs:
// gate evaluation, event queue insertion, batch commit + snapshot,
// rollback + cancellation, fossil collection, mailbox transfer, and the
// multilevel pipeline phases.  These are the constants behind the
// macro-level tables (a committed event in the gate model costs a handful
// of these primitives).

#include <benchmark/benchmark.h>

#include <map>
#include <memory>
#include <mutex>

#include "circuit/generator.hpp"
#include "graph/weighted_graph.hpp"
#include "logicsim/gate_eval.hpp"
#include "partition/coarsen.hpp"
#include "partition/initial.hpp"
#include "partition/refine.hpp"
#include "util/rng.hpp"
#include "warped/channel.hpp"
#include "warped/comm.hpp"
#include "warped/kernel.hpp"
#include "warped/lp_runtime.hpp"

namespace {

using namespace pls;

class NullLp final : public warped::LogicalProcess {
 public:
  void init(warped::Context&) override {}
  void execute(warped::Context&, warped::EventBatch) override {}
};

warped::Event make_event(warped::SimTime recv, std::uint64_t id) {
  warped::Event e;
  e.recv_time = recv;
  e.send_time = recv > 0 ? recv - 1 : 0;
  e.target = 0;
  e.sender = 1;
  e.id = id;
  return e;
}

void BM_GateEval(benchmark::State& state) {
  std::uint64_t in = 0x5a5a;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        logicsim::eval_gate(circuit::GateType::kNand, in, 4));
    in = (in << 1) | (in >> 63);
  }
}
BENCHMARK(BM_GateEval);

void BM_EventInsertOrdered(benchmark::State& state) {
  NullLp lp;
  std::uint64_t id = 1;
  warped::SimTime t = 1;
  warped::LpRuntime rt(0, &lp);
  for (auto _ : state) {
    rt.insert(make_event(t++, id++));
    if (rt.input_queue().size() > 4096) {
      state.PauseTiming();
      rt = warped::LpRuntime(0, &lp);
      state.ResumeTiming();
    }
  }
}
BENCHMARK(BM_EventInsertOrdered);

void BM_BatchCommitWithSnapshot(benchmark::State& state) {
  NullLp lp;
  warped::LpRuntime rt(0, &lp);
  warped::SimTime t = 1;
  std::uint64_t id = 1;
  for (auto _ : state) {
    rt.insert(make_event(t, id++));
    warped::SimTime bt = 0;
    const warped::EventBatch batch = rt.begin_batch(bt);
    rt.commit_batch(t, batch.size());
    ++t;
    if (t % 4096 == 0) {
      state.PauseTiming();
      rt.fossil_collect(t - 1);
      state.ResumeTiming();
    }
  }
}
BENCHMARK(BM_BatchCommitWithSnapshot);

void BM_RollbackDepth(benchmark::State& state) {
  const auto depth = static_cast<std::uint64_t>(state.range(0));
  NullLp lp;
  std::uint64_t id = 1;
  for (auto _ : state) {
    state.PauseTiming();
    warped::LpRuntime rt(0, &lp);
    for (std::uint64_t i = 1; i <= depth; ++i) {
      rt.insert(make_event(i * 2, id++));
    }
    for (std::uint64_t i = 0; i < depth; ++i) {
      warped::SimTime bt = 0;
      const warped::EventBatch batch = rt.begin_batch(bt);
      const warped::SimTime out_send = batch.front().recv_time;
      rt.commit_batch(out_send, batch.size());
      warped::Event out = make_event(out_send + 1, id++);
      out.send_time = out_send;
      out.sender = 0;
      out.target = 9;
      rt.record_output(out);
    }
    state.ResumeTiming();
    benchmark::DoNotOptimize(rt.insert(make_event(1, id++)));
  }
  state.SetLabel("rollback of " + std::to_string(depth) + " batches");
}
BENCHMARK(BM_RollbackDepth)->Arg(8)->Arg(64)->Arg(512);

// ---- comm fabric: before/after comparators ---------------------------------
//
// LegacyMutexMailbox and LegacyHoldingHeap are verbatim replicas of the
// pre-coalescing comm path (mutex per message push; counted std::map
// mirror per held message).  They live here permanently as the "before"
// side of BENCH_kernel_micro.json's comm rows: both variants are measured
// by the same binary in the same run, so the before/after comparison
// never rots when the toolchain or hardware shifts.

class LegacyMutexMailbox {
 public:
  void push(warped::InFlight msg) {
    std::lock_guard<std::mutex> lock(mutex_);
    box_.push_back(std::move(msg));
    approx_size_.fetch_add(1, std::memory_order_release);
  }

  std::size_t drain(std::vector<warped::InFlight>& out) {
    std::lock_guard<std::mutex> lock(mutex_);
    const std::size_t n = box_.size();
    if (n != 0) {
      out.reserve(out.size() + n);
      out.insert(out.end(), std::make_move_iterator(box_.begin()),
                 std::make_move_iterator(box_.end()));
      box_.clear();
      approx_size_.fetch_sub(n, std::memory_order_relaxed);
    }
    return n;
  }

  bool probably_empty() const noexcept {
    return approx_size_.load(std::memory_order_acquire) == 0;
  }

 private:
  std::mutex mutex_;
  std::vector<warped::InFlight> box_;
  std::atomic<std::size_t> approx_size_{0};
};

class LegacyHoldingHeap {
 public:
  void push(warped::InFlight msg) {
    ++recv_times_[msg.event.recv_time];
    heap_.push_back(std::move(msg));
    std::push_heap(heap_.begin(), heap_.end(), std::greater<>{});
  }

  bool empty() const noexcept { return heap_.empty(); }

  warped::InFlight pop() {
    std::pop_heap(heap_.begin(), heap_.end(), std::greater<>{});
    warped::InFlight msg = std::move(heap_.back());
    heap_.pop_back();
    const auto it = recv_times_.find(msg.event.recv_time);
    if (--it->second == 0) recv_times_.erase(it);
    return msg;
  }

  warped::SimTime min_recv_time() const noexcept {
    return recv_times_.empty() ? warped::kEndOfTime
                               : recv_times_.begin()->first;
  }

 private:
  std::vector<warped::InFlight> heap_;
  std::map<warped::SimTime, std::uint32_t> recv_times_;
};

warped::InFlight make_inflight(std::uint64_t seq) {
  warped::InFlight f;
  f.deliver_at_ns = seq;
  f.seq = seq;
  f.event = make_event(seq + 1, seq + 1);
  return f;
}

/// Uncontended 16-push + drain round trip, legacy mutex path ("before").
void BM_MailboxTransferLegacy(benchmark::State& state) {
  LegacyMutexMailbox box;
  std::vector<warped::InFlight> buf;
  std::uint64_t seq = 0;
  for (auto _ : state) {
    for (int i = 0; i < 16; ++i) box.push(make_inflight(seq++));
    buf.clear();
    box.drain(buf);
    benchmark::DoNotOptimize(buf.size());
  }
}
BENCHMARK(BM_MailboxTransferLegacy);

/// The same round trip through the coalescing fabric ("after"): 16 adds
/// into the SendCoalescer (flushed as one batch at the size-16 mark of a
/// burst-end flush), one lock-free batch push, one chain drain.
void BM_MailboxTransferCoalesced(benchmark::State& state) {
  warped::InProcChannel ch(1);
  warped::SendCoalescer co;
  warped::CoalesceConfig cc;
  cc.max_batch_msgs = 64;
  co.configure(&ch, cc);
  std::vector<warped::InFlight> buf;
  std::uint64_t seq = 0;
  for (auto _ : state) {
    for (int i = 0; i < 16; ++i) co.add(0, make_inflight(seq++), 0, 0);
    co.flush_all(0, 0);
    buf.clear();
    ch.drain(0, buf);
    benchmark::DoNotOptimize(buf.size());
  }
}
BENCHMARK(BM_MailboxTransferCoalesced);

// Contended mailbox push/drain at 1/2/4/8 producers (the ISSUE's
// headline micro).  All threads produce into one mailbox; thread 0
// additionally drains on a fixed cadence, like a receiver polling its
// endpoint between LTSF bursts.  Reported rate = messages transferred
// per second across all producers.

constexpr int kDrainEvery = 256;

void BM_MailboxContendedLegacy(benchmark::State& state) {
  // Magic static: thread-safe construction, shared by all producer
  // threads; content carried across trial runs is bounded by the drain
  // cadence and irrelevant to the measured push/drain cost.
  static LegacyMutexMailbox box;
  std::vector<warped::InFlight> buf;
  std::uint64_t seq = 0;
  int since_drain = 0;
  for (auto _ : state) {
    box.push(make_inflight(seq++));
    if (state.thread_index() == 0 && ++since_drain == kDrainEvery) {
      since_drain = 0;
      buf.clear();
      box.drain(buf);
      benchmark::DoNotOptimize(buf.size());
    }
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MailboxContendedLegacy)
    ->Threads(1)
    ->Threads(2)
    ->Threads(4)
    ->Threads(8)
    ->UseRealTime();

void BM_MailboxContendedCoalesced(benchmark::State& state) {
  static warped::InProcChannel ch(1);
  // Each producer thread owns a SendCoalescer, as each node thread does.
  warped::SendCoalescer co;
  warped::CoalesceConfig cc;
  cc.max_batch_msgs = 64;
  co.configure(&ch, cc);
  std::vector<warped::InFlight> buf;
  std::uint64_t seq = 0;
  int since_drain = 0;
  for (auto _ : state) {
    co.add(0, make_inflight(seq++), 0, 0);
    if (state.thread_index() == 0 && ++since_drain == kDrainEvery) {
      since_drain = 0;
      buf.clear();
      ch.drain(0, buf);
      benchmark::DoNotOptimize(buf.size());
    }
  }
  co.flush_all(0, 0);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MailboxContendedCoalesced)
    ->Threads(1)
    ->Threads(2)
    ->Threads(4)
    ->Threads(8)
    ->UseRealTime();

// Holding-heap churn with a GVT report (min_recv_time) per poll: the
// pattern the map mirror was built for and the lazy-deletion flat mirror
// replaces.  Keeps ~512 messages live, pushes/pops in 16-message waves
// with randomized receive times.

template <typename Heap>
void holding_churn(benchmark::State& state) {
  Heap heap;
  util::Rng rng(7);
  std::uint64_t seq = 0;
  for (int i = 0; i < 512; ++i) {
    warped::InFlight f = make_inflight(seq++);
    f.event.recv_time = 1 + rng.next() % 4096;
    f.deliver_at_ns = 0;
    heap.push(std::move(f));
  }
  for (auto _ : state) {
    for (int i = 0; i < 16; ++i) {
      warped::InFlight f = make_inflight(seq++);
      f.event.recv_time = 1 + rng.next() % 4096;
      f.deliver_at_ns = 0;
      heap.push(std::move(f));
    }
    for (int i = 0; i < 16; ++i) benchmark::DoNotOptimize(heap.pop());
    benchmark::DoNotOptimize(heap.min_recv_time());
  }
  state.SetItemsProcessed(state.iterations() * 32);
}

void BM_HoldingHeapChurnLegacy(benchmark::State& state) {
  holding_churn<LegacyHoldingHeap>(state);
}
BENCHMARK(BM_HoldingHeapChurnLegacy);

void BM_HoldingHeapChurn(benchmark::State& state) {
  holding_churn<warped::HoldingHeap>(state);
}
BENCHMARK(BM_HoldingHeapChurn);

/// A ring of LPs each forwarding one event to its successor: the smallest
/// model whose steady state exercises the whole scalar event path (insert,
/// LTSF schedule, execute, commit + snapshot, fossil collection, GVT) with
/// negligible behaviour cost.  items_processed counts committed events, so
/// the reported rate IS the scalar event throughput the memory-layer
/// acceptance criterion tracks (BENCH_kernel_micro.json).
class RingLp final : public warped::LogicalProcess {
 public:
  RingLp(warped::LpId next, warped::SimTime stride)
      : next_(next), stride_(stride) {}
  void init(warped::Context& ctx) override {
    ctx.send(next_, stride_, 0, 1);
  }
  void execute(warped::Context& ctx, warped::EventBatch batch) override {
    warped::LpState& s = ctx.state();
    for (const auto& ev : batch) s.a += ev.value;
    const warped::SimTime at = ctx.now() + stride_;
    if (at <= ctx.end_time()) ctx.send(next_, at, 0, 1);
  }

 private:
  warped::LpId next_;
  warped::SimTime stride_;
};

void BM_KernelScalarEventThroughput(benchmark::State& state) {
  constexpr std::uint32_t kLps = 16;
  constexpr warped::SimTime kEnd = 50000;
  std::uint64_t events = 0;
  for (auto _ : state) {
    std::vector<std::unique_ptr<RingLp>> ring;
    std::vector<warped::LogicalProcess*> lps;
    std::vector<std::uint32_t> node_of(kLps, 0);
    for (std::uint32_t i = 0; i < kLps; ++i) {
      ring.push_back(std::make_unique<RingLp>((i + 1) % kLps, 1));
      lps.push_back(ring.back().get());
    }
    warped::KernelConfig kc;
    kc.num_nodes = 1;
    kc.end_time = kEnd;
    kc.gvt_interval_us = 200;
    kc.throttle.mode = warped::ThrottleMode::kUnlimited;
    warped::Kernel kernel(std::move(lps), std::move(node_of), kc);
    const warped::RunStats rs = kernel.run();
    events += rs.totals.events_committed;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(events));
  state.SetLabel("committed events/s = scalar event throughput");
}
BENCHMARK(BM_KernelScalarEventThroughput)->Unit(benchmark::kMillisecond);

void BM_CoarsenS9234(benchmark::State& state) {
  const circuit::Circuit c = circuit::make_iscas_like("s9234", 7);
  for (auto _ : state) {
    partition::CoarsenOptions opt;
    opt.threshold = 64;
    benchmark::DoNotOptimize(partition::coarsen(c, opt).num_levels());
  }
}
BENCHMARK(BM_CoarsenS9234)->Unit(benchmark::kMillisecond);

void BM_GreedyRefineFinestLevel(benchmark::State& state) {
  const circuit::Circuit c = circuit::make_iscas_like("s9234", 7);
  const auto g = graph::WeightedGraph::from_circuit(c);
  util::Rng rng(3);
  partition::Partition base;
  base.k = 8;
  base.assign.resize(g.num_vertices());
  for (auto& a : base.assign) {
    a = static_cast<partition::PartId>(rng.below(8));
  }
  for (auto _ : state) {
    partition::Partition p = base;
    partition::RefineOptions opt;
    benchmark::DoNotOptimize(
        partition::GreedyRefiner().refine(g, p, opt).cut_after);
  }
}
BENCHMARK(BM_GreedyRefineFinestLevel)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
