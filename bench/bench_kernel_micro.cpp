// Google-benchmark micro measurements of the kernel's primitive costs:
// gate evaluation, event queue insertion, batch commit + snapshot,
// rollback + cancellation, fossil collection, mailbox transfer, and the
// multilevel pipeline phases.  These are the constants behind the
// macro-level tables (a committed event in the gate model costs a handful
// of these primitives).

#include <benchmark/benchmark.h>

#include <memory>

#include "circuit/generator.hpp"
#include "graph/weighted_graph.hpp"
#include "logicsim/gate_eval.hpp"
#include "partition/coarsen.hpp"
#include "partition/initial.hpp"
#include "partition/refine.hpp"
#include "util/rng.hpp"
#include "warped/comm.hpp"
#include "warped/kernel.hpp"
#include "warped/lp_runtime.hpp"

namespace {

using namespace pls;

class NullLp final : public warped::LogicalProcess {
 public:
  void init(warped::Context&) override {}
  void execute(warped::Context&, warped::EventBatch) override {}
};

warped::Event make_event(warped::SimTime recv, std::uint64_t id) {
  warped::Event e;
  e.recv_time = recv;
  e.send_time = recv > 0 ? recv - 1 : 0;
  e.target = 0;
  e.sender = 1;
  e.id = id;
  return e;
}

void BM_GateEval(benchmark::State& state) {
  std::uint64_t in = 0x5a5a;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        logicsim::eval_gate(circuit::GateType::kNand, in, 4));
    in = (in << 1) | (in >> 63);
  }
}
BENCHMARK(BM_GateEval);

void BM_EventInsertOrdered(benchmark::State& state) {
  NullLp lp;
  std::uint64_t id = 1;
  warped::SimTime t = 1;
  warped::LpRuntime rt(0, &lp);
  for (auto _ : state) {
    rt.insert(make_event(t++, id++));
    if (rt.input_queue().size() > 4096) {
      state.PauseTiming();
      rt = warped::LpRuntime(0, &lp);
      state.ResumeTiming();
    }
  }
}
BENCHMARK(BM_EventInsertOrdered);

void BM_BatchCommitWithSnapshot(benchmark::State& state) {
  NullLp lp;
  warped::LpRuntime rt(0, &lp);
  warped::SimTime t = 1;
  std::uint64_t id = 1;
  for (auto _ : state) {
    rt.insert(make_event(t, id++));
    warped::SimTime bt = 0;
    const warped::EventBatch batch = rt.begin_batch(bt);
    rt.commit_batch(t, batch.size());
    ++t;
    if (t % 4096 == 0) {
      state.PauseTiming();
      rt.fossil_collect(t - 1);
      state.ResumeTiming();
    }
  }
}
BENCHMARK(BM_BatchCommitWithSnapshot);

void BM_RollbackDepth(benchmark::State& state) {
  const auto depth = static_cast<std::uint64_t>(state.range(0));
  NullLp lp;
  std::uint64_t id = 1;
  for (auto _ : state) {
    state.PauseTiming();
    warped::LpRuntime rt(0, &lp);
    for (std::uint64_t i = 1; i <= depth; ++i) {
      rt.insert(make_event(i * 2, id++));
    }
    for (std::uint64_t i = 0; i < depth; ++i) {
      warped::SimTime bt = 0;
      const warped::EventBatch batch = rt.begin_batch(bt);
      const warped::SimTime out_send = batch.front().recv_time;
      rt.commit_batch(out_send, batch.size());
      warped::Event out = make_event(out_send + 1, id++);
      out.send_time = out_send;
      out.sender = 0;
      out.target = 9;
      rt.record_output(out);
    }
    state.ResumeTiming();
    benchmark::DoNotOptimize(rt.insert(make_event(1, id++)));
  }
  state.SetLabel("rollback of " + std::to_string(depth) + " batches");
}
BENCHMARK(BM_RollbackDepth)->Arg(8)->Arg(64)->Arg(512);

void BM_MailboxTransfer(benchmark::State& state) {
  warped::Mailbox box;
  std::vector<warped::InFlight> buf;
  std::uint64_t seq = 0;
  for (auto _ : state) {
    for (int i = 0; i < 16; ++i) {
      warped::InFlight f;
      f.deliver_at_ns = seq;
      f.seq = seq++;
      f.event = make_event(seq, seq);
      box.push(std::move(f));
    }
    buf.clear();
    box.drain(buf);
    benchmark::DoNotOptimize(buf.size());
  }
}
BENCHMARK(BM_MailboxTransfer);

/// A ring of LPs each forwarding one event to its successor: the smallest
/// model whose steady state exercises the whole scalar event path (insert,
/// LTSF schedule, execute, commit + snapshot, fossil collection, GVT) with
/// negligible behaviour cost.  items_processed counts committed events, so
/// the reported rate IS the scalar event throughput the memory-layer
/// acceptance criterion tracks (BENCH_kernel_micro.json).
class RingLp final : public warped::LogicalProcess {
 public:
  RingLp(warped::LpId next, warped::SimTime stride)
      : next_(next), stride_(stride) {}
  void init(warped::Context& ctx) override {
    ctx.send(next_, stride_, 0, 1);
  }
  void execute(warped::Context& ctx, warped::EventBatch batch) override {
    warped::LpState& s = ctx.state();
    for (const auto& ev : batch) s.a += ev.value;
    const warped::SimTime at = ctx.now() + stride_;
    if (at <= ctx.end_time()) ctx.send(next_, at, 0, 1);
  }

 private:
  warped::LpId next_;
  warped::SimTime stride_;
};

void BM_KernelScalarEventThroughput(benchmark::State& state) {
  constexpr std::uint32_t kLps = 16;
  constexpr warped::SimTime kEnd = 50000;
  std::uint64_t events = 0;
  for (auto _ : state) {
    std::vector<std::unique_ptr<RingLp>> ring;
    std::vector<warped::LogicalProcess*> lps;
    std::vector<std::uint32_t> node_of(kLps, 0);
    for (std::uint32_t i = 0; i < kLps; ++i) {
      ring.push_back(std::make_unique<RingLp>((i + 1) % kLps, 1));
      lps.push_back(ring.back().get());
    }
    warped::KernelConfig kc;
    kc.num_nodes = 1;
    kc.end_time = kEnd;
    kc.gvt_interval_us = 200;
    kc.throttle.mode = warped::ThrottleMode::kUnlimited;
    warped::Kernel kernel(std::move(lps), std::move(node_of), kc);
    const warped::RunStats rs = kernel.run();
    events += rs.totals.events_committed;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(events));
  state.SetLabel("committed events/s = scalar event throughput");
}
BENCHMARK(BM_KernelScalarEventThroughput)->Unit(benchmark::kMillisecond);

void BM_CoarsenS9234(benchmark::State& state) {
  const circuit::Circuit c = circuit::make_iscas_like("s9234", 7);
  for (auto _ : state) {
    partition::CoarsenOptions opt;
    opt.threshold = 64;
    benchmark::DoNotOptimize(partition::coarsen(c, opt).num_levels());
  }
}
BENCHMARK(BM_CoarsenS9234)->Unit(benchmark::kMillisecond);

void BM_GreedyRefineFinestLevel(benchmark::State& state) {
  const circuit::Circuit c = circuit::make_iscas_like("s9234", 7);
  const auto g = graph::WeightedGraph::from_circuit(c);
  util::Rng rng(3);
  partition::Partition base;
  base.k = 8;
  base.assign.resize(g.num_vertices());
  for (auto& a : base.assign) {
    a = static_cast<partition::PartId>(rng.below(8));
  }
  for (auto _ : state) {
    partition::Partition p = base;
    partition::RefineOptions opt;
    benchmark::DoNotOptimize(
        partition::GreedyRefiner().refine(g, p, opt).cut_after);
  }
}
BENCHMARK(BM_GreedyRefineFinestLevel)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
