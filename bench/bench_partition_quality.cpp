// Static partition-quality study: edge cut, communication volume, load
// imbalance, concurrency and partitioning time for all strategies on the
// three benchmarks — the quantities the paper's §3 argues the multilevel
// algorithm balances (and the quality measure, "edges cut", its related
// work is judged by).
//
// Two cut columns are reported side by side for every strategy:
//   EdgeCut  — pairwise cut of the symmetrized circuit graph (the paper's
//              measure; double-counts multi-fanout nets)
//   HGLambda1 / HGCutNets — native hypergraph connectivity-1 volume and
//              cut-net count (the messages the Time Warp layer actually
//              pays; what "MultilevelHG" optimizes directly)

#include <cstdio>

#include "bench_common.hpp"
#include "framework/registry.hpp"
#include "hypergraph/hypergraph.hpp"
#include "hypergraph/metrics.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace pls;

  util::Cli cli("Partition quality — static metrics for all strategies");
  bench::add_common_flags(cli);
  cli.add_flag("k", "number of parts", "8");
  if (!cli.parse(argc, argv)) return 1;
  const bench::BenchConfig cfg = bench::config_from_cli(cli);
  const auto k = static_cast<std::uint32_t>(bench::get_flag_u64(cli, "k", 1, 1024));

  const auto amodes = bench::activity_modes(cfg);
  util::AsciiTable table({"Circuit", "Strategy", "Activity", "EdgeCut",
                          "HGLambda1", "HGCutNets", "Imbalance",
                          "WImbalance", "Concurrency", "PartTime(ms)"});
  // comm_volume (circuit-side) and hg_lambda1 (hypergraph-side) are
  // provably equal — both stay in the CSV deliberately: the pair is a
  // cross-check of the two implementations, and comm_volume keeps the
  // schema of earlier runs.  Metrics are always measured on the *unit-
  // weight* circuit/hypergraph, so activity rows stay comparable with
  // unweighted ones.
  // weighted_imbalance is the imbalance under the activity work weights
  // the partitioner actually optimized (equals imbalance for unweighted
  // rows) — the balance objective dynamic repartitioning tracks at runtime.
  util::CsvWriter csv(cfg.csv_dir + "/partition_quality.csv",
                      {"circuit", "strategy", "activity", "k", "edge_cut",
                       "comm_volume", "hg_lambda1", "hg_cut_nets",
                       "imbalance", "weighted_imbalance", "concurrency",
                       "partition_ms"});

  for (const char* name : {"s5378", "s9234", "s15850"}) {
    const circuit::Circuit c = bench::make_benchmark(name, cfg);
    const hypergraph::Hypergraph hg = hypergraph::Hypergraph::from_circuit(c);
    for (const auto& act : amodes) {
      table.add_rule();
      for (const auto& strategy : bench::strategies()) {
        // Non-multilevel strategies cannot consume weights (the driver
        // fails fast on that combination); only the unweighted group
        // lists them.
        if (act != "off" &&
            !framework::strategy_consumes_weights(strategy)) {
          continue;
        }
        framework::DriverConfig dc = bench::driver_config(cfg, strategy, k);
        bench::apply_activity(dc, act);
        const framework::DriverResult res = framework::partition_only(c, dc);
        const std::uint64_t lambda1 =
            hypergraph::connectivity_minus_one(hg, res.partition);
        const std::uint64_t cut_nets = hypergraph::cut_net(hg, res.partition);
        table.add_row({name, strategy, act, std::to_string(res.edge_cut),
                       std::to_string(lambda1), std::to_string(cut_nets),
                       util::AsciiTable::num(res.imbalance, 3),
                       util::AsciiTable::num(res.weighted_imbalance, 3),
                       util::AsciiTable::num(res.concurrency, 3),
                       util::AsciiTable::num(res.partition_seconds * 1e3,
                                             2)});
        csv.row({name, strategy, act, std::to_string(k),
                 std::to_string(res.edge_cut),
                 std::to_string(res.comm_volume), std::to_string(lambda1),
                 std::to_string(cut_nets),
                 util::AsciiTable::num(res.imbalance, 4),
                 util::AsciiTable::num(res.weighted_imbalance, 4),
                 util::AsciiTable::num(res.concurrency, 4),
                 util::AsciiTable::num(res.partition_seconds * 1e3, 4)});
      }
    }
  }

  std::printf("Partition quality at k=%u\n%s", k, table.render().c_str());
  std::printf("CSV: %s\n", csv.path().c_str());
  return 0;
}
