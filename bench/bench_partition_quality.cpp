// Static partition-quality study: edge cut, communication volume, load
// imbalance, concurrency and partitioning time for all six strategies on
// the three benchmarks — the quantities the paper's §3 argues the
// multilevel algorithm balances (and the quality measure, "edges cut", its
// related work is judged by).

#include <cstdio>

#include "bench_common.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace pls;

  util::Cli cli("Partition quality — static metrics for all strategies");
  bench::add_common_flags(cli);
  cli.add_flag("k", "number of parts", "8");
  if (!cli.parse(argc, argv)) return 1;
  const bench::BenchConfig cfg = bench::config_from_cli(cli);
  const auto k = static_cast<std::uint32_t>(cli.get_int("k"));

  util::AsciiTable table({"Circuit", "Strategy", "EdgeCut", "CommVolume",
                          "Imbalance", "Concurrency", "PartTime(ms)"});
  util::CsvWriter csv(cfg.csv_dir + "/partition_quality.csv",
                      {"circuit", "strategy", "k", "edge_cut", "comm_volume",
                       "imbalance", "concurrency", "partition_ms"});

  for (const char* name : {"s5378", "s9234", "s15850"}) {
    const circuit::Circuit c = bench::make_benchmark(name, cfg);
    table.add_rule();
    for (const auto& strategy : bench::strategies()) {
      const framework::DriverConfig dc =
          bench::driver_config(cfg, strategy, k);
      const framework::DriverResult res = framework::partition_only(c, dc);
      table.add_row({name, strategy, std::to_string(res.edge_cut),
                     std::to_string(res.comm_volume),
                     util::AsciiTable::num(res.imbalance, 3),
                     util::AsciiTable::num(res.concurrency, 3),
                     util::AsciiTable::num(res.partition_seconds * 1e3, 2)});
      csv.row({name, strategy, std::to_string(k),
               std::to_string(res.edge_cut), std::to_string(res.comm_volume),
               util::AsciiTable::num(res.imbalance, 4),
               util::AsciiTable::num(res.concurrency, 4),
               util::AsciiTable::num(res.partition_seconds * 1e3, 4)});
    }
  }

  std::printf("Partition quality at k=%u\n%s", k, table.render().c_str());
  std::printf("CSV: %s\n", csv.path().c_str());
  return 0;
}
