// Refinement ablation (paper §3): "The greedy technique has also been
// shown to yield better partitions [12] with reduced edge-cut compared to
// other refinement algorithms (e.g., Kernighan-Lin [13] and
// Fiduccia-Mattheyses [6])" and "converges in a few iterations reducing the
// time needed for partitioning".
//
// Runs the full multilevel pipeline with each refiner on every benchmark
// and reports final edge cut, imbalance and partitioning time.

#include <cstdio>

#include "bench_common.hpp"
#include "partition/metrics.hpp"
#include "partition/multilevel_partitioner.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

int main(int argc, char** argv) {
  using namespace pls;

  util::Cli cli("Refinement ablation — greedy vs KL vs FM inside multilevel");
  bench::add_common_flags(cli);
  cli.add_flag("k", "number of parts", "8");
  if (!cli.parse(argc, argv)) return 1;
  const bench::BenchConfig cfg = bench::config_from_cli(cli);
  bench::require_activity_off(cfg, "bench_refinement_ablation");
  const auto k = static_cast<std::uint32_t>(bench::get_flag_u64(cli, "k", 1, 1024));

  struct Variant {
    const char* label;
    partition::RefinerKind kind;
  };
  const Variant variants[] = {
      {"Greedy", partition::RefinerKind::kGreedy},
      {"Kernighan-Lin", partition::RefinerKind::kKernighanLin},
      {"Fiduccia-Mattheyses", partition::RefinerKind::kFiducciaMattheyses},
  };

  util::AsciiTable table(
      {"Circuit", "Refiner", "EdgeCut", "Imbalance", "Time(ms)"});
  util::CsvWriter csv(cfg.csv_dir + "/refinement_ablation.csv",
                      {"circuit", "refiner", "k", "edge_cut", "imbalance",
                       "ms"});

  for (const char* name : {"s5378", "s9234", "s15850"}) {
    const circuit::Circuit c = bench::make_benchmark(name, cfg);
    table.add_rule();
    for (const Variant& v : variants) {
      partition::MultilevelOptions opt;
      opt.refiner = v.kind;
      const partition::MultilevelPartitioner ml(opt);
      util::WallTimer t;
      const partition::Partition p = ml.run(c, k, cfg.seed);
      const double ms = t.elapsed_seconds() * 1e3;
      const auto cut = partition::edge_cut(c, p);
      const double imb = partition::imbalance(c, p);
      table.add_row({name, v.label, std::to_string(cut),
                     util::AsciiTable::num(imb, 3),
                     util::AsciiTable::num(ms)});
      csv.row({name, v.label, std::to_string(k), std::to_string(cut),
               util::AsciiTable::num(imb, 4), util::AsciiTable::num(ms, 3)});
    }
  }

  std::printf("Refinement ablation at k=%u (paper: greedy gives lower cut "
              "in less time)\n%s",
              k, table.render().c_str());
  std::printf("CSV: %s\n", csv.path().c_str());
  return 0;
}
