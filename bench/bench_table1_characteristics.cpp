// Reproduces paper Table 1: "Characteristics of benchmarks"
// (Circuit | Inputs | Gates | Outputs), extended with the structural
// statistics the generator is calibrated against.

#include <cstdio>

#include "bench_common.hpp"
#include "circuit/circuit_stats.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace pls;

  util::Cli cli("Table 1 — characteristics of the ISCAS'89 benchmarks");
  bench::add_common_flags(cli);
  if (!cli.parse(argc, argv)) return 1;
  const bench::BenchConfig cfg = bench::config_from_cli(cli);

  util::AsciiTable table({"Circuit", "Inputs", "Gates", "Outputs", "FFs",
                          "Edges", "Depth", "AvgFanout", "MaxFanout"});
  util::CsvWriter csv(cfg.csv_dir + "/table1_characteristics.csv",
                      {"circuit", "inputs", "gates", "outputs", "ffs",
                       "edges", "depth", "avg_fanout", "max_fanout"});

  for (const char* name : {"s5378", "s9234", "s15850"}) {
    const circuit::Circuit c = bench::make_benchmark(name, cfg);
    const circuit::CircuitStats s = circuit::compute_stats(c);
    table.add_row({s.name, std::to_string(s.inputs),
                   std::to_string(s.comb_gates), std::to_string(s.outputs),
                   std::to_string(s.flip_flops), std::to_string(s.edges),
                   std::to_string(s.depth), util::AsciiTable::num(s.avg_fanout),
                   std::to_string(s.max_fanout)});
    csv.row({s.name, std::to_string(s.inputs), std::to_string(s.comb_gates),
             std::to_string(s.outputs), std::to_string(s.flip_flops),
             std::to_string(s.edges), std::to_string(s.depth),
             util::AsciiTable::num(s.avg_fanout),
             std::to_string(s.max_fanout)});
  }

  std::printf("Table 1 — Characteristics of benchmarks (paper: s5378 "
              "35/2779/49, s9234 36/5597/39, s15850 77/10383/150)\n%s",
              table.render().c_str());
  std::printf("CSV: %s\n", csv.path().c_str());
  return 0;
}
