// Reproduces paper Table 2: "Simulation Time (in secs) for the different
// partitioning algorithms" — sequential time plus the parallel wall-clock
// time of all six strategies on s5378 / s9234 / s15850 at 2, 4, 6 and 8
// nodes.
//
// Expected shape (paper §5): "the multilevel strategy performs better than
// other strategies when the number of processors employed lie between 8
// (4 workstations) and 16 (8 workstations)"; parallel simulation on 8
// nodes with multilevel runs in less than half the sequential time.  The
// paper's s15850 run on 2 nodes ran out of memory — pass
// --oom-limit to emulate the 128 MB workstations and reproduce that cell
// as "-".

#include <cstdio>

#include "bench_common.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace pls;

  util::Cli cli("Table 2 — simulation time for all partitioning algorithms");
  bench::add_common_flags(cli);
  cli.add_flag("oom-limit",
               "per-node live-entry limit emulating 128 MB workstations "
               "(0 = unlimited)",
               "0");
  if (!cli.parse(argc, argv)) return 1;
  bench::BenchConfig cfg = bench::config_from_cli(cli);
  cfg.max_live_entries_per_node = static_cast<std::size_t>(
      bench::get_flag_u64(cli, "oom-limit", 0, std::uint64_t{1} << 40));

  const auto cells = bench::sweep_cells(cfg);
  std::vector<std::string> header{"Circuit", "Seq Time", "Nodes"};
  for (const auto& cell : cells) header.push_back(cell.label);
  util::AsciiTable table(header);
  util::CsvWriter csv(cfg.csv_dir + "/table2_simulation_time.csv",
                      {"circuit", "seq_seconds", "nodes", "strategy",
                       "throttle", "activity", "seconds", "oom", "lanes",
                       "events_per_s", "trans_per_s",
                       "trans_per_s_per_lane"});

  for (const char* name : {"s5378", "s9234", "s15850"}) {
    const circuit::Circuit c = bench::make_benchmark(name, cfg);
    const double seq = bench::run_sequential_averaged(c, cfg);
    std::printf("%s: sequential %.2fs\n", name, seq);
    std::fflush(stdout);

    table.add_rule();
    bool first_row = true;
    for (std::uint32_t nodes : {2u, 4u, 6u, 8u}) {
      std::vector<std::string> row{
          first_row ? name : "", first_row ? util::AsciiTable::num(seq) : "",
          std::to_string(nodes)};
      first_row = false;
      for (const auto& cell : cells) {
        const auto avg = bench::run_parallel_averaged(
            c, cfg, cell.strategy, nodes, cell.throttle, cell.activity);
        row.push_back(avg.out_of_memory
                          ? "-"
                          : util::AsciiTable::num(avg.wall_seconds));
        const double wall = avg.wall_seconds > 0 ? avg.wall_seconds : 1e-9;
        const double ev_s = avg.committed / wall;
        const double tr_s = avg.committed_transitions / wall;
        csv.row({name, util::AsciiTable::num(seq, 4),
                 std::to_string(nodes), cell.strategy,
                 warped::to_string(cell.throttle), cell.activity,
                 util::AsciiTable::num(avg.wall_seconds, 4),
                 avg.out_of_memory ? "1" : "0", std::to_string(cfg.lanes),
                 util::AsciiTable::num(ev_s, 1),
                 util::AsciiTable::num(tr_s, 1),
                 util::AsciiTable::num(tr_s / cfg.lanes, 1)});
        std::fflush(stdout);
      }
      table.add_row(row);
    }
  }

  std::printf("Table 2 — Simulation time (seconds) per strategy\n%s",
              table.render().c_str());
  std::printf("CSV: %s\n", csv.path().c_str());
  return 0;
}
