file(REMOVE_RECURSE
  "CMakeFiles/bench_coarsening_ablation.dir/bench/bench_coarsening_ablation.cpp.o"
  "CMakeFiles/bench_coarsening_ablation.dir/bench/bench_coarsening_ablation.cpp.o.d"
  "bench_coarsening_ablation"
  "bench_coarsening_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_coarsening_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
