# Empty dependencies file for bench_coarsening_ablation.
# This may be replaced when dependencies are built.
