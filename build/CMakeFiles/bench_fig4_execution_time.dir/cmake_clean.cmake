file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_execution_time.dir/bench/bench_fig4_execution_time.cpp.o"
  "CMakeFiles/bench_fig4_execution_time.dir/bench/bench_fig4_execution_time.cpp.o.d"
  "bench_fig4_execution_time"
  "bench_fig4_execution_time.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_execution_time.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
