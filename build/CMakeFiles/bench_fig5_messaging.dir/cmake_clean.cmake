file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_messaging.dir/bench/bench_fig5_messaging.cpp.o"
  "CMakeFiles/bench_fig5_messaging.dir/bench/bench_fig5_messaging.cpp.o.d"
  "bench_fig5_messaging"
  "bench_fig5_messaging.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_messaging.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
