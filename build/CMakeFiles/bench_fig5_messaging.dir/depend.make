# Empty dependencies file for bench_fig5_messaging.
# This may be replaced when dependencies are built.
