file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_rollbacks.dir/bench/bench_fig6_rollbacks.cpp.o"
  "CMakeFiles/bench_fig6_rollbacks.dir/bench/bench_fig6_rollbacks.cpp.o.d"
  "bench_fig6_rollbacks"
  "bench_fig6_rollbacks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_rollbacks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
