# Empty dependencies file for bench_fig6_rollbacks.
# This may be replaced when dependencies are built.
