file(REMOVE_RECURSE
  "CMakeFiles/bench_refinement_ablation.dir/bench/bench_refinement_ablation.cpp.o"
  "CMakeFiles/bench_refinement_ablation.dir/bench/bench_refinement_ablation.cpp.o.d"
  "bench_refinement_ablation"
  "bench_refinement_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_refinement_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
