# Empty dependencies file for bench_refinement_ablation.
# This may be replaced when dependencies are built.
