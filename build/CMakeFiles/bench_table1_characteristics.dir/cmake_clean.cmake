file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_characteristics.dir/bench/bench_table1_characteristics.cpp.o"
  "CMakeFiles/bench_table1_characteristics.dir/bench/bench_table1_characteristics.cpp.o.d"
  "bench_table1_characteristics"
  "bench_table1_characteristics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_characteristics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
