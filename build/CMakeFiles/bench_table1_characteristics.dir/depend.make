# Empty dependencies file for bench_table1_characteristics.
# This may be replaced when dependencies are built.
