file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_simulation_time.dir/bench/bench_table2_simulation_time.cpp.o"
  "CMakeFiles/bench_table2_simulation_time.dir/bench/bench_table2_simulation_time.cpp.o.d"
  "bench_table2_simulation_time"
  "bench_table2_simulation_time.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_simulation_time.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
