# Empty dependencies file for bench_table2_simulation_time.
# This may be replaced when dependencies are built.
