file(REMOVE_RECURSE
  "CMakeFiles/example_bench_tool.dir/examples/bench_tool.cpp.o"
  "CMakeFiles/example_bench_tool.dir/examples/bench_tool.cpp.o.d"
  "example_bench_tool"
  "example_bench_tool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_bench_tool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
