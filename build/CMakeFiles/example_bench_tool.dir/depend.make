# Empty dependencies file for example_bench_tool.
# This may be replaced when dependencies are built.
