file(REMOVE_RECURSE
  "CMakeFiles/example_custom_circuit.dir/examples/custom_circuit.cpp.o"
  "CMakeFiles/example_custom_circuit.dir/examples/custom_circuit.cpp.o.d"
  "example_custom_circuit"
  "example_custom_circuit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_custom_circuit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
