# Empty dependencies file for example_custom_circuit.
# This may be replaced when dependencies are built.
