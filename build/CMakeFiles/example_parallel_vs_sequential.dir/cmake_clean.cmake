file(REMOVE_RECURSE
  "CMakeFiles/example_parallel_vs_sequential.dir/examples/parallel_vs_sequential.cpp.o"
  "CMakeFiles/example_parallel_vs_sequential.dir/examples/parallel_vs_sequential.cpp.o.d"
  "example_parallel_vs_sequential"
  "example_parallel_vs_sequential.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_parallel_vs_sequential.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
