# Empty dependencies file for example_parallel_vs_sequential.
# This may be replaced when dependencies are built.
