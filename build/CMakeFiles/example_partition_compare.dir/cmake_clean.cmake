file(REMOVE_RECURSE
  "CMakeFiles/example_partition_compare.dir/examples/partition_compare.cpp.o"
  "CMakeFiles/example_partition_compare.dir/examples/partition_compare.cpp.o.d"
  "example_partition_compare"
  "example_partition_compare.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_partition_compare.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
