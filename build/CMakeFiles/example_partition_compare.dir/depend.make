# Empty dependencies file for example_partition_compare.
# This may be replaced when dependencies are built.
