
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/circuit/bench_io.cpp" "CMakeFiles/pls.dir/src/circuit/bench_io.cpp.o" "gcc" "CMakeFiles/pls.dir/src/circuit/bench_io.cpp.o.d"
  "/root/repo/src/circuit/circuit.cpp" "CMakeFiles/pls.dir/src/circuit/circuit.cpp.o" "gcc" "CMakeFiles/pls.dir/src/circuit/circuit.cpp.o.d"
  "/root/repo/src/circuit/circuit_stats.cpp" "CMakeFiles/pls.dir/src/circuit/circuit_stats.cpp.o" "gcc" "CMakeFiles/pls.dir/src/circuit/circuit_stats.cpp.o.d"
  "/root/repo/src/circuit/cones.cpp" "CMakeFiles/pls.dir/src/circuit/cones.cpp.o" "gcc" "CMakeFiles/pls.dir/src/circuit/cones.cpp.o.d"
  "/root/repo/src/circuit/generator.cpp" "CMakeFiles/pls.dir/src/circuit/generator.cpp.o" "gcc" "CMakeFiles/pls.dir/src/circuit/generator.cpp.o.d"
  "/root/repo/src/circuit/levelize.cpp" "CMakeFiles/pls.dir/src/circuit/levelize.cpp.o" "gcc" "CMakeFiles/pls.dir/src/circuit/levelize.cpp.o.d"
  "/root/repo/src/framework/driver.cpp" "CMakeFiles/pls.dir/src/framework/driver.cpp.o" "gcc" "CMakeFiles/pls.dir/src/framework/driver.cpp.o.d"
  "/root/repo/src/framework/registry.cpp" "CMakeFiles/pls.dir/src/framework/registry.cpp.o" "gcc" "CMakeFiles/pls.dir/src/framework/registry.cpp.o.d"
  "/root/repo/src/graph/weighted_graph.cpp" "CMakeFiles/pls.dir/src/graph/weighted_graph.cpp.o" "gcc" "CMakeFiles/pls.dir/src/graph/weighted_graph.cpp.o.d"
  "/root/repo/src/hypergraph/coarsen.cpp" "CMakeFiles/pls.dir/src/hypergraph/coarsen.cpp.o" "gcc" "CMakeFiles/pls.dir/src/hypergraph/coarsen.cpp.o.d"
  "/root/repo/src/hypergraph/hypergraph.cpp" "CMakeFiles/pls.dir/src/hypergraph/hypergraph.cpp.o" "gcc" "CMakeFiles/pls.dir/src/hypergraph/hypergraph.cpp.o.d"
  "/root/repo/src/hypergraph/initial.cpp" "CMakeFiles/pls.dir/src/hypergraph/initial.cpp.o" "gcc" "CMakeFiles/pls.dir/src/hypergraph/initial.cpp.o.d"
  "/root/repo/src/hypergraph/metrics.cpp" "CMakeFiles/pls.dir/src/hypergraph/metrics.cpp.o" "gcc" "CMakeFiles/pls.dir/src/hypergraph/metrics.cpp.o.d"
  "/root/repo/src/hypergraph/multilevel_hg_partitioner.cpp" "CMakeFiles/pls.dir/src/hypergraph/multilevel_hg_partitioner.cpp.o" "gcc" "CMakeFiles/pls.dir/src/hypergraph/multilevel_hg_partitioner.cpp.o.d"
  "/root/repo/src/hypergraph/refine.cpp" "CMakeFiles/pls.dir/src/hypergraph/refine.cpp.o" "gcc" "CMakeFiles/pls.dir/src/hypergraph/refine.cpp.o.d"
  "/root/repo/src/logicsim/activity.cpp" "CMakeFiles/pls.dir/src/logicsim/activity.cpp.o" "gcc" "CMakeFiles/pls.dir/src/logicsim/activity.cpp.o.d"
  "/root/repo/src/logicsim/equivalence.cpp" "CMakeFiles/pls.dir/src/logicsim/equivalence.cpp.o" "gcc" "CMakeFiles/pls.dir/src/logicsim/equivalence.cpp.o.d"
  "/root/repo/src/logicsim/netlist_lps.cpp" "CMakeFiles/pls.dir/src/logicsim/netlist_lps.cpp.o" "gcc" "CMakeFiles/pls.dir/src/logicsim/netlist_lps.cpp.o.d"
  "/root/repo/src/logicsim/sequential.cpp" "CMakeFiles/pls.dir/src/logicsim/sequential.cpp.o" "gcc" "CMakeFiles/pls.dir/src/logicsim/sequential.cpp.o.d"
  "/root/repo/src/partition/coarsen.cpp" "CMakeFiles/pls.dir/src/partition/coarsen.cpp.o" "gcc" "CMakeFiles/pls.dir/src/partition/coarsen.cpp.o.d"
  "/root/repo/src/partition/cone_partitioner.cpp" "CMakeFiles/pls.dir/src/partition/cone_partitioner.cpp.o" "gcc" "CMakeFiles/pls.dir/src/partition/cone_partitioner.cpp.o.d"
  "/root/repo/src/partition/initial.cpp" "CMakeFiles/pls.dir/src/partition/initial.cpp.o" "gcc" "CMakeFiles/pls.dir/src/partition/initial.cpp.o.d"
  "/root/repo/src/partition/metrics.cpp" "CMakeFiles/pls.dir/src/partition/metrics.cpp.o" "gcc" "CMakeFiles/pls.dir/src/partition/metrics.cpp.o.d"
  "/root/repo/src/partition/multilevel_partitioner.cpp" "CMakeFiles/pls.dir/src/partition/multilevel_partitioner.cpp.o" "gcc" "CMakeFiles/pls.dir/src/partition/multilevel_partitioner.cpp.o.d"
  "/root/repo/src/partition/partition.cpp" "CMakeFiles/pls.dir/src/partition/partition.cpp.o" "gcc" "CMakeFiles/pls.dir/src/partition/partition.cpp.o.d"
  "/root/repo/src/partition/random_partitioner.cpp" "CMakeFiles/pls.dir/src/partition/random_partitioner.cpp.o" "gcc" "CMakeFiles/pls.dir/src/partition/random_partitioner.cpp.o.d"
  "/root/repo/src/partition/refine_fm.cpp" "CMakeFiles/pls.dir/src/partition/refine_fm.cpp.o" "gcc" "CMakeFiles/pls.dir/src/partition/refine_fm.cpp.o.d"
  "/root/repo/src/partition/refine_greedy.cpp" "CMakeFiles/pls.dir/src/partition/refine_greedy.cpp.o" "gcc" "CMakeFiles/pls.dir/src/partition/refine_greedy.cpp.o.d"
  "/root/repo/src/partition/refine_kl.cpp" "CMakeFiles/pls.dir/src/partition/refine_kl.cpp.o" "gcc" "CMakeFiles/pls.dir/src/partition/refine_kl.cpp.o.d"
  "/root/repo/src/partition/topological_partitioner.cpp" "CMakeFiles/pls.dir/src/partition/topological_partitioner.cpp.o" "gcc" "CMakeFiles/pls.dir/src/partition/topological_partitioner.cpp.o.d"
  "/root/repo/src/partition/traversal_partitioners.cpp" "CMakeFiles/pls.dir/src/partition/traversal_partitioners.cpp.o" "gcc" "CMakeFiles/pls.dir/src/partition/traversal_partitioners.cpp.o.d"
  "/root/repo/src/util/cli.cpp" "CMakeFiles/pls.dir/src/util/cli.cpp.o" "gcc" "CMakeFiles/pls.dir/src/util/cli.cpp.o.d"
  "/root/repo/src/util/csv.cpp" "CMakeFiles/pls.dir/src/util/csv.cpp.o" "gcc" "CMakeFiles/pls.dir/src/util/csv.cpp.o.d"
  "/root/repo/src/util/log.cpp" "CMakeFiles/pls.dir/src/util/log.cpp.o" "gcc" "CMakeFiles/pls.dir/src/util/log.cpp.o.d"
  "/root/repo/src/util/stats.cpp" "CMakeFiles/pls.dir/src/util/stats.cpp.o" "gcc" "CMakeFiles/pls.dir/src/util/stats.cpp.o.d"
  "/root/repo/src/util/table.cpp" "CMakeFiles/pls.dir/src/util/table.cpp.o" "gcc" "CMakeFiles/pls.dir/src/util/table.cpp.o.d"
  "/root/repo/src/util/timer.cpp" "CMakeFiles/pls.dir/src/util/timer.cpp.o" "gcc" "CMakeFiles/pls.dir/src/util/timer.cpp.o.d"
  "/root/repo/src/warped/kernel.cpp" "CMakeFiles/pls.dir/src/warped/kernel.cpp.o" "gcc" "CMakeFiles/pls.dir/src/warped/kernel.cpp.o.d"
  "/root/repo/src/warped/lp_runtime.cpp" "CMakeFiles/pls.dir/src/warped/lp_runtime.cpp.o" "gcc" "CMakeFiles/pls.dir/src/warped/lp_runtime.cpp.o.d"
  "/root/repo/src/warped/stats.cpp" "CMakeFiles/pls.dir/src/warped/stats.cpp.o" "gcc" "CMakeFiles/pls.dir/src/warped/stats.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
