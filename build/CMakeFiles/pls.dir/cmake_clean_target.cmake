file(REMOVE_RECURSE
  "libpls.a"
)
