# Empty dependencies file for pls.
# This may be replaced when dependencies are built.
