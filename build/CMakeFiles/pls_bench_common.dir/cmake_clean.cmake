file(REMOVE_RECURSE
  "CMakeFiles/pls_bench_common.dir/bench/bench_common.cpp.o"
  "CMakeFiles/pls_bench_common.dir/bench/bench_common.cpp.o.d"
  "libpls_bench_common.a"
  "libpls_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pls_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
