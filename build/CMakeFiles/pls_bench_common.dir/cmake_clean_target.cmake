file(REMOVE_RECURSE
  "libpls_bench_common.a"
)
