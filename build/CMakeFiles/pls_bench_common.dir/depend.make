# Empty dependencies file for pls_bench_common.
# This may be replaced when dependencies are built.
