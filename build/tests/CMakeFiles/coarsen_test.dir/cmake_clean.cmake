file(REMOVE_RECURSE
  "CMakeFiles/coarsen_test.dir/coarsen_test.cpp.o"
  "CMakeFiles/coarsen_test.dir/coarsen_test.cpp.o.d"
  "coarsen_test"
  "coarsen_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/coarsen_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
