file(REMOVE_RECURSE
  "CMakeFiles/levelize_cones_test.dir/levelize_cones_test.cpp.o"
  "CMakeFiles/levelize_cones_test.dir/levelize_cones_test.cpp.o.d"
  "levelize_cones_test"
  "levelize_cones_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/levelize_cones_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
