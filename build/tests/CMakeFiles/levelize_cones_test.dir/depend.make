# Empty dependencies file for levelize_cones_test.
# This may be replaced when dependencies are built.
