file(REMOVE_RECURSE
  "CMakeFiles/logicsim_test.dir/logicsim_test.cpp.o"
  "CMakeFiles/logicsim_test.dir/logicsim_test.cpp.o.d"
  "logicsim_test"
  "logicsim_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/logicsim_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
