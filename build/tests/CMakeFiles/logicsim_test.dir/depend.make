# Empty dependencies file for logicsim_test.
# This may be replaced when dependencies are built.
