file(REMOVE_RECURSE
  "CMakeFiles/multilevel_test.dir/multilevel_test.cpp.o"
  "CMakeFiles/multilevel_test.dir/multilevel_test.cpp.o.d"
  "multilevel_test"
  "multilevel_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multilevel_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
