# Empty dependencies file for multilevel_test.
# This may be replaced when dependencies are built.
