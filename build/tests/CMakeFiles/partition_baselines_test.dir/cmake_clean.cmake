file(REMOVE_RECURSE
  "CMakeFiles/partition_baselines_test.dir/partition_baselines_test.cpp.o"
  "CMakeFiles/partition_baselines_test.dir/partition_baselines_test.cpp.o.d"
  "partition_baselines_test"
  "partition_baselines_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/partition_baselines_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
