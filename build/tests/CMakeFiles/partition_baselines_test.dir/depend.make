# Empty dependencies file for partition_baselines_test.
# This may be replaced when dependencies are built.
