file(REMOVE_RECURSE
  "CMakeFiles/warped_kernel_matrix_test.dir/warped_kernel_matrix_test.cpp.o"
  "CMakeFiles/warped_kernel_matrix_test.dir/warped_kernel_matrix_test.cpp.o.d"
  "warped_kernel_matrix_test"
  "warped_kernel_matrix_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/warped_kernel_matrix_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
