# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for warped_kernel_matrix_test.
