# Empty dependencies file for warped_kernel_matrix_test.
# This may be replaced when dependencies are built.
