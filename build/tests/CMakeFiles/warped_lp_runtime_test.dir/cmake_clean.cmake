file(REMOVE_RECURSE
  "CMakeFiles/warped_lp_runtime_test.dir/warped_lp_runtime_test.cpp.o"
  "CMakeFiles/warped_lp_runtime_test.dir/warped_lp_runtime_test.cpp.o.d"
  "warped_lp_runtime_test"
  "warped_lp_runtime_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/warped_lp_runtime_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
