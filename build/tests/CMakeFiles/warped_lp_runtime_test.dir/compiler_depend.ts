# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for warped_lp_runtime_test.
