# Empty dependencies file for warped_lp_runtime_test.
# This may be replaced when dependencies are built.
