// Example/utility: .bench netlist round-trip tool.
//
// Generates the paper's benchmark stand-ins as real .bench files (so they
// can be inspected or fed to other EDA tools), or validates + summarizes an
// existing .bench file.
//
//   ./examples/bench_tool --emit s9234 --out /tmp/s9234.bench
//   ./examples/bench_tool /path/to/netlist.bench

#include <cstdio>
#include <sstream>

#include "circuit/bench_io.hpp"
#include "circuit/circuit_stats.hpp"
#include "circuit/generator.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  using namespace pls;

  util::Cli cli("bench_tool: emit or inspect ISCAS'89 .bench netlists");
  cli.add_flag("emit", "generate a benchmark stand-in "
                       "(s5378 | s9234 | s15850 | none)",
               "none");
  cli.add_flag("out", "output path for --emit", "circuit.bench");
  cli.add_flag("seed", "generator seed", "2000");
  if (!cli.parse(argc, argv)) return 1;

  if (cli.get("emit") != "none") {
    const circuit::Circuit c = circuit::make_iscas_like(
        cli.get("emit"), static_cast<std::uint64_t>(cli.get_int("seed")));
    circuit::write_bench_file(cli.get("out"), c);
    std::ostringstream os;
    os << circuit::compute_stats(c);
    std::printf("wrote %s: %s\n", cli.get("out").c_str(), os.str().c_str());
    return 0;
  }

  if (cli.positional().empty()) {
    std::fprintf(stderr, "%s", cli.usage().c_str());
    return 1;
  }
  for (const auto& path : cli.positional()) {
    try {
      const circuit::Circuit c = circuit::parse_bench_file(path);
      std::ostringstream os;
      os << circuit::compute_stats(c);
      std::printf("%s: OK — %s\n", path.c_str(), os.str().c_str());
    } catch (const std::exception& e) {
      std::printf("%s: INVALID — %s\n", path.c_str(), e.what());
      return 2;
    }
  }
  return 0;
}
