// Example: build a netlist programmatically with the Circuit API, write it
// out in ISCAS'89 .bench format, simulate it, and inspect the waveform-ish
// final state.  The circuit is a 4-bit ripple "toggle chain": each DFF
// toggles when all lower bits are 1 — a miniature counter whose expected
// final state can be reasoned about by hand.
//
//   ./examples/custom_circuit [--end 400]

#include <cstdio>

#include "circuit/bench_io.hpp"
#include "circuit/circuit.hpp"
#include "framework/driver.hpp"
#include "logicsim/equivalence.hpp"
#include "logicsim/netlist_lps.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  using namespace pls;
  using circuit::GateType;

  util::Cli cli("custom_circuit: hand-built counter through the full stack");
  cli.add_flag("end", "virtual-time horizon", "400");
  if (!cli.parse(argc, argv)) return 1;

  // --- build a 4-bit toggle-chain counter ---------------------------------
  circuit::Circuit c("counter4");
  const auto en = c.add_input("en");
  std::vector<circuit::GateId> bits;
  std::vector<circuit::GateId> xors;
  circuit::GateId carry = en;  // toggle bit i when en & bits[0..i-1]
  for (int i = 0; i < 4; ++i) {
    const auto ff =
        c.add_gate("q" + std::to_string(i), GateType::kDff);
    const auto x =
        c.add_gate("x" + std::to_string(i), GateType::kXor, {ff, carry});
    c.connect(ff, x);  // D = Q xor carry
    bits.push_back(ff);
    xors.push_back(x);
    if (i < 3) {
      carry = c.add_gate("c" + std::to_string(i), GateType::kAnd,
                         {carry, ff});
    }
  }
  for (auto ff : bits) c.mark_output(ff);
  c.freeze();

  // --- show it in .bench form ----------------------------------------------
  std::printf("netlist:\n%s\n",
              circuit::write_bench_string(c).c_str());

  // --- simulate in parallel on 2 nodes and verify --------------------------
  framework::DriverConfig cfg;
  cfg.num_nodes = 2;
  cfg.partitioner = "Multilevel";
  cfg.end_time = static_cast<warped::SimTime>(cli.get_int("end"));
  cfg.model.stim_period = 40;
  const auto par = framework::run_parallel(c, cfg);
  const auto seq = framework::run_sequential(c, cfg);
  const auto eq = logicsim::check_equivalence(par.run, seq);

  std::printf("simulated to t=%llu on 2 nodes: %llu committed events, "
              "%llu rollbacks — %s\n",
              static_cast<unsigned long long>(cfg.end_time),
              static_cast<unsigned long long>(par.run.totals.events_committed),
              static_cast<unsigned long long>(par.run.totals.total_rollbacks()),
              eq.describe().c_str());

  std::printf("final counter bits (q3..q0): ");
  for (int i = 3; i >= 0; --i) {
    std::printf("%d", logicsim::DffLp::q_of(par.run.final_states[bits[i]])
                          ? 1
                          : 0);
  }
  std::printf("\n");
  return eq.ok() ? 0 : 2;
}
