// Example: concurrent stuck-at fault simulation on the batched engine —
// the classic use of bit-parallel logic simulation.  Lane 0 runs the
// fault-free circuit; lane i+1 runs the same stimulus with fault i's gate
// output forced to a constant.  All 64 scenarios share one event stream
// (uniform stimulus), so a fault costs almost nothing until its effect
// diverges — and the primary outputs accumulate which lanes ever differed
// from lane 0, which is exactly the detected-fault set.
//
// Counts above 63 widen the run past one value word (multi-word lanes,
// logicsim/lanes.hpp): 255 faults + the reference lane fill four words.
//
//   ./examples/fault_simulation [--circuit s5378] [--faults 63]
//                               [--nodes 4] [--end 1200] [--scale 0.5]

#include <cstdio>

#include "circuit/generator.hpp"
#include "framework/driver.hpp"
#include "logicsim/equivalence.hpp"
#include "logicsim/lanes.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace pls;

  util::Cli cli("fault_simulation: 63 stuck-at faults per batched run");
  cli.add_flag("circuit", "s5378 | s9234 | s15850", "s5378");
  cli.add_flag("faults", "stuck-at faults per run (1-255)", "63");
  cli.add_flag("nodes", "number of nodes", "4");
  cli.add_flag("end", "virtual-time horizon", "1200");
  cli.add_flag("scale", "circuit size multiplier", "0.5");
  cli.add_flag("seed", "stimulus seed (uniform across lanes)", "2000");
  cli.add_flag("fault-seed", "fault-site sampling seed", "9");
  if (!cli.parse(argc, argv)) return 1;
  const std::int64_t faults_raw = cli.get_int("faults");
  if (faults_raw < 1 || faults_raw > 255) {
    std::fprintf(stderr, "--faults must be in [1,255], got %lld\n",
                 static_cast<long long>(faults_raw));
    return 1;
  }
  const std::int64_t end = cli.get_int("end");
  if (end <= 0) {
    std::fprintf(stderr, "--end must be positive\n");
    return 1;
  }

  circuit::GeneratorSpec spec = circuit::iscas_spec(
      cli.get("circuit"), static_cast<std::uint64_t>(cli.get_int("seed")));
  const double scale = cli.get_double("scale");
  spec.num_comb_gates = std::max<std::size_t>(
      4, static_cast<std::size_t>(
             static_cast<double>(spec.num_comb_gates) * scale));
  spec.num_dffs = std::max<std::size_t>(
      4, static_cast<std::size_t>(static_cast<double>(spec.num_dffs) * scale));
  const circuit::Circuit c = circuit::generate(spec);

  framework::DriverConfig cfg;
  cfg.num_nodes = static_cast<std::uint32_t>(cli.get_int("nodes"));
  cfg.end_time = static_cast<warped::SimTime>(end);
  cfg.seed = spec.seed;
  cfg.model.uniform_stimulus = true;  // lanes differ only via their faults
  cfg.model.faults = logicsim::sample_faults(
      c, static_cast<std::size_t>(faults_raw),
      static_cast<std::uint64_t>(cli.get_int("fault-seed")));
  cfg.lanes =
      static_cast<std::uint32_t>(cfg.model.faults.size()) + 1;

  std::printf(
      "%s (x%.2f, %zu gates): %zu stuck-at faults + fault-free lane 0, "
      "%u nodes\n\n",
      cli.get("circuit").c_str(), scale, c.size(), cfg.model.faults.size(),
      cfg.num_nodes);

  // Optimistic run, verified against the batched sequential reference —
  // fault detection inherits Time Warp's correctness guarantees.
  const auto seq = framework::run_sequential(c, cfg);
  const auto par = framework::run_parallel(c, cfg);
  const auto eq = logicsim::check_equivalence(par.run, seq);
  if (!eq.ok()) {
    std::fprintf(stderr, "backend equivalence failure: %s\n",
                 eq.describe().c_str());
    return 2;
  }

  const auto detected = logicsim::detected_faults(
      c, cfg.model.faults, par.run.final_states, cfg.lanes);
  util::AsciiTable table({"Fault", "Gate", "Stuck at", "Detected"});
  std::size_t covered = 0;
  for (std::size_t i = 0; i < cfg.model.faults.size(); ++i) {
    const auto& f = cfg.model.faults[i];
    covered += detected[i] ? 1 : 0;
    table.add_row({std::to_string(i), c.gate_name(f.gate),
                   f.stuck_value ? "1" : "0", detected[i] ? "yes" : "no"});
  }
  std::printf("%s", table.render().c_str());
  std::printf("\ncoverage: %zu / %zu faults detected (%.1f%%) in %.3fs "
              "(one batched run, %llu events)\n",
              covered, cfg.model.faults.size(),
              100.0 * static_cast<double>(covered) /
                  static_cast<double>(cfg.model.faults.size()),
              par.run.wall_seconds,
              static_cast<unsigned long long>(
                  par.run.totals.events_committed));
  return 0;
}
