// Example: Monte Carlo stimulus sweep with the bit-parallel batched
// engine — N independent random-stimulus scenarios (lanes) advance through
// one simulation, each event carrying a 64-bit value word plus the mask of
// lanes that changed.  The run is verified three ways: the optimistic
// parallel run commits exactly the batched sequential results, sampled
// lanes are bit-identical to independent scalar runs with their lane
// seeds, and the committed-transition total matches the scalar runs' sum.
//
//   ./examples/monte_carlo_sweep [--circuit s9234] [--lanes 64]
//                                [--nodes 4] [--end 1200] [--scale 0.5]

#include <cstdio>
#include <numeric>

#include "circuit/generator.hpp"
#include "framework/driver.hpp"
#include "logicsim/equivalence.hpp"
#include "logicsim/lanes.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace pls;

  util::Cli cli("monte_carlo_sweep: N stimulus scenarios per run, verified");
  cli.add_flag("circuit", "s5378 | s9234 | s15850", "s9234");
  cli.add_flag("lanes", "bit-parallel scenarios per run (1-256)", "64");
  cli.add_flag("nodes", "number of nodes", "4");
  cli.add_flag("end", "virtual-time horizon", "1200");
  cli.add_flag("scale", "circuit size multiplier", "0.5");
  cli.add_flag("seed", "base stimulus seed (lane j uses lane_seed(seed,j))",
               "2000");
  if (!cli.parse(argc, argv)) return 1;
  const std::int64_t lanes_raw = cli.get_int("lanes");
  if (lanes_raw < 1 || lanes_raw > logicsim::kMaxLanes) {
    std::fprintf(stderr, "--lanes must be in [1,%u], got %lld\n",
                 logicsim::kMaxLanes, static_cast<long long>(lanes_raw));
    return 1;
  }
  const auto lanes = static_cast<std::uint32_t>(lanes_raw);
  const std::int64_t end = cli.get_int("end");
  if (end <= 0) {
    std::fprintf(stderr, "--end must be positive\n");
    return 1;
  }

  circuit::GeneratorSpec spec = circuit::iscas_spec(
      cli.get("circuit"), static_cast<std::uint64_t>(cli.get_int("seed")));
  const double scale = cli.get_double("scale");
  spec.num_comb_gates = std::max<std::size_t>(
      4, static_cast<std::size_t>(
             static_cast<double>(spec.num_comb_gates) * scale));
  spec.num_dffs = std::max<std::size_t>(
      4, static_cast<std::size_t>(static_cast<double>(spec.num_dffs) * scale));
  const circuit::Circuit c = circuit::generate(spec);

  framework::DriverConfig cfg;
  cfg.num_nodes = static_cast<std::uint32_t>(cli.get_int("nodes"));
  cfg.end_time = static_cast<warped::SimTime>(end);
  cfg.seed = spec.seed;
  cfg.lanes = lanes;
  cfg.model.stim_period = 50;

  std::printf("%s (x%.2f, %zu gates): %u scenarios per run on %u nodes\n\n",
              cli.get("circuit").c_str(), scale, c.size(), lanes,
              cfg.num_nodes);

  // Batched runs on both backends; the Time Warp run must commit exactly
  // the sequential results, full lane words included.
  const auto seq = framework::run_sequential(c, cfg);
  const auto par = framework::run_parallel(c, cfg);
  const auto eq = logicsim::check_equivalence(par.run, seq);
  if (!eq.ok()) {
    std::fprintf(stderr, "backend equivalence failure: %s\n",
                 eq.describe().c_str());
    return 2;
  }

  // Spot-check the lane-equivalence contract: the first, middle and last
  // lanes each project onto an independent scalar run with their seed.
  std::uint64_t scalar_transitions_sampled = 0;
  double scalar_seconds = 0.0;
  unsigned lanes_checked = 0;
  for (unsigned lane : {0u, lanes / 2, lanes - 1}) {
    if (lane >= lanes) continue;
    framework::DriverConfig scalar = cfg;
    scalar.lanes = 1;
    scalar.seed = logicsim::lane_seed(cfg.seed, lane);
    const auto ref = framework::run_sequential(c, scalar);
    scalar_seconds += ref.wall_seconds;
    scalar_transitions_sampled += std::accumulate(
        ref.per_lp_sends.begin(), ref.per_lp_sends.end(), std::uint64_t{0});
    const auto rep = logicsim::check_lane_equivalence(
        c, par.run.final_states, lane, lanes, ref.final_states);
    if (!rep.ok()) {
      std::fprintf(stderr, "lane %u diverged from its scalar run: %s\n",
                   lane, rep.describe().c_str());
      return 2;
    }
    ++lanes_checked;
  }

  const std::uint64_t batched_transitions = std::accumulate(
      seq.per_lp_sends.begin(), seq.per_lp_sends.end(), std::uint64_t{0});
  // Extrapolate the scalar baseline from the sampled lanes: running all N
  // scenarios one-at-a-time costs roughly N/(sampled) times the sampled
  // total, since every scalar run simulates the same circuit and horizon.
  const double scalar_total_est =
      scalar_seconds * static_cast<double>(lanes) / lanes_checked;

  util::AsciiTable table({"Run", "Time(s)", "Events/s", "Transitions/s"});
  auto rate = [](double x, double secs) {
    return util::AsciiTable::num(secs > 0 ? x / secs : 0.0, 0);
  };
  table.add_row({"batched seq", util::AsciiTable::num(seq.wall_seconds, 3),
                 rate(static_cast<double>(seq.events_processed),
                      seq.wall_seconds),
                 rate(static_cast<double>(batched_transitions),
                      seq.wall_seconds)});
  table.add_row(
      {"batched TW", util::AsciiTable::num(par.run.wall_seconds, 3),
       rate(static_cast<double>(par.run.totals.events_committed),
            par.run.wall_seconds),
       rate(static_cast<double>(batched_transitions), par.run.wall_seconds)});
  table.add_row({std::to_string(lanes) + " scalar runs (est)",
                 util::AsciiTable::num(scalar_total_est, 3),
                 rate(static_cast<double>(batched_transitions),
                      scalar_total_est),
                 rate(static_cast<double>(batched_transitions),
                      scalar_total_est)});
  std::printf("%s", table.render().c_str());
  std::printf(
      "\n%u lanes verified against scalar references; batched run carries "
      "%.1f transitions per committed word\n",
      lanes_checked,
      batched_transitions > 0 && seq.events_processed > 0
          ? static_cast<double>(batched_transitions) /
                static_cast<double>(seq.events_processed)
          : 0.0);
  std::printf("batching speedup over one-scenario-at-a-time: %.1fx\n",
              seq.wall_seconds > 0 ? scalar_total_est / seq.wall_seconds
                                   : 0.0);
  return 0;
}
