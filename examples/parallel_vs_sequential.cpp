// Example: the paper's core experiment on one circuit — run the optimistic
// parallel simulation under every partitioning strategy at a chosen node
// count, verify each run against the sequential reference, and print the
// Table-2-style comparison row.
//
//   ./examples/parallel_vs_sequential [--circuit s9234] [--nodes 8]
//                                     [--end 1200] [--scale 0.5]

#include <cstdio>

#include "circuit/generator.hpp"
#include "framework/driver.hpp"
#include "framework/registry.hpp"
#include "logicsim/equivalence.hpp"
#include "obs/export.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace pls;

  util::Cli cli("parallel_vs_sequential: one Table 2 row, verified");
  cli.add_flag("circuit", "s5378 | s9234 | s15850", "s9234");
  cli.add_flag("nodes", "number of nodes", "8");
  cli.add_flag("end", "virtual-time horizon", "1200");
  cli.add_flag("scale", "circuit size multiplier", "0.5");
  cli.add_flag("seed", "seed", "2000");
  cli.add_flag("throttle", "optimism throttle: adaptive | fixed | unlimited",
               "adaptive");
  cli.add_flag("window",
               "optimism window (fixed mode) / initial window (adaptive)",
               "0");
  cli.add_flag("repartition",
               "dynamic repartitioning: off | gvt (gvt = repartition every "
               "4 GVT rounds with live LP migration; multilevel strategies "
               "only)",
               "off");
  cli.add_flag("partition-cache",
               "directory for the on-disk partition cache (empty = off); "
               "repeat runs with identical circuit/strategy/seed replay "
               "the cached assignment",
               "");
  cli.add_flag("trace",
               "write a Perfetto trace of the Multilevel row here (plus "
               "metrics CSV at <path>.metrics.csv; empty = off)",
               "");
  cli.add_flag("metrics-interval",
               "metrics sampling interval in ms for the traced run (1 ms "
               "default: smoke-scale runs finish in tens of ms)",
               "1");
  if (!cli.parse(argc, argv)) return 1;
  warped::ThrottleMode throttle_mode;
  if (!warped::parse_throttle_mode(cli.get("throttle"), &throttle_mode)) {
    std::fprintf(stderr, "unknown --throttle mode '%s'\n",
                 cli.get("throttle").c_str());
    return 1;
  }

  circuit::GeneratorSpec spec = circuit::iscas_spec(
      cli.get("circuit"), static_cast<std::uint64_t>(cli.get_int("seed")));
  const double scale = cli.get_double("scale");
  spec.num_comb_gates = static_cast<std::size_t>(
      static_cast<double>(spec.num_comb_gates) * scale);
  spec.num_dffs = std::max<std::size_t>(
      4, static_cast<std::size_t>(static_cast<double>(spec.num_dffs) * scale));
  const circuit::Circuit c = circuit::generate(spec);

  framework::DriverConfig cfg;
  cfg.num_nodes = static_cast<std::uint32_t>(cli.get_int("nodes"));
  const std::int64_t end = cli.get_int("end");
  if (end <= 0) {
    std::fprintf(stderr, "--end must be positive, got %lld\n",
                 static_cast<long long>(end));
    return 1;
  }
  cfg.end_time = static_cast<warped::SimTime>(end);
  cfg.seed = spec.seed;
  cfg.model.stim_period = 50;
  cfg.throttle.mode = throttle_mode;
  const std::int64_t window = cli.get_int("window");
  if (window < 0) {
    std::fprintf(stderr, "--window must be non-negative, got %lld\n",
                 static_cast<long long>(window));
    return 1;
  }
  cfg.optimism_window = static_cast<warped::SimTime>(window);
  cfg.partition_cache_dir = cli.get("partition-cache");
  const std::string repartition = cli.get("repartition");
  if (repartition != "off" && repartition != "gvt") {
    std::fprintf(stderr, "unknown --repartition mode '%s' (want off|gvt)\n",
                 repartition.c_str());
    return 1;
  }
  const std::string trace_path = cli.get("trace");
  const std::int64_t metrics_ms = cli.get_int("metrics-interval");
  if (metrics_ms < 0) {
    std::fprintf(stderr, "--metrics-interval must be non-negative\n");
    return 1;
  }

  const auto seq = framework::run_sequential(c, cfg);
  std::printf(
      "%s (x%.2f) on %u nodes, %s throttle — sequential: %.3fs, %llu "
      "events\n\n",
      cli.get("circuit").c_str(), scale, cfg.num_nodes,
      warped::to_string(cfg.throttle.mode), seq.wall_seconds,
      static_cast<unsigned long long>(seq.events_processed));

  util::AsciiTable table({"Strategy", "Time(s)", "Speedup", "Rollbacks",
                          "AppMsgs", "Migrations", "Verified"});
  for (const auto& name : framework::partitioner_names()) {
    cfg.partitioner = name;
    // Dynamic repartitioning needs a weight-consuming strategy; the other
    // rows stay static so the table keeps every strategy comparable.
    const bool adaptive = repartition == "gvt" &&
                          framework::strategy_consumes_weights(name);
    cfg.repartition_interval = adaptive ? 4 : 0;
    // Trace exactly one row — the paper's headline strategy — so the
    // artifact shows a single run, not six concatenated ones.
    const bool traced = !trace_path.empty() && name == "Multilevel";
    cfg.obs = obs::ObsConfig{};
    if (traced) {
      cfg.obs.trace = true;
      cfg.obs.metrics_interval_us =
          static_cast<std::uint64_t>(metrics_ms) * 1000;
    }
    const auto res = framework::run_parallel(c, cfg);
    if (traced && res.obs != nullptr) {
      if (obs::write_perfetto_trace_file(trace_path, *res.obs)) {
        std::printf("trace written to %s\n", trace_path.c_str());
      }
      obs::write_metrics_csv_file(trace_path + ".metrics.csv", *res.obs);
    }
    const auto eq = logicsim::check_equivalence(res.run, seq);
    table.add_row(
        {name, util::AsciiTable::num(res.run.wall_seconds, 3),
         util::AsciiTable::num(seq.wall_seconds / res.run.wall_seconds, 2),
         std::to_string(res.run.totals.total_rollbacks()),
         std::to_string(res.run.totals.inter_node_messages),
         adaptive ? std::to_string(res.lps_migrated) : "-",
         eq.ok() ? "yes" : ("NO: " + eq.describe())});
    if (!eq.ok()) {
      std::fprintf(stderr, "equivalence failure under %s!\n", name.c_str());
      return 2;
    }
  }
  std::printf("%s", table.render().c_str());
  return 0;
}
