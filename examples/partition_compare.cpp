// Example: compare all registered partitioning strategies on one circuit.
//
// Loads a .bench netlist if given (positional argument), otherwise
// generates the s9234 stand-in, and prints the static quality metrics
// (both the pairwise edge cut and the native hypergraph λ−1 volume) plus
// the multilevel traces of the graph and hypergraph pipelines — a compact
// view of how the three-phase algorithms work.
//
//   ./examples/partition_compare [netlist.bench] [--k 8] [--seed 7]

#include <cstdio>
#include <sstream>

#include "circuit/bench_io.hpp"
#include "circuit/circuit_stats.hpp"
#include "circuit/generator.hpp"
#include "framework/registry.hpp"
#include "hypergraph/metrics.hpp"
#include "hypergraph/multilevel_hg_partitioner.hpp"
#include "partition/metrics.hpp"
#include "partition/multilevel_partitioner.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

int main(int argc, char** argv) {
  using namespace pls;

  util::Cli cli("partition_compare: static quality of every strategy");
  cli.add_flag("k", "number of parts", "8");
  cli.add_flag("seed", "partitioning seed", "7");
  if (!cli.parse(argc, argv)) return 1;
  const auto k = static_cast<std::uint32_t>(cli.get_int("k"));
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed"));

  const circuit::Circuit c =
      cli.positional().empty()
          ? circuit::make_iscas_like("s9234", seed)
          : circuit::parse_bench_file(cli.positional().front());
  {
    std::ostringstream os;
    os << circuit::compute_stats(c);
    std::printf("circuit: %s\n\n", os.str().c_str());
  }
  const hypergraph::Hypergraph hg = hypergraph::Hypergraph::from_circuit(c);

  util::AsciiTable table({"Strategy", "EdgeCut", "HGLambda1", "HGCutNets",
                          "Imbalance", "Concurrency", "Time(ms)"});
  for (const auto& name : framework::partitioner_names()) {
    const auto strategy = framework::make_partitioner(name);
    util::WallTimer t;
    const partition::Partition p = strategy->run(c, k, seed);
    const double ms = t.elapsed_seconds() * 1e3;
    table.add_row(
        {name, std::to_string(partition::edge_cut(c, p)),
         std::to_string(hypergraph::connectivity_minus_one(hg, p)),
         std::to_string(hypergraph::cut_net(hg, p)),
         util::AsciiTable::num(partition::imbalance(c, p), 3),
         util::AsciiTable::num(partition::concurrency(c, p), 3),
         util::AsciiTable::num(ms)});
  }
  std::printf("%s\n", table.render().c_str());

  // Peek inside the graph multilevel pipeline.
  partition::MultilevelTrace trace;
  partition::MultilevelPartitioner().run_traced(c, k, seed, &trace);
  std::printf("multilevel hierarchy: %zu gates", c.size());
  for (std::size_t s : trace.level_sizes) std::printf(" -> %zu", s);
  std::printf(" globules\ninitial cut %llu",
              static_cast<unsigned long long>(trace.initial_quality));
  for (std::uint64_t cut : trace.quality_after_level) {
    std::printf(" -> %llu", static_cast<unsigned long long>(cut));
  }
  std::printf(" (refined per level, coarsest to original)\n\n");

  // And the hypergraph pipeline, in λ−1 terms.
  hypergraph::MultilevelHGTrace hg_trace;
  hypergraph::MultilevelHGPartitioner().run_traced(c, k, seed, &hg_trace);
  std::printf("hypergraph hierarchy: %zu gates", c.size());
  for (std::size_t s : hg_trace.level_sizes) std::printf(" -> %zu", s);
  std::printf(" globules\ninitial lambda-1 %llu",
              static_cast<unsigned long long>(hg_trace.initial_quality));
  for (std::uint64_t v : hg_trace.quality_after_level) {
    std::printf(" -> %llu", static_cast<unsigned long long>(v));
  }
  std::printf(" (refined per level, coarsest to original)\n");
  return 0;
}
