// Quickstart: the whole pipeline in ~60 lines.
//
// Generates a mid-size synthetic circuit, partitions it with the paper's
// multilevel algorithm, simulates it on the optimistic Time Warp kernel
// across 4 nodes, and verifies the committed results against a sequential
// reference run.
//
//   ./examples/quickstart [--gates N] [--nodes K] [--end T] [--partitioner P]

#include <cstdio>
#include <sstream>

#include "circuit/circuit_stats.hpp"
#include "circuit/generator.hpp"
#include "framework/driver.hpp"
#include "logicsim/equivalence.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  using namespace pls;

  util::Cli cli("quickstart: partition a synthetic circuit and simulate it");
  cli.add_flag("gates", "combinational gate count", "800");
  cli.add_flag("nodes", "number of simulation nodes", "4");
  cli.add_flag("end", "virtual-time horizon", "2000");
  cli.add_flag("partitioner",
               "Random | DFS | Cluster | Topological | Multilevel | "
               "ConePartition",
               "Multilevel");
  cli.add_flag("seed", "generator / stimulus seed", "42");
  if (!cli.parse(argc, argv)) return 1;

  // 1. A circuit (swap in circuit::parse_bench_file() for a real netlist).
  circuit::GeneratorSpec spec;
  spec.name = "quickstart";
  spec.num_comb_gates = static_cast<std::size_t>(cli.get_int("gates"));
  spec.num_inputs = 24;
  spec.num_outputs = 12;
  spec.num_dffs = spec.num_comb_gates / 16;
  spec.seed = static_cast<std::uint64_t>(cli.get_int("seed"));
  const circuit::Circuit c = circuit::generate(spec);
  std::printf("circuit: %s\n",
              [&] {
                std::ostringstream os;
                os << circuit::compute_stats(c);
                return os.str();
              }()
                  .c_str());

  // 2. Partition + parallel simulation.
  framework::DriverConfig cfg;
  cfg.partitioner = cli.get("partitioner");
  cfg.num_nodes = static_cast<std::uint32_t>(cli.get_int("nodes"));
  cfg.end_time = static_cast<warped::SimTime>(cli.get_int("end"));
  cfg.seed = spec.seed;
  const framework::DriverResult res = framework::run_parallel(c, cfg);

  std::printf("partition (%s, k=%u): edge_cut=%llu imbalance=%.3f "
              "concurrency=%.3f (%.1f ms)\n",
              cfg.partitioner.c_str(), cfg.num_nodes,
              static_cast<unsigned long long>(res.edge_cut), res.imbalance,
              res.concurrency, res.partition_seconds * 1e3);
  std::printf("parallel:   %.3fs, %llu committed, %llu rollbacks, "
              "%llu app messages\n",
              res.run.wall_seconds,
              static_cast<unsigned long long>(res.run.totals.events_committed),
              static_cast<unsigned long long>(res.run.totals.total_rollbacks()),
              static_cast<unsigned long long>(
                  res.run.totals.inter_node_messages));

  // 3. Sequential reference + equivalence check.
  const logicsim::SeqStats seq = framework::run_sequential(c, cfg);
  std::printf("sequential: %.3fs, %llu events\n", seq.wall_seconds,
              static_cast<unsigned long long>(seq.events_processed));

  const auto eq = logicsim::check_equivalence(res.run, seq);
  std::printf("equivalence: %s\n", eq.describe().c_str());
  return eq.ok() ? 0 : 2;
}
