#include "circuit/bench_io.hpp"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <optional>
#include <sstream>
#include <unordered_map>
#include <vector>

#include "util/check.hpp"

namespace pls::circuit {
namespace {

std::string upper(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return std::toupper(c); });
  return s;
}

// Whitespace test with '\r' spelled out: ISCAS archives ship CRLF .bench
// files and std::getline leaves the carriage return on every line, so the
// stripping here is load-bearing.  std::isspace covers '\r' too in the
// default locale; this explicit list keeps the guarantee independent of
// any future setlocale() and of char-sign UB.
bool is_space(char c) {
  return c == ' ' || c == '\t' || c == '\r' || c == '\n' || c == '\v' ||
         c == '\f';
}

std::string strip(const std::string& s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && is_space(s[b])) ++b;
  while (e > b && is_space(s[e - 1])) --e;
  return s.substr(b, e - b);
}

std::optional<GateType> gate_type_from(const std::string& kw) {
  const std::string k = upper(kw);
  if (k == "AND") return GateType::kAnd;
  if (k == "NAND") return GateType::kNand;
  if (k == "OR") return GateType::kOr;
  if (k == "NOR") return GateType::kNor;
  if (k == "XOR") return GateType::kXor;
  if (k == "XNOR") return GateType::kXnor;
  if (k == "NOT" || k == "INV") return GateType::kNot;
  if (k == "BUF" || k == "BUFF") return GateType::kBuf;
  if (k == "DFF" || k == "FF") return GateType::kDff;
  return std::nullopt;
}

struct PendingGate {
  std::string name;
  GateType type;
  std::vector<std::string> fanin_names;
  int line;
};

}  // namespace

Circuit parse_bench(std::istream& in, const std::string& name) {
  Circuit c(name);
  std::vector<std::string> input_names;
  std::vector<std::string> output_names;
  std::vector<PendingGate> pending;

  std::string raw;
  int lineno = 0;
  while (std::getline(in, raw)) {
    ++lineno;
    // Strip comments ('#' to end of line) and whitespace.
    if (auto hash = raw.find('#'); hash != std::string::npos) {
      raw.erase(hash);
    }
    const std::string line = strip(raw);
    if (line.empty()) continue;

    const auto lparen = line.find('(');
    const auto rparen = line.rfind(')');
    const auto eq = line.find('=');

    if (eq == std::string::npos) {
      // INPUT(x) or OUTPUT(x)
      if (lparen == std::string::npos || rparen == std::string::npos ||
          rparen < lparen) {
        throw BenchParseError(lineno, "expected INPUT(name) or OUTPUT(name)");
      }
      const std::string kw = upper(strip(line.substr(0, lparen)));
      const std::string arg =
          strip(line.substr(lparen + 1, rparen - lparen - 1));
      if (arg.empty()) throw BenchParseError(lineno, "empty signal name");
      if (kw == "INPUT") {
        input_names.push_back(arg);
      } else if (kw == "OUTPUT") {
        output_names.push_back(arg);
      } else {
        throw BenchParseError(lineno, "unknown declaration '" + kw + "'");
      }
      continue;
    }

    // name = TYPE(a, b, ...)
    if (lparen == std::string::npos || rparen == std::string::npos ||
        rparen < lparen || lparen < eq) {
      throw BenchParseError(lineno, "expected name = TYPE(a, b, ...)");
    }
    PendingGate g;
    g.name = strip(line.substr(0, eq));
    g.line = lineno;
    if (g.name.empty()) throw BenchParseError(lineno, "empty gate name");
    const std::string kw = strip(line.substr(eq + 1, lparen - eq - 1));
    const auto type = gate_type_from(kw);
    if (!type) {
      // BenchParseError prefixes the line number; name the gate too so a
      // bad line in a 10k-line netlist is findable either way.
      throw BenchParseError(lineno, "unknown gate type '" + kw +
                                        "' for gate '" + g.name + "'");
    }
    g.type = *type;

    std::string args = line.substr(lparen + 1, rparen - lparen - 1);
    std::stringstream ss(args);
    std::string tok;
    while (std::getline(ss, tok, ',')) {
      const std::string fanin = strip(tok);
      if (fanin.empty()) throw BenchParseError(lineno, "empty fanin name");
      g.fanin_names.push_back(fanin);
    }
    if (g.fanin_names.empty()) {
      throw BenchParseError(lineno, "gate '" + g.name + "' has no fanins");
    }
    pending.push_back(std::move(g));
  }

  // Create vertices first (inputs, then gates) so forward references work.
  for (const auto& in_name : input_names) {
    if (c.find(in_name) != kInvalidGate) {
      throw BenchParseError(0, "duplicate INPUT '" + in_name + "'");
    }
    c.add_input(in_name);
  }
  for (const auto& g : pending) {
    if (c.find(g.name) != kInvalidGate) {
      throw BenchParseError(g.line, "signal '" + g.name + "' defined twice");
    }
    c.add_gate(g.name, g.type);
  }
  // Then connect fanins.
  for (const auto& g : pending) {
    const GateId id = c.find(g.name);
    for (const auto& fn : g.fanin_names) {
      const GateId f = c.find(fn);
      if (f == kInvalidGate) {
        throw BenchParseError(g.line, "gate '" + g.name +
                                          "' references undefined signal '" +
                                          fn + "'");
      }
      c.connect(id, f);
    }
  }
  for (const auto& out_name : output_names) {
    const GateId o = c.find(out_name);
    if (o == kInvalidGate) {
      throw BenchParseError(0, "OUTPUT references undefined signal '" +
                                   out_name + "'");
    }
    c.mark_output(o);
  }

  try {
    c.freeze();
  } catch (const util::CheckError& e) {
    throw BenchParseError(0, std::string("netlist invalid: ") + e.what());
  }
  return c;
}

Circuit parse_bench_string(const std::string& text, const std::string& name) {
  std::istringstream in(text);
  return parse_bench(in, name);
}

Circuit parse_bench_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open .bench file: " + path);
  // Derive circuit name from filename (strip directories and extension).
  std::string name = path;
  if (auto slash = name.find_last_of('/'); slash != std::string::npos) {
    name = name.substr(slash + 1);
  }
  if (auto dot = name.find_last_of('.'); dot != std::string::npos) {
    name = name.substr(0, dot);
  }
  return parse_bench(in, name);
}

void write_bench(std::ostream& out, const Circuit& c) {
  out << "# " << c.name() << " — written by parlogsim\n";
  out << "# " << c.primary_inputs().size() << " inputs, "
      << c.primary_outputs().size() << " outputs, " << c.flip_flops().size()
      << " flip-flops, " << c.num_combinational() << " combinational gates\n";
  for (GateId g : c.primary_inputs()) {
    out << "INPUT(" << c.gate_name(g) << ")\n";
  }
  for (GateId g : c.primary_outputs()) {
    out << "OUTPUT(" << c.gate_name(g) << ")\n";
  }
  out << '\n';
  for (GateId g = 0; g < c.size(); ++g) {
    if (c.type(g) == GateType::kInput) continue;
    out << c.gate_name(g) << " = " << to_string(c.type(g)) << '(';
    const auto fins = c.fanins(g);
    for (std::size_t i = 0; i < fins.size(); ++i) {
      if (i) out << ", ";
      out << c.gate_name(fins[i]);
    }
    out << ")\n";
  }
}

std::string write_bench_string(const Circuit& c) {
  std::ostringstream os;
  write_bench(os, c);
  return os.str();
}

void write_bench_file(const std::string& path, const Circuit& c) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) throw std::runtime_error("cannot open for write: " + path);
  write_bench(out, c);
}

}  // namespace pls::circuit
