#pragma once
// ISCAS'89 ".bench" netlist format reader/writer.
//
// The paper evaluates on ISCAS'89 circuits (s5378, s9234, s15850), which are
// distributed in this textual format:
//
//     # comment
//     INPUT(G0)
//     OUTPUT(G132)
//     G10 = NAND(G0, G1)
//     G11 = DFF(G10)
//
// The parser accepts the full published format: INPUT/OUTPUT declarations,
// n-ary AND/NAND/OR/NOR/XOR/XNOR, unary NOT/BUF/BUFF/DFF, case-insensitive
// keywords, forward references, comments and blank lines.  parse errors
// carry line numbers.

#include <iosfwd>
#include <stdexcept>
#include <string>

#include "circuit/circuit.hpp"

namespace pls::circuit {

class BenchParseError : public std::runtime_error {
 public:
  BenchParseError(int line, const std::string& what)
      : std::runtime_error(".bench parse error at line " +
                           std::to_string(line) + ": " + what),
        line_(line) {}
  int line() const noexcept { return line_; }

 private:
  int line_;
};

/// Parse a .bench netlist from a stream / string / file.  The returned
/// circuit is frozen (validated, fanouts built).
Circuit parse_bench(std::istream& in, const std::string& name = "bench");
Circuit parse_bench_string(const std::string& text,
                           const std::string& name = "bench");
Circuit parse_bench_file(const std::string& path);

/// Serialize a circuit to .bench text.  write ∘ parse is the identity on
/// the netlist graph (names, types, connectivity, output markers).
void write_bench(std::ostream& out, const Circuit& c);
std::string write_bench_string(const Circuit& c);
void write_bench_file(const std::string& path, const Circuit& c);

}  // namespace pls::circuit
