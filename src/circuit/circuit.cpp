#include "circuit/circuit.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace pls::circuit {

void Circuit::check_unfrozen() const {
  PLS_CHECK_MSG(!frozen_, "circuit '" << name_ << "' is frozen");
}

GateId Circuit::add_input(const std::string& name) {
  return add_gate(name, GateType::kInput);
}

GateId Circuit::add_gate(const std::string& name, GateType type,
                         std::vector<GateId> fanins) {
  check_unfrozen();
  PLS_CHECK_MSG(!by_name_.count(name), "duplicate gate name '" << name << "'");
  for (GateId f : fanins) {
    PLS_CHECK_MSG(f < types_.size(),
                  "fanin id " << f << " of '" << name << "' out of range");
  }
  const auto id = static_cast<GateId>(types_.size());
  types_.push_back(type);
  names_.push_back(name);
  is_output_.push_back(0);
  fanin_build_.push_back(std::move(fanins));
  by_name_.emplace(name, id);
  if (type == GateType::kInput) inputs_.push_back(id);
  if (type == GateType::kDff) dffs_.push_back(id);
  return id;
}

void Circuit::connect(GateId gate, GateId fanin) {
  check_unfrozen();
  PLS_CHECK(gate < types_.size());
  PLS_CHECK(fanin < types_.size());
  PLS_CHECK_MSG(types_[gate] != GateType::kInput,
                "primary input '" << names_[gate] << "' cannot have fanin");
  fanin_build_[gate].push_back(fanin);
}

void Circuit::mark_output(GateId gate) {
  PLS_CHECK(gate < types_.size());
  if (!is_output_[gate]) {
    is_output_[gate] = 1;
    outputs_.push_back(gate);
  }
}

void Circuit::mark_output(const std::string& name) {
  const GateId g = find(name);
  PLS_CHECK_MSG(g != kInvalidGate, "mark_output: unknown gate '" << name
                                                                 << "'");
  mark_output(g);
}

GateId Circuit::find(const std::string& name) const {
  auto it = by_name_.find(name);
  return it == by_name_.end() ? kInvalidGate : it->second;
}

std::span<const GateId> Circuit::fanouts(GateId g) const {
  PLS_CHECK_MSG(frozen_, "fanouts() requires freeze()");
  return {fanout_flat_.data() + fanout_off_.at(g),
          fanout_off_.at(g + 1) - fanout_off_.at(g)};
}

void Circuit::check_arities() const {
  for (GateId g = 0; g < types_.size(); ++g) {
    const auto n = static_cast<int>(fanin_build_[g].size());
    PLS_CHECK_MSG(n >= min_arity(types_[g]) && n <= max_arity(types_[g]),
                  "gate '" << names_[g] << "' (" << to_string(types_[g])
                           << ") has illegal fanin count " << n);
  }
}

void Circuit::check_combinational_acyclic() const {
  // Iterative three-color DFS over combinational edges only.  Edges into a
  // DFF's D pin terminate a combinational path (the DFF output is a new
  // sequential source), so cycles through flip-flops are legal — they are
  // exactly the sequential feedback loops of ISCAS'89 circuits.
  enum : std::uint8_t { kWhite, kGray, kBlack };
  std::vector<std::uint8_t> color(types_.size(), kWhite);
  std::vector<std::pair<GateId, std::size_t>> stack;

  for (GateId root = 0; root < types_.size(); ++root) {
    if (color[root] != kWhite || types_[root] == GateType::kDff) continue;
    stack.emplace_back(root, 0);
    color[root] = kGray;
    while (!stack.empty()) {
      auto& [g, idx] = stack.back();
      const auto& fin = fanin_build_[g];
      if (idx == fin.size()) {
        color[g] = kBlack;
        stack.pop_back();
        continue;
      }
      const GateId next = fin[idx++];
      if (types_[next] == GateType::kDff) continue;  // sequential boundary
      if (color[next] == kGray) {
        ::pls::util::check_failed(
            "combinational cycle", __FILE__, __LINE__,
            "cycle through gate '" + names_[next] +
                "' not broken by a flip-flop");
      }
      if (color[next] == kWhite) {
        color[next] = kGray;
        stack.emplace_back(next, 0);
      }
    }
  }
}

void Circuit::build_fanouts() {
  // Flatten fanins to CSR.
  fanin_off_.assign(types_.size() + 1, 0);
  std::size_t total = 0;
  for (GateId g = 0; g < types_.size(); ++g) {
    fanin_off_[g] = static_cast<std::uint32_t>(total);
    total += fanin_build_[g].size();
  }
  fanin_off_[types_.size()] = static_cast<std::uint32_t>(total);
  fanin_flat_.clear();
  fanin_flat_.reserve(total);
  for (const auto& v : fanin_build_) {
    fanin_flat_.insert(fanin_flat_.end(), v.begin(), v.end());
  }

  // Counting sort into fanout CSR.
  fanout_off_.assign(types_.size() + 1, 0);
  for (GateId f : fanin_flat_) ++fanout_off_[f + 1];
  for (std::size_t i = 1; i < fanout_off_.size(); ++i) {
    fanout_off_[i] += fanout_off_[i - 1];
  }
  fanout_flat_.assign(total, kInvalidGate);
  std::vector<std::uint32_t> cursor(fanout_off_.begin(),
                                    fanout_off_.end() - 1);
  for (GateId g = 0; g < types_.size(); ++g) {
    for (GateId f : fanin_build_[g]) {
      fanout_flat_[cursor[f]++] = g;
    }
  }
}

void Circuit::freeze() {
  check_unfrozen();
  PLS_CHECK_MSG(!types_.empty(), "empty circuit");
  check_arities();
  check_combinational_acyclic();
  build_fanouts();
  fanin_build_.clear();
  fanin_build_.shrink_to_fit();
  frozen_ = true;
}

}  // namespace pls::circuit
