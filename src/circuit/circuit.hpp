#pragma once
// Circuit: the gate-level netlist / circuit-graph model.
//
// This is the directed graph G = (V, E) of paper §3: vertices are gates,
// edges are signals.  A Circuit is built incrementally (add_input/add_gate/
// mark_output) and then frozen; freezing validates the netlist and builds
// the CSR fanout index every downstream consumer (partitioners, simulators)
// iterates over.  After freeze() the structure is immutable, so it can be
// shared read-only across kernel threads without synchronization.

#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "circuit/types.hpp"

namespace pls::circuit {

class Circuit {
 public:
  Circuit() = default;
  explicit Circuit(std::string name) : name_(std::move(name)) {}

  // ----- construction (before freeze) -----

  /// Add a primary input. Names must be unique across all gates.
  GateId add_input(const std::string& name);

  /// Add a logic gate / flip-flop with named fanins added later via
  /// connect(), or immediately via the id-based overload.
  GateId add_gate(const std::string& name, GateType type,
                  std::vector<GateId> fanins = {});

  /// Append one more fanin to an existing gate.
  void connect(GateId gate, GateId fanin);

  /// Mark a gate's output signal as a primary output.
  void mark_output(GateId gate);
  void mark_output(const std::string& name);

  /// Validate the netlist and build fanout/index structures.  Throws
  /// util::CheckError on arity violations, dangling references or
  /// combinational cycles (cycles are legal only through DFFs).
  void freeze();

  // ----- queries (any time; fanout queries require freeze) -----

  const std::string& name() const noexcept { return name_; }
  void set_name(std::string n) { name_ = std::move(n); }
  bool frozen() const noexcept { return frozen_; }

  std::size_t size() const noexcept { return types_.size(); }

  GateType type(GateId g) const { return types_.at(g); }
  const std::string& gate_name(GateId g) const { return names_.at(g); }
  bool is_output(GateId g) const { return is_output_.at(g) != 0; }

  std::span<const GateId> fanins(GateId g) const {
    return {fanin_flat_.data() + fanin_off_.at(g),
            fanin_off_.at(g + 1) - fanin_off_.at(g)};
  }

  /// Gates driven by g's output signal (requires freeze()).
  std::span<const GateId> fanouts(GateId g) const;

  /// Lookup by name; returns kInvalidGate if absent.
  GateId find(const std::string& name) const;

  const std::vector<GateId>& primary_inputs() const noexcept { return inputs_; }
  const std::vector<GateId>& primary_outputs() const noexcept {
    return outputs_;
  }
  const std::vector<GateId>& flip_flops() const noexcept { return dffs_; }

  /// Combinational gates = size() - inputs - flip-flops.
  std::size_t num_combinational() const noexcept {
    return size() - inputs_.size() - dffs_.size();
  }

  /// Total number of directed edges (signal connections).
  std::size_t num_edges() const noexcept { return fanin_flat_.size(); }

 private:
  friend class CircuitBuilderAccess;  // test hook

  void check_unfrozen() const;
  void build_fanouts();
  void check_arities() const;
  void check_combinational_acyclic() const;

  std::string name_ = "circuit";
  bool frozen_ = false;

  // Gate storage: struct-of-arrays keyed by GateId.
  std::vector<GateType> types_;
  std::vector<std::string> names_;
  std::vector<std::uint8_t> is_output_;

  // Fanins: per-gate vectors during construction, flattened to CSR by
  // freeze() so hot loops see contiguous memory.
  std::vector<std::vector<GateId>> fanin_build_;
  std::vector<std::uint32_t> fanin_off_;
  std::vector<GateId> fanin_flat_;

  // Fanouts (CSR), built by freeze().
  std::vector<std::uint32_t> fanout_off_;
  std::vector<GateId> fanout_flat_;

  std::vector<GateId> inputs_;
  std::vector<GateId> outputs_;
  std::vector<GateId> dffs_;

  std::unordered_map<std::string, GateId> by_name_;
};

}  // namespace pls::circuit
