#include "circuit/circuit_stats.hpp"

#include <algorithm>
#include <ostream>

#include "circuit/levelize.hpp"

namespace pls::circuit {

CircuitStats compute_stats(const Circuit& c) {
  CircuitStats s;
  s.name = c.name();
  s.inputs = c.primary_inputs().size();
  s.outputs = c.primary_outputs().size();
  s.flip_flops = c.flip_flops().size();
  s.comb_gates = c.num_combinational();
  s.edges = c.num_edges();
  s.depth = levelize(c).max_level;

  std::size_t fanin_total = 0;
  std::size_t fanout_total = 0;
  std::size_t logic = 0;
  for (GateId g = 0; g < c.size(); ++g) {
    fanout_total += c.fanouts(g).size();
    s.max_fanout = std::max(s.max_fanout, c.fanouts(g).size());
    if (c.type(g) == GateType::kInput) continue;
    fanin_total += c.fanins(g).size();
    ++logic;
  }
  s.avg_fanin =
      logic ? static_cast<double>(fanin_total) / static_cast<double>(logic)
            : 0.0;
  s.avg_fanout = c.size() ? static_cast<double>(fanout_total) /
                                static_cast<double>(c.size())
                          : 0.0;
  return s;
}

std::ostream& operator<<(std::ostream& os, const CircuitStats& s) {
  return os << s.name << ": " << s.inputs << " in, " << s.outputs << " out, "
            << s.comb_gates << " gates, " << s.flip_flops << " FFs, "
            << s.edges << " edges, depth " << s.depth << ", avg fanout "
            << s.avg_fanout;
}

}  // namespace pls::circuit
