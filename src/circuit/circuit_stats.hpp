#pragma once
// Structural statistics of a circuit: the numbers behind the paper's
// Table 1 plus the graph-shape metrics (depth, fan-out distribution) the
// generator is validated against.

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string>

#include "circuit/circuit.hpp"

namespace pls::circuit {

struct CircuitStats {
  std::string name;
  std::size_t inputs = 0;
  std::size_t outputs = 0;
  std::size_t comb_gates = 0;  ///< the paper's "Gates" column
  std::size_t flip_flops = 0;
  std::size_t edges = 0;
  std::uint32_t depth = 0;  ///< max topological level
  double avg_fanin = 0.0;
  double avg_fanout = 0.0;
  std::size_t max_fanout = 0;
};

CircuitStats compute_stats(const Circuit& c);

std::ostream& operator<<(std::ostream& os, const CircuitStats& s);

}  // namespace pls::circuit
