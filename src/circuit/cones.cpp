#include "circuit/cones.hpp"

#include "util/check.hpp"

namespace pls::circuit {
namespace {

template <typename NeighborFn>
std::vector<GateId> reachable(const Circuit& c, GateId root, bool through_dff,
                              NeighborFn&& neighbors) {
  PLS_CHECK(c.frozen());
  PLS_CHECK(root < c.size());
  std::vector<std::uint8_t> seen(c.size(), 0);
  std::vector<GateId> stack{root};
  std::vector<GateId> out;
  seen[root] = 1;
  while (!stack.empty()) {
    const GateId g = stack.back();
    stack.pop_back();
    out.push_back(g);
    // Stop expanding past a DFF unless through_dff is set (the root itself
    // always expands so a DFF root has a non-trivial cone).
    if (!through_dff && g != root && c.type(g) == GateType::kDff) continue;
    for (GateId n : neighbors(g)) {
      if (!seen[n]) {
        seen[n] = 1;
        stack.push_back(n);
      }
    }
  }
  return out;
}

}  // namespace

std::vector<GateId> fanout_cone(const Circuit& c, GateId root,
                                bool through_dff) {
  return reachable(c, root, through_dff,
                   [&](GateId g) { return c.fanouts(g); });
}

std::vector<GateId> fanin_cone(const Circuit& c, GateId root,
                               bool through_dff) {
  return reachable(c, root, through_dff,
                   [&](GateId g) { return c.fanins(g); });
}

std::vector<std::size_t> input_cone_sizes(const Circuit& c, bool through_dff) {
  std::vector<std::size_t> sizes;
  sizes.reserve(c.primary_inputs().size());
  for (GateId pi : c.primary_inputs()) {
    sizes.push_back(fanout_cone(c, pi, through_dff).size());
  }
  return sizes;
}

}  // namespace pls::circuit
