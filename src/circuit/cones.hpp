#pragma once
// Fanout / fanin cone analysis.
//
// The Cone partitioner of the study ("a partitioning scheme based on
// fanout/fanin cone clustering starting from the input gates", Smith [19])
// clusters each primary input's forward-reachable set.  These helpers
// compute reachability cones and are also used by tests and the activity
// analyzer.

#include <vector>

#include "circuit/circuit.hpp"

namespace pls::circuit {

/// All gates reachable from `root` by following fanout edges (including
/// `root` itself).  `through_dff` controls whether traversal continues
/// through flip-flop boundaries (the Cone partitioner does not, matching
/// its combinational-cone definition).
std::vector<GateId> fanout_cone(const Circuit& c, GateId root,
                                bool through_dff = false);

/// All gates reaching `root` by following fanin edges (including `root`).
std::vector<GateId> fanin_cone(const Circuit& c, GateId root,
                               bool through_dff = false);

/// Number of gates in each primary input's fanout cone; index parallels
/// c.primary_inputs().
std::vector<std::size_t> input_cone_sizes(const Circuit& c,
                                          bool through_dff = false);

}  // namespace pls::circuit
