#include "circuit/generator.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/check.hpp"
#include "util/rng.hpp"

namespace pls::circuit {
namespace {

using util::Rng;

GateType pick_type(const GeneratorSpec& s, Rng& rng) {
  const double w[8] = {s.frac_not, s.frac_buf, s.frac_nand, s.frac_and,
                       s.frac_nor, s.frac_or,  s.frac_xor,  s.frac_xnor};
  static constexpr GateType kTypes[8] = {
      GateType::kNot, GateType::kBuf, GateType::kNand, GateType::kAnd,
      GateType::kNor, GateType::kOr,  GateType::kXor,  GateType::kXnor};
  double total = 0;
  for (double x : w) total += x;
  double r = rng.uniform() * total;
  for (int i = 0; i < 8; ++i) {
    r -= w[i];
    if (r <= 0) return kTypes[i];
  }
  return GateType::kNand;
}

int pick_arity(GateType t, Rng& rng) {
  switch (t) {
    case GateType::kNot:
    case GateType::kBuf:
      return 1;
    case GateType::kXor:
    case GateType::kXnor:
      return 2;
    default: {
      // Mostly 2-input gates with a tail of 3- and 4-input ones, matching
      // the ISCAS'89 profile.
      const double r = rng.uniform();
      if (r < 0.70) return 2;
      if (r < 0.92) return 3;
      return 4;
    }
  }
}

/// Split `total` gates over `depth` levels with mild random variation and a
/// broad early-circuit bulge; every level gets at least one gate.
std::vector<std::size_t> level_sizes(std::size_t total, std::uint32_t depth,
                                     Rng& rng) {
  PLS_CHECK(depth >= 1);
  PLS_CHECK(total >= depth);
  std::vector<double> weight(depth);
  for (std::uint32_t l = 0; l < depth; ++l) {
    // Logic cones widen after the inputs and narrow toward the outputs:
    // triangular bulge peaking near 1/3 of the depth, with ±35% noise and a
    // hard taper over the last ranks (real netlists end in thin output
    // logic, and a thin top rank leaves almost nothing unobserved).
    const double x = static_cast<double>(l + 1) / static_cast<double>(depth);
    double bulge = x < 0.33 ? 0.4 + 1.8 * x : 1.0 - 0.55 * (x - 0.33);
    if (x > 0.9) bulge *= 0.25;
    weight[l] = bulge * (0.65 + 0.7 * rng.uniform());
  }
  const double wsum = std::accumulate(weight.begin(), weight.end(), 0.0);
  std::vector<std::size_t> sizes(depth, 1);
  std::size_t assigned = depth;
  for (std::uint32_t l = 0; l < depth && assigned < total; ++l) {
    const auto extra = std::min<std::size_t>(
        total - assigned,
        static_cast<std::size_t>(weight[l] / wsum *
                                 static_cast<double>(total - depth)));
    sizes[l] += extra;
    assigned += extra;
  }
  for (std::uint32_t l = 0; assigned < total; l = (l + 1) % depth) {
    ++sizes[l];
    ++assigned;
  }
  return sizes;
}

}  // namespace

Circuit generate(const GeneratorSpec& spec) {
  PLS_CHECK_MSG(spec.num_inputs >= 1, "need at least one primary input");
  PLS_CHECK_MSG(spec.num_comb_gates >= spec.num_outputs,
                "cannot mark more outputs than combinational gates");
  PLS_CHECK_MSG(spec.num_comb_gates >= 1, "need combinational gates");
  Rng rng(spec.seed);
  Circuit c(spec.name);

  // Consumer bookkeeping so we can wire up dangling gates at the end.
  // Pre-sized to the final gate count: it is read for gates that have no
  // consumers yet.
  std::vector<std::uint32_t> consumers(
      spec.num_inputs + spec.num_dffs + spec.num_comb_gates, 0);
  auto note_consumer = [&](GateId f) { ++consumers.at(f); };

  // --- sources: primary inputs and flip-flops ------------------------------
  std::vector<GateId> sources;
  for (std::size_t i = 0; i < spec.num_inputs; ++i) {
    sources.push_back(c.add_input("pi" + std::to_string(i)));
  }
  std::vector<GateId> dffs;
  for (std::size_t i = 0; i < spec.num_dffs; ++i) {
    const GateId d = c.add_gate("ff" + std::to_string(i), GateType::kDff);
    dffs.push_back(d);
    sources.push_back(d);  // a DFF's Q output is a sequential source
  }

  // --- combinational levels -------------------------------------------------
  std::uint32_t depth = spec.depth;
  if (depth == 0) {
    // Depth grows with the log of gate count (s5378 ≈ 25, s15850 ≈ 50).
    depth = static_cast<std::uint32_t>(
        std::clamp(6.3 * std::log2(static_cast<double>(
                             std::max<std::size_t>(spec.num_comb_gates, 8))) -
                       46.0,
                   4.0, 64.0));
  }
  depth = static_cast<std::uint32_t>(std::min<std::size_t>(
      depth, std::max<std::size_t>(spec.num_comb_gates, 1)));

  const auto sizes = level_sizes(spec.num_comb_gates, depth, rng);

  // levels[0] holds the sources; levels[l>=1] the combinational ranks.
  std::vector<std::vector<GateId>> levels(depth + 1);
  levels[0] = sources;

  auto pick_from_level = [&](std::uint32_t lvl) -> GateId {
    const auto& pool = levels[lvl];
    if (rng.chance(spec.hub_bias)) return pool.front();  // the level's hub
    return pool[rng.below(pool.size())];
  };

  std::size_t gate_counter = 0;
  for (std::uint32_t l = 1; l <= depth; ++l) {
    levels[l].reserve(sizes[l - 1]);
    for (std::size_t i = 0; i < sizes[l - 1]; ++i) {
      const GateType t = pick_type(spec, rng);
      const int arity = pick_arity(t, rng);
      std::vector<GateId> fins;
      fins.reserve(static_cast<std::size_t>(arity));

      // First fanin comes from the immediately preceding level so the gate
      // really sits at level l (this pins the depth profile).
      fins.push_back(pick_from_level(l - 1));
      for (int a = 1; a < arity; ++a) {
        // Remaining fanins: geometric recency bias over lower levels.
        std::uint32_t lvl = l - 1;
        while (lvl > 0 && rng.chance(0.45)) --lvl;
        GateId f = pick_from_level(lvl);
        if (std::find(fins.begin(), fins.end(), f) != fins.end()) {
          f = pick_from_level(lvl);  // one retry to avoid duplicate fanin
        }
        fins.push_back(f);
      }
      for (GateId f : fins) note_consumer(f);
      const GateId g = c.add_gate("g" + std::to_string(gate_counter++), t,
                                  std::move(fins));
      levels[l].push_back(g);
    }
  }

  // --- flip-flop D inputs: deep combinational gates (sequential feedback) ---
  {
    std::vector<GateId> deep;
    std::vector<std::uint32_t> level_of_deep;
    const std::uint32_t from =
        depth - std::min<std::uint32_t>(depth - 1, (depth + 2) / 3);
    for (std::uint32_t l = from; l <= depth; ++l) {
      deep.insert(deep.end(), levels[l].begin(), levels[l].end());
    }
    PLS_CHECK(!deep.empty());
    rng.shuffle(deep);
    level_of_deep.assign(c.size(), 0);
    for (std::uint32_t l = from; l <= depth; ++l) {
      for (GateId g : levels[l]) level_of_deep[g] = l;
    }
    // Prefer gates that do not yet drive anything, top level first: gates
    // at the deepest rank have no later logic to consume them, so flip-flop
    // feedback is their only chance of being observed.
    std::stable_sort(deep.begin(), deep.end(), [&](GateId a, GateId b) {
      const int rank_a =
          consumers[a] == 0 ? (level_of_deep[a] == depth ? 0 : 1) : 2;
      const int rank_b =
          consumers[b] == 0 ? (level_of_deep[b] == depth ? 0 : 1) : 2;
      return rank_a < rank_b;
    });
    for (std::size_t i = 0; i < dffs.size(); ++i) {
      const GateId src = deep[i % deep.size()];
      c.connect(dffs[i], src);
      note_consumer(src);
    }
  }

  // --- primary outputs: deep gates, preferring still-unobserved ones --------
  {
    std::vector<GateId> candidates;
    for (std::uint32_t l = depth; l >= 1; --l) {
      candidates.insert(candidates.end(), levels[l].begin(), levels[l].end());
      if (candidates.size() >= spec.num_outputs * 4 || l == 1) break;
    }
    rng.shuffle(candidates);
    std::stable_partition(candidates.begin(), candidates.end(),
                          [&](GateId g) { return consumers[g] == 0; });
    PLS_CHECK_MSG(candidates.size() >= spec.num_outputs,
                  "not enough gates to place primary outputs");
    for (std::size_t i = 0; i < spec.num_outputs; ++i) {
      c.mark_output(candidates[i]);
    }
  }

  // --- wire residual dangling gates into higher-level logic -----------------
  // Every remaining gate (or unused primary input / flip-flop output) with
  // no consumer and no OUTPUT marker becomes an extra fanin of a random
  // multi-input gate at a strictly higher level — legal, because it only
  // adds forward edges (and edges out of a DFF can never close a
  // combinational cycle).  Gates at the top level with no such target stay
  // dangling, as marking them as extra observers would change the output
  // count; the taper above keeps those to a handful.
  {
    std::vector<std::vector<GateId>> multi_by_level(depth + 1);
    for (std::uint32_t l = 1; l <= depth; ++l) {
      for (GateId g : levels[l]) {
        const GateType t = c.type(g);
        if (t != GateType::kNot && t != GateType::kBuf &&
            t != GateType::kXor && t != GateType::kXnor) {
          multi_by_level[l].push_back(g);
        }
      }
    }
    for (std::uint32_t l = 0; l < depth; ++l) {
      for (GateId g : levels[l]) {
        if (consumers[g] != 0 || c.is_output(g)) continue;
        // Find a consumer level above l with at least one n-ary gate.
        for (std::uint32_t tl = l + 1; tl <= depth; ++tl) {
          if (multi_by_level[tl].empty()) continue;
          const GateId target =
              multi_by_level[tl][rng.below(multi_by_level[tl].size())];
          c.connect(target, g);
          note_consumer(g);
          break;
        }
      }
    }
  }

  c.freeze();
  return c;
}

GeneratorSpec iscas_spec(std::string_view which, std::uint64_t seed) {
  GeneratorSpec s;
  s.seed = seed;
  if (which == "s5378") {
    // Paper Table 1: 35 inputs, 2779 gates, 49 outputs; 179 DFFs in the
    // published netlist.  Depth ≈ 25.
    s.name = "s5378";
    s.num_inputs = 35;
    s.num_outputs = 49;
    s.num_comb_gates = 2779;
    s.num_dffs = 179;
    s.depth = 25;
  } else if (which == "s9234") {
    // Paper Table 1: 36 inputs, 5597 gates, 39 outputs; 211 DFFs.
    s.name = "s9234";
    s.num_inputs = 36;
    s.num_outputs = 39;
    s.num_comb_gates = 5597;
    s.num_dffs = 211;
    s.depth = 38;
  } else if (which == "s15850") {
    // Paper Table 1: 77 inputs, 10383 gates, 150 outputs; 534 DFFs.
    s.name = "s15850";
    s.num_inputs = 77;
    s.num_outputs = 150;
    s.num_comb_gates = 10383;
    s.num_dffs = 534;
    s.depth = 50;
  } else {
    PLS_CHECK_MSG(false, "unknown ISCAS'89 benchmark '"
                             << which
                             << "' (expected s5378, s9234 or s15850)");
  }
  return s;
}

Circuit make_iscas_like(std::string_view which, std::uint64_t seed) {
  return generate(iscas_spec(which, seed));
}

}  // namespace pls::circuit
