#pragma once
// Deterministic ISCAS'89-like circuit generators.
//
// The paper evaluates on the public ISCAS'89 benchmarks s5378, s9234 and
// s15850 (its Table 1 lists inputs / gates / outputs).  The netlist files
// are not redistributable inside this repository, so we generate structural
// stand-ins with exactly the published interface counts and closely matched
// internals: flip-flop counts, bounded fan-in, skewed fan-out with a few
// high-fanout control-style nets, realistic logic depth, and sequential
// feedback through the flip-flops.  Partitioner quality and Time Warp
// dynamics depend on this graph structure rather than on the specific
// Boolean functions (DESIGN.md §3.1).  Real .bench files, when available,
// drop in through parse_bench_file() with no other change.

#include <cstdint>
#include <string>
#include <string_view>

#include "circuit/circuit.hpp"

namespace pls::circuit {

/// Parameters of the synthetic netlist generator.  Defaults produce a
/// mid-size circuit suitable for tests.
struct GeneratorSpec {
  std::string name = "synthetic";
  std::size_t num_inputs = 16;
  std::size_t num_outputs = 8;
  std::size_t num_comb_gates = 500;  ///< combinational gates (excl. DFFs)
  std::size_t num_dffs = 32;
  std::uint32_t depth = 0;  ///< target logic depth; 0 = auto from size
  std::uint64_t seed = 1;

  // Gate-type mix (fractions of combinational gates; renormalized).
  double frac_not = 0.22;
  double frac_buf = 0.06;
  double frac_nand = 0.24;
  double frac_and = 0.16;
  double frac_nor = 0.14;
  double frac_or = 0.10;
  double frac_xor = 0.05;
  double frac_xnor = 0.03;

  /// Probability that a fanin pick is redirected to the level's designated
  /// hub gate; produces the small population of very-high-fanout nets that
  /// real netlists (clock/control trees) exhibit.
  double hub_bias = 0.08;
};

/// Generate a frozen circuit from the spec.  Deterministic in spec.seed.
/// Guarantees: exact input/output/comb-gate/DFF counts; every combinational
/// gate is reachable from a primary input or flip-flop; no combinational
/// cycles; every non-output gate drives at least one sink where the level
/// structure allows it.
Circuit generate(const GeneratorSpec& spec);

/// The three benchmark stand-ins, keyed by the paper's names
/// ("s5378", "s9234", "s15850").  Counts match the paper's Table 1:
///   s5378  — 35 in, 2779 gates,  49 out (179 DFFs)
///   s9234  — 36 in, 5597 gates,  39 out (211 DFFs)
///   s15850 — 77 in, 10383 gates, 150 out (534 DFFs)
/// Throws util::CheckError for unknown names.
Circuit make_iscas_like(std::string_view which, std::uint64_t seed = 2000);

/// Spec lookup for the three benchmarks (exposed so harnesses can scale).
GeneratorSpec iscas_spec(std::string_view which, std::uint64_t seed = 2000);

}  // namespace pls::circuit
