#include "circuit/levelize.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace pls::circuit {
namespace {

/// In-degree of each gate counting only combinational constraints: a DFF
/// has in-degree 0 (it is a sequential source); other gates count all
/// fanins.
std::vector<std::uint32_t> combinational_indegree(const Circuit& c) {
  std::vector<std::uint32_t> indeg(c.size(), 0);
  for (GateId g = 0; g < c.size(); ++g) {
    if (c.type(g) == GateType::kDff) continue;  // source: no constraints
    indeg[g] = static_cast<std::uint32_t>(c.fanins(g).size());
  }
  return indeg;
}

}  // namespace

std::vector<GateId> topological_order(const Circuit& c) {
  PLS_CHECK_MSG(c.frozen(), "topological_order requires a frozen circuit");
  auto indeg = combinational_indegree(c);

  std::vector<GateId> order;
  order.reserve(c.size());
  std::vector<GateId> frontier;
  for (GateId g = 0; g < c.size(); ++g) {
    if (indeg[g] == 0) frontier.push_back(g);
  }
  // Kahn's algorithm; the frontier is processed in id order for determinism.
  std::size_t head = 0;
  order = std::move(frontier);
  while (head < order.size()) {
    const GateId g = order[head++];
    for (GateId out : c.fanouts(g)) {
      if (c.type(out) == GateType::kDff) continue;  // edge cut at D pin
      if (--indeg[out] == 0) order.push_back(out);
    }
  }
  PLS_CHECK_MSG(order.size() == c.size(),
                "circuit has a combinational cycle (freeze() should have "
                "rejected it)");
  return order;
}

Levelization levelize(const Circuit& c) {
  PLS_CHECK_MSG(c.frozen(), "levelize requires a frozen circuit");
  Levelization out;
  out.level.assign(c.size(), 0);

  for (GateId g : topological_order(c)) {
    if (is_sequential_source(c.type(g))) {
      out.level[g] = 0;
      continue;
    }
    std::uint32_t lvl = 0;
    for (GateId f : c.fanins(g)) {
      lvl = std::max(lvl, out.level[f] + 1);
    }
    out.level[g] = lvl;
    out.max_level = std::max(out.max_level, lvl);
  }

  out.by_level.assign(out.max_level + 1, {});
  for (GateId g = 0; g < c.size(); ++g) {
    out.by_level[out.level[g]].push_back(g);
  }
  return out;
}

}  // namespace pls::circuit
