#pragma once
// Topological levelization of a (possibly sequential) circuit.
//
// The paper's Topological partitioner "proceeds by first levelizing the
// circuit graph and then assigning nodes at the same topological level to a
// partition" (§2, citing Cloutier and Smith).  Levelization treats primary
// inputs and flip-flop outputs as level-0 sources and assigns every other
// gate 1 + max(level of combinational fanins); edges into a DFF's D pin do
// not constrain the DFF (that is where sequential feedback cycles are cut).

#include <cstdint>
#include <vector>

#include "circuit/circuit.hpp"

namespace pls::circuit {

struct Levelization {
  std::vector<std::uint32_t> level;  ///< per-gate topological level
  std::uint32_t max_level = 0;       ///< circuit logic depth
  /// Gates grouped by level: by_level[l] lists every gate at level l.
  std::vector<std::vector<GateId>> by_level;
};

/// Compute levels for a frozen circuit. O(V + E).
Levelization levelize(const Circuit& c);

/// A topological order of the combinational DAG (sources first; DFFs appear
/// as sources).  Used by the sequential simulator for rank-ordered
/// evaluation and by generators/tests.
std::vector<GateId> topological_order(const Circuit& c);

}  // namespace pls::circuit
