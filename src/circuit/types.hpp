#pragma once
// Fundamental gate-level netlist types shared by the whole stack.
//
// Vertices of the paper's circuit graph are logic gates; edges are the
// signals interconnecting them (paper §3).  A GateId indexes into
// Circuit's dense gate array and doubles as the logical-process id in the
// Time Warp layer, so all cross-module maps are plain vectors.

#include <cstdint>
#include <string_view>

namespace pls::circuit {

using GateId = std::uint32_t;
inline constexpr GateId kInvalidGate = ~GateId{0};

/// Gate kinds supported by the ISCAS'89 .bench format plus an explicit
/// primary-input kind.  DFF is the only sequential element (edge-triggered
/// D flip-flop; see DESIGN.md §3.4 for the clocking substitution).
enum class GateType : std::uint8_t {
  kInput,  ///< primary input (no fanin)
  kBuf,    ///< buffer (1 fanin)
  kNot,    ///< inverter (1 fanin)
  kAnd,
  kNand,
  kOr,
  kNor,
  kXor,
  kXnor,
  kDff,  ///< D flip-flop (1 fanin = D; output is the stored state Q)
};

inline constexpr std::string_view to_string(GateType t) noexcept {
  switch (t) {
    case GateType::kInput: return "INPUT";
    case GateType::kBuf: return "BUF";
    case GateType::kNot: return "NOT";
    case GateType::kAnd: return "AND";
    case GateType::kNand: return "NAND";
    case GateType::kOr: return "OR";
    case GateType::kNor: return "NOR";
    case GateType::kXor: return "XOR";
    case GateType::kXnor: return "XNOR";
    case GateType::kDff: return "DFF";
  }
  return "?";
}

/// True for gate types that act as sources when the sequential circuit is
/// cut into a combinational DAG (primary inputs and flip-flop outputs).
inline constexpr bool is_sequential_source(GateType t) noexcept {
  return t == GateType::kInput || t == GateType::kDff;
}

/// Minimum/maximum legal fanin arity for each type (kInput has none;
/// multi-input gates accept 2+ inputs as in the .bench format).
inline constexpr int min_arity(GateType t) noexcept {
  switch (t) {
    case GateType::kInput: return 0;
    case GateType::kBuf:
    case GateType::kNot:
    case GateType::kDff: return 1;
    default: return 2;
  }
}

inline constexpr int max_arity(GateType t) noexcept {
  switch (t) {
    case GateType::kInput: return 0;
    case GateType::kBuf:
    case GateType::kNot:
    case GateType::kDff: return 1;
    default: return 64;  // .bench gates are n-ary; bound for sanity
  }
}

}  // namespace pls::circuit
