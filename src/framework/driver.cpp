#include "framework/driver.hpp"

#include "framework/registry.hpp"
#include "logicsim/activity.hpp"
#include "partition/metrics.hpp"
#include "util/check.hpp"
#include "util/timer.hpp"

namespace pls::framework {
namespace {

DriverResult partition_circuit(const circuit::Circuit& c,
                               const DriverConfig& cfg) {
  DriverResult res;

  partition::MultilevelOptions ml = cfg.multilevel;
  std::vector<double> activity;
  if (cfg.use_activity && cfg.partitioner == "Multilevel") {
    // Profile with a quarter of the simulation horizon: long enough to see
    // steady-state switching rates, short next to the real run.
    activity = logicsim::profile_activity(c, cfg.model, cfg.end_time / 4);
    ml.activity = &activity;
  }

  const auto strategy = make_partitioner(cfg.partitioner, ml);
  util::WallTimer timer;
  res.partition = strategy->run(c, cfg.num_nodes, cfg.seed);
  res.partition_seconds = timer.elapsed_seconds();

  res.partition.validate(c.size());
  res.edge_cut = partition::edge_cut(c, res.partition);
  res.comm_volume = partition::comm_volume(c, res.partition);
  res.imbalance = partition::imbalance(c, res.partition);
  res.concurrency = partition::concurrency(c, res.partition);
  return res;
}

}  // namespace

DriverResult partition_only(const circuit::Circuit& c,
                            const DriverConfig& cfg) {
  PLS_CHECK(c.frozen());
  return partition_circuit(c, cfg);
}

DriverResult run_parallel(const circuit::Circuit& c, const DriverConfig& cfg) {
  PLS_CHECK(c.frozen());
  DriverResult res = partition_circuit(c, cfg);

  logicsim::ModelOptions model_opt = cfg.model;
  model_opt.stim_seed = cfg.seed;
  logicsim::SimModel model = logicsim::build_model(c, model_opt);

  warped::KernelConfig kc;
  kc.num_nodes = cfg.num_nodes;
  kc.end_time = cfg.end_time;
  kc.event_cost_ns = cfg.event_cost_ns;
  kc.network.send_overhead_ns = cfg.send_overhead_ns;
  kc.network.latency_ns = cfg.latency_ns;
  kc.gvt_interval_us = cfg.gvt_interval_us;
  kc.state_period = cfg.state_period;
  kc.throttle = cfg.throttle;
  kc.optimism_window = cfg.optimism_window;
  kc.max_batches_per_poll = cfg.max_batches_per_poll;
  kc.max_live_entries_per_node = cfg.max_live_entries_per_node;
  kc.watchdog_timeout_ms = cfg.watchdog_timeout_ms;

  warped::Kernel kernel(model.behaviours(), res.partition.assign, kc);
  res.run = kernel.run();
  return res;
}

logicsim::SeqStats run_sequential(const circuit::Circuit& c,
                                  const DriverConfig& cfg) {
  PLS_CHECK(c.frozen());
  logicsim::ModelOptions model_opt = cfg.model;
  model_opt.stim_seed = cfg.seed;
  logicsim::SimModel model = logicsim::build_model(c, model_opt);
  return logicsim::simulate_sequential(model.behaviours(), cfg.end_time,
                                       cfg.event_cost_ns);
}

}  // namespace pls::framework
