#include "framework/driver.hpp"

#include <algorithm>
#include <limits>

#include "framework/partition_cache.hpp"
#include "framework/registry.hpp"
#include "logicsim/activity.hpp"
#include "multilevel/metrics.hpp"
#include "partition/metrics.hpp"
#include "util/check.hpp"
#include "util/timer.hpp"

namespace pls::framework {
namespace {

/// Short unweighted parallel pre-run with the same strategy and stimulus;
/// each LP's committed event/send counts are its measured useful work and
/// traffic — the same two signals the sequential profile derives, but
/// observed under the real optimistic execution.
logicsim::ActivityProfile warmup_activity(const circuit::Circuit& c,
                                          const DriverConfig& cfg,
                                          warped::SimTime horizon) {
  DriverConfig warm = cfg;
  warm.use_activity = false;
  warm.end_time = horizon;
  warm.obs = obs::ObsConfig{};  // never trace/sample the pre-run
  const DriverResult wres = run_parallel(c, warm);
  std::vector<std::uint64_t> events(wres.run.per_lp.size(), 0);
  std::vector<std::uint64_t> transitions(wres.run.per_lp.size(), 0);
  for (std::size_t lp = 0; lp < events.size(); ++lp) {
    // Lane-aware work signal: committed lane transitions (mask popcounts),
    // not raw event counts — on batched runs a gate whose inputs toggle
    // across many lanes costs proportionally more CPU per event.  Equal
    // to events_committed on scalar runs.
    events[lp] = wres.run.per_lp[lp].lane_work_committed;
    const std::size_t fanout = c.fanouts(lp).size();
    const std::uint64_t sends = wres.run.per_lp[lp].sends_committed;
    transitions[lp] = fanout > 0 ? sends / fanout : sends;
  }
  logicsim::ActivityProfile profile;
  profile.work = logicsim::normalize_counts(events);
  profile.traffic = logicsim::normalize_counts(transitions);
  return profile;
}

DriverResult partition_circuit(const circuit::Circuit& c,
                               const DriverConfig& cfg) {
  DriverResult res;

  partition::MultilevelOptions ml = cfg.multilevel;
  multilevel::VertexTrafficWeights weights;
  if (cfg.repartition_interval > 0) {
    PLS_CHECK_MSG(
        strategy_consumes_weights(cfg.partitioner),
        "repartition_interval requires a strategy that consumes weights "
        "(\"Multilevel\" or \"MultilevelHG\"); dynamic repartitioning "
        "cannot warm-start '"
            << cfg.partitioner << "'");
  }
  if (cfg.use_activity) {
    PLS_CHECK_MSG(
        strategy_consumes_weights(cfg.partitioner),
        "use_activity requires a strategy that consumes weights "
        "(\"Multilevel\" or \"MultilevelHG\"); it would be silently "
        "ignored by '"
            << cfg.partitioner << "'");
    util::WallTimer atimer;
    const warped::SimTime horizon =
        cfg.activity_horizon != 0 ? cfg.activity_horizon : cfg.end_time / 4;
    logicsim::ActivityProfile profile;
    if (cfg.activity_source == DriverConfig::ActivitySource::kProfile) {
      // Profile the exact stimulus the measured run will see.
      logicsim::ModelOptions mo = cfg.model;
      mo.stim_seed = cfg.seed;
      mo.lanes = cfg.lanes;
      profile = logicsim::profile_activity(c, mo, horizon);
      res.activity_mode = "profile";
    } else {
      profile = warmup_activity(c, cfg, horizon);
      res.activity_mode = "warmup";
    }
    weights = multilevel::weights_from_activity(profile.work, profile.traffic,
                                                cfg.weight_options);
    ml.weights = &weights;
    res.activity_seconds = atimer.elapsed_seconds();
  }

  util::WallTimer timer;
  std::uint64_t cache_key = 0;
  if (!cfg.partition_cache_dir.empty()) {
    cache_key = partition_cache_key(c, cfg.num_nodes, cfg.partitioner,
                                    cfg.seed, ml, ml.weights);
    res.partition_cache_hit =
        partition_cache_load(cfg.partition_cache_dir, cache_key,
                             cfg.num_nodes, c.size(), &res.partition);
  }
  if (!res.partition_cache_hit) {
    const auto strategy = make_partitioner(cfg.partitioner, ml);
    res.partition = strategy->run(c, cfg.num_nodes, cfg.seed);
    if (!cfg.partition_cache_dir.empty()) {
      partition_cache_store(cfg.partition_cache_dir, cache_key,
                            res.partition);
    }
  }
  res.partition_seconds = timer.elapsed_seconds();

  res.partition.validate(c.size());
  res.edge_cut = partition::edge_cut(c, res.partition);
  res.comm_volume = partition::comm_volume(c, res.partition);
  res.imbalance = partition::imbalance(c, res.partition);
  // Imbalance under the work weights the partitioner actually balanced;
  // identical to the unit-weight imbalance when no weights were in play.
  res.weighted_imbalance =
      ml.weights != nullptr
          ? multilevel::weighted_imbalance(res.partition, ml.weights->vertex)
          : res.imbalance;
  res.concurrency = partition::concurrency(c, res.partition);
  return res;
}

}  // namespace

DriverResult partition_only(const circuit::Circuit& c,
                            const DriverConfig& cfg) {
  PLS_CHECK(c.frozen());
  return partition_circuit(c, cfg);
}

DriverResult run_parallel(const circuit::Circuit& c, const DriverConfig& cfg) {
  PLS_CHECK(c.frozen());
  DriverResult res = partition_circuit(c, cfg);

  logicsim::ModelOptions model_opt = cfg.model;
  model_opt.stim_seed = cfg.seed;
  model_opt.lanes = cfg.lanes;
  res.lanes = cfg.lanes;
  logicsim::SimModel model = logicsim::build_model(c, model_opt);

  warped::KernelConfig kc;
  kc.num_nodes = cfg.num_nodes;
  kc.end_time = cfg.end_time;
  kc.event_cost_ns = cfg.event_cost_ns;
  kc.network.send_overhead_ns = cfg.send_overhead_ns;
  kc.network.latency_ns = cfg.latency_ns;
  kc.coalesce.enabled = cfg.coalesce;
  kc.coalesce.max_batch_msgs = cfg.coalesce_max_batch;
  kc.gvt_interval_us = cfg.gvt_interval_us;
  kc.state_period = cfg.state_period;
  kc.throttle = cfg.throttle;
  kc.optimism_window = cfg.optimism_window;
  kc.max_batches_per_poll = cfg.max_batches_per_poll;
  kc.max_live_entries_per_node = cfg.max_live_entries_per_node;
  kc.watchdog_timeout_ms = cfg.watchdog_timeout_ms;

  // Dynamic repartitioning: the kernel's controller invokes this hook at
  // GVT epochs (always from node 0's thread, never concurrently with
  // itself), so the captured epoch state needs no locking; the results
  // vector is read back only after kernel.run() joined every thread.
  struct ActivitySnapshot {
    warped::SimTime gvt = 0;
    std::vector<std::uint64_t> events;
    std::vector<std::uint64_t> sends;
  };
  std::vector<ActivitySnapshot> snaps;
  warped::SimTime last_adopt_gvt = 0;
  warped::SimTime last_eval_gvt = 0;
  if (cfg.repartition_interval > 0) {
    kc.repartition_interval = cfg.repartition_interval;
    kc.repartition_hook = [&c, &cfg, &res, &snaps, &last_adopt_gvt,
                           &last_eval_gvt](
                              const warped::RepartitionRequest& req)
        -> std::vector<std::uint32_t> {
      util::WallTimer rtimer;
      // Live work/traffic signal: committed counters, cumulative from the
      // start by default (repartition_window == 0) or over a sliding
      // virtual-time window.  Cumulative counts are the signal a
      // full-horizon profile would measure, built up live: smooth (no
      // epoch-slice sampling noise to chase) and converging, after a
      // drift, on the all-phases mixture an oracle profile would weight
      // by.  A window trades that stability for reaction speed — recent
      // activity predicts the remaining horizon better when drift recurs
      // faster than cumulative averages can track — at the price of
      // spikier weights.
      const warped::SimTime window = cfg.repartition_window;
      // Baseline = newest snapshot at least one window old (zeros — i.e.
      // cumulative counts — in the default regime or until the history is
      // deep enough).
      const ActivitySnapshot* base = nullptr;
      if (window > 0) {
        for (const auto& s : snaps) {
          if (s.gvt + window <= req.gvt) base = &s;
        }
      }
      std::vector<std::uint64_t> events(c.size(), 0);
      std::vector<std::uint64_t> transitions(c.size(), 0);
      std::uint64_t total = 0;
      for (std::size_t lp = 0; lp < c.size(); ++lp) {
        // Lane-aware live work signal (committed lane transitions, ==
        // events_committed on scalar runs) — see warmup_activity.
        const std::uint64_t ev =
            req.lane_work_committed[lp] - (base ? base->events[lp] : 0);
        const std::uint64_t sends =
            req.sends_committed[lp] - (base ? base->sends[lp] : 0);
        const std::size_t fanout = c.fanouts(lp).size();
        events[lp] = ev;
        transitions[lp] = fanout > 0 ? sends / fanout : sends;
        total += ev;
      }
      // Record this epoch and drop history older than the baseline — any
      // future epoch's GVT only grows, so nothing older can be a baseline
      // again.  (The controller never runs this hook concurrently with
      // itself, so the captured history needs no locking.)  The cumulative
      // regime never consults history, so it keeps none.
      if (window > 0) {
        if (base != nullptr) {
          const warped::SimTime keep_from = base->gvt;
          std::erase_if(snaps, [keep_from](const ActivitySnapshot& s) {
            return s.gvt < keep_from;
          });
        }
        if (snaps.empty() || snaps.back().gvt < req.gvt) {
          snaps.push_back(
              {req.gvt, req.lane_work_committed, req.sends_committed});
        }
      }
      if (total == 0) return {};  // nothing committed inside the window
      // Startup gate: the first epochs arrive when GVT has barely left 0,
      // so the counters have only sampled the power-on transient (every
      // gate stabilizing once — committed-event counts there are large
      // but say nothing about steady-state activity).  Repartitioning on
      // that trades the (profile-guided) starting partition for noise —
      // observed to move 5–10% of the circuit before the first real
      // stimulus vectors have propagated.  The snapshots above are still
      // recorded during gated epochs, so the first adoption decision sees
      // a full window.
      const warped::SimTime warmup =
          cfg.repartition_warmup_gvt > 0 ? cfg.repartition_warmup_gvt
                                         : 4 * cfg.model.stim_period;
      if (req.gvt < warmup) return {};
      // Adoption cooldown: after adopting a plan, hold it for a full
      // window (a few stimulus periods in the cumulative regime).  Right
      // after an adoption the signal is a mixture of pre- and
      // post-adoption activity (and GVT rounds publish commits in bursts,
      // so adjacent epochs can sample very different slices) —
      // re-litigating the plan on that churns LPs between equally good
      // local optima.  One decision per window of fresh signal.
      const warped::SimTime hold =
          window > 0 ? window : 4 * cfg.model.stim_period;
      if (last_adopt_gvt > 0 && req.gvt < last_adopt_gvt + hold) {
        return {};
      }
      // Evaluation spacing: GVT rounds are wall-clock paced, so a fast
      // phase fires many epochs per unit of virtual time — and commits
      // arrive in stimulus-period bursts, so epochs closer together than
      // one period re-sample essentially the same signal (same weights,
      // same plan, same verdict).  Recomputing a known rejection every
      // round steals controller wall time from the simulation; gate
      // re-evaluation on a period of fresh virtual time instead.
      if (last_eval_gvt > 0 &&
          req.gvt < last_eval_gvt + cfg.model.stim_period) {
        return {};
      }
      last_eval_gvt = req.gvt;
      const multilevel::VertexTrafficWeights w =
          multilevel::weights_from_activity(
              logicsim::normalize_counts(events),
              logicsim::normalize_counts(transitions), cfg.weight_options);
      partition::MultilevelOptions rml = cfg.multilevel;
      rml.weights = &w;
      partition::Partition cur;
      cur.k = cfg.num_nodes;
      cur.assign = req.current;
      // Fixed seed across epochs — deliberately NOT mixed with req.round.
      // Reseeding per epoch makes the optimizer sample a different local
      // optimum each time, and every epoch "improves" on the previous
      // one's randomness; the partition oscillates between equally good
      // plans, paying migration for noise.  With one seed the repartition
      // is a deterministic function of (weights, partition), so an
      // adopted plan is its own fixed point until the weights move.
      const IncrementalRepartition inc = repartition_incremental(
          cfg.partitioner, rml, c, cfg.num_nodes, cfg.seed, cur);
      RepartitionEpoch ep;
      ep.round = req.round;
      ep.gvt = req.gvt;
      ep.quality_before = inc.quality_before;
      ep.quality_after = inc.quality_after;
      ep.imbalance_before = multilevel::weighted_imbalance(cur, w.vertex);
      ep.imbalance_after =
          multilevel::weighted_imbalance(inc.partition, w.vertex);
      // Churn-priced hysteresis: migration has a real cost (cancelled
      // speculation, package shipping, limbo stalls), roughly linear in
      // the LPs moved and paid *now*, while the better cut pays back only
      // over the remaining virtual horizon — so the required relative
      // gain scales with the moved fraction divided by the remaining
      // fraction.  A two-LP touch-up clears the base threshold; a plan
      // moving a third of the circuit near the end of the run must
      // promise the moon.
      std::uint64_t moved = 0;
      for (std::size_t lp = 0; lp < c.size(); ++lp) {
        if (inc.partition.assign[lp] != req.current[lp]) ++moved;
      }
      const double gain =
          inc.quality_before > inc.quality_after
              ? static_cast<double>(inc.quality_before - inc.quality_after)
              : 0.0;
      const double moved_fraction =
          static_cast<double>(moved) / static_cast<double>(c.size());
      const double remaining_fraction =
          req.gvt < cfg.end_time
              ? static_cast<double>(cfg.end_time - req.gvt) /
                    static_cast<double>(cfg.end_time)
              : 0.0;
      const double threshold =
          remaining_fraction > 0.0
              ? std::max(cfg.repartition_min_gain,
                         cfg.repartition_churn_cost * moved_fraction /
                             remaining_fraction)
              : std::numeric_limits<double>::infinity();
      // Two ways a plan can pay for its migration churn: a cut win (fewer
      // inter-node messages) or a balance win (an overloaded node is the
      // rollback engine drift leaves behind, and warm-started refinement
      // alone cannot repair a large violation).  Either gain must clear
      // the same churn-priced threshold while the other metric does not
      // regress materially.
      const double cut_gain =
          inc.quality_before > 0
              ? gain / static_cast<double>(inc.quality_before)
              : 0.0;
      const double imb_gain =
          ep.imbalance_before > 1.0
              ? (ep.imbalance_before - ep.imbalance_after) /
                    ep.imbalance_before
              : 0.0;
      const bool cut_adopt =
          cut_gain >= threshold &&
          ep.imbalance_after <= ep.imbalance_before * 1.02;
      const bool balance_adopt =
          imb_gain >= threshold &&
          inc.quality_after <=
              inc.quality_before + (inc.quality_before + 49) / 50;
      const bool adopt = inc.changed && (cut_adopt || balance_adopt);
      if (adopt) {
        ep.lps_moved = moved;
        last_adopt_gvt = req.gvt;
      }
      ep.seconds = rtimer.elapsed_seconds();
      res.repartition_epochs.push_back(ep);
      if (!adopt) return {};
      return inc.partition.assign;
    };
  }

  std::shared_ptr<obs::ObsSession> obs;
  if (cfg.obs.enabled()) {
    obs = std::make_shared<obs::ObsSession>(cfg.num_nodes, cfg.obs);
    kc.obs = obs.get();
  }

  warped::Kernel kernel(model.behaviours(), res.partition.assign, kc);
  if (obs != nullptr) obs->start_sampling();
  res.run = kernel.run();
  if (obs != nullptr) {
    obs->stop_sampling();
    res.obs = std::move(obs);
  }
  res.lps_migrated = res.run.totals.lps_migrated_out;
  return res;
}

logicsim::SeqStats run_sequential(const circuit::Circuit& c,
                                  const DriverConfig& cfg) {
  PLS_CHECK(c.frozen());
  logicsim::ModelOptions model_opt = cfg.model;
  model_opt.stim_seed = cfg.seed;
  model_opt.lanes = cfg.lanes;
  logicsim::SimModel model = logicsim::build_model(c, model_opt);
  return logicsim::simulate_sequential(model.behaviours(), cfg.end_time,
                                       cfg.event_cost_ns);
}

}  // namespace pls::framework
