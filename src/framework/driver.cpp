#include "framework/driver.hpp"

#include "framework/registry.hpp"
#include "logicsim/activity.hpp"
#include "partition/metrics.hpp"
#include "util/check.hpp"
#include "util/timer.hpp"

namespace pls::framework {
namespace {

/// Short unweighted parallel pre-run with the same strategy and stimulus;
/// each LP's committed event/send counts are its measured useful work and
/// traffic — the same two signals the sequential profile derives, but
/// observed under the real optimistic execution.
logicsim::ActivityProfile warmup_activity(const circuit::Circuit& c,
                                          const DriverConfig& cfg,
                                          warped::SimTime horizon) {
  DriverConfig warm = cfg;
  warm.use_activity = false;
  warm.end_time = horizon;
  const DriverResult wres = run_parallel(c, warm);
  std::vector<std::uint64_t> events(wres.run.per_lp.size(), 0);
  std::vector<std::uint64_t> transitions(wres.run.per_lp.size(), 0);
  for (std::size_t lp = 0; lp < events.size(); ++lp) {
    events[lp] = wres.run.per_lp[lp].events_committed;
    const std::size_t fanout = c.fanouts(lp).size();
    const std::uint64_t sends = wres.run.per_lp[lp].sends_committed;
    transitions[lp] = fanout > 0 ? sends / fanout : sends;
  }
  logicsim::ActivityProfile profile;
  profile.work = logicsim::normalize_counts(events);
  profile.traffic = logicsim::normalize_counts(transitions);
  return profile;
}

DriverResult partition_circuit(const circuit::Circuit& c,
                               const DriverConfig& cfg) {
  DriverResult res;

  partition::MultilevelOptions ml = cfg.multilevel;
  multilevel::VertexTrafficWeights weights;
  if (cfg.use_activity) {
    PLS_CHECK_MSG(
        strategy_consumes_weights(cfg.partitioner),
        "use_activity requires a strategy that consumes weights "
        "(\"Multilevel\" or \"MultilevelHG\"); it would be silently "
        "ignored by '"
            << cfg.partitioner << "'");
    util::WallTimer atimer;
    const warped::SimTime horizon =
        cfg.activity_horizon != 0 ? cfg.activity_horizon : cfg.end_time / 4;
    logicsim::ActivityProfile profile;
    if (cfg.activity_source == DriverConfig::ActivitySource::kProfile) {
      // Profile the exact stimulus the measured run will see.
      logicsim::ModelOptions mo = cfg.model;
      mo.stim_seed = cfg.seed;
      profile = logicsim::profile_activity(c, mo, horizon);
      res.activity_mode = "profile";
    } else {
      profile = warmup_activity(c, cfg, horizon);
      res.activity_mode = "warmup";
    }
    weights = multilevel::weights_from_activity(profile.work, profile.traffic,
                                                cfg.weight_options);
    ml.weights = &weights;
    res.activity_seconds = atimer.elapsed_seconds();
  }

  const auto strategy = make_partitioner(cfg.partitioner, ml);
  util::WallTimer timer;
  res.partition = strategy->run(c, cfg.num_nodes, cfg.seed);
  res.partition_seconds = timer.elapsed_seconds();

  res.partition.validate(c.size());
  res.edge_cut = partition::edge_cut(c, res.partition);
  res.comm_volume = partition::comm_volume(c, res.partition);
  res.imbalance = partition::imbalance(c, res.partition);
  res.concurrency = partition::concurrency(c, res.partition);
  return res;
}

}  // namespace

DriverResult partition_only(const circuit::Circuit& c,
                            const DriverConfig& cfg) {
  PLS_CHECK(c.frozen());
  return partition_circuit(c, cfg);
}

DriverResult run_parallel(const circuit::Circuit& c, const DriverConfig& cfg) {
  PLS_CHECK(c.frozen());
  DriverResult res = partition_circuit(c, cfg);

  logicsim::ModelOptions model_opt = cfg.model;
  model_opt.stim_seed = cfg.seed;
  logicsim::SimModel model = logicsim::build_model(c, model_opt);

  warped::KernelConfig kc;
  kc.num_nodes = cfg.num_nodes;
  kc.end_time = cfg.end_time;
  kc.event_cost_ns = cfg.event_cost_ns;
  kc.network.send_overhead_ns = cfg.send_overhead_ns;
  kc.network.latency_ns = cfg.latency_ns;
  kc.gvt_interval_us = cfg.gvt_interval_us;
  kc.state_period = cfg.state_period;
  kc.throttle = cfg.throttle;
  kc.optimism_window = cfg.optimism_window;
  kc.max_batches_per_poll = cfg.max_batches_per_poll;
  kc.max_live_entries_per_node = cfg.max_live_entries_per_node;
  kc.watchdog_timeout_ms = cfg.watchdog_timeout_ms;

  warped::Kernel kernel(model.behaviours(), res.partition.assign, kc);
  res.run = kernel.run();
  return res;
}

logicsim::SeqStats run_sequential(const circuit::Circuit& c,
                                  const DriverConfig& cfg) {
  PLS_CHECK(c.frozen());
  logicsim::ModelOptions model_opt = cfg.model;
  model_opt.stim_seed = cfg.seed;
  logicsim::SimModel model = logicsim::build_model(c, model_opt);
  return logicsim::simulate_sequential(model.behaviours(), cfg.end_time,
                                       cfg.event_cost_ns);
}

}  // namespace pls::framework
