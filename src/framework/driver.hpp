#pragma once
// SimulationDriver: the end-to-end pipeline of the paper's framework
// (Figure 3): circuit → runtime elaboration into LPs → runtime partitioning
// (strategy chosen by name) → parallel Time Warp simulation → statistics.
//
// The driver is what every example and benchmark harness calls; its
// defaults encode the modeled-testbed calibration (DESIGN.md §3.2):
// event grain ≈ 1.5 µs, message send overhead ≈ 3 µs, network latency
// ≈ 50 µs — the paper's fast-Ethernet NOW regime where communication is
// ~30× an event grain.

#include <cstdint>
#include <string>

#include "circuit/circuit.hpp"
#include "logicsim/netlist_lps.hpp"
#include "logicsim/sequential.hpp"
#include "partition/multilevel_partitioner.hpp"
#include "partition/partition.hpp"
#include "warped/kernel.hpp"

namespace pls::framework {

struct DriverConfig {
  std::uint32_t num_nodes = 2;
  std::string partitioner = "Multilevel";
  std::uint64_t seed = 2000;          ///< partitioning / stimulus seed
  warped::SimTime end_time = 2000;    ///< virtual-time horizon

  logicsim::ModelOptions model;

  // Modeled testbed (see header comment).
  std::uint64_t event_cost_ns = 1500;
  std::uint64_t send_overhead_ns = 3000;
  std::uint64_t latency_ns = 50000;

  std::uint64_t gvt_interval_us = 2000;
  std::uint32_t state_period = 1;

  /// Optimism throttling (see warped/throttle.hpp): adaptive by default,
  /// every controller knob reachable; `optimism_window` is the fixed
  /// window in kFixed mode and the initial window in kAdaptive mode
  /// (0 = unbounded / horizon-derived start).
  warped::ThrottleConfig throttle;
  warped::SimTime optimism_window = 0;

  /// LTSF batches executed per kernel main-loop iteration.
  std::uint32_t max_batches_per_poll = 8;

  std::size_t max_live_entries_per_node = 0;
  std::uint64_t watchdog_timeout_ms = 30000;  ///< 0 disables the watchdog

  /// Run an activity pre-simulation and use activity-weighted coarsening
  /// (multilevel only; paper §6 extension).
  bool use_activity = false;
  partition::MultilevelOptions multilevel;
};

struct DriverResult {
  partition::Partition partition;
  double partition_seconds = 0.0;  ///< time spent partitioning

  // Static quality metrics of the chosen partition.
  std::uint64_t edge_cut = 0;
  std::uint64_t comm_volume = 0;
  double imbalance = 0.0;
  double concurrency = 0.0;

  warped::RunStats run;
};

/// Partition `c` with the configured strategy and simulate it in parallel.
DriverResult run_parallel(const circuit::Circuit& c, const DriverConfig& cfg);

/// Sequential reference run of the same model and horizon (the paper's
/// "Seq Time"); charges the same per-event CPU cost.
logicsim::SeqStats run_sequential(const circuit::Circuit& c,
                                  const DriverConfig& cfg);

/// Partition only (no simulation) — used by the static-quality benches.
DriverResult partition_only(const circuit::Circuit& c,
                            const DriverConfig& cfg);

}  // namespace pls::framework
