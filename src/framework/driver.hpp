#pragma once
// SimulationDriver: the end-to-end pipeline of the paper's framework
// (Figure 3): circuit → runtime elaboration into LPs → runtime partitioning
// (strategy chosen by name) → parallel Time Warp simulation → statistics.
//
// The driver is what every example and benchmark harness calls; its
// defaults encode the modeled-testbed calibration (DESIGN.md §3.2):
// event grain ≈ 1.5 µs, message send overhead ≈ 3 µs, network latency
// ≈ 50 µs — the paper's fast-Ethernet NOW regime where communication is
// ~30× an event grain.

#include <cstdint>
#include <string>

#include "circuit/circuit.hpp"
#include "logicsim/netlist_lps.hpp"
#include "logicsim/sequential.hpp"
#include "multilevel/weights.hpp"
#include "partition/multilevel_partitioner.hpp"
#include "partition/partition.hpp"
#include "warped/kernel.hpp"

namespace pls::framework {

struct DriverConfig {
  std::uint32_t num_nodes = 2;
  std::string partitioner = "Multilevel";
  std::uint64_t seed = 2000;          ///< partitioning / stimulus seed
  warped::SimTime end_time = 2000;    ///< virtual-time horizon

  logicsim::ModelOptions model;

  // Modeled testbed (see header comment).
  std::uint64_t event_cost_ns = 1500;
  std::uint64_t send_overhead_ns = 3000;
  std::uint64_t latency_ns = 50000;

  std::uint64_t gvt_interval_us = 2000;
  std::uint32_t state_period = 1;

  /// Optimism throttling (see warped/throttle.hpp): adaptive by default,
  /// every controller knob reachable; `optimism_window` is the fixed
  /// window in kFixed mode and the initial window in kAdaptive mode
  /// (0 = unbounded / horizon-derived start).
  warped::ThrottleConfig throttle;
  warped::SimTime optimism_window = 0;

  /// LTSF batches executed per kernel main-loop iteration.
  std::uint32_t max_batches_per_poll = 8;

  std::size_t max_live_entries_per_node = 0;
  std::uint64_t watchdog_timeout_ms = 30000;  ///< 0 disables the watchdog

  /// Activity-guided partitioning (paper §6 extension + D'Angelo-style
  /// runtime feedback): a short pre-run derives per-gate activity, the
  /// (hyper)graph is re-weighted (multilevel::weights_from_activity) and
  /// repartitioned with real work/traffic weights before the measured run.
  /// Only the multilevel strategies consume weights — enabling this with
  /// any other strategy is a configuration error (PLS_CHECK_MSG names the
  /// offending strategy rather than silently ignoring the flag).
  bool use_activity = false;
  enum class ActivitySource {
    kProfile,  ///< sequential pre-simulation (logicsim::profile_activity)
    kWarmup,   ///< short unweighted parallel run; per-LP committed-event
               ///< counts (RunStats::per_lp) are the activity signal
  };
  ActivitySource activity_source = ActivitySource::kProfile;
  /// Virtual-time horizon of the pre-run (0 = end_time / 4: long enough
  /// for steady-state switching rates, short next to the real run).
  warped::SimTime activity_horizon = 0;
  /// Activity → weight mapping knobs (caps, traffic granularity).
  multilevel::WeightOptions weight_options;
  partition::MultilevelOptions multilevel;
};

struct DriverResult {
  partition::Partition partition;
  double partition_seconds = 0.0;  ///< time spent partitioning
  /// Activity-guided mode actually applied: "off", "profile" or "warmup".
  std::string activity_mode = "off";
  double activity_seconds = 0.0;  ///< pre-run + reweighting time

  // Static quality metrics of the chosen partition.
  std::uint64_t edge_cut = 0;
  std::uint64_t comm_volume = 0;
  double imbalance = 0.0;
  double concurrency = 0.0;

  warped::RunStats run;
};

/// Partition `c` with the configured strategy and simulate it in parallel.
DriverResult run_parallel(const circuit::Circuit& c, const DriverConfig& cfg);

/// Sequential reference run of the same model and horizon (the paper's
/// "Seq Time"); charges the same per-event CPU cost.
logicsim::SeqStats run_sequential(const circuit::Circuit& c,
                                  const DriverConfig& cfg);

/// Partition only (no simulation) — used by the static-quality benches.
DriverResult partition_only(const circuit::Circuit& c,
                            const DriverConfig& cfg);

}  // namespace pls::framework
