#pragma once
// SimulationDriver: the end-to-end pipeline of the paper's framework
// (Figure 3): circuit → runtime elaboration into LPs → runtime partitioning
// (strategy chosen by name) → parallel Time Warp simulation → statistics.
//
// The driver is what every example and benchmark harness calls; its
// defaults encode the modeled-testbed calibration (DESIGN.md §3.2):
// event grain ≈ 1.5 µs, message send overhead ≈ 3 µs, network latency
// ≈ 50 µs — the paper's fast-Ethernet NOW regime where communication is
// ~30× an event grain.

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "circuit/circuit.hpp"
#include "logicsim/netlist_lps.hpp"
#include "logicsim/sequential.hpp"
#include "multilevel/weights.hpp"
#include "obs/session.hpp"
#include "partition/multilevel_partitioner.hpp"
#include "partition/partition.hpp"
#include "warped/kernel.hpp"

namespace pls::framework {

struct DriverConfig {
  std::uint32_t num_nodes = 2;
  std::string partitioner = "Multilevel";
  std::uint64_t seed = 2000;          ///< partitioning / stimulus seed
  warped::SimTime end_time = 2000;    ///< virtual-time horizon

  /// Bit-parallel stimulus lanes in [1, 256] (authoritative; copied over
  /// model.lanes).  1 = classic scalar run; counts above 64 span multiple
  /// value words per signal (logicsim::lane_words), carried through the
  /// arena-pooled event/state extensions — N <= 64 stays bit-identical to
  /// the single-word engine.  Lane j of a batched run is bit-identical to
  /// a scalar run with seed lane_seed(seed, j) — see logicsim/lanes.hpp;
  /// fault-simulation runs set model.faults and model.uniform_stimulus on
  /// top.
  std::uint32_t lanes = 1;

  logicsim::ModelOptions model;

  // Modeled testbed (see header comment).
  std::uint64_t event_cost_ns = 1500;
  std::uint64_t send_overhead_ns = 3000;
  std::uint64_t latency_ns = 50000;

  /// Send coalescing (warped/channel.hpp): per-destination batching of
  /// inter-node messages on the LTSF-burst path, flushed as one Batch
  /// per destination.  On by default; committed results are bit-identical
  /// either way (off routes each message as a one-message batch), so the
  /// knob exists for A/B runs, not correctness.
  bool coalesce = true;
  /// Size bound per destination buffer (messages) before a forced flush.
  std::uint32_t coalesce_max_batch = 64;

  std::uint64_t gvt_interval_us = 2000;
  std::uint32_t state_period = 1;

  /// Optimism throttling (see warped/throttle.hpp): adaptive by default,
  /// every controller knob reachable; `optimism_window` is the fixed
  /// window in kFixed mode and the initial window in kAdaptive mode
  /// (0 = unbounded / horizon-derived start).
  warped::ThrottleConfig throttle;
  warped::SimTime optimism_window = 0;

  /// LTSF batches executed per kernel main-loop iteration.
  std::uint32_t max_batches_per_poll = 8;

  std::size_t max_live_entries_per_node = 0;
  std::uint64_t watchdog_timeout_ms = 30000;  ///< 0 disables the watchdog

  /// Activity-guided partitioning (paper §6 extension + D'Angelo-style
  /// runtime feedback): a short pre-run derives per-gate activity, the
  /// (hyper)graph is re-weighted (multilevel::weights_from_activity) and
  /// repartitioned with real work/traffic weights before the measured run.
  /// Only the multilevel strategies consume weights — enabling this with
  /// any other strategy is a configuration error (PLS_CHECK_MSG names the
  /// offending strategy rather than silently ignoring the flag).
  bool use_activity = false;
  enum class ActivitySource {
    kProfile,  ///< sequential pre-simulation (logicsim::profile_activity)
    kWarmup,   ///< short unweighted parallel run; per-LP committed-event
               ///< counts (RunStats::per_lp) are the activity signal
  };
  ActivitySource activity_source = ActivitySource::kProfile;
  /// Virtual-time horizon of the pre-run (0 = end_time / 4: long enough
  /// for steady-state switching rates, short next to the real run).
  warped::SimTime activity_horizon = 0;
  /// Activity → weight mapping knobs (caps, traffic granularity).
  multilevel::WeightOptions weight_options;
  partition::MultilevelOptions multilevel;

  /// Dynamic repartitioning with live LP migration: every
  /// `repartition_interval` completed GVT rounds the driver re-derives
  /// work/traffic weights from the per-LP committed counters (cumulative
  /// or over a sliding window — see repartition_window), warm-starts an
  /// *incremental* refinement from the live assignment
  /// (registry::repartition_incremental) and migrates the LPs whose node
  /// changed — without stopping the simulation.  Requires a
  /// weight-consuming strategy ("Multilevel" or "MultilevelHG"),
  /// validated up front like use_activity.  0 = off.
  std::uint64_t repartition_interval = 0;
  /// Minimum relative improvement of the weighted objective before a new
  /// plan is adopted (hysteresis against migration churn): adopt only if
  /// (before - after) >= threshold * before, where threshold grows with
  /// the fraction of LPs the plan would move —
  /// max(repartition_min_gain, repartition_churn_cost * moved_fraction).
  /// Migration is not free (cancelled speculation at the source, package
  /// shipping, limbo stalls at the destination), so a plan that moves a
  /// third of the circuit must promise far more than a marginal cut win.
  double repartition_min_gain = 0.05;
  double repartition_churn_cost = 0.5;
  /// Virtual-time width of the sliding window the live activity signal is
  /// measured over.  0 (the default) uses cumulative-from-start committed
  /// counters: the signal a full-horizon profile would measure, built up
  /// live — smooth (no epoch-slice sampling noise to chase) and
  /// converging, after a drift, on the all-phases mixture an oracle
  /// profile would weight by.  A positive window trades that stability
  /// for reaction speed: recent activity predicts the remaining horizon
  /// better when drift recurs faster than cumulative averages can track,
  /// at the price of spikier weights (a thin virtual-time slice has
  /// vector-to-vector noise the cumulative signal averages away).
  warped::SimTime repartition_window = 0;
  /// Startup gate: no plan is adopted before GVT reaches this virtual
  /// time (0 = auto: 4 × stim_period).  The opening epochs sample only
  /// the power-on transient — every gate stabilizing once — and
  /// repartitioning on that trades the starting partition for noise.
  warped::SimTime repartition_warmup_gvt = 0;

  /// On-disk partition cache directory (`--partition-cache <dir>` in the
  /// examples; empty = off).  Computed assignments are stored keyed on the
  /// circuit's structural hash, node count, strategy, seed, multilevel
  /// options and (for activity-guided runs) the exact weight vectors — a
  /// repeat run with an identical key replays the assignment from disk
  /// instead of re-partitioning.  See framework/partition_cache.hpp.
  std::string partition_cache_dir;

  /// Observability (src/obs/): kernel tracing and/or background metrics
  /// sampling for the measured run.  Off by default; when enabled the
  /// finished session is handed back in DriverResult::obs for export.
  /// Activity pre-runs (warmup mode) are never traced.
  obs::ObsConfig obs;
};

/// One adopted (or evaluated) repartition epoch, for post-run analysis.
struct RepartitionEpoch {
  std::uint64_t round = 0;      ///< completed GVT rounds at the epoch
  warped::SimTime gvt = 0;
  double imbalance_before = 0.0;  ///< weighted work imbalance, live weights
  double imbalance_after = 0.0;
  std::uint64_t quality_before = 0;  ///< weighted cut / λ−1 of the seed
  std::uint64_t quality_after = 0;
  std::uint64_t lps_moved = 0;       ///< 0 = plan evaluated but rejected
  double seconds = 0.0;              ///< incremental repartition wall time
};

struct DriverResult {
  partition::Partition partition;
  double partition_seconds = 0.0;  ///< time spent partitioning
  /// True when the assignment was replayed from the partition cache
  /// (partition_seconds then measures the load, not a partitioner run).
  bool partition_cache_hit = false;
  /// Activity-guided mode actually applied: "off", "profile" or "warmup".
  std::string activity_mode = "off";
  double activity_seconds = 0.0;  ///< pre-run + reweighting time

  // Static quality metrics of the chosen partition.
  std::uint64_t edge_cut = 0;
  std::uint64_t comm_volume = 0;
  double imbalance = 0.0;
  /// Imbalance under the activity work weights the partitioner actually
  /// optimized (equals `imbalance` when no weights were in play).
  double weighted_imbalance = 0.0;
  double concurrency = 0.0;

  // Dynamic repartitioning outcome (empty / zero when off).
  std::vector<RepartitionEpoch> repartition_epochs;
  std::uint64_t lps_migrated = 0;  ///< total LPs live-migrated

  /// The finished observability session (trace rings read-ready, sampler
  /// stopped), or null when DriverConfig::obs was off.  shared_ptr keeps
  /// DriverResult copyable; hand it to the obs:: exporters.
  std::shared_ptr<obs::ObsSession> obs;

  /// Stimulus lanes the run was batched over (DriverConfig::lanes).
  std::uint32_t lanes = 1;

  warped::RunStats run;

  /// Per-lane result extraction: the committed final states of one lane,
  /// projected onto the scalar state layout (logicsim::extract_lane_states
  /// over run.final_states).  Requires a batched run (lanes >= 2) of `c`.
  std::vector<warped::LpState> lane_states(const circuit::Circuit& c,
                                           unsigned lane) const {
    return logicsim::extract_lane_states(c, run.final_states, lane, lanes);
  }
};

/// Partition `c` with the configured strategy and simulate it in parallel.
DriverResult run_parallel(const circuit::Circuit& c, const DriverConfig& cfg);

/// Sequential reference run of the same model and horizon (the paper's
/// "Seq Time"); charges the same per-event CPU cost.
logicsim::SeqStats run_sequential(const circuit::Circuit& c,
                                  const DriverConfig& cfg);

/// Partition only (no simulation) — used by the static-quality benches.
DriverResult partition_only(const circuit::Circuit& c,
                            const DriverConfig& cfg);

}  // namespace pls::framework
