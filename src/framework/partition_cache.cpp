#include "framework/partition_cache.hpp"

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>

namespace pls::framework {
namespace {

constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ULL;
constexpr std::uint64_t kFnvPrime = 0x100000001b3ULL;
constexpr char kMagic[] = "plspart1";

struct Fnv {
  std::uint64_t h = kFnvOffset;
  void mix(std::uint64_t v) noexcept {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (i * 8)) & 0xFF;
      h *= kFnvPrime;
    }
  }
  void mix_str(const std::string& s) noexcept {
    mix(s.size());
    for (unsigned char ch : s) {
      h ^= ch;
      h *= kFnvPrime;
    }
  }
  /// Doubles carry real configuration (balance tolerance); hash the bit
  /// pattern — the values are written once in code, never computed.
  void mix_double(double d) noexcept {
    std::uint64_t bits;
    static_assert(sizeof(bits) == sizeof(d));
    std::memcpy(&bits, &d, sizeof(bits));
    mix(bits);
  }
};

std::filesystem::path cache_path(const std::string& dir, std::uint64_t key) {
  char name[32];
  std::snprintf(name, sizeof(name), "%016llx.part",
                static_cast<unsigned long long>(key));
  return std::filesystem::path(dir) / name;
}

}  // namespace

std::uint64_t circuit_structure_hash(const circuit::Circuit& c) {
  Fnv f;
  f.mix(c.size());
  for (circuit::GateId g = 0; g < c.size(); ++g) {
    f.mix(static_cast<std::uint64_t>(c.type(g)));
    f.mix(c.is_output(g) ? 1 : 0);
    const auto fi = c.fanins(g);
    f.mix(fi.size());
    for (circuit::GateId in : fi) f.mix(in);
  }
  return f.h;
}

std::uint64_t partition_cache_key(const circuit::Circuit& c, std::uint32_t k,
                                  const std::string& strategy,
                                  std::uint64_t seed,
                                  const partition::MultilevelOptions& opts,
                                  const multilevel::VertexTrafficWeights*
                                      weights) {
  Fnv f;
  f.mix(circuit_structure_hash(c));
  f.mix(k);
  f.mix_str(strategy);
  f.mix(seed);
  f.mix(opts.coarsen_threshold);
  f.mix(static_cast<std::uint64_t>(opts.scheme));
  f.mix(static_cast<std::uint64_t>(opts.refiner));
  f.mix_double(opts.balance_tol);
  f.mix(opts.refine_iters);
  if (weights != nullptr && !weights->uniform()) {
    // Activity-guided runs: the assignment is a function of the exact
    // weight vectors, so the key must be too (a re-profiled run with
    // different activity must miss).
    f.mix(weights->vertex.size());
    for (std::uint32_t w : weights->vertex) f.mix(w);
    f.mix(weights->traffic.size());
    for (std::uint32_t w : weights->traffic) f.mix(w);
  } else {
    f.mix(0);  // unweighted (or weights that cannot change the outcome)
  }
  return f.h;
}

bool partition_cache_load(const std::string& dir, std::uint64_t key,
                          std::uint32_t k, std::size_t n,
                          partition::Partition* out) {
  std::ifstream in(cache_path(dir, key));
  if (!in) return false;
  std::string magic;
  std::uint64_t file_key = 0;
  std::uint32_t file_k = 0;
  std::size_t file_n = 0;
  if (!(in >> magic >> std::hex >> file_key >> std::dec >> file_k >>
        file_n)) {
    return false;
  }
  if (magic != kMagic || file_key != key || file_k != k || file_n != n) {
    return false;
  }
  partition::Partition p;
  p.k = k;
  p.assign.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    std::uint32_t node = 0;
    if (!(in >> node) || node >= k) return false;  // truncated / corrupt
    p.assign[i] = node;
  }
  *out = std::move(p);
  return true;
}

void partition_cache_store(const std::string& dir, std::uint64_t key,
                           const partition::Partition& p) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) return;
  // Write-then-rename so a concurrent reader never sees a partial file.
  const std::filesystem::path final_path = cache_path(dir, key);
  std::filesystem::path tmp = final_path;
  tmp += ".tmp";
  {
    std::ofstream out(tmp, std::ios::trunc);
    if (!out) return;
    out << kMagic << ' ' << std::hex << key << std::dec << ' ' << p.k << ' '
        << p.assign.size() << '\n';
    for (std::size_t i = 0; i < p.assign.size(); ++i) {
      out << p.assign[i] << ((i + 1) % 32 == 0 ? '\n' : ' ');
    }
    out << '\n';
    if (!out) return;
  }
  std::filesystem::rename(tmp, final_path, ec);
  if (ec) std::filesystem::remove(tmp, ec);
}

}  // namespace pls::framework
