#pragma once
// On-disk partition cache: multilevel partitioning dominates setup time on
// large circuits (ROADMAP: seconds against a sub-second simulation), yet
// sweeps re-partition the identical circuit with identical settings run
// after run.  The cache keys a computed assignment on everything the
// partitioner's output is a deterministic function of — the circuit's
// structural hash, the node count, the strategy, its seed, the multilevel
// options, and (for activity-guided runs) the exact vertex/traffic weight
// vectors — and replays it from a flat file when the key matches.
//
// Format: one small text file per key, `<hex key>.part` under the cache
// directory, holding a header (magic, key, k, n) and the assignment.  The
// load path re-validates k and n against the request and the assignment
// against the node count, so a stale or truncated file degrades to a miss
// (and is overwritten by the fresh store), never to a bad partition.
//
// Enabled via DriverConfig::partition_cache_dir (`--partition-cache <dir>`
// in the examples).  Dynamic repartitioning composes fine: only the seed
// partition is cached; live epochs still refine from the running state.

#include <cstdint>
#include <string>

#include "circuit/circuit.hpp"
#include "multilevel/weights.hpp"
#include "partition/multilevel_partitioner.hpp"
#include "partition/partition.hpp"

namespace pls::framework {

/// Structural circuit hash: gate types, fanin topology and output marks.
/// Names are excluded — two identically wired circuits partition the same.
std::uint64_t circuit_structure_hash(const circuit::Circuit& c);

/// Cache key over every input the computed assignment depends on.
/// `weights` may be null (unweighted strategies).
std::uint64_t partition_cache_key(const circuit::Circuit& c, std::uint32_t k,
                                  const std::string& strategy,
                                  std::uint64_t seed,
                                  const partition::MultilevelOptions& opts,
                                  const multilevel::VertexTrafficWeights*
                                      weights);

/// Load the cached assignment for `key` into `out`.  Returns false on any
/// mismatch (absent file, wrong magic/key/k/n, out-of-range node) — a miss,
/// never an error.
bool partition_cache_load(const std::string& dir, std::uint64_t key,
                          std::uint32_t k, std::size_t n,
                          partition::Partition* out);

/// Persist `p` under `key`, creating `dir` if needed.  Best-effort: IO
/// failure is swallowed (the run already has its partition; the cache is
/// an accelerator, not a dependency).
void partition_cache_store(const std::string& dir, std::uint64_t key,
                           const partition::Partition& p);

}  // namespace pls::framework
