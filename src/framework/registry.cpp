#include "framework/registry.hpp"

#include "hypergraph/multilevel_hg_partitioner.hpp"
#include "partition/baselines.hpp"
#include "util/check.hpp"

namespace pls::framework {

const std::vector<std::string>& partitioner_names() {
  static const std::vector<std::string> kNames = {
      "Random", "DFS", "Cluster", "Topological", "Multilevel",
      "ConePartition", "MultilevelHG"};
  return kNames;
}

bool strategy_consumes_weights(const std::string& name) {
  return name == "Multilevel" || name == "MultilevelHG";
}

std::unique_ptr<partition::Partitioner> make_partitioner(
    const std::string& name, const partition::MultilevelOptions& ml) {
  using namespace partition;
  if (name == "Random") return std::make_unique<RandomPartitioner>();
  if (name == "DFS") return std::make_unique<DepthFirstPartitioner>();
  if (name == "Cluster") return std::make_unique<BfsClusterPartitioner>();
  if (name == "Topological") return std::make_unique<TopologicalPartitioner>();
  if (name == "Multilevel") return std::make_unique<MultilevelPartitioner>(ml);
  if (name == "ConePartition" || name == "Cone") {
    return std::make_unique<FanoutConePartitioner>();
  }
  if (name == "MultilevelHG") {
    // Shares the multilevel knobs that have hypergraph equivalents, so a
    // head-to-head comparison runs both pipelines at the same imbalance
    // tolerance, refinement budget, and activity weighting.
    hypergraph::MultilevelHGOptions hgo;
    hgo.balance_tol = ml.balance_tol;
    hgo.refine_iters = ml.refine_iters;
    hgo.coarsen_threshold = ml.coarsen_threshold;
    hgo.weights = ml.weights;
    return std::make_unique<hypergraph::MultilevelHGPartitioner>(hgo);
  }
  PLS_CHECK_MSG(false, "unknown partitioner '" << name << "'");
  return nullptr;
}

IncrementalRepartition repartition_incremental(
    const std::string& name, const partition::MultilevelOptions& ml,
    const circuit::Circuit& c, std::uint32_t k, std::uint64_t seed,
    const partition::Partition& current) {
  PLS_CHECK_MSG(strategy_consumes_weights(name),
                "incremental repartition requires a weight-consuming "
                "strategy (\"Multilevel\" or \"MultilevelHG\"), not '"
                    << name << "'");
  multilevel::Trace trace;
  IncrementalRepartition out;
  if (name == "Multilevel") {
    const partition::MultilevelPartitioner p(ml);
    out.partition = p.run_incremental(c, k, seed, current, &trace);
  } else {
    hypergraph::MultilevelHGOptions hgo;
    hgo.balance_tol = ml.balance_tol;
    hgo.refine_iters = ml.refine_iters;
    hgo.coarsen_threshold = ml.coarsen_threshold;
    hgo.weights = ml.weights;
    const hypergraph::MultilevelHGPartitioner p(hgo);
    out.partition = p.run_incremental(c, k, seed, current, &trace);
  }
  out.quality_before = trace.initial_quality;
  out.quality_after = trace.final_quality;
  out.changed = out.partition.assign != current.assign;
  return out;
}

}  // namespace pls::framework
