#pragma once
// Runtime partitioner registry (paper §4): "The runtime partitioning
// technique provides the flexibility to choose from different partitioning
// algorithms without necessitating re-compilation of the system."
//
// Strategies are keyed by the names the paper's tables use: "Random",
// "DFS", "Cluster", "Topological", "Multilevel", "ConePartition" — plus
// "MultilevelHG", the native hypergraph partitioner (src/hypergraph/)
// that optimizes the λ−1 communication volume directly.

#include <memory>
#include <string>
#include <vector>

#include "partition/multilevel_partitioner.hpp"
#include "partition/partition.hpp"

namespace pls::framework {

/// All registered strategy names, in the paper's presentation order.
const std::vector<std::string>& partitioner_names();

/// True when `name` consumes multilevel activity weights (the multilevel
/// pair).  DriverConfig::use_activity requires such a strategy, and bench
/// activity sweeps list only these in their non-"off" column groups.
bool strategy_consumes_weights(const std::string& name);

/// Instantiate a strategy by name; `ml` customizes the multilevel
/// algorithm (ignored for the baselines).  Throws util::CheckError for
/// unknown names.
std::unique_ptr<partition::Partitioner> make_partitioner(
    const std::string& name, const partition::MultilevelOptions& ml = {});

}  // namespace pls::framework
