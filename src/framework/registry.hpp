#pragma once
// Runtime partitioner registry (paper §4): "The runtime partitioning
// technique provides the flexibility to choose from different partitioning
// algorithms without necessitating re-compilation of the system."
//
// Strategies are keyed by the names the paper's tables use: "Random",
// "DFS", "Cluster", "Topological", "Multilevel", "ConePartition" — plus
// "MultilevelHG", the native hypergraph partitioner (src/hypergraph/)
// that optimizes the λ−1 communication volume directly.

#include <memory>
#include <string>
#include <vector>

#include "partition/multilevel_partitioner.hpp"
#include "partition/partition.hpp"

namespace pls::framework {

/// All registered strategy names, in the paper's presentation order.
const std::vector<std::string>& partitioner_names();

/// True when `name` consumes multilevel activity weights (the multilevel
/// pair).  DriverConfig::use_activity requires such a strategy, and bench
/// activity sweeps list only these in their non-"off" column groups.
bool strategy_consumes_weights(const std::string& name);

/// Instantiate a strategy by name; `ml` customizes the multilevel
/// algorithm (ignored for the baselines).  Throws util::CheckError for
/// unknown names.
std::unique_ptr<partition::Partitioner> make_partitioner(
    const std::string& name, const partition::MultilevelOptions& ml = {});

/// Outcome of a warm-started (incremental) repartition at a GVT epoch.
struct IncrementalRepartition {
  partition::Partition partition;    ///< == input unless strictly better
  std::uint64_t quality_before = 0;  ///< seed's weighted objective
  std::uint64_t quality_after = 0;   ///< returned partition's objective
  bool changed = false;              ///< any assignment actually moved
};

/// Warm-started repartition entry for the dynamic (GVT-epoch) path: the
/// live assignment `current` seeds a single weighted refinement pass on
/// the finest graph/hypergraph (run_incremental_vcycle) instead of a
/// from-scratch V-cycle.  Only the weight-consuming strategies support
/// this; any other name throws util::CheckError (the driver validates the
/// combination up front).
IncrementalRepartition repartition_incremental(
    const std::string& name, const partition::MultilevelOptions& ml,
    const circuit::Circuit& c, std::uint32_t k, std::uint64_t seed,
    const partition::Partition& current);

}  // namespace pls::framework
