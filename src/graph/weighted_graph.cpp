#include "graph/weighted_graph.hpp"

#include <algorithm>
#include <tuple>

#include "util/check.hpp"

namespace pls::graph {

WeightedGraph::WeightedGraph(
    std::vector<std::uint32_t> vertex_weights,
    std::span<const std::tuple<VertexId, VertexId, std::uint32_t>> edges)
    : vweight_(std::move(vertex_weights)) {
  for (auto w : vweight_) total_weight_ += w;
  build_csr(edges);
}

void WeightedGraph::build_csr(
    std::span<const std::tuple<VertexId, VertexId, std::uint32_t>> edges) {
  const auto n = vweight_.size();

  // Normalize: drop self-loops, order endpoints, sort, merge duplicates.
  std::vector<std::tuple<VertexId, VertexId, std::uint32_t>> norm;
  norm.reserve(edges.size());
  for (const auto& [u, v, w] : edges) {
    PLS_CHECK_MSG(u < n && v < n, "edge endpoint out of range");
    if (u == v) continue;
    norm.emplace_back(std::min(u, v), std::max(u, v), w);
  }
  std::sort(norm.begin(), norm.end(),
            [](const auto& a, const auto& b) {
              return std::tie(std::get<0>(a), std::get<1>(a)) <
                     std::tie(std::get<0>(b), std::get<1>(b));
            });
  std::vector<std::tuple<VertexId, VertexId, std::uint32_t>> merged;
  merged.reserve(norm.size());
  for (const auto& e : norm) {
    if (!merged.empty() && std::get<0>(merged.back()) == std::get<0>(e) &&
        std::get<1>(merged.back()) == std::get<1>(e)) {
      std::get<2>(merged.back()) += std::get<2>(e);
    } else {
      merged.push_back(e);
    }
  }
  edge_count_ = merged.size();

  // CSR with both directions.
  off_.assign(n + 1, 0);
  for (const auto& [u, v, w] : merged) {
    ++off_[u + 1];
    ++off_[v + 1];
  }
  for (std::size_t i = 1; i <= n; ++i) off_[i] += off_[i - 1];
  adj_.resize(merged.size() * 2);
  std::vector<std::uint32_t> cursor(off_.begin(), off_.end() - 1);
  for (const auto& [u, v, w] : merged) {
    adj_[cursor[u]++] = Edge{v, w};
    adj_[cursor[v]++] = Edge{u, w};
  }
}

WeightedGraph WeightedGraph::from_circuit(const circuit::Circuit& c) {
  PLS_CHECK_MSG(c.frozen(), "from_circuit requires a frozen circuit");
  std::vector<std::tuple<VertexId, VertexId, std::uint32_t>> edges;
  edges.reserve(c.num_edges());
  for (circuit::GateId g = 0; g < c.size(); ++g) {
    for (circuit::GateId f : c.fanins(g)) {
      edges.emplace_back(static_cast<VertexId>(f), static_cast<VertexId>(g),
                         1u);
    }
  }
  return WeightedGraph(std::vector<std::uint32_t>(c.size(), 1), edges);
}

std::uint64_t WeightedGraph::weighted_degree(VertexId v) const {
  std::uint64_t d = 0;
  for (const Edge& e : neighbors(v)) d += e.weight;
  return d;
}

}  // namespace pls::graph
