#pragma once
// WeightedGraph: the vertex- and edge-weighted undirected graph the
// partitioning algorithms operate on.
//
// The paper's circuit graph is directed (gates → signals), but cut-set and
// refinement gains treat communication symmetrically, so the partitioning
// layer symmetrizes the circuit: an edge {u,v} with weight w aggregates all
// directed signal connections between u and v.  Vertex weights carry the
// number of original gates a coarsened globule represents (paper §3,
// coarsening phase).

#include <cstdint>
#include <span>
#include <vector>

#include "circuit/circuit.hpp"

namespace pls::graph {

using VertexId = std::uint32_t;

struct Edge {
  VertexId to;
  std::uint32_t weight;
};

class WeightedGraph {
 public:
  WeightedGraph() = default;

  /// Build from an explicit edge list (u,v,w); parallel edges are merged by
  /// summing weights, self-loops dropped.  `vertex_weights` defines the
  /// vertex count.
  WeightedGraph(std::vector<std::uint32_t> vertex_weights,
                std::span<const std::tuple<VertexId, VertexId, std::uint32_t>>
                    edges);

  /// Symmetrized view of a frozen circuit: one vertex per gate (weight 1),
  /// one undirected edge per connected gate pair (weight = number of
  /// directed connections between them).
  static WeightedGraph from_circuit(const circuit::Circuit& c);

  std::size_t num_vertices() const noexcept { return vweight_.size(); }
  std::size_t num_edges() const noexcept { return edge_count_; }

  std::uint32_t vertex_weight(VertexId v) const { return vweight_.at(v); }
  std::uint64_t total_vertex_weight() const noexcept { return total_weight_; }

  std::span<const Edge> neighbors(VertexId v) const {
    return {adj_.data() + off_.at(v), off_.at(v + 1) - off_.at(v)};
  }

  /// Sum of weights of edges incident to v.
  std::uint64_t weighted_degree(VertexId v) const;

 private:
  void build_csr(
      std::span<const std::tuple<VertexId, VertexId, std::uint32_t>> edges);

  std::vector<std::uint32_t> vweight_;
  std::uint64_t total_weight_ = 0;
  std::vector<std::uint32_t> off_;
  std::vector<Edge> adj_;
  std::size_t edge_count_ = 0;  // undirected edges after merging
};

}  // namespace pls::graph
