#include "hypergraph/coarsen.hpp"

#include <algorithm>
#include <numeric>
#include <unordered_map>

#include "util/check.hpp"
#include "util/rng.hpp"

namespace pls::hypergraph {
namespace {

constexpr std::uint32_t kNone = ~std::uint32_t{0};

/// One heavy-pin matching round.  Returns the fine-vertex → globule map and
/// the globule count.
std::pair<std::vector<std::uint32_t>, std::size_t> heavy_pin_round(
    const Hypergraph& hg, const std::vector<std::uint8_t>& contains_input,
    const std::vector<std::uint32_t>& part, const HgCoarsenOptions& opt,
    util::Rng& rng) {
  const std::size_t n = hg.num_vertices();
  std::vector<std::uint32_t> globule(n, kNone);
  std::uint32_t next_globule = 0;

  std::vector<std::uint32_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  rng.shuffle(order);

  // Sparse rating accumulator, reset via the touched list.
  std::vector<double> score(n, 0.0);
  std::vector<VertexId> touched;

  for (const VertexId v : order) {
    if (globule[v] != kNone) continue;
    touched.clear();
    for (NetId e : hg.nets(v)) {
      const auto pin_span = hg.pins(e);
      if (pin_span.size() > opt.rating_pin_limit) continue;
      const double r = static_cast<double>(hg.net_weight(e)) /
                       static_cast<double>(pin_span.size() - 1);
      for (VertexId u : pin_span) {
        if (u == v || globule[u] != kNone) continue;
        if (!part.empty() && part[u] != part[v]) continue;  // respect_parts
        if (contains_input[v] && contains_input[u]) continue;  // PI rule
        if (opt.max_globule_weight != 0 &&
            std::uint64_t{hg.vertex_weight(v)} + hg.vertex_weight(u) >
                opt.max_globule_weight) {
          continue;  // weight cap: keep globules movable by refinement
        }
        if (score[u] == 0.0) touched.push_back(u);
        score[u] += r;
      }
    }
    VertexId best = kNone;
    double best_score = 0.0;
    for (VertexId u : touched) {
      // Prefer the lighter partner on ties: keeps globule weights even.
      if (score[u] > best_score ||
          (score[u] == best_score && best != kNone &&
           hg.vertex_weight(u) < hg.vertex_weight(best))) {
        best_score = score[u];
        best = u;
      }
      score[u] = 0.0;
    }
    globule[v] = next_globule;
    if (best != kNone) globule[best] = next_globule;
    ++next_globule;
  }
  return {std::move(globule), next_globule};
}

/// Contract `fine` through `globule`, folding identical nets together.
Hypergraph contract(const Hypergraph& fine,
                    const std::vector<std::uint32_t>& globule,
                    std::size_t num_globules) {
  std::vector<std::uint32_t> vweight(num_globules, 0);
  for (VertexId v = 0; v < fine.num_vertices(); ++v) {
    vweight[globule[v]] += fine.vertex_weight(v);
  }

  std::vector<std::vector<VertexId>> nets;
  std::vector<std::uint32_t> net_weights;
  std::unordered_map<std::uint64_t, std::vector<std::uint32_t>> by_hash;
  std::vector<VertexId> coarse_pins;
  for (NetId e = 0; e < fine.num_nets(); ++e) {
    coarse_pins.clear();
    for (VertexId v : fine.pins(e)) coarse_pins.push_back(globule[v]);
    std::sort(coarse_pins.begin(), coarse_pins.end());
    coarse_pins.erase(std::unique(coarse_pins.begin(), coarse_pins.end()),
                      coarse_pins.end());
    if (coarse_pins.size() < 2) continue;  // net swallowed by a globule

    std::uint64_t h = 1469598103934665603ULL;  // FNV-1a over the pin ids
    for (VertexId v : coarse_pins) {
      h ^= v;
      h *= 1099511628211ULL;
    }
    bool merged = false;
    for (std::uint32_t idx : by_hash[h]) {
      if (nets[idx] == coarse_pins) {
        net_weights[idx] += fine.net_weight(e);
        merged = true;
        break;
      }
    }
    if (!merged) {
      by_hash[h].push_back(static_cast<std::uint32_t>(nets.size()));
      nets.push_back(coarse_pins);
      net_weights.push_back(fine.net_weight(e));
    }
  }
  return Hypergraph(std::move(vweight), nets, net_weights);
}

}  // namespace

HgHierarchy coarsen(const circuit::Circuit& c, const HgCoarsenOptions& opt) {
  PLS_CHECK_MSG(c.frozen(), "coarsen requires a frozen circuit");
  const std::size_t threshold = opt.threshold == 0 ? 64 : opt.threshold;
  util::Rng rng(opt.seed);

  HgHierarchy h;
  h.base = Hypergraph::from_circuit(c, opt.weights);
  h.base_contains_input.assign(c.size(), 0);
  for (circuit::GateId pi : c.primary_inputs()) h.base_contains_input[pi] = 1;

  const Hypergraph* cur = &h.base;
  const std::vector<std::uint8_t>* cur_inputs = &h.base_contains_input;
  // Part id per current-level vertex when respecting a partition (all of
  // a globule's members share one part by construction); empty otherwise.
  std::vector<std::uint32_t> cur_part;
  if (opt.respect_parts != nullptr) {
    PLS_CHECK_MSG(opt.respect_parts->size() == c.size(),
                  "respect_parts must cover every gate");
    cur_part = *opt.respect_parts;
  }

  while (h.levels.size() < opt.max_levels &&
         cur->num_vertices() > threshold) {
    const bool all_inputs =
        std::all_of(cur_inputs->begin(), cur_inputs->end(),
                    [](std::uint8_t b) { return b != 0; });
    if (all_inputs) break;

    auto [globule, count] =
        heavy_pin_round(*cur, *cur_inputs, cur_part, opt, rng);
    if (count == cur->num_vertices()) break;  // no merges happened; stuck

    HgCoarseLevel level;
    level.hg = contract(*cur, globule, count);
    level.contains_input.assign(count, 0);
    std::vector<std::uint32_t> members(count, 0);
    for (VertexId v = 0; v < cur->num_vertices(); ++v) {
      level.contains_input[globule[v]] |= (*cur_inputs)[v];
      ++members[globule[v]];
    }
    if (!cur_part.empty()) {
      std::vector<std::uint32_t> coarse_part(count, 0);
      for (VertexId v = 0; v < cur->num_vertices(); ++v) {
        coarse_part[globule[v]] = cur_part[v];
      }
      cur_part = std::move(coarse_part);
    }
    level.merged_globules = static_cast<std::size_t>(
        std::count_if(members.begin(), members.end(),
                      [](std::uint32_t m) { return m >= 2; }));
    level.parent_map = std::move(globule);
    h.levels.push_back(std::move(level));

    cur = &h.levels.back().hg;
    cur_inputs = &h.levels.back().contains_input;
  }
  return h;
}

void check_hg_hierarchy_invariants(const HgHierarchy& h) {
  const Hypergraph* fine = &h.base;
  const std::vector<std::uint8_t>* fine_inputs = &h.base_contains_input;
  for (std::size_t li = 0; li < h.levels.size(); ++li) {
    const HgCoarseLevel& lvl = h.levels[li];
    PLS_CHECK_MSG(lvl.parent_map.size() == fine->num_vertices(),
                  "level " << li << " parent map incomplete");
    std::vector<std::uint64_t> wsum(lvl.hg.num_vertices(), 0);
    std::vector<std::uint32_t> input_members(lvl.hg.num_vertices(), 0);
    for (VertexId v = 0; v < fine->num_vertices(); ++v) {
      const std::uint32_t p = lvl.parent_map[v];
      PLS_CHECK_MSG(p < lvl.hg.num_vertices(),
                    "level " << li << " parent out of range");
      wsum[p] += fine->vertex_weight(v);
      input_members[p] += (*fine_inputs)[v] ? 1 : 0;
    }
    for (VertexId g = 0; g < lvl.hg.num_vertices(); ++g) {
      PLS_CHECK_MSG(wsum[g] == lvl.hg.vertex_weight(g),
                    "level " << li << " globule " << g
                             << " weight mismatch: members sum to " << wsum[g]
                             << ", hypergraph says "
                             << lvl.hg.vertex_weight(g));
      PLS_CHECK_MSG(wsum[g] > 0, "level " << li << " empty globule " << g);
      PLS_CHECK_MSG(input_members[g] <= 1,
                    "level " << li << " globule " << g << " combines "
                             << input_members[g] << " primary inputs");
      PLS_CHECK_MSG((lvl.contains_input[g] != 0) == (input_members[g] == 1),
                    "level " << li << " globule " << g
                             << " contains_input flag inconsistent");
    }
    fine = &lvl.hg;
    fine_inputs = &lvl.contains_input;
  }
}

}  // namespace pls::hypergraph
