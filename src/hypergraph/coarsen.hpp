#pragma once
// Coarsening phase of the multilevel hypergraph partitioner.
//
// Mirrors the structure of partition/coarsen.hpp (globule hierarchy,
// per-globule weight caps, the primary-input separation rule) but matches
// vertices by *pin similarity* instead of walking fanout: two vertices are
// good merge candidates when they share many light nets, scored by the
// classic heavy-edge rating Σ_{e ∋ u,v} w(e)/(|e|−1).  Contracting such a
// pair removes those nets' pins from the cut frontier without inflating
// any net, which is what makes the coarse levels faithful proxies for the
// λ−1 objective.
//
// Contraction maps every net's pins through the match, merges duplicate
// pins, drops single-pin nets, and folds *identical* nets together by
// summing their weights — on circuit hypergraphs many fanout nets collapse
// to the same pin set after one level, so this keeps levels small.

#include <cstdint>
#include <vector>

#include "circuit/circuit.hpp"
#include "hypergraph/hypergraph.hpp"
#include "multilevel/weights.hpp"

namespace pls::hypergraph {

struct HgCoarsenOptions {
  /// Stop once the vertex count is <= threshold. 0 = caller default (64).
  std::size_t threshold = 64;
  std::size_t max_levels = 64;
  std::uint64_t seed = 1;
  /// Largest weight a single globule may reach (0 = unlimited); same role
  /// as CoarsenOptions::max_globule_weight.
  std::uint64_t max_globule_weight = 0;
  /// Nets with more pins than this are ignored when rating matches (they
  /// are almost never removable from the cut, and rating them is O(|e|²)).
  std::size_t rating_pin_limit = 64;
  /// Optional activity-derived weights: H0 is built with per-gate work
  /// vertex weights and per-driver traffic net weights (see
  /// Hypergraph::from_circuit).  Must outlive the coarsen() call; nullptr
  /// means unit weights.
  const multilevel::VertexTrafficWeights* weights = nullptr;
  /// Optional partition to respect (one part id per gate): vertices merge
  /// only with vertices of the same part, so a partition-shaped seed lifts
  /// losslessly to every level — the warm start of the iterated V-cycle
  /// used by incremental repartitioning (multilevel::run_iterated_vcycle).
  /// Must outlive the coarsen() call; nullptr means unconstrained.
  const std::vector<std::uint32_t>* respect_parts = nullptr;
};

/// One coarse level derived from the level above it.
struct HgCoarseLevel {
  Hypergraph hg;
  std::vector<std::uint32_t> parent_map;  ///< finer vertex -> this level's
  std::vector<std::uint8_t> contains_input;
  std::size_t merged_globules = 0;  ///< globules formed by >=2 members
};

/// The multilevel hierarchy: base H0 plus H1 … Hm.
struct HgHierarchy {
  Hypergraph base;
  std::vector<std::uint8_t> base_contains_input;
  std::vector<HgCoarseLevel> levels;

  const Hypergraph& coarsest() const {
    return levels.empty() ? base : levels.back().hg;
  }
  const std::vector<std::uint8_t>& coarsest_contains_input() const {
    return levels.empty() ? base_contains_input
                          : levels.back().contains_input;
  }
};

/// Build the hierarchy for a frozen circuit (base = from_circuit).
HgHierarchy coarsen(const circuit::Circuit& c, const HgCoarsenOptions& opt);

/// Structural invariants (mirrors partition::check_hierarchy_invariants):
/// parent maps are total and in range, coarse vertex weights are member
/// sums, no globule holds two primary inputs.  Throws util::CheckError.
void check_hg_hierarchy_invariants(const HgHierarchy& h);

}  // namespace pls::hypergraph
