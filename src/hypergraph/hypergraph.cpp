#include "hypergraph/hypergraph.hpp"

#include <algorithm>
#include <numeric>

#include "util/check.hpp"

namespace pls::hypergraph {

Hypergraph::Hypergraph(std::vector<std::uint32_t> vertex_weights,
                       const std::vector<std::vector<VertexId>>& nets,
                       const std::vector<std::uint32_t>& net_weights)
    : vweight_(std::move(vertex_weights)) {
  PLS_CHECK_MSG(net_weights.empty() || net_weights.size() == nets.size(),
                "net_weights must be empty or match the net count");
  total_weight_ = std::accumulate(vweight_.begin(), vweight_.end(),
                                  std::uint64_t{0});

  net_off_.push_back(0);
  std::vector<VertexId> scratch;
  for (std::size_t e = 0; e < nets.size(); ++e) {
    scratch.assign(nets[e].begin(), nets[e].end());
    std::sort(scratch.begin(), scratch.end());
    scratch.erase(std::unique(scratch.begin(), scratch.end()), scratch.end());
    if (scratch.size() < 2) continue;  // single-pin nets can never be cut
    for (VertexId v : scratch) {
      PLS_CHECK_MSG(v < vweight_.size(), "pin " << v << " out of range");
      pins_.push_back(v);
    }
    net_off_.push_back(static_cast<std::uint32_t>(pins_.size()));
    net_weight_.push_back(net_weights.empty() ? 1 : net_weights[e]);
  }
  build_incidence();
}

Hypergraph Hypergraph::from_circuit(const circuit::Circuit& c) {
  return from_circuit(c, nullptr);
}

Hypergraph Hypergraph::from_circuit(const circuit::Circuit& c,
                                    const multilevel::VertexTrafficWeights* w) {
  PLS_CHECK_MSG(c.frozen(), "from_circuit requires a frozen circuit");
  const std::size_t n = c.size();
  if (w != nullptr) {
    PLS_CHECK_MSG(w->vertex.size() == n && w->traffic.size() == n,
                  "weights must cover every gate");
  }
  Hypergraph hg;
  if (w != nullptr) {
    hg.vweight_.assign(w->vertex.begin(), w->vertex.end());
  } else {
    hg.vweight_.assign(n, 1);
  }
  hg.total_weight_ = std::accumulate(hg.vweight_.begin(), hg.vweight_.end(),
                                     std::uint64_t{0});

  hg.net_off_.push_back(0);
  std::vector<VertexId> scratch;
  for (circuit::GateId g = 0; g < n; ++g) {
    const auto outs = c.fanouts(g);
    if (outs.empty()) continue;
    scratch.clear();
    scratch.push_back(g);
    scratch.insert(scratch.end(), outs.begin(), outs.end());
    std::sort(scratch.begin(), scratch.end());
    scratch.erase(std::unique(scratch.begin(), scratch.end()), scratch.end());
    if (scratch.size() < 2) continue;  // self-loop only (DFF feeding itself)
    hg.pins_.insert(hg.pins_.end(), scratch.begin(), scratch.end());
    hg.net_off_.push_back(static_cast<std::uint32_t>(hg.pins_.size()));
    hg.net_weight_.push_back(w != nullptr ? w->traffic[g] : 1);
  }
  hg.build_incidence();
  return hg;
}

void Hypergraph::build_incidence() {
  const std::size_t n = vweight_.size();
  vtx_off_.assign(n + 1, 0);
  for (VertexId v : pins_) ++vtx_off_[v + 1];
  for (std::size_t v = 1; v <= n; ++v) vtx_off_[v] += vtx_off_[v - 1];
  incident_.resize(pins_.size());
  std::vector<std::uint32_t> cursor(vtx_off_.begin(), vtx_off_.end() - 1);
  for (NetId e = 0; e < num_nets(); ++e) {
    for (VertexId v : pins(e)) incident_[cursor[v]++] = e;
  }
}

std::uint64_t Hypergraph::weighted_degree(VertexId v) const {
  std::uint64_t d = 0;
  for (NetId e : nets(v)) d += net_weight_[e];
  return d;
}

}  // namespace pls::hypergraph
