#pragma once
// Hypergraph: the exact communication structure of a circuit.
//
// The pairwise WeightedGraph the paper partitions symmetrizes multi-fanout
// nets into cliques of 2-pin edges, which double-counts their cut: a gate
// driving f sinks in one foreign part pays f graph edges but only one
// inter-node message per transition.  A hypergraph models the net as a
// single hyperedge whose pins are the driver and all its sinks, so the
// connectivity-1 (λ−1) objective counts exactly the Time Warp messages one
// signal transition generates — the quantity partition::comm_volume reports
// as a side statistic and this subsystem optimizes directly.
//
// Layout is CSR in both directions (net → pins, vertex → incident nets):
// two offset arrays and two flat id arrays, so traversals in the coarsener
// and FM refiner are contiguous scans with no per-net allocation.

#include <cstdint>
#include <span>
#include <vector>

#include "circuit/circuit.hpp"
#include "multilevel/weights.hpp"

namespace pls::hypergraph {

using VertexId = std::uint32_t;
using NetId = std::uint32_t;

class Hypergraph {
 public:
  Hypergraph() = default;

  /// Build from an explicit net list.  Within each net, duplicate pins are
  /// merged; single-pin nets are dropped (they can never be cut).
  /// `vertex_weights` defines the vertex count; `net_weights` defaults to
  /// all-1 and is indexed like `nets`.
  Hypergraph(std::vector<std::uint32_t> vertex_weights,
             const std::vector<std::vector<VertexId>>& nets,
             const std::vector<std::uint32_t>& net_weights = {});

  /// One vertex per gate (weight 1); one hyperedge per driving gate's
  /// fanout net, pins = {driver} ∪ fanouts(driver).  Gates with no fanout
  /// (or whose only sink is themselves) contribute no net.
  static Hypergraph from_circuit(const circuit::Circuit& c);

  /// Activity-weighted variant: vertex weights carry per-gate work and
  /// each net's weight is its driver's traffic weight, so λ−1 counts
  /// events per unit time instead of distinct cut nets.  nullptr falls
  /// back to unit weights.
  static Hypergraph from_circuit(const circuit::Circuit& c,
                                 const multilevel::VertexTrafficWeights* w);

  std::size_t num_vertices() const noexcept { return vweight_.size(); }
  std::size_t num_nets() const noexcept { return net_weight_.size(); }
  std::size_t num_pins() const noexcept { return pins_.size(); }

  std::uint32_t vertex_weight(VertexId v) const { return vweight_.at(v); }
  std::uint64_t total_vertex_weight() const noexcept { return total_weight_; }
  std::uint32_t net_weight(NetId e) const { return net_weight_.at(e); }

  /// Pins of net e, sorted ascending, duplicate-free.
  std::span<const VertexId> pins(NetId e) const {
    return {pins_.data() + net_off_.at(e), net_off_.at(e + 1) - net_off_.at(e)};
  }

  /// Nets incident to vertex v (every net that has v as a pin).
  std::span<const NetId> nets(VertexId v) const {
    return {incident_.data() + vtx_off_.at(v),
            vtx_off_.at(v + 1) - vtx_off_.at(v)};
  }

  /// Sum of net weights over nets incident to v — the largest possible
  /// λ−1 change a single move of v can cause (bounds FM gains).
  std::uint64_t weighted_degree(VertexId v) const;

 private:
  void build_incidence();

  std::vector<std::uint32_t> vweight_;
  std::uint64_t total_weight_ = 0;

  // net → pins (CSR)
  std::vector<std::uint32_t> net_off_;
  std::vector<VertexId> pins_;
  std::vector<std::uint32_t> net_weight_;

  // vertex → incident nets (CSR)
  std::vector<std::uint32_t> vtx_off_;
  std::vector<NetId> incident_;
};

}  // namespace pls::hypergraph
