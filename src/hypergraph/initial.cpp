#include "hypergraph/initial.hpp"

#include <algorithm>
#include <deque>
#include <numeric>

#include "util/check.hpp"
#include "util/rng.hpp"

namespace pls::hypergraph {

partition::Partition initial_partition(
    const Hypergraph& hg, const std::vector<std::uint8_t>& contains_input,
    const HgInitialOptions& opt) {
  PLS_CHECK(opt.k >= 1);
  PLS_CHECK(contains_input.size() == hg.num_vertices());
  util::Rng rng(opt.seed);
  const std::size_t n = hg.num_vertices();
  constexpr partition::PartId kUnassigned = ~partition::PartId{0};

  partition::Partition p;
  p.k = opt.k;
  p.assign.assign(n, kUnassigned);

  std::vector<std::uint64_t> load(opt.k, 0);

  auto least_loaded = [&]() -> partition::PartId {
    return static_cast<partition::PartId>(
        std::min_element(load.begin(), load.end()) - load.begin());
  };

  // Phase 1: spread input globules, heaviest first onto the least-loaded
  // part, seeding each part's BFS frontier.
  std::vector<VertexId> inputs;
  for (VertexId v = 0; v < n; ++v) {
    if (contains_input[v]) inputs.push_back(v);
  }
  std::sort(inputs.begin(), inputs.end(), [&](VertexId a, VertexId b) {
    return hg.vertex_weight(a) > hg.vertex_weight(b);
  });
  std::vector<std::deque<VertexId>> frontier(opt.k);
  auto assign = [&](VertexId v, partition::PartId part) {
    p.assign[v] = part;
    load[part] += hg.vertex_weight(v);
    frontier[part].push_back(v);
  };
  for (VertexId v : inputs) assign(v, least_loaded());

  // Phase 2: grow the least-loaded part through its net frontier; fall
  // back to a random unassigned vertex when the frontier is exhausted
  // (disconnected logic, or every reachable vertex already taken).
  std::vector<VertexId> pool(n);
  std::iota(pool.begin(), pool.end(), 0);
  rng.shuffle(pool);
  std::size_t pool_pos = 0;
  std::size_t assigned = inputs.size();

  while (assigned < n) {
    const partition::PartId part = least_loaded();
    VertexId next = ~VertexId{0};
    auto& q = frontier[part];
    while (!q.empty() && next == ~VertexId{0}) {
      const VertexId from = q.front();
      // Scan `from`'s nets for an unassigned pin; drop `from` from the
      // frontier once its neighbourhood is exhausted.
      for (NetId e : hg.nets(from)) {
        for (VertexId u : hg.pins(e)) {
          if (p.assign[u] == kUnassigned) {
            next = u;
            break;
          }
        }
        if (next != ~VertexId{0}) break;
      }
      if (next == ~VertexId{0}) q.pop_front();
    }
    if (next == ~VertexId{0}) {
      while (pool_pos < n && p.assign[pool[pool_pos]] != kUnassigned) {
        ++pool_pos;
      }
      PLS_CHECK(pool_pos < n);
      next = pool[pool_pos];
    }
    assign(next, part);
    ++assigned;
  }
  return p;
}

}  // namespace pls::hypergraph
