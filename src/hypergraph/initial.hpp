#pragma once
// Initial k-way partitioning at the coarsest level of the hypergraph
// hierarchy.
//
// Mirrors the graph pipeline's initial phase (partition/initial.hpp) but
// grows parts by breadth-first traversal over nets: input globules are
// spread evenly first (concurrency, as in the paper's §3), then each part
// in least-loaded order absorbs an unassigned vertex from its net
// frontier, so parts start out net-connected and the first FM pass has
// few stranded pins to repair.

#include <cstdint>
#include <vector>

#include "hypergraph/hypergraph.hpp"
#include "partition/partition.hpp"

namespace pls::hypergraph {

// Balance needs no tolerance knob here: the grower always extends the
// least-loaded part, which keeps loads within one globule weight of each
// other — tighter than any sane tolerance (the coarsener caps globules at
// a quarter of the ideal part load).  The FM refiner owns the tolerance.
struct HgInitialOptions {
  std::uint32_t k = 2;
  std::uint64_t seed = 1;
};

partition::Partition initial_partition(
    const Hypergraph& hg, const std::vector<std::uint8_t>& contains_input,
    const HgInitialOptions& opt);

}  // namespace pls::hypergraph
