#include "hypergraph/metrics.hpp"

#include <algorithm>
#include <vector>

#include "multilevel/metrics.hpp"
#include "util/check.hpp"

namespace pls::hypergraph {
namespace {

/// Number of distinct parts among a net's pins; `seen` is caller-provided
/// scratch of size k, zeroed between calls via the returned list.
std::uint32_t lambda_of(const Hypergraph& hg, NetId e,
                        const partition::Partition& p,
                        std::vector<std::uint8_t>& seen,
                        std::vector<partition::PartId>& touched) {
  touched.clear();
  for (VertexId v : hg.pins(e)) {
    const partition::PartId q = p.assign[v];
    if (!seen[q]) {
      seen[q] = 1;
      touched.push_back(q);
    }
  }
  for (partition::PartId q : touched) seen[q] = 0;
  return static_cast<std::uint32_t>(touched.size());
}

}  // namespace

std::uint64_t cut_net(const Hypergraph& hg, const partition::Partition& p) {
  p.validate(hg.num_vertices());
  std::uint64_t cut = 0;
  std::vector<std::uint8_t> seen(p.k, 0);
  std::vector<partition::PartId> touched;
  for (NetId e = 0; e < hg.num_nets(); ++e) {
    if (lambda_of(hg, e, p, seen, touched) > 1) cut += hg.net_weight(e);
  }
  return cut;
}

std::uint64_t connectivity_minus_one(const Hypergraph& hg,
                                     const partition::Partition& p) {
  p.validate(hg.num_vertices());
  std::uint64_t volume = 0;
  std::vector<std::uint8_t> seen(p.k, 0);
  std::vector<partition::PartId> touched;
  for (NetId e = 0; e < hg.num_nets(); ++e) {
    volume += static_cast<std::uint64_t>(hg.net_weight(e)) *
              (lambda_of(hg, e, p, seen, touched) - 1);
  }
  return volume;
}

double imbalance(const Hypergraph& hg, const partition::Partition& p) {
  p.validate(hg.num_vertices());
  std::vector<std::uint64_t> load(p.k, 0);
  for (VertexId v = 0; v < hg.num_vertices(); ++v) {
    load[p.assign[v]] += hg.vertex_weight(v);
  }
  return multilevel::imbalance_from_loads(load, hg.total_vertex_weight(),
                                          p.k);
}

}  // namespace pls::hypergraph
