#pragma once
// Native hypergraph partition-quality metrics.
//
// For a net e let λ(e) be the number of distinct parts its pins touch.
// The two classic hypergraph objectives are:
//   cut-net:          Σ w(e) over nets with λ(e) > 1
//   connectivity-1:   Σ w(e)·(λ(e) − 1)
// Because from_circuit() includes the driving gate as a pin of its fanout
// net, connectivity-1 on that hypergraph equals partition::comm_volume on
// the circuit exactly: λ(e)−1 is the number of foreign parts the driver
// must message per transition (tested in hypergraph_test).
//
// For any partition into k parts: cut_net ≤ connectivity_minus_one ≤
// (k−1)·cut_net.

#include <cstdint>

#include "hypergraph/hypergraph.hpp"
#include "partition/partition.hpp"

namespace pls::hypergraph {

/// Weighted number of nets spanning more than one part.
std::uint64_t cut_net(const Hypergraph& hg, const partition::Partition& p);

/// Σ w(e)·(λ(e) − 1) — the λ−1 communication-volume objective.
std::uint64_t connectivity_minus_one(const Hypergraph& hg,
                                     const partition::Partition& p);

/// Max part weight / ideal part weight (1.0 = perfect), by vertex weight.
double imbalance(const Hypergraph& hg, const partition::Partition& p);

}  // namespace pls::hypergraph
