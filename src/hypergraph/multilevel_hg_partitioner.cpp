#include "hypergraph/multilevel_hg_partitioner.hpp"

#include <algorithm>

#include "hypergraph/initial.hpp"
#include "hypergraph/metrics.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace pls::hypergraph {

partition::Partition MultilevelHGPartitioner::run(const circuit::Circuit& c,
                                                  std::uint32_t k,
                                                  std::uint64_t seed) const {
  return run_traced(c, k, seed, nullptr);
}

partition::Partition MultilevelHGPartitioner::run_traced(
    const circuit::Circuit& c, std::uint32_t k, std::uint64_t seed,
    MultilevelHGTrace* trace) const {
  PLS_CHECK(k >= 1);
  util::SplitMix64 seeder(seed);

  // ---- Phase 1: heavy-pin coarsening ----------------------------------
  HgCoarsenOptions copt;
  copt.threshold = opt_.coarsen_threshold != 0
                       ? opt_.coarsen_threshold
                       : std::max<std::size_t>(std::size_t{8} * k, 128);
  copt.seed = seeder.next();
  // Same cap policy as the graph pipeline: a quarter of the ideal per-part
  // load, so the initial phase can balance and FM retains movable units.
  copt.max_globule_weight = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(c.size()) / (std::uint64_t{4} * k));
  const HgHierarchy h = coarsen(c, copt);

  if (trace != nullptr) {
    trace->level_sizes.clear();
    trace->lambda_after_level.clear();
    for (const auto& lvl : h.levels) {
      trace->level_sizes.push_back(lvl.hg.num_vertices());
    }
  }

  // ---- Phase 2: BFS-grown initial k-way at the coarsest level ---------
  HgInitialOptions iopt;
  iopt.k = k;
  iopt.seed = seeder.next();
  partition::Partition p =
      initial_partition(h.coarsest(), h.coarsest_contains_input(), iopt);
  if (trace != nullptr) {
    trace->initial_lambda = connectivity_minus_one(h.coarsest(), p);
  }

  // ---- Phase 3: λ−1 FM refinement, projecting from Hm down to H0 ------
  HgRefineOptions ropt;
  ropt.balance_tol = opt_.balance_tol;
  ropt.max_iters = opt_.refine_iters;

  HgRefineResult r = refine_fm(h.coarsest(), p, ropt);
  if (trace != nullptr) trace->lambda_after_level.push_back(r.lambda_after);

  for (std::size_t i = h.levels.size(); i-- > 0;) {
    // Project: every member vertex inherits its globule's part.
    const auto& map = h.levels[i].parent_map;
    partition::Partition finer;
    finer.k = k;
    finer.assign.resize(map.size());
    for (std::size_t v = 0; v < map.size(); ++v) {
      finer.assign[v] = p.assign[map[v]];
    }
    p = std::move(finer);

    const Hypergraph& hfine = i == 0 ? h.base : h.levels[i - 1].hg;
    r = refine_fm(hfine, p, ropt);
    if (trace != nullptr) trace->lambda_after_level.push_back(r.lambda_after);
  }

  if (trace != nullptr) trace->final_lambda = connectivity_minus_one(h.base, p);
  p.validate(c.size());
  return p;
}

}  // namespace pls::hypergraph
