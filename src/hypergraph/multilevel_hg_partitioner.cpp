#include "hypergraph/multilevel_hg_partitioner.hpp"

#include <algorithm>

#include "hypergraph/initial.hpp"
#include "hypergraph/metrics.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace pls::hypergraph {
namespace {

/// Hypergraph instantiation of the shared V-cycle (multilevel/vcycle.hpp):
/// BFS-grown initial partitioning and λ−1 FM refinement, with λ−1 as the
/// traced quality.
struct HgPolicy {
  std::uint32_t k;
  const MultilevelHGOptions& opt;
  util::SplitMix64& seeder;

  const Hypergraph& graph(const HgCoarseLevel& lvl) const { return lvl.hg; }
  std::size_t size(const Hypergraph& hg) const { return hg.num_vertices(); }
  partition::Partition initial(
      const Hypergraph& hg, const std::vector<std::uint8_t>& contains_input) {
    HgInitialOptions iopt;
    iopt.k = k;
    iopt.seed = seeder.next();
    return initial_partition(hg, contains_input, iopt);
  }
  void refine(const Hypergraph& hg, partition::Partition& p) {
    HgRefineOptions ropt;
    ropt.balance_tol = opt.balance_tol;
    ropt.max_iters = opt.refine_iters;
    refine_fm(hg, p, ropt);
  }
  std::uint64_t quality(const Hypergraph& hg,
                        const partition::Partition& p) const {
    return connectivity_minus_one(hg, p);
  }
};

}  // namespace

partition::Partition MultilevelHGPartitioner::run(const circuit::Circuit& c,
                                                  std::uint32_t k,
                                                  std::uint64_t seed) const {
  return run_traced(c, k, seed, nullptr);
}

partition::Partition MultilevelHGPartitioner::run_traced(
    const circuit::Circuit& c, std::uint32_t k, std::uint64_t seed,
    MultilevelHGTrace* trace) const {
  PLS_CHECK(k >= 1);
  util::SplitMix64 seeder(seed);

  // ---- Phase 1: heavy-pin coarsening ----------------------------------
  HgCoarsenOptions copt;
  copt.threshold = opt_.coarsen_threshold != 0
                       ? opt_.coarsen_threshold
                       : std::max<std::size_t>(std::size_t{8} * k, 128);
  copt.seed = seeder.next();
  copt.weights = opt_.weights;
  // Same cap policy as the graph pipeline: a quarter of the ideal per-part
  // work load, so the initial phase can balance and FM retains movable
  // units.
  const std::uint64_t total_work =
      opt_.weights != nullptr ? opt_.weights->total_vertex_weight()
                              : static_cast<std::uint64_t>(c.size());
  copt.max_globule_weight =
      std::max<std::uint64_t>(1, total_work / (std::uint64_t{4} * k));
  const HgHierarchy h = coarsen(c, copt);

  // ---- Phases 2+3: the shared V-cycle ---------------------------------
  HgPolicy pol{k, opt_, seeder};

  // Uniform weights cannot change any decision, so the plain V-cycle
  // reproduces the unweighted partition bit-identically; real weights get
  // the best-of-two guided cycle (see multilevel/vcycle.hpp).
  partition::Partition p;
  if (opt_.weights == nullptr || opt_.weights->uniform()) {
    p = multilevel::run_vcycle(h, pol, trace);
  } else {
    // Candidate B replays the unweighted run's exact seed chain, so the
    // guided result can only improve on today's unweighted partition.
    util::SplitMix64 useeder(seed);
    HgCoarsenOptions ucopt = copt;
    ucopt.weights = nullptr;
    ucopt.seed = useeder.next();
    ucopt.max_globule_weight = std::max<std::uint64_t>(
        1, static_cast<std::uint64_t>(c.size()) / (std::uint64_t{4} * k));
    const HgHierarchy hu = coarsen(c, ucopt);
    HgPolicy upol{k, opt_, useeder};
    p = multilevel::run_guided_vcycle(h, hu, pol, upol, trace);
  }
  p.validate(c.size());
  return p;
}

partition::Partition MultilevelHGPartitioner::run_incremental(
    const circuit::Circuit& c, std::uint32_t k, std::uint64_t seed,
    const partition::Partition& current, MultilevelHGTrace* trace) const {
  PLS_CHECK(k >= 1);
  PLS_CHECK_MSG(current.k == k && current.assign.size() == c.size(),
                "incremental repartition seed must match circuit and k");
  util::SplitMix64 seeder(seed);
  const Hypergraph hg = Hypergraph::from_circuit(c, opt_.weights);
  HgPolicy pol{k, opt_, seeder};
  partition::Partition p =
      multilevel::run_incremental_vcycle(hg, pol, current, trace);
  if (p.assign == current.assign) {
    // Flat refinement fixed point: the weights did not move the optimum.
    // Return the live assignment untouched (the unchanged-weights
    // contract the kernel's skip-migration path and unit tests pin).
    return p;
  }
  // The flat pass detected drift.  Escalate to the iterated V-cycle:
  // re-coarsen respecting the live partition and refine coarsest-first,
  // so whole clusters can cross the cut — the moves a hot-region shift
  // demands and single-vertex FM cannot reach.
  // 4× the from-scratch coarsening threshold: drift correction needs
  // cluster-granularity moves, not a fully coarsened hierarchy, and the
  // shallower build keeps each epoch within the ≤1/3-of-from-scratch
  // budget that makes live repartitioning affordable at all.
  HgCoarsenOptions icopt;
  icopt.threshold = opt_.coarsen_threshold != 0
                        ? 4 * opt_.coarsen_threshold
                        : std::max<std::size_t>(std::size_t{32} * k, 512);
  icopt.seed = seeder.next();
  icopt.weights = opt_.weights;
  const std::uint64_t total_work =
      opt_.weights != nullptr ? opt_.weights->total_vertex_weight()
                              : static_cast<std::uint64_t>(c.size());
  icopt.max_globule_weight =
      std::max<std::uint64_t>(1, total_work / (std::uint64_t{4} * k));
  icopt.respect_parts = &current.assign;
  const HgHierarchy hi = coarsen(c, icopt);
  partition::Partition pit =
      multilevel::run_iterated_vcycle(hi, pol, current, nullptr);
  if (pol.quality(hg, pit) < pol.quality(hg, p)) {
    p = std::move(pit);
    if (trace != nullptr) {
      trace->final_quality = pol.quality(hg, p);
      trace->quality_after_level.assign(1, trace->final_quality);
    }
  }
  p.validate(c.size());
  return p;
}

}  // namespace pls::hypergraph
