#pragma once
// MultilevelHG: multilevel k-way partitioning of the circuit *hypergraph*,
// optimizing connectivity-1 (λ−1) directly.
//
// Same three-phase shape as the paper's graph algorithm (coarsen →
// initial → refine-per-level, projecting downward), but every phase runs
// on the hypergraph: heavy-pin coarsening keeps multi-fanout nets whole,
// and FM refinement scores moves by the exact number of inter-node
// messages a signal transition costs.  Registered in the framework
// registry as "MultilevelHG" so it is runtime-selectable next to the
// paper's six strategies.

#include <cstdint>
#include <vector>

#include "hypergraph/coarsen.hpp"
#include "hypergraph/refine.hpp"
#include "multilevel/vcycle.hpp"
#include "multilevel/weights.hpp"
#include "partition/partition.hpp"

namespace pls::hypergraph {

struct MultilevelHGOptions {
  /// Coarsening stops at this vertex count; 0 = auto (max(8k, 128)).
  /// Pairwise matching halves levels at best, so the HG pipeline keeps a
  /// slightly larger coarsest level than the graph pipeline's 4k.
  std::size_t coarsen_threshold = 0;
  /// Same default as MultilevelOptions::balance_tol so head-to-head
  /// comparisons run at equal imbalance tolerance.
  double balance_tol = 0.03;
  std::uint32_t refine_iters = 8;
  /// Optional activity-derived work/traffic weights, consumed exactly like
  /// MultilevelOptions::weights (net weight = driver's traffic weight);
  /// must outlive the run.
  const multilevel::VertexTrafficWeights* weights = nullptr;
};

/// Per-run diagnostics (same shape as the graph pipeline's; "quality" is
/// λ−1 here — see multilevel::Trace).
using MultilevelHGTrace = multilevel::Trace;

class MultilevelHGPartitioner final : public partition::Partitioner {
 public:
  MultilevelHGPartitioner() = default;
  explicit MultilevelHGPartitioner(MultilevelHGOptions opt) : opt_(opt) {}

  std::string name() const override { return "MultilevelHG"; }

  partition::Partition run(const circuit::Circuit& c, std::uint32_t k,
                           std::uint64_t seed) const override;

  partition::Partition run_traced(const circuit::Circuit& c, std::uint32_t k,
                                  std::uint64_t seed,
                                  MultilevelHGTrace* trace) const;

  /// Warm-started repartition for GVT-epoch use: FM-refines `current` on
  /// the weighted circuit hypergraph directly (no coarsening), returning
  /// `current` unchanged unless strictly better under λ−1.  See
  /// multilevel::run_incremental_vcycle.
  partition::Partition run_incremental(const circuit::Circuit& c,
                                       std::uint32_t k, std::uint64_t seed,
                                       const partition::Partition& current,
                                       MultilevelHGTrace* trace = nullptr) const;

  const MultilevelHGOptions& options() const noexcept { return opt_; }

 private:
  MultilevelHGOptions opt_;
};

}  // namespace pls::hypergraph
