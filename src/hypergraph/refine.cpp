#include "hypergraph/refine.hpp"

#include <algorithm>
#include <limits>

#include "hypergraph/metrics.hpp"
#include "multilevel/balance.hpp"
#include "util/check.hpp"

namespace pls::hypergraph {
namespace {

using partition::PartId;

constexpr std::int64_t kMaxExcursion = 64;  ///< negative-gain bail-out

struct BucketEntry {
  VertexId v;
  std::uint32_t stamp;  ///< stale if != stamp[v]
};

/// Gain buckets: one vector per possible gain value, offset by the maximum
/// weighted degree so indices are non-negative.  Entries are invalidated
/// lazily via per-vertex stamps; a popped entry whose gain went stale is
/// re-inserted at its fresh gain, so stale positions cost extra pops but
/// never a wrong move.
class GainBuckets {
 public:
  explicit GainBuckets(std::int64_t max_gain)
      : offset_(max_gain), buckets_(2 * max_gain + 1), top_(-1) {}

  void clear() {
    for (auto& b : buckets_) b.clear();
    top_ = -1;
  }

  void push(std::int64_t gain, BucketEntry entry) {
    const auto idx = static_cast<std::size_t>(
        std::clamp<std::int64_t>(gain + offset_, 0,
                                 static_cast<std::int64_t>(buckets_.size()) -
                                     1));
    buckets_[idx].push_back(entry);
    top_ = std::max(top_, static_cast<std::int64_t>(idx));
  }

  /// Pop the entry with the highest bucket gain; false when empty.
  bool pop(BucketEntry* out, std::int64_t* gain) {
    while (top_ >= 0) {
      auto& b = buckets_[static_cast<std::size_t>(top_)];
      if (b.empty()) {
        --top_;
        continue;
      }
      *out = b.back();
      b.pop_back();
      *gain = top_ - offset_;
      return true;
    }
    return false;
  }

 private:
  std::int64_t offset_;
  std::vector<std::vector<BucketEntry>> buckets_;
  std::int64_t top_;
};

}  // namespace

HgRefineResult refine_fm(const Hypergraph& hg, partition::Partition& p,
                         const HgRefineOptions& opt) {
  p.validate(hg.num_vertices());
  const std::size_t n = hg.num_vertices();
  const std::uint32_t k = p.k;

  HgRefineResult res;
  res.lambda_before = connectivity_minus_one(hg, p);
  res.lambda_after = res.lambda_before;
  if (k < 2 || n == 0) return res;

  // Φ(e,q): pins of net e in part q, stored flat — plus, per net, the
  // candidate list of parts it actually touches.  Gain evaluation then
  // iterates O(Σ_e∋v λ(e)) candidate entries (λ is 1–2 for almost every
  // net) instead of scanning all k parts per net, which was the FM
  // hot loop's dominant cost at larger k.
  std::vector<std::uint32_t> phi(hg.num_nets() * k, 0);
  std::vector<std::vector<PartId>> net_parts(hg.num_nets());
  for (NetId e = 0; e < hg.num_nets(); ++e) {
    for (VertexId v : hg.pins(e)) {
      if (phi[std::size_t{e} * k + p.assign[v]]++ == 0) {
        net_parts[e].push_back(p.assign[v]);
      }
    }
  }

  std::vector<std::uint64_t> load(k, 0);
  for (VertexId v = 0; v < n; ++v) load[p.assign[v]] += hg.vertex_weight(v);
  const std::uint64_t limit =
      multilevel::balance_limit(hg.total_vertex_weight(), k, opt.balance_tol);

  // Two least-loaded parts (lowest id on ties), maintained across moves:
  // the no-adjacent-candidate fallback below needs "least-loaded part
  // other than home" in O(1).  Recomputing costs O(k) but only per
  // *applied move*, not per gain evaluation.
  PartId min_load_1 = 0;
  PartId min_load_2 = 0;
  auto recompute_min_loads = [&] {
    min_load_1 = 0;
    for (PartId q = 1; q < k; ++q) {
      if (load[q] < load[min_load_1]) min_load_1 = q;
    }
    min_load_2 = min_load_1 == 0 ? 1 : 0;
    for (PartId q = 0; q < k; ++q) {
      if (q != min_load_1 && load[q] < load[min_load_2]) min_load_2 = q;
    }
  };
  recompute_min_loads();

  // Best move of v under the λ−1 gain (balance checked at pop time).
  // Any part adjacent to v through some net strictly beats every
  // non-adjacent part (its gain is larger by the shared net weight), so
  // only the candidate lists need scanning; non-adjacent parts matter
  // only when v is entirely interior to its home part, where the move is
  // pure balance and the least-loaded part is the canonical target.
  std::vector<std::uint64_t> present(k, 0);
  std::vector<PartId> touched;
  auto best_move = [&](VertexId v) -> std::pair<std::int64_t, PartId> {
    const PartId home = p.assign[v];
    std::int64_t freed = 0;  // gain from leaving home, target-independent
    std::int64_t degw = 0;
    for (NetId e : hg.nets(v)) {
      const auto w = static_cast<std::int64_t>(hg.net_weight(e));
      if (w == 0) continue;  // weightless nets cannot move any gain
      degw += w;
      if (phi[std::size_t{e} * k + home] == 1) freed += w;
      for (PartId q : net_parts[e]) {
        if (q == home) continue;
        if (present[q] == 0) touched.push_back(q);
        present[q] += static_cast<std::uint64_t>(w);
      }
    }
    std::int64_t best_gain = freed - degw;
    PartId best_part = min_load_1 != home ? min_load_1 : min_load_2;
    for (PartId q : touched) {
      const std::int64_t gain =
          freed - degw + static_cast<std::int64_t>(present[q]);
      if (gain > best_gain ||
          (gain == best_gain && (load[q] < load[best_part] ||
                                 (load[q] == load[best_part] &&
                                  q < best_part)))) {
        best_gain = gain;
        best_part = q;
      }
      present[q] = 0;
    }
    touched.clear();
    return {best_gain, best_part};
  };

  std::int64_t max_degw = 1;
  for (VertexId v = 0; v < n; ++v) {
    max_degw = std::max(max_degw,
                        static_cast<std::int64_t>(hg.weighted_degree(v)));
  }
  GainBuckets buckets(max_degw);
  std::vector<std::uint32_t> stamp(n, 0);
  std::vector<std::uint8_t> locked(n, 0);

  struct Move {
    VertexId v;
    PartId from;
    PartId to;
  };

  auto apply = [&](VertexId v, PartId from, PartId to) {
    for (NetId e : hg.nets(v)) {
      auto& np = net_parts[e];
      if (--phi[std::size_t{e} * k + from] == 0) {
        np.erase(std::find(np.begin(), np.end(), from));
      }
      if (phi[std::size_t{e} * k + to]++ == 0) np.push_back(to);
    }
    p.assign[v] = to;
    load[from] -= hg.vertex_weight(v);
    load[to] += hg.vertex_weight(v);
    recompute_min_loads();
  };

  for (std::uint32_t iter = 0; iter < opt.max_iters; ++iter) {
    ++res.iterations;

    buckets.clear();
    std::fill(locked.begin(), locked.end(), 0);
    for (VertexId v = 0; v < n; ++v) {
      const auto [gain, part] = best_move(v);
      if (part != p.assign[v]) buckets.push(gain, {v, stamp[v]});
    }

    std::vector<Move> log;
    std::int64_t cum = 0;
    std::int64_t best_cum = 0;
    std::size_t best_prefix = 0;

    BucketEntry top;
    std::int64_t bucket_gain;
    while (log.size() < n && buckets.pop(&top, &bucket_gain)) {
      if (top.stamp != stamp[top.v] || locked[top.v]) continue;  // stale
      const auto [gain, target] = best_move(top.v);
      if (gain != bucket_gain) {  // re-queue at the fresh gain
        ++stamp[top.v];
        buckets.push(gain, {top.v, stamp[top.v]});
        continue;
      }
      if (target == p.assign[top.v]) continue;
      if (load[target] + hg.vertex_weight(top.v) > limit) continue;

      const PartId from = p.assign[top.v];
      apply(top.v, from, target);
      locked[top.v] = 1;
      log.push_back({top.v, from, target});
      cum += gain;
      if (cum > best_cum) {
        best_cum = cum;
        best_prefix = log.size();
      }
      if (cum < best_cum - kMaxExcursion) break;

      // Refresh pins of nets the move made (or un-made) critical: gains
      // change only when Φ(e,from) fell to 0/1 or Φ(e,to) rose to 1/2.
      for (NetId e : hg.nets(top.v)) {
        const std::uint32_t* row = phi.data() + std::size_t{e} * k;
        if (row[from] > 1 && row[target] > 2) continue;
        for (VertexId u : hg.pins(e)) {
          if (locked[u] || u == top.v) continue;
          ++stamp[u];
          const auto [ngain, npart] = best_move(u);
          if (npart != p.assign[u]) buckets.push(ngain, {u, stamp[u]});
        }
      }
    }

    // Roll back to the best cumulative-gain prefix.
    for (std::size_t i = log.size(); i-- > best_prefix;) {
      apply(log[i].v, log[i].to, log[i].from);
    }
    res.moves += best_prefix;
    res.lambda_after -= static_cast<std::uint64_t>(best_cum);

    PLS_CHECK_MSG(res.lambda_after == connectivity_minus_one(hg, p),
                  "FM bookkeeping diverged from the λ−1 metric");
    if (best_cum == 0) break;  // pass found no improvement: converged
  }

  PLS_CHECK_MSG(res.lambda_after <= res.lambda_before,
                "hypergraph FM increased λ−1");
  return res;
}

}  // namespace pls::hypergraph
