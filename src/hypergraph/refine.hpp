#pragma once
// k-way FM refinement on the connectivity-1 (λ−1) objective.
//
// The mover maintains, for every net, the number of its pins in each part
// (the Φ(e,q) table).  Moving v from part a to part b changes λ−1 by
//   Σ_{e ∋ v}  w(e) · ( [Φ(e,a)==1]  −  [Φ(e,b)==0] )
// — a net gains when v is its last pin in a (part a leaves the net's span)
// and loses when v is its first pin in b.  This is the exact objective the
// Time Warp layer pays per signal transition, unlike graph refinement
// which optimizes the symmetrized-clique proxy.
//
// Moves are selected from gain buckets (an array of vectors indexed by
// gain, with lazy invalidation stamps), FM-style: zero- and negative-gain
// moves are allowed during a pass, each pass keeps a move log and rolls
// back to the best cumulative-gain prefix, and every moved vertex is
// locked for the rest of the pass.  Committed passes therefore never
// increase λ−1 and always respect the balance limit.

#include <cstdint>

#include "hypergraph/hypergraph.hpp"
#include "partition/partition.hpp"

namespace pls::hypergraph {

// Refinement is fully deterministic (vertices enter the buckets in index
// order and ties break on load), so there is no seed knob.
struct HgRefineOptions {
  /// A move is feasible only if the destination stays at or below
  /// ceil(W/k)·(1+balance_tol).
  double balance_tol = 0.10;
  std::uint32_t max_iters = 8;
};

struct HgRefineResult {
  std::uint64_t moves = 0;
  std::uint64_t iterations = 0;
  std::uint64_t lambda_before = 0;  ///< λ−1 volume entering refinement
  std::uint64_t lambda_after = 0;
};

/// Refine `p` in place.  Never increases connectivity_minus_one(hg, p).
HgRefineResult refine_fm(const Hypergraph& hg, partition::Partition& p,
                         const HgRefineOptions& opt);

}  // namespace pls::hypergraph
