#include "logicsim/activity.hpp"

#include "logicsim/sequential.hpp"

namespace pls::logicsim {

std::vector<double> profile_activity(const circuit::Circuit& c,
                                     const ModelOptions& opt,
                                     warped::SimTime profile_end) {
  SimModel model = build_model(c, opt);
  const SeqStats stats =
      simulate_sequential(model.behaviours(), profile_end, 0);

  double total = 0.0;
  for (auto n : stats.per_lp_events) total += static_cast<double>(n);
  const double mean =
      total > 0.0 ? total / static_cast<double>(stats.per_lp_events.size())
                  : 1.0;

  std::vector<double> activity(stats.per_lp_events.size(), 0.0);
  for (std::size_t i = 0; i < activity.size(); ++i) {
    activity[i] = static_cast<double>(stats.per_lp_events[i]) /
                  (mean > 0.0 ? mean : 1.0);
  }
  return activity;
}

}  // namespace pls::logicsim
