#include "logicsim/activity.hpp"

#include "logicsim/sequential.hpp"

namespace pls::logicsim {

std::vector<double> normalize_counts(
    const std::vector<std::uint64_t>& counts) {
  double total = 0.0;
  for (auto n : counts) total += static_cast<double>(n);
  const double mean =
      total > 0.0 ? total / static_cast<double>(counts.size()) : 1.0;

  std::vector<double> activity(counts.size(), 0.0);
  for (std::size_t i = 0; i < activity.size(); ++i) {
    activity[i] =
        static_cast<double>(counts[i]) / (mean > 0.0 ? mean : 1.0);
  }
  return activity;
}

ActivityProfile profile_activity(const circuit::Circuit& c,
                                 const ModelOptions& opt,
                                 warped::SimTime profile_end) {
  SimModel model = build_model(c, opt);
  const SeqStats stats =
      simulate_sequential(model.behaviours(), profile_end, 0);

  ActivityProfile p;
  // Lane-aware work: an event's cost scales with the lanes it toggles
  // (mask popcount), so batched runs weight gates by real evaluation
  // work; identical to per_lp_events on scalar runs.
  p.work = normalize_counts(stats.per_lp_lane_work);

  // sends(g) counts one event per (transition, sink) pair; dividing by the
  // fanout degree recovers transitions, the per-net traffic rate.
  std::vector<std::uint64_t> transitions(c.size(), 0);
  for (circuit::GateId g = 0; g < c.size(); ++g) {
    const std::size_t fanout = c.fanouts(g).size();
    transitions[g] =
        fanout > 0 ? stats.per_lp_sends[g] / fanout : stats.per_lp_sends[g];
  }
  p.traffic = normalize_counts(transitions);
  return p;
}

}  // namespace pls::logicsim
