#pragma once
// Gate activity profiling (paper §6, future work: "the use of activity
// levels of communication to make better decisions while coarsening").
//
// A short sequential pre-simulation counts how often each gate evaluates;
// the normalized rates feed the activity-weighted coarsening scheme
// (partition::CoarsenOptions::activity), which then prefers to keep busy
// signals inside globules.

#include <cstdint>
#include <vector>

#include "circuit/circuit.hpp"
#include "logicsim/netlist_lps.hpp"

namespace pls::logicsim {

/// Two per-gate activity signals, each mean-normalized (1.0 = average
/// gate).  They answer different questions and drive different weights:
///   work[g]     lane transitions *executed at* g — popcount over the
///               change masks of the events g receives — how much CPU
///               hosting g costs (vertex/work weight).  On a scalar run
///               every mask has one bit, so this is the classic
///               events-executed count; on a batched run an event that
///               toggles 40 lanes weighs 40, so lane-dense gates read as
///               proportionally hotter than lane-sparse ones instead of
///               all events counting alike.
///   traffic[g]  output lane transitions of g (mask popcounts of sends /
///               fanout degree) — how many messages cutting g's fanout
///               net costs per unit time (net/edge traffic weight).  A
///               gate evaluated often but rarely toggling is heavy work
///               yet cheap to cut.
struct ActivityProfile {
  std::vector<double> work;
  std::vector<double> traffic;
};

/// Profile gate activity with a short sequential pre-simulation;
/// `profile_end` bounds it.  Deterministic for a fixed stimulus seed.
ActivityProfile profile_activity(const circuit::Circuit& c,
                                 const ModelOptions& opt,
                                 warped::SimTime profile_end);

/// Mean-normalize raw per-gate event counts into an activity profile
/// (1.0 = average gate; all-zero counts normalize to all-zero).  Shared by
/// profile_activity and the driver's warm-up feedback path, which feeds
/// per-LP committed-event counts from a parallel run through the same
/// normalization.
std::vector<double> normalize_counts(const std::vector<std::uint64_t>& counts);

}  // namespace pls::logicsim
