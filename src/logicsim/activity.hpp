#pragma once
// Gate activity profiling (paper §6, future work: "the use of activity
// levels of communication to make better decisions while coarsening").
//
// A short sequential pre-simulation counts how often each gate evaluates;
// the normalized rates feed the activity-weighted coarsening scheme
// (partition::CoarsenOptions::activity), which then prefers to keep busy
// signals inside globules.

#include <vector>

#include "circuit/circuit.hpp"
#include "logicsim/netlist_lps.hpp"

namespace pls::logicsim {

/// Relative per-gate activity: events per gate divided by the mean over
/// all gates (1.0 = average).  `profile_end` bounds the pre-simulation.
std::vector<double> profile_activity(const circuit::Circuit& c,
                                     const ModelOptions& opt,
                                     warped::SimTime profile_end);

}  // namespace pls::logicsim
