#include "logicsim/equivalence.hpp"

#include <sstream>

namespace pls::logicsim {

EquivalenceReport check_equivalence(const warped::RunStats& parallel,
                                    const SeqStats& sequential) {
  EquivalenceReport rep;
  rep.parallel_committed = parallel.totals.events_committed;
  rep.sequential_processed = sequential.events_processed;
  rep.counts_equal = rep.parallel_committed == rep.sequential_processed;

  rep.states_equal =
      parallel.final_states.size() == sequential.final_states.size();
  if (rep.states_equal) {
    for (std::size_t i = 0; i < parallel.final_states.size(); ++i) {
      if (!(parallel.final_states[i] == sequential.final_states[i])) {
        rep.states_equal = false;
        rep.first_mismatch_lp = i;
        break;
      }
    }
  }
  return rep;
}

std::string EquivalenceReport::describe() const {
  std::ostringstream os;
  if (ok()) {
    os << "equivalent (" << parallel_committed << " committed events)";
    return os.str();
  }
  if (!states_equal) {
    os << "state mismatch at LP " << first_mismatch_lp << "; ";
  }
  if (!counts_equal) {
    os << "committed " << parallel_committed << " != sequential "
       << sequential_processed;
  }
  return os.str();
}

}  // namespace pls::logicsim
