#include "logicsim/equivalence.hpp"

#include <sstream>

namespace pls::logicsim {

EquivalenceReport check_equivalence(const warped::RunStats& parallel,
                                    const SeqStats& sequential) {
  EquivalenceReport rep;
  rep.parallel_committed = parallel.totals.events_committed;
  rep.sequential_processed = sequential.events_processed;
  rep.counts_equal = rep.parallel_committed == rep.sequential_processed;

  rep.states_equal =
      parallel.final_states.size() == sequential.final_states.size();
  if (rep.states_equal) {
    for (std::size_t i = 0; i < parallel.final_states.size(); ++i) {
      if (!(parallel.final_states[i] == sequential.final_states[i])) {
        rep.states_equal = false;
        rep.first_mismatch_lp = i;
        break;
      }
    }
  }
  return rep;
}

EquivalenceReport check_lane_equivalence(
    const circuit::Circuit& c,
    const std::vector<warped::LpState>& batched_finals, unsigned lane,
    unsigned lanes, const std::vector<warped::LpState>& scalar_finals) {
  EquivalenceReport rep;
  rep.counts_equal = true;  // counts intentionally differ across widths
  const std::vector<warped::LpState> projected =
      extract_lane_states(c, batched_finals, lane, lanes);
  rep.states_equal = projected.size() == scalar_finals.size();
  if (rep.states_equal) {
    for (std::size_t i = 0; i < projected.size(); ++i) {
      if (!(projected[i] == scalar_finals[i])) {
        rep.states_equal = false;
        rep.first_mismatch_lp = i;
        break;
      }
    }
  }
  return rep;
}

std::string EquivalenceReport::describe() const {
  std::ostringstream os;
  if (ok()) {
    os << "equivalent (" << parallel_committed << " committed events)";
    return os.str();
  }
  if (!states_equal) {
    os << "state mismatch at LP " << first_mismatch_lp << "; ";
  }
  if (!counts_equal) {
    os << "committed " << parallel_committed << " != sequential "
       << sequential_processed;
  }
  return os.str();
}

}  // namespace pls::logicsim
