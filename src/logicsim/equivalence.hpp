#pragma once
// Parallel ≡ sequential equivalence checking.
//
// Time Warp's correctness contract: the committed results of an optimistic
// run must be exactly those of a sequential execution of the same model.
// The integration and property tests enforce this for every partitioner and
// node count on real circuits, which exercises the entire rollback /
// cancellation / GVT machinery end to end.

#include <cstdint>
#include <string>
#include <vector>

#include "logicsim/sequential.hpp"
#include "warped/stats.hpp"

namespace pls::logicsim {

struct EquivalenceReport {
  bool states_equal = false;
  bool counts_equal = false;
  std::size_t first_mismatch_lp = 0;   ///< valid when !states_equal
  std::uint64_t parallel_committed = 0;
  std::uint64_t sequential_processed = 0;

  bool ok() const noexcept { return states_equal && counts_equal; }
  std::string describe() const;
};

EquivalenceReport check_equivalence(const warped::RunStats& parallel,
                                    const SeqStats& sequential);

}  // namespace pls::logicsim
