#pragma once
// Parallel ≡ sequential equivalence checking.
//
// Time Warp's correctness contract: the committed results of an optimistic
// run must be exactly those of a sequential execution of the same model.
// The integration and property tests enforce this for every partitioner and
// node count on real circuits, which exercises the entire rollback /
// cancellation / GVT machinery end to end.

#include <cstdint>
#include <string>
#include <vector>

#include "circuit/circuit.hpp"
#include "logicsim/lanes.hpp"
#include "logicsim/sequential.hpp"
#include "warped/stats.hpp"

namespace pls::logicsim {

struct EquivalenceReport {
  bool states_equal = false;
  bool counts_equal = false;
  std::size_t first_mismatch_lp = 0;   ///< valid when !states_equal
  std::uint64_t parallel_committed = 0;
  std::uint64_t sequential_processed = 0;

  bool ok() const noexcept { return states_equal && counts_equal; }
  std::string describe() const;
};

EquivalenceReport check_equivalence(const warped::RunStats& parallel,
                                    const SeqStats& sequential);

/// Lane-equivalence (the batched-engine contract, lanes.hpp): lane `lane`
/// of a `lanes`-wide batched run's final states, projected onto the scalar
/// layout, must equal the final states of an independent scalar run — one
/// whose seed is lane_seed(base, lane).  Event counts are *not* compared
/// (a batched run coalesces up to kMaxLanes scalar events into one);
/// counts_equal is reported true so ok() reduces to the per-lane state
/// check.
EquivalenceReport check_lane_equivalence(
    const circuit::Circuit& c,
    const std::vector<warped::LpState>& batched_finals, unsigned lane,
    unsigned lanes, const std::vector<warped::LpState>& scalar_finals);

}  // namespace pls::logicsim
