#pragma once
// Pure combinational gate evaluation over packed input bits.
//
// An LP's input values live in one 64-bit word (bit i = current value of
// fanin i), so evaluation is a handful of bit operations — this is the
// entire "VHDL process body" of the reproduction's gate-level processes.

#include <bit>
#include <cstdint>

#include "circuit/types.hpp"
#include "util/check.hpp"

namespace pls::logicsim {

/// Evaluate a combinational gate.  `inputs` holds one bit per fanin in the
/// low `arity` bits; bits above `arity` are ignored.
inline bool eval_gate(circuit::GateType type, std::uint64_t inputs,
                      unsigned arity) noexcept {
  const std::uint64_t mask =
      arity >= 64 ? ~std::uint64_t{0} : ((std::uint64_t{1} << arity) - 1);
  const std::uint64_t in = inputs & mask;
  switch (type) {
    case circuit::GateType::kBuf: return (in & 1) != 0;
    case circuit::GateType::kNot: return (in & 1) == 0;
    case circuit::GateType::kAnd: return in == mask;
    case circuit::GateType::kNand: return in != mask;
    case circuit::GateType::kOr: return in != 0;
    case circuit::GateType::kNor: return in == 0;
    case circuit::GateType::kXor: return (std::popcount(in) & 1) != 0;
    case circuit::GateType::kXnor: return (std::popcount(in) & 1) == 0;
    case circuit::GateType::kInput:
    case circuit::GateType::kDff:
      break;  // handled by their dedicated LPs
  }
  PLS_DCHECK(false);
  return false;
}

/// Word-wise (bit-parallel) gate evaluation: `inputs[p]` holds one value
/// bit per lane for fanin p, and lane j of the result is exactly
/// eval_gate(type, <bit j of each input>, arity) — 64 scalar evaluations
/// in a handful of word ops.  The reduce runs over all 64 bit positions at
/// once; the *caller* masks the result to its active lanes (a gate does
/// not know the run's lane count, and unused high lanes carry garbage from
/// the NOT/NAND/NOR/XNOR complements).
inline std::uint64_t eval_gate_word(circuit::GateType type,
                                    const std::uint64_t* inputs,
                                    unsigned arity) noexcept {
  PLS_DCHECK(arity >= 1);
  std::uint64_t r;
  switch (type) {
    case circuit::GateType::kBuf:
      return inputs[0];
    case circuit::GateType::kNot:
      return ~inputs[0];
    case circuit::GateType::kAnd:
    case circuit::GateType::kNand:
      r = inputs[0];
      for (unsigned p = 1; p < arity; ++p) r &= inputs[p];
      return type == circuit::GateType::kAnd ? r : ~r;
    case circuit::GateType::kOr:
    case circuit::GateType::kNor:
      r = inputs[0];
      for (unsigned p = 1; p < arity; ++p) r |= inputs[p];
      return type == circuit::GateType::kOr ? r : ~r;
    case circuit::GateType::kXor:
    case circuit::GateType::kXnor:
      r = inputs[0];
      for (unsigned p = 1; p < arity; ++p) r ^= inputs[p];
      return type == circuit::GateType::kXor ? r : ~r;
    case circuit::GateType::kInput:
    case circuit::GateType::kDff:
      break;  // handled by their dedicated LPs
  }
  PLS_DCHECK(false);
  return 0;
}

}  // namespace pls::logicsim
