#pragma once
// Pure combinational gate evaluation over packed input bits.
//
// An LP's input values live in one 64-bit word (bit i = current value of
// fanin i), so evaluation is a handful of bit operations — this is the
// entire "VHDL process body" of the reproduction's gate-level processes.

#include <bit>
#include <cstdint>

#include "circuit/types.hpp"
#include "util/check.hpp"

namespace pls::logicsim {

/// Evaluate a combinational gate.  `inputs` holds one bit per fanin in the
/// low `arity` bits; bits above `arity` are ignored.
inline bool eval_gate(circuit::GateType type, std::uint64_t inputs,
                      unsigned arity) noexcept {
  const std::uint64_t mask =
      arity >= 64 ? ~std::uint64_t{0} : ((std::uint64_t{1} << arity) - 1);
  const std::uint64_t in = inputs & mask;
  switch (type) {
    case circuit::GateType::kBuf: return (in & 1) != 0;
    case circuit::GateType::kNot: return (in & 1) == 0;
    case circuit::GateType::kAnd: return in == mask;
    case circuit::GateType::kNand: return in != mask;
    case circuit::GateType::kOr: return in != 0;
    case circuit::GateType::kNor: return in == 0;
    case circuit::GateType::kXor: return (std::popcount(in) & 1) != 0;
    case circuit::GateType::kXnor: return (std::popcount(in) & 1) == 0;
    case circuit::GateType::kInput:
    case circuit::GateType::kDff:
      break;  // handled by their dedicated LPs
  }
  PLS_DCHECK(false);
  return false;
}

}  // namespace pls::logicsim
