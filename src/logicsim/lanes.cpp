#include "logicsim/lanes.hpp"

#include <algorithm>

#include "util/check.hpp"
#include "util/rng.hpp"

namespace pls::logicsim {

using warped::LpState;

std::vector<StuckAtFault> sample_faults(const circuit::Circuit& c,
                                        std::size_t count,
                                        std::uint64_t seed) {
  PLS_CHECK_MSG(c.size() > 0, "cannot sample faults from an empty circuit");
  count = std::min<std::size_t>({count, kMaxLanes - 1, c.size()});
  std::vector<StuckAtFault> out;
  out.reserve(count);
  std::vector<std::uint8_t> used(c.size(), 0);
  util::SplitMix64 h(seed);
  while (out.size() < count) {
    const auto g = static_cast<circuit::GateId>(h.next() % c.size());
    if (used[g]) continue;  // distinct sites: each lane probes new logic
    used[g] = 1;
    out.push_back(StuckAtFault{g, (h.next() & 1) != 0});
  }
  return out;
}

std::vector<LpState> extract_lane_states(const circuit::Circuit& c,
                                         const std::vector<LpState>& wide,
                                         unsigned lane) {
  PLS_CHECK_MSG(wide.size() == c.size(),
                "final-state vector does not match the circuit");
  PLS_CHECK_MSG(lane < kMaxLanes, "lane out of range");
  std::vector<LpState> out(wide.size());
  for (circuit::GateId g = 0; g < c.size(); ++g) {
    const LpState& w = wide[g];
    LpState& s = out[g];
    switch (c.type(g)) {
      case circuit::GateType::kInput:
        // Scalar InputLp: b bit 0 = current stimulus value, a unused.
        s.b = (w.b >> lane) & 1;
        break;
      case circuit::GateType::kDff:
        // Scalar DffLp: a = latched D, b = Q.
        s.a = (w.a >> lane) & 1;
        s.b = (w.b >> lane) & 1;
        break;
      default: {
        // Scalar GateLp packs fanin bits into a (bit p = input p); the
        // batched gate keeps one lane word per fanin in w.w[p].
        const auto arity = c.fanins(g).size();
        PLS_CHECK_MSG(w.w.size() == arity,
                      "gate " << g << " state is not batched (lanes < 2?)");
        for (std::size_t p = 0; p < arity; ++p) {
          s.a |= ((w.w[p] >> lane) & 1) << p;
        }
        s.b = (w.b >> lane) & 1;
        break;
      }
    }
  }
  return out;
}

std::vector<bool> detected_faults(const circuit::Circuit& c,
                                  const std::vector<StuckAtFault>& faults,
                                  const std::vector<LpState>& finals) {
  PLS_CHECK_MSG(finals.size() == c.size(),
                "final-state vector does not match the circuit");
  PLS_CHECK_MSG(faults.size() < kMaxLanes,
                "at most 63 faults fit beside the fault-free lane 0");
  // OR together the divergence accumulators of every observing gate.  The
  // accumulator slot depends on the behaviour's state layout: DFFs keep
  // a = D, b = Q and w[0] = armed lanes, so their accumulator lives in
  // w[1]; input and combinational LPs keep it in a.
  std::uint64_t divergent = 0;
  for (circuit::GateId g : c.primary_outputs()) {
    if (c.type(g) == circuit::GateType::kDff) {
      divergent |= finals[g].w.size() >= 2 ? finals[g].w[1] : 0;
    } else {
      divergent |= finals[g].a;
    }
  }
  std::vector<bool> out(faults.size());
  for (std::size_t i = 0; i < faults.size(); ++i) {
    out[i] = ((divergent >> (i + 1)) & 1) != 0;
  }
  return out;
}

}  // namespace pls::logicsim
