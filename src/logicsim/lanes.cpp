#include "logicsim/lanes.hpp"

#include <algorithm>

#include "util/check.hpp"
#include "util/rng.hpp"

namespace pls::logicsim {

using warped::LpState;

std::vector<StuckAtFault> sample_faults(const circuit::Circuit& c,
                                        std::size_t count,
                                        std::uint64_t seed) {
  PLS_CHECK_MSG(c.size() > 0, "cannot sample faults from an empty circuit");
  count = std::min<std::size_t>({count, kMaxLanes - 1, c.size()});
  std::vector<StuckAtFault> out;
  out.reserve(count);
  std::vector<std::uint8_t> used(c.size(), 0);
  util::SplitMix64 h(seed);
  while (out.size() < count) {
    const auto g = static_cast<circuit::GateId>(h.next() % c.size());
    if (used[g]) continue;  // distinct sites: each lane probes new logic
    used[g] = 1;
    out.push_back(StuckAtFault{g, (h.next() & 1) != 0});
  }
  return out;
}

// The batched state layouts (netlist_lps.hpp), K = lane_words(lanes):
//   BatchGateLp  w[wd*arity + p] = fanin p, word wd;  b = out word 0,
//                w[arity*K + wd-1] = out words 1..K-1;  a = divergence
//                word 0, w[arity*K + K-1 + wd-1] = words 1..K-1 (observe).
//   BatchDffLp   a/b = D/Q word 0; w[0..K) = armed; w[K + wd-1] = D words
//                1..K-1; w[2K-1 + wd-1] = Q words 1..K-1;
//                w[3K-2 + wd] = divergence words 0..K-1 (observe).
//   BatchInputLp b = stimulus word 0; w[wd-1] = words 1..K-1; a =
//                divergence word 0, w[K-1 + wd-1] = words 1..K-1 (observe).
// K = 1 collapses every extension to the legacy single-word layout.

namespace {

inline bool state_bit(std::uint64_t word0, const mem::Words& w,
                      std::size_t ext_base, unsigned wd, unsigned bit) {
  const std::uint64_t word = wd == 0 ? word0 : w[ext_base + wd - 1];
  return ((word >> bit) & 1) != 0;
}

}  // namespace

std::vector<LpState> extract_lane_states(const circuit::Circuit& c,
                                         const std::vector<LpState>& wide,
                                         unsigned lane, unsigned lanes) {
  PLS_CHECK_MSG(wide.size() == c.size(),
                "final-state vector does not match the circuit");
  PLS_CHECK_MSG(lanes >= 1 && lanes <= kMaxLanes, "lane count out of range");
  PLS_CHECK_MSG(lane < lanes, "lane out of range");
  const unsigned K = lane_words(lanes);
  const unsigned wd = lane / 64;
  const unsigned bit = lane % 64;
  std::vector<LpState> out(wide.size());
  for (circuit::GateId g = 0; g < c.size(); ++g) {
    const LpState& w = wide[g];
    LpState& s = out[g];
    switch (c.type(g)) {
      case circuit::GateType::kInput:
        // Scalar InputLp: b bit 0 = current stimulus value, a unused.
        s.b = state_bit(w.b, w.w, 0, wd, bit) ? 1 : 0;
        break;
      case circuit::GateType::kDff:
        // Scalar DffLp: a = latched D, b = Q.
        s.a = state_bit(w.a, w.w, K, wd, bit) ? 1 : 0;
        s.b = state_bit(w.b, w.w, 2 * K - 1, wd, bit) ? 1 : 0;
        break;
      default: {
        // Scalar GateLp packs fanin bits into a (bit p = input p); the
        // batched gate keeps one lane word per (fanin, word), word-major.
        const auto arity = c.fanins(g).size();
        PLS_CHECK_MSG(w.w.size() >= arity * K,
                      "gate " << g << " state is not batched (lanes < 2?)");
        for (std::size_t p = 0; p < arity; ++p) {
          s.a |= ((w.w[wd * arity + p] >> bit) & 1) << p;
        }
        s.b = state_bit(w.b, w.w, arity * K, wd, bit) ? 1 : 0;
        break;
      }
    }
  }
  return out;
}

std::vector<bool> detected_faults(const circuit::Circuit& c,
                                  const std::vector<StuckAtFault>& faults,
                                  const std::vector<LpState>& finals,
                                  unsigned lanes) {
  PLS_CHECK_MSG(finals.size() == c.size(),
                "final-state vector does not match the circuit");
  PLS_CHECK_MSG(lanes >= 2 && lanes <= kMaxLanes, "lane count out of range");
  PLS_CHECK_MSG(faults.size() < lanes,
                "fault lanes exceed the run's lane count");
  const unsigned K = lane_words(lanes);
  // OR together the divergence accumulators of every observing gate; the
  // accumulator slot depends on the behaviour's state layout (see above).
  std::uint64_t divergent[kMaxLaneWords] = {};
  for (circuit::GateId g : c.primary_outputs()) {
    const LpState& s = finals[g];
    switch (c.type(g)) {
      case circuit::GateType::kDff:
        for (unsigned wd = 0; wd < K; ++wd) {
          divergent[wd] |= s.w.size() >= 3 * K - 2 + K ? s.w[3 * K - 2 + wd]
                                                       : 0;
        }
        break;
      case circuit::GateType::kInput:
        divergent[0] |= s.a;
        for (unsigned wd = 1; wd < K; ++wd) {
          divergent[wd] |= s.w[(K - 1) + wd - 1];
        }
        break;
      default: {
        const auto arity = c.fanins(g).size();
        divergent[0] |= s.a;
        for (unsigned wd = 1; wd < K; ++wd) {
          divergent[wd] |= s.w[arity * K + (K - 1) + wd - 1];
        }
        break;
      }
    }
  }
  std::vector<bool> out(faults.size());
  for (std::size_t i = 0; i < faults.size(); ++i) {
    const unsigned lane = static_cast<unsigned>(i) + 1;
    out[i] = ((divergent[lane / 64] >> (lane % 64)) & 1) != 0;
  }
  return out;
}

}  // namespace pls::logicsim
