#pragma once
// Batched-stimulus lane utilities: seeds, masks, per-lane state extraction
// and stuck-at fault bookkeeping for the bit-parallel engine.
//
// A batched run packs up to kMaxLanes independent stimulus scenarios into
// the bit lanes of each net's value words (see gate_eval.hpp
// eval_gate_word and the Batch* LPs in netlist_lps.hpp).  Lane counts up
// to 64 fit one `uint64_t` per signal; wider runs carry
// K = lane_words(lanes) words per signal, with lane j living in bit
// j % 64 of word j / 64.  Word 0 stays in the legacy Event/LpState slots,
// words 1..K-1 ride in the arena-pooled extensions (mem/words.hpp), so
// N <= 64 runs are bit-identical to the single-word engine.
//
// The correctness contract is the *lane-equivalence* property this module
// makes checkable:
//
//   lane j of a batched run with base seed S is bit-identical to an
//   independent scalar (lanes = 1) run with seed lane_seed(S, j),
//   and lane_seed(S, 0) == S.
//
// extract_lane_states() projects a batched run's final LP states onto the
// scalar state layout for one lane, so the existing state-vector compare
// closes the loop against a real scalar run — on either backend, under
// rollback storms and live migration alike (the kernel never interprets
// the payload, so nothing lane-specific exists to get wrong there; the
// test exists to prove that).
//
// Stuck-at fault simulation (the classic bit-parallel application): lane 0
// is the fault-free reference and lanes 1..k each carry one StuckAtFault.
// Observing gates (primary outputs) accumulate, monotonically, the lanes
// whose output ever diverged from lane 0; detected_faults() reads those
// accumulators back out of the final states.  The accumulator lives in
// kernel-snapshotted LpState, so rollbacks cannot leak phantom detections.

#include <cstdint>
#include <vector>

#include "circuit/circuit.hpp"
#include "warped/types.hpp"

namespace pls::logicsim {

inline constexpr unsigned kMaxLanes = 256;
inline constexpr unsigned kMaxLaneWords = kMaxLanes / 64;

/// Number of 64-lane value words a lane count in [1, kMaxLanes] occupies.
constexpr std::uint32_t lane_words(unsigned lanes) noexcept {
  return (lanes + 63) / 64;
}

/// Active-lane mask of word `word` for a lane count in [1, kMaxLanes]:
/// full words below the boundary, a low-bit prefix in the boundary word,
/// zero above it.
constexpr std::uint64_t lane_mask_word(unsigned lanes, unsigned word) noexcept {
  if (lanes >= (word + 1) * 64) return ~std::uint64_t{0};
  if (lanes <= word * 64) return 0;
  return (std::uint64_t{1} << (lanes - word * 64)) - 1;
}

/// Active-lane mask of word 0 (the full mask for lane counts <= 64).
constexpr std::uint64_t lane_mask(unsigned lanes) noexcept {
  return lane_mask_word(lanes, 0);
}

/// Stimulus seed lane j of a batched run draws its vectors from.  Lane 0
/// reproduces the base seed exactly, so a 1-lane batched run is the scalar
/// run; other lanes decorrelate through an odd multiplicative constant
/// (every lane keeps a distinct seed for any base).
constexpr std::uint64_t lane_seed(std::uint64_t base, unsigned lane) noexcept {
  return base ^ (std::uint64_t{lane} * 0xd1b54a32d192ed03ULL);
}

/// One injected stuck-at fault: the named gate's output signal is forced
/// to `stuck_value` on the lane carrying this fault (lane = 1 + index in
/// ModelOptions::faults; lane 0 stays fault-free).
struct StuckAtFault {
  circuit::GateId gate = 0;
  bool stuck_value = false;

  friend bool operator==(const StuckAtFault&,
                         const StuckAtFault&) noexcept = default;
};

/// Deterministically pick `count` distinct single-stuck-at faults spread
/// over the circuit's non-input gates (seeded; count is clamped to
/// kMaxLanes - 1 and to the available fault sites).
std::vector<StuckAtFault> sample_faults(const circuit::Circuit& c,
                                        std::size_t count,
                                        std::uint64_t seed);

/// Project the final LP states of a batched run onto the scalar state
/// layout for one lane: the result compares equal (operator==) to the
/// final_states of an independent scalar run of the same circuit with
/// seed lane_seed(base, lane).  `wide` must come from a model built for
/// this circuit with `lanes` stimulus lanes (lanes >= 2 for the batched
/// state layouts); fault-detection accumulators are excluded from the
/// projection (they have no scalar counterpart).
std::vector<warped::LpState> extract_lane_states(
    const circuit::Circuit& c, const std::vector<warped::LpState>& wide,
    unsigned lane, unsigned lanes);

/// Read the fault-detection verdict out of a finished fault-simulation
/// run of a `lanes`-wide model: element i is true iff faults[i] (carried
/// on lane i + 1) drove any primary output to a value different from
/// fault-free lane 0 at any committed point of the run.
std::vector<bool> detected_faults(const circuit::Circuit& c,
                                  const std::vector<StuckAtFault>& faults,
                                  const std::vector<warped::LpState>& finals,
                                  unsigned lanes);

}  // namespace pls::logicsim
