#include "logicsim/netlist_lps.hpp"

#include "logicsim/gate_eval.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace pls::logicsim {

using warped::Context;
using warped::EventBatch;
using warped::kTickPort;
using warped::LpState;
using warped::SimTime;

// ---------------------------------------------------------------------------
// GateLp
// ---------------------------------------------------------------------------

GateLp::GateLp(circuit::GateType type, std::uint32_t arity,
               std::vector<FanoutPort> fanouts, SimTime delay)
    : type_(type), arity_(arity), fanouts_(std::move(fanouts)),
      delay_(delay) {
  PLS_CHECK_MSG(arity_ >= 1 && arity_ <= 64,
                "gate arity must be in [1,64] to pack into the state word");
  PLS_CHECK(delay_ >= 1);
}

void GateLp::init(Context& ctx) {
  // Power-on evaluation at time 0: gates whose zero-input evaluation is 1
  // (NAND, NOR, NOT, XNOR) must announce it, or downstream logic would
  // assume 0 forever.
  ctx.schedule_self(0);
}

void GateLp::execute(Context& ctx, EventBatch batch) {
  LpState& s = ctx.state();
  for (const auto& ev : batch) {
    if (ev.port == kTickPort) continue;  // power-on tick: just evaluate
    PLS_DCHECK(ev.port < arity_);
    const std::uint64_t bit = std::uint64_t{1} << ev.port;
    if (ev.value & 1) s.a |= bit;
    else s.a &= ~bit;
  }
  const bool out = eval_gate(type_, s.a, arity_);
  if (out != ((s.b & 1) != 0)) {
    s.b ^= 1;
    const SimTime at = ctx.now() + delay_;
    if (at <= ctx.end_time()) {
      for (const auto& f : fanouts_) {
        ctx.send(f.target, at, f.port, out ? 1 : 0);
      }
    }
  }
}

// ---------------------------------------------------------------------------
// DffLp
// ---------------------------------------------------------------------------

DffLp::DffLp(std::vector<FanoutPort> fanouts, SimTime period, SimTime phase,
             SimTime delay)
    : fanouts_(std::move(fanouts)), period_(period), phase_(phase),
      delay_(delay) {
  PLS_CHECK(period_ >= 1);
  PLS_CHECK(phase_ >= 1);
  PLS_CHECK(delay_ >= 1);
}

void DffLp::init(Context& ctx) {
  // Clock suppression (standard gate-level optimization): instead of
  // ticking every period to the horizon — which would let every flip-flop
  // race arbitrarily far ahead of its D input and turn each cut D-path
  // into a rollback factory — a sampling tick is scheduled only for the
  // first clock edge after a D change.  The observable behaviour is
  // identical to a free-running clock: Q updates at the first edge at or
  // after the change, using the D value current at that edge.
  if (phase_ <= ctx.end_time()) ctx.schedule_self(phase_);
}

warped::SimTime DffLp::next_edge_at_or_after(SimTime t) const {
  if (t <= phase_) return phase_;
  const SimTime k = (t - phase_ + period_ - 1) / period_;
  return phase_ + k * period_;
}

void DffLp::execute(Context& ctx, EventBatch batch) {
  LpState& s = ctx.state();
  // Data first, then clock: a D arriving exactly on the edge is captured.
  bool tick = false;
  bool d_changed = false;
  for (const auto& ev : batch) {
    if (ev.port == kTickPort) {
      tick = true;
    } else {
      PLS_DCHECK(ev.port == 0);
      s.a = ev.value & 1;
      d_changed = true;
    }
  }

  if (d_changed && !tick) {
    // Arm a sampling tick at the next clock edge.  Two D changes within
    // one period both target the same edge; the duplicate tick lands in
    // one batch and samples once, so no pending-tick bookkeeping is
    // needed.
    const SimTime edge = next_edge_at_or_after(ctx.now() + 1);
    if (edge <= ctx.end_time()) ctx.schedule_self(edge);
    return;
  }
  if (!tick) return;

  const bool d = (s.a & 1) != 0;
  const bool q = (s.b & 1) != 0;
  if (d != q) {
    s.b ^= 1;
    const SimTime at = ctx.now() + delay_;
    if (at <= ctx.end_time()) {
      for (const auto& f : fanouts_) {
        ctx.send(f.target, at, f.port, d ? 1 : 0);
      }
    }
  }
}

// ---------------------------------------------------------------------------
// InputLp
// ---------------------------------------------------------------------------

InputLp::InputLp(std::vector<FanoutPort> fanouts, SimTime period,
                 SimTime delay, std::uint64_t seed, SimTime drift_at,
                 bool hot_first)
    : fanouts_(std::move(fanouts)), period_(period), delay_(delay),
      seed_(seed), drift_at_(drift_at), hot_first_(hot_first) {
  PLS_CHECK(period_ >= 1);
  PLS_CHECK(delay_ >= 1);
}

bool InputLp::vector_bit(std::uint64_t seed, warped::LpId lp,
                         std::uint64_t n) noexcept {
  util::SplitMix64 h(seed ^ (0x9e3779b97f4a7c15ULL * (lp + 1)) ^
                     (n * 0xbf58476d1ce4e5b9ULL));
  return (h.next() & 1) != 0;
}

void InputLp::init(Context& ctx) {
  ctx.schedule_self(0);  // vector 0 applies at time 0
}

void InputLp::execute(Context& ctx, EventBatch batch) {
  LpState& s = ctx.state();
  bool tick = false;
  for (const auto& ev : batch) tick |= (ev.port == kTickPort);
  if (!tick) return;

  std::uint64_t n = ctx.now() / period_;
  if (drift_at_ != 0) {
    // Cold phase: hold one frozen vector index (the boundary index), so
    // the driven cone sees a constant and goes quiet.  Pure function of
    // virtual time — identical across rollbacks and node counts.
    const bool hot = (ctx.now() < drift_at_) == hot_first_;
    if (!hot) n = hot_first_ ? drift_at_ / period_ : 0;
  }
  const bool v = vector_bit(seed_, ctx.self(), n);
  if (v != ((s.b & 1) != 0)) {
    s.b ^= 1;
    const SimTime at = ctx.now() + delay_;
    if (at <= ctx.end_time()) {
      for (const auto& f : fanouts_) {
        ctx.send(f.target, at, f.port, v ? 1 : 0);
      }
    }
  }
  const SimTime next = ctx.now() + period_;
  if (next <= ctx.end_time()) ctx.schedule_self(next);
}

// ---------------------------------------------------------------------------
// BatchGateLp
// ---------------------------------------------------------------------------

namespace {

/// Divergence of each active lane against lane 0: bit j of word wd set iff
/// that value bit differs from value bit 0 of word 0 (the global reference
/// lane).  Word 0's bit 0 is always clear (lane 0 is its own reference),
/// so observing gates accumulate only genuine fault effects.
inline std::uint64_t divergence_from_lane0(std::uint64_t word,
                                           std::uint64_t ref_word0,
                                           std::uint64_t active) noexcept {
  return (word ^ ((ref_word0 & 1) ? ~std::uint64_t{0} : 0)) & active;
}

/// Fill per-word active masks and stuck-at words from the lane count and
/// the (possibly shorter) injection vectors; shared ctor plumbing.
inline void init_lane_words(std::uint32_t lanes,
                            const std::vector<std::uint64_t>& sa_mask,
                            const std::vector<std::uint64_t>& sa_value,
                            std::uint64_t (&active)[kMaxLaneWords],
                            std::uint64_t (&sam)[kMaxLaneWords],
                            std::uint64_t (&sav)[kMaxLaneWords]) {
  PLS_CHECK(lanes >= 1 && lanes <= kMaxLanes);
  PLS_CHECK(sa_mask.size() <= lane_words(lanes));
  PLS_CHECK(sa_value.size() <= sa_mask.size());
  for (std::uint32_t wd = 0; wd < kMaxLaneWords; ++wd) {
    active[wd] = lane_mask_word(lanes, wd);
    const std::uint64_t m = wd < sa_mask.size() ? sa_mask[wd] : 0;
    const std::uint64_t v = wd < sa_value.size() ? sa_value[wd] : 0;
    sam[wd] = m & active[wd];
    sav[wd] = v & sam[wd];
  }
}

}  // namespace

BatchGateLp::BatchGateLp(circuit::GateType type, std::uint32_t arity,
                         std::vector<FanoutPort> fanouts, SimTime delay,
                         std::uint32_t lanes,
                         std::vector<std::uint64_t> sa_mask,
                         std::vector<std::uint64_t> sa_value, bool observe)
    : type_(type), arity_(arity), fanouts_(std::move(fanouts)),
      delay_(delay), words_(lane_words(lanes)), observe_(observe) {
  PLS_CHECK_MSG(arity_ >= 1 && arity_ <= 64,
                "gate arity must be in [1,64] (scalar-equivalence bound)");
  PLS_CHECK(delay_ >= 1);
  init_lane_words(lanes, sa_mask, sa_value, active_, sa_mask_, sa_value_);
}

warped::LpState BatchGateLp::initial_state() const {
  LpState s;
  // Word-major fanin words, then output words 1..K-1, then (observing
  // gates) divergence words 1..K-1 — see the header's layout comment.
  const std::uint32_t K = words_;
  s.w.assign(arity_ * K + (K - 1) + (observe_ ? K - 1 : 0), 0);
  return s;
}

void BatchGateLp::init(Context& ctx) {
  ctx.schedule_self(0);  // power-on evaluation, as in the scalar GateLp
}

void BatchGateLp::execute(Context& ctx, EventBatch batch) {
  LpState& s = ctx.state();
  const std::uint32_t K = words_;
  for (const auto& ev : batch) {
    if (ev.port == kTickPort) continue;  // power-on tick: just evaluate
    PLS_DCHECK(ev.port < arity_);
    PLS_DCHECK(ev.payload_words() == K);
    // Masked application: lanes outside the mask keep their old value, so
    // an event can never perturb a lane whose driver did not change.
    for (std::uint32_t wd = 0; wd < K; ++wd) {
      std::uint64_t& slot = s.w[wd * arity_ + ev.port];
      const std::uint64_t m = ev.mask_word(wd);
      slot = (slot & ~m) | (ev.value_word(wd) & m);
    }
  }
  std::uint64_t out[kMaxLaneWords];
  std::uint64_t diff[kMaxLaneWords];
  std::uint64_t any = 0;
  for (std::uint32_t wd = 0; wd < K; ++wd) {
    std::uint64_t o =
        eval_gate_word(type_, s.w.data() + wd * arity_, arity_) & active_[wd];
    o = (o & ~sa_mask_[wd]) | sa_value_[wd];
    const std::uint64_t cur = wd == 0 ? s.b : s.w[arity_ * K + wd - 1];
    out[wd] = o;
    diff[wd] = o ^ cur;
    any |= diff[wd];
  }
  if (any != 0) {
    s.b = out[0];
    for (std::uint32_t wd = 1; wd < K; ++wd) s.w[arity_ * K + wd - 1] = out[wd];
    const SimTime at = ctx.now() + delay_;
    if (at <= ctx.end_time()) {
      for (const auto& f : fanouts_) {
        ctx.send_wide(f.target, at, f.port, out, diff, K);
      }
    }
  }
  if (observe_) {
    s.a |= divergence_from_lane0(out[0], out[0], active_[0]);
    for (std::uint32_t wd = 1; wd < K; ++wd) {
      s.w[arity_ * K + (K - 1) + wd - 1] |=
          divergence_from_lane0(out[wd], out[0], active_[wd]);
    }
  }
}

// ---------------------------------------------------------------------------
// BatchDffLp
// ---------------------------------------------------------------------------

BatchDffLp::BatchDffLp(std::vector<FanoutPort> fanouts, SimTime period,
                       SimTime phase, SimTime delay, std::uint32_t lanes,
                       std::vector<std::uint64_t> sa_mask,
                       std::vector<std::uint64_t> sa_value, bool observe)
    : fanouts_(std::move(fanouts)), period_(period), phase_(phase),
      delay_(delay), words_(lane_words(lanes)), observe_(observe) {
  PLS_CHECK(period_ >= 1);
  PLS_CHECK(phase_ >= 1);
  PLS_CHECK(delay_ >= 1);
  init_lane_words(lanes, sa_mask, sa_value, active_, sa_mask_, sa_value_);
}

warped::LpState BatchDffLp::initial_state() const {
  LpState s;
  // Armed words, D words 1..K-1, Q words 1..K-1, then (observing DFFs)
  // divergence words 0..K-1 — see the header's layout comment.
  const std::uint32_t K = words_;
  s.w.assign(3 * K - 2 + (observe_ ? K : 0), 0);
  return s;
}

void BatchDffLp::init(Context& ctx) {
  // Clock suppression as in the scalar DffLp: a sampling tick exists only
  // at the init edge (phase) and at edges armed by a D change.  Arming is
  // tracked *per lane* (state word w[0]): a scalar DFF whose D changes
  // exactly on an edge it did not arm captures one period later, so a
  // batched lane must not be sampled by an edge some other lane armed.
  if (phase_ <= ctx.end_time()) ctx.schedule_self(phase_);
}

warped::SimTime BatchDffLp::next_edge_at_or_after(SimTime t) const {
  if (t <= phase_) return phase_;
  const SimTime k = (t - phase_ + period_ - 1) / period_;
  return phase_ + k * period_;
}

void BatchDffLp::execute(Context& ctx, EventBatch batch) {
  LpState& s = ctx.state();
  const std::uint32_t K = words_;
  // Data first, then clock: a D arriving exactly on the edge is captured
  // (by the lanes that own a tick at this edge — see below).
  bool tick = false;
  std::uint64_t changed[kMaxLaneWords] = {};
  std::uint64_t any_changed = 0;
  for (const auto& ev : batch) {
    if (ev.port == kTickPort) {
      tick = true;
    } else {
      PLS_DCHECK(ev.port == 0);
      PLS_DCHECK(ev.payload_words() == K);
      for (std::uint32_t wd = 0; wd < K; ++wd) {
        std::uint64_t& d = wd == 0 ? s.a : s.w[K + wd - 1];
        const std::uint64_t m = ev.mask_word(wd);
        d = (d & ~m) | (ev.value_word(wd) & m);
        changed[wd] |= m & active_[wd];
        any_changed |= changed[wd];
      }
    }
  }

  if (any_changed != 0 && !tick) {
    // Arm the changed lanes for the next edge.  All armed lanes always
    // pend the *same* edge: arming times since the last processed edge
    // map to one next_edge, and the tick batch at that edge re-arms
    // on-edge changes afresh.
    for (std::uint32_t wd = 0; wd < K; ++wd) s.w[wd] |= changed[wd];
    const SimTime edge = next_edge_at_or_after(ctx.now() + 1);
    if (edge <= ctx.end_time()) ctx.schedule_self(edge);
    return;
  }
  if (!tick) return;

  // Per-lane clock suppression: lane j samples at this edge iff its
  // scalar run has a tick here — the init edge (sampled by everyone) or
  // an edge lane j armed itself.  A lane whose D changed exactly on a
  // foreign-armed edge instead arms the next edge, like its scalar twin.
  std::uint64_t rearm = 0;
  std::uint64_t q[kMaxLaneWords];
  std::uint64_t diff[kMaxLaneWords];
  std::uint64_t any_diff = 0;
  for (std::uint32_t wd = 0; wd < K; ++wd) {
    const std::uint64_t sample =
        ctx.now() == phase_ ? active_[wd] : (s.w[wd] & active_[wd]);
    s.w[wd] = changed[wd] & ~sample;
    rearm |= s.w[wd];
    const std::uint64_t d = wd == 0 ? s.a : s.w[K + wd - 1];
    const std::uint64_t cur = wd == 0 ? s.b : s.w[2 * K - 1 + wd - 1];
    std::uint64_t qw = ((cur & ~sample) | (d & sample)) & active_[wd];
    qw = (qw & ~sa_mask_[wd]) | sa_value_[wd];
    q[wd] = qw;
    diff[wd] = qw ^ cur;
    any_diff |= diff[wd];
  }
  if (rearm != 0) {
    const SimTime edge = next_edge_at_or_after(ctx.now() + 1);
    if (edge <= ctx.end_time()) ctx.schedule_self(edge);
  }

  if (any_diff != 0) {
    s.b = q[0];
    for (std::uint32_t wd = 1; wd < K; ++wd) s.w[2 * K - 1 + wd - 1] = q[wd];
    const SimTime at = ctx.now() + delay_;
    if (at <= ctx.end_time()) {
      for (const auto& f : fanouts_) {
        ctx.send_wide(f.target, at, f.port, q, diff, K);
      }
    }
  }
  if (observe_) {
    for (std::uint32_t wd = 0; wd < K; ++wd) {
      s.w[3 * K - 2 + wd] |= divergence_from_lane0(q[wd], q[0], active_[wd]);
    }
  }
}

// ---------------------------------------------------------------------------
// BatchInputLp
// ---------------------------------------------------------------------------

BatchInputLp::BatchInputLp(std::vector<FanoutPort> fanouts, SimTime period,
                           SimTime delay, std::uint64_t seed,
                           std::uint32_t lanes, bool uniform_stimulus,
                           SimTime drift_at, bool hot_first,
                           std::vector<std::uint64_t> sa_mask,
                           std::vector<std::uint64_t> sa_value, bool observe)
    : fanouts_(std::move(fanouts)), period_(period), delay_(delay),
      seed_(seed), lanes_(lanes), words_(lane_words(lanes)),
      uniform_(uniform_stimulus), drift_at_(drift_at),
      hot_first_(hot_first), observe_(observe) {
  PLS_CHECK(period_ >= 1);
  PLS_CHECK(delay_ >= 1);
  init_lane_words(lanes, sa_mask, sa_value, active_, sa_mask_, sa_value_);
}

warped::LpState BatchInputLp::initial_state() const {
  LpState s;
  // Stimulus words 1..K-1, then (observing inputs) divergence words
  // 1..K-1 — see the header's layout comment.
  const std::uint32_t K = words_;
  s.w.assign((K - 1) + (observe_ ? K - 1 : 0), 0);
  return s;
}

std::uint64_t BatchInputLp::vector_word(std::uint64_t seed, warped::LpId lp,
                                        std::uint64_t n, std::uint32_t lanes,
                                        bool uniform,
                                        std::uint32_t word) noexcept {
  const std::uint64_t active = lane_mask_word(lanes, word);
  if (uniform) {
    return (InputLp::vector_bit(seed, lp, n) ? ~std::uint64_t{0} : 0) &
           active;
  }
  std::uint64_t w = 0;
  for (std::uint32_t b = 0; b < 64; ++b) {
    const std::uint32_t j = word * 64 + b;
    if (j >= lanes) break;
    w |= std::uint64_t{InputLp::vector_bit(lane_seed(seed, j), lp, n)} << b;
  }
  return w;
}

void BatchInputLp::init(Context& ctx) {
  ctx.schedule_self(0);  // vector 0 applies at time 0
}

void BatchInputLp::execute(Context& ctx, EventBatch batch) {
  LpState& s = ctx.state();
  const std::uint32_t K = words_;
  bool tick = false;
  for (const auto& ev : batch) tick |= (ev.port == kTickPort);
  if (!tick) return;

  std::uint64_t n = ctx.now() / period_;
  if (drift_at_ != 0) {
    // Same cold-phase freeze as the scalar InputLp: a pure function of
    // virtual time, so all lanes freeze and thaw together.
    const bool hot = (ctx.now() < drift_at_) == hot_first_;
    if (!hot) n = hot_first_ ? drift_at_ / period_ : 0;
  }
  std::uint64_t v[kMaxLaneWords];
  std::uint64_t diff[kMaxLaneWords];
  std::uint64_t any = 0;
  for (std::uint32_t wd = 0; wd < K; ++wd) {
    std::uint64_t vw =
        vector_word(seed_, ctx.self(), n, lanes_, uniform_, wd) & active_[wd];
    vw = (vw & ~sa_mask_[wd]) | sa_value_[wd];
    const std::uint64_t cur = wd == 0 ? s.b : s.w[wd - 1];
    v[wd] = vw;
    diff[wd] = vw ^ cur;
    any |= diff[wd];
  }
  if (any != 0) {
    s.b = v[0];
    for (std::uint32_t wd = 1; wd < K; ++wd) s.w[wd - 1] = v[wd];
    const SimTime at = ctx.now() + delay_;
    if (at <= ctx.end_time()) {
      for (const auto& f : fanouts_) {
        ctx.send_wide(f.target, at, f.port, v, diff, K);
      }
    }
  }
  if (observe_) {
    s.a |= divergence_from_lane0(v[0], v[0], active_[0]);
    for (std::uint32_t wd = 1; wd < K; ++wd) {
      s.w[(K - 1) + wd - 1] |= divergence_from_lane0(v[wd], v[0], active_[wd]);
    }
  }
  const SimTime next = ctx.now() + period_;
  if (next <= ctx.end_time()) ctx.schedule_self(next);
}

// ---------------------------------------------------------------------------
// Elaboration
// ---------------------------------------------------------------------------

SimModel build_model(const circuit::Circuit& c, const ModelOptions& opt) {
  PLS_CHECK_MSG(c.frozen(), "build_model requires a frozen circuit");
  PLS_CHECK_MSG(opt.lanes >= 1 && opt.lanes <= kMaxLanes,
                "lanes must be in [1," << kMaxLanes << "], got "
                                       << opt.lanes);
  PLS_CHECK_MSG(opt.faults.empty() || opt.lanes >= 2,
                "fault simulation needs lanes >= 2 (lane 0 is fault-free)");
  PLS_CHECK_MSG(opt.faults.size() + 1 <= opt.lanes,
                "need " << opt.faults.size() + 1 << " lanes for "
                        << opt.faults.size()
                        << " faults plus the fault-free lane 0");

  // For every gate, the input port its signal occupies at each fanout:
  // port = index of the driver within the target's fanin list.  A driver
  // feeding the same target on several pins gets one FanoutPort per pin.
  std::vector<std::vector<FanoutPort>> fanout_ports(c.size());
  for (circuit::GateId g = 0; g < c.size(); ++g) {
    const auto fins = c.fanins(g);
    for (std::uint32_t port = 0; port < fins.size(); ++port) {
      fanout_ports[fins[port]].push_back(
          FanoutPort{static_cast<warped::LpId>(g), port});
    }
  }

  // Drifting stimulus: split the primary inputs into two halves by
  // ordinal; the first half is hot before stim_drift_at, the second after.
  std::size_t num_inputs = 0;
  for (circuit::GateId g = 0; g < c.size(); ++g) {
    if (c.type(g) == circuit::GateType::kInput) ++num_inputs;
  }
  std::size_t input_ordinal = 0;

  // Stuck-at injection words: fault i forces its gate's output on lane
  // i + 1 (lane 0 stays the fault-free reference).  One mask/value word
  // per lane word, allocated lazily — fault-free gates pass empty vectors.
  const std::uint32_t K = lane_words(opt.lanes);
  std::vector<std::vector<std::uint64_t>> sa_mask(c.size()),
      sa_value(c.size());
  for (std::size_t i = 0; i < opt.faults.size(); ++i) {
    const StuckAtFault& f = opt.faults[i];
    PLS_CHECK_MSG(f.gate < c.size(),
                  "fault " << i << " names gate " << f.gate
                           << " outside the circuit");
    if (sa_mask[f.gate].empty()) {
      sa_mask[f.gate].assign(K, 0);
      sa_value[f.gate].assign(K, 0);
    }
    const std::size_t lane = i + 1;
    const std::uint64_t bit = std::uint64_t{1} << (lane % 64);
    sa_mask[f.gate][lane / 64] |= bit;
    if (f.stuck_value) sa_value[f.gate][lane / 64] |= bit;
  }
  const bool fault_mode = !opt.faults.empty();
  const bool batched = opt.lanes > 1;

  SimModel model;
  model.options = opt;
  model.lps.reserve(c.size());
  for (circuit::GateId g = 0; g < c.size(); ++g) {
    // Primary outputs observe lane divergence only in fault mode; plain
    // batched runs keep the accumulator off so per-lane state extraction
    // stays a pure projection.
    const bool observe = fault_mode && c.is_output(g);
    switch (c.type(g)) {
      case circuit::GateType::kInput: {
        const bool hot_first = input_ordinal < (num_inputs + 1) / 2;
        ++input_ordinal;
        if (batched) {
          model.lps.push_back(std::make_unique<BatchInputLp>(
              std::move(fanout_ports[g]), opt.stim_period, opt.gate_delay,
              opt.stim_seed, opt.lanes, opt.uniform_stimulus,
              opt.stim_drift_at, hot_first, sa_mask[g], sa_value[g],
              observe));
        } else {
          model.lps.push_back(std::make_unique<InputLp>(
              std::move(fanout_ports[g]), opt.stim_period, opt.gate_delay,
              opt.stim_seed, opt.stim_drift_at, hot_first));
        }
        break;
      }
      case circuit::GateType::kDff:
        if (batched) {
          model.lps.push_back(std::make_unique<BatchDffLp>(
              std::move(fanout_ports[g]), opt.clock_period, opt.clock_phase,
              opt.dff_delay, opt.lanes, sa_mask[g], sa_value[g], observe));
        } else {
          model.lps.push_back(std::make_unique<DffLp>(
              std::move(fanout_ports[g]), opt.clock_period, opt.clock_phase,
              opt.dff_delay));
        }
        break;
      default:
        if (batched) {
          model.lps.push_back(std::make_unique<BatchGateLp>(
              c.type(g), static_cast<std::uint32_t>(c.fanins(g).size()),
              std::move(fanout_ports[g]), opt.gate_delay, opt.lanes,
              sa_mask[g], sa_value[g], observe));
        } else {
          model.lps.push_back(std::make_unique<GateLp>(
              c.type(g), static_cast<std::uint32_t>(c.fanins(g).size()),
              std::move(fanout_ports[g]), opt.gate_delay));
        }
        break;
    }
  }
  return model;
}

}  // namespace pls::logicsim
