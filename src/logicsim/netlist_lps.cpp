#include "logicsim/netlist_lps.hpp"

#include "logicsim/gate_eval.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace pls::logicsim {

using warped::Context;
using warped::EventBatch;
using warped::kTickPort;
using warped::LpState;
using warped::SimTime;

// ---------------------------------------------------------------------------
// GateLp
// ---------------------------------------------------------------------------

GateLp::GateLp(circuit::GateType type, std::uint32_t arity,
               std::vector<FanoutPort> fanouts, SimTime delay)
    : type_(type), arity_(arity), fanouts_(std::move(fanouts)),
      delay_(delay) {
  PLS_CHECK_MSG(arity_ >= 1 && arity_ <= 64,
                "gate arity must be in [1,64] to pack into the state word");
  PLS_CHECK(delay_ >= 1);
}

void GateLp::init(Context& ctx) {
  // Power-on evaluation at time 0: gates whose zero-input evaluation is 1
  // (NAND, NOR, NOT, XNOR) must announce it, or downstream logic would
  // assume 0 forever.
  ctx.schedule_self(0);
}

void GateLp::execute(Context& ctx, EventBatch batch) {
  LpState& s = ctx.state();
  for (const auto& ev : batch) {
    if (ev.port == kTickPort) continue;  // power-on tick: just evaluate
    PLS_DCHECK(ev.port < arity_);
    const std::uint64_t bit = std::uint64_t{1} << ev.port;
    if (ev.value & 1) s.a |= bit;
    else s.a &= ~bit;
  }
  const bool out = eval_gate(type_, s.a, arity_);
  if (out != ((s.b & 1) != 0)) {
    s.b ^= 1;
    const SimTime at = ctx.now() + delay_;
    if (at <= ctx.end_time()) {
      for (const auto& f : fanouts_) {
        ctx.send(f.target, at, f.port, out ? 1 : 0);
      }
    }
  }
}

// ---------------------------------------------------------------------------
// DffLp
// ---------------------------------------------------------------------------

DffLp::DffLp(std::vector<FanoutPort> fanouts, SimTime period, SimTime phase,
             SimTime delay)
    : fanouts_(std::move(fanouts)), period_(period), phase_(phase),
      delay_(delay) {
  PLS_CHECK(period_ >= 1);
  PLS_CHECK(phase_ >= 1);
  PLS_CHECK(delay_ >= 1);
}

void DffLp::init(Context& ctx) {
  // Clock suppression (standard gate-level optimization): instead of
  // ticking every period to the horizon — which would let every flip-flop
  // race arbitrarily far ahead of its D input and turn each cut D-path
  // into a rollback factory — a sampling tick is scheduled only for the
  // first clock edge after a D change.  The observable behaviour is
  // identical to a free-running clock: Q updates at the first edge at or
  // after the change, using the D value current at that edge.
  if (phase_ <= ctx.end_time()) ctx.schedule_self(phase_);
}

warped::SimTime DffLp::next_edge_at_or_after(SimTime t) const {
  if (t <= phase_) return phase_;
  const SimTime k = (t - phase_ + period_ - 1) / period_;
  return phase_ + k * period_;
}

void DffLp::execute(Context& ctx, EventBatch batch) {
  LpState& s = ctx.state();
  // Data first, then clock: a D arriving exactly on the edge is captured.
  bool tick = false;
  bool d_changed = false;
  for (const auto& ev : batch) {
    if (ev.port == kTickPort) {
      tick = true;
    } else {
      PLS_DCHECK(ev.port == 0);
      s.a = ev.value & 1;
      d_changed = true;
    }
  }

  if (d_changed && !tick) {
    // Arm a sampling tick at the next clock edge.  Two D changes within
    // one period both target the same edge; the duplicate tick lands in
    // one batch and samples once, so no pending-tick bookkeeping is
    // needed.
    const SimTime edge = next_edge_at_or_after(ctx.now() + 1);
    if (edge <= ctx.end_time()) ctx.schedule_self(edge);
    return;
  }
  if (!tick) return;

  const bool d = (s.a & 1) != 0;
  const bool q = (s.b & 1) != 0;
  if (d != q) {
    s.b ^= 1;
    const SimTime at = ctx.now() + delay_;
    if (at <= ctx.end_time()) {
      for (const auto& f : fanouts_) {
        ctx.send(f.target, at, f.port, d ? 1 : 0);
      }
    }
  }
}

// ---------------------------------------------------------------------------
// InputLp
// ---------------------------------------------------------------------------

InputLp::InputLp(std::vector<FanoutPort> fanouts, SimTime period,
                 SimTime delay, std::uint64_t seed, SimTime drift_at,
                 bool hot_first)
    : fanouts_(std::move(fanouts)), period_(period), delay_(delay),
      seed_(seed), drift_at_(drift_at), hot_first_(hot_first) {
  PLS_CHECK(period_ >= 1);
  PLS_CHECK(delay_ >= 1);
}

bool InputLp::vector_bit(std::uint64_t seed, warped::LpId lp,
                         std::uint64_t n) noexcept {
  util::SplitMix64 h(seed ^ (0x9e3779b97f4a7c15ULL * (lp + 1)) ^
                     (n * 0xbf58476d1ce4e5b9ULL));
  return (h.next() & 1) != 0;
}

void InputLp::init(Context& ctx) {
  ctx.schedule_self(0);  // vector 0 applies at time 0
}

void InputLp::execute(Context& ctx, EventBatch batch) {
  LpState& s = ctx.state();
  bool tick = false;
  for (const auto& ev : batch) tick |= (ev.port == kTickPort);
  if (!tick) return;

  std::uint64_t n = ctx.now() / period_;
  if (drift_at_ != 0) {
    // Cold phase: hold one frozen vector index (the boundary index), so
    // the driven cone sees a constant and goes quiet.  Pure function of
    // virtual time — identical across rollbacks and node counts.
    const bool hot = (ctx.now() < drift_at_) == hot_first_;
    if (!hot) n = hot_first_ ? drift_at_ / period_ : 0;
  }
  const bool v = vector_bit(seed_, ctx.self(), n);
  if (v != ((s.b & 1) != 0)) {
    s.b ^= 1;
    const SimTime at = ctx.now() + delay_;
    if (at <= ctx.end_time()) {
      for (const auto& f : fanouts_) {
        ctx.send(f.target, at, f.port, v ? 1 : 0);
      }
    }
  }
  const SimTime next = ctx.now() + period_;
  if (next <= ctx.end_time()) ctx.schedule_self(next);
}

// ---------------------------------------------------------------------------
// Elaboration
// ---------------------------------------------------------------------------

SimModel build_model(const circuit::Circuit& c, const ModelOptions& opt) {
  PLS_CHECK_MSG(c.frozen(), "build_model requires a frozen circuit");

  // For every gate, the input port its signal occupies at each fanout:
  // port = index of the driver within the target's fanin list.  A driver
  // feeding the same target on several pins gets one FanoutPort per pin.
  std::vector<std::vector<FanoutPort>> fanout_ports(c.size());
  for (circuit::GateId g = 0; g < c.size(); ++g) {
    const auto fins = c.fanins(g);
    for (std::uint32_t port = 0; port < fins.size(); ++port) {
      fanout_ports[fins[port]].push_back(
          FanoutPort{static_cast<warped::LpId>(g), port});
    }
  }

  // Drifting stimulus: split the primary inputs into two halves by
  // ordinal; the first half is hot before stim_drift_at, the second after.
  std::size_t num_inputs = 0;
  for (circuit::GateId g = 0; g < c.size(); ++g) {
    if (c.type(g) == circuit::GateType::kInput) ++num_inputs;
  }
  std::size_t input_ordinal = 0;

  SimModel model;
  model.options = opt;
  model.lps.reserve(c.size());
  for (circuit::GateId g = 0; g < c.size(); ++g) {
    switch (c.type(g)) {
      case circuit::GateType::kInput: {
        const bool hot_first = input_ordinal < (num_inputs + 1) / 2;
        ++input_ordinal;
        model.lps.push_back(std::make_unique<InputLp>(
            std::move(fanout_ports[g]), opt.stim_period, opt.gate_delay,
            opt.stim_seed, opt.stim_drift_at, hot_first));
        break;
      }
      case circuit::GateType::kDff:
        model.lps.push_back(std::make_unique<DffLp>(
            std::move(fanout_ports[g]), opt.clock_period, opt.clock_phase,
            opt.dff_delay));
        break;
      default:
        model.lps.push_back(std::make_unique<GateLp>(
            c.type(g), static_cast<std::uint32_t>(c.fanins(g).size()),
            std::move(fanout_ports[g]), opt.gate_delay));
        break;
    }
  }
  return model;
}

}  // namespace pls::logicsim
