#pragma once
// Gate-level logical processes: the TYVIS role of the reproduction.
//
// Every gate of the circuit becomes exactly one Time Warp LP whose id
// equals its GateId, so a Partition maps 1:1 onto the kernel's LP→node
// map.  Three behaviours exist:
//
//   * GateLp   — combinational gates: input events update packed input
//     bits; when the evaluated output changes, a transition is sent to
//     every fanout port after the gate delay.
//   * DffLp    — D flip-flops, self-clocked with a configurable period
//     (DESIGN.md §3.4): each tick samples D and emits Q on change.
//   * InputLp  — primary inputs: self-scheduled stimulus that applies a
//     new random vector every `stim_period`.  Vector values are a
//     counter-based hash of (seed, input, vector index), which makes the
//     stimulus history-independent — a rollback replays identical values.
//
// Determinism: execute() is a pure function of (state, batch content).
// Batches apply data-port events before tick events, so a D arriving on
// the clock edge is captured — a fixed, documented race resolution.

#include <cstdint>
#include <memory>
#include <vector>

#include "circuit/circuit.hpp"
#include "logicsim/lanes.hpp"
#include "warped/lp.hpp"

namespace pls::logicsim {

struct ModelOptions {
  warped::SimTime gate_delay = 1;   ///< combinational propagation delay
  warped::SimTime dff_delay = 1;    ///< clock-to-Q delay
  warped::SimTime clock_period = 10;
  warped::SimTime clock_phase = 5;  ///< first tick (0 < phase recommended)
  warped::SimTime stim_period = 20; ///< new input vector interval
  std::uint64_t stim_seed = 7;      ///< stimulus stream seed

  /// Drifting stimulus for dynamic-repartitioning experiments: when
  /// non-zero, the first half of the primary inputs (by ordinal) drives
  /// fresh vectors only *before* this virtual time and then freezes, while
  /// the second half freezes first and comes alive *at* this time — the
  /// hot region of the circuit shifts mid-run.  The live/frozen choice is
  /// a pure function of virtual time, so the stimulus stays
  /// history-independent (rollback- and node-count-invariant).  0 = off.
  warped::SimTime stim_drift_at = 0;

  /// Batched stimulus: number of bit-parallel lanes in [1, kMaxLanes].
  /// 1 keeps the classic scalar behaviours (bit-identical to before the
  /// batched engine existed); >= 2 elaborates the Batch* behaviours, where
  /// every net carries one value bit per lane and lane j replays the
  /// scalar run with seed lane_seed(stim_seed, j) — see lanes.hpp for the
  /// contract.  Counts above 64 span lane_words(lanes) value words per
  /// signal; word 0 stays in the legacy Event/LpState slots and the tail
  /// words ride the arena-pooled extensions, so N <= 64 runs are
  /// bit-identical to the single-word engine.
  std::uint32_t lanes = 1;

  /// Fault simulation (lanes >= 2 only): fault i is injected on lane
  /// i + 1, lane 0 stays fault-free, and primary outputs accumulate the
  /// lanes that ever diverged from lane 0 (lanes.hpp detected_faults).
  std::vector<StuckAtFault> faults;

  /// Drive every lane with the *same* stimulus stream (the base seed)
  /// instead of per-lane seeds.  This is what fault simulation wants:
  /// lanes then differ only through their injected faults.
  bool uniform_stimulus = false;
};

/// One fanout connection: the driven LP and the input port (fanin index)
/// this signal occupies there.
struct FanoutPort {
  warped::LpId target;
  std::uint32_t port;
};

/// The elaborated simulation model: one behaviour per gate, index = GateId.
struct SimModel {
  std::vector<std::unique_ptr<warped::LogicalProcess>> lps;
  ModelOptions options;

  std::vector<warped::LogicalProcess*> behaviours() const {
    std::vector<warped::LogicalProcess*> out;
    out.reserve(lps.size());
    for (const auto& lp : lps) out.push_back(lp.get());
    return out;
  }
};

/// Elaborate a frozen circuit into LPs (the runtime-elaboration step of the
/// paper's framework).
SimModel build_model(const circuit::Circuit& c, const ModelOptions& opt = {});

// ---- concrete behaviours (exposed for unit tests) -------------------------

class GateLp final : public warped::LogicalProcess {
 public:
  GateLp(circuit::GateType type, std::uint32_t arity,
         std::vector<FanoutPort> fanouts, warped::SimTime delay);

  warped::LpState initial_state() const override { return {}; }
  void init(warped::Context& ctx) override;
  void execute(warped::Context& ctx, warped::EventBatch batch) override;

  /// Current output value encoded in a state (bit 0 of word b).
  static bool output_of(const warped::LpState& s) noexcept {
    return (s.b & 1) != 0;
  }

 private:
  circuit::GateType type_;
  std::uint32_t arity_;
  std::vector<FanoutPort> fanouts_;
  warped::SimTime delay_;
};

class DffLp final : public warped::LogicalProcess {
 public:
  DffLp(std::vector<FanoutPort> fanouts, warped::SimTime period,
        warped::SimTime phase, warped::SimTime delay);

  warped::LpState initial_state() const override { return {}; }
  void init(warped::Context& ctx) override;
  void execute(warped::Context& ctx, warped::EventBatch batch) override;

  static bool q_of(const warped::LpState& s) noexcept {
    return (s.b & 1) != 0;
  }

  /// First clock edge at or after t (edges at phase + n·period).
  warped::SimTime next_edge_at_or_after(warped::SimTime t) const;

 private:
  std::vector<FanoutPort> fanouts_;
  warped::SimTime period_;
  warped::SimTime phase_;
  warped::SimTime delay_;
};

class InputLp final : public warped::LogicalProcess {
 public:
  /// `drift_at` / `hot_first` implement ModelOptions::stim_drift_at: with
  /// drift_at != 0 the input applies fresh vectors only during its hot
  /// phase (before drift_at when hot_first, after it otherwise) and holds
  /// a frozen vector index during the cold phase.
  InputLp(std::vector<FanoutPort> fanouts, warped::SimTime period,
          warped::SimTime delay, std::uint64_t seed,
          warped::SimTime drift_at = 0, bool hot_first = true);

  warped::LpState initial_state() const override { return {}; }
  void init(warped::Context& ctx) override;
  void execute(warped::Context& ctx, warped::EventBatch batch) override;

  /// The stimulus bit this input applies for vector index `n` — pure
  /// counter-based hash, identical across rollbacks and node counts.
  static bool vector_bit(std::uint64_t seed, warped::LpId lp,
                         std::uint64_t n) noexcept;

  static bool output_of(const warped::LpState& s) noexcept {
    return (s.b & 1) != 0;
  }

 private:
  std::vector<FanoutPort> fanouts_;
  warped::SimTime period_;
  warped::SimTime delay_;
  std::uint64_t seed_;
  warped::SimTime drift_at_ = 0;
  bool hot_first_ = true;
};

// ---- batched (bit-parallel, up to kMaxLanes-wide) behaviours ---------------
//
// Lane-for-lane the same automata as GateLp/DffLp/InputLp, evaluated over
// whole value words: state keeps K = lane_words(lanes) lane words per
// signal, events carry K value words plus K change-mask words, and an
// event fires only when at least one lane changed.  Unchanged lanes are
// never perturbed (masked application), so lane j's committed trajectory
// is exactly the scalar run's — the lane-equivalence contract lanes.hpp
// documents and tests/batch_equivalence_property_test.cpp enforces.
// Word 0 of every signal lives in the legacy LpState slot its 64-lane
// predecessor used; words 1..K-1 extend into LpState::w (layouts below),
// so K = 1 states are byte-identical to the single-word engine's.
//
// All three support stuck-at injection at their output (sa_mask / sa_value
// lane words, one entry per value word) and, on observing gates (primary
// outputs in fault mode), a monotone divergence accumulator against
// fault-free lane 0.

class BatchGateLp final : public warped::LogicalProcess {
 public:
  /// State layout (K = lane_words(lanes)): w[wd*arity + p] = word wd of
  /// fanin p (word-major, so eval_gate_word reads one contiguous run per
  /// word); b = output word 0, w[arity*K + wd-1] = output words 1..K-1;
  /// a = divergence word 0, w[arity*K + K-1 + wd-1] = divergence words
  /// 1..K-1 (observing gates only).
  BatchGateLp(circuit::GateType type, std::uint32_t arity,
              std::vector<FanoutPort> fanouts, warped::SimTime delay,
              std::uint32_t lanes,
              std::vector<std::uint64_t> sa_mask = {},
              std::vector<std::uint64_t> sa_value = {}, bool observe = false);

  warped::LpState initial_state() const override;
  void init(warped::Context& ctx) override;
  void execute(warped::Context& ctx, warped::EventBatch batch) override;

  /// Current output lane word 0 of a state.
  static std::uint64_t output_word_of(const warped::LpState& s) noexcept {
    return s.b;
  }

 private:
  circuit::GateType type_;
  std::uint32_t arity_;
  std::vector<FanoutPort> fanouts_;
  warped::SimTime delay_;
  std::uint32_t words_;
  std::uint64_t active_[kMaxLaneWords];
  std::uint64_t sa_mask_[kMaxLaneWords];
  std::uint64_t sa_value_[kMaxLaneWords];
  bool observe_;
};

class BatchDffLp final : public warped::LogicalProcess {
 public:
  /// State layout (K = lane_words(lanes)): a = latched D word 0, b = Q
  /// word 0; w[0..K) = lanes armed for the next sampling edge (per-lane
  /// clock suppression); w[K + wd-1] = D words 1..K-1; w[2K-1 + wd-1] =
  /// Q words 1..K-1; w[3K-2 + wd] = divergence words 0..K-1 (observing
  /// DFFs only).
  BatchDffLp(std::vector<FanoutPort> fanouts, warped::SimTime period,
             warped::SimTime phase, warped::SimTime delay,
             std::uint32_t lanes,
             std::vector<std::uint64_t> sa_mask = {},
             std::vector<std::uint64_t> sa_value = {}, bool observe = false);

  warped::LpState initial_state() const override;
  void init(warped::Context& ctx) override;
  void execute(warped::Context& ctx, warped::EventBatch batch) override;

  /// First clock edge at or after t (edges at phase + n·period).
  warped::SimTime next_edge_at_or_after(warped::SimTime t) const;

 private:
  std::vector<FanoutPort> fanouts_;
  warped::SimTime period_;
  warped::SimTime phase_;
  warped::SimTime delay_;
  std::uint32_t words_;
  std::uint64_t active_[kMaxLaneWords];
  std::uint64_t sa_mask_[kMaxLaneWords];
  std::uint64_t sa_value_[kMaxLaneWords];
  bool observe_;
};

class BatchInputLp final : public warped::LogicalProcess {
 public:
  /// State layout (K = lane_words(lanes)): b = stimulus word 0,
  /// w[wd-1] = words 1..K-1; a = divergence word 0, w[K-1 + wd-1] =
  /// divergence words 1..K-1 (observing inputs only).  With
  /// `uniform_stimulus` every lane draws from the base seed (fault-sim
  /// mode); otherwise lane j draws from lane_seed(seed, j).
  BatchInputLp(std::vector<FanoutPort> fanouts, warped::SimTime period,
               warped::SimTime delay, std::uint64_t seed,
               std::uint32_t lanes, bool uniform_stimulus = false,
               warped::SimTime drift_at = 0, bool hot_first = true,
               std::vector<std::uint64_t> sa_mask = {},
               std::vector<std::uint64_t> sa_value = {}, bool observe = false);

  warped::LpState initial_state() const override;
  void init(warped::Context& ctx) override;
  void execute(warped::Context& ctx, warped::EventBatch batch) override;

  /// Packed stimulus word `word` (lanes [64·word, 64·word+64)) for vector
  /// index `n` — per-lane counter hashes, identical across rollbacks and
  /// node counts.
  static std::uint64_t vector_word(std::uint64_t seed, warped::LpId lp,
                                   std::uint64_t n, std::uint32_t lanes,
                                   bool uniform,
                                   std::uint32_t word = 0) noexcept;

 private:
  std::vector<FanoutPort> fanouts_;
  warped::SimTime period_;
  warped::SimTime delay_;
  std::uint64_t seed_;
  std::uint32_t lanes_;
  std::uint32_t words_;
  std::uint64_t active_[kMaxLaneWords];
  bool uniform_;
  warped::SimTime drift_at_ = 0;
  bool hot_first_ = true;
  std::uint64_t sa_mask_[kMaxLaneWords];
  std::uint64_t sa_value_[kMaxLaneWords];
  bool observe_;
};

}  // namespace pls::logicsim
