#include "logicsim/sequential.hpp"

#include <algorithm>
#include <bit>
#include <queue>

#include "util/check.hpp"
#include "util/timer.hpp"

namespace pls::logicsim {
namespace {

using warped::Event;
using warped::kEndOfTime;
using warped::LpId;
using warped::LpState;
using warped::SimTime;

/// Per-LP event list: sorted vector with a processed-prefix cursor and
/// amortized compaction (no fossil collection here — everything commits
/// immediately).
struct SeqLp {
  std::vector<Event> queue;
  std::size_t head = 0;
  std::uint64_t next_id = 1;

  bool has_pending() const noexcept { return head < queue.size(); }
  SimTime next_time() const noexcept {
    return has_pending() ? queue[head].recv_time : kEndOfTime;
  }
  void insert(const Event& ev) {
    auto pos = std::lower_bound(queue.begin() + static_cast<std::ptrdiff_t>(head),
                                queue.end(), ev);
    queue.insert(pos, ev);
  }
  void compact() {
    if (head > 4096 && head * 2 > queue.size()) {
      queue.erase(queue.begin(), queue.begin() + static_cast<std::ptrdiff_t>(head));
      head = 0;
    }
  }
};

struct SchedEntry {
  SimTime time;
  LpId lp;
  friend bool operator>(const SchedEntry& a, const SchedEntry& b) noexcept {
    if (a.time != b.time) return a.time > b.time;
    return a.lp > b.lp;
  }
};

class SeqContext final : public warped::Context {
 public:
  SeqContext(SimTime end, std::vector<SeqLp>* lps,
             std::vector<LpState>* states,
             std::priority_queue<SchedEntry, std::vector<SchedEntry>,
                                 std::greater<>>* sched,
             std::vector<std::uint64_t>* sends)
      : end_(end), lps_(lps), states_(states), sched_(sched),
        sends_(sends) {}

  void set_current(SimTime now, LpId self, bool init_mode) {
    now_ = now;
    self_ = self;
    init_mode_ = init_mode;
  }

  SimTime now() const override { return now_; }
  SimTime end_time() const override { return end_; }
  LpId self() const override { return self_; }
  LpState& state() override { return (*states_)[self_]; }

  void send(LpId target, SimTime recv_time, std::uint32_t port,
            std::uint64_t value, std::uint64_t mask) override {
    PLS_CHECK_MSG(init_mode_ ? recv_time >= now_ : recv_time > now_,
                  "sequential send not after now");
    Event ev;
    ev.recv_time = recv_time;
    ev.send_time = now_;
    ev.target = target;
    ev.sender = self_;
    ev.port = port;
    ev.value = value;
    ev.mask = mask;
    ev.id = (*lps_)[self_].next_id++;
    (*lps_)[target].insert(ev);
    sched_->push(SchedEntry{recv_time, target});
    // Self-sends are scheduling ticks (DFF clocks, stimulus timers), not
    // net traffic — counting them would mark every clocked LP "hot"
    // regardless of whether its output ever toggles.  Batched events weigh
    // popcount(mask) lane transitions, matching the Time Warp kernel's
    // committed-send accounting (scalar mask = 1 keeps the old count).
    if (target != self_) (*sends_)[self_] += std::popcount(mask);
  }

  void send_wide(LpId target, SimTime recv_time, std::uint32_t port,
                 const std::uint64_t* values, const std::uint64_t* masks,
                 std::uint32_t k) override {
    if (k == 1) {
      send(target, recv_time, port, values[0], masks[0]);
      return;
    }
    PLS_CHECK_MSG(init_mode_ ? recv_time >= now_ : recv_time > now_,
                  "sequential send not after now");
    Event ev;
    ev.recv_time = recv_time;
    ev.send_time = now_;
    ev.target = target;
    ev.sender = self_;
    ev.port = port;
    ev.widen(k);
    for (std::uint32_t w = 0; w < k; ++w) {
      ev.set_value_word(w, values[w]);
      ev.set_mask_word(w, masks[w]);
    }
    ev.id = (*lps_)[self_].next_id++;
    (*lps_)[target].insert(ev);
    sched_->push(SchedEntry{recv_time, target});
    if (target != self_) {
      for (std::uint32_t w = 0; w < k; ++w) {
        (*sends_)[self_] += std::popcount(masks[w]);
      }
    }
  }

 private:
  SimTime now_ = 0;
  SimTime end_;
  LpId self_ = 0;
  bool init_mode_ = false;
  std::vector<SeqLp>* lps_;
  std::vector<LpState>* states_;
  std::priority_queue<SchedEntry, std::vector<SchedEntry>, std::greater<>>*
      sched_;
  std::vector<std::uint64_t>* sends_;
};

}  // namespace

SeqStats simulate_sequential(const std::vector<warped::LogicalProcess*>& lps,
                             warped::SimTime end_time,
                             std::uint64_t event_cost_ns) {
  PLS_CHECK(!lps.empty());
  util::WallTimer timer;

  std::vector<SeqLp> queues(lps.size());
  std::vector<LpState> states(lps.size());
  std::priority_queue<SchedEntry, std::vector<SchedEntry>, std::greater<>>
      sched;

  SeqStats out;
  out.per_lp_events.assign(lps.size(), 0);
  out.per_lp_lane_work.assign(lps.size(), 0);
  out.per_lp_sends.assign(lps.size(), 0);

  SeqContext ctx(end_time, &queues, &states, &sched, &out.per_lp_sends);
  for (LpId i = 0; i < lps.size(); ++i) {
    states[i] = lps[i]->initial_state();
  }
  for (LpId i = 0; i < lps.size(); ++i) {
    ctx.set_current(0, i, /*init_mode=*/true);
    lps[i]->init(ctx);
  }

  std::vector<Event> batch;
  while (!sched.empty()) {
    const SchedEntry top = sched.top();
    sched.pop();
    SeqLp& q = queues[top.lp];
    if (q.next_time() != top.time) continue;  // stale entry

    const SimTime t = top.time;
    batch.clear();
    while (q.has_pending() && q.queue[q.head].recv_time == t) {
      out.per_lp_lane_work[top.lp] += q.queue[q.head].mask_popcount();
      batch.push_back(q.queue[q.head]);
      ++q.head;
    }
    ctx.set_current(t, top.lp, /*init_mode=*/false);
    lps[top.lp]->execute(ctx, batch);
    if (event_cost_ns > 0) util::busy_spin_ns(event_cost_ns);

    out.events_processed += batch.size();
    out.per_lp_events[top.lp] += batch.size();
    q.compact();
    if (q.has_pending()) sched.push(SchedEntry{q.next_time(), top.lp});
  }

  out.wall_seconds = timer.elapsed_seconds();
  out.final_states = std::move(states);
  return out;
}

}  // namespace pls::logicsim
