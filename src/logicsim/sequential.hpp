#pragma once
// Sequential reference simulator.
//
// The paper's "Seq Time" column comes from a plain sequential simulation of
// the same model: one central event list, no state saving, no rollbacks, no
// communication.  This engine executes the *same* LogicalProcess behaviours
// as the Time Warp kernel with identical batch semantics, so its final
// states and event counts are the ground truth the optimistic runs are
// checked against (logicsim/equivalence.hpp).

#include <cstdint>
#include <vector>

#include "warped/lp.hpp"
#include "warped/types.hpp"

namespace pls::logicsim {

struct SeqStats {
  std::uint64_t events_processed = 0;  ///< every event is committed
  double wall_seconds = 0.0;
  std::vector<warped::LpState> final_states;
  std::vector<std::uint64_t> per_lp_events;  ///< events received
  /// Lane transitions received per LP: popcount over the change masks of
  /// every event executed there (ticks weigh their scalar mask = 1).
  /// This is the lane-aware *work* profile source — a batched event that
  /// toggles 40 lanes is 40 lane-evaluations of downstream work, not one.
  /// Equals per_lp_events on scalar (lanes = 1) runs, where every mask
  /// has exactly one bit.
  std::vector<std::uint64_t> per_lp_lane_work;
  /// Non-self ctx.send() lane transitions per LP (≈ output transitions ×
  /// fanout degree) — the *traffic* profile source: a gate that evaluates
  /// often but rarely toggles receives many events yet sends few, and
  /// only sends cross node boundaries.  Self-sends (clock/stimulus
  /// ticks) are excluded; they never leave the LP.
  std::vector<std::uint64_t> per_lp_sends;
};

/// Run the model to `end_time`.  `event_cost_ns` charges the same per-batch
/// CPU cost the parallel kernel charges, so sequential-vs-parallel wall
/// times are an apples-to-apples speedup comparison.
SeqStats simulate_sequential(const std::vector<warped::LogicalProcess*>& lps,
                             warped::SimTime end_time,
                             std::uint64_t event_cost_ns = 0);

}  // namespace pls::logicsim
