#include "mem/pool.hpp"

#include <new>

#include "util/check.hpp"

namespace pls::mem {
namespace {

thread_local Pool* tls_pool = nullptr;
thread_local ReclaimScope* tls_reclaim = nullptr;

constexpr std::size_t kLine = 64;

/// Slot stride for a class: header + capacity, rounded up to cache lines,
/// so every slot (and therefore every header) starts on a line boundary.
constexpr std::size_t slot_bytes(std::uint32_t cls) noexcept {
  const std::size_t raw =
      sizeof(BlockHeader) + std::size_t{Pool::kClassWords[cls]} * 8;
  return (raw + kLine - 1) / kLine * kLine;
}

/// Free-list link: while a block is free its first payload word holds the
/// next header pointer.
BlockHeader*& link_of(BlockHeader* h) noexcept {
  return *reinterpret_cast<BlockHeader**>(payload_of(h));
}

BlockHeader* heap_block(std::uint32_t n) {
  auto* h = static_cast<BlockHeader*>(
      ::operator new(sizeof(BlockHeader) + std::size_t{n} * 8));
  h->owner = nullptr;
  h->cls = Pool::kHeapClass;
  h->words = n;
  return h;
}

}  // namespace

Pool::Pool(PoolConfig cfg) : cfg_(cfg) {
  PLS_CHECK_MSG(cfg_.slab_bytes >= 2 * slot_bytes(kNumClasses - 1),
                "slab too small for the largest size class");
}

Pool::~Pool() {
  for (void* s : slabs_) ::operator delete(s, std::align_val_t{kLine});
}

BlockHeader* Pool::carve(std::uint32_t cls) {
  const std::size_t stride = slot_bytes(cls);
  if (static_cast<std::size_t>(bump_end_ - bump_) < stride) {
    if (cfg_.max_slabs != 0 && slabs_.size() >= cfg_.max_slabs) {
      return nullptr;  // budget exhausted: caller degrades to the heap
    }
    void* slab = ::operator new(cfg_.slab_bytes, std::align_val_t{kLine});
    slabs_.push_back(slab);
    ++stats_.slabs;
    stats_.slab_bytes += cfg_.slab_bytes;
    bump_ = static_cast<std::byte*>(slab);
    bump_end_ = bump_ + cfg_.slab_bytes;
  }
  auto* h = reinterpret_cast<BlockHeader*>(bump_);
  bump_ += stride;
  h->owner = this;
  h->cls = cls;
  h->words = kClassWords[cls];
  ++stats_.carved;
  return h;
}

BlockHeader* Pool::alloc(std::uint32_t n) {
  PLS_CHECK(n > 0);
  const std::uint32_t cls = class_for(n);
  if (cls == kHeapClass) {
    ++stats_.heap_fallbacks;
    return heap_block(n);
  }
  if (free_[cls] == nullptr &&
      remote_.load(std::memory_order_relaxed) != nullptr) {
    drain_remote();
  }
  if (BlockHeader* h = free_[cls]) {
    free_[cls] = link_of(h);
    ++stats_.recycled;
    return h;
  }
  if (BlockHeader* h = carve(cls)) return h;
  ++stats_.heap_fallbacks;
  return heap_block(n);
}

void Pool::free_local(BlockHeader* h) noexcept {
  link_of(h) = free_[h->cls];
  free_[h->cls] = h;
  ++stats_.local_frees;
}

void Pool::free_local_chain(BlockHeader* head) noexcept {
  while (head != nullptr) {
    BlockHeader* next = link_of(head);
    free_local(head);
    head = next;
  }
}

void Pool::free_remote(BlockHeader* h) noexcept {
  free_remote_chain(h, h, 1);
}

void Pool::free_remote_chain(BlockHeader* head, BlockHeader* tail,
                             std::uint32_t count) noexcept {
  BlockHeader* top = remote_.load(std::memory_order_relaxed);
  do {
    link_of(tail) = top;
  } while (!remote_.compare_exchange_weak(top, head,
                                          std::memory_order_release,
                                          std::memory_order_relaxed));
  remote_blocks_.fetch_add(count, std::memory_order_relaxed);
  remote_splices_.fetch_add(1, std::memory_order_relaxed);
}

void Pool::drain_remote() noexcept {
  BlockHeader* h = remote_.exchange(nullptr, std::memory_order_acquire);
  while (h != nullptr) {
    BlockHeader* next = link_of(h);
    link_of(h) = free_[h->cls];
    free_[h->cls] = h;
    h = next;
  }
}

PoolStats Pool::snapshot() const noexcept {
  PoolStats s = stats_;
  s.remote_blocks = remote_blocks_.load(std::memory_order_relaxed);
  s.remote_splices = remote_splices_.load(std::memory_order_relaxed);
  return s;
}

Pool* current_pool() noexcept { return tls_pool; }

PoolScope::PoolScope(Pool* p) noexcept : prev_(tls_pool) { tls_pool = p; }
PoolScope::~PoolScope() { tls_pool = prev_; }

std::uint64_t* alloc_words(std::uint32_t n) {
  Pool* p = tls_pool;
  BlockHeader* h = p != nullptr ? p->alloc(n) : heap_block(n);
  return payload_of(h);
}

void free_words(std::uint64_t* payload) noexcept {
  BlockHeader* h = header_of(payload);
  if (h->owner == nullptr) {
    ::operator delete(h);
    return;
  }
  if (ReclaimScope* rs = tls_reclaim) {
    rs->add(h);
    return;
  }
  if (h->owner == tls_pool) {
    h->owner->free_local(h);
  } else {
    h->owner->free_remote(h);
  }
}

ReclaimScope::ReclaimScope() noexcept : prev_(tls_reclaim) {
  tls_reclaim = this;
}

ReclaimScope::~ReclaimScope() {
  tls_reclaim = prev_;
  for (int i = 0; i < n_; ++i) flush(chains_[i]);
}

ReclaimScope* ReclaimScope::active() noexcept { return tls_reclaim; }

void ReclaimScope::add(BlockHeader* h) noexcept {
  for (int i = 0; i < n_; ++i) {
    if (chains_[i].owner == h->owner) {
      link_of(h) = chains_[i].head;
      chains_[i].head = h;
      ++chains_[i].count;
      return;
    }
  }
  if (n_ < kMaxOwners) {
    OwnerChain& c = chains_[n_++];
    c.owner = h->owner;
    c.head = c.tail = h;
    link_of(h) = nullptr;
    c.count = 1;
    return;
  }
  // More distinct owners than slots (never expected in practice): route
  // the straggler directly instead of growing.
  if (h->owner == tls_pool) {
    h->owner->free_local(h);
  } else {
    h->owner->free_remote(h);
  }
}

void ReclaimScope::flush(OwnerChain& c) noexcept {
  if (c.head == nullptr) return;
  if (c.owner == tls_pool) {
    c.owner->free_local_chain(c.head);
  } else {
    c.owner->free_remote_chain(c.head, c.tail, c.count);
  }
}

}  // namespace pls::mem
