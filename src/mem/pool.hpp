#pragma once
// Cache-line-aligned slab/arena pools for the Time Warp hot path.
//
// Motivation (ROADMAP "hot-path memory overhaul", mxtasking idiom): at
// millions of events per second the kernel's per-event and per-snapshot
// heap traffic is the ceiling.  Every wide payload the kernel handles —
// multi-word event lanes, wide LP state words, their snapshot copies —
// is a small block of `uint64_t`s with a short, node-local lifetime.
// This module gives each node thread its own arena of such blocks:
//
//   * slabs are 64-byte aligned and carved into fixed size classes whose
//     slots start on cache-line boundaries (the 16-byte block header and
//     the first six payload words share the slot's first line);
//   * freed blocks go onto per-class free lists and are recycled without
//     touching the global allocator;
//   * blocks freed by *another* thread (an event shipped across nodes and
//     fossil-collected at the receiver) are pushed onto the owning pool's
//     lock-free remote stack — a Treiber stack the owner splices back into
//     its local lists in O(1) per drain;
//   * whole runs of blocks (a fossil-collection sweep, a rollback's
//     discarded snapshots) are reclaimed through a ReclaimScope that links
//     them into per-owner chains and releases each chain with a single
//     splice — one CAS per remote owner per run, not one per block.
//
// Ownership invariants (see src/mem/README.md for the full contract):
//   1. A block remembers its owning pool in its header; `free_block` may
//      be called from any thread and routes home.
//   2. A pool must outlive every block it carved.  The kernel guarantees
//      this by declaring its pools before the per-LP runtimes.
//   3. Allocation with no current pool (main thread, tests, the
//      sequential reference simulator unless scoped) falls back to the
//      global heap; such blocks carry a null owner and are deleted
//      immediately on free.  Correctness never depends on a pool being
//      installed — only speed does.

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace pls::mem {

class Pool;

/// Header preceding every pooled (or heap-fallback) payload.  While a
/// block sits on a free list its first payload word doubles as the link,
/// so the header stays 16 bytes and a 64-byte slot still carries 6 words.
struct alignas(16) BlockHeader {
  Pool* owner = nullptr;     ///< null = heap fallback (operator new)
  std::uint32_t cls = 0;     ///< size-class index (kHeapClass if heap)
  std::uint32_t words = 0;   ///< payload capacity in words
};
static_assert(sizeof(BlockHeader) == 16);

inline std::uint64_t* payload_of(BlockHeader* h) noexcept {
  return reinterpret_cast<std::uint64_t*>(h + 1);
}
inline BlockHeader* header_of(std::uint64_t* payload) noexcept {
  return reinterpret_cast<BlockHeader*>(payload) - 1;
}

struct PoolConfig {
  std::size_t slab_bytes = 64 * 1024;  ///< per-slab carve size
  /// Slab budget: 0 = unlimited.  When the budget is exhausted the pool
  /// degrades to heap-fallback blocks instead of failing — exhaustion is
  /// a performance event, never a correctness event.
  std::size_t max_slabs = 0;
};

/// Counters for tests and the kernel's per-node memory stats.  The two
/// remote-side counters are written by foreign threads and kept in
/// atomics; snapshot() flattens everything for reporting.
struct PoolStats {
  std::uint64_t slabs = 0;           ///< slabs allocated
  std::uint64_t slab_bytes = 0;      ///< bytes in those slabs
  std::uint64_t carved = 0;          ///< blocks carved fresh from a slab
  std::uint64_t recycled = 0;        ///< allocs served from a free list
  std::uint64_t local_frees = 0;     ///< frees routed straight to a list
  std::uint64_t heap_fallbacks = 0;  ///< oversize or budget-exhausted
  std::uint64_t remote_blocks = 0;   ///< foreign frees drained back home
  std::uint64_t remote_splices = 0;  ///< CAS pushes (a whole chain = 1)
};

/// One node thread's arena.  alloc/local free/drain are owner-thread
/// only; the remote free stack may be pushed from any thread.
class Pool {
 public:
  /// Size-class payload capacities in words; slot strides are the next
  /// cache-line multiples (64 B .. 1 KiB).  Requests beyond the largest
  /// class fall back to the heap.
  static constexpr std::uint32_t kClassWords[] = {6, 14, 30, 62, 126};
  static constexpr int kNumClasses = 5;
  static constexpr std::uint32_t kHeapClass = ~std::uint32_t{0};
  static constexpr std::uint32_t kMaxPooledWords = 126;

  explicit Pool(PoolConfig cfg = {});
  ~Pool();
  Pool(const Pool&) = delete;
  Pool& operator=(const Pool&) = delete;

  /// Allocate a block of >= n payload words (owner thread only).
  BlockHeader* alloc(std::uint32_t n);

  /// Owner-thread free: push onto the class free list.
  void free_local(BlockHeader* h) noexcept;

  /// Foreign-thread free: push onto the lock-free remote stack (single
  /// block chain).  Safe from any thread.
  void free_remote(BlockHeader* h) noexcept;

  /// Foreign-thread bulk free: splice a pre-linked chain (payload word 0
  /// = next header) in one CAS, regardless of length.
  void free_remote_chain(BlockHeader* head, BlockHeader* tail,
                         std::uint32_t count) noexcept;

  /// Owner-thread bulk free of a pre-linked chain.
  void free_local_chain(BlockHeader* head) noexcept;

  /// Splice the remote stack into the local free lists (owner thread).
  /// Called automatically when a class list runs dry.
  void drain_remote() noexcept;

  PoolStats snapshot() const noexcept;

  /// Size class serving n words, or kHeapClass if none.
  static std::uint32_t class_for(std::uint32_t n) noexcept {
    for (int c = 0; c < kNumClasses; ++c) {
      if (n <= kClassWords[c]) return static_cast<std::uint32_t>(c);
    }
    return kHeapClass;
  }

 private:
  BlockHeader* carve(std::uint32_t cls);

  PoolConfig cfg_;
  BlockHeader* free_[kNumClasses] = {};
  std::atomic<BlockHeader*> remote_{nullptr};
  std::byte* bump_ = nullptr;
  std::byte* bump_end_ = nullptr;
  std::vector<void*> slabs_;
  PoolStats stats_;
  std::atomic<std::uint64_t> remote_blocks_{0};
  std::atomic<std::uint64_t> remote_splices_{0};
};

/// The calling thread's current pool (null if none installed).
Pool* current_pool() noexcept;

/// RAII install of a pool as the calling thread's allocation target.
/// Nests; restores the previous pool on destruction.
class PoolScope {
 public:
  explicit PoolScope(Pool* p) noexcept;
  ~PoolScope();
  PoolScope(const PoolScope&) = delete;
  PoolScope& operator=(const PoolScope&) = delete;

 private:
  Pool* prev_;
};

/// Allocate n (> 0) payload words from the current pool, or the heap when
/// none is installed / n exceeds the largest class.
std::uint64_t* alloc_words(std::uint32_t n);

/// Free a payload from any thread: local push, remote push, chain into an
/// active ReclaimScope, or plain delete for heap-fallback blocks.
void free_words(std::uint64_t* payload) noexcept;

/// RAII batcher for run reclamation (fossil sweeps, rollback discards):
/// while a scope is active on this thread, every pooled free_words chains
/// the block per owning pool; destruction releases each chain with one
/// splice — O(1) synchronization per owner per run.  Heap-fallback blocks
/// are deleted immediately (they have no list to chain into).  Nests.
class ReclaimScope {
 public:
  ReclaimScope() noexcept;
  ~ReclaimScope();
  ReclaimScope(const ReclaimScope&) = delete;
  ReclaimScope& operator=(const ReclaimScope&) = delete;

  /// Chain a pooled block (internal use by free_words).
  void add(BlockHeader* h) noexcept;

  static ReclaimScope* active() noexcept;

 private:
  struct OwnerChain {
    Pool* owner = nullptr;
    BlockHeader* head = nullptr;
    BlockHeader* tail = nullptr;
    std::uint32_t count = 0;
  };
  void flush(OwnerChain& c) noexcept;

  static constexpr int kMaxOwners = 8;  ///< > any realistic node count hit
  OwnerChain chains_[kMaxOwners];
  int n_ = 0;
  ReclaimScope* prev_;
};

}  // namespace pls::mem
