#pragma once
// mem::Words — a value-semantic buffer of uint64 lane words backed by the
// thread's arena pool (pool.hpp).
//
// This is the width-parameterized storage the whole event/state path
// flows through: an LP state's wide words, an event's multi-word payload
// extension, and every snapshot copy of either.  Two properties matter:
//
//   * 16 bytes, one word inline: size <= 1 never allocates, so scalar
//     LPs (empty state extension) and 64-lane events (no extension) have
//     zero allocation traffic — copies are two-word memcpys.
//   * larger sizes draw a pooled block from the current thread's arena
//     (heap fallback when none is installed) and release it through
//     free_words, which honours an active ReclaimScope — so a fossil
//     sweep reclaims a whole run of payloads with one splice per owner.
//
// Not thread-safe; a Words value may migrate between threads (events do)
// and its block then frees remotely through the owner pool's lock-free
// stack.  Capacity is the size-class capacity, but size is exact and
// equality compares exact sizes — Words(3) != Words(4) even though both
// occupy one 6-word block.

#include <cassert>
#include <cstdint>
#include <cstring>

#include "mem/pool.hpp"

namespace pls::mem {

class Words {
 public:
  Words() noexcept = default;
  explicit Words(std::uint32_t n, std::uint64_t fill = 0) { assign(n, fill); }

  Words(const Words& o) { copy_from(o); }
  Words(Words&& o) noexcept : size_(o.size_), inl_(o.inl_) {
    o.size_ = 0;
    o.inl_ = 0;
  }
  Words& operator=(const Words& o) {
    if (this == &o) return *this;
    // Equal sizes share a size class: overwrite in place.  This keeps
    // rollback's state restores allocation-free.
    if (size_ == o.size_) {
      std::memcpy(data(), o.data(), std::size_t{size_} * 8);
      return *this;
    }
    release();
    copy_from(o);
    return *this;
  }
  Words& operator=(Words&& o) noexcept {
    if (this == &o) return *this;
    release();
    size_ = o.size_;
    inl_ = o.inl_;
    o.size_ = 0;
    o.inl_ = 0;
    return *this;
  }
  ~Words() { release(); }

  std::uint32_t size() const noexcept { return size_; }
  bool empty() const noexcept { return size_ == 0; }

  std::uint64_t* data() noexcept { return size_ <= 1 ? &inl_ : ext_; }
  const std::uint64_t* data() const noexcept {
    return size_ <= 1 ? &inl_ : ext_;
  }

  std::uint64_t& operator[](std::size_t i) noexcept { return data()[i]; }
  std::uint64_t operator[](std::size_t i) const noexcept { return data()[i]; }

  /// Bounds-asserted access (vector::at shape, minus the exception).
  std::uint64_t& at(std::size_t i) noexcept {
    assert(i < size_);
    return data()[i];
  }
  std::uint64_t at(std::size_t i) const noexcept {
    assert(i < size_);
    return data()[i];
  }

  std::uint64_t* begin() noexcept { return data(); }
  std::uint64_t* end() noexcept { return data() + size_; }
  const std::uint64_t* begin() const noexcept { return data(); }
  const std::uint64_t* end() const noexcept { return data() + size_; }

  /// vector::assign shape: exact-size fill; reuses the block when the
  /// size already matches.
  void assign(std::uint32_t n, std::uint64_t fill = 0) {
    if (size_ != n) {
      release();
      size_ = n;
      if (n > 1) ext_ = alloc_words(n);
    }
    // Branch on the storage kind directly (not through data()) so the
    // n >= 2 fill never names the one-word inline member — GCC's
    // -Warray-bounds otherwise flags the dead inline branch.
    if (n <= 1) {
      inl_ = fill;
    } else {
      for (std::uint32_t i = 0; i < n; ++i) ext_[i] = fill;
    }
  }

  /// Exact resize preserving the common prefix; growth zero-fills.
  void resize(std::uint32_t n) {
    if (n == size_) return;
    Words next(n, 0);
    const std::uint32_t keep = n < size_ ? n : size_;
    std::memcpy(next.data(), data(), std::size_t{keep} * 8);
    *this = static_cast<Words&&>(next);
  }

  friend bool operator==(const Words& a, const Words& b) noexcept {
    if (a.size_ != b.size_) return false;
    return a.size_ == 0 ||
           std::memcmp(a.data(), b.data(), std::size_t{a.size_} * 8) == 0;
  }

 private:
  void copy_from(const Words& o) {
    size_ = o.size_;
    if (size_ > 1) {
      ext_ = alloc_words(size_);
      std::memcpy(ext_, o.ext_, std::size_t{size_} * 8);
    } else {
      inl_ = o.inl_;
    }
  }
  void release() noexcept {
    if (size_ > 1) free_words(ext_);
  }

  std::uint32_t size_ = 0;
  union {
    std::uint64_t inl_ = 0;
    std::uint64_t* ext_;
  };
};
static_assert(sizeof(Words) == 16);

}  // namespace pls::mem
