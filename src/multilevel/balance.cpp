#include "multilevel/balance.hpp"

#include <cmath>

#include "util/check.hpp"

namespace pls::multilevel {

std::uint64_t balance_limit(std::uint64_t total_weight, std::uint32_t k,
                            double tol) {
  PLS_CHECK(k >= 1);
  return static_cast<std::uint64_t>(
      std::ceil(static_cast<double>(total_weight) / static_cast<double>(k) *
                (1.0 + tol)));
}

}  // namespace pls::multilevel
