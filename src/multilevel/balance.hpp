#pragma once
// The one balance constraint both multilevel pipelines enforce.
//
// Every phase that moves or places weight — graph initial partitioning,
// all three graph refiners, hypergraph FM — used to spell the limit
// ceil(W/k · (1+tol)) inline; five copies of the same float expression is
// five chances for them to drift apart (and they are compared head-to-head
// at "equal imbalance tolerance" in every bench).  This is now the single
// definition; partition::imbalance / hypergraph::imbalance measure against
// the same ideal via multilevel/metrics.hpp.

#include <cstdint>

namespace pls::multilevel {

/// Largest load a part may reach: ceil(total/k · (1 + tol)).  The float
/// expression is evaluated as (total/k) · (1+tol) — keep it that way; the
/// refiners' feasibility checks are bit-sensitive to the rounding.
std::uint64_t balance_limit(std::uint64_t total_weight, std::uint32_t k,
                            double tol);

}  // namespace pls::multilevel
