#include "multilevel/metrics.hpp"

#include <algorithm>
#include <numeric>

#include "partition/partition.hpp"
#include "util/check.hpp"

namespace pls::multilevel {

double imbalance_from_loads(std::span<const std::uint64_t> loads,
                            std::uint64_t total_weight, std::uint32_t k) {
  PLS_CHECK(k >= 1);
  PLS_CHECK_MSG(!loads.empty(), "imbalance needs at least one part load");
  if (total_weight == 0) return 1.0;
  const double ideal =
      static_cast<double>(total_weight) / static_cast<double>(k);
  const std::uint64_t mx = *std::max_element(loads.begin(), loads.end());
  return static_cast<double>(mx) / ideal;
}

double weighted_imbalance(const partition::Partition& p,
                          const std::vector<std::uint32_t>& vertex_weights) {
  const std::vector<std::uint64_t> loads = p.loads(vertex_weights);
  const std::uint64_t total =
      std::accumulate(loads.begin(), loads.end(), std::uint64_t{0});
  return imbalance_from_loads(loads, total, p.k);
}

}  // namespace pls::multilevel
