#pragma once
// Shared partition-quality arithmetic.
//
// partition::imbalance (circuit and graph overloads) and
// hypergraph::imbalance are the same function of (per-part loads, total
// weight, k); the single definition lives here so "imbalance" means one
// thing across the study (property-tested in multilevel_core_test).

#include <cstdint>
#include <span>

namespace pls::multilevel {

/// Max part load / ideal load (1.0 = perfect).  Returns 1.0 for an empty
/// instance (total == 0), matching both historical implementations.
double imbalance_from_loads(std::span<const std::uint64_t> loads,
                            std::uint64_t total_weight, std::uint32_t k);

}  // namespace pls::multilevel
