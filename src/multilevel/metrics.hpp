#pragma once
// Shared partition-quality arithmetic.
//
// partition::imbalance (circuit and graph overloads) and
// hypergraph::imbalance are the same function of (per-part loads, total
// weight, k); the single definition lives here so "imbalance" means one
// thing across the study (property-tested in multilevel_core_test).

#include <cstdint>
#include <span>
#include <vector>

namespace pls::partition {
struct Partition;
}

namespace pls::multilevel {

/// Max part load / ideal load (1.0 = perfect).  Returns 1.0 for an empty
/// instance (total == 0), matching both historical implementations.
double imbalance_from_loads(std::span<const std::uint64_t> loads,
                            std::uint64_t total_weight, std::uint32_t k);

/// Imbalance of a partition measured in *work weights* (vertex weights of
/// a VertexTrafficWeights): the load a node actually carries at runtime.
/// An empty weight vector means unit weights, where this equals the plain
/// gate-count imbalance.  This is the before/after drift observable the
/// dynamic-repartitioning path reports per migration epoch.
double weighted_imbalance(const partition::Partition& p,
                          const std::vector<std::uint32_t>& vertex_weights);

}  // namespace pls::multilevel
