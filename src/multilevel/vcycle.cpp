#include "multilevel/vcycle.hpp"

namespace pls::multilevel {

partition::Partition project(const std::vector<std::uint32_t>& parent_map,
                             const partition::Partition& coarse) {
  partition::Partition finer;
  finer.k = coarse.k;
  finer.assign.resize(parent_map.size());
  for (std::size_t v = 0; v < parent_map.size(); ++v) {
    finer.assign[v] = coarse.assign[parent_map[v]];
  }
  return finer;
}

}  // namespace pls::multilevel
