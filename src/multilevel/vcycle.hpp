#pragma once
// The shared V-cycle: coarsen-once, then initial-partition the coarsest
// level and refine at every level while projecting downward (paper §3).
//
// Both partitioners — "Multilevel" on the symmetrized graph and
// "MultilevelHG" on the circuit hypergraph — are instantiations of
// run_vcycle() below over their own hierarchy/graph types.  The policy
// object supplies the phase implementations; the template owns the
// orchestration that used to be duplicated: trace bookkeeping, the
// coarse-solution projection p_fine[v] = p_coarse[parent_map[v]], and the
// coarsest-to-finest refinement drive.  Anything added here (weighting,
// tracing, alternative cycle shapes) lands in both pipelines at once.
//
// Policy requirements (duck-typed; see MultilevelPartitioner /
// MultilevelHGPartitioner for the two concrete instances):
//   graph(level)      -> the level's graph (level = Hier::levels element)
//   size(graph)       -> vertex count
//   initial(graph, contains_input) -> partition::Partition
//   refine(graph, p)  -> void, refines p in place
//   quality(graph, p) -> std::uint64_t, the pipeline's objective (edge cut
//                        / λ−1); only called when tracing
// Hier requirements: `base` (finest graph), `levels` (each with
// .parent_map into the level), coarsest(), coarsest_contains_input().
//
// Call order is part of the contract: policies draw per-phase RNG seeds
// from a sequential seeder, so the template performs exactly one initial()
// and then one refine() per level, coarsest first — reordering would
// silently change every seeded partition.

#include <algorithm>
#include <cstdint>
#include <vector>

#include "partition/partition.hpp"

namespace pls::multilevel {

/// Per-run diagnostics, shared by both pipelines ("quality" is edge cut
/// for the graph pipeline, λ−1 for the hypergraph pipeline).
struct Trace {
  std::vector<std::size_t> level_sizes;            ///< |V| of G1..Gm
  std::vector<std::uint64_t> quality_after_level;  ///< after refining level i
  std::uint64_t initial_quality = 0;  ///< right after the initial phase
  std::uint64_t final_quality = 0;    ///< on the finest graph
};

/// Project a coarse partition to the next finer level: every member vertex
/// inherits its globule's part — ∀ v ∈ V_ij : P[v] = P[V_ij] (paper §3).
partition::Partition project(const std::vector<std::uint32_t>& parent_map,
                             const partition::Partition& coarse);

template <class Hier, class Policy>
partition::Partition run_vcycle(const Hier& h, Policy&& pol, Trace* trace) {
  if (trace != nullptr) {
    trace->level_sizes.clear();
    trace->quality_after_level.clear();
    for (const auto& lvl : h.levels) {
      trace->level_sizes.push_back(pol.size(pol.graph(lvl)));
    }
  }

  // ---- Initial k-way partitioning at the coarsest level ----------------
  partition::Partition p =
      pol.initial(h.coarsest(), h.coarsest_contains_input());
  if (trace != nullptr) {
    trace->initial_quality = pol.quality(h.coarsest(), p);
  }

  // ---- Refinement, projecting from the coarsest level down to the base -
  pol.refine(h.coarsest(), p);
  if (trace != nullptr) {
    trace->quality_after_level.push_back(pol.quality(h.coarsest(), p));
  }

  for (std::size_t i = h.levels.size(); i-- > 0;) {
    p = project(h.levels[i].parent_map, p);
    const auto& gfine = i == 0 ? h.base : pol.graph(h.levels[i - 1]);
    pol.refine(gfine, p);
    if (trace != nullptr) {
      trace->quality_after_level.push_back(pol.quality(gfine, p));
    }
  }

  if (trace != nullptr) trace->final_quality = pol.quality(h.base, p);
  return p;
}

/// Activity-guided best-of-two V-cycle.  Two candidates are produced and
/// the one with the lower *weighted* objective on the weighted finest
/// graph wins:
///   A — weights end-to-end: the weighted hierarchy `hw` partitioned as
///       usual (coarsening rates and refinement gains both see traffic).
///   B — structure-first: the unit-weight hierarchy `hu` partitioned as
///       usual, then one weighted refinement pass on hw's finest graph.
/// Both shapes exist because they win on different pipelines: weighted
/// coarsening ratings can distort the hierarchy enough that the weighted
/// optimum's basin is easier to reach from the unweighted solution (B),
/// while fanout-style coarsening is weight-insensitive and profits from
/// weighted refinement at every level (A).  Measured on the s15850
/// stand-in at k=8, the graph pipeline picks A and the hypergraph
/// pipeline picks B; the selection is static, deterministic, and costs
/// one extra partition run — trivial next to the simulation it guides.
///
/// Callers pass `upol` seeded with the *same* chain as a standalone
/// unweighted run, so candidate B equals today's unweighted partition
/// exactly and the guided result's weighted objective provably never
/// regresses against it (refinement never increases the objective;
/// property-tested in multilevel_core_test).
///
/// Known tradeoff: candidate B's coarse phases balance in *unit* gate
/// counts; the weighted refine pass only rejects moves into parts over
/// the weighted limit, it does not evacuate a part the unit phases
/// already overfilled.  A B-win can therefore exceed balance_tol measured
/// in work weights (A cannot — its every phase budgets weighted load).
/// Deliberate: rejecting B outright would discard the lower-traffic
/// partition over a constraint the unweighted baseline also ignores.
/// ROADMAP tracks surfacing the weighted imbalance in DriverResult.
///
/// The trace (if any) follows candidate A's V-cycle; final_quality is
/// re-pointed at whichever candidate is returned.
template <class Hier, class Policy>
partition::Partition run_guided_vcycle(const Hier& hw, const Hier& hu,
                                       Policy&& wpol, Policy&& upol,
                                       Trace* trace) {
  partition::Partition a = run_vcycle(hw, wpol, trace);
  partition::Partition b = run_vcycle(hu, upol, nullptr);
  wpol.refine(hw.base, b);

  const std::uint64_t qa = wpol.quality(hw.base, a);
  const std::uint64_t qb = wpol.quality(hw.base, b);
  partition::Partition chosen = qb < qa ? std::move(b) : std::move(a);
  if (trace != nullptr) trace->final_quality = std::min(qa, qb);
  return chosen;
}

/// Incremental (warm-started) repartition for dynamic use at GVT epochs.
/// The live assignment replaces the whole coarsening hierarchy: the seed
/// partition is refined directly on the finest graph with fresh activity
/// weights, so the cost is one refinement pass instead of a full V-cycle —
/// the point of repartitioning *during* a run, where a from-scratch
/// MultilevelHG would stall the controller.
///
/// Contract: the seed is returned unchanged unless the refined candidate is
/// *strictly* better under the policy's quality.  Refiners never increase
/// the objective, so with unchanged weights (where the seed is already a
/// refinement fixed point) this degenerates to the identity — which is what
/// lets the kernel skip migrations entirely when no drift happened, and
/// what the unchanged-weights unit test pins down.
template <class Graph, class Policy>
partition::Partition run_incremental_vcycle(const Graph& base, Policy&& pol,
                                            const partition::Partition& seed,
                                            Trace* trace = nullptr) {
  partition::Partition p = seed;
  pol.refine(base, p);
  const std::uint64_t q_seed = pol.quality(base, seed);
  const std::uint64_t q_ref = pol.quality(base, p);
  if (trace != nullptr) {
    trace->level_sizes.assign(1, pol.size(base));
    trace->initial_quality = q_seed;
    trace->final_quality = std::min(q_seed, q_ref);
    trace->quality_after_level.assign(1, trace->final_quality);
  }
  return q_ref < q_seed ? p : seed;
}

/// Iterated V-cycle (hMETIS-style) — the escalation behind the flat
/// incremental pass when drift has already been detected.  The hierarchy
/// must have been coarsened *respecting* the seed partition (vertices
/// merge only within their part, CoarsenOptions::respect_parts), so the
/// seed lifts losslessly to every level; refinement then runs coarsest to
/// finest from the lifted seed.  The point: a coarse-level move relocates
/// a whole globule — the cluster-sized escape hatch flat refinement lacks
/// when the workload's hot region has moved across the cut and the seed
/// sits in a structural local minimum.  There is no initial-partitioning
/// phase, so the cost stays one restricted coarsening plus one refinement
/// sweep — well under a from-scratch guided V-cycle.
///
/// Contract matches run_incremental_vcycle: the seed is returned
/// unchanged unless the iterated candidate is *strictly* better under the
/// policy's quality.
template <class Hier, class Policy>
partition::Partition run_iterated_vcycle(const Hier& h, Policy&& pol,
                                         const partition::Partition& seed,
                                         Trace* trace = nullptr) {
  // Lift the seed to the coarsest level: every globule's members share
  // one part by construction, so any member's part is the globule's part.
  partition::Partition p = seed;
  for (const auto& lvl : h.levels) {
    partition::Partition coarse;
    coarse.k = seed.k;
    coarse.assign.assign(pol.size(pol.graph(lvl)), 0);
    for (std::size_t v = 0; v < lvl.parent_map.size(); ++v) {
      coarse.assign[lvl.parent_map[v]] = p.assign[v];
    }
    p = std::move(coarse);
  }

  pol.refine(h.coarsest(), p);
  for (std::size_t i = h.levels.size(); i-- > 0;) {
    p = project(h.levels[i].parent_map, p);
    const auto& gfine = i == 0 ? h.base : pol.graph(h.levels[i - 1]);
    pol.refine(gfine, p);
  }

  const std::uint64_t q_seed = pol.quality(h.base, seed);
  const std::uint64_t q_new = pol.quality(h.base, p);
  if (trace != nullptr) {
    trace->initial_quality = q_seed;
    trace->final_quality = std::min(q_seed, q_new);
  }
  return q_new < q_seed ? p : seed;
}

}  // namespace pls::multilevel
