#include "multilevel/weights.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace pls::multilevel {

bool VertexTrafficWeights::uniform() const noexcept {
  const bool unit_vertices =
      std::all_of(vertex.begin(), vertex.end(),
                  [](std::uint32_t w) { return w == 1; });
  if (!unit_vertices) return false;
  if (traffic.empty()) return true;
  const std::uint32_t first = traffic.front();
  return std::all_of(traffic.begin(), traffic.end(),
                     [first](std::uint32_t w) { return w == first; });
}

std::uint64_t VertexTrafficWeights::total_vertex_weight() const noexcept {
  std::uint64_t total = 0;
  for (std::uint32_t w : vertex) total += w;
  return total;
}

VertexTrafficWeights uniform_weights(std::size_t n) {
  VertexTrafficWeights w;
  w.vertex.assign(n, 1);
  w.traffic.assign(n, 1);
  return w;
}

VertexTrafficWeights weights_from_activity(const std::vector<double>& work,
                                           const std::vector<double>& traffic,
                                           const WeightOptions& opt) {
  PLS_CHECK_MSG(opt.vertex_cap >= 1, "vertex_cap must be >= 1");
  PLS_CHECK_MSG(opt.traffic_granularity >= 1,
                "traffic_granularity must be >= 1");
  PLS_CHECK_MSG(opt.traffic_cap >= opt.traffic_granularity,
                "traffic_cap must fit the uniform-activity weight");
  PLS_CHECK_MSG(work.size() == traffic.size(),
                "work and traffic profiles must cover the same gates");
  VertexTrafficWeights w;
  w.vertex.reserve(work.size());
  w.traffic.reserve(work.size());
  for (std::size_t g = 0; g < work.size(); ++g) {
    PLS_CHECK_MSG(std::isfinite(work[g]) && work[g] >= 0.0 &&
                      std::isfinite(traffic[g]) && traffic[g] >= 0.0,
                  "activity must be finite and non-negative at gate " << g);
    w.vertex.push_back(static_cast<std::uint32_t>(std::clamp<long>(
        std::lround(work[g]), 1, static_cast<long>(opt.vertex_cap))));
    w.traffic.push_back(static_cast<std::uint32_t>(std::clamp<long>(
        std::lround(static_cast<double>(opt.traffic_granularity) *
                    traffic[g]),
        1, static_cast<long>(opt.traffic_cap))));
  }
  return w;
}

VertexTrafficWeights weights_from_activity(const std::vector<double>& activity,
                                           const WeightOptions& opt) {
  return weights_from_activity(activity, activity, opt);
}

}  // namespace pls::multilevel
