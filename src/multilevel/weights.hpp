#pragma once
// Activity-derived weights shared by both multilevel pipelines.
//
// The simulator's cost model is not topological: a gate that switches ten
// times per clock costs ten times the work to host and ten times the
// messages to cut, regardless of its fanin count.  This module turns a
// per-gate activity profile (logicsim::profile_activity, or per-LP
// committed-event counts fed back from a warm-up Time Warp run) into the
// two weight vectors the partitioners consume identically ("Multilevel"
// via the symmetrized graph, "MultilevelHG" via the hypergraph):
//
//   vertex[g]   work weight — how much simulation load gate g contributes
//               to its node.  Drives the balance constraint.
//   traffic[g]  traffic weight of the net *driven by* g — how many events
//               per unit time cross that net.  Drives edge/net weights, so
//               coarsening keeps busy signals inside globules and
//               refinement prices cuts by real message counts (paper §6).
//
// On batched (multi-lane) runs both signals are lane-aware: the work
// profile counts committed lane *transitions* (the popcount of each
// event's change mask, summed over all value words — see
// logicsim::ActivityProfile and RunStats::lane_work_committed), not raw
// event counts.  A gate whose inputs toggle across 128 lanes costs
// proportionally more CPU per event than one toggling a single lane, and
// the weights price that; on scalar runs every mask popcount is 1, so the
// two definitions coincide and nothing changes.
//
// Two invariants make the weighted path a strict superset of the
// unweighted one (property-tested in multilevel_core_test):
//   * vertex maps mean activity (1.0) to exactly 1, so a uniform profile
//     reproduces the unit-weight balance limit bit-for-bit;
//   * traffic maps a uniform profile to one constant, and every consumer
//     of traffic weights is scale-invariant (only comparisons and ratios
//     of them matter), so uniform activity reproduces today's partitions
//     assignment-for-assignment.

#include <cstdint>
#include <vector>

namespace pls::multilevel {

struct WeightOptions {
  /// Work weights are clamp(round(activity), 1, vertex_cap): mean activity
  /// is exactly weight 1, a hot gate counts as up to `vertex_cap` gates of
  /// load.  The cap keeps one pathological gate from eating a whole part's
  /// balance budget.
  std::uint32_t vertex_cap = 8;
  /// Traffic weights are clamp(round(granularity · activity), 1, cap):
  /// the granularity gives sub-mean resolution (a net at 1.125× mean is
  /// distinguishable from mean) without floating-point edge weights.
  std::uint32_t traffic_granularity = 8;
  std::uint32_t traffic_cap = 256;
};

/// Per-vertex work weights plus per-driver net/edge traffic weights, both
/// indexed by gate id.  Pointers to one of these thread through
/// MultilevelOptions / MultilevelHGOptions / CoarsenOptions; the referenced
/// object must outlive the partitioner run.
struct VertexTrafficWeights {
  std::vector<std::uint32_t> vertex;
  std::vector<std::uint32_t> traffic;

  /// True when the weights cannot change any partitioning decision: all
  /// work weights are 1 and all traffic weights equal one constant (every
  /// traffic consumer is scale-invariant).
  bool uniform() const noexcept;

  std::uint64_t total_vertex_weight() const noexcept;
};

/// Unit weights — the explicit spelling of the unweighted path.
VertexTrafficWeights uniform_weights(std::size_t n);

/// Derive weights from two mean-normalized activity profiles (1.0 =
/// average gate; see logicsim::profile_activity): `work` is events
/// executed per gate (drives vertex weights), `traffic` is output
/// transitions per gate (drives the weight of the net that gate drives).
/// The signals genuinely differ — a gate that is evaluated often but
/// rarely toggles is heavy work yet cheap to cut.
VertexTrafficWeights weights_from_activity(const std::vector<double>& work,
                                           const std::vector<double>& traffic,
                                           const WeightOptions& opt = {});

/// Single-signal convenience: one profile drives both weights.
VertexTrafficWeights weights_from_activity(const std::vector<double>& activity,
                                           const WeightOptions& opt = {});

}  // namespace pls::multilevel
