#include "obs/export.hpp"

#include <fstream>
#include <ostream>
#include <string>

#include "obs/session.hpp"
#include "util/json.hpp"
#include "util/log.hpp"

namespace pls::obs {
namespace {

/// Microseconds relative to the session epoch.  Events recorded by a ring
/// can never predate its session, so the subtraction is safe.
double rel_us(std::uint64_t ts_ns, std::uint64_t t0_ns) {
  return static_cast<double>(ts_ns - t0_ns) / 1000.0;
}

void event_common(util::JsonWriter& j, const TraceEvent& ev,
                  std::uint32_t node, std::uint64_t t0_ns) {
  j.kv("name", to_string(ev.kind));
  if (ev.dur_ns > 0) {
    j.kv("ph", "X");
  } else {
    j.kv("ph", "i");
    j.kv("s", "t");
  }
  j.kv("pid", std::uint64_t{0});
  j.kv("tid", node);
  j.key("ts");
  j.value(rel_us(ev.ts_ns, t0_ns), 3);
  if (ev.dur_ns > 0) {
    j.key("dur");
    j.value(static_cast<double>(ev.dur_ns) / 1000.0, 3);
  }
}

void event_args(util::JsonWriter& j, const TraceEvent& ev) {
  j.key("args");
  j.begin_object();
  switch (ev.kind) {
    case TraceKind::kExecBatch:
      j.kv("lp", ev.lp).kv("events", ev.a).kv("vt", ev.b);
      break;
    case TraceKind::kRollback:
      j.kv("lp", ev.lp).kv("undone", ev.a);
      j.kv("cause", ev.b != 0 ? "secondary" : "primary");
      break;
    case TraceKind::kGvtStart:
      j.kv("round", ev.a);
      break;
    case TraceKind::kGvtJoin:
      j.kv("round", ev.a).kv("local_min", ev.b);
      break;
    case TraceKind::kGvtDone:
      j.kv("round", ev.a).kv("gvt", ev.b);
      break;
    case TraceKind::kFossil:
      j.kv("committed", ev.a).kv("live", ev.b);
      break;
    case TraceKind::kThrottle: {
      j.kv("window", ev.a);
      j.key("fraction");
      j.value(static_cast<double>(ev.b) / 1e6, 6);
      const char* dir = ev.lp == 0 ? "shrink" : (ev.lp == 2 ? "grow" : "hold");
      j.kv("direction", dir);
      break;
    }
    case TraceKind::kRepartition:
      j.kv("moved", ev.a).kv("round", ev.b);
      break;
    case TraceKind::kMigrateFreeze:
      j.kv("lp", ev.lp).kv("cancelled", ev.a);
      break;
    case TraceKind::kMigrateShip:
      j.kv("lp", ev.lp).kv("dest", ev.a).kv("events", ev.b);
      break;
    case TraceKind::kMigrateInstall:
      j.kv("lp", ev.lp).kv("from", ev.a).kv("events", ev.b);
      break;
    case TraceKind::kFlush:
      j.kv("msgs", ev.a).kv("batches_total", ev.b);
      break;
  }
  j.end_object();
}

/// One counter series sample ("C" events draw line charts in Perfetto).
void counter(util::JsonWriter& j, const char* name, std::uint32_t tid,
             double ts_us, std::uint64_t value) {
  j.begin_object();
  j.kv("name", name);
  j.kv("ph", "C");
  j.kv("pid", std::uint64_t{0});
  j.kv("tid", tid);
  j.key("ts");
  j.value(ts_us, 3);
  j.key("args");
  j.begin_object();
  j.kv("value", value);
  j.end_object();
  j.end_object();
}

bool open_or_warn(std::ofstream& f, const std::string& path,
                  const char* what) {
  f.open(path);
  if (!f.is_open()) {
    PLS_WARN("obs: cannot open " << what << " output file '" << path << "'");
    return false;
  }
  return true;
}

}  // namespace

void write_perfetto_trace(std::ostream& os, const ObsSession& session) {
  util::JsonWriter j(os);
  const std::uint64_t t0 = session.t0_ns();
  j.begin_object();
  j.kv("displayTimeUnit", "ms");
  j.key("traceEvents");
  j.begin_array();
  // Metadata: name the process and one thread lane per node.
  j.begin_object();
  j.kv("name", "process_name").kv("ph", "M").kv("pid", std::uint64_t{0});
  j.key("args");
  j.begin_object();
  j.kv("name", "pls-warped");
  j.end_object();
  j.end_object();
  for (std::uint32_t n = 0; n < session.num_nodes(); ++n) {
    j.begin_object();
    j.kv("name", "thread_name").kv("ph", "M").kv("pid", std::uint64_t{0});
    j.kv("tid", n);
    j.key("args");
    j.begin_object();
    j.kv("name", "node " + std::to_string(n));
    j.end_object();
    j.end_object();
  }
  // Trace events, per node in ring (i.e. recording) order.
  for (std::uint32_t n = 0; n < session.num_nodes(); ++n) {
    const TraceRing* ring = session.ring(n);
    if (ring == nullptr) continue;
    for (const TraceEvent& ev : ring->snapshot()) {
      j.begin_object();
      event_common(j, ev, n, t0);
      event_args(j, ev);
      j.end_object();
    }
  }
  // Metrics samples as counter series (cumulative counters exported raw;
  // rates are derived by tools so the export stays timestamp-independent
  // in everything but the ts fields themselves).
  for (const MetricsSample& s : session.samples()) {
    const double ts_us = static_cast<double>(s.wall_ns) / 1000.0;
    counter(j, "gvt", 0, ts_us, s.gvt);
    for (std::uint32_t n = 0; n < s.nodes.size(); ++n) {
      const MetricsSample::Node& g = s.nodes[n];
      const std::string prefix = "node" + std::to_string(n) + " ";
      counter(j, (prefix + "committed").c_str(), n, ts_us,
              g.events_committed);
      counter(j, (prefix + "rolled_back").c_str(), n, ts_us,
              g.events_rolled_back);
      counter(j, (prefix + "window").c_str(), n, ts_us, g.window);
      counter(j, (prefix + "live").c_str(), n, ts_us, g.live_entries);
      counter(j, (prefix + "holding").c_str(), n, ts_us, g.holding_events);
      counter(j, (prefix + "pool_bytes").c_str(), n, ts_us, g.pool_bytes);
      counter(j, (prefix + "batches").c_str(), n, ts_us, g.batches_sent);
      counter(j, (prefix + "batch_msgs").c_str(), n, ts_us,
              g.batch_msgs_sent);
    }
  }
  j.end_array();
  // Truncation accounting: silent loss would read as "nothing happened".
  j.key("otherData");
  j.begin_object();
  for (std::uint32_t n = 0; n < session.num_nodes(); ++n) {
    const TraceRing* ring = session.ring(n);
    if (ring == nullptr) continue;
    j.kv("dropped_node" + std::to_string(n), ring->dropped());
  }
  j.kv("samples_truncated", session.samples_truncated());
  j.end_object();
  j.end_object();
  os << '\n';
}

void write_metrics_csv(std::ostream& os, const ObsSession& session) {
  os << "wall_ms,node,metric,value\n";
  char buf[32];
  for (const MetricsSample& s : session.samples()) {
    std::snprintf(buf, sizeof(buf), "%.3f",
                  static_cast<double>(s.wall_ns) / 1e6);
    const std::string t(buf);
    os << t << ",-1,gvt," << s.gvt << "\n";
    for (std::uint32_t n = 0; n < s.nodes.size(); ++n) {
      const MetricsSample::Node& g = s.nodes[n];
      os << t << ',' << n << ",processed," << g.events_processed << "\n";
      os << t << ',' << n << ",committed," << g.events_committed << "\n";
      os << t << ',' << n << ",rolled_back," << g.events_rolled_back << "\n";
      os << t << ',' << n << ",rollbacks," << g.rollbacks << "\n";
      os << t << ',' << n << ",window," << g.window << "\n";
      os << t << ',' << n << ",live," << g.live_entries << "\n";
      os << t << ',' << n << ",holding," << g.holding_events << "\n";
      os << t << ',' << n << ",pool_bytes," << g.pool_bytes << "\n";
      os << t << ',' << n << ",batches," << g.batches_sent << "\n";
      os << t << ',' << n << ",batch_msgs," << g.batch_msgs_sent << "\n";
    }
  }
}

void write_metrics_json(std::ostream& os, const ObsSession& session) {
  util::JsonWriter j(os);
  j.begin_object();
  j.kv("interval_us", session.config().metrics_interval_us);
  j.kv("num_nodes", session.num_nodes());
  j.kv("samples_truncated", session.samples_truncated());
  j.key("samples");
  j.begin_array();
  for (const MetricsSample& s : session.samples()) {
    j.begin_object();
    j.key("wall_ms");
    j.value(static_cast<double>(s.wall_ns) / 1e6, 3);
    j.kv("gvt", s.gvt);
    j.key("nodes");
    j.begin_array();
    for (const MetricsSample::Node& g : s.nodes) {
      j.begin_object();
      j.kv("processed", g.events_processed);
      j.kv("committed", g.events_committed);
      j.kv("rolled_back", g.events_rolled_back);
      j.kv("rollbacks", g.rollbacks);
      j.kv("window", g.window);
      j.kv("live", g.live_entries);
      j.kv("holding", g.holding_events);
      j.kv("pool_bytes", g.pool_bytes);
      j.kv("batches", g.batches_sent);
      j.kv("batch_msgs", g.batch_msgs_sent);
      j.end_object();
    }
    j.end_array();
    j.end_object();
  }
  j.end_array();
  j.end_object();
  os << '\n';
}

bool write_perfetto_trace_file(const std::string& path,
                               const ObsSession& session) {
  std::ofstream f;
  if (!open_or_warn(f, path, "trace")) return false;
  write_perfetto_trace(f, session);
  return static_cast<bool>(f);
}

bool write_metrics_csv_file(const std::string& path,
                            const ObsSession& session) {
  std::ofstream f;
  if (!open_or_warn(f, path, "metrics CSV")) return false;
  write_metrics_csv(f, session);
  return static_cast<bool>(f);
}

bool write_metrics_json_file(const std::string& path,
                             const ObsSession& session) {
  std::ofstream f;
  if (!open_or_warn(f, path, "metrics JSON")) return false;
  write_metrics_json(f, session);
  return static_cast<bool>(f);
}

}  // namespace pls::obs
