#pragma once
// Exporters for an ObsSession: Chrome/Perfetto trace.json (open in
// https://ui.perfetto.dev or chrome://tracing) and the metrics time series
// as long-format CSV or JSON.
//
// Only call after the run: the trace rings require their producer threads
// joined and the sampler stopped.  Output is deterministic modulo
// timestamps — events appear in ring order per node, nodes in order,
// samples in order, with a fixed field order — so two runs of the same
// simulation diff cleanly once ts/dur fields are masked (pinned by
// tests/obs_test.cpp).

#include <iosfwd>
#include <string>

namespace pls::obs {

class ObsSession;

/// Chrome Trace Event Format JSON: spans ("ph":"X"), instants ("i"),
/// per-node counter series ("C") from the metrics samples, and per-ring
/// drop counts under "otherData".  Timestamps are microseconds relative to
/// the session epoch.
void write_perfetto_trace(std::ostream& os, const ObsSession& session);

/// Long-format CSV: wall_ms,node,metric,value — one row per gauge per
/// node per sample; the global GVT samples use node -1.
void write_metrics_csv(std::ostream& os, const ObsSession& session);

/// The same series as structured JSON (one object per sample).
void write_metrics_json(std::ostream& os, const ObsSession& session);

/// File variants; return false (and log a warning) when the file cannot
/// be opened.
bool write_perfetto_trace_file(const std::string& path,
                               const ObsSession& session);
bool write_metrics_csv_file(const std::string& path,
                            const ObsSession& session);
bool write_metrics_json_file(const std::string& path,
                             const ObsSession& session);

}  // namespace pls::obs
