#include "obs/metrics.hpp"

#include <chrono>

#include "util/check.hpp"
#include "util/timer.hpp"

namespace pls::obs {

MetricsSampler::MetricsSampler(const NodeGauges* gauges,
                               std::uint32_t num_nodes,
                               const std::atomic<std::uint64_t>* gvt)
    : gauges_(gauges), num_nodes_(num_nodes), gvt_(gvt) {
  PLS_CHECK(gauges_ != nullptr && gvt_ != nullptr && num_nodes_ >= 1);
}

MetricsSampler::~MetricsSampler() { stop(); }

void MetricsSampler::start(std::uint64_t interval_us) {
  PLS_CHECK_MSG(interval_us > 0, "metrics sampler interval must be > 0");
  PLS_CHECK_MSG(!thread_.joinable(), "metrics sampler already running");
  stop_.store(false, std::memory_order_release);
  thread_ = std::thread([this, interval_us] { sampler_main(interval_us); });
}

void MetricsSampler::stop() {
  if (!thread_.joinable()) return;
  stop_.store(true, std::memory_order_release);
  thread_.join();
}

void MetricsSampler::take_sample(std::uint64_t start_ns) {
  if (samples_.size() >= kMaxSamples) {
    truncated_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  MetricsSample s;
  s.wall_ns = util::steady_now_ns() - start_ns;
  s.gvt = gvt_->load(std::memory_order_relaxed);
  s.nodes.resize(num_nodes_);
  for (std::uint32_t n = 0; n < num_nodes_; ++n) {
    const NodeGauges& g = gauges_[n];
    MetricsSample::Node& out = s.nodes[n];
    out.events_processed = g.events_processed.load(std::memory_order_relaxed);
    out.events_committed = g.events_committed.load(std::memory_order_relaxed);
    out.events_rolled_back =
        g.events_rolled_back.load(std::memory_order_relaxed);
    out.rollbacks = g.rollbacks.load(std::memory_order_relaxed);
    out.window = g.window.load(std::memory_order_relaxed);
    out.live_entries = g.live_entries.load(std::memory_order_relaxed);
    out.holding_events = g.holding_events.load(std::memory_order_relaxed);
    out.pool_bytes = g.pool_bytes.load(std::memory_order_relaxed);
    out.batches_sent = g.batches_sent.load(std::memory_order_relaxed);
    out.batch_msgs_sent = g.batch_msgs_sent.load(std::memory_order_relaxed);
  }
  samples_.push_back(std::move(s));
}

void MetricsSampler::sampler_main(std::uint64_t interval_us) {
  const std::uint64_t start_ns = util::steady_now_ns();
  const std::uint64_t interval_ns = interval_us * 1000;
  // Nap in short slices so stop() joins promptly even at long intervals.
  constexpr std::uint64_t kMaxNapNs = 2'000'000;
  std::uint64_t next_ns = start_ns;  // first sample immediately
  while (!stop_.load(std::memory_order_acquire)) {
    const std::uint64_t now = util::steady_now_ns();
    if (now >= next_ns) {
      take_sample(start_ns);
      // Fixed cadence relative to the start, skipping missed ticks (a
      // preempted sampler must not burst-sample to catch up).
      do { next_ns += interval_ns; } while (next_ns <= now);
    }
    const std::uint64_t now2 = util::steady_now_ns();
    const std::uint64_t nap =
        next_ns > now2 ? std::min(next_ns - now2, kMaxNapNs) : 0;
    if (nap > 0) {
      std::this_thread::sleep_for(std::chrono::nanoseconds(nap));
    }
  }
  // Final sample so the series always covers the end of the run.
  take_sample(start_ns);
}

}  // namespace pls::obs
