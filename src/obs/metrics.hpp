#pragma once
// Time-series metrics: per-node gauges the kernel publishes from its main
// loop (relaxed atomics — cheap on the hot path, racy-read-safe for the
// sampler) and a background sampler thread that snapshots them on a fixed
// wall-clock interval into an in-memory series.
//
// The gauges are cumulative counters or current values; rates (committed
// events/s, rollback fraction over an interval) are derived by the
// exporters and tools from successive samples, so the hot path never does
// arithmetic for the benefit of observers.

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

namespace pls::obs {

/// One node's live gauges.  The owning node thread stores, the sampler
/// loads; all relaxed — each value is independently coherent and a torn
/// *set* (values from slightly different loop iterations) is fine for a
/// time series.  Cache-line aligned so per-poll stores by different nodes
/// never contend on one line.
struct alignas(64) NodeGauges {
  std::atomic<std::uint64_t> events_processed{0};   ///< cumulative
  std::atomic<std::uint64_t> events_committed{0};   ///< cumulative
  std::atomic<std::uint64_t> events_rolled_back{0}; ///< cumulative
  std::atomic<std::uint64_t> rollbacks{0};          ///< cumulative
  std::atomic<std::uint64_t> window{0};             ///< current throttle window
  std::atomic<std::uint64_t> live_entries{0};       ///< current live events
  std::atomic<std::uint64_t> holding_events{0};     ///< modeled-network queue
  std::atomic<std::uint64_t> pool_bytes{0};         ///< arena slab bytes
  std::atomic<std::uint64_t> batches_sent{0};       ///< cumulative flushed
                                                    ///< batches (channel.hpp)
  std::atomic<std::uint64_t> batch_msgs_sent{0};    ///< cumulative messages
                                                    ///< inside them
};

/// One sampler tick: wall-clock offset, the global GVT, and every node's
/// gauge values at (approximately) that instant.
struct MetricsSample {
  std::uint64_t wall_ns = 0;  ///< since sampling started
  std::uint64_t gvt = 0;
  struct Node {
    std::uint64_t events_processed = 0;
    std::uint64_t events_committed = 0;
    std::uint64_t events_rolled_back = 0;
    std::uint64_t rollbacks = 0;
    std::uint64_t window = 0;
    std::uint64_t live_entries = 0;
    std::uint64_t holding_events = 0;
    std::uint64_t pool_bytes = 0;
    std::uint64_t batches_sent = 0;
    std::uint64_t batch_msgs_sent = 0;
  };
  std::vector<Node> nodes;
};

/// Background sampler.  start() spawns the thread, stop() joins it; the
/// collected series must only be read after stop() returned (or before
/// start()).  Bounded: sampling stops silently at max_samples so a runaway
/// run cannot exhaust memory through its own telemetry.
class MetricsSampler {
 public:
  MetricsSampler(const NodeGauges* gauges, std::uint32_t num_nodes,
                 const std::atomic<std::uint64_t>* gvt);
  ~MetricsSampler();  ///< stops the thread if still running

  MetricsSampler(const MetricsSampler&) = delete;
  MetricsSampler& operator=(const MetricsSampler&) = delete;

  /// Begin sampling every `interval_us` microseconds.  Idempotent per
  /// start/stop cycle; `interval_us` must be > 0.
  void start(std::uint64_t interval_us);
  /// Take one final sample, stop, and join the thread.  Idempotent.
  void stop();

  bool running() const noexcept {
    return thread_.joinable();
  }

  /// The collected series; only valid once the sampler is stopped.
  const std::vector<MetricsSample>& samples() const noexcept {
    return samples_;
  }
  /// Samples silently not taken because max_samples was reached.
  std::uint64_t truncated() const noexcept {
    return truncated_.load(std::memory_order_acquire);
  }

  static constexpr std::size_t kMaxSamples = 1u << 20;

 private:
  void sampler_main(std::uint64_t interval_us);
  void take_sample(std::uint64_t start_ns);

  const NodeGauges* gauges_;
  std::uint32_t num_nodes_;
  const std::atomic<std::uint64_t>* gvt_;

  std::vector<MetricsSample> samples_;
  std::atomic<std::uint64_t> truncated_{0};
  std::atomic<bool> stop_{false};
  std::thread thread_;
};

}  // namespace pls::obs
