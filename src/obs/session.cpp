#include "obs/session.hpp"

#include "util/check.hpp"
#include "util/timer.hpp"

namespace pls::obs {

ObsSession::ObsSession(std::uint32_t num_nodes, const ObsConfig& cfg)
    : cfg_(cfg), num_nodes_(num_nodes), t0_ns_(util::steady_now_ns()) {
  PLS_CHECK_MSG(num_nodes_ >= 1, "ObsSession needs at least one node");
  if (cfg_.trace) {
    rings_.reserve(num_nodes_);
    for (std::uint32_t n = 0; n < num_nodes_; ++n) {
      rings_.emplace_back(cfg_.ring_capacity);
    }
  }
  gauges_ = std::make_unique<NodeGauges[]>(num_nodes_);
  sampler_ = std::make_unique<MetricsSampler>(gauges_.get(), num_nodes_,
                                              &gvt_);
}

void ObsSession::start_sampling() {
  if (cfg_.metrics_interval_us == 0) return;
  sampler_->start(cfg_.metrics_interval_us);
}

void ObsSession::stop_sampling() { sampler_->stop(); }

}  // namespace pls::obs
