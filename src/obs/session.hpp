#pragma once
// ObsSession: one run's observability state — the per-node trace rings,
// the per-node metrics gauges, the global GVT gauge and the background
// sampler — bundled so the kernel takes a single non-owning pointer and
// the driver hands the finished session to the exporters.
//
// Lifecycle: construct before the kernel, start_sampling() right before
// kernel.run(), stop_sampling() right after it returns, then export.  The
// trace rings are written only by their node threads and read only after
// those threads joined; the gauges are relaxed atomics safe to sample
// concurrently (see metrics.hpp).  Everything is always compiled in; a
// null session pointer (the default) is the off switch, costing the hot
// path one pointer test.

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace pls::obs {

struct ObsConfig {
  /// Record kernel trace events into per-node rings.
  bool trace = false;
  /// Per-node ring capacity in events (rounded up to a power of two);
  /// 48 bytes per slot.  The default holds an entire smoke-scale run and
  /// the recent tail of anything larger (dropped() reports truncation).
  std::size_t ring_capacity = std::size_t{1} << 17;
  /// Wall-clock microseconds between metrics samples; 0 = no sampler.
  std::uint64_t metrics_interval_us = 0;

  bool enabled() const noexcept { return trace || metrics_interval_us > 0; }
};

class ObsSession {
 public:
  ObsSession(std::uint32_t num_nodes, const ObsConfig& cfg);

  ObsSession(const ObsSession&) = delete;
  ObsSession& operator=(const ObsSession&) = delete;

  std::uint32_t num_nodes() const noexcept { return num_nodes_; }
  const ObsConfig& config() const noexcept { return cfg_; }
  bool tracing() const noexcept { return cfg_.trace; }

  /// Node `n`'s trace ring, or nullptr when tracing is off.  The kernel
  /// caches this per cluster; one null test per would-be record.
  TraceRing* ring(std::uint32_t n) noexcept {
    return cfg_.trace ? &rings_[n] : nullptr;
  }
  const TraceRing* ring(std::uint32_t n) const noexcept {
    return cfg_.trace ? &rings_[n] : nullptr;
  }

  /// Node `n`'s gauges (always present; publishing them is the kernel's
  /// choice and costs a handful of relaxed stores per poll).
  NodeGauges& gauges(std::uint32_t n) noexcept { return gauges_[n]; }
  const NodeGauges& gauges(std::uint32_t n) const noexcept {
    return gauges_[n];
  }

  /// Global GVT gauge, published by the kernel's controller.
  void set_gvt(std::uint64_t gvt) noexcept {
    gvt_.store(gvt, std::memory_order_relaxed);
  }
  std::uint64_t gvt() const noexcept {
    return gvt_.load(std::memory_order_relaxed);
  }

  /// Start/stop the background sampler (no-ops when the configured
  /// interval is 0).  stop_sampling() joins the thread — always pairs
  /// cleanly, including after an aborted run.
  void start_sampling();
  void stop_sampling();

  /// The sampled series; read only after stop_sampling().
  const std::vector<MetricsSample>& samples() const noexcept {
    return sampler_->samples();
  }
  std::uint64_t samples_truncated() const noexcept {
    return sampler_->truncated();
  }

  /// Session epoch: steady-clock ns at construction.  Exporters subtract
  /// it so artifact timestamps start near zero.
  std::uint64_t t0_ns() const noexcept { return t0_ns_; }

 private:
  ObsConfig cfg_;
  std::uint32_t num_nodes_;
  std::uint64_t t0_ns_;
  std::vector<TraceRing> rings_;               ///< empty when !cfg_.trace
  std::unique_ptr<NodeGauges[]> gauges_;
  std::atomic<std::uint64_t> gvt_{0};
  std::unique_ptr<MetricsSampler> sampler_;
};

}  // namespace pls::obs
