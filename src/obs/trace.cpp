#include "obs/trace.hpp"

namespace pls::obs {

const char* to_string(TraceKind kind) noexcept {
  switch (kind) {
    case TraceKind::kExecBatch: return "exec";
    case TraceKind::kRollback: return "rollback";
    case TraceKind::kGvtStart: return "gvt_start";
    case TraceKind::kGvtJoin: return "gvt_join";
    case TraceKind::kGvtDone: return "gvt_done";
    case TraceKind::kFossil: return "fossil";
    case TraceKind::kThrottle: return "throttle";
    case TraceKind::kRepartition: return "repartition";
    case TraceKind::kMigrateFreeze: return "mig_freeze";
    case TraceKind::kMigrateShip: return "mig_ship";
    case TraceKind::kMigrateInstall: return "mig_install";
    case TraceKind::kFlush: return "flush";
  }
  return "?";
}

TraceRing::TraceRing(std::size_t capacity) {
  std::size_t cap = 16;
  while (cap < capacity) cap <<= 1;
  slots_ = std::make_unique<TraceEvent[]>(cap);
  mask_ = cap - 1;
}

std::vector<TraceEvent> TraceRing::snapshot() const {
  return tail(capacity());
}

std::vector<TraceEvent> TraceRing::tail(std::size_t n) const {
  const std::uint64_t count = recorded();
  const std::uint64_t held =
      count < capacity() ? count : static_cast<std::uint64_t>(capacity());
  const std::uint64_t want = n < held ? n : held;
  std::vector<TraceEvent> out;
  out.reserve(static_cast<std::size_t>(want));
  for (std::uint64_t i = count - want; i < count; ++i) {
    out.push_back(slots_[i & mask_]);
  }
  return out;
}

}  // namespace pls::obs
