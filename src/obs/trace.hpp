#pragma once
// Kernel trace recording: fixed-capacity, drop-counting, single-producer
// ring buffers of timestamped trace events, one per node thread.
//
// Design constraints (why this is not a logger):
//  * The producer is a Time Warp node thread in its main loop; recording
//    must never block, never allocate, never take a lock.  record() is one
//    bounds-masked store plus a release on the event counter.
//  * The ring holds the NEWEST events: on overflow the oldest slot is
//    overwritten and the overwrite is counted.  The primary consumers — the
//    post-run exporter and the deadlock watchdog's post-mortem dump — both
//    want the tail of the story, not its beginning, and the drop counter
//    keeps truncation visible instead of silent.
//  * Exactly one thread writes a given ring.  Readers (snapshot / tail /
//    dropped) must only run after the writer thread has been joined; the
//    release/acquire pair on the counter then makes every recorded slot
//    visible.  There is no concurrent-drain mode — the live metrics path
//    reads atomic gauges (metrics.hpp), never the rings.
//
// The event taxonomy is the kernel's: see TraceKind.  Events carry two
// generic u64 args plus an LP id; the exporter (export.hpp) maps them to
// Perfetto/Chrome trace.json names and args per kind.

#include <atomic>
#include <cstdint>
#include <cstddef>
#include <memory>
#include <vector>

namespace pls::obs {

/// What happened.  Kind-specific args (a, b, lp) are documented per
/// enumerator; `dur_ns == 0` marks an instant, `> 0` a span.
enum class TraceKind : std::uint16_t {
  kExecBatch = 0,   ///< span: lp, a = events in batch, b = virtual time
  kRollback,        ///< instant: lp, a = events undone, b = 1 if secondary
  kGvtStart,        ///< instant (node 0): a = round
  kGvtJoin,         ///< instant: a = round, b = local min reported
  kGvtDone,         ///< instant (node 0): a = round, b = new GVT
  kFossil,          ///< span: a = events committed, b = live entries after
  kThrottle,        ///< instant: a = window after, b = fraction*1e6,
                    ///<          lp = direction + 1 (0 shrink/1 hold/2 grow)
  kRepartition,     ///< span (node 0): a = LPs moved (0 = evaluated only),
                    ///<               b = completed GVT rounds
  kMigrateFreeze,   ///< span: lp, a = events cancelled at the source
  kMigrateShip,     ///< instant: lp, a = destination node, b = events shipped
  kMigrateInstall,  ///< instant: lp, a = source node, b = events in package
  kFlush,           ///< instant: a = messages flushed this burst end,
                    ///<          b = cumulative batches flushed
};

/// Stable lowercase name used in exports ("exec", "rollback", ...).
const char* to_string(TraceKind kind) noexcept;

struct TraceEvent {
  std::uint64_t ts_ns = 0;   ///< steady-clock timestamp (util::steady_now_ns)
  std::uint64_t dur_ns = 0;  ///< 0 = instant
  std::uint64_t a = 0;
  std::uint64_t b = 0;
  std::uint32_t lp = ~std::uint32_t{0};
  TraceKind kind = TraceKind::kExecBatch;
};

class TraceRing {
 public:
  /// Capacity is rounded up to a power of two (min 16).
  explicit TraceRing(std::size_t capacity);

  // Movable so sessions can hold rings by value (the counter is only
  // moved between recordings, never concurrently with the producer).
  TraceRing(TraceRing&& o) noexcept
      : slots_(std::move(o.slots_)), mask_(o.mask_),
        count_(o.count_.load(std::memory_order_relaxed)) {}
  TraceRing& operator=(TraceRing&& o) noexcept {
    slots_ = std::move(o.slots_);
    mask_ = o.mask_;
    count_.store(o.count_.load(std::memory_order_relaxed),
                 std::memory_order_relaxed);
    return *this;
  }

  std::size_t capacity() const noexcept { return mask_ + 1; }

  /// Producer-only.  Never blocks, never allocates; overwrites the oldest
  /// event when full (counted by dropped()).
  void record(const TraceEvent& ev) noexcept {
    const std::uint64_t n = count_.load(std::memory_order_relaxed);
    slots_[n & mask_] = ev;
    count_.store(n + 1, std::memory_order_release);
  }

  /// Convenience: record an instant with the current fields filled in.
  void record(TraceKind kind, std::uint64_t ts_ns, std::uint64_t dur_ns,
              std::uint64_t a, std::uint64_t b,
              std::uint32_t lp = ~std::uint32_t{0}) noexcept {
    TraceEvent ev;
    ev.ts_ns = ts_ns;
    ev.dur_ns = dur_ns;
    ev.a = a;
    ev.b = b;
    ev.lp = lp;
    ev.kind = kind;
    record(ev);
  }

  /// Events ever recorded (including overwritten ones).
  std::uint64_t recorded() const noexcept {
    return count_.load(std::memory_order_acquire);
  }
  /// Events lost to overwriting — exact: recorded() - min(recorded(), cap).
  std::uint64_t dropped() const noexcept {
    const std::uint64_t n = recorded();
    return n > capacity() ? n - capacity() : 0;
  }
  /// Events currently held.
  std::size_t size() const noexcept {
    const std::uint64_t n = recorded();
    return n < capacity() ? static_cast<std::size_t>(n) : capacity();
  }

  /// The surviving events, oldest first.  Reader-side: only call after the
  /// producer thread has been joined (post-run or post-stall).
  std::vector<TraceEvent> snapshot() const;
  /// The newest `n` surviving events, oldest first.
  std::vector<TraceEvent> tail(std::size_t n) const;

 private:
  std::unique_ptr<TraceEvent[]> slots_;
  std::size_t mask_ = 0;
  std::atomic<std::uint64_t> count_{0};
};

}  // namespace pls::obs
