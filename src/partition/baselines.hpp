#pragma once
// The five baseline partitioning strategies of the study (paper §2, §5):
//
//   Random       — nodes assigned to partitions randomly, load balanced
//                  (Kravitz & Ackland [15]); communication is its bottleneck.
//   DepthFirst   — depth-first traversal of the circuit graph; gates are
//                  assigned to partitions in traversal order [11].
//   Cluster      — breadth-first variant of the same idea (the paper's
//                  "Cluster (Breadth First)" strategy).
//   Topological  — levelize the circuit, then assign nodes at the same
//                  topological level to a partition (Cloutier [5],
//                  Smith [19]); concurrency-friendly but cut-heavy.
//   Cone         — fanout-cone clustering starting from the input gates
//                  (Smith [19]); low communication, decent concurrency.
//
// All are deterministic given (circuit, k, seed).

#include "partition/partition.hpp"

namespace pls::partition {

class RandomPartitioner final : public Partitioner {
 public:
  std::string name() const override { return "Random"; }
  Partition run(const circuit::Circuit& c, std::uint32_t k,
                std::uint64_t seed) const override;
};

class DepthFirstPartitioner final : public Partitioner {
 public:
  std::string name() const override { return "DFS"; }
  Partition run(const circuit::Circuit& c, std::uint32_t k,
                std::uint64_t seed) const override;
};

/// Breadth-first "Cluster" partitioner.
class BfsClusterPartitioner final : public Partitioner {
 public:
  std::string name() const override { return "Cluster"; }
  Partition run(const circuit::Circuit& c, std::uint32_t k,
                std::uint64_t seed) const override;
};

class TopologicalPartitioner final : public Partitioner {
 public:
  std::string name() const override { return "Topological"; }
  Partition run(const circuit::Circuit& c, std::uint32_t k,
                std::uint64_t seed) const override;
};

class FanoutConePartitioner final : public Partitioner {
 public:
  std::string name() const override { return "ConePartition"; }
  Partition run(const circuit::Circuit& c, std::uint32_t k,
                std::uint64_t seed) const override;
};

}  // namespace pls::partition
