#include "partition/coarsen.hpp"

#include <algorithm>
#include <numeric>
#include <tuple>

#include "util/check.hpp"
#include "util/rng.hpp"

namespace pls::partition {
namespace {

/// Internal working representation of one level: directed out-adjacency
/// (needed by fanout coarsening), vertex weights, flags.
struct WorkLevel {
  std::vector<std::uint32_t> vweight;
  std::vector<std::uint8_t> contains_input;
  std::vector<std::uint8_t> is_start;  ///< traversal roots for this level
  /// Directed out-edges with weights (deduplicated per source vertex).
  std::vector<std::vector<graph::Edge>> out;
  /// Part id per vertex when CoarsenOptions::respect_parts is set (merges
  /// stay within a part); empty = unconstrained.
  std::vector<std::uint32_t> part;

  std::size_t size() const noexcept { return vweight.size(); }
  bool cross_part(std::uint32_t a, std::uint32_t b) const noexcept {
    return !part.empty() && part[a] != part[b];
  }
};

WorkLevel base_level(const circuit::Circuit& c,
                     const multilevel::VertexTrafficWeights* weights,
                     const std::vector<std::uint32_t>* respect_parts) {
  if (weights != nullptr) {
    PLS_CHECK_MSG(weights->vertex.size() == c.size() &&
                      weights->traffic.size() == c.size(),
                  "weights must cover every gate");
  }
  WorkLevel w;
  const auto n = c.size();
  if (weights != nullptr) {
    w.vweight.assign(weights->vertex.begin(), weights->vertex.end());
  } else {
    w.vweight.assign(n, 1);
  }
  w.contains_input.assign(n, 0);
  w.is_start.assign(n, 0);
  w.out.resize(n);
  if (respect_parts != nullptr) {
    PLS_CHECK_MSG(respect_parts->size() == n,
                  "respect_parts must cover every gate");
    w.part = *respect_parts;
  }
  for (circuit::GateId pi : c.primary_inputs()) {
    w.contains_input[pi] = 1;
    w.is_start[pi] = 1;
  }
  for (circuit::GateId g = 0; g < n; ++g) {
    const auto outs = c.fanouts(g);
    auto& row = w.out[g];
    row.reserve(outs.size());
    // Traffic scaling: a busy driver's signal is more expensive to cut, so
    // its edges weigh more and the coarsener keeps its fanout together
    // (paper §6 "activity levels of communication").
    const std::uint32_t base_weight =
        weights != nullptr ? weights->traffic[g] : 1;
    for (circuit::GateId t : outs) {
      if (t == g) continue;
      auto it = std::find_if(row.begin(), row.end(),
                             [&](const graph::Edge& e) { return e.to == t; });
      if (it == row.end()) {
        row.push_back(graph::Edge{t, base_weight});
      } else {
        it->weight += base_weight;
      }
    }
  }
  return w;
}

/// One round of the paper's fanout coarsening; returns the fine-vertex →
/// globule map and the globule count.
std::pair<std::vector<std::uint32_t>, std::size_t> fanout_round(
    const WorkLevel& lvl, std::uint64_t max_weight, util::Rng& rng) {
  const std::size_t n = lvl.size();
  constexpr std::uint32_t kNone = ~std::uint32_t{0};
  std::vector<std::uint32_t> globule(n, kNone);
  std::vector<std::uint8_t> glob_has_input;  // indexed by globule id
  std::vector<std::uint64_t> glob_weight;    // indexed by globule id
  std::vector<std::uint8_t> visited(n, 0);
  std::uint32_t next_globule = 0;

  // A vertex *chosen* for coarsening forms a globule with every
  // still-unmerged vertex on its fanout; a vertex already absorbed into a
  // globule has been "coarsened once" this level and may not be chosen
  // again — the depth-first walk just continues through it.
  auto choose = [&](std::uint32_t v) {
    if (globule[v] != kNone) return;
    const std::uint32_t g = next_globule++;
    globule[v] = g;
    glob_has_input.push_back(lvl.contains_input[v]);
    glob_weight.push_back(lvl.vweight[v]);
    for (const graph::Edge& e : lvl.out[v]) {
      const std::uint32_t t = e.to;
      if (globule[t] != kNone) continue;           // coarsened once per level
      if (lvl.cross_part(v, t)) continue;          // respect_parts
      if (glob_has_input[g] && lvl.contains_input[t]) continue;  // PI rule
      if (max_weight != 0 && glob_weight[g] + lvl.vweight[t] > max_weight) {
        continue;  // weight cap: keep globules movable by refinement
      }
      globule[t] = g;
      glob_weight[g] += lvl.vweight[t];
      if (lvl.contains_input[t]) glob_has_input[g] = 1;
    }
  };

  // Depth-first traversal seeded by the level's start vertices (primary
  // inputs at level 0; previously-merged globules afterwards), then by every
  // remaining vertex so flip-flop islands and disconnected logic are
  // covered.  Start order is randomized: repeated runs with different seeds
  // explore different, equally legal coarsenings.
  std::vector<std::uint32_t> roots;
  roots.reserve(n);
  for (std::uint32_t v = 0; v < n; ++v) {
    if (lvl.is_start[v]) roots.push_back(v);
  }
  rng.shuffle(roots);
  for (std::uint32_t v = 0; v < n; ++v) roots.push_back(v);

  std::vector<std::uint32_t> stack;
  for (const std::uint32_t root : roots) {
    if (visited[root]) continue;
    stack.push_back(root);
    visited[root] = 1;
    while (!stack.empty()) {
      const std::uint32_t v = stack.back();
      stack.pop_back();
      choose(v);
      for (auto it = lvl.out[v].rbegin(); it != lvl.out[v].rend(); ++it) {
        if (!visited[it->to]) {
          visited[it->to] = 1;
          stack.push_back(it->to);
        }
      }
    }
  }

  for (std::uint32_t v = 0; v < n; ++v) {
    if (globule[v] == kNone) {  // defensive: fallback roots cover everything
      globule[v] = next_globule++;
      glob_has_input.push_back(lvl.contains_input[v]);
    }
  }
  return {std::move(globule), next_globule};
}

/// Heavy-edge matching round (alternative scheme): visit vertices in random
/// order; match each unmatched vertex with the unmatched neighbour across
/// its heaviest incident edge, respecting the primary-input rule.
std::pair<std::vector<std::uint32_t>, std::size_t> heavy_edge_round(
    const WorkLevel& lvl, std::uint64_t max_weight, util::Rng& rng) {
  const std::size_t n = lvl.size();
  constexpr std::uint32_t kNone = ~std::uint32_t{0};
  std::vector<std::uint32_t> globule(n, kNone);
  std::uint32_t next_globule = 0;

  std::vector<std::vector<graph::Edge>> nbr(n);
  for (std::uint32_t v = 0; v < n; ++v) {
    for (const graph::Edge& e : lvl.out[v]) {
      nbr[v].push_back(e);
      nbr[e.to].push_back(graph::Edge{v, e.weight});
    }
  }

  std::vector<std::uint32_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  rng.shuffle(order);

  for (std::uint32_t v : order) {
    if (globule[v] != kNone) continue;
    std::uint32_t best = kNone;
    std::uint32_t best_w = 0;
    for (const graph::Edge& e : nbr[v]) {
      if (globule[e.to] != kNone) continue;
      if (lvl.cross_part(v, e.to)) continue;  // respect_parts
      if (lvl.contains_input[v] && lvl.contains_input[e.to]) continue;
      if (max_weight != 0 &&
          std::uint64_t{lvl.vweight[v]} + lvl.vweight[e.to] > max_weight) {
        continue;
      }
      if (e.weight > best_w) {
        best_w = e.weight;
        best = e.to;
      }
    }
    globule[v] = next_globule;
    if (best != kNone) globule[best] = next_globule;
    ++next_globule;
  }
  return {std::move(globule), next_globule};
}

/// Contract a level through `globule` into the next WorkLevel, filling in
/// the public CoarseLevel (symmetrized graph + parent map) on the way.
WorkLevel contract(const WorkLevel& fine,
                   const std::vector<std::uint32_t>& globule,
                   std::size_t num_globules, CoarseLevel* out_level) {
  WorkLevel coarse;
  coarse.vweight.assign(num_globules, 0);
  coarse.contains_input.assign(num_globules, 0);
  coarse.is_start.assign(num_globules, 0);
  coarse.out.resize(num_globules);
  if (!fine.part.empty()) coarse.part.assign(num_globules, 0);

  std::vector<std::uint32_t> member_count(num_globules, 0);
  for (std::size_t v = 0; v < fine.size(); ++v) {
    const std::uint32_t g = globule[v];
    coarse.vweight[g] += fine.vweight[v];
    coarse.contains_input[g] |= fine.contains_input[v];
    // All members share one part when respecting a partition.
    if (!fine.part.empty()) coarse.part[g] = fine.part[v];
    ++member_count[g];
  }
  // Next level's traversal starts at globules formed by actual merging this
  // round ("coarsening starts from vertices that were just added to a
  // globule in the previous level").
  std::size_t merged = 0;
  for (std::size_t g = 0; g < num_globules; ++g) {
    if (member_count[g] >= 2) {
      coarse.is_start[g] = 1;
      ++merged;
    }
  }

  // The edge set of a coarse vertex is the union of its members' edges
  // (paper §3): self-loops dropped, parallel edges merged with summed
  // weight.
  for (std::size_t v = 0; v < fine.size(); ++v) {
    const std::uint32_t gs = globule[v];
    for (const graph::Edge& e : fine.out[v]) {
      const std::uint32_t gt = globule[e.to];
      if (gs == gt) continue;
      coarse.out[gs].push_back(graph::Edge{gt, e.weight});
    }
  }
  for (auto& row : coarse.out) {
    std::sort(row.begin(), row.end(),
              [](const graph::Edge& a, const graph::Edge& b) {
                return a.to < b.to;
              });
    std::vector<graph::Edge> dedup;
    dedup.reserve(row.size());
    for (const graph::Edge& e : row) {
      if (!dedup.empty() && dedup.back().to == e.to) {
        dedup.back().weight += e.weight;
      } else {
        dedup.push_back(e);
      }
    }
    row = std::move(dedup);
  }

  if (out_level != nullptr) {
    std::vector<std::tuple<graph::VertexId, graph::VertexId, std::uint32_t>>
        sym_edges;
    for (std::uint32_t gs = 0; gs < coarse.out.size(); ++gs) {
      for (const graph::Edge& e : coarse.out[gs]) {
        sym_edges.emplace_back(gs, e.to, e.weight);
      }
    }
    out_level->graph = graph::WeightedGraph(coarse.vweight, sym_edges);
    out_level->parent_map = globule;
    out_level->contains_input = coarse.contains_input;
    out_level->merged_globules = merged;
  }
  return coarse;
}

}  // namespace

Hierarchy coarsen(const circuit::Circuit& c, const CoarsenOptions& opt) {
  PLS_CHECK_MSG(c.frozen(), "coarsen requires a frozen circuit");
  const std::size_t threshold = opt.threshold == 0 ? 64 : opt.threshold;
  util::Rng rng(opt.seed);

  Hierarchy h;
  WorkLevel cur = base_level(c, opt.weights, opt.respect_parts);

  // Public G0 view (for final-level refinement).
  {
    std::vector<std::tuple<graph::VertexId, graph::VertexId, std::uint32_t>>
        edges;
    for (std::uint32_t v = 0; v < cur.size(); ++v) {
      for (const graph::Edge& e : cur.out[v]) {
        edges.emplace_back(v, e.to, e.weight);
      }
    }
    h.base = graph::WeightedGraph(cur.vweight, edges);
    h.base_contains_input = cur.contains_input;
  }

  while (h.levels.size() < opt.max_levels && cur.size() > threshold) {
    // Halt if every globule is an input globule: nothing legal remains to
    // combine (the paper's second stopping condition).
    const bool all_inputs =
        std::all_of(cur.contains_input.begin(), cur.contains_input.end(),
                    [](std::uint8_t b) { return b != 0; });
    if (all_inputs) break;

    auto [globule, count] =
        opt.scheme == CoarsenScheme::kFanout
            ? fanout_round(cur, opt.max_globule_weight, rng)
            : heavy_edge_round(cur, opt.max_globule_weight, rng);
    if (count == cur.size()) break;  // no merges happened; stuck

    CoarseLevel level;
    cur = contract(cur, globule, count, &level);
    h.levels.push_back(std::move(level));
  }
  return h;
}

void check_hierarchy_invariants(const Hierarchy& h) {
  const graph::WeightedGraph* fine = &h.base;
  const std::vector<std::uint8_t>* fine_inputs = &h.base_contains_input;
  for (std::size_t li = 0; li < h.levels.size(); ++li) {
    const CoarseLevel& lvl = h.levels[li];
    PLS_CHECK_MSG(lvl.parent_map.size() == fine->num_vertices(),
                  "level " << li << " parent map incomplete");
    // Disjoint cover: the map is total; every coarse vertex has >=1 member;
    // coarse vertex weight equals the sum of member weights; at most one
    // primary input per globule (transitively).
    std::vector<std::uint64_t> wsum(lvl.graph.num_vertices(), 0);
    std::vector<std::uint32_t> input_members(lvl.graph.num_vertices(), 0);
    for (graph::VertexId v = 0; v < fine->num_vertices(); ++v) {
      const std::uint32_t p = lvl.parent_map[v];
      PLS_CHECK_MSG(p < lvl.graph.num_vertices(),
                    "level " << li << " parent out of range");
      wsum[p] += fine->vertex_weight(v);
      input_members[p] += (*fine_inputs)[v] ? 1 : 0;
    }
    for (graph::VertexId g = 0; g < lvl.graph.num_vertices(); ++g) {
      PLS_CHECK_MSG(wsum[g] == lvl.graph.vertex_weight(g),
                    "level " << li << " globule " << g
                             << " weight mismatch: members sum to " << wsum[g]
                             << ", graph says "
                             << lvl.graph.vertex_weight(g));
      PLS_CHECK_MSG(wsum[g] > 0, "level " << li << " empty globule " << g);
      PLS_CHECK_MSG(input_members[g] <= 1,
                    "level " << li << " globule " << g << " combines "
                             << input_members[g] << " primary inputs");
      PLS_CHECK_MSG((lvl.contains_input[g] != 0) == (input_members[g] == 1),
                    "level " << li << " globule " << g
                             << " contains_input flag inconsistent");
    }
    fine = &lvl.graph;
    fine_inputs = &lvl.contains_input;
  }
}

}  // namespace pls::partition
