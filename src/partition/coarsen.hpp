#pragma once
// Coarsening phase of the multilevel algorithm (paper §3, Figure 1).
//
// Produces the hierarchical sequence of graphs G1, G2, …, Gm from the
// original circuit graph G0.  Each vertex of a lower-level graph (a
// "globule") represents a set of connected vertices of the level above.
// Two constraints from the paper are enforced:
//   * a vertex is coarsened at most once per level, and
//   * globules that contain a primary-input vertex are never combined with
//     each other (this preserves concurrency: inputs stay spread out).
// Coarsening halts when the globule count falls below a threshold or when
// no further combination is possible (e.g. all globules are input
// globules).
//
// The default scheme is the paper's *fanout coarsening*: traversal starts
// from the primary inputs and proceeds depth-first; a vertex chosen for
// coarsening is combined with all (still-unmerged, legal) vertices on its
// output signal's fanout.  At levels after the first, traversal starts from
// the globules formed by merging in the previous level.  Alternative
// schemes (paper §6 future work): heavy-edge matching, and activity-
// weighted variants of both (edge weights scaled by profiled gate
// activity).

#include <cstdint>
#include <optional>
#include <vector>

#include "circuit/circuit.hpp"
#include "graph/weighted_graph.hpp"
#include "multilevel/weights.hpp"

namespace pls::partition {

enum class CoarsenScheme {
  kFanout,     ///< the paper's scheme
  kHeavyEdge,  ///< maximal matching on heaviest incident edges
};

struct CoarsenOptions {
  /// Stop once the globule count is <= threshold. 0 = caller default.
  std::size_t threshold = 64;
  std::size_t max_levels = 64;
  CoarsenScheme scheme = CoarsenScheme::kFanout;
  std::uint64_t seed = 1;
  /// Largest weight a single globule may reach (0 = unlimited).  Without a
  /// cap, fanout coarsening along high-fanout control nets produces
  /// globules heavier than a whole partition, making the initial phase's
  /// "load sufficiently balanced" goal unattainable; the multilevel
  /// partitioner sets this to a fraction of the ideal per-part load.
  std::uint64_t max_globule_weight = 0;
  /// Optional activity-derived weights (multilevel/weights.hpp).  When
  /// present, G0's vertex weights carry per-gate work and its edge weights
  /// carry the driver's traffic weight, so the coarsener preferentially
  /// keeps busy signals inside globules and the balance phases budget by
  /// real load (paper §6).  Must outlive the coarsen() call; nullptr means
  /// unit weights.
  const multilevel::VertexTrafficWeights* weights = nullptr;
  /// Optional partition to respect (one part id per gate): vertices merge
  /// only with vertices of the same part, so a partition-shaped seed lifts
  /// losslessly to every level — the warm start of the iterated V-cycle
  /// used by incremental repartitioning (multilevel::run_iterated_vcycle).
  /// Must outlive the coarsen() call; nullptr means unconstrained.
  const std::vector<std::uint32_t>* respect_parts = nullptr;
};

/// One coarse level G_{i+1} derived from the level below it.
struct CoarseLevel {
  graph::WeightedGraph graph;             ///< symmetrized, for refinement
  std::vector<std::uint32_t> parent_map;  ///< finer vertex -> this level's vertex
  std::vector<std::uint8_t> contains_input;  ///< per vertex of this level
  std::size_t merged_globules = 0;  ///< vertices formed by >=2 members
};

/// The full multilevel hierarchy.  levels[0] maps G0's vertices into G1,
/// levels[i] maps G_i's vertices into G_{i+1}.
struct Hierarchy {
  graph::WeightedGraph base;                 ///< G0 (symmetrized circuit)
  std::vector<std::uint8_t> base_contains_input;
  std::vector<CoarseLevel> levels;           ///< G1 … Gm

  const graph::WeightedGraph& coarsest() const {
    return levels.empty() ? base : levels.back().graph;
  }
  const std::vector<std::uint8_t>& coarsest_contains_input() const {
    return levels.empty() ? base_contains_input
                          : levels.back().contains_input;
  }
  std::size_t num_levels() const noexcept { return levels.size(); }
};

/// Build the hierarchy for a frozen circuit.  O(|E|) per level.
Hierarchy coarsen(const circuit::Circuit& c, const CoarsenOptions& opt);

/// Validate the paper's structural invariants of a hierarchy: parent maps
/// are total and surjective, coarse vertex weights are the sums of their
/// members' weights, and no coarse vertex combines two input vertices.
/// Throws util::CheckError on violation (used by tests).
void check_hierarchy_invariants(const Hierarchy& h);

}  // namespace pls::partition
