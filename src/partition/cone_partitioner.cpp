// Fanout-cone partitioner (Smith [19]).
//
// "A partitioning scheme based on fanout/fanin cone clustering starting
// from the input gates" (paper §2).  Each primary input's fanout cone is a
// natural cluster: all logic it can excite.  Cones are assigned, largest
// first, to the currently least-loaded partition; gates in multiple cones
// stay where the first (largest) cone put them; logic not reachable from
// any primary input (flip-flop-fed islands) is swept up afterwards by
// following the same least-loaded rule cone-by-cone from the flip-flops.

#include <algorithm>
#include <numeric>

#include "circuit/cones.hpp"
#include "partition/baselines.hpp"
#include "util/check.hpp"

namespace pls::partition {

Partition FanoutConePartitioner::run(const circuit::Circuit& c,
                                     std::uint32_t k,
                                     std::uint64_t /*seed*/) const {
  PLS_CHECK(k >= 1);
  constexpr PartId kUnassigned = ~PartId{0};
  Partition p;
  p.k = k;
  p.assign.assign(c.size(), kUnassigned);
  std::vector<std::uint64_t> load(k, 0);

  auto least_loaded = [&]() -> PartId {
    return static_cast<PartId>(
        std::min_element(load.begin(), load.end()) - load.begin());
  };

  auto place_cone = [&](circuit::GateId root) {
    const auto cone = circuit::fanout_cone(c, root, /*through_dff=*/false);
    // Count how much of the cone is still unassigned; empty remainder means
    // nothing to do.
    std::uint64_t fresh = 0;
    for (circuit::GateId g : cone) fresh += (p.assign[g] == kUnassigned);
    if (fresh == 0) return;
    const PartId target = least_loaded();
    for (circuit::GateId g : cone) {
      if (p.assign[g] == kUnassigned) {
        p.assign[g] = target;
        ++load[target];
      }
    }
  };

  // Largest input cones first: big cones dominate load, so placing them
  // first onto the emptiest node gives the best packing.
  std::vector<std::pair<std::size_t, circuit::GateId>> by_size;
  for (circuit::GateId pi : c.primary_inputs()) {
    by_size.emplace_back(circuit::fanout_cone(c, pi).size(), pi);
  }
  std::sort(by_size.begin(), by_size.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });
  for (const auto& [size, pi] : by_size) place_cone(pi);

  // Sweep flip-flop-rooted cones for logic unreachable from the inputs.
  for (circuit::GateId ff : c.flip_flops()) {
    if (p.assign[ff] == kUnassigned) place_cone(ff);
  }
  // Anything still left (isolated gates) goes to the least-loaded part.
  for (circuit::GateId g = 0; g < c.size(); ++g) {
    if (p.assign[g] == kUnassigned) {
      const PartId target = least_loaded();
      p.assign[g] = target;
      ++load[target];
    }
  }
  return p;
}

}  // namespace pls::partition
