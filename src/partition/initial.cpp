#include "partition/initial.hpp"

#include <algorithm>
#include <numeric>

#include "multilevel/balance.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace pls::partition {

Partition initial_partition(const graph::WeightedGraph& g,
                            const std::vector<std::uint8_t>& contains_input,
                            const InitialOptions& opt) {
  PLS_CHECK(opt.k >= 1);
  PLS_CHECK(contains_input.size() == g.num_vertices());
  util::Rng rng(opt.seed);

  Partition p;
  p.k = opt.k;
  p.assign.assign(g.num_vertices(), 0);

  std::vector<std::uint64_t> load(opt.k, 0);
  const std::uint64_t limit = multilevel::balance_limit(
      g.total_vertex_weight(), opt.k, opt.balance_tol);

  auto least_loaded = [&]() -> PartId {
    return static_cast<PartId>(
        std::min_element(load.begin(), load.end()) - load.begin());
  };

  // Phase 1: spread the input globules equally across the partitions.
  // Heaviest first onto the least-loaded part — "split equally … such that
  // the load is sufficiently balanced" — which both balances weight and
  // guarantees each part gets ~|inputs|/k input globules (concurrency).
  std::vector<graph::VertexId> inputs;
  std::vector<graph::VertexId> rest;
  for (graph::VertexId v = 0; v < g.num_vertices(); ++v) {
    (contains_input[v] ? inputs : rest).push_back(v);
  }
  std::sort(inputs.begin(), inputs.end(),
            [&](graph::VertexId a, graph::VertexId b) {
              return g.vertex_weight(a) > g.vertex_weight(b);
            });
  for (graph::VertexId v : inputs) {
    const PartId target = least_loaded();
    p.assign[v] = target;
    load[target] += g.vertex_weight(v);
  }

  // Phase 2: remaining globules in random order to a random part that
  // stays under the balance limit; least-loaded as a fallback when no part
  // can take the globule within tolerance.
  rng.shuffle(rest);
  for (graph::VertexId v : rest) {
    const std::uint64_t w = g.vertex_weight(v);
    PartId target = opt.k;  // sentinel: unset
    const auto start = static_cast<PartId>(rng.below(opt.k));
    for (std::uint32_t probe = 0; probe < opt.k; ++probe) {
      const PartId cand = (start + probe) % opt.k;
      if (load[cand] + w <= limit) {
        target = cand;
        break;
      }
    }
    if (target == opt.k) target = least_loaded();
    p.assign[v] = target;
    load[target] += w;
  }
  return p;
}

}  // namespace pls::partition
