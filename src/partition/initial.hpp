#pragma once
// Initial partitioning phase of the multilevel algorithm (paper §3).
//
// At the coarsest level a k-way partition is formed: "all the input
// globules in the coarsest level are split equally across the partitions
// such that the load is sufficiently balanced.  Any remaining globules are
// assigned to partitions in a random manner, maintaining load balance."

#include <cstdint>
#include <vector>

#include "graph/weighted_graph.hpp"
#include "partition/partition.hpp"

namespace pls::partition {

struct InitialOptions {
  std::uint32_t k = 2;
  std::uint64_t seed = 1;
  /// Load-balance tolerance: a part may not exceed ceil(W/k)·(1+tol)
  /// during random assignment, except when a single globule alone exceeds
  /// it (then least-loaded placement is used).
  double balance_tol = 0.10;
};

/// k-way initial partition of the coarsest globule graph.
Partition initial_partition(const graph::WeightedGraph& g,
                            const std::vector<std::uint8_t>& contains_input,
                            const InitialOptions& opt);

}  // namespace pls::partition
