#include "partition/metrics.hpp"

#include <algorithm>
#include <vector>

#include "circuit/levelize.hpp"
#include "multilevel/metrics.hpp"
#include "util/check.hpp"

namespace pls::partition {

std::uint64_t edge_cut(const circuit::Circuit& c, const Partition& p) {
  p.validate(c.size());
  std::uint64_t cut = 0;
  for (circuit::GateId g = 0; g < c.size(); ++g) {
    for (circuit::GateId f : c.fanins(g)) {
      if (p.assign[f] != p.assign[g]) ++cut;
    }
  }
  return cut;
}

std::uint64_t edge_cut(const graph::WeightedGraph& g, const Partition& p) {
  p.validate(g.num_vertices());
  std::uint64_t cut = 0;
  for (graph::VertexId v = 0; v < g.num_vertices(); ++v) {
    for (const auto& e : g.neighbors(v)) {
      if (e.to > v && p.assign[e.to] != p.assign[v]) cut += e.weight;
    }
  }
  return cut;
}

double imbalance(const circuit::Circuit& c, const Partition& p) {
  p.validate(c.size());
  return multilevel::imbalance_from_loads(p.loads(), c.size(), p.k);
}

double imbalance(const graph::WeightedGraph& g, const Partition& p) {
  p.validate(g.num_vertices());
  std::vector<std::uint32_t> w(g.num_vertices());
  for (graph::VertexId v = 0; v < g.num_vertices(); ++v) {
    w[v] = g.vertex_weight(v);
  }
  return multilevel::imbalance_from_loads(p.loads(w), g.total_vertex_weight(),
                                          p.k);
}

double concurrency(const circuit::Circuit& c, const Partition& p) {
  p.validate(c.size());
  const auto lv = circuit::levelize(c);
  double weighted_sum = 0.0;
  double weight_total = 0.0;
  std::vector<std::uint64_t> per_part(p.k);
  for (const auto& gates : lv.by_level) {
    if (gates.empty()) continue;
    std::fill(per_part.begin(), per_part.end(), 0);
    for (circuit::GateId g : gates) ++per_part[p.assign[g]];
    const std::uint64_t mx =
        *std::max_element(per_part.begin(), per_part.end());
    // Perfectly spread level: max = ceil(n / min(k, n)).  Score is the ratio
    // of that ideal to the actual bottleneck part.
    const auto n = static_cast<std::uint64_t>(gates.size());
    const std::uint64_t eff_k = std::min<std::uint64_t>(p.k, n);
    const std::uint64_t ideal_max = (n + eff_k - 1) / eff_k;
    const double score =
        static_cast<double>(ideal_max) / static_cast<double>(mx);
    weighted_sum += score * static_cast<double>(n);
    weight_total += static_cast<double>(n);
  }
  return weight_total > 0 ? weighted_sum / weight_total : 1.0;
}

std::uint64_t comm_volume(const circuit::Circuit& c, const Partition& p) {
  p.validate(c.size());
  std::uint64_t volume = 0;
  std::vector<PartId> seen;
  for (circuit::GateId g = 0; g < c.size(); ++g) {
    seen.clear();
    const PartId home = p.assign[g];
    for (circuit::GateId out : c.fanouts(g)) {
      const PartId q = p.assign[out];
      if (q == home) continue;
      if (std::find(seen.begin(), seen.end(), q) == seen.end()) {
        seen.push_back(q);
      }
    }
    volume += seen.size();
  }
  return volume;
}

}  // namespace pls::partition
