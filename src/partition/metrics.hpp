#pragma once
// Static partition-quality metrics.
//
// The paper evaluates partitions dynamically (execution time, messages,
// rollbacks) but reasons about them statically through three properties the
// multilevel algorithm explicitly balances (§1, §3): inter-processor
// communication (edge cut), load balance, and concurrency.  These metrics
// quantify each and drive the bench_partition_quality harness plus many
// property tests.

#include <cstdint>

#include "circuit/circuit.hpp"
#include "graph/weighted_graph.hpp"
#include "partition/partition.hpp"

namespace pls::partition {

/// Number of directed circuit edges (signal connections) whose endpoints
/// lie in different parts — the paper's "edges cut" quality measure.
std::uint64_t edge_cut(const circuit::Circuit& c, const Partition& p);

/// Weighted cut of a (possibly coarsened) partitioning graph.
std::uint64_t edge_cut(const graph::WeightedGraph& g, const Partition& p);

/// Load imbalance: max part load / ideal load (1.0 = perfect).  Unit gate
/// weights, matching the paper's "equal number of vertices" balance notion.
double imbalance(const circuit::Circuit& c, const Partition& p);
double imbalance(const graph::WeightedGraph& g, const Partition& p);

/// Concurrency metric in [0,1]: how evenly each topological level's gates
/// spread over the k parts, averaged over levels weighted by level size.
/// 1.0 means every level could execute with all k nodes busy (or is smaller
/// than k but perfectly spread); a single-part assignment of every level
/// scores 1/k.  This captures the paper's "equal number of gates are active
/// in each partition at any simulation instance" ideal (§3).
double concurrency(const circuit::Circuit& c, const Partition& p);

/// Total communication volume (λ−1 metric): for each gate, the number of
/// distinct *other* parts its fanout touches, summed.  Counts each logical
/// signal broadcast once per destination node, which is exactly the number
/// of inter-node application messages one signal transition generates in
/// the Time Warp layer.
std::uint64_t comm_volume(const circuit::Circuit& c, const Partition& p);

}  // namespace pls::partition
