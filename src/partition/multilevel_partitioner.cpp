#include "partition/multilevel_partitioner.hpp"

#include <algorithm>

#include "partition/initial.hpp"
#include "partition/metrics.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace pls::partition {

Partition MultilevelPartitioner::run(const circuit::Circuit& c,
                                     std::uint32_t k,
                                     std::uint64_t seed) const {
  return run_traced(c, k, seed, nullptr);
}

Partition MultilevelPartitioner::run_traced(const circuit::Circuit& c,
                                            std::uint32_t k,
                                            std::uint64_t seed,
                                            MultilevelTrace* trace) const {
  PLS_CHECK(k >= 1);
  util::SplitMix64 seeder(seed);

  // ---- Phase 1: coarsening --------------------------------------------
  CoarsenOptions copt;
  copt.threshold = opt_.coarsen_threshold != 0
                       ? opt_.coarsen_threshold
                       : std::max<std::size_t>(std::size_t{4} * k, 64);
  copt.scheme = opt_.scheme;
  copt.seed = seeder.next();
  copt.activity = opt_.activity;
  // Cap globules at a quarter of the ideal per-part load so the initial
  // phase can balance and refinement retains movable units.
  copt.max_globule_weight = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(c.size()) / (std::uint64_t{4} * k));
  const Hierarchy h = coarsen(c, copt);

  if (trace != nullptr) {
    trace->level_sizes.clear();
    for (const auto& lvl : h.levels) {
      trace->level_sizes.push_back(lvl.graph.num_vertices());
    }
  }

  // ---- Phase 2: initial k-way partitioning at the coarsest level ------
  InitialOptions iopt;
  iopt.k = k;
  iopt.seed = seeder.next();
  iopt.balance_tol = opt_.balance_tol;
  Partition p = initial_partition(h.coarsest(), h.coarsest_contains_input(),
                                  iopt);
  if (trace != nullptr) trace->initial_cut = edge_cut(h.coarsest(), p);

  // ---- Phase 3: refinement, projecting from G_m down to G_0 -----------
  const auto refiner = make_refiner(opt_.refiner);
  RefineOptions ropt;
  ropt.balance_tol = opt_.balance_tol;
  ropt.max_iters = opt_.refine_iters;

  ropt.seed = seeder.next();
  refiner->refine(h.coarsest(), p, ropt);
  if (trace != nullptr) {
    trace->cut_after_level.push_back(edge_cut(h.coarsest(), p));
  }

  for (std::size_t i = h.levels.size(); i-- > 0;) {
    // Project to the next finer level: every member vertex inherits its
    // globule's partition — ∀ v ∈ V_ij : P[v] = P[V_ij] (paper §3).
    const auto& map = h.levels[i].parent_map;
    Partition finer;
    finer.k = k;
    finer.assign.resize(map.size());
    for (std::size_t v = 0; v < map.size(); ++v) {
      finer.assign[v] = p.assign[map[v]];
    }
    p = std::move(finer);

    const graph::WeightedGraph& gfine =
        i == 0 ? h.base : h.levels[i - 1].graph;
    ropt.seed = seeder.next();
    refiner->refine(gfine, p, ropt);
    if (trace != nullptr) {
      trace->cut_after_level.push_back(edge_cut(gfine, p));
    }
  }

  if (trace != nullptr) trace->final_cut = edge_cut(h.base, p);
  p.validate(c.size());
  return p;
}

}  // namespace pls::partition
