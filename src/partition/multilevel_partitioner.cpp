#include "partition/multilevel_partitioner.hpp"

#include <algorithm>

#include "partition/initial.hpp"
#include "partition/metrics.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace pls::partition {
namespace {

/// Graph instantiation of the shared V-cycle (multilevel/vcycle.hpp):
/// spread-the-inputs initial partitioning and the configured seeded
/// refiner, with edge cut as the traced quality.
struct GraphPolicy {
  std::uint32_t k;
  const MultilevelOptions& opt;
  util::SplitMix64& seeder;
  const Refiner& refiner;

  const graph::WeightedGraph& graph(const CoarseLevel& lvl) const {
    return lvl.graph;
  }
  std::size_t size(const graph::WeightedGraph& g) const {
    return g.num_vertices();
  }
  Partition initial(const graph::WeightedGraph& g,
                    const std::vector<std::uint8_t>& contains_input) {
    InitialOptions iopt;
    iopt.k = k;
    iopt.seed = seeder.next();
    iopt.balance_tol = opt.balance_tol;
    return initial_partition(g, contains_input, iopt);
  }
  void refine(const graph::WeightedGraph& g, Partition& p) {
    RefineOptions ropt;
    ropt.balance_tol = opt.balance_tol;
    ropt.max_iters = opt.refine_iters;
    ropt.seed = seeder.next();
    refiner.refine(g, p, ropt);
  }
  std::uint64_t quality(const graph::WeightedGraph& g,
                        const Partition& p) const {
    return edge_cut(g, p);
  }
};

}  // namespace

Partition MultilevelPartitioner::run(const circuit::Circuit& c,
                                     std::uint32_t k,
                                     std::uint64_t seed) const {
  return run_traced(c, k, seed, nullptr);
}

Partition MultilevelPartitioner::run_traced(const circuit::Circuit& c,
                                            std::uint32_t k,
                                            std::uint64_t seed,
                                            MultilevelTrace* trace) const {
  PLS_CHECK(k >= 1);
  util::SplitMix64 seeder(seed);

  // ---- Phase 1: coarsening --------------------------------------------
  CoarsenOptions copt;
  copt.threshold = opt_.coarsen_threshold != 0
                       ? opt_.coarsen_threshold
                       : std::max<std::size_t>(std::size_t{4} * k, 64);
  copt.scheme = opt_.scheme;
  copt.seed = seeder.next();
  copt.weights = opt_.weights;
  // Cap globules at a quarter of the ideal per-part load so the initial
  // phase can balance and refinement retains movable units.  "Load" is the
  // total work weight — the gate count when unweighted.
  const std::uint64_t total_work =
      opt_.weights != nullptr ? opt_.weights->total_vertex_weight()
                              : static_cast<std::uint64_t>(c.size());
  copt.max_globule_weight =
      std::max<std::uint64_t>(1, total_work / (std::uint64_t{4} * k));
  const Hierarchy h = coarsen(c, copt);

  // ---- Phases 2+3: the shared V-cycle ---------------------------------
  const auto refiner = make_refiner(opt_.refiner);
  GraphPolicy pol{k, opt_, seeder, *refiner};

  // Uniform weights cannot change any decision, so the plain V-cycle
  // reproduces the unweighted partition bit-identically; real weights get
  // the best-of-two guided cycle (see multilevel/vcycle.hpp).
  Partition p;
  if (opt_.weights == nullptr || opt_.weights->uniform()) {
    p = multilevel::run_vcycle(h, pol, trace);
  } else {
    // Candidate B replays the unweighted run's exact seed chain, so the
    // guided result can only improve on today's unweighted partition.
    util::SplitMix64 useeder(seed);
    CoarsenOptions ucopt = copt;
    ucopt.weights = nullptr;
    ucopt.seed = useeder.next();
    ucopt.max_globule_weight = std::max<std::uint64_t>(
        1, static_cast<std::uint64_t>(c.size()) / (std::uint64_t{4} * k));
    const Hierarchy hu = coarsen(c, ucopt);
    GraphPolicy upol{k, opt_, useeder, *refiner};
    p = multilevel::run_guided_vcycle(h, hu, pol, upol, trace);
  }
  p.validate(c.size());
  return p;
}

Partition MultilevelPartitioner::run_incremental(const circuit::Circuit& c,
                                                 std::uint32_t k,
                                                 std::uint64_t seed,
                                                 const Partition& current,
                                                 MultilevelTrace* trace) const {
  PLS_CHECK(k >= 1);
  PLS_CHECK_MSG(current.k == k && current.assign.size() == c.size(),
                "incremental repartition seed must match circuit and k");
  util::SplitMix64 seeder(seed);
  // max_levels = 0: coarsen() only builds the (weighted) finest graph —
  // the warm start replaces the hierarchy, which is where the ≥3× cost
  // advantage over a from-scratch run comes from.
  CoarsenOptions copt;
  copt.max_levels = 0;
  copt.seed = seeder.next();
  copt.weights = opt_.weights;
  const Hierarchy h = coarsen(c, copt);
  const auto refiner = make_refiner(opt_.refiner);
  GraphPolicy pol{k, opt_, seeder, *refiner};
  Partition p = multilevel::run_incremental_vcycle(h.base, pol, current, trace);
  if (p.assign == current.assign) {
    // Flat refinement fixed point: the weights did not move the optimum.
    // Return the live assignment untouched (the unchanged-weights
    // contract the kernel's skip-migration path and unit tests pin).
    return p;
  }
  // The flat pass detected drift.  Escalate to the iterated V-cycle:
  // re-coarsen respecting the live partition and refine coarsest-first,
  // so whole clusters can cross the cut — the moves a hot-region shift
  // demands and single-vertex refinement cannot reach.
  CoarsenOptions icopt;
  icopt.threshold = opt_.coarsen_threshold != 0
                        ? opt_.coarsen_threshold
                        : std::max<std::size_t>(std::size_t{4} * k, 64);
  icopt.scheme = opt_.scheme;
  icopt.seed = seeder.next();
  icopt.weights = opt_.weights;
  const std::uint64_t total_work =
      opt_.weights != nullptr ? opt_.weights->total_vertex_weight()
                              : static_cast<std::uint64_t>(c.size());
  icopt.max_globule_weight =
      std::max<std::uint64_t>(1, total_work / (std::uint64_t{4} * k));
  icopt.respect_parts = &current.assign;
  const Hierarchy hi = coarsen(c, icopt);
  Partition pit = multilevel::run_iterated_vcycle(hi, pol, current, nullptr);
  // Third candidate: a from-scratch run under the live weights.  The warm
  // start and the partition-respecting hierarchy both keep the first two
  // candidates near the current basin; after a large drift the global
  // optimum may be a different basin entirely, which only an unconstrained
  // run can reach.  The graph pipeline is cheap enough (well inside the
  // incremental budget) to afford it every escalation.  Relabeling maps
  // the candidate's arbitrary part names onto the live ones so the churn
  // hysteresis prices real group moves, not label noise.
  Partition ps = run_traced(c, k, seed, nullptr);
  relabel_to_match(current, ps);
  if (pol.quality(h.base, pit) < pol.quality(h.base, p)) p = std::move(pit);
  if (pol.quality(h.base, ps) < pol.quality(h.base, p)) p = std::move(ps);
  if (trace != nullptr) {
    trace->final_quality = pol.quality(h.base, p);
    trace->quality_after_level.assign(1, trace->final_quality);
  }
  p.validate(c.size());
  return p;
}

}  // namespace pls::partition
