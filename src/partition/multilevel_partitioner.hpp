#pragma once
// The multilevel partitioning algorithm — the paper's contribution (§3).
//
// Three decoupled phases, each optimizing one concern:
//   1. Coarsening     — concurrency   (fanout coarsening from the inputs)
//   2. Initial k-way  — load balance  (input globules spread equally)
//   3. Refinement     — communication (greedy k-way cut reduction at every
//                                      level, projecting downward)
//
// Complexity is O(|E|) per level and O(|E|) overall (the level sizes form a
// geometric series), making it "a fast linear time heuristic" — verified
// empirically by bench_complexity.

#include <vector>

#include "multilevel/vcycle.hpp"
#include "multilevel/weights.hpp"
#include "partition/coarsen.hpp"
#include "partition/partition.hpp"
#include "partition/refine.hpp"

namespace pls::partition {

struct MultilevelOptions {
  /// Coarsening stops at this globule count; 0 = auto (max(4k, 64)).
  std::size_t coarsen_threshold = 0;
  CoarsenScheme scheme = CoarsenScheme::kFanout;
  RefinerKind refiner = RefinerKind::kGreedy;
  /// Tight by default: the baselines balance to within one gate, and any
  /// slack here shows up directly as one lagging node at runtime.
  double balance_tol = 0.03;
  std::uint32_t refine_iters = 8;
  /// Optional activity-derived work/traffic weights (see
  /// CoarsenOptions::weights); must outlive the run.
  const multilevel::VertexTrafficWeights* weights = nullptr;
};

/// Per-run diagnostics for benchmarking and tests; "quality" is the
/// weighted edge cut here (see multilevel::Trace).
using MultilevelTrace = multilevel::Trace;

class MultilevelPartitioner final : public Partitioner {
 public:
  MultilevelPartitioner() = default;
  explicit MultilevelPartitioner(MultilevelOptions opt) : opt_(opt) {}

  std::string name() const override { return "Multilevel"; }

  Partition run(const circuit::Circuit& c, std::uint32_t k,
                std::uint64_t seed) const override;

  /// Like run(), optionally filling a trace of the per-level progress.
  Partition run_traced(const circuit::Circuit& c, std::uint32_t k,
                       std::uint64_t seed, MultilevelTrace* trace) const;

  /// Warm-started repartition for GVT-epoch use: refines `current` on the
  /// weighted finest graph only (no coarsening — the live assignment is
  /// the hierarchy), returning `current` unchanged unless strictly better
  /// under the weighted edge cut.  See multilevel::run_incremental_vcycle.
  Partition run_incremental(const circuit::Circuit& c, std::uint32_t k,
                            std::uint64_t seed, const Partition& current,
                            MultilevelTrace* trace = nullptr) const;

  const MultilevelOptions& options() const noexcept { return opt_; }

 private:
  MultilevelOptions opt_;
};

}  // namespace pls::partition
