#include "partition/partition.hpp"

#include "util/check.hpp"

namespace pls::partition {

std::vector<std::uint64_t> Partition::loads(
    const std::vector<std::uint32_t>& weights) const {
  std::vector<std::uint64_t> out(k, 0);
  for (std::size_t v = 0; v < assign.size(); ++v) {
    const std::uint32_t w =
        weights.empty() ? 1u : weights.at(v);
    out.at(assign[v]) += w;
  }
  return out;
}

void Partition::validate(std::size_t num_gates) const {
  PLS_CHECK_MSG(k >= 1, "partition needs k >= 1");
  PLS_CHECK_MSG(assign.size() == num_gates,
                "partition covers " << assign.size() << " gates, circuit has "
                                    << num_gates);
  for (std::size_t v = 0; v < assign.size(); ++v) {
    PLS_CHECK_MSG(assign[v] < k, "gate " << v << " assigned to part "
                                         << assign[v] << " >= k=" << k);
  }
}

}  // namespace pls::partition
