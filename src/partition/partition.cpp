#include "partition/partition.hpp"

#include "util/check.hpp"

namespace pls::partition {

std::vector<std::uint64_t> Partition::loads(
    const std::vector<std::uint32_t>& weights) const {
  std::vector<std::uint64_t> out(k, 0);
  for (std::size_t v = 0; v < assign.size(); ++v) {
    const std::uint32_t w =
        weights.empty() ? 1u : weights.at(v);
    out.at(assign[v]) += w;
  }
  return out;
}

void relabel_to_match(const Partition& reference, Partition& p) {
  PLS_CHECK_MSG(p.k == reference.k && p.assign.size() == reference.assign.size(),
                "relabel_to_match requires partitions of the same shape");
  const std::uint32_t k = p.k;
  // overlap[q][r]: vertices labelled q in `p` and r in `reference`.
  std::vector<std::vector<std::uint64_t>> overlap(
      k, std::vector<std::uint64_t>(k, 0));
  for (std::size_t v = 0; v < p.assign.size(); ++v) {
    ++overlap[p.assign[v]][reference.assign[v]];
  }
  // Greedy maximum matching: k is small (node count), so k passes over the
  // k×k matrix beat the bookkeeping of the optimal Hungarian assignment —
  // and a non-optimal matching only costs a few extra counted moves, never
  // correctness.
  std::vector<std::uint32_t> remap(k, k);  // q -> new label
  std::vector<std::uint8_t> used(k, 0);
  for (std::uint32_t step = 0; step < k; ++step) {
    std::uint64_t best = 0;
    std::uint32_t bq = k, br = k;
    for (std::uint32_t q = 0; q < k; ++q) {
      if (remap[q] != k) continue;
      for (std::uint32_t r = 0; r < k; ++r) {
        if (used[r]) continue;
        if (bq == k || overlap[q][r] > best) {
          best = overlap[q][r];
          bq = q;
          br = r;
        }
      }
    }
    remap[bq] = br;
    used[br] = 1;
  }
  for (auto& a : p.assign) a = remap[a];
}

void Partition::validate(std::size_t num_gates) const {
  PLS_CHECK_MSG(k >= 1, "partition needs k >= 1");
  PLS_CHECK_MSG(assign.size() == num_gates,
                "partition covers " << assign.size() << " gates, circuit has "
                                    << num_gates);
  for (std::size_t v = 0; v < assign.size(); ++v) {
    PLS_CHECK_MSG(assign[v] < k, "gate " << v << " assigned to part "
                                         << assign[v] << " >= k=" << k);
  }
}

}  // namespace pls::partition
