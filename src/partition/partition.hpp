#pragma once
// Partition: an assignment of circuit gates (Time Warp LPs) to k nodes.
//
// Every partitioner in the study produces one of these; the framework layer
// then instantiates one WARPED-style cluster per part (paper §4).

#include <cstdint>
#include <string>
#include <vector>

#include "circuit/circuit.hpp"

namespace pls::partition {

using PartId = std::uint32_t;

struct Partition {
  std::uint32_t k = 1;              ///< number of parts (nodes)
  std::vector<PartId> assign;       ///< gate id -> part id

  PartId operator[](circuit::GateId g) const { return assign.at(g); }

  /// Per-part total vertex weight; unit weights if `weights` is empty.
  std::vector<std::uint64_t> loads(
      const std::vector<std::uint32_t>& weights = {}) const;

  /// Throws util::CheckError unless every gate has a part in [0,k) and k>=1.
  void validate(std::size_t num_gates) const;
};

/// Relabel `p`'s part ids (in place) to maximize per-vertex agreement with
/// `reference` (greedy maximum-overlap matching on the k×k confusion
/// matrix).  Part ids are arbitrary names, so this never changes the cut
/// or the balance — but when `p` is a from-scratch candidate considered
/// against a live assignment, the relabeled candidate migrates only the
/// vertices whose *group* moved, not every vertex whose label happened to
/// differ.  Requires p.k == reference.k and equal sizes.
void relabel_to_match(const Partition& reference, Partition& p);

/// Abstract partitioning strategy (paper §4: strategies are selected at
/// runtime by name, without recompiling the simulator).
class Partitioner {
 public:
  virtual ~Partitioner() = default;

  /// Strategy name as it appears in the paper's tables
  /// ("Random", "DFS", "Cluster", "Topological", "Multilevel", "Cone").
  virtual std::string name() const = 0;

  /// Partition circuit `c` into `k` parts.  `seed` feeds any randomized
  /// choices; equal seeds give equal partitions.
  virtual Partition run(const circuit::Circuit& c, std::uint32_t k,
                        std::uint64_t seed) const = 0;
};

}  // namespace pls::partition
