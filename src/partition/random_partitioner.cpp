#include "partition/baselines.hpp"

#include <numeric>

#include "util/check.hpp"
#include "util/rng.hpp"

namespace pls::partition {

Partition RandomPartitioner::run(const circuit::Circuit& c, std::uint32_t k,
                                 std::uint64_t seed) const {
  PLS_CHECK(k >= 1);
  util::Rng rng(seed);
  std::vector<circuit::GateId> order(c.size());
  std::iota(order.begin(), order.end(), 0);
  rng.shuffle(order);

  // Dealing a shuffled deck round-robin is random *and* perfectly load
  // balanced, matching the description in [15]: "assigns nodes to partitions
  // in a random and load balanced manner".
  Partition p;
  p.k = k;
  p.assign.resize(c.size());
  for (std::size_t i = 0; i < order.size(); ++i) {
    p.assign[order[i]] = static_cast<PartId>(i % k);
  }
  return p;
}

}  // namespace pls::partition
