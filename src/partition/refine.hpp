#pragma once
// Refinement phase interfaces (paper §3).
//
// Refinement runs k-way at every level of the hierarchy, from coarsest to
// the original graph, minimizing the cut-set while preserving load
// balance.  The paper uses *greedy* refinement ([12]) and cites
// Kernighan–Lin [13] and Fiduccia–Mattheyses [6] as the slower, no-better
// alternatives it was measured against; all three are implemented here so
// that comparison is reproducible (bench_refinement_ablation).

#include <cstdint>
#include <memory>
#include <string>

#include "graph/weighted_graph.hpp"
#include "partition/partition.hpp"

namespace pls::partition {

struct RefineOptions {
  /// A move is feasible only if the destination stays at or below
  /// ceil(W/k)·(1+balance_tol).
  double balance_tol = 0.10;
  /// Maximum refinement iterations (each visits every vertex once); the
  /// greedy algorithm "was found to converge in a few iterations".
  std::uint32_t max_iters = 8;
  std::uint64_t seed = 1;
};

struct RefineResult {
  std::uint64_t moves = 0;        ///< vertices relocated
  std::uint64_t iterations = 0;   ///< passes actually executed
  std::uint64_t cut_before = 0;
  std::uint64_t cut_after = 0;
};

class Refiner {
 public:
  virtual ~Refiner() = default;
  virtual std::string name() const = 0;
  /// Refine `p` in place on `g`.  Implementations must never increase the
  /// cut and must respect the balance limit for every move they commit.
  virtual RefineResult refine(const graph::WeightedGraph& g, Partition& p,
                              const RefineOptions& opt) const = 0;
};

/// Greedy k-way refinement — the multilevel algorithm's default.
class GreedyRefiner final : public Refiner {
 public:
  std::string name() const override { return "Greedy"; }
  RefineResult refine(const graph::WeightedGraph& g, Partition& p,
                      const RefineOptions& opt) const override;
};

/// Pairwise Kernighan–Lin swap refinement (baseline [13]).
class KernighanLinRefiner final : public Refiner {
 public:
  std::string name() const override { return "KL"; }
  RefineResult refine(const graph::WeightedGraph& g, Partition& p,
                      const RefineOptions& opt) const override;
};

/// k-way Fiduccia–Mattheyses single-move refinement with best-prefix
/// rollback (baseline [6]).
class FiducciaMattheysesRefiner final : public Refiner {
 public:
  std::string name() const override { return "FM"; }
  RefineResult refine(const graph::WeightedGraph& g, Partition& p,
                      const RefineOptions& opt) const override;
};

enum class RefinerKind { kGreedy, kKernighanLin, kFiducciaMattheyses };

std::unique_ptr<Refiner> make_refiner(RefinerKind kind);

}  // namespace pls::partition
