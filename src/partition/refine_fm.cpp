// k-way Fiduccia–Mattheyses refinement (baseline; paper ref [6]).
//
// Single-vertex moves driven by a max-gain priority queue with lazy
// invalidation.  Unlike greedy, FM also makes zero- and negative-gain moves
// (hill climbing), keeps a move log, and at the end of each pass rolls the
// partition back to the best cumulative-gain prefix.  Every moved vertex is
// locked for the remainder of the pass, as in the original linear-time
// formulation.

#include <algorithm>
#include <queue>

#include "multilevel/balance.hpp"
#include "partition/metrics.hpp"
#include "partition/refine.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace pls::partition {
namespace {

struct HeapEntry {
  std::int64_t gain;
  graph::VertexId v;
  std::uint32_t stamp;  ///< lazy invalidation: stale if != stamp[v]
  bool operator<(const HeapEntry& o) const noexcept { return gain < o.gain; }
};

struct Move {
  graph::VertexId v;
  PartId from;
  PartId to;
};

}  // namespace

RefineResult FiducciaMattheysesRefiner::refine(
    const graph::WeightedGraph& g, Partition& p,
    const RefineOptions& opt) const {
  p.validate(g.num_vertices());
  const std::size_t n = g.num_vertices();
  const std::uint32_t k = p.k;

  RefineResult res;
  res.cut_before = edge_cut(g, p);

  std::vector<std::uint64_t> load(k, 0);
  for (graph::VertexId v = 0; v < n; ++v) {
    load[p.assign[v]] += g.vertex_weight(v);
  }
  const std::uint64_t limit =
      multilevel::balance_limit(g.total_vertex_weight(), k, opt.balance_tol);

  std::vector<std::uint64_t> conn(k, 0);
  std::vector<PartId> touched;

  // Best external move of v: (gain, target part), balance-ignorant (balance
  // is checked at pop time against live loads).
  auto best_move = [&](graph::VertexId v) -> std::pair<std::int64_t, PartId> {
    const PartId home = p.assign[v];
    touched.clear();
    for (const graph::Edge& e : g.neighbors(v)) {
      const PartId q = p.assign[e.to];
      if (conn[q] == 0) touched.push_back(q);
      conn[q] += e.weight;
    }
    std::int64_t best_gain = std::numeric_limits<std::int64_t>::min();
    PartId best_part = home;
    for (PartId q : touched) {
      if (q == home) continue;
      const auto gain = static_cast<std::int64_t>(conn[q]) -
                        static_cast<std::int64_t>(conn[home]);
      if (gain > best_gain) {
        best_gain = gain;
        best_part = q;
      }
    }
    // A vertex with no external neighbours can still move (gain = -conn
    // internal), to any other part; pick (home+1)%k for determinism.
    if (best_part == home && k > 1) {
      best_gain = -static_cast<std::int64_t>(conn[home]);
      best_part = (home + 1) % k;
    }
    for (PartId q : touched) conn[q] = 0;
    return {best_gain, best_part};
  };

  std::vector<std::uint32_t> stamp(n, 0);
  std::vector<std::uint8_t> locked(n, 0);

  for (std::uint32_t iter = 0; iter < opt.max_iters; ++iter) {
    ++res.iterations;
    const std::uint64_t cut_at_pass_start = edge_cut(g, p);

    std::priority_queue<HeapEntry> heap;
    std::fill(locked.begin(), locked.end(), 0);
    for (graph::VertexId v = 0; v < n; ++v) {
      const auto [gain, part] = best_move(v);
      if (part != p.assign[v]) heap.push(HeapEntry{gain, v, stamp[v]});
    }

    std::vector<Move> log;
    std::int64_t cum = 0;
    std::int64_t best_cum = 0;
    std::size_t best_prefix = 0;

    while (!heap.empty() && log.size() < n) {
      const HeapEntry top = heap.top();
      heap.pop();
      if (top.stamp != stamp[top.v] || locked[top.v]) continue;  // stale
      const auto [gain, target] = best_move(top.v);
      if (gain != top.gain) {  // re-queue with the fresh gain
        ++stamp[top.v];
        heap.push(HeapEntry{gain, top.v, stamp[top.v]});
        continue;
      }
      if (target == p.assign[top.v]) continue;
      if (load[target] + g.vertex_weight(top.v) > limit) continue;

      // Commit the tentative move.
      const PartId from = p.assign[top.v];
      load[from] -= g.vertex_weight(top.v);
      load[target] += g.vertex_weight(top.v);
      p.assign[top.v] = target;
      locked[top.v] = 1;
      log.push_back(Move{top.v, from, target});
      cum += gain;
      if (cum > best_cum) {
        best_cum = cum;
        best_prefix = log.size();
      }
      // Bail out of deep negative excursions (keeps passes near O(E)).
      if (cum < best_cum - 64) break;

      // Refresh the gains of affected unlocked neighbours.
      for (const graph::Edge& e : g.neighbors(top.v)) {
        if (locked[e.to]) continue;
        ++stamp[e.to];
        const auto [ngain, npart] = best_move(e.to);
        if (npart != p.assign[e.to]) {
          heap.push(HeapEntry{ngain, e.to, stamp[e.to]});
        }
      }
    }

    // Roll back to the best prefix.
    for (std::size_t i = log.size(); i-- > best_prefix;) {
      const Move& m = log[i];
      p.assign[m.v] = m.from;
      load[m.to] -= g.vertex_weight(m.v);
      load[m.from] += g.vertex_weight(m.v);
    }
    res.moves += best_prefix;

    const std::uint64_t cut_now = edge_cut(g, p);
    PLS_CHECK_MSG(cut_now <= cut_at_pass_start,
                  "FM pass increased the cut despite prefix rollback");
    if (cut_now == cut_at_pass_start) break;  // no improvement: converged
  }

  res.cut_after = edge_cut(g, p);
  PLS_CHECK_MSG(res.cut_after <= res.cut_before,
                "FM refinement increased the cut");
  return res;
}

}  // namespace pls::partition
