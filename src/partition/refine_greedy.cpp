// Greedy k-way refinement (paper §3, citing Karypis & Kumar [12]).
//
// "The greedy refinement algorithm selects a vertex at random and computes
// the gain in the cut-set for every partition that the vertex can be moved
// to.  The partition with maximum gain is then selected for the move.  A
// move is feasible if it reduces the cut-set and preserves load balance.
// Once a vertex is selected for a move, it is locked […] until an iteration
// of the greedy algorithm finishes.  The greedy algorithm was found to
// converge in a few iterations."

#include <algorithm>
#include <numeric>

#include "multilevel/balance.hpp"
#include "partition/metrics.hpp"
#include "partition/refine.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace pls::partition {

RefineResult GreedyRefiner::refine(const graph::WeightedGraph& g,
                                   Partition& p,
                                   const RefineOptions& opt) const {
  p.validate(g.num_vertices());
  const std::size_t n = g.num_vertices();
  const std::uint32_t k = p.k;
  util::Rng rng(opt.seed);

  RefineResult res;
  res.cut_before = edge_cut(g, p);

  std::vector<std::uint64_t> load(k, 0);
  for (graph::VertexId v = 0; v < n; ++v) {
    load[p.assign[v]] += g.vertex_weight(v);
  }
  const std::uint64_t limit =
      multilevel::balance_limit(g.total_vertex_weight(), k, opt.balance_tol);

  std::vector<graph::VertexId> order(n);
  std::iota(order.begin(), order.end(), 0);

  // Dense per-part connectivity buffer, reset via the touched list — O(deg)
  // per vertex, which keeps a full iteration at O(|E|).
  std::vector<std::uint64_t> conn(k, 0);
  std::vector<PartId> touched;
  std::vector<std::uint8_t> locked(n, 0);

  for (std::uint32_t iter = 0; iter < opt.max_iters; ++iter) {
    ++res.iterations;
    std::fill(locked.begin(), locked.end(), 0);
    rng.shuffle(order);  // "selects a vertex at random"
    std::uint64_t moves_this_iter = 0;

    for (graph::VertexId v : order) {
      if (locked[v]) continue;
      const PartId home = p.assign[v];

      touched.clear();
      for (const graph::Edge& e : g.neighbors(v)) {
        const PartId q = p.assign[e.to];
        if (conn[q] == 0) touched.push_back(q);
        conn[q] += e.weight;
      }

      // Only parts the vertex is connected to can yield positive gain.
      PartId best = home;
      std::uint64_t best_conn = conn[home];
      for (PartId q : touched) {
        if (q == home) continue;
        if (conn[q] > best_conn ||
            (conn[q] == best_conn && q < best && best != home)) {
          if (load[q] + g.vertex_weight(v) <= limit) {
            best = q;
            best_conn = conn[q];
          }
        }
      }

      if (best != home && best_conn > conn[home]) {
        load[home] -= g.vertex_weight(v);
        load[best] += g.vertex_weight(v);
        p.assign[v] = best;
        locked[v] = 1;
        ++moves_this_iter;
      }

      for (PartId q : touched) conn[q] = 0;
    }

    res.moves += moves_this_iter;
    if (moves_this_iter == 0) break;  // converged
  }

  res.cut_after = edge_cut(g, p);
  PLS_CHECK_MSG(res.cut_after <= res.cut_before,
                "greedy refinement increased the cut");
  return res;
}

std::unique_ptr<Refiner> make_refiner(RefinerKind kind) {
  switch (kind) {
    case RefinerKind::kGreedy:
      return std::make_unique<GreedyRefiner>();
    case RefinerKind::kKernighanLin:
      return std::make_unique<KernighanLinRefiner>();
    case RefinerKind::kFiducciaMattheyses:
      return std::make_unique<FiducciaMattheysesRefiner>();
  }
  PLS_CHECK_MSG(false, "unknown refiner kind");
  return nullptr;
}

}  // namespace pls::partition
