// Pairwise Kernighan–Lin swap refinement (baseline; paper ref [13]).
//
// Classic KL operates on a bisection; for k-way partitions we run KL passes
// over every pair of parts that currently share cut edges.  Within a pair
// (A,B) the algorithm repeatedly selects the swap (x∈A, y∈B) with maximal
// gain D[x] + D[y] − 2·w(x,y), tentatively applies it, locks both vertices,
// and at the end of the pass commits only the prefix of swaps with the best
// cumulative gain (which may be the empty prefix).  Candidate selection
// scans a bounded window of the D-sorted arrays, which keeps a pass near
// O(n log n) at a negligible quality cost.
//
// KL exists here as a measured baseline: the paper (and [12]) report that
// greedy refinement achieves lower cut in far less time — the
// bench_refinement_ablation harness reproduces that comparison.

#include <algorithm>
#include <numeric>

#include "multilevel/balance.hpp"
#include "partition/metrics.hpp"
#include "partition/refine.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace pls::partition {
namespace {

constexpr std::size_t kCandidateWindow = 8;
constexpr std::size_t kMaxSwapsPerPass = 4000;

/// Signed KL gain contribution of vertex v w.r.t. the (a,b) pair:
/// D[v] = (weight to the other side) − (weight to its own side).
std::int64_t d_value(const graph::WeightedGraph& g, const Partition& p,
                     graph::VertexId v, PartId own, PartId other) {
  std::int64_t d = 0;
  for (const graph::Edge& e : g.neighbors(v)) {
    const PartId q = p.assign[e.to];
    if (q == other) d += e.weight;
    else if (q == own) d -= e.weight;
  }
  return d;
}

std::int64_t edge_weight_between(const graph::WeightedGraph& g,
                                 graph::VertexId x, graph::VertexId y) {
  for (const graph::Edge& e : g.neighbors(x)) {
    if (e.to == y) return e.weight;
  }
  return 0;
}

struct Swap {
  graph::VertexId x;
  graph::VertexId y;
  std::int64_t gain;
};

/// One KL pass on the pair (a,b).  Returns the committed gain (>= 0).
std::int64_t kl_pass(const graph::WeightedGraph& g, Partition& p,
                     std::vector<std::uint64_t>& load, std::uint64_t limit,
                     PartId a, PartId b, std::uint64_t* moves) {
  std::vector<graph::VertexId> side_a;
  std::vector<graph::VertexId> side_b;
  for (graph::VertexId v = 0; v < g.num_vertices(); ++v) {
    if (p.assign[v] == a) side_a.push_back(v);
    else if (p.assign[v] == b) side_b.push_back(v);
  }
  if (side_a.empty() || side_b.empty()) return 0;

  std::vector<std::int64_t> d(g.num_vertices(), 0);
  std::vector<std::uint8_t> locked(g.num_vertices(), 0);
  for (graph::VertexId v : side_a) d[v] = d_value(g, p, v, a, b);
  for (graph::VertexId v : side_b) d[v] = d_value(g, p, v, b, a);

  auto by_d = [&](graph::VertexId u, graph::VertexId v) {
    return d[u] > d[v];
  };

  std::vector<Swap> log;
  std::int64_t cum = 0;
  std::int64_t best_cum = 0;
  std::size_t best_prefix = 0;

  const std::size_t max_swaps =
      std::min({side_a.size(), side_b.size(), kMaxSwapsPerPass});
  for (std::size_t step = 0; step < max_swaps; ++step) {
    std::sort(side_a.begin(), side_a.end(), by_d);
    std::sort(side_b.begin(), side_b.end(), by_d);

    // Best swap within the candidate window, balance-feasible.
    Swap best{0, 0, std::numeric_limits<std::int64_t>::min()};
    std::size_t seen_a = 0;
    for (graph::VertexId x : side_a) {
      if (locked[x]) continue;
      if (++seen_a > kCandidateWindow) break;
      std::size_t seen_b = 0;
      for (graph::VertexId y : side_b) {
        if (locked[y]) continue;
        if (++seen_b > kCandidateWindow) break;
        const std::int64_t gain =
            d[x] + d[y] - 2 * edge_weight_between(g, x, y);
        if (gain <= best.gain) continue;
        const std::uint64_t wx = g.vertex_weight(x);
        const std::uint64_t wy = g.vertex_weight(y);
        if (load[a] - wx + wy > limit || load[b] - wy + wx > limit) continue;
        best = Swap{x, y, gain};
      }
    }
    if (best.gain == std::numeric_limits<std::int64_t>::min()) break;

    // Tentatively apply; update D of unlocked neighbours on both sides.
    const auto apply = [&](const Swap& s, bool forward) {
      const PartId pa = forward ? b : a;
      const PartId pb = forward ? a : b;
      p.assign[s.x] = pa;
      p.assign[s.y] = pb;
      load[a] += g.vertex_weight(forward ? s.y : s.x);
      load[a] -= g.vertex_weight(forward ? s.x : s.y);
      load[b] += g.vertex_weight(forward ? s.x : s.y);
      load[b] -= g.vertex_weight(forward ? s.y : s.x);
    };
    apply(best, true);
    locked[best.x] = locked[best.y] = 1;
    for (const graph::Edge& e : g.neighbors(best.x)) {
      const PartId q = p.assign[e.to];
      if (!locked[e.to] && (q == a || q == b)) {
        d[e.to] = d_value(g, p, e.to, q, q == a ? b : a);
      }
    }
    for (const graph::Edge& e : g.neighbors(best.y)) {
      const PartId q = p.assign[e.to];
      if (!locked[e.to] && (q == a || q == b)) {
        d[e.to] = d_value(g, p, e.to, q, q == a ? b : a);
      }
    }

    log.push_back(best);
    cum += best.gain;
    if (cum > best_cum) {
      best_cum = cum;
      best_prefix = log.size();
    }
    // Heuristic early exit: deep negative excursions rarely recover.
    if (cum < best_cum - 4 * (std::abs(best_cum) + 16)) break;
  }

  // Roll back everything after the best prefix.
  for (std::size_t i = log.size(); i-- > best_prefix;) {
    const Swap& s = log[i];
    p.assign[s.x] = a;
    p.assign[s.y] = b;
    load[a] += g.vertex_weight(s.x);
    load[a] -= g.vertex_weight(s.y);
    load[b] += g.vertex_weight(s.y);
    load[b] -= g.vertex_weight(s.x);
  }
  if (moves != nullptr) *moves += 2 * best_prefix;
  return best_cum;
}

}  // namespace

RefineResult KernighanLinRefiner::refine(const graph::WeightedGraph& g,
                                         Partition& p,
                                         const RefineOptions& opt) const {
  p.validate(g.num_vertices());
  const std::uint32_t k = p.k;

  RefineResult res;
  res.cut_before = edge_cut(g, p);

  std::vector<std::uint64_t> load(k, 0);
  for (graph::VertexId v = 0; v < g.num_vertices(); ++v) {
    load[p.assign[v]] += g.vertex_weight(v);
  }
  const std::uint64_t limit =
      multilevel::balance_limit(g.total_vertex_weight(), k, opt.balance_tol);

  for (std::uint32_t iter = 0; iter < opt.max_iters; ++iter) {
    ++res.iterations;
    std::int64_t gain_this_iter = 0;
    for (PartId a = 0; a < k; ++a) {
      for (PartId b = a + 1; b < k; ++b) {
        gain_this_iter += kl_pass(g, p, load, limit, a, b, &res.moves);
      }
    }
    if (gain_this_iter == 0) break;
  }

  res.cut_after = edge_cut(g, p);
  PLS_CHECK_MSG(res.cut_after <= res.cut_before,
                "KL refinement increased the cut");
  return res;
}

}  // namespace pls::partition
