// Topological (level) partitioner.
//
// "This technique proceeds by first levelizing the circuit graph and then
// assigning nodes at the same topological level to a partition" (paper §2,
// after Cloutier [5] and Smith [19]).  Gates within each topological level
// are dealt round-robin across the k partitions, so the gates that can fire
// concurrently (same level) sit on different nodes — maximal concurrency at
// the price of cutting essentially every level-to-level signal.  The paper
// identifies exactly that trade as this strategy's downfall: "more signals
// are split across partitions for concurrency", so "the performance of the
// Topological algorithm is limited due to increased communication
// overheads".

#include "circuit/levelize.hpp"
#include "partition/baselines.hpp"
#include "util/check.hpp"

namespace pls::partition {

Partition TopologicalPartitioner::run(const circuit::Circuit& c,
                                      std::uint32_t k,
                                      std::uint64_t /*seed*/) const {
  PLS_CHECK(k >= 1);
  const auto lv = circuit::levelize(c);

  Partition p;
  p.k = k;
  p.assign.resize(c.size());

  // Deal each level's gates cyclically, continuing the rotation across
  // levels so the overall load stays balanced to within one gate.
  std::uint32_t cursor = 0;
  for (const auto& gates : lv.by_level) {
    for (circuit::GateId g : gates) {
      p.assign[g] = cursor;
      cursor = (cursor + 1) % k;
    }
  }
  return p;
}

}  // namespace pls::partition
