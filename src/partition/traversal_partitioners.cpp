// Depth-first and breadth-first traversal partitioners.
//
// Both linearize the circuit graph by a traversal rooted at the primary
// inputs (then flip-flops, then any still-unvisited gate so disconnected
// logic is covered), and cut the linear order into k equal-weight chunks.
// Contiguity in traversal order keeps connected structures together, which
// is these algorithms' whole selling point — and, per the paper's results,
// their weakness at higher node counts (poor concurrency).

#include <deque>

#include "partition/baselines.hpp"
#include "util/check.hpp"

namespace pls::partition {
namespace {

/// Chop `order` (a permutation of all gates) into k contiguous chunks of
/// nearly equal size: the first (n mod k) chunks get one extra gate.
Partition chop(const std::vector<circuit::GateId>& order, std::uint32_t k) {
  const std::size_t n = order.size();
  Partition p;
  p.k = k;
  p.assign.resize(n);
  const std::size_t base = n / k;
  const std::size_t extra = n % k;
  std::size_t idx = 0;
  for (std::uint32_t part = 0; part < k; ++part) {
    const std::size_t take = base + (part < extra ? 1 : 0);
    for (std::size_t i = 0; i < take; ++i) {
      p.assign[order[idx++]] = part;
    }
  }
  PLS_CHECK(idx == n);
  return p;
}

/// Roots for traversals: primary inputs first (the paper's traversals start
/// from the inputs), then flip-flops, then everything else as fallback.
std::vector<circuit::GateId> traversal_roots(const circuit::Circuit& c) {
  std::vector<circuit::GateId> roots = c.primary_inputs();
  roots.insert(roots.end(), c.flip_flops().begin(), c.flip_flops().end());
  for (circuit::GateId g = 0; g < c.size(); ++g) roots.push_back(g);
  return roots;
}

}  // namespace

Partition DepthFirstPartitioner::run(const circuit::Circuit& c,
                                     std::uint32_t k,
                                     std::uint64_t /*seed*/) const {
  PLS_CHECK(k >= 1);
  std::vector<std::uint8_t> seen(c.size(), 0);
  std::vector<circuit::GateId> order;
  order.reserve(c.size());
  std::vector<circuit::GateId> stack;

  for (circuit::GateId root : traversal_roots(c)) {
    if (seen[root]) continue;
    stack.push_back(root);
    seen[root] = 1;
    while (!stack.empty()) {
      const circuit::GateId g = stack.back();
      stack.pop_back();
      order.push_back(g);
      const auto outs = c.fanouts(g);
      // Push in reverse so the lowest-id fanout is visited first — a fixed,
      // reproducible DFS order.
      for (std::size_t i = outs.size(); i-- > 0;) {
        if (!seen[outs[i]]) {
          seen[outs[i]] = 1;
          stack.push_back(outs[i]);
        }
      }
    }
  }
  PLS_CHECK(order.size() == c.size());
  return chop(order, k);
}

Partition BfsClusterPartitioner::run(const circuit::Circuit& c,
                                     std::uint32_t k,
                                     std::uint64_t /*seed*/) const {
  PLS_CHECK(k >= 1);
  std::vector<std::uint8_t> seen(c.size(), 0);
  std::vector<circuit::GateId> order;
  order.reserve(c.size());
  std::deque<circuit::GateId> queue;

  for (circuit::GateId root : traversal_roots(c)) {
    if (seen[root]) continue;
    queue.push_back(root);
    seen[root] = 1;
    while (!queue.empty()) {
      const circuit::GateId g = queue.front();
      queue.pop_front();
      order.push_back(g);
      for (circuit::GateId out : c.fanouts(g)) {
        if (!seen[out]) {
          seen[out] = 1;
          queue.push_back(out);
        }
      }
    }
  }
  PLS_CHECK(order.size() == c.size());
  return chop(order, k);
}

}  // namespace pls::partition
