#pragma once
// Precondition / invariant checking macros.
//
// PLS_CHECK is always on (cheap, used at API boundaries); PLS_DCHECK compiles
// away in release builds and is used inside hot loops.  Failures throw
// pls::util::CheckError so tests can assert on violated contracts instead of
// aborting the process.

#include <sstream>
#include <stdexcept>
#include <string>

namespace pls::util {

class CheckError : public std::logic_error {
 public:
  explicit CheckError(const std::string& what) : std::logic_error(what) {}
};

[[noreturn]] inline void check_failed(const char* expr, const char* file,
                                      int line, const std::string& msg) {
  std::ostringstream os;
  os << "check failed: (" << expr << ") at " << file << ':' << line;
  if (!msg.empty()) os << " — " << msg;
  throw CheckError(os.str());
}

}  // namespace pls::util

#define PLS_CHECK(expr)                                              \
  do {                                                               \
    if (!(expr)) [[unlikely]]                                        \
      ::pls::util::check_failed(#expr, __FILE__, __LINE__, "");      \
  } while (0)

#define PLS_CHECK_MSG(expr, msg)                                     \
  do {                                                               \
    if (!(expr)) [[unlikely]] {                                      \
      std::ostringstream pls_check_os_;                              \
      pls_check_os_ << msg;                                          \
      ::pls::util::check_failed(#expr, __FILE__, __LINE__,           \
                                pls_check_os_.str());                \
    }                                                                \
  } while (0)

#ifdef NDEBUG
#define PLS_DCHECK(expr) ((void)0)
#else
#define PLS_DCHECK(expr) PLS_CHECK(expr)
#endif
