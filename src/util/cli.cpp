#include "util/cli.hpp"

#include <cstdio>
#include <sstream>
#include <stdexcept>

#include "util/check.hpp"

namespace pls::util {

Cli::Cli(std::string program_description)
    : description_(std::move(program_description)) {
  add_flag("help", "print this help text", "false");
}

void Cli::add_flag(const std::string& name, const std::string& help,
                   const std::string& default_value) {
  PLS_CHECK_MSG(!flags_.count(name), "duplicate flag --" << name);
  flags_[name] = Flag{help, default_value, default_value};
}

bool Cli::parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(arg);
      continue;
    }
    arg = arg.substr(2);
    std::string name = arg;
    std::optional<std::string> value;
    if (auto eq = arg.find('='); eq != std::string::npos) {
      name = arg.substr(0, eq);
      value = arg.substr(eq + 1);
    }
    auto it = flags_.find(name);
    if (it == flags_.end()) {
      std::fprintf(stderr, "unknown flag --%s\n%s", name.c_str(),
                   usage().c_str());
      return false;
    }
    if (!value) {
      // Boolean flags may omit the value; others consume the next token.
      const bool is_bool = it->second.default_value == "true" ||
                           it->second.default_value == "false";
      if (is_bool) {
        value = "true";
      } else if (i + 1 < argc) {
        value = argv[++i];
      } else {
        std::fprintf(stderr, "flag --%s needs a value\n", name.c_str());
        return false;
      }
    }
    it->second.value = *value;
  }
  if (get_bool("help")) {
    std::fprintf(stdout, "%s", usage().c_str());
    return false;
  }
  return true;
}

std::string Cli::get(const std::string& name) const {
  auto it = flags_.find(name);
  PLS_CHECK_MSG(it != flags_.end(), "unregistered flag --" << name);
  return it->second.value;
}

std::int64_t Cli::get_int(const std::string& name) const {
  const std::string v = get(name);
  try {
    return std::stoll(v);
  } catch (const std::exception&) {
    throw std::runtime_error("flag --" + name + " expects an integer, got '" +
                             v + "'");
  }
}

double Cli::get_double(const std::string& name) const {
  const std::string v = get(name);
  try {
    return std::stod(v);
  } catch (const std::exception&) {
    throw std::runtime_error("flag --" + name + " expects a number, got '" +
                             v + "'");
  }
}

bool Cli::get_bool(const std::string& name) const {
  const std::string v = get(name);
  if (v == "true" || v == "1" || v == "yes" || v == "on") return true;
  if (v == "false" || v == "0" || v == "no" || v == "off") return false;
  throw std::runtime_error("flag --" + name + " expects a boolean, got '" +
                           v + "'");
}

std::string Cli::usage() const {
  std::ostringstream os;
  os << description_ << "\n\nflags:\n";
  for (const auto& [name, flag] : flags_) {
    os << "  --" << name << " (default: " << flag.default_value << ")\n      "
       << flag.help << '\n';
  }
  return os.str();
}

}  // namespace pls::util
