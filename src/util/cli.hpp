#pragma once
// Tiny command-line flag parser for the examples and bench harnesses.
// Supports --name=value, --name value, and boolean --flag forms; unknown
// flags are an error so typos in experiment scripts fail fast.

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace pls::util {

class Cli {
 public:
  Cli(std::string program_description);

  /// Register flags before parse(). `help` is printed by usage().
  void add_flag(const std::string& name, const std::string& help,
                const std::string& default_value);

  /// Parse argv. Returns false (after printing usage) on --help or error.
  bool parse(int argc, const char* const* argv);

  std::string get(const std::string& name) const;
  std::int64_t get_int(const std::string& name) const;
  double get_double(const std::string& name) const;
  bool get_bool(const std::string& name) const;

  /// Positional arguments left over after flag parsing.
  const std::vector<std::string>& positional() const noexcept {
    return positional_;
  }

  std::string usage() const;

 private:
  struct Flag {
    std::string help;
    std::string value;
    std::string default_value;
  };
  std::string description_;
  std::map<std::string, Flag> flags_;
  std::vector<std::string> positional_;
};

}  // namespace pls::util
