#include "util/csv.hpp"

#include <stdexcept>

#include "util/check.hpp"

namespace pls::util {

CsvWriter::CsvWriter(const std::string& path,
                     const std::vector<std::string>& header)
    : path_(path), out_(path, std::ios::trunc), columns_(header.size()) {
  if (!out_) {
    throw std::runtime_error("CsvWriter: cannot open " + path);
  }
  PLS_CHECK_MSG(!header.empty(), "CSV needs at least one column");
  for (std::size_t i = 0; i < header.size(); ++i) {
    if (i) out_ << ',';
    out_ << escape(header[i]);
  }
  out_ << '\n';
}

void CsvWriter::row(const std::vector<std::string>& fields) {
  PLS_CHECK_MSG(fields.size() == columns_,
                "CSV row has " << fields.size() << " fields, header has "
                               << columns_);
  for (std::size_t i = 0; i < fields.size(); ++i) {
    if (i) out_ << ',';
    out_ << escape(fields[i]);
  }
  out_ << '\n';
  ++rows_;
}

void CsvWriter::flush() { out_.flush(); }

std::string CsvWriter::escape(const std::string& field) {
  const bool needs_quote =
      field.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quote) return field;
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

}  // namespace pls::util
