#pragma once
// Minimal CSV writer used by every bench harness so each table/figure can be
// re-plotted from machine-readable output (the paper's figures are line/bar
// charts over the same data as its tables).

#include <fstream>
#include <string>
#include <vector>

namespace pls::util {

class CsvWriter {
 public:
  /// Opens (truncates) `path` and writes the header row. Throws
  /// std::runtime_error if the file cannot be opened.
  CsvWriter(const std::string& path, const std::vector<std::string>& header);

  /// Append one row; fields are quoted only when needed (comma, quote, NL).
  void row(const std::vector<std::string>& fields);

  /// Convenience: mixed string/number rows built by the caller via
  /// std::to_string; provided for symmetry with row().
  void flush();

  const std::string& path() const noexcept { return path_; }
  std::size_t rows_written() const noexcept { return rows_; }

  static std::string escape(const std::string& field);

 private:
  std::string path_;
  std::ofstream out_;
  std::size_t columns_;
  std::size_t rows_ = 0;
};

}  // namespace pls::util
