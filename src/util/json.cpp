#include "util/json.hpp"

#include <cmath>
#include <cstdio>

#include "util/check.hpp"

namespace pls::util {

void JsonWriter::before_item() {
  if (after_key_) {
    after_key_ = false;
    return;
  }
  if (!stack_.empty()) {
    if (!stack_.back().first) os_ << ',';
    stack_.back().first = false;
  }
}

void JsonWriter::escape(std::string_view s) {
  os_ << '"';
  for (const char c : s) {
    switch (c) {
      case '"': os_ << "\\\""; break;
      case '\\': os_ << "\\\\"; break;
      case '\n': os_ << "\\n"; break;
      case '\r': os_ << "\\r"; break;
      case '\t': os_ << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          os_ << buf;
        } else {
          os_ << c;
        }
    }
  }
  os_ << '"';
}

JsonWriter& JsonWriter::begin_object() {
  before_item();
  os_ << '{';
  stack_.push_back(Frame{/*array=*/false, /*first=*/true});
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  PLS_DCHECK(!stack_.empty() && !stack_.back().array);
  stack_.pop_back();
  os_ << '}';
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  before_item();
  os_ << '[';
  stack_.push_back(Frame{/*array=*/true, /*first=*/true});
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  PLS_DCHECK(!stack_.empty() && stack_.back().array);
  stack_.pop_back();
  os_ << ']';
  return *this;
}

JsonWriter& JsonWriter::key(std::string_view k) {
  PLS_DCHECK(!stack_.empty() && !stack_.back().array && !after_key_);
  before_item();
  escape(k);
  os_ << ':';
  after_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view v) {
  before_item();
  escape(v);
  return *this;
}

JsonWriter& JsonWriter::value(bool v) {
  before_item();
  os_ << (v ? "true" : "false");
  return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t v) {
  before_item();
  os_ << v;
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t v) {
  before_item();
  os_ << v;
  return *this;
}

JsonWriter& JsonWriter::value(double v, int decimals) {
  before_item();
  if (!std::isfinite(v)) {
    os_ << "null";
    return *this;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, v);
  os_ << buf;
  return *this;
}

}  // namespace pls::util
