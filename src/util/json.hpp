#pragma once
// Minimal streaming JSON writer: enough for the observability exporters
// (trace.json, metrics JSON) without pulling in a dependency.  Handles
// comma placement and string escaping; the caller is responsible for
// balanced begin/end calls (checked in debug builds via the nesting
// depth).

#include <cstdint>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace pls::util {

class JsonWriter {
 public:
  explicit JsonWriter(std::ostream& os) : os_(os) {}

  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();

  /// Object key; must be followed by exactly one value or container.
  JsonWriter& key(std::string_view k);

  JsonWriter& value(std::string_view v);
  JsonWriter& value(const char* v) { return value(std::string_view(v)); }
  JsonWriter& value(bool v);
  JsonWriter& value(std::uint64_t v);
  JsonWriter& value(std::int64_t v);
  JsonWriter& value(std::uint32_t v) {
    return value(static_cast<std::uint64_t>(v));
  }
  JsonWriter& value(int v) { return value(static_cast<std::int64_t>(v)); }
  /// Fixed-decimal double (JSON has no NaN/Inf; those emit null).
  JsonWriter& value(double v, int decimals = 3);

  /// key(k) + value(v) in one call.
  template <typename T>
  JsonWriter& kv(std::string_view k, T v) {
    key(k);
    return value(v);
  }

  /// Current nesting depth (0 once the document is closed).
  std::size_t depth() const noexcept { return stack_.size(); }

 private:
  void before_item();
  void escape(std::string_view s);

  struct Frame {
    bool array = false;
    bool first = true;
  };
  std::ostream& os_;
  std::vector<Frame> stack_;
  bool after_key_ = false;
};

}  // namespace pls::util
