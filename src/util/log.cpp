#include "util/log.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>

#include "util/timer.hpp"

namespace pls::util {
namespace {

std::atomic<int> g_level{[] {
  if (const char* env = std::getenv("PLS_LOG_LEVEL")) {
    if (std::strcmp(env, "debug") == 0) return 3;
    if (std::strcmp(env, "info") == 0) return 2;
    if (std::strcmp(env, "warn") == 0) return 1;
    if (std::strcmp(env, "error") == 0) return 0;
  }
  return 1;  // warnings by default
}()};

std::atomic<bool> g_timestamps{[] {
  if (const char* env = std::getenv("PLS_LOG_TIMESTAMPS")) {
    return std::strcmp(env, "1") == 0 || std::strcmp(env, "true") == 0 ||
           std::strcmp(env, "on") == 0;
  }
  return false;
}()};

/// Epoch for the +seconds offsets.  Captured at static init, i.e. close
/// enough to process start for log-reading purposes.
const std::uint64_t g_t0_ns = steady_now_ns();

thread_local std::string g_thread_tag;

std::mutex g_mutex;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kError: return "ERROR";
    case LogLevel::kWarn: return "WARN ";
    case LogLevel::kInfo: return "INFO ";
    case LogLevel::kDebug: return "DEBUG";
  }
  return "?";
}

}  // namespace

void set_log_level(LogLevel level) noexcept {
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel log_level() noexcept {
  return static_cast<LogLevel>(g_level.load(std::memory_order_relaxed));
}

void set_log_timestamps(bool on) noexcept {
  g_timestamps.store(on, std::memory_order_relaxed);
}

bool log_timestamps() noexcept {
  return g_timestamps.load(std::memory_order_relaxed);
}

void set_log_thread_tag(const std::string& tag) { g_thread_tag = tag; }

namespace detail {

std::string format_line(LogLevel level, const std::string& line,
                        bool timestamps, double elapsed_s,
                        const std::string& tag) {
  std::string out = "[pls ";
  out += level_name(level);
  if (timestamps) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), " +%.3fs", elapsed_s);
    out += buf;
    if (!tag.empty()) {
      out += ' ';
      out += tag;
    }
  }
  out += "] ";
  out += line;
  return out;
}

void log_line(LogLevel level, const std::string& line) {
  const bool ts = log_timestamps();
  const double elapsed =
      ts ? static_cast<double>(steady_now_ns() - g_t0_ns) / 1e9 : 0.0;
  const std::string full = format_line(level, line, ts, elapsed,
                                       g_thread_tag);
  std::lock_guard<std::mutex> lock(g_mutex);
  std::fprintf(stderr, "%s\n", full.c_str());
}

}  // namespace detail
}  // namespace pls::util
