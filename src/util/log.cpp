#include "util/log.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>

namespace pls::util {
namespace {

std::atomic<int> g_level{[] {
  if (const char* env = std::getenv("PLS_LOG_LEVEL")) {
    if (std::strcmp(env, "debug") == 0) return 3;
    if (std::strcmp(env, "info") == 0) return 2;
    if (std::strcmp(env, "warn") == 0) return 1;
    if (std::strcmp(env, "error") == 0) return 0;
  }
  return 1;  // warnings by default
}()};

std::mutex g_mutex;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kError: return "ERROR";
    case LogLevel::kWarn: return "WARN ";
    case LogLevel::kInfo: return "INFO ";
    case LogLevel::kDebug: return "DEBUG";
  }
  return "?";
}

}  // namespace

void set_log_level(LogLevel level) noexcept {
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel log_level() noexcept {
  return static_cast<LogLevel>(g_level.load(std::memory_order_relaxed));
}

namespace detail {

void log_line(LogLevel level, const std::string& line) {
  std::lock_guard<std::mutex> lock(g_mutex);
  std::fprintf(stderr, "[pls %s] %s\n", level_name(level), line.c_str());
}

}  // namespace detail
}  // namespace pls::util
