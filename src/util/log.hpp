#pragma once
// Leveled stderr logger.  Thread-safe line-at-a-time output: the Time Warp
// kernel logs from every node thread and interleaved partial lines would be
// unreadable.  Verbosity defaults to warnings-only so test and bench output
// stays clean; PLS_LOG_LEVEL env var or set_level() raise it.
//
// With PLS_LOG_TIMESTAMPS=1 (or set_log_timestamps(true)) each line also
// carries a monotonic +seconds offset from process start and the emitting
// thread's tag ("node3", "watchdog", ...), so multi-node kernel logs line
// up with trace.json timelines: `[pls INFO  +12.345s node3] msg`.

#include <sstream>
#include <string>

namespace pls::util {

enum class LogLevel : int { kError = 0, kWarn = 1, kInfo = 2, kDebug = 3 };

void set_log_level(LogLevel level) noexcept;
LogLevel log_level() noexcept;

/// Monotonic-offset + thread-tag line prefixes; initialized from the
/// PLS_LOG_TIMESTAMPS env var (1/true/on = on, default off).
void set_log_timestamps(bool on) noexcept;
bool log_timestamps() noexcept;

/// Tag this thread's log lines (kernel node threads use "nodeN", the
/// watchdog "watchdog"); empty clears.  Shown only when timestamps are on.
void set_log_thread_tag(const std::string& tag);

namespace detail {
void log_line(LogLevel level, const std::string& line);
/// Pure formatter, exposed for tests: builds the full output line from
/// explicit inputs (no globals, no clock).
std::string format_line(LogLevel level, const std::string& line,
                        bool timestamps, double elapsed_s,
                        const std::string& tag);
}

}  // namespace pls::util

#define PLS_LOG(level, expr)                                          \
  do {                                                                \
    if (static_cast<int>(level) <=                                    \
        static_cast<int>(::pls::util::log_level())) {                 \
      std::ostringstream pls_log_os_;                                 \
      pls_log_os_ << expr;                                            \
      ::pls::util::detail::log_line(level, pls_log_os_.str());        \
    }                                                                 \
  } while (0)

#define PLS_ERROR(expr) PLS_LOG(::pls::util::LogLevel::kError, expr)
#define PLS_WARN(expr) PLS_LOG(::pls::util::LogLevel::kWarn, expr)
#define PLS_INFO(expr) PLS_LOG(::pls::util::LogLevel::kInfo, expr)
#define PLS_DEBUG(expr) PLS_LOG(::pls::util::LogLevel::kDebug, expr)
