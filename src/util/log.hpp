#pragma once
// Leveled stderr logger.  Thread-safe line-at-a-time output: the Time Warp
// kernel logs from every node thread and interleaved partial lines would be
// unreadable.  Verbosity defaults to warnings-only so test and bench output
// stays clean; PLS_LOG_LEVEL env var or set_level() raise it.

#include <sstream>
#include <string>

namespace pls::util {

enum class LogLevel : int { kError = 0, kWarn = 1, kInfo = 2, kDebug = 3 };

void set_log_level(LogLevel level) noexcept;
LogLevel log_level() noexcept;

namespace detail {
void log_line(LogLevel level, const std::string& line);
}

}  // namespace pls::util

#define PLS_LOG(level, expr)                                          \
  do {                                                                \
    if (static_cast<int>(level) <=                                    \
        static_cast<int>(::pls::util::log_level())) {                 \
      std::ostringstream pls_log_os_;                                 \
      pls_log_os_ << expr;                                            \
      ::pls::util::detail::log_line(level, pls_log_os_.str());        \
    }                                                                 \
  } while (0)

#define PLS_ERROR(expr) PLS_LOG(::pls::util::LogLevel::kError, expr)
#define PLS_WARN(expr) PLS_LOG(::pls::util::LogLevel::kWarn, expr)
#define PLS_INFO(expr) PLS_LOG(::pls::util::LogLevel::kInfo, expr)
#define PLS_DEBUG(expr) PLS_LOG(::pls::util::LogLevel::kDebug, expr)
