#pragma once
// Deterministic, fast pseudo-random number generation.
//
// All randomized components in this project (circuit generators, the Random
// partitioner, greedy-refinement visit order, stimulus vectors) take an
// explicit 64-bit seed so every experiment in the paper reproduction is
// exactly repeatable.  We use SplitMix64 for seeding and xoshiro256** as the
// workhorse generator; both are tiny, allocation-free and much faster than
// std::mt19937_64 while passing BigCrush.

#include <array>
#include <cstdint>
#include <limits>

namespace pls::util {

/// SplitMix64: used to expand a single 64-bit seed into generator state.
/// Reference: Steele, Lea, Flood, "Fast splittable pseudorandom number
/// generators", OOPSLA 2014.
class SplitMix64 {
 public:
  using result_type = std::uint64_t;

  explicit constexpr SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  constexpr std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  constexpr std::uint64_t operator()() noexcept { return next(); }

  static constexpr std::uint64_t min() noexcept { return 0; }
  static constexpr std::uint64_t max() noexcept {
    return std::numeric_limits<std::uint64_t>::max();
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256**: general-purpose 64-bit generator (Blackman & Vigna, 2018).
/// Satisfies UniformRandomBitGenerator so it can be used with <random>
/// distributions, though the helper members below avoid that in hot paths.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit constexpr Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) noexcept {
    SplitMix64 sm(seed);
    for (auto& s : state_) s = sm.next();
  }

  static constexpr std::uint64_t min() noexcept { return 0; }
  static constexpr std::uint64_t max() noexcept {
    return std::numeric_limits<std::uint64_t>::max();
  }

  constexpr std::uint64_t next() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  constexpr std::uint64_t operator()() noexcept { return next(); }

  /// Uniform integer in [0, bound). Lemire's nearly-divisionless method.
  constexpr std::uint64_t below(std::uint64_t bound) noexcept {
    if (bound <= 1) return 0;
    // Rejection-free for our purposes: bias is < 2^-64 * bound, negligible
    // for bound << 2^64; we still apply Lemire's threshold test for
    // exactness because partition assignment fairness is load-bearing.
    __uint128_t m = static_cast<__uint128_t>(next()) * bound;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < bound) {
      const std::uint64_t threshold = (0 - bound) % bound;
      while (lo < threshold) {
        m = static_cast<__uint128_t>(next()) * bound;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  constexpr std::int64_t range(std::int64_t lo, std::int64_t hi) noexcept {
    return lo + static_cast<std::int64_t>(
                    below(static_cast<std::uint64_t>(hi - lo + 1)));
  }

  /// Uniform double in [0, 1).
  constexpr double uniform() noexcept {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli trial with probability p of returning true.
  constexpr bool chance(double p) noexcept { return uniform() < p; }

  /// Fisher–Yates shuffle of a random-access container.
  template <typename Container>
  constexpr void shuffle(Container& c) noexcept {
    const auto n = c.size();
    if (n < 2) return;
    for (std::size_t i = n - 1; i > 0; --i) {
      const std::size_t j = static_cast<std::size_t>(below(i + 1));
      using std::swap;
      swap(c[i], c[j]);
    }
  }

  /// Derive an independent child generator (for per-thread / per-component
  /// streams that must not correlate with the parent).
  constexpr Rng split() noexcept {
    return Rng(next() ^ 0xd1b54a32d192ed03ULL);
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
};

}  // namespace pls::util
