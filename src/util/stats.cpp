#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "util/check.hpp"

namespace pls::util {

void RunningStat::add(double x) noexcept {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void RunningStat::merge(const RunningStat& other) noexcept {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double n = na + nb;
  mean_ += delta * nb / n;
  m2_ += other.m2_ + delta * delta * na * nb / n;
  n_ += other.n_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double RunningStat::variance() const noexcept {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double RunningStat::stddev() const noexcept { return std::sqrt(variance()); }

double Samples::mean() const noexcept {
  if (xs_.empty()) return 0.0;
  double s = 0.0;
  for (double x : xs_) s += x;
  return s / static_cast<double>(xs_.size());
}

double Samples::stddev() const noexcept {
  if (xs_.size() < 2) return 0.0;
  const double m = mean();
  double s = 0.0;
  for (double x : xs_) s += (x - m) * (x - m);
  return std::sqrt(s / static_cast<double>(xs_.size() - 1));
}

double Samples::min() const noexcept {
  return xs_.empty() ? 0.0 : *std::min_element(xs_.begin(), xs_.end());
}

double Samples::max() const noexcept {
  return xs_.empty() ? 0.0 : *std::max_element(xs_.begin(), xs_.end());
}

double Samples::percentile(double p) const {
  PLS_CHECK_MSG(!xs_.empty(), "percentile of empty sample set");
  PLS_CHECK(p >= 0.0 && p <= 100.0);
  std::vector<double> sorted = xs_;
  std::sort(sorted.begin(), sorted.end());
  if (sorted.size() == 1) return sorted.front();
  const double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

Histogram::Histogram(double lo, double hi, std::size_t buckets)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(buckets)),
      counts_(buckets, 0) {
  PLS_CHECK_MSG(hi > lo, "histogram range must be non-empty");
  PLS_CHECK_MSG(buckets > 0, "histogram needs at least one bucket");
}

void Histogram::add(double x) noexcept {
  std::size_t idx;
  if (x < lo_) {
    idx = 0;
  } else if (x >= hi_) {
    idx = counts_.size() - 1;
  } else {
    idx = static_cast<std::size_t>((x - lo_) / width_);
    if (idx >= counts_.size()) idx = counts_.size() - 1;
  }
  ++counts_[idx];
  ++total_;
}

double Histogram::bucket_lo(std::size_t i) const noexcept {
  return lo_ + width_ * static_cast<double>(i);
}

double Histogram::bucket_hi(std::size_t i) const noexcept {
  return lo_ + width_ * static_cast<double>(i + 1);
}

std::string Histogram::ascii(std::size_t width) const {
  std::ostringstream os;
  std::uint64_t peak = 1;
  for (auto c : counts_) peak = std::max(peak, c);
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const auto bar =
        static_cast<std::size_t>(static_cast<double>(counts_[i]) /
                                 static_cast<double>(peak) *
                                 static_cast<double>(width));
    os << '[' << bucket_lo(i) << ", " << bucket_hi(i) << ") "
       << std::string(bar, '#') << ' ' << counts_[i] << '\n';
  }
  return os.str();
}

}  // namespace pls::util
