#pragma once
// Small statistics helpers used by the benchmark harnesses and the Time Warp
// kernel's run statistics: single-pass mean/variance (Welford), min/max,
// percentiles over stored samples, and a fixed-bucket histogram.

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace pls::util {

/// Single-pass running statistic (Welford's online algorithm).
class RunningStat {
 public:
  void add(double x) noexcept;
  void merge(const RunningStat& other) noexcept;

  std::size_t count() const noexcept { return n_; }
  double mean() const noexcept { return n_ ? mean_ : 0.0; }
  double variance() const noexcept;  ///< sample variance (n-1 denominator)
  double stddev() const noexcept;
  double min() const noexcept { return n_ ? min_ : 0.0; }
  double max() const noexcept { return n_ ? max_ : 0.0; }
  double sum() const noexcept { return sum_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// Stores all samples; supports exact percentiles. Used by harnesses that
/// repeat runs (the paper repeated each experiment five times and reported
/// the average).
class Samples {
 public:
  void add(double x) { xs_.push_back(x); }
  std::size_t count() const noexcept { return xs_.size(); }
  double mean() const noexcept;
  double stddev() const noexcept;
  double min() const noexcept;
  double max() const noexcept;
  /// Exact percentile by linear interpolation, p in [0,100].
  double percentile(double p) const;
  const std::vector<double>& values() const noexcept { return xs_; }

 private:
  std::vector<double> xs_;
};

/// Fixed-width bucket histogram over [lo, hi); out-of-range samples clamp to
/// the first/last bucket.  Used for event-granularity and rollback-length
/// distributions in the kernel micro benches.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t buckets);

  void add(double x) noexcept;
  std::size_t bucket_count() const noexcept { return counts_.size(); }
  std::uint64_t bucket(std::size_t i) const { return counts_.at(i); }
  std::uint64_t total() const noexcept { return total_; }
  double bucket_lo(std::size_t i) const noexcept;
  double bucket_hi(std::size_t i) const noexcept;
  /// Render as a compact ASCII bar chart (for bench output).
  std::string ascii(std::size_t width = 40) const;

 private:
  double lo_;
  double hi_;
  double width_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
};

}  // namespace pls::util
