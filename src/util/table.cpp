#include "util/table.hpp"

#include <cmath>
#include <iomanip>
#include <sstream>

#include "util/check.hpp"

namespace pls::util {

AsciiTable::AsciiTable(std::vector<std::string> header)
    : header_(std::move(header)) {
  PLS_CHECK(!header_.empty());
}

void AsciiTable::add_row(std::vector<std::string> row) {
  PLS_CHECK_MSG(row.size() == header_.size(),
                "row width " << row.size() << " != header width "
                             << header_.size());
  rows_.push_back(Row{std::move(row), pending_rule_});
  pending_rule_ = false;
}

void AsciiTable::add_rule() { pending_rule_ = true; }

std::string AsciiTable::num(double v, int precision) {
  if (std::isnan(v)) return "-";
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

std::string AsciiTable::render() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) {
    widths[c] = header_[c].size();
  }
  for (const auto& r : rows_) {
    for (std::size_t c = 0; c < r.cells.size(); ++c) {
      widths[c] = std::max(widths[c], r.cells[c].size());
    }
  }

  auto hline = [&] {
    std::string s = "+";
    for (auto w : widths) s += std::string(w + 2, '-') + "+";
    s += '\n';
    return s;
  };
  auto line = [&](const std::vector<std::string>& cells) {
    std::ostringstream os;
    os << '|';
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << ' ' << std::setw(static_cast<int>(widths[c])) << cells[c]
         << " |";
    }
    os << '\n';
    return os.str();
  };

  std::string out = hline() + line(header_) + hline();
  for (const auto& r : rows_) {
    if (r.rule_before) out += hline();
    out += line(r.cells);
  }
  out += hline();
  return out;
}

}  // namespace pls::util
