#pragma once
// ASCII table renderer.  The bench harnesses print paper-style tables
// (e.g. Table 2 "Simulation Time for the different partitioning algorithms")
// to stdout alongside the CSV files.

#include <string>
#include <vector>

namespace pls::util {

class AsciiTable {
 public:
  explicit AsciiTable(std::vector<std::string> header);

  void add_row(std::vector<std::string> row);
  /// Insert a horizontal rule before the next row (visual grouping, as the
  /// paper's Table 2 groups rows by circuit).
  void add_rule();

  std::string render() const;
  std::size_t row_count() const noexcept { return rows_.size(); }

  /// Format a double with fixed precision; "-" for NaN (the paper marks the
  /// s15850 out-of-memory cell by omission).
  static std::string num(double v, int precision = 2);

 private:
  std::vector<std::string> header_;
  struct Row {
    std::vector<std::string> cells;
    bool rule_before = false;
  };
  std::vector<Row> rows_;
  bool pending_rule_ = false;
};

}  // namespace pls::util
