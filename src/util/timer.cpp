#include "util/timer.hpp"

#include <algorithm>
#include <atomic>
#include <mutex>

namespace pls::util {
namespace {

// The spin kernel: a dependency chain of cheap integer ops the compiler
// cannot elide (result escapes through a volatile sink) or vectorize.
std::uint64_t spin_kernel(std::uint64_t iters) noexcept {
  std::uint64_t x = 0x9e3779b97f4a7c15ULL;
  for (std::uint64_t i = 0; i < iters; ++i) {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
  }
  return x;
}

// Defeats dead-code elimination; thread-local so concurrent spinners do
// not share a write target (the value itself is meaningless).
thread_local volatile std::uint64_t g_sink;

double calibrate() noexcept {
  // Preemption can only inflate a trial's wall time, never deflate it, so
  // the fastest of several short trials is the closest estimate of the
  // true rate. A single long trial on a contended machine under-estimates
  // it, and busy_spin_ns then returns far earlier than requested.
  g_sink = spin_kernel(10'000);  // warm up
  constexpr std::uint64_t kIters = 500'000;
  double best = 0.0;
  for (int trial = 0; trial < 4; ++trial) {
    WallTimer t;
    g_sink = spin_kernel(kIters);
    const double ns = static_cast<double>(t.elapsed_ns());
    if (ns > 0.0) best = std::max(best, static_cast<double>(kIters) / ns);
  }
  return best > 0.0 ? best : 1.0;
}

double iters_per_ns() noexcept {
  static const double v = [] {
    const double c = calibrate();
    return c > 0.0 ? c : 1.0;
  }();
  return v;
}

}  // namespace

double spin_iters_per_ns() noexcept { return iters_per_ns(); }

void busy_spin_ns(std::uint64_t ns) noexcept {
  if (ns == 0) return;
  const auto iters =
      static_cast<std::uint64_t>(static_cast<double>(ns) * iters_per_ns());
  g_sink = spin_kernel(iters);
}

}  // namespace pls::util
