#pragma once
// Wall-clock timing and calibrated busy-spinning.
//
// The reproduction's communication model (DESIGN.md §3.2) charges CPU time
// for event processing and message send overhead the way the paper's 1999
// testbed did.  busy_spin_ns burns a requested number of nanoseconds of CPU
// without sleeping (sleeping would release the core and distort Time Warp
// dynamics at microsecond granularity).

#include <chrono>
#include <cstdint>

namespace pls::util {

/// Monotonic wall-clock stopwatch.
class WallTimer {
 public:
  WallTimer() noexcept { reset(); }

  void reset() noexcept { start_ = clock::now(); }

  double elapsed_seconds() const noexcept {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

  std::uint64_t elapsed_ns() const noexcept {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(clock::now() -
                                                             start_)
            .count());
  }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

/// Monotonic steady-clock "now" in nanoseconds since an arbitrary epoch.
/// The one clock every timestamp in the codebase (kernel loop deadlines,
/// trace events, metrics samples) is taken from, so they are comparable.
inline std::uint64_t steady_now_ns() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Burn approximately `ns` nanoseconds of CPU time without yielding.
/// Implemented with a calibrated arithmetic loop; calibration happens once
/// per process (thread-safe) and takes ~1 ms.
void busy_spin_ns(std::uint64_t ns) noexcept;

/// Iterations of the calibration loop per nanosecond (exposed for tests).
double spin_iters_per_ns() noexcept;

}  // namespace pls::util
