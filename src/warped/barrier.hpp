#pragma once
// Sense-reversing spin barrier for the GVT rendezvous.
//
// GVT is computed with a stop-the-world rendezvous (DESIGN.md): node
// threads only send messages while *processing*, so once every thread is
// parked at the barrier there are no transient messages outside the
// mailboxes and the reduction over (pending events ∪ mailboxes ∪ holding
// heaps) is an exact global minimum.  A spin barrier (not std::barrier) is
// used because waits are sub-microsecond at our node counts and we must
// never let a node thread sleep while holding Time Warp work.

#include <atomic>
#include <cstdint>

#include "util/check.hpp"

namespace pls::warped {

class SpinBarrier {
 public:
  explicit SpinBarrier(std::uint32_t participants)
      : participants_(participants) {
    PLS_CHECK(participants >= 1);
  }

  SpinBarrier(const SpinBarrier&) = delete;
  SpinBarrier& operator=(const SpinBarrier&) = delete;

  /// Block (spinning) until all participants arrive.
  void arrive_and_wait() noexcept {
    const std::uint64_t my_epoch = epoch_.load(std::memory_order_acquire);
    if (arrived_.fetch_add(1, std::memory_order_acq_rel) + 1 ==
        participants_) {
      arrived_.store(0, std::memory_order_relaxed);
      epoch_.store(my_epoch + 1, std::memory_order_release);
    } else {
      while (epoch_.load(std::memory_order_acquire) == my_epoch) {
        // spin; GVT rendezvous latency is the simulation's critical path
      }
    }
  }

 private:
  const std::uint32_t participants_;
  std::atomic<std::uint32_t> arrived_{0};
  std::atomic<std::uint64_t> epoch_{0};
};

}  // namespace pls::warped
