#pragma once
// The coalescing comm fabric: per-destination send buffering on the
// sender side, batch-granular lock-free transfer in the middle, and a
// transport-hiding Channel interface so the two ends never know whether
// the peer lives in this process (InProcChannel, below) or behind a
// socket/MPI rank (a future backend slots in without touching the
// kernel).
//
// Why batches: the paper's testbed made inter-node messages the dominant
// cost, and the per-message protocol mirrored that — one mutex
// acquisition and one heap rebalance per event.  Coalescing inverts it:
// a node thread accumulates the InFlights it routes during an LTSF
// execute burst into one per-destination buffer and hands the whole
// buffer over with a single lock-free push.  Synchronization cost is per
// *batch*, marshalling cost stays per message (the modeled
// send_overhead_ns is charged at buffer-add time, where the real
// marshalling work would happen).
//
// GVT soundness under coalescing (see src/warped/README.md for the full
// argument; tested by tests/warped_comm_test.cpp):
//  * A buffered message carries its sender's epoch color from *add*
//    (push) time, never from flush time, and the sender performs
//    GvtCoordinator::count_send before the add.  A batch of n messages
//    therefore counts as n transient messages in the Mattern accounting;
//    the batch itself is invisible to GVT.
//  * A buffered-but-unflushed send holds the sender's GVT report down:
//    SendCoalescer::min_recv_time() must be folded into the node's join
//    report exactly like the holding heap's minimum.
//  * Flush is forced at LTSF-burst end (every kernel poll), before a GVT
//    join, at migration ship, and by the size/age bounds in
//    CoalesceConfig — a white message can sit buffered only within one
//    poll, so GVT rounds stay live.

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "warped/comm.hpp"

namespace pls::warped {

/// One coalesced transfer unit: every message a sender buffered for one
/// destination since the last flush.  Intrusively chained for the
/// mailbox's lock-free stack.
struct Batch {
  std::vector<InFlight> msgs;
  Batch* next = nullptr;
};

/// Multi-producer single-consumer mailbox of Batches: a Treiber stack
/// whose producers pay one CAS per *batch* (the per-message mutex this
/// replaces paid one lock per event) and whose consumer takes the whole
/// chain with a single exchange.  Producers only ever push and the
/// consumer only ever detaches the entire list, so the classic ABA
/// hazard of lock-free stacks cannot arise.
///
/// Staleness contract of probably_empty(): the probe may claim
/// "not empty" spuriously (the counter is raised before the push's CAS
/// completes, so a drain racing the push can find nothing yet), but once
/// push() has returned, a subsequent probe is guaranteed to see the
/// counter non-zero until those messages are drained.  The probe
/// therefore never parks a mailbox with completed-but-undrained content
/// — the failure mode that would deadlock the receive loop — and a
/// spurious "not empty" merely costs one empty drain.  There is no exact
/// empty(): the only caller that ever needed exactness was the GVT
/// accounting, and that is what the Mattern send/drain counters are for.
class alignas(64) BatchMailbox {
 public:
  BatchMailbox() = default;
  BatchMailbox(const BatchMailbox&) = delete;
  BatchMailbox& operator=(const BatchMailbox&) = delete;

  ~BatchMailbox() {
    Batch* b = head_.load(std::memory_order_acquire);
    while (b != nullptr) {
      Batch* next = b->next;
      delete b;
      b = next;
    }
  }

  /// Producer side; one CAS loop per batch.  The message counter rises
  /// *before* the CAS so it can never run behind a concurrent drain's
  /// subtraction and wrap (the drain only subtracts messages it actually
  /// took off the stack).
  void push(std::unique_ptr<Batch> batch) noexcept {
    approx_msgs_.fetch_add(batch->msgs.size(), std::memory_order_release);
    Batch* raw = batch.release();
    Batch* head = head_.load(std::memory_order_relaxed);
    do {
      raw->next = head;
    } while (!head_.compare_exchange_weak(head, raw,
                                          std::memory_order_release,
                                          std::memory_order_relaxed));
  }

  /// Consumer side: detach the whole chain with one exchange and move
  /// every message into `out` in push order (the stack is LIFO over
  /// batches; the chain is reversed before unpacking).  Returns the
  /// number of messages moved.
  std::size_t drain(std::vector<InFlight>& out) {
    Batch* chain = head_.exchange(nullptr, std::memory_order_acquire);
    if (chain == nullptr) return 0;
    Batch* rev = nullptr;
    std::size_t n = 0;
    while (chain != nullptr) {
      Batch* next = chain->next;
      chain->next = rev;
      rev = chain;
      n += chain->msgs.size();
      chain = next;
    }
    // Reserve up front: a piecemeal grow inside the move-insert would
    // re-move InFlights already drained.
    out.reserve(out.size() + n);
    while (rev != nullptr) {
      Batch* next = rev->next;
      for (auto& m : rev->msgs) out.push_back(std::move(m));
      delete rev;
      rev = next;
    }
    approx_msgs_.fetch_sub(n, std::memory_order_relaxed);
    return n;
  }

  /// Lock-free idle-path probe; see the staleness contract above.
  bool probably_empty() const noexcept {
    return approx_msgs_.load(std::memory_order_acquire) == 0;
  }

 private:
  std::atomic<Batch*> head_{nullptr};
  std::atomic<std::size_t> approx_msgs_{0};
};

/// Transport abstraction between node endpoints.  The kernel only ever
/// sends whole Batches and drains whole Batches; what carries them —
/// in-process pointers today, sockets or MPI ranks for a distributed
/// backend — is the implementation's business.  All members must be
/// callable concurrently from different node threads; drain() and
/// probably_empty() for a given endpoint are only called by that
/// endpoint's owner.
class Channel {
 public:
  virtual ~Channel() = default;

  /// Number of endpoints (node slots) this channel connects.
  virtual std::uint32_t endpoints() const noexcept = 0;

  /// Deliver `batch` to endpoint `to` (any thread).
  virtual void send(std::uint32_t to, std::unique_ptr<Batch> batch) = 0;

  /// Move every delivered message for `node` into `out`; owner only.
  virtual std::size_t drain(std::uint32_t node,
                            std::vector<InFlight>& out) = 0;

  /// Lock-free emptiness probe for `node`'s endpoint; owner only.  Same
  /// staleness contract as BatchMailbox::probably_empty().
  virtual bool probably_empty(std::uint32_t node) const noexcept = 0;
};

/// The in-process transport: one BatchMailbox per endpoint (cache-line
/// aligned so producers for different destinations never contend on one
/// line).  This is the only backend today; the kernel constructs one
/// itself when KernelConfig::channel is null.
class InProcChannel final : public Channel {
 public:
  explicit InProcChannel(std::uint32_t n)
      : n_(n), boxes_(std::make_unique<BatchMailbox[]>(n)) {}

  std::uint32_t endpoints() const noexcept override { return n_; }

  void send(std::uint32_t to, std::unique_ptr<Batch> batch) override {
    boxes_[to].push(std::move(batch));
  }

  std::size_t drain(std::uint32_t node,
                    std::vector<InFlight>& out) override {
    return boxes_[node].drain(out);
  }

  bool probably_empty(std::uint32_t node) const noexcept override {
    return boxes_[node].probably_empty();
  }

 private:
  std::uint32_t n_;
  std::unique_ptr<BatchMailbox[]> boxes_;
};

/// Send-side coalescing knobs (KernelConfig::coalesce).
struct CoalesceConfig {
  /// Off = every add flushes immediately as a one-message batch through
  /// the identical path, so on-vs-off comparisons isolate the batching.
  bool enabled = true;
  /// Size bound: a destination buffer reaching this many messages
  /// flushes from inside add(), bounding batch memory and the burst of
  /// heap pushes the receiver absorbs at once.
  std::uint32_t max_batch_msgs = 64;
  /// Age bound: if the oldest buffered message for a destination is this
  /// old at the next add(), the buffer flushes.  A backstop only — the
  /// kernel flushes every destination at each LTSF-burst end anyway, so
  /// this matters just for pathological bursts that keep routing without
  /// reaching the burst boundary.
  std::uint64_t max_batch_age_ns = 200'000;
};

/// Cumulative flush accounting (NodeStats / obs gauges).
struct CoalesceStats {
  std::uint64_t batches_flushed = 0;  ///< batches pushed into the channel
  std::uint64_t msgs_flushed = 0;     ///< messages inside them
  std::uint64_t max_batch_msgs = 0;   ///< largest single batch
};

/// Per-node-thread send buffers, one per destination.  Owner-thread only
/// — all the cross-thread machinery lives behind Channel::send.
///
/// Protocol obligations of the caller (the kernel's routing step):
///  * stamp msg.epoch with the sender's current GVT round and call
///    GvtCoordinator::count_send *before* add() — epoch color and
///    transient-message accounting are add-time properties, so a batch
///    of n messages counts as exactly n transients no matter when it
///    flushes;
///  * charge the modeled per-message send_overhead_ns before add();
///  * fold min_recv_time() into every GVT join report — a buffered
///    message is work this node owes the world, exactly like a held or
///    limbo event;
///  * flush_all() at every LTSF-burst end (and thus before the next
///    join) and after the node loop exits; flush_dest() when shipping a
///    migration package so packages never sit buffered.
/// deliver_at_ns is stamped at flush time (flush wall-clock + latency):
/// the wire is only paid when the batch actually leaves, which is what
/// makes a coalesced run's modeled delivery no *earlier* than the
/// per-message baseline's.
class SendCoalescer {
 public:
  SendCoalescer() = default;

  void configure(Channel* ch, CoalesceConfig cfg) {
    ch_ = ch;
    cfg_ = cfg;
    if (cfg_.max_batch_msgs == 0) cfg_.max_batch_msgs = 1;
    bufs_.clear();
    bufs_.resize(ch->endpoints());
  }

  /// Buffer one message for `dest`; may flush (size/age bound, or always
  /// when coalescing is disabled).
  void add(std::uint32_t dest, InFlight msg, std::uint64_t now_ns,
           std::uint64_t latency_ns) {
    DestBuf& buf = bufs_[dest];
    if (buf.msgs.empty()) buf.first_add_ns = now_ns;
    if (msg.event.recv_time < buf.min_recv) buf.min_recv = msg.event.recv_time;
    buf.msgs.push_back(std::move(msg));
    ++buffered_;
    if (!cfg_.enabled || buf.msgs.size() >= cfg_.max_batch_msgs ||
        now_ns - buf.first_add_ns >= cfg_.max_batch_age_ns) {
      flush_dest(dest, now_ns, latency_ns);
    }
  }

  /// Flush one destination's buffer as a single Batch (no-op if empty).
  void flush_dest(std::uint32_t dest, std::uint64_t now_ns,
                  std::uint64_t latency_ns) {
    DestBuf& buf = bufs_[dest];
    if (buf.msgs.empty()) return;
    auto batch = std::make_unique<Batch>();
    batch->msgs.swap(buf.msgs);
    buf.min_recv = kEndOfTime;
    buf.first_add_ns = 0;
    const std::size_t n = batch->msgs.size();
    // The wire is paid now: delivery deadline = flush time + latency.
    const std::uint64_t deliver_at = now_ns + latency_ns;
    for (auto& m : batch->msgs) m.deliver_at_ns = deliver_at;
    buffered_ -= n;
    ++stats_.batches_flushed;
    stats_.msgs_flushed += n;
    if (n > stats_.max_batch_msgs) stats_.max_batch_msgs = n;
    ch_->send(dest, std::move(batch));
  }

  /// Flush every destination; returns messages flushed (0 = nothing
  /// buffered, the common idle case — checked cheaply via buffered_).
  std::size_t flush_all(std::uint64_t now_ns, std::uint64_t latency_ns) {
    if (buffered_ == 0) return 0;
    const std::size_t n = buffered_;
    for (std::uint32_t d = 0; d < bufs_.size(); ++d) {
      flush_dest(d, now_ns, latency_ns);
    }
    return n;
  }

  /// Minimum receive time over everything still buffered (kEndOfTime if
  /// none).  Exact, owner-thread only; folded into the GVT join report.
  SimTime min_recv_time() const noexcept {
    SimTime m = kEndOfTime;
    for (const DestBuf& b : bufs_) {
      if (b.min_recv < m) m = b.min_recv;
    }
    return m;
  }

  std::size_t buffered() const noexcept { return buffered_; }
  const CoalesceStats& stats() const noexcept { return stats_; }

 private:
  struct DestBuf {
    std::vector<InFlight> msgs;
    SimTime min_recv = kEndOfTime;
    std::uint64_t first_add_ns = 0;
  };

  Channel* ch_ = nullptr;
  CoalesceConfig cfg_;
  std::vector<DestBuf> bufs_;
  std::size_t buffered_ = 0;
  CoalesceStats stats_;
};

}  // namespace pls::warped
