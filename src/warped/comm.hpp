#pragma once
// Inter-node communication: mailboxes plus the modeled network.
//
// The paper's testbed was eight workstations on fast Ethernet — inter-node
// messages were orders of magnitude more expensive than intra-node event
// handoffs.  On a single multicore that asymmetry disappears, so we model
// it explicitly (DESIGN.md §3.2):
//   * the sender burns `send_overhead_ns` of CPU per inter-node message
//     (marshalling / protocol stack cost), and
//   * the message only becomes *deliverable* `latency_ns` of wall-clock
//     time after the send (wire + switch latency).
// Intra-node events bypass all of this, exactly as LPs inside one WARPED
// cluster communicated directly.
//
// A Mailbox is the receive endpoint of one node: senders append under a
// mutex; the owner drains everything into its local holding heap and pops
// entries as their delivery deadline passes.  Message transfer is atomic
// (the push completes inside the sender's routing step), so "in transit"
// for the GVT transient-message accounting (gvt.hpp) means exactly
// "pushed but not yet drained"; every InFlight carries the GVT epoch its
// sender was in at push time.

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <functional>
#include <iterator>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "warped/types.hpp"

namespace pls::warped {

struct NetworkModel {
  std::uint64_t send_overhead_ns = 0;  ///< sender CPU cost per message
  std::uint64_t latency_ns = 0;        ///< delivery delay (wall clock)
};

/// Live LP migration package (dynamic repartitioning; see
/// src/warped/README.md for the protocol).  The source node cancels the
/// LP's speculation past GVT, fossil-collects to GVT, and ships everything
/// that remains — the committed state at the newest surviving snapshot
/// plus the pending input events — through the *same* mailbox channel as
/// events.  Riding the normal channel is what keeps the Mattern
/// transient-message accounting (gvt.hpp) sound for a package in flight:
/// it is counted before the push and on the drain like any message, and
/// the carrying InFlight's event.recv_time is the LP's gvt_min_time at
/// packaging time, so the package holds GVT down until it is installed.
struct MigrationMsg {
  LpId lp = kInvalidLp;
  std::uint32_t from_node = 0;
  std::uint32_t to_node = 0;

  // Residual Time Warp state (everything at or below the fossil base was
  // already committed and discarded at the source).
  LpState state;             ///< state at the newest surviving snapshot
  LpState initial_state;
  SimTime last_processed = 0;
  bool processed_any = false;
  SimTime replay_until = 0;  ///< coast-forward boundary (lp_runtime.hpp)
  std::size_t processed_count = 0;
  std::uint32_t batches_since_snapshot = 0;
  std::vector<Event> queue;  ///< committed prefix + pending input events
  std::vector<Snapshot> snapshots;
  std::vector<Event> output_queue;
  std::vector<Event> pending_antis;

  /// Monotonic send-id source: must survive the move, or a stale anti in
  /// flight could annihilate a fresh post-migration send.
  std::uint64_t next_event_id = 1;

  // Cumulative per-LP counters travel with the LP, so RunStats::per_lp
  // (and the activity signal fed back into repartitioning) stay
  // migration-invariant.
  std::uint64_t events_processed = 0;
  std::uint64_t events_rolled_back = 0;
  std::uint64_t rollbacks = 0;
  std::uint64_t max_rollback_depth = 0;
  std::uint64_t events_committed = 0;
  std::uint64_t sends_committed = 0;
  std::uint64_t lane_work_committed = 0;
};

/// A message in flight: deliverable once wall-clock `deliver_at_ns`
/// (relative to the kernel's epoch) has passed.  Carries either a plain
/// event or a migration package (`migration != nullptr`; `event` then
/// only supplies the GVT-accounting receive time).  Move-only because of
/// the package payload.
struct InFlight {
  std::uint64_t deliver_at_ns = 0;
  std::uint64_t seq = 0;    ///< FIFO tie-break for equal deadlines
  std::uint64_t epoch = 0;  ///< sender's GVT round at push (gvt.hpp color)
  Event event;
  std::unique_ptr<MigrationMsg> migration;

  friend bool operator>(const InFlight& a, const InFlight& b) noexcept {
    if (a.deliver_at_ns != b.deliver_at_ns) {
      return a.deliver_at_ns > b.deliver_at_ns;
    }
    return a.seq > b.seq;
  }
};

/// Multi-producer single-consumer mailbox.
class Mailbox {
 public:
  void push(InFlight msg) {
    std::lock_guard<std::mutex> lock(mutex_);
    box_.push_back(std::move(msg));
    // Inside the critical section so the counter can never run behind a
    // concurrent drain's fetch_sub and wrap below zero; the reader's
    // lock-free probe stays at most one poll stale, never forever.
    approx_size_.fetch_add(1, std::memory_order_release);
  }

  /// Move everything out (the owner re-buffers not-yet-deliverable
  /// messages in its holding heap).  Returns the number drained.
  std::size_t drain(std::vector<InFlight>& out) {
    std::lock_guard<std::mutex> lock(mutex_);
    const std::size_t n = box_.size();
    if (n != 0) {
      // Reserve up front: a piecemeal grow inside the move-insert would
      // re-move every InFlight already drained while the senders wait on
      // the mailbox mutex.
      out.reserve(out.size() + n);
      out.insert(out.end(), std::make_move_iterator(box_.begin()),
                 std::make_move_iterator(box_.end()));
      box_.clear();
      approx_size_.fetch_sub(n, std::memory_order_relaxed);
    }
    return n;
  }

  /// Lock-free idle-path check; may lag a concurrent push by one poll.
  bool probably_empty() const noexcept {
    return approx_size_.load(std::memory_order_acquire) == 0;
  }

  bool empty() {
    std::lock_guard<std::mutex> lock(mutex_);
    return box_.empty();
  }

 private:
  std::mutex mutex_;
  std::vector<InFlight> box_;
  std::atomic<std::size_t> approx_size_{0};
};

/// Min-heap (by delivery deadline) of in-flight messages held at the
/// receiver until their deadline passes.  Hand-rolled over a vector, with
/// the minimum receive timestamp maintained *incrementally* in a counted
/// multiset mirror: every GVT report needs min_recv_time(), and the old
/// O(n) scan per report dominated GVT cost on latency-bound runs.  Push
/// and pop pay O(log n) on the mirror; the report reads the smallest key
/// in O(1).
class HoldingHeap {
 public:
  void push(InFlight msg) {
    ++recv_times_[msg.event.recv_time];
    heap_.push_back(std::move(msg));
    std::push_heap(heap_.begin(), heap_.end(), std::greater<>{});
  }

  bool empty() const noexcept { return heap_.empty(); }
  std::size_t size() const noexcept { return heap_.size(); }

  const InFlight& top() const { return heap_.front(); }

  InFlight pop() {
    std::pop_heap(heap_.begin(), heap_.end(), std::greater<>{});
    InFlight msg = std::move(heap_.back());
    heap_.pop_back();
    const auto it = recv_times_.find(msg.event.recv_time);
    if (--it->second == 0) recv_times_.erase(it);
    return msg;
  }

  /// Earliest delivery deadline (for idle-sleep bounding); 0 if empty.
  std::uint64_t next_deadline_ns() const noexcept {
    return heap_.empty() ? 0 : heap_.front().deliver_at_ns;
  }

  /// Minimum receive timestamp over all held messages (kEndOfTime if
  /// empty); exact, owner-thread only — feeds the owner's GVT report.
  SimTime min_recv_time() const noexcept {
    return recv_times_.empty() ? kEndOfTime : recv_times_.begin()->first;
  }

 private:
  std::vector<InFlight> heap_;
  /// recv_time -> number of held messages carrying it (ordered).
  std::map<SimTime, std::uint32_t> recv_times_;
};

}  // namespace pls::warped
