#pragma once
// Inter-node communication: message/package payloads, the modeled
// network, and the receiver-side holding heap.  The transport itself —
// per-destination send coalescing, lock-free batch mailboxes and the
// pluggable Channel interface — lives in channel.hpp.
//
// The paper's testbed was eight workstations on fast Ethernet — inter-node
// messages were orders of magnitude more expensive than intra-node event
// handoffs.  On a single multicore that asymmetry disappears, so we model
// it explicitly (DESIGN.md §3.2):
//   * the sender burns `send_overhead_ns` of CPU per inter-node message
//     (marshalling / protocol stack cost), and
//   * the message only becomes *deliverable* `latency_ns` of wall-clock
//     time after the send (wire + switch latency; stamped when the
//     carrying batch flushes).
// Intra-node events bypass all of this, exactly as LPs inside one WARPED
// cluster communicated directly.
//
// GVT accounting boundary: a message is "in transit" from the moment the
// sender buffers it (SendCoalescer::add — where count_send runs and the
// epoch color is stamped) until the receiver drains it, regardless of
// when the batch physically flushes.  See channel.hpp and
// src/warped/README.md.

#include <algorithm>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "warped/types.hpp"

namespace pls::warped {

struct NetworkModel {
  std::uint64_t send_overhead_ns = 0;  ///< sender CPU cost per message
  std::uint64_t latency_ns = 0;        ///< delivery delay (wall clock)
};

/// Live LP migration package (dynamic repartitioning; see
/// src/warped/README.md for the protocol).  The source node cancels the
/// LP's speculation past GVT, fossil-collects to GVT, and ships everything
/// that remains — the committed state at the newest surviving snapshot
/// plus the pending input events — through the *same* coalesced channel
/// as events (flushed immediately at ship time, never left buffered).
/// Riding the normal channel is what keeps the Mattern transient-message
/// accounting (gvt.hpp) sound for a package in flight:
/// it is counted before the add and on the drain like any message, and
/// the carrying InFlight's event.recv_time is the LP's gvt_min_time at
/// packaging time, so the package holds GVT down until it is installed.
struct MigrationMsg {
  LpId lp = kInvalidLp;
  std::uint32_t from_node = 0;
  std::uint32_t to_node = 0;

  // Residual Time Warp state (everything at or below the fossil base was
  // already committed and discarded at the source).
  LpState state;             ///< state at the newest surviving snapshot
  LpState initial_state;
  SimTime last_processed = 0;
  bool processed_any = false;
  SimTime replay_until = 0;  ///< coast-forward boundary (lp_runtime.hpp)
  std::size_t processed_count = 0;
  std::uint32_t batches_since_snapshot = 0;
  std::vector<Event> queue;  ///< committed prefix + pending input events
  std::vector<Snapshot> snapshots;
  std::vector<Event> output_queue;
  std::vector<Event> pending_antis;

  /// Monotonic send-id source: must survive the move, or a stale anti in
  /// flight could annihilate a fresh post-migration send.
  std::uint64_t next_event_id = 1;

  // Cumulative per-LP counters travel with the LP, so RunStats::per_lp
  // (and the activity signal fed back into repartitioning) stay
  // migration-invariant.
  std::uint64_t events_processed = 0;
  std::uint64_t events_rolled_back = 0;
  std::uint64_t rollbacks = 0;
  std::uint64_t max_rollback_depth = 0;
  std::uint64_t events_committed = 0;
  std::uint64_t sends_committed = 0;
  std::uint64_t lane_work_committed = 0;
};

/// A message in flight: deliverable once wall-clock `deliver_at_ns`
/// (relative to the kernel's epoch) has passed.  Carries either a plain
/// event or a migration package (`migration != nullptr`; `event` then
/// only supplies the GVT-accounting receive time).  Move-only because of
/// the package payload.
struct InFlight {
  std::uint64_t deliver_at_ns = 0;
  std::uint64_t seq = 0;    ///< FIFO tie-break for equal deadlines
  std::uint64_t epoch = 0;  ///< sender's GVT round at push (gvt.hpp color)
  Event event;
  std::unique_ptr<MigrationMsg> migration;

  friend bool operator>(const InFlight& a, const InFlight& b) noexcept {
    if (a.deliver_at_ns != b.deliver_at_ns) {
      return a.deliver_at_ns > b.deliver_at_ns;
    }
    return a.seq > b.seq;
  }
};

/// Min-heap (by delivery deadline) of in-flight messages held at the
/// receiver until their deadline passes.  Hand-rolled over a vector, with
/// the minimum receive timestamp tracked in two flat SimTime min-heaps
/// using lazy deletion: `times_` holds the recv_time of every message
/// ever pushed and still notionally live, `dead_` the recv_time of every
/// popped one; matching tops cancel when the minimum is queried.  The
/// previous design kept a counted std::map mirror — one node allocation
/// plus a red-black rebalance per push/pop — which dominated the drain
/// path once the mailbox went batch-granular.  Here push/pop pay one
/// push_heap on a flat u64 vector (no allocation beyond amortized vector
/// growth) and min_recv_time() is O(1) whenever the minimum is live,
/// amortized O(log n) overall (each entry is pruned at most once).
class HoldingHeap {
 public:
  void push(InFlight msg) {
    times_.push_back(msg.event.recv_time);
    std::push_heap(times_.begin(), times_.end(), std::greater<>{});
    heap_.push_back(std::move(msg));
    std::push_heap(heap_.begin(), heap_.end(), std::greater<>{});
  }

  bool empty() const noexcept { return heap_.empty(); }
  std::size_t size() const noexcept { return heap_.size(); }

  const InFlight& top() const { return heap_.front(); }

  InFlight pop() {
    std::pop_heap(heap_.begin(), heap_.end(), std::greater<>{});
    InFlight msg = std::move(heap_.back());
    heap_.pop_back();
    // Lazy deletion: the recv_time mirror entry dies when it surfaces.
    dead_.push_back(msg.event.recv_time);
    std::push_heap(dead_.begin(), dead_.end(), std::greater<>{});
    return msg;
  }

  /// Earliest delivery deadline (for idle-sleep bounding); 0 if empty.
  std::uint64_t next_deadline_ns() const noexcept {
    return heap_.empty() ? 0 : heap_.front().deliver_at_ns;
  }

  /// Minimum receive timestamp over all held messages (kEndOfTime if
  /// empty); exact, owner-thread only — feeds the owner's GVT report.
  /// Non-const: prunes cancelled (popped) entries off the mirror tops.
  /// Every element of dead_ has a matching element in times_, and both
  /// are min-heaps, so dead_ can never surface a key below times_'s top;
  /// equal tops are a cancelled pair.
  SimTime min_recv_time() noexcept {
    while (!dead_.empty() && dead_.front() == times_.front()) {
      std::pop_heap(times_.begin(), times_.end(), std::greater<>{});
      times_.pop_back();
      std::pop_heap(dead_.begin(), dead_.end(), std::greater<>{});
      dead_.pop_back();
    }
    return times_.empty() ? kEndOfTime : times_.front();
  }

 private:
  std::vector<InFlight> heap_;
  std::vector<SimTime> times_;  ///< recv_time of every live message
  std::vector<SimTime> dead_;   ///< recv_time of popped, not yet pruned
};

}  // namespace pls::warped
