#pragma once
// Inter-node communication: mailboxes plus the modeled network.
//
// The paper's testbed was eight workstations on fast Ethernet — inter-node
// messages were orders of magnitude more expensive than intra-node event
// handoffs.  On a single multicore that asymmetry disappears, so we model
// it explicitly (DESIGN.md §3.2):
//   * the sender burns `send_overhead_ns` of CPU per inter-node message
//     (marshalling / protocol stack cost), and
//   * the message only becomes *deliverable* `latency_ns` of wall-clock
//     time after the send (wire + switch latency).
// Intra-node events bypass all of this, exactly as LPs inside one WARPED
// cluster communicated directly.
//
// A Mailbox is the receive endpoint of one node: senders append under a
// mutex; the owner drains everything into its local holding heap and pops
// entries as their delivery deadline passes.

#include <algorithm>
#include <cstdint>
#include <functional>
#include <mutex>
#include <vector>

#include "warped/types.hpp"

namespace pls::warped {

struct NetworkModel {
  std::uint64_t send_overhead_ns = 0;  ///< sender CPU cost per message
  std::uint64_t latency_ns = 0;        ///< delivery delay (wall clock)
};

/// A message in flight: deliverable once wall-clock `deliver_at_ns`
/// (relative to the kernel's epoch) has passed.
struct InFlight {
  std::uint64_t deliver_at_ns = 0;
  std::uint64_t seq = 0;  ///< FIFO tie-break for equal deadlines
  Event event;

  friend bool operator>(const InFlight& a, const InFlight& b) noexcept {
    if (a.deliver_at_ns != b.deliver_at_ns) {
      return a.deliver_at_ns > b.deliver_at_ns;
    }
    return a.seq > b.seq;
  }
};

/// Multi-producer single-consumer mailbox.
class Mailbox {
 public:
  void push(InFlight msg) {
    std::lock_guard<std::mutex> lock(mutex_);
    box_.push_back(std::move(msg));
  }

  /// Move everything out (the owner re-buffers not-yet-deliverable
  /// messages in its holding heap).
  void drain(std::vector<InFlight>& out) {
    std::lock_guard<std::mutex> lock(mutex_);
    if (box_.empty()) return;
    out.insert(out.end(), box_.begin(), box_.end());
    box_.clear();
  }

  /// Minimum receive timestamp of queued messages (kEndOfTime if empty).
  /// Used by the GVT computation while all node threads are quiescent.
  SimTime min_recv_time() {
    std::lock_guard<std::mutex> lock(mutex_);
    SimTime m = kEndOfTime;
    for (const auto& f : box_) m = std::min(m, f.event.recv_time);
    return m;
  }

  bool empty() {
    std::lock_guard<std::mutex> lock(mutex_);
    return box_.empty();
  }

 private:
  std::mutex mutex_;
  std::vector<InFlight> box_;
};

/// Min-heap (by delivery deadline) of in-flight messages held at the
/// receiver until their deadline passes.  Hand-rolled over a vector so the
/// GVT computation can scan the live entries for their minimum receive
/// timestamp (std::priority_queue hides its container).
class HoldingHeap {
 public:
  void push(InFlight msg) {
    heap_.push_back(std::move(msg));
    std::push_heap(heap_.begin(), heap_.end(), std::greater<>{});
  }

  bool empty() const noexcept { return heap_.empty(); }
  std::size_t size() const noexcept { return heap_.size(); }

  const InFlight& top() const { return heap_.front(); }

  InFlight pop() {
    std::pop_heap(heap_.begin(), heap_.end(), std::greater<>{});
    InFlight msg = std::move(heap_.back());
    heap_.pop_back();
    return msg;
  }

  /// Minimum receive timestamp over all held messages (kEndOfTime if
  /// empty); exact, for the GVT reduction.
  SimTime min_recv_time() const noexcept {
    SimTime m = kEndOfTime;
    for (const auto& f : heap_) m = std::min(m, f.event.recv_time);
    return m;
  }

 private:
  std::vector<InFlight> heap_;
};

}  // namespace pls::warped
