#pragma once
// Asynchronous Mattern-style GVT: colored (epoch-tagged) messages plus
// cumulative per-epoch sent/received counters.
//
// The seed kernel computed GVT with a stop-the-world rendezvous on a
// non-yielding spin barrier.  That is exact, but it couples every node
// thread three times per GVT round; with more node threads than cores each
// rendezvous burns whole scheduler timeslices and the simulation spends
// essentially all its wall time parked (the "kernel hang" tracked in
// ROADMAP.md since v0 — see src/warped/README.md for the autopsy).
//
// This coordinator removes the rendezvous entirely.  No thread ever waits
// for another:
//
//  * The controller (node 0) starts round R by bumping `round_`.
//  * Each node *joins* the round from its own main loop: it publishes the
//    minimum receive time of all work it holds (scheduler + holding heap)
//    and from then on tags outgoing inter-node messages with epoch R.
//    Messages tagged with an epoch < R are "white" for round R (sent
//    before the sender's cut), messages tagged R are "red" (after it).
//  * Every node counts the messages it pushes and drains per epoch
//    parity.  Round R is *complete* once (a) every node has joined and
//    (b) the white counters balance: sum(sent, epoch R-1) ==
//    sum(received, epoch R-1) — i.e. no white message is still sitting
//    undrained in a mailbox.  Until then the controller simply retries on
//    a later loop iteration; nobody blocks.
//  * A white message drained *after* the receiver joined crossed the cut,
//    so the receiver folds its receive time into `late_white_min`.
//
//    GVT(R) = min over nodes of (report_min, late_white_min).
//
// Soundness (Mattern '93, shared-memory specialisation): at each node's
// join instant all of its pending work is >= its report_min.  Afterwards a
// node only acquires work from (a) white messages — each folded into a
// late_white_min before the round can complete — or (b) red messages,
// which were produced by processing an event that was itself >= one of the
// round's minima, and carry a strictly larger receive time.  By induction
// over the (wall-clock) order of sends, nothing below GVT(R) can ever
// exist again.  "In transit" here means "counted at buffer-add but not
// yet drain-counted": a message enters the accounting when the sender
// adds it to its SendCoalescer (count_send runs before the add, epoch
// color is stamped then) and leaves when the receiver drains it from the
// channel — batch flushing in between is invisible to the counters, and
// a buffered send holds the sender's join report down via the
// coalescer's min_recv_time (see channel.hpp).
//
// Two cumulative counters per node indexed by epoch parity suffice: the
// controller starts round R+1 only after round R completed, so epochs two
// apart never have messages in flight simultaneously, and a fully drained
// epoch contributes equally to both sides of its parity slot forever.
// The per-slot drain invariant (a drained message's epoch is always
// my_round or my_round±1) is checked in debug builds by the kernel.

#include <atomic>
#include <cstdint>
#include <memory>

#include "util/check.hpp"
#include "warped/types.hpp"

namespace pls::warped {

class GvtCoordinator {
 public:
  explicit GvtCoordinator(std::uint32_t num_nodes) : num_nodes_(num_nodes) {
    PLS_CHECK(num_nodes >= 1);
    slots_ = std::make_unique<Slot[]>(num_nodes);
  }

  GvtCoordinator(const GvtCoordinator&) = delete;
  GvtCoordinator& operator=(const GvtCoordinator&) = delete;

  /// Current round id (0 = no round started yet; epoch 0 is the initial
  /// color every node starts in).
  std::uint64_t round() const noexcept {
    return round_.load(std::memory_order_acquire);
  }

  // ---- node side ----------------------------------------------------------

  /// Join `round`: publish the minimum receive time of everything this
  /// node currently holds.  Must be called with the node's routing queue
  /// empty (all owed sends already counted).  After this call the node
  /// must tag its sends with epoch == `round`.
  void join(std::uint32_t node, std::uint64_t round,
            SimTime local_min) noexcept {
    Slot& s = slots_[node];
    s.late_white_min.store(kEndOfTime, std::memory_order_relaxed);
    s.report_min.store(local_min, std::memory_order_relaxed);
    s.joined_round.store(round, std::memory_order_release);
  }

  /// Account one inter-node message push.  Call *before* the mailbox push
  /// so the received counter can never overtake the sent counter.
  void count_send(std::uint32_t node, std::uint64_t epoch) noexcept {
    slots_[node].sent[epoch & 1].fetch_add(1, std::memory_order_relaxed);
  }

  /// Account one mailbox drain at a node currently in `my_round`.  A
  /// message older than the receiver's cut crossed it: fold its receive
  /// time into the round's late-white minimum.
  void count_drain(std::uint32_t node, std::uint64_t msg_epoch,
                   std::uint64_t my_round, SimTime recv_time) noexcept {
    Slot& s = slots_[node];
    if (msg_epoch < my_round) {
      const SimTime cur = s.late_white_min.load(std::memory_order_relaxed);
      if (recv_time < cur) {
        s.late_white_min.store(recv_time, std::memory_order_relaxed);
      }
    }
    // Release pairs with the controller's acquire in whites_drained(): once
    // the counters balance, every late_white_min update is visible too.
    s.recvd[msg_epoch & 1].fetch_add(1, std::memory_order_release);
  }

  // ---- controller side ----------------------------------------------------

  /// Start round `r` (must be the successor of the last completed round).
  void start_round(std::uint64_t r) noexcept {
    round_.store(r, std::memory_order_release);
  }

  /// True once every node has joined `round`.  After this returns true the
  /// white sent-counters for the round are frozen (no node can tag epoch
  /// round-1 any more).
  bool all_joined(std::uint64_t round) const noexcept {
    for (std::uint32_t n = 0; n < num_nodes_; ++n) {
      if (slots_[n].joined_round.load(std::memory_order_acquire) < round) {
        return false;
      }
    }
    return true;
  }

  /// True once every white (epoch round-1) message has been drained by its
  /// receiver.  Only meaningful after all_joined(round).
  bool whites_drained(std::uint64_t round) const noexcept {
    const std::size_t par = (round - 1) & 1;
    std::uint64_t recvd = 0;
    for (std::uint32_t n = 0; n < num_nodes_; ++n) {
      recvd += slots_[n].recvd[par].load(std::memory_order_acquire);
    }
    std::uint64_t sent = 0;
    for (std::uint32_t n = 0; n < num_nodes_; ++n) {
      sent += slots_[n].sent[par].load(std::memory_order_relaxed);
    }
    return sent == recvd;
  }

  /// The round's GVT estimate; valid only after all_joined() &&
  /// whites_drained() both returned true for `round`.
  SimTime round_min() const noexcept {
    SimTime m = kEndOfTime;
    for (std::uint32_t n = 0; n < num_nodes_; ++n) {
      const Slot& s = slots_[n];
      m = std::min(m, s.report_min.load(std::memory_order_relaxed));
      m = std::min(m, s.late_white_min.load(std::memory_order_relaxed));
    }
    return m;
  }

  // ---- diagnostics (watchdog post-mortem; approximate under races) -------

  std::uint64_t joined_round_of(std::uint32_t node) const noexcept {
    return slots_[node].joined_round.load(std::memory_order_relaxed);
  }
  SimTime report_min_of(std::uint32_t node) const noexcept {
    return slots_[node].report_min.load(std::memory_order_relaxed);
  }
  SimTime late_white_min_of(std::uint32_t node) const noexcept {
    return slots_[node].late_white_min.load(std::memory_order_relaxed);
  }
  std::uint64_t sent_of(std::uint32_t node, std::size_t parity) const noexcept {
    return slots_[node].sent[parity & 1].load(std::memory_order_relaxed);
  }
  std::uint64_t recvd_of(std::uint32_t node,
                         std::size_t parity) const noexcept {
    return slots_[node].recvd[parity & 1].load(std::memory_order_relaxed);
  }

 private:
  // One cache line per node: joins and counter bumps are single-writer and
  // must not false-share with a neighbour's.
  struct alignas(64) Slot {
    std::atomic<std::uint64_t> joined_round{0};
    std::atomic<SimTime> report_min{kEndOfTime};
    std::atomic<SimTime> late_white_min{kEndOfTime};
    std::atomic<std::uint64_t> sent[2]{};   ///< cumulative, by epoch parity
    std::atomic<std::uint64_t> recvd[2]{};  ///< cumulative, by epoch parity
  };

  const std::uint32_t num_nodes_;
  std::atomic<std::uint64_t> round_{0};
  std::unique_ptr<Slot[]> slots_;
};

}  // namespace pls::warped
