#include "warped/kernel.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <deque>
#include <thread>

#include "obs/session.hpp"
#include "util/check.hpp"
#include "util/log.hpp"
#include "util/timer.hpp"

namespace pls::warped {
namespace {

using util::steady_now_ns;

struct SchedEntry {
  SimTime time;
  LpId lp;
  friend bool operator>(const SchedEntry& a, const SchedEntry& b) noexcept {
    if (a.time != b.time) return a.time > b.time;
    return a.lp > b.lp;
  }
};

/// Idle polls (with yield) before the loop starts napping instead of
/// spinning.  Spinning reacts fastest while work is in flight; napping is
/// what keeps an oversubscribed machine (more node threads than cores)
/// from starving the thread that actually holds work.
constexpr std::uint64_t kIdleSpinPolls = 64;
/// Longest idle nap; bounds GVT-join and delivery latency.
constexpr std::uint64_t kIdleNapNs = 20'000;

}  // namespace

/// Per-node state.  Only the owning thread touches anything here except
/// `exec_ticks` (read by the watchdog); the node's multi-producer
/// receive endpoint lives in the kernel's Channel, keyed by node id.
struct Kernel::Cluster {
  std::uint32_t node = 0;
  std::vector<LpId> own_lps;

  // LTSF scheduler: lazy min-heap over (next pending time, lp).  Entries
  // go stale when an LP's next_time changes; clean_top() discards them.
  // `sched_mark[lp]` is the time of the LP's single *live* entry
  // (kEndOfTime = none): pushes that would duplicate it are skipped and a
  // surfacing entry whose time differs from the mark is dropped dead
  // instead of corrected-and-re-pushed.  Without the marks an always-busy
  // LP (every batch schedules the next) grows the heap by O(1) entries
  // per batch forever and clean_top degenerates quadratically.
  std::vector<SchedEntry> sched;
  std::vector<SimTime> sched_mark;

  HoldingHeap holding;
  std::vector<InFlight> drain_buf;
  std::deque<Event> pending;  ///< routing work queue (FIFO per channel)
  std::uint64_t net_seq = 0;

  /// Per-destination send buffers (channel.hpp): remote routes add here
  /// (epoch-stamped and GVT-counted at add time); the main loop flushes
  /// every destination at each LTSF-burst end, and min_recv_time() joins
  /// the GVT report so a buffered send holds the estimate down.
  SendCoalescer coalescer;

  // GVT round this node has joined (epoch color of its sends).
  std::uint64_t my_round = 0;
  // Local minimum this node reported when it joined its current GVT round.
  // The round's published estimate can never exceed it (the estimate is a
  // min over all joins), so it bounds from above every GVT value a round
  // this node already joined may still publish.
  SimTime last_join_min = kEndOfTime;
  // Last completed-round count this node fossil-collected for.
  std::uint64_t last_fossil_round = 0;
  // Last migration-plan version this node acted on (emigration scan).
  std::uint64_t seen_plan_version = 0;

  // Live migration (dynamic repartitioning).  `installed[lp]` is this
  // node's local view of whether LP lp's runtime state physically lives
  // here; an event routed here for a not-yet-installed LP (it raced ahead
  // of the migration package) waits in `limbo` until the install.
  std::vector<std::uint8_t> installed;
  std::vector<Event> limbo;

  /// Smallest receive time waiting in limbo (kEndOfTime if none); those
  /// events are real pending work this node owes the world, so the GVT
  /// report must cover them exactly like the holding heap's.
  SimTime limbo_min() const noexcept {
    SimTime m = kEndOfTime;
    for (const Event& ev : limbo) m = std::min(m, ev.recv_time);
    return m;
  }

  std::uint64_t idle_streak = 0;
  NodeStats stats;
  OptimismThrottle throttle;

  // Observability (src/obs/): null = off.  `trace` is this node's ring;
  // `gauges` the atomic mirrors the background sampler reads.
  obs::TraceRing* trace = nullptr;
  obs::NodeGauges* gauges = nullptr;
  /// This node's arena (mem/pool.hpp); installed as the thread's current
  /// pool for the whole node_main loop, so every wide event payload or
  /// state word allocated here is node-local.
  mem::Pool* pool = nullptr;
  /// Throttle-trajectory entries already traced.
  std::size_t traced_decisions = 0;

  // Live-memory accounting, maintained incrementally at every queue
  // mutation (insert, commit, fossil, migration) instead of only at
  // fossil passes — the high-water mark used to under-report between
  // fossil passes, exactly when a rollback storm balloons the queues.
  std::vector<std::size_t> live_of;  ///< per-LP last observed live_entries
  std::size_t live_now = 0;          ///< == sum(live_of[own LPs])

  /// Refresh `lp`'s contribution to the live count and the peak.
  void note_live(const std::vector<LpRuntime>& rts, LpId lp) noexcept {
    const std::size_t cur = rts[lp].live_entries();
    live_now += cur;
    live_now -= live_of[lp];
    live_of[lp] = cur;
    if (live_now > stats.peak_live_entries) {
      stats.peak_live_entries = live_now;
    }
  }

  /// Watchdog progress counter (relaxed; owner increments per batch).
  std::atomic<std::uint64_t> exec_ticks{0};

  /// Set by the owner when its next pending work sits beyond the optimism
  /// window: only a GVT advance can unblock it, so the controller starts
  /// the next round early instead of waiting out the full interval.
  std::atomic<bool> window_blocked{false};

  void push_sched(SimTime t, LpId lp) {
    if (t == kEndOfTime || sched_mark[lp] == t) return;
    sched_mark[lp] = t;
    sched.push_back(SchedEntry{t, lp});
    std::push_heap(sched.begin(), sched.end(), std::greater<>{});
  }

  void pop_sched() {
    std::pop_heap(sched.begin(), sched.end(), std::greater<>{});
    sched.pop_back();
  }

  /// Discard stale heap entries; afterwards the top (if any) is exact.
  /// An entry for an LP that migrated away is dropped without touching
  /// its runtime — the destination may be importing into it concurrently.
  void clean_top(const std::vector<LpRuntime>& rts) {
    while (!sched.empty()) {
      const SchedEntry top = sched.front();
      if (!installed[top.lp]) {
        pop_sched();
        sched_mark[top.lp] = kEndOfTime;
        continue;
      }
      if (top.time != sched_mark[top.lp]) {
        // Superseded duplicate: the LP's live entry is elsewhere (or was
        // re-marked); this one dies here instead of being re-pushed.
        pop_sched();
        continue;
      }
      const SimTime actual = rts[top.lp].next_time();
      if (actual == top.time) return;
      pop_sched();
      sched_mark[top.lp] = kEndOfTime;
      push_sched(actual, top.lp);
    }
  }

  /// GVT report contribution of this cluster's LPs.  Scans gvt_min_time()
  /// rather than reading the scheduler heap: an LP coast-forwarding
  /// through a replay window has pending batches *below* an already
  /// published GVT whose re-execution is effect-free, and the heap is
  /// keyed by the raw next_time the scheduler needs.  O(own LPs), once
  /// per GVT round.
  SimTime gvt_report_min(const std::vector<LpRuntime>& rts) const {
    SimTime m = kEndOfTime;
    for (LpId lp : own_lps) m = std::min(m, rts[lp].gvt_min_time());
    return m;
  }
};

namespace {

/// Context used while executing one batch on a cluster; buffers sends for
/// post-commit routing (sending mid-execution could cascade a rollback of
/// the very LP whose execute() frame is still live).
class ClusterContext final : public Context {
 public:
  ClusterContext(SimTime now, SimTime end, LpId self, LpRuntime* rt,
                 std::deque<Event>* out, bool suppress, bool init_mode)
      : now_(now), end_(end), self_(self), rt_(rt), out_(out),
        suppress_(suppress), init_mode_(init_mode) {}

  SimTime now() const override { return now_; }
  SimTime end_time() const override { return end_; }
  LpId self() const override { return self_; }
  LpState& state() override { return rt_->state(); }

  void send(LpId target, SimTime recv_time, std::uint32_t port,
            std::uint64_t value, std::uint64_t mask) override {
    PLS_CHECK_MSG(init_mode_ ? recv_time >= now_ : recv_time > now_,
                  "LP " << self_ << " scheduled an event at " << recv_time
                        << " not after now=" << now_);
    PLS_CHECK_MSG(recv_time <= end_ || recv_time == kEndOfTime,
                  "LP " << self_ << " scheduled beyond the end time");
    if (suppress_) return;  // coast-forward replay: outputs already exist
    Event ev;
    ev.recv_time = recv_time;
    ev.send_time = now_;
    ev.target = target;
    ev.sender = self_;
    ev.port = port;
    ev.value = value;
    ev.mask = mask;
    ev.sign = Sign::kPositive;
    ev.id = rt_->alloc_event_id();
    rt_->record_output(ev);
    out_->push_back(ev);
  }

  void send_wide(LpId target, SimTime recv_time, std::uint32_t port,
                 const std::uint64_t* values, const std::uint64_t* masks,
                 std::uint32_t k) override {
    if (k == 1) {
      send(target, recv_time, port, values[0], masks[0]);
      return;
    }
    PLS_CHECK_MSG(init_mode_ ? recv_time >= now_ : recv_time > now_,
                  "LP " << self_ << " scheduled an event at " << recv_time
                        << " not after now=" << now_);
    PLS_CHECK_MSG(recv_time <= end_ || recv_time == kEndOfTime,
                  "LP " << self_ << " scheduled beyond the end time");
    if (suppress_) return;
    Event ev;
    ev.recv_time = recv_time;
    ev.send_time = now_;
    ev.target = target;
    ev.sender = self_;
    ev.port = port;
    ev.sign = Sign::kPositive;
    ev.widen(k);
    for (std::uint32_t w = 0; w < k; ++w) {
      ev.set_value_word(w, values[w]);
      ev.set_mask_word(w, masks[w]);
    }
    ev.id = rt_->alloc_event_id();
    rt_->record_output(ev);
    out_->push_back(ev);
  }

 private:
  SimTime now_;
  SimTime end_;
  LpId self_;
  LpRuntime* rt_;
  std::deque<Event>* out_;
  bool suppress_;
  bool init_mode_;
};

}  // namespace

Kernel::Kernel(std::vector<LogicalProcess*> lps,
               std::vector<std::uint32_t> node_of, KernelConfig cfg)
    : lps_(std::move(lps)), node_of_(std::move(node_of)), cfg_(cfg),
      gvt_coord_(cfg.num_nodes) {
  PLS_CHECK(cfg_.num_nodes >= 1);
  PLS_CHECK_MSG(lps_.size() == node_of_.size(),
                "node map size must equal LP count");
  PLS_CHECK_MSG(!lps_.empty(), "kernel needs at least one LP");
  pools_.reserve(cfg_.num_nodes);
  for (std::uint32_t n = 0; n < cfg_.num_nodes; ++n) {
    pools_.push_back(std::make_unique<mem::Pool>());
  }
  runtimes_.reserve(lps_.size());
  for (LpId i = 0; i < lps_.size(); ++i) {
    PLS_CHECK_MSG(lps_[i] != nullptr, "null LP behaviour");
    PLS_CHECK_MSG(node_of_[i] < cfg_.num_nodes,
                  "LP " << i << " mapped to node " << node_of_[i]
                        << " >= num_nodes");
    runtimes_.emplace_back(i, lps_[i], cfg_.state_period);
  }
  // Adaptive mode with no explicit window starts at a horizon-relative
  // guess instead of fully open: the controller converges either way, but
  // short runs never amortize the initial storm an open window invites.
  SimTime base_window = cfg_.optimism_window;
  if (cfg_.throttle.mode == ThrottleMode::kAdaptive && base_window == 0) {
    base_window = std::max(cfg_.throttle.min_window, cfg_.end_time / 16);
  }
  // Transport: the caller's channel, or an in-process one of our own.
  if (cfg_.channel != nullptr) {
    PLS_CHECK_MSG(cfg_.channel->endpoints() >= cfg_.num_nodes,
                  "channel connects fewer endpoints than the kernel has "
                  "nodes");
    channel_ = cfg_.channel;
  } else {
    own_channel_ = std::make_unique<InProcChannel>(cfg_.num_nodes);
    channel_ = own_channel_.get();
  }
  clusters_.reserve(cfg_.num_nodes);
  for (std::uint32_t n = 0; n < cfg_.num_nodes; ++n) {
    clusters_.push_back(std::make_unique<Cluster>());
    clusters_.back()->node = n;
    clusters_.back()->throttle = OptimismThrottle(cfg_.throttle, base_window);
    clusters_.back()->pool = pools_[n].get();
    clusters_.back()->coalescer.configure(channel_, cfg_.coalesce);
  }
  for (LpId i = 0; i < lps_.size(); ++i) {
    clusters_[node_of_[i]]->own_lps.push_back(i);
  }
  // Live routing table: starts as the static partition; dynamic
  // repartitioning flips entries at migration time.
  route_ = std::make_unique<std::atomic<std::uint32_t>[]>(lps_.size());
  for (LpId i = 0; i < lps_.size(); ++i) {
    route_[i].store(node_of_[i], std::memory_order_relaxed);
  }
  migratory_ = cfg_.repartition_interval > 0 &&
               static_cast<bool>(cfg_.repartition_hook);
  for (auto& cl : clusters_) {
    cl->installed.assign(lps_.size(), 0);
    cl->live_of.assign(lps_.size(), 0);
    cl->sched_mark.assign(lps_.size(), kEndOfTime);
  }
  if (cfg_.obs != nullptr) {
    PLS_CHECK_MSG(cfg_.obs->num_nodes() >= cfg_.num_nodes,
                  "ObsSession sized for fewer nodes than the kernel runs");
    for (std::uint32_t n = 0; n < cfg_.num_nodes; ++n) {
      clusters_[n]->trace = cfg_.obs->ring(n);
      clusters_[n]->gauges = &cfg_.obs->gauges(n);
    }
  }
  for (LpId i = 0; i < lps_.size(); ++i) {
    clusters_[node_of_[i]]->installed[i] = 1;
  }
  if (migratory_) {
    plan_ = node_of_;
    pub_committed_ = std::make_unique<std::atomic<std::uint64_t>[]>(
        lps_.size());
    pub_sends_ = std::make_unique<std::atomic<std::uint64_t>[]>(lps_.size());
    pub_lane_work_ =
        std::make_unique<std::atomic<std::uint64_t>[]>(lps_.size());
    for (LpId i = 0; i < lps_.size(); ++i) {
      pub_committed_[i].store(0, std::memory_order_relaxed);
      pub_sends_[i].store(0, std::memory_order_relaxed);
      pub_lane_work_[i].store(0, std::memory_order_relaxed);
    }
    plan_ack_ = std::make_unique<std::atomic<std::uint64_t>[]>(
        cfg_.num_nodes);
    for (std::uint32_t n = 0; n < cfg_.num_nodes; ++n) {
      plan_ack_[n].store(0, std::memory_order_relaxed);
    }
  }
}

Kernel::~Kernel() = default;

void Kernel::init_all_lps() {
  // Single-threaded elaboration: run every LP's init() and deliver its
  // initial sends directly (no network, no rollbacks possible yet).
  std::deque<Event> out;
  for (LpId i = 0; i < lps_.size(); ++i) {
    runtimes_[i].install_initial_state(lps_[i]->initial_state());
  }
  for (LpId i = 0; i < lps_.size(); ++i) {
    ClusterContext ctx(0, cfg_.end_time, i, &runtimes_[i], &out,
                       /*suppress=*/false, /*init_mode=*/true);
    lps_[i]->init(ctx);
    while (!out.empty()) {
      const Event ev = out.front();
      out.pop_front();
      const auto res = runtimes_[ev.target].insert(ev);
      PLS_CHECK_MSG(!res.rolled_back, "rollback during init phase");
    }
  }
  for (std::uint32_t n = 0; n < cfg_.num_nodes; ++n) {
    for (LpId lp : clusters_[n]->own_lps) {
      clusters_[n]->push_sched(runtimes_[lp].next_time(), lp);
      clusters_[n]->note_live(runtimes_, lp);
    }
  }
}

void Kernel::node_main(std::uint32_t node) {
  Cluster& cl = *clusters_[node];
  const SimTime end = cfg_.end_time;
  const std::uint64_t latency = cfg_.network.latency_ns;
  // Attribute this thread's log lines (PLS_LOG_TIMESTAMPS=1 shows them).
  util::set_log_thread_tag("node" + std::to_string(node));
  // Node-local arena for the whole loop: every wide payload this thread
  // allocates (inserts, snapshots, migration installs) comes from — and
  // recycles into — this node's pool.
  mem::PoolScope pool_scope(cl.pool);

  // Routes everything in cl.pending: local events are inserted (possibly
  // rolling their LP back, which enqueues cancellation antis right here);
  // remote events pay the per-message network overhead and are buffered
  // in the per-destination send coalescer, epoch-tagged and counted for
  // the GVT transient-message accounting *at add time* (the batch they
  // later flush in is invisible to GVT — n buffered messages are n
  // transients).  The route table is re-read per event and per hop, so an
  // event that chased a migrated LP to its old node simply forwards one
  // more hop.
  auto route_pending = [&] {
    while (!cl.pending.empty()) {
      const Event ev = cl.pending.front();
      cl.pending.pop_front();
      const std::uint32_t target_node =
          route_[ev.target].load(std::memory_order_relaxed);
      if (target_node == node) {
        if (!cl.installed[ev.target]) {
          // The LP is migrating here and its package has not arrived yet;
          // park the event until the install.
          cl.limbo.push_back(ev);
          continue;
        }
        auto res = runtimes_[ev.target].insert(ev);
        if (ev.sign == Sign::kPositive) ++cl.stats.intra_node_events;
        if (res.rolled_back) {
          if (res.secondary) ++cl.stats.secondary_rollbacks;
          else ++cl.stats.primary_rollbacks;
          cl.stats.events_rolled_back += res.unprocessed_events;
          cl.throttle.note_rollback(res.unprocessed_events);
          for (Event& anti : res.antis) {
            cl.pending.push_back(anti);
          }
          if (cl.trace != nullptr) {
            cl.trace->record(obs::TraceKind::kRollback, steady_now_ns(), 0,
                             res.unprocessed_events, res.secondary ? 1 : 0,
                             ev.target);
          }
        }
        cl.push_sched(runtimes_[ev.target].next_time(), ev.target);
        cl.note_live(runtimes_, ev.target);
      } else {
        if (cfg_.network.send_overhead_ns > 0) {
          util::busy_spin_ns(cfg_.network.send_overhead_ns);
        }
        if (ev.sign == Sign::kPositive) ++cl.stats.inter_node_messages;
        else ++cl.stats.anti_messages_sent;
        InFlight f;
        f.seq = cl.net_seq++;
        f.epoch = cl.my_round;
        f.event = ev;
        // Count before buffering: the receive counter must never
        // overtake, and a buffered white must already be on the books so
        // its GVT round cannot conclude until the flush drains.
        gvt_coord_.count_send(node, cl.my_round);
        // deliver_at_ns is stamped at flush time (+latency): the wire is
        // paid when the batch leaves, never earlier.
        cl.coalescer.add(target_node, std::move(f), steady_now_ns(),
                         latency);
      }
    }
  };

  while (!done_.load(std::memory_order_acquire) &&
         !stalled_.load(std::memory_order_relaxed)) {
    // --- GVT: join a newly started round (no rendezvous) -----------------
    const std::uint64_t r = gvt_coord_.round();
    if (r != cl.my_round) {
      // cl.pending is empty here (route_pending ran to completion last
      // iteration), so everything this node owes the world is in its LP
      // queues, its holding heap, its limbo, or its send buffers —
      // exactly what the report covers.  The coalescer term is the GVT
      // coalescing invariant: a buffered-but-unflushed send must hold
      // this node's report down (the burst-end flush normally empties
      // the buffers before we get here, but the report must not depend
      // on that scheduling detail).  Whites still in a mailbox are
      // caught by the drain counters.
      SimTime local = cl.gvt_report_min(runtimes_);
      local = std::min(local, cl.holding.min_recv_time());
      local = std::min(local, cl.limbo_min());
      local = std::min(local, cl.coalescer.min_recv_time());
      gvt_coord_.join(node, r, local);
      cl.last_join_min = local;
      cl.my_round = r;
      if (cl.trace != nullptr) {
        cl.trace->record(obs::TraceKind::kGvtJoin, steady_now_ns(), 0, r,
                         local);
      }
      // GVT-round cadence is the throttle's control period: frequent
      // enough to react to a storm, coarse enough to smooth over noise.
      cl.throttle.on_round(r);
      if (cl.trace != nullptr) {
        // Decisions land in the trajectory; trace only the new ones.
        const auto& traj = cl.throttle.trajectory();
        for (; cl.traced_decisions < traj.size(); ++cl.traced_decisions) {
          const ThrottleDecision& d = traj[cl.traced_decisions];
          cl.trace->record(
              obs::TraceKind::kThrottle, steady_now_ns(), 0, d.window,
              static_cast<std::uint64_t>(d.rollback_fraction * 1e6),
              static_cast<std::uint32_t>(d.direction + 1));
        }
      }
    }
    if (node == 0) controller_poll(steady_now_ns());

    // --- fossil collection on newly completed rounds ---------------------
    const std::uint64_t completed =
        completed_rounds_.load(std::memory_order_acquire);
    if (completed != cl.last_fossil_round) {
      cl.last_fossil_round = completed;
      fossil_round(cl);
    }

    // --- dynamic repartitioning: act on a freshly published plan ----------
    if (migratory_) {
      const std::uint64_t pv = plan_version_.load(std::memory_order_acquire);
      if (pv != cl.seen_plan_version) {
        cl.seen_plan_version = pv;
        emigrate_planned(cl);
        route_pending();  // antis raised by the packaging rollbacks
        // Ack after the scan's last read of plan_: the release pairs with
        // the controller's acquire, licensing it to rewrite the plan.
        plan_ack_[node].store(pv, std::memory_order_release);
      }
    }

    // --- receive ----------------------------------------------------------
    if (!channel_->probably_empty(node)) {
      cl.drain_buf.clear();
      channel_->drain(node, cl.drain_buf);
      for (auto& f : cl.drain_buf) {
        // Rounds serialize, so a drained message is at most one epoch away
        // from the receiver's color in either direction.  Each message of
        // a batch is drained individually — a batch of n counts as n in
        // the transient accounting, mirroring the n count_send calls at
        // buffer time.
        PLS_DCHECK(f.epoch + 1 >= cl.my_round && f.epoch <= cl.my_round + 1);
        gvt_coord_.count_drain(node, f.epoch, cl.my_round,
                               f.event.recv_time);
        cl.holding.push(std::move(f));
      }
    }
    const std::uint64_t now_ns = steady_now_ns();
    while (!cl.holding.empty() && cl.holding.top().deliver_at_ns <= now_ns) {
      InFlight f = cl.holding.pop();
      if (f.migration != nullptr) {
        install_migration(cl, std::move(*f.migration));
      } else {
        cl.pending.push_back(f.event);
      }
    }
    route_pending();

    // --- execute up to max_batches_per_poll LTSF batches ------------------
    // Batching amortizes the per-poll overhead (mailbox probe, GVT join,
    // fossil check) over several executions.  The window limit is
    // re-evaluated between batches — GVT may advance mid-burst, and a
    // routed straggler can change which LP is lowest-timestamp — so a
    // burst never runs further ahead than a single-batch loop would.
    bool executed = false;
    bool blocked_by_window = false;
    const std::uint32_t max_batches = std::max(1u, cfg_.max_batches_per_poll);
    for (std::uint32_t b = 0; b < max_batches; ++b) {
      cl.clean_top(runtimes_);
      if (cl.sched.empty()) break;
      const SchedEntry top = cl.sched.front();
      const SimTime gvt_now = gvt_.load(std::memory_order_relaxed);
      // Saturating: near end-of-time a plain add wraps, collapsing the
      // window and blocking the final drain (regression-tested).
      const SimTime window_limit =
          saturating_add(gvt_now, cl.throttle.window());
      if (top.time > window_limit) {
        blocked_by_window = true;
        break;
      }
      LpRuntime& rt = runtimes_[top.lp];
      const std::uint64_t tb0 = cl.trace != nullptr ? steady_now_ns() : 0;
      SimTime t = 0;
      const EventBatch batch = rt.begin_batch(t);
      const bool replay = rt.in_replay(t);
      ClusterContext ctx(t, end, top.lp, &rt, &cl.pending, replay,
                         /*init_mode=*/false);
      rt.behavior()->execute(ctx, batch);
      if (cfg_.event_cost_ns > 0) util::busy_spin_ns(cfg_.event_cost_ns);
      const std::size_t batch_size = batch.size();
      rt.commit_batch(t, batch_size);
      if (cl.trace != nullptr) {
        const std::uint64_t tb1 = steady_now_ns();
        cl.trace->record(obs::TraceKind::kExecBatch, tb0,
                         tb1 > tb0 ? tb1 - tb0 : 1, batch_size, t, top.lp);
      }
      cl.note_live(runtimes_, top.lp);
      cl.stats.events_processed += batch_size;
      cl.throttle.note_executed(batch_size, t > gvt_now ? t - gvt_now : 0);
      cl.exec_ticks.fetch_add(1, std::memory_order_relaxed);
      cl.push_sched(rt.next_time(), top.lp);
      route_pending();
      executed = true;
    }
    // Burst-end flush: everything routed remotely during this poll —
    // receive-path forwards included — leaves as one batch per
    // destination.  This is the coalescing fabric's primary flush point:
    // it bounds buffering latency to one poll and guarantees the send
    // buffers are empty at the next GVT join (liveness — an unflushed
    // white would otherwise hold its round open forever).
    if (cl.coalescer.buffered() != 0) {
      const std::uint64_t fns = steady_now_ns();
      const std::size_t flushed = cl.coalescer.flush_all(fns, latency);
      if (flushed != 0 && cl.trace != nullptr) {
        cl.trace->record(obs::TraceKind::kFlush, fns, 0, flushed,
                         cl.coalescer.stats().batches_flushed);
      }
    }
    // Only a throttled-and-otherwise-idle node asks for an early GVT
    // round: while batches still execute, the normal cadence is fine.
    cl.window_blocked.store(!executed && blocked_by_window,
                            std::memory_order_relaxed);
    if (cl.gauges != nullptr) {
      // Mirror the node's counters into the atomic gauges the background
      // sampler reads (relaxed: each gauge is an independent time series
      // and small skew between them is inherent to sampling anyway).
      obs::NodeGauges& g = *cl.gauges;
      g.events_processed.store(cl.stats.events_processed,
                               std::memory_order_relaxed);
      g.events_committed.store(cl.stats.events_committed,
                               std::memory_order_relaxed);
      g.events_rolled_back.store(cl.stats.events_rolled_back,
                                 std::memory_order_relaxed);
      g.rollbacks.store(
          cl.stats.primary_rollbacks + cl.stats.secondary_rollbacks,
          std::memory_order_relaxed);
      g.window.store(cl.throttle.window(), std::memory_order_relaxed);
      g.live_entries.store(cl.live_now, std::memory_order_relaxed);
      g.holding_events.store(cl.holding.size(), std::memory_order_relaxed);
      g.pool_bytes.store(cl.pool->snapshot().slab_bytes,
                         std::memory_order_relaxed);
      const CoalesceStats& cs = cl.coalescer.stats();
      g.batches_sent.store(cs.batches_flushed, std::memory_order_relaxed);
      g.batch_msgs_sent.store(cs.msgs_flushed, std::memory_order_relaxed);
    }
    if (executed) {
      ++cl.stats.exec_polls;
      cl.idle_streak = 0;
    } else {
      ++cl.stats.idle_polls;
      if (++cl.idle_streak < kIdleSpinPolls) {
        // Recently busy: stay reactive, just be polite to siblings.
        std::this_thread::yield();
      } else {
        // Nothing runnable for a while: actually release the core so the
        // thread that holds work can use it (critical when node threads
        // outnumber cores).  Bound the nap by the next modeled-network
        // delivery deadline so latency stays accurate.
        std::uint64_t nap = kIdleNapNs;
        const std::uint64_t deadline = cl.holding.next_deadline_ns();
        if (deadline != 0) {
          const std::uint64_t now2 = steady_now_ns();
          nap = deadline > now2 ? std::min(nap, deadline - now2)
                                : std::uint64_t{1000};
        }
        ++cl.stats.idle_sleeps;
        std::this_thread::sleep_for(std::chrono::nanoseconds(nap));
      }
    }
  }
  // Defensive: the loop exits right after a burst-end flush with nothing
  // added since, so this is normally a no-op — but the final sweep in
  // run() must never find a message stranded in a send buffer.
  cl.coalescer.flush_all(steady_now_ns(), latency);
}

void Kernel::controller_poll(std::uint64_t now_ns) {
  // Complete the round in flight, if any.  Join-freeze first, then the
  // white counters must balance (this order is what makes the counter
  // comparison race-free: after every node joined, no epoch round-1
  // message can ever be sent again).
  if (ctrl_started_rounds_ >
      completed_rounds_.load(std::memory_order_relaxed)) {
    const std::uint64_t round = ctrl_started_rounds_;
    if (gvt_coord_.all_joined(round) && gvt_coord_.whites_drained(round)) {
      const SimTime g = gvt_coord_.round_min();
      const SimTime prev = gvt_.load(std::memory_order_relaxed);
#ifndef NDEBUG
      if (g < prev) {
        std::fprintf(stderr,
                     "[gvt-debug] REGRESSION round=%llu g=%llu prev=%llu\n",
                     (unsigned long long)round, (unsigned long long)g,
                     (unsigned long long)prev);
        for (std::uint32_t n = 0; n < cfg_.num_nodes; ++n) {
          std::fprintf(stderr,
                       "[gvt-debug]  node %u joined=%llu report=%llu "
                       "late_white=%llu\n",
                       n, (unsigned long long)gvt_coord_.joined_round_of(n),
                       (unsigned long long)gvt_coord_.report_min_of(n),
                       (unsigned long long)gvt_coord_.late_white_min_of(n));
        }
        std::abort();
      }
#endif
      gvt_.store(std::max(prev, g), std::memory_order_release);
      completed_rounds_.fetch_add(1, std::memory_order_release);
      if (cfg_.obs != nullptr) {
        // Publish the fresh estimate for the metrics sampler's GVT gauge.
        cfg_.obs->set_gvt(std::max(prev, g));
        if (obs::TraceRing* tr = clusters_[0]->trace; tr != nullptr) {
          tr->record(obs::TraceKind::kGvtDone, steady_now_ns(), 0, round,
                     std::max(prev, g));
        }
      }
      if (g == kEndOfTime) {
        done_.store(true, std::memory_order_release);
      }
    }
  }
  if (oom_.load(std::memory_order_relaxed)) {
    done_.store(true, std::memory_order_release);
  }
  // Start the next round on the configured cadence — or early, when some
  // node reports that only a GVT advance can unblock its window-throttled
  // work (otherwise a blocked node idles out the whole interval; under
  // tight windows that wall-clock wait, not rollback work, dominates).
  // A small floor keeps a persistently blocked node from degenerating the
  // GVT into a busy loop.
  if (ctrl_started_rounds_ ==
          completed_rounds_.load(std::memory_order_relaxed) &&
      !done_.load(std::memory_order_relaxed)) {
    const std::uint64_t interval_ns = cfg_.gvt_interval_us * 1000;
    std::uint64_t due_ns = interval_ns;
    for (const auto& cl : clusters_) {
      if (cl->window_blocked.load(std::memory_order_relaxed)) {
        due_ns = interval_ns / 16;
        break;
      }
    }
    if (now_ns - ctrl_last_trigger_ns_ >= due_ns) {
      ctrl_last_trigger_ns_ = now_ns;
      ++ctrl_started_rounds_;
      gvt_coord_.start_round(ctrl_started_rounds_);
      if (obs::TraceRing* tr = clusters_[0]->trace; tr != nullptr) {
        tr->record(obs::TraceKind::kGvtStart, steady_now_ns(), 0,
                   ctrl_started_rounds_, 0);
      }
    }
  }
  // Dynamic repartitioning: on the epoch cadence, once every migration of
  // the previous plan has installed (so plan_ is quiescent and no LP can
  // be emigrated twice concurrently), consult the policy hook.
  if (migratory_ && !done_.load(std::memory_order_relaxed) &&
      !oom_.load(std::memory_order_relaxed)) {
    const std::uint64_t completed =
        completed_rounds_.load(std::memory_order_relaxed);
    if (completed - ctrl_last_repartition_round_ >=
            cfg_.repartition_interval &&
        migrations_outstanding_.load(std::memory_order_acquire) == 0) {
      // Every node must have finished scanning the current plan before it
      // may be rewritten (a scan reads plan_ unsynchronized otherwise).
      const std::uint64_t pv = plan_version_.load(std::memory_order_relaxed);
      bool all_acked = true;
      for (std::uint32_t n = 0; n < cfg_.num_nodes; ++n) {
        if (plan_ack_[n].load(std::memory_order_acquire) != pv) {
          all_acked = false;
          break;
        }
      }
      const SimTime g = gvt_.load(std::memory_order_relaxed);
      if (all_acked && g != kEndOfTime) {
        ctrl_last_repartition_round_ = completed;
        maybe_repartition(g, completed);
      }
    }
  }
}

void Kernel::maybe_repartition(SimTime gvt_now, std::uint64_t round) {
  obs::TraceRing* tr = clusters_[0]->trace;  // runs on node 0's thread
  const std::uint64_t t0 = tr != nullptr ? steady_now_ns() : 0;
  std::uint64_t moves = 0;
  // Trace the epoch even when no plan is published: "evaluated, moved 0"
  // is itself a repartitioner decision worth seeing on the timeline.
  const auto trace_epoch = [&] {
    if (tr != nullptr) {
      const std::uint64_t t1 = steady_now_ns();
      tr->record(obs::TraceKind::kRepartition, t0, t1 > t0 ? t1 - t0 : 1,
                 moves, round);
    }
  };
  RepartitionRequest req;
  req.gvt = gvt_now;
  req.round = round;
  req.current.resize(lps_.size());
  req.events_committed.resize(lps_.size());
  req.sends_committed.resize(lps_.size());
  req.lane_work_committed.resize(lps_.size());
  for (LpId i = 0; i < lps_.size(); ++i) {
    req.current[i] = route_[i].load(std::memory_order_relaxed);
    req.events_committed[i] =
        pub_committed_[i].load(std::memory_order_relaxed);
    req.sends_committed[i] = pub_sends_[i].load(std::memory_order_relaxed);
    req.lane_work_committed[i] =
        pub_lane_work_[i].load(std::memory_order_relaxed);
  }
  const std::vector<std::uint32_t> next = cfg_.repartition_hook(req);
  if (next.empty()) {
    trace_epoch();
    return;
  }
  PLS_CHECK_MSG(next.size() == lps_.size(),
                "repartition hook returned an assignment of wrong size");
  for (LpId i = 0; i < lps_.size(); ++i) {
    PLS_CHECK_MSG(next[i] < cfg_.num_nodes,
                  "repartition hook mapped LP " << i << " to node "
                                                << next[i] << " >= num_nodes");
    if (next[i] != req.current[i]) ++moves;
  }
  if (moves == 0) {
    trace_epoch();
    return;
  }
  ++repartitions_;
  plan_ = next;
  // Order matters: the move count and the plan contents must be visible
  // before any node observes the version bump.
  migrations_outstanding_.store(moves, std::memory_order_release);
  plan_version_.fetch_add(1, std::memory_order_release);
  trace_epoch();
}

void Kernel::emigrate_planned(Cluster& cl) {
  // Migration cancellation boundary.  The published GVT alone is NOT a
  // safe bound: this node has already joined the in-flight round reporting
  // last_join_min, and the round may conclude with any estimate up to that
  // value while this scan runs.  Rolling back below it would un-process
  // events and emit anti-messages *below* a GVT about to be published —
  // after the round's accounting cut — so peers could fossil-commit the
  // very events those antis cancel (observed as double commits /
  // rollback-to-initial corruption).  Cancelling only at or above
  // max(gvt, last_join_min)+1 keeps every migration-induced message and
  // newly-unprocessed event safely above any publishable estimate; the
  // residual speculation ships with the package (export_migration carries
  // processed events, snapshots and output history) instead of being
  // cancelled.
  const SimTime g = gvt_.load(std::memory_order_acquire);
  const SimTime bound = saturating_add(std::max(g, cl.last_join_min), 1);
  const std::uint64_t latency = cfg_.network.latency_ns;
  for (std::size_t i = 0; i < cl.own_lps.size();) {
    const LpId lp = cl.own_lps[i];
    const std::uint32_t dest = plan_[lp];
    if (dest == cl.node) {
      ++i;
      continue;
    }
    LpRuntime& rt = runtimes_[lp];
    const std::uint64_t tf0 = cl.trace != nullptr ? steady_now_ns() : 0;
    // 1. Cancel speculation past the safe boundary.  The anti-messages
    //    route like any rollback's (the caller flushes cl.pending right
    //    after); the rollback is real work undone, so it feeds the normal
    //    counters — but not the optimism throttle, since it says nothing
    //    about how far ahead this node was running.
    auto res = rt.cancel_uncommitted(bound);
    if (res.rolled_back) {
      ++cl.stats.primary_rollbacks;
      cl.stats.events_rolled_back += res.unprocessed_events;
      for (Event& anti : res.antis) cl.pending.push_back(anti);
    }
    // 2. Commit everything GVT already covers; less to ship.
    cl.stats.events_committed += rt.fossil_collect(g).committed_events;
    if (pub_committed_ != nullptr) {
      pub_committed_[lp].store(rt.events_committed(),
                               std::memory_order_relaxed);
      pub_sends_[lp].store(rt.sends_committed(), std::memory_order_relaxed);
      pub_lane_work_[lp].store(rt.lane_work_committed(),
                               std::memory_order_relaxed);
    }
    // 3. Flip the route *before* shipping: from here on every sender
    //    forwards to the destination, where events queue in limbo until
    //    the package installs.  Our own copy is no longer authoritative.
    cl.installed[lp] = 0;
    route_[lp].store(dest, std::memory_order_release);
    // 4. Package the residual state and ship it through the normal
    //    mailbox channel so the GVT transient accounting covers it; its
    //    accounting receive time is the LP's pending minimum, so the
    //    package holds GVT down until installed.
    auto msg = std::make_unique<MigrationMsg>();
    msg->from_node = cl.node;
    msg->to_node = dest;
    const SimTime pkg_min = rt.gvt_min_time();
    rt.export_migration(*msg);
    // The LP's queues moved into the package; drop it from live accounting.
    cl.note_live(runtimes_, lp);
    cl.stats.migration_events_shipped += msg->queue.size();
    ++cl.stats.lps_migrated_out;
    if (cl.trace != nullptr) {
      const std::uint64_t tf1 = steady_now_ns();
      cl.trace->record(obs::TraceKind::kMigrateFreeze, tf0,
                       tf1 > tf0 ? tf1 - tf0 : 1, res.unprocessed_events, 0,
                       lp);
      cl.trace->record(obs::TraceKind::kMigrateShip, tf1, 0, dest,
                       msg->queue.size(), lp);
    }
    if (cfg_.network.send_overhead_ns > 0) {
      util::busy_spin_ns(cfg_.network.send_overhead_ns);
    }
    InFlight f;
    f.seq = cl.net_seq++;
    f.epoch = cl.my_round;
    f.event.recv_time = pkg_min;
    f.event.target = lp;
    f.event.sender = lp;
    f.migration = std::move(msg);
    // Count before buffering, like any send — then force the flush:
    // migration ship is one of the mandatory flush points, so a package
    // never sits in a send buffer behind the route flip.
    gvt_coord_.count_send(cl.node, cl.my_round);
    const std::uint64_t ship_ns = steady_now_ns();
    cl.coalescer.add(dest, std::move(f), ship_ns, latency);
    cl.coalescer.flush_dest(dest, ship_ns, latency);
    // Swap-erase: own_lps order carries no meaning.
    cl.own_lps[i] = cl.own_lps.back();
    cl.own_lps.pop_back();
  }
}

void Kernel::install_migration(Cluster& cl, MigrationMsg&& msg) {
  const LpId lp = msg.lp;
  const std::uint32_t from = msg.from_node;
  const std::uint64_t pkg_events = msg.queue.size();
  PLS_CHECK_MSG(route_[lp].load(std::memory_order_relaxed) == cl.node,
                "migration package delivered to a node that is not the "
                "plan's destination");
  PLS_CHECK_MSG(!cl.installed[lp], "double install of LP " << lp);
  runtimes_[lp].import_migration(std::move(msg));
  cl.installed[lp] = 1;
  cl.own_lps.push_back(lp);
  cl.push_sched(runtimes_[lp].next_time(), lp);
  cl.note_live(runtimes_, lp);
  ++cl.stats.lps_migrated_in;
  if (cl.trace != nullptr) {
    cl.trace->record(obs::TraceKind::kMigrateInstall, steady_now_ns(), 0,
                     from, pkg_events, lp);
  }
  // Release the events that raced ahead of the package, preserving their
  // arrival order (the caller's route_pending inserts them next).
  for (std::size_t i = 0; i < cl.limbo.size();) {
    if (cl.limbo[i].target == lp) {
      cl.pending.push_back(cl.limbo[i]);
      cl.limbo.erase(cl.limbo.begin() + static_cast<std::ptrdiff_t>(i));
    } else {
      ++i;
    }
  }
  migrations_outstanding_.fetch_sub(1, std::memory_order_acq_rel);
}

void Kernel::fossil_round(Cluster& cl) {
  const SimTime g = gvt_.load(std::memory_order_acquire);
  const std::uint64_t tf0 = cl.trace != nullptr ? steady_now_ns() : 0;
  std::uint64_t committed = 0;
  for (LpId lp : cl.own_lps) {
    committed += runtimes_[lp].fossil_collect(g).committed_events;
    cl.note_live(runtimes_, lp);
    if (pub_committed_ != nullptr) {
      // Republish the committed counters for the controller's next
      // repartition snapshot (monotone, so staleness is harmless).
      pub_committed_[lp].store(runtimes_[lp].events_committed(),
                               std::memory_order_relaxed);
      pub_sends_[lp].store(runtimes_[lp].sends_committed(),
                           std::memory_order_relaxed);
      pub_lane_work_[lp].store(runtimes_[lp].lane_work_committed(),
                               std::memory_order_relaxed);
    }
  }
  cl.stats.events_committed += committed;
  if (cl.trace != nullptr) {
    const std::uint64_t tf1 = steady_now_ns();
    cl.trace->record(obs::TraceKind::kFossil, tf0, tf1 > tf0 ? tf1 - tf0 : 1,
                     committed, cl.live_now);
  }
  // live_now is maintained incrementally at every queue mutation (see
  // note_live); the fossil pass just refreshed every own LP, so it equals
  // the full recomputed sum here.
  if (cfg_.max_live_entries_per_node != 0 &&
      cl.live_now > cfg_.max_live_entries_per_node) {
    oom_.store(true, std::memory_order_relaxed);
  }
}

std::uint64_t Kernel::total_exec_ticks() const noexcept {
  std::uint64_t sum = 0;
  for (const auto& cl : clusters_) {
    sum += cl->exec_ticks.load(std::memory_order_relaxed);
  }
  return sum;
}

void Kernel::watchdog_main() {
  util::set_log_thread_tag("watchdog");
  const std::uint64_t timeout_ns = cfg_.watchdog_timeout_ms * 1'000'000ull;
  SimTime last_gvt = gvt_.load(std::memory_order_relaxed);
  std::uint64_t ticks_at_freeze = total_exec_ticks();
  std::uint64_t last_change_ns = steady_now_ns();
  while (!done_.load(std::memory_order_acquire) &&
         !stalled_.load(std::memory_order_acquire)) {
    // Short naps keep end-of-run teardown latency negligible.
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    const SimTime g = gvt_.load(std::memory_order_relaxed);
    const std::uint64_t now = steady_now_ns();
    if (g != last_gvt) {
      last_gvt = g;
      ticks_at_freeze = total_exec_ticks();
      last_change_ns = now;
    } else if (now - last_change_ns >= timeout_ns) {
      // GVT frozen for the whole window.  A healthy run commits every
      // round (the controller starts one each gvt_interval_us), so this
      // catches both true deadlocks (nothing executing either) and
      // rollback livelocks (execution churning with nothing committing —
      // memory then grows without bound).  Node threads poll the flag
      // and exit; run() dumps diagnostics from a single thread.
      stall_ticks_wasted_ = total_exec_ticks() - ticks_at_freeze;
      stalled_.store(true, std::memory_order_release);
      break;
    }
  }
}

void Kernel::dump_stall_diagnostics() const {
  if (stall_ticks_wasted_ == 0) {
    std::fprintf(stderr,
                 "\n[warped] WATCHDOG: DEADLOCK — no GVT advance and no "
                 "execution for %llu ms, aborting run\n",
                 static_cast<unsigned long long>(cfg_.watchdog_timeout_ms));
  } else {
    std::fprintf(stderr,
                 "\n[warped] WATCHDOG: LIVELOCK — %llu batches executed "
                 "but GVT frozen for %llu ms (rollback thrash?), aborting "
                 "run\n",
                 static_cast<unsigned long long>(stall_ticks_wasted_),
                 static_cast<unsigned long long>(cfg_.watchdog_timeout_ms));
  }
  std::fprintf(stderr,
               "[warped] gvt=%llu rounds started=%llu completed=%llu\n",
               static_cast<unsigned long long>(
                   gvt_.load(std::memory_order_relaxed)),
               static_cast<unsigned long long>(ctrl_started_rounds_),
               static_cast<unsigned long long>(
                   completed_rounds_.load(std::memory_order_relaxed)));
  for (std::uint32_t n = 0; n < cfg_.num_nodes; ++n) {
    const Cluster& cl = *clusters_[n];
    std::fprintf(
        stderr,
        "[warped]   node %u: joined_round=%llu report_min=%llu "
        "sent=%llu/%llu recvd=%llu/%llu processed=%llu rollbacks=%llu "
        "pending=%zu holding=%zu\n",
        n,
        static_cast<unsigned long long>(gvt_coord_.joined_round_of(n)),
        static_cast<unsigned long long>(gvt_coord_.report_min_of(n)),
        static_cast<unsigned long long>(gvt_coord_.sent_of(n, 0)),
        static_cast<unsigned long long>(gvt_coord_.sent_of(n, 1)),
        static_cast<unsigned long long>(gvt_coord_.recvd_of(n, 0)),
        static_cast<unsigned long long>(gvt_coord_.recvd_of(n, 1)),
        static_cast<unsigned long long>(cl.stats.events_processed),
        static_cast<unsigned long long>(cl.stats.primary_rollbacks +
                                        cl.stats.secondary_rollbacks),
        cl.pending.size(), cl.holding.size());
  }
  // The LPs holding the globally smallest pending work are where a stall
  // lives; the heaviest rollback victims are why it got there.
  LpId min_lp = kInvalidLp;
  SimTime min_t = kEndOfTime;
  LpId worst_lp = kInvalidLp;
  std::uint64_t worst_rb = 0;
  for (const auto& rt : runtimes_) {
    if (rt.next_time() < min_t) {
      min_t = rt.next_time();
      min_lp = rt.id();
    }
    if (rt.rollbacks() >= worst_rb) {
      worst_rb = rt.rollbacks();
      worst_lp = rt.id();
    }
  }
  if (min_lp != kInvalidLp) {
    std::fprintf(stderr,
                 "[warped]   earliest pending work: LP %u at t=%llu "
                 "(node %u)\n",
                 min_lp, static_cast<unsigned long long>(min_t),
                 route_[min_lp].load(std::memory_order_relaxed));
  }
  if (worst_lp != kInvalidLp) {
    std::fprintf(stderr,
                 "[warped]   most rolled-back LP: %u (%llu rollbacks, "
                 "%llu events undone, node %u)\n",
                 worst_lp, static_cast<unsigned long long>(worst_rb),
                 static_cast<unsigned long long>(
                     runtimes_[worst_lp].events_rolled_back()),
                 route_[worst_lp].load(std::memory_order_relaxed));
  }
  // With tracing on, the ring tails show what each node was doing when it
  // wedged — usually more telling than the counters above.  Safe to read
  // here: every producer thread has exited before run() dumps.
  constexpr std::size_t kTailEvents = 16;
  for (std::uint32_t n = 0; n < cfg_.num_nodes; ++n) {
    const obs::TraceRing* ring = clusters_[n]->trace;
    if (ring == nullptr || ring->recorded() == 0) continue;
    std::fprintf(stderr,
                 "[warped]   node %u trace tail (%llu recorded, %llu "
                 "dropped):\n",
                 n, static_cast<unsigned long long>(ring->recorded()),
                 static_cast<unsigned long long>(ring->dropped()));
    const std::uint64_t t0 = cfg_.obs->t0_ns();
    for (const obs::TraceEvent& ev : ring->tail(kTailEvents)) {
      std::fprintf(stderr,
                   "[warped]     +%.6fs %-11s lp=%d a=%llu b=%llu"
                   " dur=%.3fus\n",
                   static_cast<double>(ev.ts_ns - t0) / 1e9,
                   obs::to_string(ev.kind),
                   ev.lp == ~std::uint32_t{0} ? -1
                                              : static_cast<int>(ev.lp),
                   static_cast<unsigned long long>(ev.a),
                   static_cast<unsigned long long>(ev.b),
                   static_cast<double>(ev.dur_ns) / 1e3);
    }
  }
}

RunStats Kernel::run() {
  PLS_CHECK_MSG(!ran_, "Kernel::run() is single-use");
  ran_ = true;

  util::WallTimer timer;
  init_all_lps();

  std::thread watchdog;
  if (cfg_.watchdog_timeout_ms > 0) {
    watchdog = std::thread([this] { watchdog_main(); });
  }

  if (cfg_.num_nodes == 1) {
    node_main(0);
  } else {
    std::vector<std::thread> threads;
    threads.reserve(cfg_.num_nodes);
    for (std::uint32_t n = 0; n < cfg_.num_nodes; ++n) {
      threads.emplace_back([this, n] { node_main(n); });
    }
    for (auto& t : threads) t.join();
  }
  const double wall_seconds = timer.elapsed_seconds();
  // Unblock the watchdog promptly even on a stalled/OOM exit.
  done_.store(true, std::memory_order_release);
  if (watchdog.joinable()) watchdog.join();

  if (stalled_.load(std::memory_order_acquire)) dump_stall_diagnostics();

  // A GVT == end-of-time round proves nothing *effectful* is pending, but
  // an LP can still hold suppressed coast-forward batches (its state is a
  // restored snapshot behind history whose outputs were never cancelled):
  // done_ may be observed before the replay finished re-executing.  Drain
  // them now, single-threaded, so final_states is the committed state.
  // Skipped on abnormal exits, whose states are not meaningful anyway.
  if (!stalled_.load(std::memory_order_acquire) &&
      !oom_.load(std::memory_order_acquire)) {
    // A migration package whose accounting receive time was kEndOfTime
    // (pure-replay or drained LP) cannot delay the final round, so it may
    // still sit in a mailbox or holding heap here.  Install those now —
    // their replay batches and committed counters belong to the run.  Any
    // *event* still in flight at this point would disprove GVT soundness.
    // (Send buffers were flushed when each node_main exited, so the
    // channel drain below sees everything.)
    for (std::uint32_t n = 0; n < cfg_.num_nodes; ++n) {
      Cluster& cl = *clusters_[n];
      PLS_CHECK_MSG(cl.coalescer.buffered() == 0,
                    "send buffer left unflushed after node exit");
      cl.drain_buf.clear();
      channel_->drain(n, cl.drain_buf);
      for (auto& f : cl.drain_buf) cl.holding.push(std::move(f));
      while (!cl.holding.empty()) {
        InFlight f = cl.holding.pop();
        if (f.migration == nullptr) {
          // Only an event beyond the horizon may still be in flight once
          // GVT hit end-of-time; it can never execute, so drop it.
          PLS_CHECK_MSG(f.event.recv_time == kEndOfTime,
                        "event at " << f.event.recv_time
                                    << " still in flight after termination "
                                       "(unsound GVT)");
          continue;
        }
        install_migration(cl, std::move(*f.migration));
      }
      // A final-sweep install may have released limbo events; like above,
      // only beyond-horizon events may legitimately remain.
      for (const Event& ev : cl.pending) {
        PLS_CHECK_MSG(ev.recv_time == kEndOfTime,
                      "event left unrouted after termination (unsound GVT)");
      }
      for (const Event& ev : cl.limbo) {
        PLS_CHECK_MSG(ev.recv_time == kEndOfTime,
                      "event stranded in limbo after termination");
      }
      cl.pending.clear();
      cl.limbo.clear();
    }
    // Drain suppressed coast-forward replays over *all* runtimes (an LP
    // installed a moment ago is already in its destination's own_lps, but
    // scanning the table directly is immune to cluster bookkeeping).
    std::deque<Event> sink;
    for (LpId lp = 0; lp < runtimes_.size(); ++lp) {
      LpRuntime& rt = runtimes_[lp];
      Cluster& owner = *clusters_[route_[lp].load(std::memory_order_relaxed)];
      while (rt.has_unprocessed()) {
        SimTime t = 0;
        const EventBatch batch = rt.begin_batch(t);
        PLS_CHECK_MSG(rt.in_replay(t),
                      "LP " << lp << " still holds an effectful event at "
                            << t << " after termination (unsound GVT)");
        ClusterContext ctx(t, cfg_.end_time, lp, &rt, &sink,
                           /*suppress=*/true, /*init_mode=*/false);
        rt.behavior()->execute(ctx, batch);
        const std::size_t batch_size = batch.size();
        rt.commit_batch(t, batch_size);
        owner.stats.events_processed += batch_size;
      }
    }
    PLS_CHECK_MSG(sink.empty(), "suppressed replay produced a send");
  }

  RunStats out;
  out.num_nodes = cfg_.num_nodes;
  out.wall_seconds = wall_seconds;
  out.final_gvt = gvt_.load(std::memory_order_acquire);
  out.gvt_cycles = completed_rounds_.load(std::memory_order_acquire);
  out.repartitions = repartitions_;
  out.out_of_memory = oom_.load(std::memory_order_acquire);
  out.stalled = stalled_.load(std::memory_order_acquire);
  out.per_node.resize(cfg_.num_nodes);
  out.throttle.reserve(cfg_.num_nodes);
  for (std::uint32_t n = 0; n < cfg_.num_nodes; ++n) {
    Cluster& cl = *clusters_[n];
    // Commit whatever the last fossil pass left behind.
    for (LpId lp : cl.own_lps) {
      cl.stats.events_committed += runtimes_[lp].finalize();
    }
    const ThrottleSummary ts = cl.throttle.summary();
    cl.stats.throttle_shrinks = ts.shrinks;
    cl.stats.throttle_grows = ts.grows;
    const CoalesceStats cs = cl.coalescer.stats();
    cl.stats.batches_sent = cs.batches_flushed;
    cl.stats.batch_msgs_sent = cs.msgs_flushed;
    cl.stats.max_batch_msgs = cs.max_batch_msgs;
    const mem::PoolStats ps = cl.pool->snapshot();
    cl.stats.pool_slab_bytes = ps.slab_bytes;
    cl.stats.pool_blocks_recycled = ps.recycled;
    cl.stats.pool_heap_fallbacks = ps.heap_fallbacks;
    out.per_node[n] = cl.stats;
    out.totals.merge(cl.stats);
    out.throttle.push_back(ThrottleTrace{ts, cl.throttle.trajectory()});
  }
  out.final_states.reserve(runtimes_.size());
  out.per_lp.reserve(runtimes_.size());
  for (const auto& rt : runtimes_) {
    out.final_states.push_back(rt.state());
    LpStats ls;
    ls.events_processed = rt.events_processed();
    ls.events_rolled_back = rt.events_rolled_back();
    ls.events_committed = rt.events_committed();
    ls.sends_committed = rt.sends_committed();
    ls.lane_work_committed = rt.lane_work_committed();
    ls.rollbacks = rt.rollbacks();
    ls.max_rollback_depth = rt.max_rollback_depth();
    out.per_lp.push_back(ls);
  }
  return out;
}

}  // namespace pls::warped
