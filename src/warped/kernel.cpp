#include "warped/kernel.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <deque>
#include <thread>

#include "util/check.hpp"
#include "util/timer.hpp"

namespace pls::warped {
namespace {

std::uint64_t steady_now_ns() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

struct SchedEntry {
  SimTime time;
  LpId lp;
  friend bool operator>(const SchedEntry& a, const SchedEntry& b) noexcept {
    if (a.time != b.time) return a.time > b.time;
    return a.lp > b.lp;
  }
};

/// Idle polls (with yield) before the loop starts napping instead of
/// spinning.  Spinning reacts fastest while work is in flight; napping is
/// what keeps an oversubscribed machine (more node threads than cores)
/// from starving the thread that actually holds work.
constexpr std::uint64_t kIdleSpinPolls = 64;
/// Longest idle nap; bounds GVT-join and delivery latency.
constexpr std::uint64_t kIdleNapNs = 20'000;

}  // namespace

/// Per-node state.  Only the owning thread touches anything here except
/// `mailbox` (the node's multi-producer receive endpoint) and
/// `exec_ticks` (read by the watchdog).
struct Kernel::Cluster {
  std::uint32_t node = 0;
  std::vector<LpId> own_lps;

  // LTSF scheduler: lazy min-heap over (next pending time, lp).  Entries
  // go stale when an LP's next_time changes; clean_top() discards them.
  std::vector<SchedEntry> sched;

  Mailbox mailbox;
  HoldingHeap holding;
  std::vector<InFlight> drain_buf;
  std::deque<Event> pending;  ///< routing work queue (FIFO per channel)
  std::vector<Event> batch_scratch;
  std::uint64_t net_seq = 0;

  // GVT round this node has joined (epoch color of its sends).
  std::uint64_t my_round = 0;
  // Last completed-round count this node fossil-collected for.
  std::uint64_t last_fossil_round = 0;

  std::uint64_t idle_streak = 0;
  NodeStats stats;
  OptimismThrottle throttle;

  /// Watchdog progress counter (relaxed; owner increments per batch).
  std::atomic<std::uint64_t> exec_ticks{0};

  /// Set by the owner when its next pending work sits beyond the optimism
  /// window: only a GVT advance can unblock it, so the controller starts
  /// the next round early instead of waiting out the full interval.
  std::atomic<bool> window_blocked{false};

  void push_sched(SimTime t, LpId lp) {
    if (t != kEndOfTime) {
      sched.push_back(SchedEntry{t, lp});
      std::push_heap(sched.begin(), sched.end(), std::greater<>{});
    }
  }

  /// Discard stale heap entries; afterwards the top (if any) is exact.
  void clean_top(const std::vector<LpRuntime>& rts) {
    while (!sched.empty()) {
      const SchedEntry top = sched.front();
      const SimTime actual = rts[top.lp].next_time();
      if (actual == top.time) return;
      std::pop_heap(sched.begin(), sched.end(), std::greater<>{});
      sched.pop_back();
      push_sched(actual, top.lp);
    }
  }

  /// GVT report contribution of this cluster's LPs.  Scans gvt_min_time()
  /// rather than reading the scheduler heap: an LP coast-forwarding
  /// through a replay window has pending batches *below* an already
  /// published GVT whose re-execution is effect-free, and the heap is
  /// keyed by the raw next_time the scheduler needs.  O(own LPs), once
  /// per GVT round.
  SimTime gvt_report_min(const std::vector<LpRuntime>& rts) const {
    SimTime m = kEndOfTime;
    for (LpId lp : own_lps) m = std::min(m, rts[lp].gvt_min_time());
    return m;
  }
};

namespace {

/// Context used while executing one batch on a cluster; buffers sends for
/// post-commit routing (sending mid-execution could cascade a rollback of
/// the very LP whose execute() frame is still live).
class ClusterContext final : public Context {
 public:
  ClusterContext(SimTime now, SimTime end, LpId self, LpRuntime* rt,
                 std::deque<Event>* out, bool suppress, bool init_mode)
      : now_(now), end_(end), self_(self), rt_(rt), out_(out),
        suppress_(suppress), init_mode_(init_mode) {}

  SimTime now() const override { return now_; }
  SimTime end_time() const override { return end_; }
  LpId self() const override { return self_; }
  LpState& state() override { return rt_->state(); }

  void send(LpId target, SimTime recv_time, std::uint32_t port,
            std::uint64_t value) override {
    PLS_CHECK_MSG(init_mode_ ? recv_time >= now_ : recv_time > now_,
                  "LP " << self_ << " scheduled an event at " << recv_time
                        << " not after now=" << now_);
    PLS_CHECK_MSG(recv_time <= end_ || recv_time == kEndOfTime,
                  "LP " << self_ << " scheduled beyond the end time");
    if (suppress_) return;  // coast-forward replay: outputs already exist
    Event ev;
    ev.recv_time = recv_time;
    ev.send_time = now_;
    ev.target = target;
    ev.sender = self_;
    ev.port = port;
    ev.value = value;
    ev.sign = Sign::kPositive;
    ev.id = rt_->alloc_event_id();
    rt_->record_output(ev);
    out_->push_back(ev);
  }

 private:
  SimTime now_;
  SimTime end_;
  LpId self_;
  LpRuntime* rt_;
  std::deque<Event>* out_;
  bool suppress_;
  bool init_mode_;
};

}  // namespace

Kernel::Kernel(std::vector<LogicalProcess*> lps,
               std::vector<std::uint32_t> node_of, KernelConfig cfg)
    : lps_(std::move(lps)), node_of_(std::move(node_of)), cfg_(cfg),
      gvt_coord_(cfg.num_nodes) {
  PLS_CHECK(cfg_.num_nodes >= 1);
  PLS_CHECK_MSG(lps_.size() == node_of_.size(),
                "node map size must equal LP count");
  PLS_CHECK_MSG(!lps_.empty(), "kernel needs at least one LP");
  runtimes_.reserve(lps_.size());
  for (LpId i = 0; i < lps_.size(); ++i) {
    PLS_CHECK_MSG(lps_[i] != nullptr, "null LP behaviour");
    PLS_CHECK_MSG(node_of_[i] < cfg_.num_nodes,
                  "LP " << i << " mapped to node " << node_of_[i]
                        << " >= num_nodes");
    runtimes_.emplace_back(i, lps_[i], cfg_.state_period);
  }
  // Adaptive mode with no explicit window starts at a horizon-relative
  // guess instead of fully open: the controller converges either way, but
  // short runs never amortize the initial storm an open window invites.
  SimTime base_window = cfg_.optimism_window;
  if (cfg_.throttle.mode == ThrottleMode::kAdaptive && base_window == 0) {
    base_window = std::max(cfg_.throttle.min_window, cfg_.end_time / 16);
  }
  clusters_.reserve(cfg_.num_nodes);
  for (std::uint32_t n = 0; n < cfg_.num_nodes; ++n) {
    clusters_.push_back(std::make_unique<Cluster>());
    clusters_.back()->node = n;
    clusters_.back()->throttle = OptimismThrottle(cfg_.throttle, base_window);
  }
  for (LpId i = 0; i < lps_.size(); ++i) {
    clusters_[node_of_[i]]->own_lps.push_back(i);
  }
}

Kernel::~Kernel() = default;

void Kernel::init_all_lps() {
  // Single-threaded elaboration: run every LP's init() and deliver its
  // initial sends directly (no network, no rollbacks possible yet).
  std::deque<Event> out;
  for (LpId i = 0; i < lps_.size(); ++i) {
    runtimes_[i].install_initial_state(lps_[i]->initial_state());
  }
  for (LpId i = 0; i < lps_.size(); ++i) {
    ClusterContext ctx(0, cfg_.end_time, i, &runtimes_[i], &out,
                       /*suppress=*/false, /*init_mode=*/true);
    lps_[i]->init(ctx);
    while (!out.empty()) {
      const Event ev = out.front();
      out.pop_front();
      const auto res = runtimes_[ev.target].insert(ev);
      PLS_CHECK_MSG(!res.rolled_back, "rollback during init phase");
    }
  }
  for (std::uint32_t n = 0; n < cfg_.num_nodes; ++n) {
    for (LpId lp : clusters_[n]->own_lps) {
      clusters_[n]->push_sched(runtimes_[lp].next_time(), lp);
    }
  }
}

void Kernel::node_main(std::uint32_t node) {
  Cluster& cl = *clusters_[node];
  const SimTime end = cfg_.end_time;
  const std::uint64_t latency = cfg_.network.latency_ns;

  // Routes everything in cl.pending: local events are inserted (possibly
  // rolling their LP back, which enqueues cancellation antis right here);
  // remote events pay the network model and land in the peer's mailbox,
  // epoch-tagged and counted for the GVT transient-message accounting.
  auto route_pending = [&] {
    while (!cl.pending.empty()) {
      const Event ev = cl.pending.front();
      cl.pending.pop_front();
      const std::uint32_t target_node = node_of_[ev.target];
      if (target_node == node) {
        auto res = runtimes_[ev.target].insert(ev);
        if (ev.sign == Sign::kPositive) ++cl.stats.intra_node_events;
        if (res.rolled_back) {
          if (res.secondary) ++cl.stats.secondary_rollbacks;
          else ++cl.stats.primary_rollbacks;
          cl.stats.events_rolled_back += res.unprocessed_events;
          cl.throttle.note_rollback(res.unprocessed_events);
          for (Event& anti : res.antis) {
            cl.pending.push_back(anti);
          }
        }
        cl.push_sched(runtimes_[ev.target].next_time(), ev.target);
      } else {
        if (cfg_.network.send_overhead_ns > 0) {
          util::busy_spin_ns(cfg_.network.send_overhead_ns);
        }
        if (ev.sign == Sign::kPositive) ++cl.stats.inter_node_messages;
        else ++cl.stats.anti_messages_sent;
        InFlight f;
        f.deliver_at_ns = steady_now_ns() + latency;
        f.seq = cl.net_seq++;
        f.epoch = cl.my_round;
        f.event = ev;
        // Count before pushing: the receive counter must never overtake.
        gvt_coord_.count_send(node, cl.my_round);
        clusters_[target_node]->mailbox.push(std::move(f));
      }
    }
  };

  while (!done_.load(std::memory_order_acquire) &&
         !stalled_.load(std::memory_order_relaxed)) {
    // --- GVT: join a newly started round (no rendezvous) -----------------
    const std::uint64_t r = gvt_coord_.round();
    if (r != cl.my_round) {
      // cl.pending is empty here (route_pending ran to completion last
      // iteration), so everything this node owes the world is in its LP
      // queues or its holding heap — exactly what the report covers.
      // Whites still in the mailbox are caught by the drain counters.
      SimTime local = cl.gvt_report_min(runtimes_);
      local = std::min(local, cl.holding.min_recv_time());
      gvt_coord_.join(node, r, local);
      cl.my_round = r;
      // GVT-round cadence is the throttle's control period: frequent
      // enough to react to a storm, coarse enough to smooth over noise.
      cl.throttle.on_round(r);
    }
    if (node == 0) controller_poll(steady_now_ns());

    // --- fossil collection on newly completed rounds ---------------------
    const std::uint64_t completed =
        completed_rounds_.load(std::memory_order_acquire);
    if (completed != cl.last_fossil_round) {
      cl.last_fossil_round = completed;
      fossil_round(cl);
    }

    // --- receive ----------------------------------------------------------
    if (!cl.mailbox.probably_empty()) {
      cl.drain_buf.clear();
      cl.mailbox.drain(cl.drain_buf);
      for (auto& f : cl.drain_buf) {
        // Rounds serialize, so a drained message is at most one epoch away
        // from the receiver's color in either direction.
        PLS_DCHECK(f.epoch + 1 >= cl.my_round && f.epoch <= cl.my_round + 1);
        gvt_coord_.count_drain(node, f.epoch, cl.my_round,
                               f.event.recv_time);
        cl.holding.push(std::move(f));
      }
    }
    const std::uint64_t now_ns = steady_now_ns();
    while (!cl.holding.empty() && cl.holding.top().deliver_at_ns <= now_ns) {
      cl.pending.push_back(cl.holding.pop().event);
    }
    route_pending();

    // --- execute up to max_batches_per_poll LTSF batches ------------------
    // Batching amortizes the per-poll overhead (mailbox probe, GVT join,
    // fossil check) over several executions.  The window limit is
    // re-evaluated between batches — GVT may advance mid-burst, and a
    // routed straggler can change which LP is lowest-timestamp — so a
    // burst never runs further ahead than a single-batch loop would.
    bool executed = false;
    bool blocked_by_window = false;
    const std::uint32_t max_batches = std::max(1u, cfg_.max_batches_per_poll);
    for (std::uint32_t b = 0; b < max_batches; ++b) {
      cl.clean_top(runtimes_);
      if (cl.sched.empty()) break;
      const SchedEntry top = cl.sched.front();
      const SimTime gvt_now = gvt_.load(std::memory_order_relaxed);
      // Saturating: near end-of-time a plain add wraps, collapsing the
      // window and blocking the final drain (regression-tested).
      const SimTime window_limit =
          saturating_add(gvt_now, cl.throttle.window());
      if (top.time > window_limit) {
        blocked_by_window = true;
        break;
      }
      LpRuntime& rt = runtimes_[top.lp];
      const SimTime t = rt.begin_batch(cl.batch_scratch);
      const bool replay = rt.in_replay(t);
      ClusterContext ctx(t, end, top.lp, &rt, &cl.pending, replay,
                         /*init_mode=*/false);
      rt.behavior()->execute(ctx, cl.batch_scratch);
      if (cfg_.event_cost_ns > 0) util::busy_spin_ns(cfg_.event_cost_ns);
      rt.commit_batch(t, cl.batch_scratch.size());
      cl.stats.events_processed += cl.batch_scratch.size();
      cl.throttle.note_executed(cl.batch_scratch.size(),
                                t > gvt_now ? t - gvt_now : 0);
      cl.exec_ticks.fetch_add(1, std::memory_order_relaxed);
      cl.push_sched(rt.next_time(), top.lp);
      route_pending();
      executed = true;
    }
    // Only a throttled-and-otherwise-idle node asks for an early GVT
    // round: while batches still execute, the normal cadence is fine.
    cl.window_blocked.store(!executed && blocked_by_window,
                            std::memory_order_relaxed);
    if (executed) {
      ++cl.stats.exec_polls;
      cl.idle_streak = 0;
    } else {
      ++cl.stats.idle_polls;
      if (++cl.idle_streak < kIdleSpinPolls) {
        // Recently busy: stay reactive, just be polite to siblings.
        std::this_thread::yield();
      } else {
        // Nothing runnable for a while: actually release the core so the
        // thread that holds work can use it (critical when node threads
        // outnumber cores).  Bound the nap by the next modeled-network
        // delivery deadline so latency stays accurate.
        std::uint64_t nap = kIdleNapNs;
        const std::uint64_t deadline = cl.holding.next_deadline_ns();
        if (deadline != 0) {
          const std::uint64_t now2 = steady_now_ns();
          nap = deadline > now2 ? std::min(nap, deadline - now2)
                                : std::uint64_t{1000};
        }
        ++cl.stats.idle_sleeps;
        std::this_thread::sleep_for(std::chrono::nanoseconds(nap));
      }
    }
  }
}

void Kernel::controller_poll(std::uint64_t now_ns) {
  // Complete the round in flight, if any.  Join-freeze first, then the
  // white counters must balance (this order is what makes the counter
  // comparison race-free: after every node joined, no epoch round-1
  // message can ever be sent again).
  if (ctrl_started_rounds_ >
      completed_rounds_.load(std::memory_order_relaxed)) {
    const std::uint64_t round = ctrl_started_rounds_;
    if (gvt_coord_.all_joined(round) && gvt_coord_.whites_drained(round)) {
      const SimTime g = gvt_coord_.round_min();
      const SimTime prev = gvt_.load(std::memory_order_relaxed);
#ifndef NDEBUG
      if (g < prev) {
        std::fprintf(stderr,
                     "[gvt-debug] REGRESSION round=%llu g=%llu prev=%llu\n",
                     (unsigned long long)round, (unsigned long long)g,
                     (unsigned long long)prev);
        for (std::uint32_t n = 0; n < cfg_.num_nodes; ++n) {
          std::fprintf(stderr,
                       "[gvt-debug]  node %u joined=%llu report=%llu "
                       "late_white=%llu\n",
                       n, (unsigned long long)gvt_coord_.joined_round_of(n),
                       (unsigned long long)gvt_coord_.report_min_of(n),
                       (unsigned long long)gvt_coord_.late_white_min_of(n));
        }
        std::abort();
      }
#endif
      gvt_.store(std::max(prev, g), std::memory_order_release);
      completed_rounds_.fetch_add(1, std::memory_order_release);
      if (g == kEndOfTime) {
        done_.store(true, std::memory_order_release);
      }
    }
  }
  if (oom_.load(std::memory_order_relaxed)) {
    done_.store(true, std::memory_order_release);
  }
  // Start the next round on the configured cadence — or early, when some
  // node reports that only a GVT advance can unblock its window-throttled
  // work (otherwise a blocked node idles out the whole interval; under
  // tight windows that wall-clock wait, not rollback work, dominates).
  // A small floor keeps a persistently blocked node from degenerating the
  // GVT into a busy loop.
  if (ctrl_started_rounds_ ==
          completed_rounds_.load(std::memory_order_relaxed) &&
      !done_.load(std::memory_order_relaxed)) {
    const std::uint64_t interval_ns = cfg_.gvt_interval_us * 1000;
    std::uint64_t due_ns = interval_ns;
    for (const auto& cl : clusters_) {
      if (cl->window_blocked.load(std::memory_order_relaxed)) {
        due_ns = interval_ns / 16;
        break;
      }
    }
    if (now_ns - ctrl_last_trigger_ns_ >= due_ns) {
      ctrl_last_trigger_ns_ = now_ns;
      ++ctrl_started_rounds_;
      gvt_coord_.start_round(ctrl_started_rounds_);
    }
  }
}

void Kernel::fossil_round(Cluster& cl) {
  const SimTime g = gvt_.load(std::memory_order_acquire);
  std::size_t live = 0;
  for (LpId lp : cl.own_lps) {
    cl.stats.events_committed +=
        runtimes_[lp].fossil_collect(g).committed_events;
    live += runtimes_[lp].live_entries();
  }
  cl.stats.peak_live_entries = std::max(cl.stats.peak_live_entries, live);
  if (cfg_.max_live_entries_per_node != 0 &&
      live > cfg_.max_live_entries_per_node) {
    oom_.store(true, std::memory_order_relaxed);
  }
}

std::uint64_t Kernel::total_exec_ticks() const noexcept {
  std::uint64_t sum = 0;
  for (const auto& cl : clusters_) {
    sum += cl->exec_ticks.load(std::memory_order_relaxed);
  }
  return sum;
}

void Kernel::watchdog_main() {
  const std::uint64_t timeout_ns = cfg_.watchdog_timeout_ms * 1'000'000ull;
  SimTime last_gvt = gvt_.load(std::memory_order_relaxed);
  std::uint64_t ticks_at_freeze = total_exec_ticks();
  std::uint64_t last_change_ns = steady_now_ns();
  while (!done_.load(std::memory_order_acquire) &&
         !stalled_.load(std::memory_order_acquire)) {
    // Short naps keep end-of-run teardown latency negligible.
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    const SimTime g = gvt_.load(std::memory_order_relaxed);
    const std::uint64_t now = steady_now_ns();
    if (g != last_gvt) {
      last_gvt = g;
      ticks_at_freeze = total_exec_ticks();
      last_change_ns = now;
    } else if (now - last_change_ns >= timeout_ns) {
      // GVT frozen for the whole window.  A healthy run commits every
      // round (the controller starts one each gvt_interval_us), so this
      // catches both true deadlocks (nothing executing either) and
      // rollback livelocks (execution churning with nothing committing —
      // memory then grows without bound).  Node threads poll the flag
      // and exit; run() dumps diagnostics from a single thread.
      stall_ticks_wasted_ = total_exec_ticks() - ticks_at_freeze;
      stalled_.store(true, std::memory_order_release);
      break;
    }
  }
}

void Kernel::dump_stall_diagnostics() const {
  if (stall_ticks_wasted_ == 0) {
    std::fprintf(stderr,
                 "\n[warped] WATCHDOG: DEADLOCK — no GVT advance and no "
                 "execution for %llu ms, aborting run\n",
                 static_cast<unsigned long long>(cfg_.watchdog_timeout_ms));
  } else {
    std::fprintf(stderr,
                 "\n[warped] WATCHDOG: LIVELOCK — %llu batches executed "
                 "but GVT frozen for %llu ms (rollback thrash?), aborting "
                 "run\n",
                 static_cast<unsigned long long>(stall_ticks_wasted_),
                 static_cast<unsigned long long>(cfg_.watchdog_timeout_ms));
  }
  std::fprintf(stderr,
               "[warped] gvt=%llu rounds started=%llu completed=%llu\n",
               static_cast<unsigned long long>(
                   gvt_.load(std::memory_order_relaxed)),
               static_cast<unsigned long long>(ctrl_started_rounds_),
               static_cast<unsigned long long>(
                   completed_rounds_.load(std::memory_order_relaxed)));
  for (std::uint32_t n = 0; n < cfg_.num_nodes; ++n) {
    const Cluster& cl = *clusters_[n];
    std::fprintf(
        stderr,
        "[warped]   node %u: joined_round=%llu report_min=%llu "
        "sent=%llu/%llu recvd=%llu/%llu processed=%llu rollbacks=%llu "
        "pending=%zu holding=%zu\n",
        n,
        static_cast<unsigned long long>(gvt_coord_.joined_round_of(n)),
        static_cast<unsigned long long>(gvt_coord_.report_min_of(n)),
        static_cast<unsigned long long>(gvt_coord_.sent_of(n, 0)),
        static_cast<unsigned long long>(gvt_coord_.sent_of(n, 1)),
        static_cast<unsigned long long>(gvt_coord_.recvd_of(n, 0)),
        static_cast<unsigned long long>(gvt_coord_.recvd_of(n, 1)),
        static_cast<unsigned long long>(cl.stats.events_processed),
        static_cast<unsigned long long>(cl.stats.primary_rollbacks +
                                        cl.stats.secondary_rollbacks),
        cl.pending.size(), cl.holding.size());
  }
  // The LPs holding the globally smallest pending work are where a stall
  // lives; the heaviest rollback victims are why it got there.
  LpId min_lp = kInvalidLp;
  SimTime min_t = kEndOfTime;
  LpId worst_lp = kInvalidLp;
  std::uint64_t worst_rb = 0;
  for (const auto& rt : runtimes_) {
    if (rt.next_time() < min_t) {
      min_t = rt.next_time();
      min_lp = rt.id();
    }
    if (rt.rollbacks() >= worst_rb) {
      worst_rb = rt.rollbacks();
      worst_lp = rt.id();
    }
  }
  if (min_lp != kInvalidLp) {
    std::fprintf(stderr,
                 "[warped]   earliest pending work: LP %u at t=%llu "
                 "(node %u)\n",
                 min_lp, static_cast<unsigned long long>(min_t),
                 node_of_[min_lp]);
  }
  if (worst_lp != kInvalidLp) {
    std::fprintf(stderr,
                 "[warped]   most rolled-back LP: %u (%llu rollbacks, "
                 "%llu events undone, node %u)\n",
                 worst_lp, static_cast<unsigned long long>(worst_rb),
                 static_cast<unsigned long long>(
                     runtimes_[worst_lp].events_rolled_back()),
                 node_of_[worst_lp]);
  }
}

RunStats Kernel::run() {
  PLS_CHECK_MSG(!ran_, "Kernel::run() is single-use");
  ran_ = true;

  util::WallTimer timer;
  init_all_lps();

  std::thread watchdog;
  if (cfg_.watchdog_timeout_ms > 0) {
    watchdog = std::thread([this] { watchdog_main(); });
  }

  if (cfg_.num_nodes == 1) {
    node_main(0);
  } else {
    std::vector<std::thread> threads;
    threads.reserve(cfg_.num_nodes);
    for (std::uint32_t n = 0; n < cfg_.num_nodes; ++n) {
      threads.emplace_back([this, n] { node_main(n); });
    }
    for (auto& t : threads) t.join();
  }
  const double wall_seconds = timer.elapsed_seconds();
  // Unblock the watchdog promptly even on a stalled/OOM exit.
  done_.store(true, std::memory_order_release);
  if (watchdog.joinable()) watchdog.join();

  if (stalled_.load(std::memory_order_acquire)) dump_stall_diagnostics();

  // A GVT == end-of-time round proves nothing *effectful* is pending, but
  // an LP can still hold suppressed coast-forward batches (its state is a
  // restored snapshot behind history whose outputs were never cancelled):
  // done_ may be observed before the replay finished re-executing.  Drain
  // them now, single-threaded, so final_states is the committed state.
  // Skipped on abnormal exits, whose states are not meaningful anyway.
  if (!stalled_.load(std::memory_order_acquire) &&
      !oom_.load(std::memory_order_acquire)) {
    std::deque<Event> sink;
    std::vector<Event> scratch;
    for (std::uint32_t n = 0; n < cfg_.num_nodes; ++n) {
      for (LpId lp : clusters_[n]->own_lps) {
        LpRuntime& rt = runtimes_[lp];
        while (rt.has_unprocessed()) {
          const SimTime t = rt.begin_batch(scratch);
          PLS_CHECK_MSG(rt.in_replay(t),
                        "LP " << lp << " still holds an effectful event at "
                              << t << " after termination (unsound GVT)");
          ClusterContext ctx(t, cfg_.end_time, lp, &rt, &sink,
                             /*suppress=*/true, /*init_mode=*/false);
          rt.behavior()->execute(ctx, scratch);
          rt.commit_batch(t, scratch.size());
          clusters_[n]->stats.events_processed += scratch.size();
        }
      }
    }
    PLS_CHECK_MSG(sink.empty(), "suppressed replay produced a send");
  }

  RunStats out;
  out.num_nodes = cfg_.num_nodes;
  out.wall_seconds = wall_seconds;
  out.final_gvt = gvt_.load(std::memory_order_acquire);
  out.gvt_cycles = completed_rounds_.load(std::memory_order_acquire);
  out.out_of_memory = oom_.load(std::memory_order_acquire);
  out.stalled = stalled_.load(std::memory_order_acquire);
  out.per_node.resize(cfg_.num_nodes);
  out.throttle.reserve(cfg_.num_nodes);
  for (std::uint32_t n = 0; n < cfg_.num_nodes; ++n) {
    Cluster& cl = *clusters_[n];
    // Commit whatever the last fossil pass left behind.
    for (LpId lp : cl.own_lps) {
      cl.stats.events_committed += runtimes_[lp].finalize();
    }
    const ThrottleSummary ts = cl.throttle.summary();
    cl.stats.throttle_shrinks = ts.shrinks;
    cl.stats.throttle_grows = ts.grows;
    out.per_node[n] = cl.stats;
    out.totals.merge(cl.stats);
    out.throttle.push_back(ThrottleTrace{ts, cl.throttle.trajectory()});
  }
  out.final_states.reserve(runtimes_.size());
  out.per_lp.reserve(runtimes_.size());
  for (const auto& rt : runtimes_) {
    out.final_states.push_back(rt.state());
    LpStats ls;
    ls.events_processed = rt.events_processed();
    ls.events_rolled_back = rt.events_rolled_back();
    ls.events_committed = rt.events_committed();
    ls.sends_committed = rt.sends_committed();
    ls.rollbacks = rt.rollbacks();
    ls.max_rollback_depth = rt.max_rollback_depth();
    out.per_lp.push_back(ls);
  }
  return out;
}

}  // namespace pls::warped
