#include "warped/kernel.hpp"

#include <algorithm>
#include <chrono>
#include <deque>
#include <thread>

#include "util/check.hpp"
#include "util/timer.hpp"

namespace pls::warped {
namespace {

std::uint64_t steady_now_ns() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

struct SchedEntry {
  SimTime time;
  LpId lp;
  friend bool operator>(const SchedEntry& a, const SchedEntry& b) noexcept {
    if (a.time != b.time) return a.time > b.time;
    return a.lp > b.lp;
  }
};

}  // namespace

/// Per-node state.  Only the owning thread touches anything here except
/// `mailbox`, which is the node's multi-producer receive endpoint.
struct Kernel::Cluster {
  std::uint32_t node = 0;
  std::vector<LpId> own_lps;

  // LTSF scheduler: lazy min-heap over (next pending time, lp).  Entries
  // go stale when an LP's next_time changes; clean_top() discards them.
  std::vector<SchedEntry> sched;

  Mailbox mailbox;
  HoldingHeap holding;
  std::vector<InFlight> drain_buf;
  std::deque<Event> pending;  ///< routing work queue (FIFO per channel)
  std::vector<Event> batch_scratch;
  std::uint64_t net_seq = 0;

  NodeStats stats;
  std::uint64_t last_gvt_trigger_ns = 0;

  void push_sched(SimTime t, LpId lp) {
    if (t != kEndOfTime) {
      sched.push_back(SchedEntry{t, lp});
      std::push_heap(sched.begin(), sched.end(), std::greater<>{});
    }
  }

  /// Discard stale heap entries; afterwards the top (if any) is exact.
  void clean_top(const std::vector<LpRuntime>& rts) {
    while (!sched.empty()) {
      const SchedEntry top = sched.front();
      const SimTime actual = rts[top.lp].next_time();
      if (actual == top.time) return;
      std::pop_heap(sched.begin(), sched.end(), std::greater<>{});
      sched.pop_back();
      push_sched(actual, top.lp);
    }
  }

  SimTime sched_min(const std::vector<LpRuntime>& rts) {
    clean_top(rts);
    return sched.empty() ? kEndOfTime : sched.front().time;
  }
};

namespace {

/// Context used while executing one batch on a cluster; buffers sends for
/// post-commit routing (sending mid-execution could cascade a rollback of
/// the very LP whose execute() frame is still live).
class ClusterContext final : public Context {
 public:
  ClusterContext(SimTime now, SimTime end, LpId self, LpRuntime* rt,
                 std::deque<Event>* out, bool suppress, bool init_mode)
      : now_(now), end_(end), self_(self), rt_(rt), out_(out),
        suppress_(suppress), init_mode_(init_mode) {}

  SimTime now() const override { return now_; }
  SimTime end_time() const override { return end_; }
  LpId self() const override { return self_; }
  LpState& state() override { return rt_->state(); }

  void send(LpId target, SimTime recv_time, std::uint32_t port,
            std::uint64_t value) override {
    PLS_CHECK_MSG(init_mode_ ? recv_time >= now_ : recv_time > now_,
                  "LP " << self_ << " scheduled an event at " << recv_time
                        << " not after now=" << now_);
    PLS_CHECK_MSG(recv_time <= end_ || recv_time == kEndOfTime,
                  "LP " << self_ << " scheduled beyond the end time");
    if (suppress_) return;  // coast-forward replay: outputs already exist
    Event ev;
    ev.recv_time = recv_time;
    ev.send_time = now_;
    ev.target = target;
    ev.sender = self_;
    ev.port = port;
    ev.value = value;
    ev.sign = Sign::kPositive;
    ev.id = rt_->alloc_event_id();
    rt_->record_output(ev);
    out_->push_back(ev);
  }

 private:
  SimTime now_;
  SimTime end_;
  LpId self_;
  LpRuntime* rt_;
  std::deque<Event>* out_;
  bool suppress_;
  bool init_mode_;
};

}  // namespace

Kernel::Kernel(std::vector<LogicalProcess*> lps,
               std::vector<std::uint32_t> node_of, KernelConfig cfg)
    : lps_(std::move(lps)), node_of_(std::move(node_of)), cfg_(cfg),
      barrier_(cfg.num_nodes), reported_min_(cfg.num_nodes, kEndOfTime) {
  PLS_CHECK(cfg_.num_nodes >= 1);
  PLS_CHECK_MSG(lps_.size() == node_of_.size(),
                "node map size must equal LP count");
  PLS_CHECK_MSG(!lps_.empty(), "kernel needs at least one LP");
  runtimes_.reserve(lps_.size());
  for (LpId i = 0; i < lps_.size(); ++i) {
    PLS_CHECK_MSG(lps_[i] != nullptr, "null LP behaviour");
    PLS_CHECK_MSG(node_of_[i] < cfg_.num_nodes,
                  "LP " << i << " mapped to node " << node_of_[i]
                        << " >= num_nodes");
    runtimes_.emplace_back(i, lps_[i], cfg_.state_period);
  }
  clusters_.reserve(cfg_.num_nodes);
  for (std::uint32_t n = 0; n < cfg_.num_nodes; ++n) {
    clusters_.push_back(std::make_unique<Cluster>());
    clusters_.back()->node = n;
  }
  for (LpId i = 0; i < lps_.size(); ++i) {
    clusters_[node_of_[i]]->own_lps.push_back(i);
  }
}

Kernel::~Kernel() = default;

void Kernel::init_all_lps() {
  // Single-threaded elaboration: run every LP's init() and deliver its
  // initial sends directly (no network, no rollbacks possible yet).
  std::deque<Event> out;
  for (LpId i = 0; i < lps_.size(); ++i) {
    runtimes_[i].install_initial_state(lps_[i]->initial_state());
  }
  for (LpId i = 0; i < lps_.size(); ++i) {
    ClusterContext ctx(0, cfg_.end_time, i, &runtimes_[i], &out,
                       /*suppress=*/false, /*init_mode=*/true);
    lps_[i]->init(ctx);
    while (!out.empty()) {
      const Event ev = out.front();
      out.pop_front();
      const auto res = runtimes_[ev.target].insert(ev);
      PLS_CHECK_MSG(!res.rolled_back, "rollback during init phase");
    }
  }
  for (std::uint32_t n = 0; n < cfg_.num_nodes; ++n) {
    for (LpId lp : clusters_[n]->own_lps) {
      clusters_[n]->push_sched(runtimes_[lp].next_time(), lp);
    }
  }
}

void Kernel::node_main(std::uint32_t node) {
  Cluster& cl = *clusters_[node];
  const SimTime end = cfg_.end_time;
  const std::uint64_t latency = cfg_.network.latency_ns;

  // Routes everything in cl.pending: local events are inserted (possibly
  // rolling their LP back, which enqueues cancellation antis right here);
  // remote events pay the network model and land in the peer's mailbox.
  auto route_pending = [&] {
    while (!cl.pending.empty()) {
      const Event ev = cl.pending.front();
      cl.pending.pop_front();
      const std::uint32_t target_node = node_of_[ev.target];
      if (target_node == node) {
        auto res = runtimes_[ev.target].insert(ev);
        if (ev.sign == Sign::kPositive) ++cl.stats.intra_node_events;
        if (res.rolled_back) {
          if (res.secondary) ++cl.stats.secondary_rollbacks;
          else ++cl.stats.primary_rollbacks;
          cl.stats.events_rolled_back += res.unprocessed_events;
          for (Event& anti : res.antis) {
            cl.pending.push_back(anti);
          }
        }
        cl.push_sched(runtimes_[ev.target].next_time(), ev.target);
      } else {
        if (cfg_.network.send_overhead_ns > 0) {
          util::busy_spin_ns(cfg_.network.send_overhead_ns);
        }
        if (ev.sign == Sign::kPositive) ++cl.stats.inter_node_messages;
        else ++cl.stats.anti_messages_sent;
        InFlight f;
        f.deliver_at_ns = steady_now_ns() + latency;
        f.seq = cl.net_seq++;
        f.event = ev;
        clusters_[target_node]->mailbox.push(std::move(f));
      }
    }
  };

  while (true) {
    // --- GVT rendezvous -------------------------------------------------
    if (gvt_requested_.load(std::memory_order_acquire)) {
      if (gvt_round(node)) break;
    }
    if (node == 0) {
      const std::uint64_t now = steady_now_ns();
      if (now - cl.last_gvt_trigger_ns >= cfg_.gvt_interval_us * 1000) {
        cl.last_gvt_trigger_ns = now;
        gvt_requested_.store(true, std::memory_order_release);
      }
    }

    // --- receive ----------------------------------------------------------
    cl.drain_buf.clear();
    cl.mailbox.drain(cl.drain_buf);
    for (auto& f : cl.drain_buf) cl.holding.push(std::move(f));
    const std::uint64_t now_ns = steady_now_ns();
    while (!cl.holding.empty() && cl.holding.top().deliver_at_ns <= now_ns) {
      cl.pending.push_back(cl.holding.pop().event);
    }
    route_pending();

    // --- execute one batch (LTSF) ----------------------------------------
    cl.clean_top(runtimes_);
    bool executed = false;
    if (!cl.sched.empty()) {
      const SchedEntry top = cl.sched.front();
      const SimTime window_limit =
          cfg_.optimism_window == 0
              ? kEndOfTime
              : gvt_.load(std::memory_order_relaxed) + cfg_.optimism_window;
      if (top.time <= window_limit) {
        LpRuntime& rt = runtimes_[top.lp];
        const SimTime t = rt.begin_batch(cl.batch_scratch);
        const bool replay = rt.in_replay(t);
        ClusterContext ctx(t, end, top.lp, &rt, &cl.pending, replay,
                           /*init_mode=*/false);
        rt.behavior()->execute(ctx, cl.batch_scratch);
        if (cfg_.event_cost_ns > 0) util::busy_spin_ns(cfg_.event_cost_ns);
        rt.commit_batch(t, cl.batch_scratch.size());
        cl.stats.events_processed += cl.batch_scratch.size();
        cl.push_sched(rt.next_time(), top.lp);
        route_pending();
        executed = true;
      }
    }
    if (!executed) {
      ++cl.stats.idle_polls;
      // Nothing runnable: be polite to sibling hyperthreads but do not
      // sleep — sub-microsecond reaction to incoming stragglers matters.
      std::this_thread::yield();
    }
  }
}

bool Kernel::gvt_round(std::uint32_t node) {
  Cluster& cl = *clusters_[node];

  // B1: every node thread is parked here, so no sends are in progress; all
  // in-flight messages are physically inside mailboxes or holding heaps.
  barrier_.arrive_and_wait();

  SimTime local = cl.sched_min(runtimes_);
  local = std::min(local, cl.holding.min_recv_time());
  local = std::min(local, cl.mailbox.min_recv_time());
  reported_min_[node] = local;

  // B2: reductions visible; node 0 computes the new GVT.
  barrier_.arrive_and_wait();
  if (node == 0) {
    SimTime g = kEndOfTime;
    for (SimTime m : reported_min_) g = std::min(g, m);
    gvt_.store(g, std::memory_order_release);
    ++gvt_cycles_;
    if (g == kEndOfTime || oom_.load(std::memory_order_relaxed)) {
      done_.store(true, std::memory_order_release);
    }
    gvt_requested_.store(false, std::memory_order_release);
  }

  // B3: everyone sees the new GVT / done flag; fossil-collect and go on.
  barrier_.arrive_and_wait();
  const SimTime g = gvt_.load(std::memory_order_acquire);
  std::size_t live = 0;
  for (LpId lp : cl.own_lps) {
    cl.stats.events_committed += runtimes_[lp].fossil_collect(g).committed_events;
    live += runtimes_[lp].live_entries();
  }
  cl.stats.peak_live_entries = std::max(cl.stats.peak_live_entries, live);
  if (cfg_.max_live_entries_per_node != 0 &&
      live > cfg_.max_live_entries_per_node) {
    oom_.store(true, std::memory_order_relaxed);
  }
  return done_.load(std::memory_order_acquire);
}

RunStats Kernel::run() {
  PLS_CHECK_MSG(!ran_, "Kernel::run() is single-use");
  ran_ = true;

  util::WallTimer timer;
  init_all_lps();
  epoch_origin_ns_.store(steady_now_ns(), std::memory_order_release);

  if (cfg_.num_nodes == 1) {
    node_main(0);
  } else {
    std::vector<std::thread> threads;
    threads.reserve(cfg_.num_nodes);
    for (std::uint32_t n = 0; n < cfg_.num_nodes; ++n) {
      threads.emplace_back([this, n] { node_main(n); });
    }
    for (auto& t : threads) t.join();
  }

  RunStats out;
  out.num_nodes = cfg_.num_nodes;
  out.wall_seconds = timer.elapsed_seconds();
  out.final_gvt = gvt_.load(std::memory_order_acquire);
  out.gvt_cycles = gvt_cycles_;
  out.out_of_memory = oom_.load(std::memory_order_acquire);
  out.per_node.resize(cfg_.num_nodes);
  for (std::uint32_t n = 0; n < cfg_.num_nodes; ++n) {
    Cluster& cl = *clusters_[n];
    // Commit whatever the last fossil pass left behind.
    for (LpId lp : cl.own_lps) {
      cl.stats.events_committed += runtimes_[lp].finalize();
    }
    out.per_node[n] = cl.stats;
    out.totals.merge(cl.stats);
  }
  out.final_states.reserve(runtimes_.size());
  for (const auto& rt : runtimes_) out.final_states.push_back(rt.state());
  return out;
}

}  // namespace pls::warped
