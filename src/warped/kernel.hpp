#pragma once
// The Time Warp kernel: one thread per node ("workstation"), each running a
// WARPED-style cluster of logical processes with an LTSF (lowest timestamp
// first) scheduler, communicating through mailboxes with a modeled network
// (comm.hpp), synchronized by an asynchronous Mattern-style GVT (gvt.hpp)
// with fossil collection.  No node thread ever blocks on another: GVT
// rounds are joined from the main loop, transient messages are accounted
// with epoch-colored counters, and a watchdog thread turns any residual
// stall into a diagnosed abort instead of a silent hang.
//
// Mapping to the paper's framework (§4): LPs are grouped into clusters, one
// per node; LPs within a cluster interact directly as classical Time Warp
// processes; inter-cluster messages pay the network costs.  The partition
// produced by any of the study's algorithms is exactly the LP→node map
// given to this kernel.

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "mem/pool.hpp"
#include "warped/channel.hpp"
#include "warped/comm.hpp"
#include "warped/gvt.hpp"
#include "warped/lp.hpp"
#include "warped/lp_runtime.hpp"
#include "warped/stats.hpp"
#include "warped/throttle.hpp"
#include "warped/types.hpp"

namespace pls::obs {
class ObsSession;
}

namespace pls::warped {

/// Snapshot handed to the repartition hook at a GVT epoch (dynamic
/// repartitioning).  `current` is the live LP→node map; the committed
/// counters are cumulative (the hook diffs successive epochs for a drift
/// signal) and may lag the very latest fossil pass by one round.
struct RepartitionRequest {
  SimTime gvt = 0;
  std::uint64_t round = 0;                    ///< completed GVT rounds
  std::vector<std::uint32_t> current;         ///< live LP→node assignment
  std::vector<std::uint64_t> events_committed;  ///< per-LP, cumulative
  std::vector<std::uint64_t> sends_committed;   ///< per-LP, cumulative
  /// Per-LP committed incoming lane transitions (mask popcounts), the
  /// lane-aware work signal; equals events_committed in single-lane runs.
  std::vector<std::uint64_t> lane_work_committed;
};

/// Policy callback for dynamic repartitioning: return the desired LP→node
/// assignment (same size as `current`), or an empty vector to keep the
/// current one.  Runs on node 0's thread between GVT rounds — keep it
/// cheap (the driver wires an *incremental* refinement here, never a
/// from-scratch V-cycle).
using RepartitionHook =
    std::function<std::vector<std::uint32_t>(const RepartitionRequest&)>;

struct KernelConfig {
  std::uint32_t num_nodes = 1;
  /// Simulation horizon: LPs must not schedule events beyond this.
  SimTime end_time = 1000;

  /// CPU cost charged per executed event batch (models the granularity of
  /// the paper's generated VHDL processes).  0 = no artificial cost.
  std::uint64_t event_cost_ns = 0;

  /// Inter-node communication model (see comm.hpp).
  NetworkModel network;

  /// Send-side coalescing (channel.hpp): per-destination buffers flushed
  /// as one Batch per destination at LTSF-burst end (plus the size/age
  /// bounds).  Committed results are bit-identical enabled or disabled;
  /// disabled routes every message as a one-message batch for clean
  /// comparisons.
  CoalesceConfig coalesce;

  /// Inter-node transport (non-owning; must outlive run() and connect at
  /// least num_nodes endpoints).  Null — the default — makes the kernel
  /// construct its own InProcChannel; a distributed backend passes its
  /// own implementation here without the kernel changing.
  Channel* channel = nullptr;

  /// Wall-clock interval between GVT round starts.
  std::uint64_t gvt_interval_us = 2000;

  /// State-saving period: snapshot after every Nth batch (1 = classic
  /// copy-state-every-event; >1 = periodic saving with coast-forward).
  std::uint32_t state_period = 1;

  /// Optimism throttling: never execute events beyond GVT + window.  The
  /// window is sized per `throttle.mode` (adaptive by default — a per-node
  /// feedback loop on the observed rollback fraction; see throttle.hpp).
  /// `optimism_window` is the fixed window in kFixed mode and the initial
  /// window in kAdaptive mode; 0 means unbounded / start fully open.
  ThrottleConfig throttle;
  SimTime optimism_window = 0;

  /// LTSF batching: up to this many lowest-timestamp batches execute per
  /// main-loop iteration (window limit re-checked between batches), so the
  /// mailbox-poll / GVT-join overhead is amortized over several executions.
  std::uint32_t max_batches_per_poll = 8;

  /// Per-node live-entry limit emulating the paper's 128 MB workstations
  /// (s15850 on 2 nodes ran out of memory).  0 = unlimited.
  std::size_t max_live_entries_per_node = 0;

  /// Deadlock watchdog: if neither GVT nor the global executed-event count
  /// changes for this long, abort the run with RunStats::stalled set and
  /// dump per-node / per-LP diagnostics to stderr.  0 disables it.
  std::uint64_t watchdog_timeout_ms = 30000;

  /// Dynamic repartitioning: every `repartition_interval` completed GVT
  /// rounds (and only once all previously planned migrations installed)
  /// the controller snapshots the live per-LP committed counters and asks
  /// `repartition_hook` for a fresh assignment; every LP whose node
  /// changed is live-migrated at the GVT boundary without stopping the
  /// other nodes (protocol: src/warped/README.md).  0 or a null hook =
  /// static partitioning.
  std::uint64_t repartition_interval = 0;
  RepartitionHook repartition_hook;

  /// Observability session (src/obs/): per-node trace rings + metrics
  /// gauges.  Non-owning, may be null (the default — tracing off costs the
  /// hot path one pointer test); must outlive run().  The kernel only
  /// records — the caller starts/stops the sampler and exports.
  obs::ObsSession* obs = nullptr;
};

class Kernel {
 public:
  /// `lps[i]` is the behaviour of LP id i (non-owning; must outlive run()).
  /// `node_of[i]` maps LP i to a node in [0, cfg.num_nodes).
  Kernel(std::vector<LogicalProcess*> lps, std::vector<std::uint32_t> node_of,
         KernelConfig cfg);
  ~Kernel();

  Kernel(const Kernel&) = delete;
  Kernel& operator=(const Kernel&) = delete;

  /// Run the simulation to completion (or OOM / watchdog abort, reported
  /// in the returned stats); single use.
  RunStats run();

 private:
  struct Cluster;

  void init_all_lps();
  void node_main(std::uint32_t node);
  void controller_poll(std::uint64_t now_ns);  ///< node 0's GVT duties
  void fossil_round(Cluster& cl);
  /// Controller: snapshot counters, run the hook, publish a migration plan.
  void maybe_repartition(SimTime gvt_now, std::uint64_t round);
  /// Owner thread: package + ship every own LP the current plan moved away.
  void emigrate_planned(Cluster& cl);
  /// Owner thread: install an arrived package and release its limbo events.
  void install_migration(Cluster& cl, MigrationMsg&& msg);
  void watchdog_main();
  std::uint64_t total_exec_ticks() const noexcept;
  void dump_stall_diagnostics() const;  ///< post-mortem, single-threaded

  std::vector<LogicalProcess*> lps_;
  std::vector<std::uint32_t> node_of_;
  KernelConfig cfg_;

  /// The transport in use: cfg_.channel, or own_channel_ when null.
  std::unique_ptr<InProcChannel> own_channel_;
  Channel* channel_ = nullptr;

  /// Per-node arenas for wide event payloads and state words.  Declared
  /// *before* runtimes_ on purpose: members destroy in reverse order, so
  /// every pooled block held by a runtime is freed before its pool dies.
  std::vector<std::unique_ptr<mem::Pool>> pools_;  // indexed by node
  std::vector<LpRuntime> runtimes_;          // indexed by LpId
  std::vector<std::unique_ptr<Cluster>> clusters_;  // indexed by node

  // GVT coordination (asynchronous; see gvt.hpp).
  GvtCoordinator gvt_coord_;
  std::atomic<bool> done_{false};
  std::atomic<bool> oom_{false};
  std::atomic<bool> stalled_{false};
  std::atomic<SimTime> gvt_{0};
  /// Rounds whose GVT estimate has been published (written by node 0).
  std::atomic<std::uint64_t> completed_rounds_{0};

  // Controller state, touched only by node 0's thread.
  std::uint64_t ctrl_started_rounds_ = 0;
  std::uint64_t ctrl_last_trigger_ns_ = 0;

  // ---- dynamic repartitioning (live LP migration) -----------------------
  /// Live LP→node routing table.  Replaces node_of_ on every routing
  /// decision; the emigrating node flips an entry (release) *before*
  /// shipping the package, so later senders forward to the destination.
  /// Relaxed reads elsewhere: a stale route only costs one extra hop
  /// (events are re-routed per hop), never correctness.
  std::unique_ptr<std::atomic<std::uint32_t>[]> route_;
  /// Per-LP committed counters republished at each fossil pass, so the
  /// controller can snapshot live activity without touching peer LPs.
  std::unique_ptr<std::atomic<std::uint64_t>[]> pub_committed_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> pub_sends_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> pub_lane_work_;
  /// Current migration plan: written by the controller strictly before the
  /// plan_version_ bump (release); nodes read it after observing a new
  /// version (acquire).  Never rewritten while migrations_outstanding_ > 0.
  std::vector<std::uint32_t> plan_;
  std::atomic<std::uint64_t> plan_version_{0};
  std::atomic<std::uint64_t> migrations_outstanding_{0};
  /// Per-node acknowledgement of the plan version whose emigration scan
  /// completed; the controller publishes a new plan only after every node
  /// acked the current one (so no scan can still be reading plan_).
  std::unique_ptr<std::atomic<std::uint64_t>[]> plan_ack_;
  std::uint64_t repartitions_ = 0;  ///< controller-only; read after join
  std::uint64_t ctrl_last_repartition_round_ = 0;
  bool migratory_ = false;  ///< repartition_interval > 0 and hook set

  /// Batches executed during the watchdog's frozen-GVT window (written by
  /// the watchdog before it raises stalled_): 0 = deadlock, >0 = livelock.
  std::uint64_t stall_ticks_wasted_ = 0;

  bool ran_ = false;
};

}  // namespace pls::warped
