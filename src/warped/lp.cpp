#include "warped/lp.hpp"

#include "util/check.hpp"

namespace pls::warped {

void Context::on_unsupported_wide_send() {
  PLS_CHECK_MSG(false,
                "multi-word send on a context without wide-send support");
}

}  // namespace pls::warped
