#pragma once
// LogicalProcess: the behavioural interface of a Time Warp LP.
//
// Behaviour objects are *stateless*: all mutable simulation state lives in
// the kernel-owned LpState, which the kernel snapshots and restores around
// rollbacks.  The same behaviour objects therefore run unchanged on the
// optimistic parallel kernel and on the sequential reference simulator —
// mirroring how TYVIS-generated processes ran on both WARPED and a
// sequential kernel in the paper's framework (§4).

#include <span>

#include "warped/types.hpp"

namespace pls::warped {

/// Services an LP may use while executing a batch of events.  Implemented
/// by the parallel kernel (with output logging for cancellation) and by the
/// sequential simulator (direct enqueue).
class Context {
 public:
  virtual ~Context() = default;

  /// Virtual time of the batch being executed.
  virtual SimTime now() const = 0;

  /// Simulation horizon: LPs must not schedule events beyond this.
  virtual SimTime end_time() const = 0;

  /// The executing LP's id.
  virtual LpId self() const = 0;

  /// Mutable LP state (snapshotted by the kernel around this call).
  virtual LpState& state() = 0;

  /// Send `value` to `target`'s input `port`, arriving at `recv_time`
  /// (must be strictly greater than now(): nonzero lookahead keeps the
  /// simulation free of zero-delay cycles).  `mask` flags the lanes whose
  /// value changed (see Event): batched LPs pass the change word and must
  /// not call send() with mask == 0; scalar LPs keep the default bit 0.
  virtual void send(LpId target, SimTime recv_time, std::uint32_t port,
                    std::uint64_t value, std::uint64_t mask = 1) = 0;

  /// Multi-word send (lanes > 64): `values[0..k)` are the payload words
  /// and `masks[0..k)` the per-word change masks; at least one mask word
  /// must be non-zero.  k == 1 is exactly send().  Contexts that host
  /// multi-word models override this; the default forwards single words
  /// and rejects wider payloads.
  virtual void send_wide(LpId target, SimTime recv_time, std::uint32_t port,
                         const std::uint64_t* values,
                         const std::uint64_t* masks, std::uint32_t k) {
    if (k == 1) {
      send(target, recv_time, port, values[0], masks[0]);
      return;
    }
    on_unsupported_wide_send();
  }

  /// Schedule a tick to self at `recv_time` (> now()).
  void schedule_self(SimTime recv_time, std::uint64_t value = 0) {
    send(self(), recv_time, kTickPort, value);
  }

 protected:
  /// [[noreturn]] check failure for contexts without wide-send support.
  static void on_unsupported_wide_send();
};

/// An event batch: all positive events for one LP sharing one receive time.
/// Batch-at-a-time execution makes gate evaluation order-independent (each
/// port has a single driver, so a batch holds at most one event per port),
/// which is what guarantees parallel ≡ sequential results.
using EventBatch = std::span<const Event>;

class LogicalProcess {
 public:
  virtual ~LogicalProcess() = default;

  /// Starting state (installed before init()).
  virtual LpState initial_state() const { return LpState{}; }

  /// Called once at virtual time 0 before any event; may schedule events.
  virtual void init(Context& ctx) = 0;

  /// Process all events at one virtual time.  Must be deterministic given
  /// (state, batch content) — it may be re-executed after rollbacks.
  virtual void execute(Context& ctx, EventBatch batch) = 0;
};

}  // namespace pls::warped
