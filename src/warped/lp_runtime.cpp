#include "warped/lp_runtime.hpp"

#include <algorithm>

#include "mem/pool.hpp"
#include "util/check.hpp"

namespace pls::warped {

LpRuntime::LpRuntime(LpId id, LogicalProcess* behavior,
                     std::uint32_t state_period)
    : id_(id), behavior_(behavior), state_period_(state_period) {
  PLS_CHECK_MSG(state_period >= 1, "state saving period must be >= 1");
}

void LpRuntime::install_initial_state(const LpState& s) {
  PLS_CHECK_MSG(!processed_any_ && snapshots_.empty(),
                "initial state must be installed before execution");
  initial_state_ = s;
  state_ = s;
}

std::size_t LpRuntime::first_at_or_after(SimTime t) const {
  // Compare on receive time only: rollback/fossil boundaries are pure
  // times, and all full-ordering tie fields share recv_time.  Index is
  // relative to the head cursor (live range only — the retired prefix is
  // committed history no boundary can reach).
  auto begin = queue_.begin() + static_cast<std::ptrdiff_t>(head_);
  auto it = std::lower_bound(
      begin, queue_.end(), t,
      [](const Event& e, SimTime time) { return e.recv_time < time; });
  return static_cast<std::size_t>(it - begin);
}

void LpRuntime::maybe_compact() {
  // Amortized O(1): compaction moves the live range once per >= equal
  // run of retired events.
  if (head_ >= 64 && head_ * 2 >= queue_.size()) compact();
}

void LpRuntime::compact() {
  if (head_ == 0) return;
  queue_.erase(queue_.begin(),
               queue_.begin() + static_cast<std::ptrdiff_t>(head_));
  head_ = 0;
}

void LpRuntime::rollback(SimTime to_time, InsertResult& res) {
  PLS_CHECK_MSG(to_time > 0,
                "rollback to time 0 would cancel init-phase sends");
  res.rolled_back = true;
  res.rollback_time = to_time;

  // Discarded snapshots and cancelled outputs release their pooled words
  // as one batched run.
  mem::ReclaimScope reclaim;

  // 1. Restore the latest snapshot strictly before to_time.  With periodic
  // state saving the snapshot may be several batches back; the batches in
  // (snapshot, to_time) stay processed-pending and will be *replayed* with
  // sends suppressed (their original outputs survive step 3).
  auto snap = std::lower_bound(
      snapshots_.begin(), snapshots_.end(), to_time,
      [](const Snapshot& s, SimTime time) { return s.time < time; });
  std::size_t new_processed = 0;
  if (snap == snapshots_.begin()) {
    // Once anything committed, a fossil pass has retained a base snapshot
    // at or below GVT, and no legal rollback targets below GVT — so
    // falling back to the initial state here would silently re-derive
    // history whose inputs were already fossil-erased (the signature of a
    // GVT-safety violation, e.g. a migration cancelling below a
    // concurrently published estimate).
    PLS_CHECK_MSG(events_committed_ == 0,
                  "rollback past the fossil base (LP " << id_ << " to time "
                  << to_time << " with " << events_committed_
                  << " events committed): GVT safety violated");
    state_ = initial_state_;
    last_processed_ = 0;
    processed_any_ = false;
    new_processed = 0;
  } else {
    const Snapshot& base = *std::prev(snap);
    state_ = base.state;
    last_processed_ = base.time;
    processed_any_ = true;
    new_processed = first_at_or_after(base.time + 1);
  }
  snapshots_.erase(snap, snapshots_.end());
  batches_since_snapshot_ = 0;

  // 2. Un-process everything after the restored snapshot.
  PLS_CHECK(new_processed <= processed_count_);
  const std::uint64_t undone = processed_count_ - new_processed;
  res.unprocessed_events += undone;
  events_rolled_back_ += undone;
  ++rollbacks_;
  max_rollback_depth_ = std::max(max_rollback_depth_, undone);
  processed_count_ = new_processed;

  // 3. Aggressive cancellation: anti-messages for every output sent at or
  // after to_time.  Outputs in (snapshot, to_time) remain valid — that is
  // exactly why their batches replay muted.
  auto out = std::lower_bound(
      output_queue_.begin(), output_queue_.end(), to_time,
      [](const Event& e, SimTime time) { return e.send_time < time; });
  for (auto it = out; it != output_queue_.end(); ++it) {
    Event anti = *it;
    anti.sign = Sign::kNegative;
    res.antis.push_back(std::move(anti));
  }
  output_queue_.erase(out, output_queue_.end());

  replay_until_ = to_time;
}

LpRuntime::InsertResult LpRuntime::insert(const Event& ev) {
  PLS_CHECK(ev.target == id_);
  InsertResult res;

  if (ev.sign == Sign::kNegative) {
    // Annihilate the positive twin.
    const std::size_t from = first_at_or_after(ev.recv_time);
    for (std::size_t i = from; head_ + i < queue_.size(); ++i) {
      const Event& cand = queue_[head_ + i];
      if (cand.recv_time != ev.recv_time) break;
      if (cand.sign == Sign::kPositive && cand.matches(ev)) {
        if (i < processed_count_ || ev.recv_time < replay_until_) {
          // The twin's effects are visible (executed, or baked into
          // still-valid outputs of the replay window): secondary rollback
          // to its time, then annihilate from the pending suffix.
          res.secondary = true;
          rollback(ev.recv_time, res);
        }
        const std::size_t j = first_at_or_after(ev.recv_time);
        for (std::size_t p = j; head_ + p < queue_.size(); ++p) {
          if (queue_[head_ + p].recv_time != ev.recv_time) break;
          if (queue_[head_ + p].matches(ev)) {
            queue_.erase(queue_.begin() +
                         static_cast<std::ptrdiff_t>(head_ + p));
            return res;
          }
        }
        PLS_CHECK_MSG(false, "positive twin vanished during annihilation");
      }
    }
    // Twin not here yet: the anti overtook its positive.  Impossible over
    // plain FIFO channels, but real under migration (a forwarded anti can
    // beat the twin riding inside the migration package); park it.
    pending_antis_.push_back(ev);
    return res;
  }

  // Positive event.  A waiting anti annihilates it on arrival.
  for (std::size_t i = 0; i < pending_antis_.size(); ++i) {
    if (pending_antis_[i].matches(ev)) {
      pending_antis_.erase(pending_antis_.begin() +
                           static_cast<std::ptrdiff_t>(i));
      return res;
    }
  }

  // Straggler? Any event at or before the last processed batch — or below
  // the replay boundary, where outputs already reflect a history without
  // this event — forces a rollback.  Equal time counts: that batch is
  // complete and must re-execute including the newcomer.
  if ((processed_any_ && ev.recv_time <= last_processed_) ||
      ev.recv_time < replay_until_) {
    rollback(ev.recv_time, res);
  }

  // Fast path: events arriving in queue order append in O(1).  This is
  // the steady state of the committed path (a gate's inputs arrive in
  // time order), and it skips the lower_bound entirely.
  if (queue_.empty() || queue_.back() < ev) {
    queue_.push_back(ev);
    return res;
  }
  const std::size_t at = head_ + [&] {
    auto begin = queue_.begin() + static_cast<std::ptrdiff_t>(head_);
    return static_cast<std::size_t>(
        std::lower_bound(begin, queue_.end(), ev) - begin);
  }();
  PLS_CHECK_MSG(at - head_ >= processed_count_,
                "event insertion inside the processed prefix after rollback");
  queue_.insert(queue_.begin() + static_cast<std::ptrdiff_t>(at), ev);
  return res;
}

EventBatch LpRuntime::begin_batch(SimTime& batch_time) const {
  PLS_CHECK_MSG(has_unprocessed(), "begin_batch with empty pending queue");
  const std::size_t first = head_ + processed_count_;
  const SimTime t = queue_[first].recv_time;
  std::size_t last = first;
  while (last + 1 < queue_.size() && queue_[last + 1].recv_time == t) {
    ++last;
  }
  batch_time = t;
  return {queue_.data() + first, last - first + 1};
}

void LpRuntime::commit_batch(SimTime batch_time, std::size_t batch_size) {
  PLS_CHECK(batch_size > 0);
  PLS_CHECK(head_ + processed_count_ + batch_size <= queue_.size());
  PLS_CHECK_MSG(!processed_any_ || batch_time > last_processed_,
                "batches must commit in increasing time order");
  processed_count_ += batch_size;
  last_processed_ = batch_time;
  processed_any_ = true;
  events_processed_ += batch_size;
  if (++batches_since_snapshot_ >= state_period_) {
    snapshots_.push_back(Snapshot{batch_time, state_});
    batches_since_snapshot_ = 0;
  }
}

void LpRuntime::record_output(const Event& ev) {
  PLS_CHECK(ev.sign == Sign::kPositive);
  PLS_CHECK_MSG(output_queue_.empty() ||
                    output_queue_.back().send_time <= ev.send_time,
                "output queue must grow in send-time order");
  output_queue_.push_back(ev);
}

LpRuntime::FossilResult LpRuntime::fossil_collect(SimTime gvt) {
  FossilResult res;
  if (gvt == 0) return res;

  // Everything this sweep discards — retired event payloads, cancelled
  // snapshots, committed outputs — flows back to its owner pool as one
  // batched reclaim run.
  mem::ReclaimScope reclaim;

  // The newest snapshot strictly below GVT is the restore base for every
  // reachable rollback (targets are always >= GVT).  Events at or below
  // the base's time can never be replayed again: commit and discard them.
  // Without any snapshot below GVT the base is the initial state and
  // nothing can be discarded yet.
  auto snap = std::lower_bound(
      snapshots_.begin(), snapshots_.end(), gvt,
      [](const Snapshot& s, SimTime time) { return s.time < time; });
  if (snap != snapshots_.begin()) {
    const Snapshot& base = *std::prev(snap);
    const std::size_t cut = first_at_or_after(base.time + 1);
    PLS_CHECK_MSG(cut <= processed_count_,
                  "fossil cut crosses unprocessed events (GVT too high)");
    res.committed_events = cut;
    events_committed_ += cut;
    // Lane-aware work signal: committed incoming lane transitions.
    for (std::size_t i = 0; i < cut; ++i) {
      lane_work_committed_ += queue_[head_ + i].mask_popcount();
    }
    // Retire (don't erase): the head cursor advances in O(1); compaction
    // is amortized against the events retired.
    head_ += cut;
    processed_count_ -= cut;
    snapshots_.erase(snapshots_.begin(), std::prev(snap));
    maybe_compact();
  }

  // Outputs below GVT can never be cancelled (cancellation boundaries are
  // >= GVT); the non-self ones are this LP's committed sends (self-sends
  // are scheduling ticks, mirroring SeqStats::per_lp_sends).
  auto out = std::lower_bound(
      output_queue_.begin(), output_queue_.end(), gvt,
      [](const Event& e, SimTime time) { return e.send_time < time; });
  for (auto it = output_queue_.begin(); it != out; ++it) {
    // Transition-weighted: a batched event carries popcount lane
    // transitions per mask word; scalar events keep mask = 1 and count as
    // before.
    if (it->target != it->sender) sends_committed_ += it->mask_popcount();
  }
  output_queue_.erase(output_queue_.begin(), out);

  // A waiting anti below GVT can never meet its positive twin any more (no
  // message below GVT is in flight); drop it so the defence-in-depth list
  // stays bounded over long runs.
  std::erase_if(pending_antis_,
                [gvt](const Event& e) { return e.recv_time < gvt; });
  return res;
}

LpRuntime::InsertResult LpRuntime::cancel_uncommitted(SimTime bound) {
  InsertResult res;
  // Only a rollback can cancel outputs; if the LP never processed a batch
  // at or past `bound` there is nothing speculative to cancel — any
  // remaining replay window's outputs predate `bound` and stay valid.
  if (processed_any_ && last_processed_ >= bound) rollback(bound, res);
  return res;
}

void LpRuntime::export_migration(MigrationMsg& msg) {
  compact();  // drop retired history; the package ships live events only
  msg.lp = id_;
  msg.state = state_;
  msg.initial_state = initial_state_;
  msg.last_processed = last_processed_;
  msg.processed_any = processed_any_;
  msg.replay_until = replay_until_;
  msg.processed_count = processed_count_;
  msg.batches_since_snapshot = batches_since_snapshot_;
  msg.queue = std::move(queue_);
  msg.snapshots = std::move(snapshots_);
  msg.output_queue = std::move(output_queue_);
  msg.pending_antis = std::move(pending_antis_);
  msg.next_event_id = next_event_id_;
  msg.events_processed = events_processed_;
  msg.events_rolled_back = events_rolled_back_;
  msg.rollbacks = rollbacks_;
  msg.max_rollback_depth = max_rollback_depth_;
  msg.events_committed = events_committed_;
  msg.sends_committed = sends_committed_;
  msg.lane_work_committed = lane_work_committed_;
  // Leave the husk inert: an empty queue makes next_time()/gvt_min_time()
  // report kEndOfTime and has_unprocessed() false.  The counters remain so
  // an abnormal exit (package never installed) still reads committed work.
  queue_.clear();
  head_ = 0;
  processed_count_ = 0;
  snapshots_.clear();
  output_queue_.clear();
  pending_antis_.clear();
}

void LpRuntime::import_migration(MigrationMsg&& msg) {
  PLS_CHECK_MSG(msg.lp == id_, "migration package installed on wrong LP");
  PLS_CHECK_MSG(queue_.empty() && !has_unprocessed(),
                "migration package installed on a live LP");
  state_ = msg.state;
  initial_state_ = msg.initial_state;
  last_processed_ = msg.last_processed;
  processed_any_ = msg.processed_any;
  replay_until_ = msg.replay_until;
  head_ = 0;
  processed_count_ = msg.processed_count;
  batches_since_snapshot_ = msg.batches_since_snapshot;
  queue_ = std::move(msg.queue);
  snapshots_ = std::move(msg.snapshots);
  output_queue_ = std::move(msg.output_queue);
  pending_antis_ = std::move(msg.pending_antis);
  next_event_id_ = msg.next_event_id;
  events_processed_ = msg.events_processed;
  events_rolled_back_ = msg.events_rolled_back;
  rollbacks_ = msg.rollbacks;
  max_rollback_depth_ = msg.max_rollback_depth;
  events_committed_ = msg.events_committed;
  sends_committed_ = msg.sends_committed;
  lane_work_committed_ = msg.lane_work_committed;
}

std::uint64_t LpRuntime::finalize() {
  mem::ReclaimScope reclaim;
  const auto committed = static_cast<std::uint64_t>(processed_count_);
  events_committed_ += committed;
  for (std::size_t i = 0; i < processed_count_; ++i) {
    lane_work_committed_ += queue_[head_ + i].mask_popcount();
  }
  // Nothing can be cancelled after termination: the outputs that survived
  // the last fossil pass are committed sends too (non-self, as above).
  for (const Event& ev : output_queue_) {
    if (ev.target != ev.sender) sends_committed_ += ev.mask_popcount();
  }
  output_queue_.clear();
  queue_.erase(queue_.begin(),
               queue_.begin() +
                   static_cast<std::ptrdiff_t>(head_ + processed_count_));
  head_ = 0;
  processed_count_ = 0;
  return committed;
}

}  // namespace pls::warped
