#pragma once
// LpRuntime: per-LP Time Warp bookkeeping — input queue, output queue,
// state snapshots, rollback, annihilation, coast-forward replay and fossil
// collection.
//
// This class is deliberately free of threads and I/O: the cluster scheduler
// calls it from exactly one thread, and the whole rollback protocol can be
// unit-tested deterministically (tests/warped_lp_runtime_test.cpp).
//
// Queue discipline (classic Jefferson Time Warp, WARPED flavour):
//  * input queue = one sorted vector with a retired-prefix head cursor;
//    of the live range a prefix of `processed_count` events has been
//    executed, the suffix is pending.  In-order arrivals append in O(1)
//    (the common case on the committed path); fossil collection *retires*
//    the committed prefix by advancing the head cursor in O(1) and
//    compacts only when the retired range outgrows the live one, so the
//    amortized fossil cost per event is constant instead of a memmove of
//    the whole queue per sweep.
//  * copy state saving after every `state_period`-th executed batch (all
//    events sharing one receive time execute as one batch); period 1 is
//    the classic copy-state-every-event discipline.
//  * a positive event with receive time <= the LP's last processed time
//    (or below the current replay boundary) is a *straggler*: roll back to
//    its time (primary rollback).
//  * a negative event annihilates its positive twin; if the twin's effects
//    are already reflected anywhere (processed, or below the replay
//    boundary) this forces a rollback first (secondary rollback).
//  * rollback = restore the latest snapshot strictly before the rollback
//    time T, un-process everything after the snapshot, emit anti-messages
//    for every output sent at or after T (aggressive cancellation), and
//    mark [snapshot, T) for *coast-forward replay*: those batches
//    re-execute with sends suppressed, because their original outputs were
//    not cancelled and remain valid.
//  * memory: wide event payloads and state words are arena-pooled
//    (mem/pool.hpp); fossil sweeps, rollbacks and finalization run under
//    a mem::ReclaimScope, so each run of discarded payloads goes back to
//    its owner pool with a single splice.

#include <cstdint>
#include <span>
#include <vector>

#include "warped/comm.hpp"
#include "warped/lp.hpp"
#include "warped/types.hpp"

namespace pls::warped {

class LpRuntime {
 public:
  LpRuntime() = default;
  LpRuntime(LpId id, LogicalProcess* behavior, std::uint32_t state_period = 1);

  LpId id() const noexcept { return id_; }
  LogicalProcess* behavior() const noexcept { return behavior_; }

  // ---- insertion ---------------------------------------------------------

  struct InsertResult {
    bool rolled_back = false;
    bool secondary = false;       ///< rollback caused by an anti-message
    SimTime rollback_time = 0;    ///< restore boundary (straggler time)
    std::uint64_t unprocessed_events = 0;  ///< events un-processed
    /// Anti-messages for cancelled outputs; the caller must route these.
    std::vector<Event> antis;
  };

  /// Insert a positive or negative event.  May trigger a rollback whose
  /// side effects (anti-messages to send) are returned to the caller.
  InsertResult insert(const Event& ev);

  // ---- scheduling --------------------------------------------------------

  bool has_unprocessed() const noexcept {
    return head_ + processed_count_ < queue_.size();
  }
  /// Receive time of the next pending batch (kEndOfTime if none).
  SimTime next_time() const noexcept {
    return has_unprocessed() ? queue_[head_ + processed_count_].recv_time
                             : kEndOfTime;
  }
  /// Virtual time of the last executed batch (0 before any execution).
  SimTime last_processed() const noexcept { return last_processed_; }

  /// True if the batch at `batch_time` is a coast-forward replay: execute
  /// it to rebuild state but suppress (do not send, do not record) its
  /// outputs — they were never cancelled.
  bool in_replay(SimTime batch_time) const noexcept {
    return batch_time < replay_until_;
  }

  /// The next batch (all pending events at next_time()) as a view into
  /// the input queue — no copy.  The caller executes the behaviour against
  /// state() and then calls commit_batch(); the view is invalidated by any
  /// insert()/rollback on this LP, which the batch-at-a-time discipline
  /// rules out during execution (sends route only after commit).
  /// `batch_time` receives the batch's receive time.
  EventBatch begin_batch(SimTime& batch_time) const;

  /// Advance past the batch begin_batch() returned; snapshot the state per
  /// the state-saving period.
  void commit_batch(SimTime batch_time, std::size_t batch_size);

  // ---- state -------------------------------------------------------------

  LpState& state() noexcept { return state_; }
  const LpState& state() const noexcept { return state_; }
  void install_initial_state(const LpState& s);

  /// Record a positive output event (called by the kernel's send path
  /// before routing, so it can be cancelled later).
  void record_output(const Event& ev);

  // ---- GVT / fossil collection -------------------------------------------

  /// Smallest receive time this LP can still contribute to GVT: its first
  /// pending batch whose effects are *visible*.  Pending batches below the
  /// replay boundary are coast-forward re-executions with sends suppressed
  /// — they rebuild state that was already accounted for and cannot create
  /// anything new, so reporting them would (harmlessly but needlessly)
  /// drag the GVT estimate below an already-published sound bound.
  /// Anti-messages in flight are accounted by the cluster.
  SimTime gvt_min_time() const noexcept {
    if (!has_unprocessed()) return kEndOfTime;
    const SimTime t = queue_[head_ + processed_count_].recv_time;
    if (t >= replay_until_) return t;
    const std::size_t i = first_at_or_after(replay_until_);
    return head_ + i < queue_.size() ? queue_[head_ + i].recv_time
                                     : kEndOfTime;
  }

  struct FossilResult {
    std::uint64_t committed_events = 0;
  };
  /// Irrevocably commit everything at or below the newest snapshot that
  /// precedes `gvt` (events older than that snapshot can never be replayed
  /// or rolled back again).
  FossilResult fossil_collect(SimTime gvt);

  /// End-of-run commit: counts and discards every processed event still in
  /// the queue (with periodic state saving a few trailing batches survive
  /// fossil_collect(kEndOfTime)).  Call only when the simulation is over.
  std::uint64_t finalize();

  // ---- live migration (dynamic repartitioning) ---------------------------

  /// Cancel all speculation at or after `bound` (= GVT+1 for migration:
  /// no receiver can have fossilized anything a resulting anti-message
  /// targets).  No-op when the LP never processed that far.  The returned
  /// anti-messages must be routed by the caller like any rollback's.
  InsertResult cancel_uncommitted(SimTime bound);

  /// Move the residual Time Warp state into `msg` (call after
  /// cancel_uncommitted + fossil_collect).  Leaves this slot an empty
  /// husk: next_time() == kEndOfTime, so a stale scheduler entry at the
  /// source self-discards, while the committed counters stay readable in
  /// case the run aborts before the package is installed.
  void export_migration(MigrationMsg& msg);

  /// Install a shipped LP at the destination: the inverse of
  /// export_migration, onto this (previously husk) slot.
  void import_migration(MigrationMsg&& msg);

  /// Monotonic event-id source for this LP's sends.  Deliberately *not*
  /// rolled back: re-sends after a rollback get fresh ids, so a stale
  /// anti-message can never annihilate a regenerated positive.
  std::uint64_t alloc_event_id() noexcept { return next_event_id_++; }

  // ---- accounting ---------------------------------------------------------

  std::uint64_t events_processed() const noexcept { return events_processed_; }
  std::uint64_t events_rolled_back() const noexcept {
    return events_rolled_back_;
  }
  /// Number of rollbacks (primary + secondary) this LP suffered.
  std::uint64_t rollbacks() const noexcept { return rollbacks_; }
  /// Events irrevocably committed (fossil-collected + finalized) — the
  /// per-LP useful-work count the activity-guided partitioner feeds back.
  std::uint64_t events_committed() const noexcept {
    return events_committed_;
  }
  /// Committed non-self lane transitions: each uncancellable send counts
  /// popcount over all its mask words — the per-LP traffic count the
  /// activity-guided partitioner feeds back (≈ transitions × fanout;
  /// self-sends are scheduling ticks and excluded).  Scalar events have
  /// mask = 1, so this is exactly the old committed-send count in
  /// single-lane runs.
  std::uint64_t sends_committed() const noexcept { return sends_committed_; }
  /// Committed *incoming* lane transitions: popcount over the mask words
  /// of every committed input event.  This is the lane-aware work signal
  /// — a gate hot in one lane of 256 no longer weighs like one hot in all
  /// of them.  Scalar events carry mask = 1, so in single-lane runs this
  /// equals events_committed() exactly and lane-aware weights degenerate
  /// to the classic ones.
  std::uint64_t lane_work_committed() const noexcept {
    return lane_work_committed_;
  }
  /// Most events undone by a single rollback — bounds how deep the
  /// optimism ran ahead of this LP's true frontier.
  std::uint64_t max_rollback_depth() const noexcept {
    return max_rollback_depth_;
  }
  /// Live memory footprint in queue entries (input + output + snapshots +
  /// waiting antis); used to emulate the paper's out-of-memory behaviour.
  /// Retired (fossil-collected, not yet compacted) entries are committed
  /// history and excluded.
  std::size_t live_entries() const noexcept {
    return (queue_.size() - head_) + output_queue_.size() +
           snapshots_.size() + pending_antis_.size();
  }

  /// Test hooks: inspect internals (live queue range only).
  std::size_t processed_count() const noexcept { return processed_count_; }
  std::span<const Event> input_queue() const noexcept {
    return {queue_.data() + head_, queue_.size() - head_};
  }
  const std::vector<Event>& output_queue() const noexcept {
    return output_queue_;
  }
  const std::vector<Snapshot>& snapshots() const noexcept {
    return snapshots_;
  }

 private:
  void rollback(SimTime to_time, InsertResult& res);

  /// Index (relative to the head cursor) of the first live queue event
  /// with recv_time >= t.
  std::size_t first_at_or_after(SimTime t) const;

  /// Compact the retired prefix out of the queue when it outgrows the
  /// live range (amortized O(1) per retired event).
  void maybe_compact();
  /// Drop the retired prefix unconditionally (migration export).
  void compact();

  LpId id_ = kInvalidLp;
  LogicalProcess* behavior_ = nullptr;
  std::uint32_t state_period_ = 1;
  std::uint32_t batches_since_snapshot_ = 0;

  /// Sorted; [0, head_) retired (committed, awaiting compaction),
  /// [head_, head_ + processed_count_) processed, the rest pending.
  std::vector<Event> queue_;
  std::size_t head_ = 0;
  std::size_t processed_count_ = 0;
  SimTime last_processed_ = 0;
  bool processed_any_ = false;
  SimTime replay_until_ = 0;       ///< batches below this re-execute muted

  LpState state_;
  LpState initial_state_;
  std::vector<Snapshot> snapshots_;  ///< ascending in time

  std::vector<Event> output_queue_;  ///< ascending in send_time

  /// Anti-messages that arrived before their positive twin.  Impossible
  /// over plain FIFO channels, but *reachable* under migration: an anti
  /// chasing a moved LP is forwarded over a second hop and can overtake a
  /// positive twin travelling inside the migration package.
  std::vector<Event> pending_antis_;

  std::uint64_t events_processed_ = 0;
  std::uint64_t events_rolled_back_ = 0;
  std::uint64_t rollbacks_ = 0;
  std::uint64_t max_rollback_depth_ = 0;
  std::uint64_t events_committed_ = 0;
  std::uint64_t sends_committed_ = 0;
  std::uint64_t lane_work_committed_ = 0;
  std::uint64_t next_event_id_ = 1;
};

}  // namespace pls::warped
