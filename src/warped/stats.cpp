#include "warped/stats.hpp"

#include <algorithm>
#include <ostream>

namespace pls::warped {

void NodeStats::merge(const NodeStats& o) noexcept {
  events_processed += o.events_processed;
  events_committed += o.events_committed;
  events_rolled_back += o.events_rolled_back;
  primary_rollbacks += o.primary_rollbacks;
  secondary_rollbacks += o.secondary_rollbacks;
  inter_node_messages += o.inter_node_messages;
  intra_node_events += o.intra_node_events;
  anti_messages_sent += o.anti_messages_sent;
  batches_sent += o.batches_sent;
  batch_msgs_sent += o.batch_msgs_sent;
  max_batch_msgs = std::max(max_batch_msgs, o.max_batch_msgs);
  idle_polls += o.idle_polls;
  idle_sleeps += o.idle_sleeps;
  peak_live_entries = std::max(peak_live_entries, o.peak_live_entries);
  exec_polls += o.exec_polls;
  throttle_shrinks += o.throttle_shrinks;
  throttle_grows += o.throttle_grows;
  lps_migrated_out += o.lps_migrated_out;
  lps_migrated_in += o.lps_migrated_in;
  migration_events_shipped += o.migration_events_shipped;
  pool_slab_bytes += o.pool_slab_bytes;
  pool_blocks_recycled += o.pool_blocks_recycled;
  pool_heap_fallbacks += o.pool_heap_fallbacks;
}

std::ostream& operator<<(std::ostream& os, const RunStats& s) {
  os << "nodes=" << s.num_nodes << " wall=" << s.wall_seconds << "s"
     << " committed=" << s.totals.events_committed
     << " processed=" << s.totals.events_processed
     << " rolled_back=" << s.totals.events_rolled_back
     << " rollbacks=" << s.totals.total_rollbacks() << " (p="
     << s.totals.primary_rollbacks << ", s=" << s.totals.secondary_rollbacks
     << ")"
     << " app_msgs=" << s.totals.inter_node_messages
     << " antis=" << s.totals.anti_messages_sent
     << " gvt_cycles=" << s.gvt_cycles;
  if (s.totals.batches_sent > 0) {
    // Realized coalescing factor: messages per flushed batch.
    os << " batches=" << s.totals.batches_sent << " (avg "
       << static_cast<double>(s.totals.batch_msgs_sent) /
              static_cast<double>(s.totals.batches_sent)
       << " msgs, max " << s.totals.max_batch_msgs << ")";
  }
  os
     // Batching effectiveness: events per executing poll ≈ processed /
     // exec_polls; 1.0 means LTSF batching bought nothing.
     << " exec_polls=" << s.totals.exec_polls;
  if (!s.throttle.empty()) {
    os << " throttle=" << to_string(s.throttle.front().summary.mode);
    if (s.throttle.front().summary.mode == ThrottleMode::kAdaptive) {
      os << " (shrinks=" << s.totals.throttle_shrinks
         << ", grows=" << s.totals.throttle_grows << ")";
    }
  }
  if (s.repartitions > 0) {
    os << " repartitions=" << s.repartitions
       << " migrated=" << s.totals.lps_migrated_out;
  }
  if (s.out_of_memory) os << " OOM";
  if (s.stalled) os << " STALLED";
  return os;
}

}  // namespace pls::warped
