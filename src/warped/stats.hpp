#pragma once
// Run statistics: exactly the quantities the paper's evaluation reports —
// execution time (Table 2, Figure 4), application messages (Figure 5) and
// rollbacks (Figure 6) — plus the supporting Time Warp internals.

#include <cstdint>
#include <iosfwd>
#include <vector>

#include "warped/throttle.hpp"
#include "warped/types.hpp"

namespace pls::warped {

struct NodeStats {
  std::uint64_t events_processed = 0;   ///< executions incl. repeated ones
  std::uint64_t events_committed = 0;   ///< fossil-collected below GVT
  std::uint64_t events_rolled_back = 0;

  std::uint64_t primary_rollbacks = 0;    ///< straggler-induced
  std::uint64_t secondary_rollbacks = 0;  ///< anti-message-induced
  std::uint64_t total_rollbacks() const noexcept {
    return primary_rollbacks + secondary_rollbacks;
  }

  std::uint64_t inter_node_messages = 0;  ///< positive msgs to other nodes
  std::uint64_t intra_node_events = 0;    ///< direct local deliveries
  std::uint64_t anti_messages_sent = 0;

  // Coalescing comm fabric (channel.hpp): flushed batch counts.
  // batch_msgs_sent / batches_sent is the realized coalescing factor;
  // 1.0 means batching bought nothing (or was disabled).
  std::uint64_t batches_sent = 0;     ///< coalesced batches flushed
  std::uint64_t batch_msgs_sent = 0;  ///< messages inside those batches
  std::uint64_t max_batch_msgs = 0;   ///< largest single batch

  std::uint64_t idle_polls = 0;   ///< main-loop spins with nothing to do
  std::uint64_t idle_sleeps = 0;  ///< idle-backoff naps (core released)
  std::size_t peak_live_entries = 0;  ///< memory high-water mark

  std::uint64_t exec_polls = 0;   ///< main-loop polls that executed >= 1 batch
  std::uint64_t throttle_shrinks = 0;  ///< adaptive window contractions
  std::uint64_t throttle_grows = 0;    ///< adaptive window expansions

  // Dynamic repartitioning (live LP migration at GVT epochs).
  std::uint64_t lps_migrated_out = 0;  ///< LPs this node packaged and shipped
  std::uint64_t lps_migrated_in = 0;   ///< migration packages installed here
  std::uint64_t migration_events_shipped = 0;  ///< events inside packages

  // Arena-pool accounting (mem/pool.hpp), snapshotted at run end.
  std::uint64_t pool_slab_bytes = 0;      ///< slab memory reserved
  std::uint64_t pool_blocks_recycled = 0; ///< free-list hits (carve avoided)
  std::uint64_t pool_heap_fallbacks = 0;  ///< allocations the pool declined

  void merge(const NodeStats& o) noexcept;
};

/// Per-LP attribution, so a stall or a rollback storm can be pinned to the
/// responsible process instead of showing up only as node-level noise.
struct LpStats {
  std::uint64_t events_processed = 0;
  std::uint64_t events_rolled_back = 0;
  std::uint64_t events_committed = 0;    ///< fossil-collected useful work —
                                         ///< the warm-up *work* signal
  std::uint64_t sends_committed = 0;     ///< uncancellable lane transitions
                                         ///< (popcount of each send's mask)
                                         ///< — the warm-up *traffic* signal
  std::uint64_t lane_work_committed = 0; ///< committed incoming lane
                                         ///< transitions (input-mask
                                         ///< popcounts): the lane-aware
                                         ///< work signal; == events_committed
                                         ///< in single-lane runs
  std::uint64_t rollbacks = 0;           ///< primary + secondary
  std::uint64_t max_rollback_depth = 0;  ///< most events undone at once
};

/// Per-node optimism-throttle outcome: the controller's summary counters
/// plus the recorded window trajectory (capped; see ThrottleConfig).
struct ThrottleTrace {
  ThrottleSummary summary;
  std::vector<ThrottleDecision> decisions;
};

struct RunStats {
  std::uint32_t num_nodes = 1;
  double wall_seconds = 0.0;        ///< the paper's "Simulation Time"
  SimTime final_gvt = 0;
  std::uint64_t gvt_cycles = 0;     ///< completed asynchronous GVT rounds
  std::uint64_t repartitions = 0;   ///< migration plans published (epochs
                                    ///< where the hook actually moved LPs)
  bool out_of_memory = false;       ///< aborted by the live-event limit
  bool stalled = false;             ///< aborted by the deadlock watchdog

  NodeStats totals;                 ///< aggregated over nodes
  std::vector<NodeStats> per_node;
  std::vector<LpStats> per_lp;      ///< indexed by LpId
  std::vector<ThrottleTrace> throttle;  ///< indexed by node

  /// Final committed state of every LP, for sequential-equivalence checks.
  std::vector<LpState> final_states;
};

std::ostream& operator<<(std::ostream& os, const RunStats& s);

}  // namespace pls::warped
