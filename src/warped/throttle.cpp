#include "warped/throttle.hpp"

#include <algorithm>

namespace pls::warped {
namespace {

/// Multiplies a window by a factor > 1 without overflow; kEndOfTime stays
/// kEndOfTime (an open window has nothing to grow toward).
SimTime scale_window(SimTime w, double factor, SimTime cap) noexcept {
  if (w == kEndOfTime) return kEndOfTime;
  const double scaled = static_cast<double>(w) * factor;
  if (scaled >= static_cast<double>(cap)) return cap;
  const auto grown = static_cast<SimTime>(scaled);
  return grown > w ? grown : w + 1;  // factor ~1 on a tiny window: still move
}

SimTime shrink_window(SimTime w, double factor, SimTime floor_w) noexcept {
  const auto shrunk = static_cast<SimTime>(static_cast<double>(w) * factor);
  return std::max(floor_w, shrunk);
}

}  // namespace

const char* to_string(ThrottleMode m) noexcept {
  switch (m) {
    case ThrottleMode::kUnlimited: return "unlimited";
    case ThrottleMode::kFixed: return "fixed";
    case ThrottleMode::kAdaptive: return "adaptive";
  }
  return "?";
}

bool parse_throttle_mode(const std::string& s, ThrottleMode* out) noexcept {
  if (s == "unlimited") *out = ThrottleMode::kUnlimited;
  else if (s == "fixed") *out = ThrottleMode::kFixed;
  else if (s == "adaptive") *out = ThrottleMode::kAdaptive;
  else return false;
  return true;
}

OptimismThrottle::OptimismThrottle(ThrottleConfig cfg, SimTime base_window)
    : cfg_(cfg) {
  switch (cfg_.mode) {
    case ThrottleMode::kUnlimited:
      window_ = kEndOfTime;
      break;
    case ThrottleMode::kFixed:
      // optimism_window == 0 has always meant "unbounded"; keep it.
      window_ = base_window == 0 ? kEndOfTime : base_window;
      break;
    case ThrottleMode::kAdaptive:
      window_ = base_window == 0 ? cfg_.max_window
                                 : std::clamp(base_window, cfg_.min_window,
                                              cfg_.max_window);
      break;
  }
  min_window_seen_ = window_;
}

void OptimismThrottle::note_executed(std::uint64_t events,
                                     SimTime lead) noexcept {
  sample_executed_ += events;
  sample_max_lead_ = std::max(sample_max_lead_, lead);
}

void OptimismThrottle::note_rollback(std::uint64_t events_undone) noexcept {
  sample_rolled_back_ += events_undone;
  sample_max_depth_ = std::max(sample_max_depth_, events_undone);
}

void OptimismThrottle::on_round(std::uint64_t round) {
  if (cfg_.mode != ThrottleMode::kAdaptive) return;
  if (cooldown_ > 0) {
    if (--cooldown_ == 0) {
      // Cooldown over: discard the tainted sample and start measuring the
      // new window's actual behaviour.
      sample_executed_ = 0;
      sample_rolled_back_ = 0;
      sample_max_depth_ = 0;
      sample_max_lead_ = 0;
      rounds_since_decision_ = 0;
    }
    return;
  }
  ++rounds_since_decision_;
  // A sample is decidable when it saw enough events either way: enough
  // executions for the fraction to mean something, or so many rolled-back
  // events that "storm" is certain even from a few executions.
  const bool full_sample = sample_executed_ >= cfg_.min_sample_events ||
                           sample_rolled_back_ >= cfg_.min_sample_events;
  // A thin sample still forces a periodic decision: a node starved by its
  // own too-small window cannot accumulate a full sample, and that is
  // precisely the state the controller must be able to leave.
  if (!full_sample && rounds_since_decision_ < cfg_.max_rounds_per_decision) {
    return;
  }
  decide(round, full_sample);
}

void OptimismThrottle::decide(std::uint64_t round, bool full_sample) {
  const double frac =
      static_cast<double>(sample_rolled_back_) /
      static_cast<double>(std::max<std::uint64_t>(1, sample_executed_));
  if (!full_sample) {
    // Thin sample: either window-starved or genuinely idle.  Growing is
    // the right move in the first case and harmless in the second (an
    // idle node executes nothing regardless of its window).
    const SimTime grown = grown_window();
    if (grown == window_) {
      // Already fully open: nothing to decide — keep accumulating the
      // sample instead of discarding it.
      rounds_since_decision_ = 0;
      return;
    }
    window_ = grown;
    ++grows_;
    record(round, frac, +1);
  } else if (frac > cfg_.target_rollback_fraction &&
             (window_ == kEndOfTime || sample_max_lead_ >= window_ / 2 ||
              sample_rolled_back_ > sample_executed_)) {
    // Over budget *and* the window is implicated: the sample speculated
    // into the window region, or a cascade undid more than this sample
    // even executed (the destroyed work was speculated before the sample
    // began, so its lead is simply not recorded here).  Rollbacks at
    // small leads with frac <= 1 are straggler jitter no reachable
    // window can prevent — shrinking for those only starves the node;
    // hold instead.  (window_/2, not lead*2: the product overflows for
    // leads near kEndOfTime.)
    if (window_ == kEndOfTime) {
      // First clamp of an open window: anchor at the deepest speculation
      // horizon actually observed, not at a constant — the budget check
      // keeps cutting from there if the storm persists.
      const SimTime anchor = std::max(sample_max_lead_, cfg_.min_window);
      window_ = std::clamp(anchor, cfg_.min_window,
                           cfg_.max_window == kEndOfTime
                               ? kEndOfTime - 1
                               : cfg_.max_window);
      storm_threshold_ = window_;
    } else {
      storm_threshold_ = window_;
      window_ = shrink_window(window_, cfg_.shrink_factor, cfg_.min_window);
    }
    if (sample_max_depth_ > cfg_.deep_rollback_depth) {
      window_ = shrink_window(window_, cfg_.shrink_factor, cfg_.min_window);
    }
    ++shrinks_;
    cooldown_ = cfg_.shrink_cooldown_rounds;
    record(round, frac, -1);
  } else if (frac < cfg_.target_rollback_fraction * cfg_.grow_margin) {
    const SimTime grown = grown_window();
    const int direction = grown != window_ ? +1 : 0;
    window_ = grown;
    if (direction > 0) ++grows_; else ++holds_;
    record(round, frac, direction);
  } else {
    ++holds_;
    record(round, frac, 0);
  }
  min_window_seen_ = std::min(min_window_seen_, window_);
  sample_executed_ = 0;
  sample_rolled_back_ = 0;
  sample_max_depth_ = 0;
  sample_max_lead_ = 0;
  rounds_since_decision_ = 0;
}

void OptimismThrottle::record(std::uint64_t round, double fraction,
                              int direction) {
  if (trajectory_.size() < cfg_.max_trajectory) {
    trajectory_.push_back(ThrottleDecision{round, window_, fraction,
                                           direction});
  }
}

SimTime OptimismThrottle::grown_window() const noexcept {
  if (window_ == kEndOfTime) return kEndOfTime;
  if (window_ >= storm_threshold_) {
    // Congestion avoidance: probe past the last storm gently.
    const SimTime inc = std::max(cfg_.min_window, window_ / 8);
    return std::min(cfg_.max_window, saturating_add(window_, inc));
  }
  // Slow start up to the storm threshold, never over it in one leap.
  return scale_window(window_, cfg_.grow_factor,
                      std::min(storm_threshold_, cfg_.max_window));
}

ThrottleSummary OptimismThrottle::summary() const noexcept {
  ThrottleSummary s;
  s.mode = cfg_.mode;
  s.shrinks = shrinks_;
  s.grows = grows_;
  s.holds = holds_;
  s.min_window_seen = min_window_seen_;
  s.final_window = window_;
  return s;
}

}  // namespace pls::warped
