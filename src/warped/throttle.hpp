#pragma once
// Adaptive optimism throttling: a per-node feedback controller that sizes
// the GVT-relative execution window from observed rollback behaviour.
//
// Classic Time Warp lets every LP run arbitrarily far ahead of GVT; on the
// paper's workloads that optimism is paid back as rollbacks — the
// unlimited-optimism configs waste roughly half their executed events as
// undone work on one core.  A fixed window (KernelConfig::optimism_window)
// caps the damage but its right value depends on circuit, partition,
// node count and event grain, so a hand-picked constant is wrong almost
// everywhere.  The controller here makes the window self-tuning, with a
// control law shaped like TCP congestion control:
//
//  * each GVT round, a node accumulates a sample: events executed, events
//    un-done, the deepest single rollback, and the deepest virtual-time
//    lead (batch time minus GVT) it speculated to;
//  * SHRINK (multiplicative, default ×0.5; doubled for a deep storm) when
//    the sample's rolled-back/executed fraction exceeds the budget
//    (default 20%) *and* the sample actually speculated into the window
//    region (lead ≥ window/2).  Rollbacks at small leads are straggler
//    jitter no reachable window prevents — shrinking for those only
//    starves the node, so the controller holds instead.  The pre-shrink
//    window is remembered as the storm threshold, and a short cooldown
//    discards the sample right after (it reflects the old window).
//  * GROW multiplicatively below the storm threshold ("slow start"), and
//    additively (+window/8) at or above it — probing back into the region
//    that last stormed instead of leaping over it.  A thin sample (too
//    few events to judge) forces growth on a period: a node starved by
//    its own window can never fill a sample, and that is exactly the
//    state the controller must be able to leave.
//  * the window never leaves [min_window, max_window]; an open window's
//    first clamp anchors at the observed speculation lead, not a constant.
//
// Progress is always safe: GVT is the minimum over *pending* work, so even
// the smallest window admits the globally earliest event once a round
// completes — throttling can slow a node down, never wedge it.  The
// kernel additionally starts a GVT round early whenever a node reports
// being window-blocked, so a tight window costs round latency in the
// 100 µs range rather than a full GVT interval.
//
// Threading: one OptimismThrottle per node, touched only by that node's
// thread; the kernel snapshots trajectories after the run.

#include <cstdint>
#include <string>
#include <vector>

#include "warped/types.hpp"

namespace pls::warped {

enum class ThrottleMode : std::uint8_t {
  kUnlimited,  ///< classic Time Warp: no window at all
  kFixed,      ///< static window = KernelConfig::optimism_window
  kAdaptive,   ///< feedback-controlled window (the default)
};

const char* to_string(ThrottleMode m) noexcept;
/// Parses "unlimited" | "fixed" | "adaptive"; returns false on anything else.
bool parse_throttle_mode(const std::string& s, ThrottleMode* out) noexcept;

struct ThrottleConfig {
  ThrottleMode mode = ThrottleMode::kAdaptive;

  /// Rollback budget: shrink while events_rolled_back / events_processed
  /// (per decision sample) exceeds this.
  double target_rollback_fraction = 0.20;
  /// Grow when the observed fraction is below target * grow_margin
  /// (between the two thresholds the window holds — hysteresis).
  double grow_margin = 0.5;

  double shrink_factor = 0.5;
  /// Growth below the last storm threshold is multiplicative (this
  /// factor); at or above it the window grows additively by 1/8 of itself
  /// per decision (TCP-style congestion avoidance), so the controller
  /// probes back into the region that previously stormed instead of
  /// leaping over it and re-triggering the storm.
  double grow_factor = 2.0;
  /// A rollback that undoes more than this many events in one go counts as
  /// a deep storm: the shrink is applied twice.
  std::uint64_t deep_rollback_depth = 64;

  SimTime min_window = 8;
  SimTime max_window = kEndOfTime;  ///< kEndOfTime = may fully re-open

  /// Do not decide on fewer observed events than this (noise floor); the
  /// sample keeps accumulating across rounds until it is large enough.
  std::uint64_t min_sample_events = 32;

  /// Force a decision at least every this many GVT rounds even on a thin
  /// sample.  A node starved *by its own too-small window* executes few
  /// events, so waiting for a full sample would block exactly the growth
  /// decision that un-starves it; a thin sample always reads as "grow".
  std::uint64_t max_rounds_per_decision = 2;

  /// Rounds to sit out after a shrink before sampling resumes.  The
  /// events rolled back right after a shrink were speculated under the
  /// *old* window, so deciding on them would double-penalize; the tainted
  /// sample is discarded when the cooldown expires.
  std::uint64_t shrink_cooldown_rounds = 2;

  /// Cap on recorded trajectory entries per node (decisions beyond the cap
  /// still happen, they are just not recorded).
  std::size_t max_trajectory = 4096;
};

/// One controller decision, recorded for RunStats.
struct ThrottleDecision {
  std::uint64_t round = 0;        ///< GVT round at which it was taken
  SimTime window = kEndOfTime;    ///< window *after* the decision
  double rollback_fraction = 0;   ///< observed over the decision sample
  int direction = 0;              ///< -1 shrink, 0 hold, +1 grow
};

struct ThrottleSummary {
  ThrottleMode mode = ThrottleMode::kAdaptive;
  std::uint64_t shrinks = 0;
  std::uint64_t grows = 0;
  std::uint64_t holds = 0;
  SimTime min_window_seen = kEndOfTime;
  SimTime final_window = kEndOfTime;
};

class OptimismThrottle {
 public:
  OptimismThrottle() : OptimismThrottle(ThrottleConfig{}, 0) {}

  /// `base_window` is the fixed window in kFixed mode and the initial
  /// window in kAdaptive mode; 0 means "start fully open" (and, in kFixed
  /// mode, behaves exactly like kUnlimited, matching the historical
  /// optimism_window == 0 convention).
  OptimismThrottle(ThrottleConfig cfg, SimTime base_window);

  /// Current window; kEndOfTime = unbounded optimism.
  SimTime window() const noexcept { return window_; }

  /// Record `events` executed in one batch whose time ran `lead` virtual
  /// time units ahead of the GVT the scheduler saw.
  void note_executed(std::uint64_t events, SimTime lead) noexcept;

  /// Record one rollback that un-did `events_undone` events.
  void note_rollback(std::uint64_t events_undone) noexcept;

  /// Feed the controller once per completed GVT round; in adaptive mode
  /// this is where the window moves.
  void on_round(std::uint64_t round);

  const std::vector<ThrottleDecision>& trajectory() const noexcept {
    return trajectory_;
  }
  ThrottleSummary summary() const noexcept;

 private:
  void decide(std::uint64_t round, bool full_sample);
  void record(std::uint64_t round, double fraction, int direction);
  /// Next window if this decision grows (slow start below the last storm
  /// threshold, additive probing at or above it).
  SimTime grown_window() const noexcept;

  ThrottleConfig cfg_;
  SimTime window_ = kEndOfTime;

  // Decision sample, reset after every decision.
  std::uint64_t sample_executed_ = 0;
  std::uint64_t sample_rolled_back_ = 0;
  std::uint64_t sample_max_depth_ = 0;
  SimTime sample_max_lead_ = 0;  ///< deepest speculation in the sample
  std::uint64_t rounds_since_decision_ = 0;
  std::uint64_t cooldown_ = 0;   ///< rounds left to sit out after a shrink
  /// Window at which the last storm was observed; growth turns additive
  /// here (kEndOfTime until the first shrink).
  SimTime storm_threshold_ = kEndOfTime;

  std::uint64_t shrinks_ = 0;
  std::uint64_t grows_ = 0;
  std::uint64_t holds_ = 0;
  SimTime min_window_seen_ = kEndOfTime;

  std::vector<ThrottleDecision> trajectory_;
};

}  // namespace pls::warped
