#pragma once
// Core Time Warp types: virtual time, logical process ids, events and LP
// state snapshots.
//
// This module reimplements the role of the WARPED kernel [18] the paper
// evaluated on: an optimistic parallel discrete-event simulator using the
// Time Warp mechanism (Jefferson [10]) with logical processes grouped into
// per-node clusters.

#include <array>
#include <cstdint>
#include <tuple>
#include <vector>

namespace pls::warped {

using SimTime = std::uint64_t;
inline constexpr SimTime kEndOfTime = ~SimTime{0};

/// Saturating virtual-time addition: clamps to kEndOfTime instead of
/// wrapping.  Window arithmetic (GVT + optimism window) must use this — a
/// wrapped sum collapses the execution window to a tiny value exactly when
/// GVT approaches end-of-time, blocking the final drain under throttling.
constexpr SimTime saturating_add(SimTime a, SimTime b) noexcept {
  return a > kEndOfTime - b ? kEndOfTime : a + b;
}

using LpId = std::uint32_t;
inline constexpr LpId kInvalidLp = ~LpId{0};

/// Special port number for self-scheduled "tick" events (clock edges,
/// stimulus vectors, power-on evaluation).
inline constexpr std::uint32_t kTickPort = ~std::uint32_t{0};

enum class Sign : std::uint8_t { kPositive, kNegative };

/// A Time Warp message.  A negative event (anti-message) is the exact twin
/// of the positive event it cancels: same sender, same id.
///
/// Batched stimulus (64-wide bit-parallel evaluation): `value` carries one
/// signal bit per lane and `mask` flags the lanes whose value actually
/// changed — a receiver applies `value` only under `mask`, so one event
/// serves up to 64 correlated scenarios.  Senders emit an event only when
/// the mask is non-zero.  The kernel itself never interprets either word:
/// an anti-message cancels the whole event (all lanes at once), state
/// saving snapshots full words, and rollback/annihilation match on
/// (sender, id) exactly as in the scalar model.  Scalar LPs use value bit 0
/// and the default mask = 1, so a single-bit transition still weighs one
/// lane-transition in the committed-send accounting.
struct Event {
  SimTime recv_time = 0;
  SimTime send_time = 0;
  LpId target = kInvalidLp;
  LpId sender = kInvalidLp;
  std::uint32_t port = 0;     ///< receiver input port (kTickPort = tick)
  std::uint64_t value = 0;    ///< payload word (one signal bit per lane)
  std::uint64_t mask = 1;     ///< lanes whose value changed (scalar: bit 0)
  Sign sign = Sign::kPositive;
  std::uint64_t id = 0;       ///< unique per sender; survives rollbacks

  /// Queue ordering: receive time first, then a deterministic tie-break so
  /// queue layout is identical across runs and node counts.
  friend bool operator<(const Event& a, const Event& b) noexcept {
    return std::tie(a.recv_time, a.sender, a.port, a.id) <
           std::tie(b.recv_time, b.sender, b.port, b.id);
  }
  /// Anti-message matching identity.
  bool matches(const Event& other) const noexcept {
    return sender == other.sender && id == other.id;
  }
};

/// LP state: two fixed words plus an optional wide extension.  Scalar gate
/// LPs pack input bits into `a` and the output value into `b` and leave `w`
/// empty, so copy state saving stays a 16-byte copy (plus an empty-vector
/// copy that never allocates) — the classic Time Warp copy-state discipline
/// at negligible cost.  Batched (64-wide) gate LPs need one full value word
/// per fanin, which cannot fit the packed-bit scheme; they keep those lane
/// words in `w` (w[port] = packed lane values of that fanin) and the output
/// lane word in `b`.  Snapshots and migration packages copy the whole
/// struct either way, so rollback restores full words per lane.
struct LpState {
  std::uint64_t a = 0;
  std::uint64_t b = 0;
  std::vector<std::uint64_t> w;  ///< wide per-port lane words (batched LPs)

  friend bool operator==(const LpState&, const LpState&) noexcept = default;
};

/// State snapshot taken after processing the batch at `time`.
struct Snapshot {
  SimTime time = 0;
  LpState state;
};

}  // namespace pls::warped
