#pragma once
// Core Time Warp types: virtual time, logical process ids, events and LP
// state snapshots.
//
// This module reimplements the role of the WARPED kernel [18] the paper
// evaluated on: an optimistic parallel discrete-event simulator using the
// Time Warp mechanism (Jefferson [10]) with logical processes grouped into
// per-node clusters.

#include <array>
#include <bit>
#include <cstdint>
#include <tuple>
#include <vector>

#include "mem/words.hpp"

namespace pls::warped {

using SimTime = std::uint64_t;
inline constexpr SimTime kEndOfTime = ~SimTime{0};

/// Saturating virtual-time addition: clamps to kEndOfTime instead of
/// wrapping.  Window arithmetic (GVT + optimism window) must use this — a
/// wrapped sum collapses the execution window to a tiny value exactly when
/// GVT approaches end-of-time, blocking the final drain under throttling.
constexpr SimTime saturating_add(SimTime a, SimTime b) noexcept {
  return a > kEndOfTime - b ? kEndOfTime : a + b;
}

using LpId = std::uint32_t;
inline constexpr LpId kInvalidLp = ~LpId{0};

/// Special port number for self-scheduled "tick" events (clock edges,
/// stimulus vectors, power-on evaluation).
inline constexpr std::uint32_t kTickPort = ~std::uint32_t{0};

enum class Sign : std::uint8_t { kPositive, kNegative };

/// A Time Warp message.  A negative event (anti-message) is the exact twin
/// of the positive event it cancels: same sender, same id.
///
/// Batched stimulus (bit-parallel evaluation, up to 256 lanes): the
/// payload is K words of `value` (one signal bit per lane) plus K words of
/// `mask` flagging the lanes whose value actually changed — a receiver
/// applies `value` only under `mask`, so one event serves up to 64·K
/// correlated scenarios.  Word 0 of each lives inline in `value`/`mask`;
/// words 1..K-1 ride in `xt`, a width-parameterized extension drawn from
/// the node-local arena (mem/pool.hpp), laid out as
/// [value_1..value_{K-1}, mask_1..mask_{K-1}].  K = 1 leaves `xt` empty —
/// the scalar and 64-lane paths never allocate.  Senders emit an event
/// only when some mask word is non-zero.  The kernel itself never
/// interprets the payload: an anti-message cancels the whole event (all
/// lanes at once), state saving snapshots full words, and
/// rollback/annihilation match on (sender, id) exactly as in the scalar
/// model.  Scalar LPs use value bit 0 and the default mask = 1, so a
/// single-bit transition still weighs one lane-transition in the
/// committed-send accounting.
struct Event {
  SimTime recv_time = 0;
  SimTime send_time = 0;
  LpId target = kInvalidLp;
  LpId sender = kInvalidLp;
  std::uint32_t port = 0;     ///< receiver input port (kTickPort = tick)
  Sign sign = Sign::kPositive;
  std::uint64_t value = 0;    ///< payload word 0 (one signal bit per lane)
  std::uint64_t mask = 1;     ///< changed lanes, word 0 (scalar: bit 0)
  std::uint64_t id = 0;       ///< unique per sender; survives rollbacks
  mem::Words xt;              ///< words 1..K-1 of value, then of mask

  /// Payload width K in 64-lane words (>= 1).
  std::uint32_t payload_words() const noexcept { return 1 + xt.size() / 2; }
  /// Grow the payload to K words (new words zero); K = 1 is a no-op.
  void widen(std::uint32_t k) {
    if (k > 1) xt.assign(2 * (k - 1), 0);
  }
  std::uint64_t value_word(std::uint32_t w) const noexcept {
    return w == 0 ? value : xt[w - 1];
  }
  std::uint64_t mask_word(std::uint32_t w) const noexcept {
    return w == 0 ? mask : xt[xt.size() / 2 + (w - 1)];
  }
  void set_value_word(std::uint32_t w, std::uint64_t v) noexcept {
    if (w == 0) value = v; else xt[w - 1] = v;
  }
  void set_mask_word(std::uint32_t w, std::uint64_t v) noexcept {
    if (w == 0) mask = v; else xt[xt.size() / 2 + (w - 1)] = v;
  }
  /// True if any lane changed (events with an all-zero mask are not sent).
  bool mask_any() const noexcept {
    if (mask != 0) return true;
    const std::uint32_t half = xt.size() / 2;
    for (std::uint32_t w = half; w < xt.size(); ++w) {
      if (xt[w] != 0) return true;
    }
    return false;
  }
  /// Lane transitions this event carries: popcount over all mask words.
  std::uint64_t mask_popcount() const noexcept {
    std::uint64_t n = static_cast<std::uint64_t>(std::popcount(mask));
    const std::uint32_t half = xt.size() / 2;
    for (std::uint32_t w = half; w < xt.size(); ++w) {
      n += static_cast<std::uint64_t>(std::popcount(xt[w]));
    }
    return n;
  }

  /// Queue ordering: receive time first, then a deterministic tie-break so
  /// queue layout is identical across runs and node counts.
  friend bool operator<(const Event& a, const Event& b) noexcept {
    return std::tie(a.recv_time, a.sender, a.port, a.id) <
           std::tie(b.recv_time, b.sender, b.port, b.id);
  }
  /// Anti-message matching identity.
  bool matches(const Event& other) const noexcept {
    return sender == other.sender && id == other.id;
  }
};

/// LP state: two fixed words plus an optional wide extension.  Scalar gate
/// LPs pack input bits into `a` and the output value into `b` and leave `w`
/// empty, so copy state saving stays a trivial 32-byte copy — the classic
/// Time Warp copy-state discipline at negligible cost.  Batched gate LPs
/// need one full value word per (fanin, lane word), which cannot fit the
/// packed-bit scheme; they keep those lane words in `w` (see
/// src/logicsim/netlist_lps.hpp for the per-behaviour layouts) with the
/// word-0 output lane word in `b`.  `w` is arena-pooled (mem/words.hpp):
/// snapshot copies recycle fixed-size blocks from the node-local pool
/// instead of hitting the heap, and fossil collection reclaims whole runs
/// of them per sweep.  Snapshots and migration packages copy the whole
/// struct either way, so rollback restores full words per lane.
struct LpState {
  std::uint64_t a = 0;
  std::uint64_t b = 0;
  mem::Words w;  ///< wide lane words (batched LPs), arena-pooled

  friend bool operator==(const LpState&, const LpState&) noexcept = default;
};

/// State snapshot taken after processing the batch at `time`.
struct Snapshot {
  SimTime time = 0;
  LpState state;
};

}  // namespace pls::warped
