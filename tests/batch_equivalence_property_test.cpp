// Lane-equivalence property harness for the bit-parallel batched stimulus
// engine — the correctness contract of src/logicsim/lanes.hpp:
//
//   lane j of a batched run with base seed S is bit-identical to an
//   independent scalar (lanes = 1) run with seed lane_seed(S, j).
//
// Swept over random generated circuits × seeds × lane counts, on both
// backends: the batched Time Warp run must commit exactly the batched
// sequential run's results (the classic equivalence check — same model,
// both backends), and every lane of either must project onto the final
// states of its own scalar reference run.  Dedicated cases drive the
// engine through a forced rollback storm (unlimited optimism, high
// latency, maximal cut) and through live repartitioning with LP migration,
// because masked events must survive cancellation and re-execution
// per-lane exactly.  Fault simulation (uniform stimulus + stuck-at lanes)
// rides the same contract: lane 0 stays bit-identical to the fault-free
// scalar run.

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <string>

#include "circuit/generator.hpp"
#include "framework/driver.hpp"
#include "logicsim/equivalence.hpp"
#include "logicsim/lanes.hpp"

namespace pls {
namespace {

circuit::Circuit random_circuit(std::uint64_t seed) {
  circuit::GeneratorSpec spec;
  spec.name = "batch_prop_" + std::to_string(seed);
  spec.num_comb_gates = 220;
  spec.num_inputs = 12;
  spec.num_outputs = 6;
  spec.num_dffs = 16;
  spec.seed = seed;
  return circuit::generate(spec);
}

framework::DriverConfig fast_config() {
  framework::DriverConfig cfg;
  cfg.end_time = 400;
  cfg.seed = 77;
  cfg.event_cost_ns = 0;
  cfg.send_overhead_ns = 0;
  cfg.latency_ns = 5000;
  cfg.gvt_interval_us = 500;
  return cfg;
}

/// Scalar sequential reference for one lane of a batched run.
logicsim::SeqStats scalar_reference(const circuit::Circuit& c,
                                    const framework::DriverConfig& batched,
                                    unsigned lane) {
  framework::DriverConfig scalar = batched;
  scalar.lanes = 1;
  scalar.model.faults.clear();
  scalar.model.uniform_stimulus = false;
  scalar.seed = logicsim::lane_seed(batched.seed, lane);
  return framework::run_sequential(c, scalar);
}

/// Check the given lanes of batched final states against their scalar
/// references; returns the total scalar transition count of those lanes.
std::uint64_t expect_lanes_equal(
    const circuit::Circuit& c, const framework::DriverConfig& cfg,
    const std::vector<warped::LpState>& batched_finals, const char* what,
    const std::vector<unsigned>& lanes_to_check) {
  std::uint64_t scalar_transitions = 0;
  for (unsigned lane : lanes_to_check) {
    const auto ref = scalar_reference(c, cfg, lane);
    const auto rep = logicsim::check_lane_equivalence(
        c, batched_finals, lane, cfg.lanes, ref.final_states);
    EXPECT_TRUE(rep.ok()) << what << ": lane " << lane << " diverged from "
                          << "scalar seed "
                          << logicsim::lane_seed(cfg.seed, lane) << ": "
                          << rep.describe();
    scalar_transitions += std::accumulate(ref.per_lp_sends.begin(),
                                          ref.per_lp_sends.end(),
                                          std::uint64_t{0});
  }
  return scalar_transitions;
}

/// Check every lane of batched final states against its scalar reference.
std::uint64_t expect_all_lanes_equal(
    const circuit::Circuit& c, const framework::DriverConfig& cfg,
    const std::vector<warped::LpState>& batched_finals, const char* what) {
  std::vector<unsigned> all(cfg.lanes);
  std::iota(all.begin(), all.end(), 0u);
  return expect_lanes_equal(c, cfg, batched_finals, what, all);
}

/// Word-boundary lane sample for multi-word (lanes > 64) runs: the first
/// and last lane of every value word, plus their neighbours across each
/// boundary.  Full sweeps stay on the <= 64-lane rows where the scalar
/// reference runs are cheap; these lanes are where a word-indexing bug
/// would land (wrong word, off-by-one shift, inactive-lane leakage).
std::vector<unsigned> boundary_lanes(unsigned lanes) {
  std::vector<unsigned> out{0, 1, lanes - 1};
  for (unsigned b = 64; b < lanes; b += 64) {
    out.push_back(b - 1);
    out.push_back(b);
    if (b + 1 < lanes) out.push_back(b + 1);
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

struct BatchParam {
  std::uint64_t circuit_seed;
  std::uint32_t lanes;
  const char* partitioner;
  std::uint32_t nodes;
  std::uint32_t state_period;
};

class BatchEquivalenceSweep : public ::testing::TestWithParam<BatchParam> {};

TEST_P(BatchEquivalenceSweep, EveryLaneMatchesItsScalarRun) {
  const auto [cseed, lanes, partitioner, nodes, period] = GetParam();
  const circuit::Circuit c = random_circuit(cseed);

  framework::DriverConfig cfg = fast_config();
  cfg.lanes = lanes;
  cfg.partitioner = partitioner;
  cfg.num_nodes = nodes;
  cfg.state_period = period;

  // Backend equivalence of the batched model itself: the optimistic run
  // commits exactly the batched sequential results (full-word states).
  const auto par = framework::run_parallel(c, cfg);
  const auto seq = framework::run_sequential(c, cfg);
  const auto rep = logicsim::check_equivalence(par.run, seq);
  ASSERT_TRUE(rep.ok()) << rep.describe();

  // Per-lane contract on both backends.  The sequential sweep covers
  // every lane (its per-lane totals also feed the accounting check); the
  // Time Warp side spot-checks word-boundary lanes on multi-word runs —
  // check_equivalence above already proved its full-word states equal the
  // sequential ones bit for bit.
  const std::uint64_t scalar_transitions =
      expect_all_lanes_equal(c, cfg, seq.final_states, "sequential");
  if (lanes > 64) {
    expect_lanes_equal(c, cfg, par.run.final_states, "time-warp",
                       boundary_lanes(lanes));
  } else {
    expect_all_lanes_equal(c, cfg, par.run.final_states, "time-warp");
  }

  // Transition accounting: a batched event carries popcount(mask) lane
  // transitions, so the batched run's committed transition total equals
  // the sum of its lanes' scalar totals exactly.
  const std::uint64_t batched_transitions = std::accumulate(
      seq.per_lp_sends.begin(), seq.per_lp_sends.end(), std::uint64_t{0});
  EXPECT_EQ(batched_transitions, scalar_transitions);
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, BatchEquivalenceSweep,
    ::testing::Values(BatchParam{101, 64, "Multilevel", 4, 1},
                      BatchParam{202, 7, "Random", 3, 1},
                      BatchParam{202, 7, "Random", 3, 4},
                      BatchParam{303, 2, "DFS", 2, 1},
                      BatchParam{303, 33, "MultilevelHG", 2, 1},
                      BatchParam{404, 128, "Multilevel", 4, 1},
                      BatchParam{505, 192, "Random", 3, 2}),
    [](const auto& info) {
      return "c" + std::to_string(info.param.circuit_seed) + "_l" +
             std::to_string(info.param.lanes) + "_" +
             info.param.partitioner + "_n" +
             std::to_string(info.param.nodes) + "_sp" +
             std::to_string(info.param.state_period);
    });

TEST(BatchEquivalenceExtras, RollbackStormPreservesEveryLane) {
  // Unlimited optimism + high latency + maximal cut: every cross-node
  // signal is a straggler factory, so masked events are cancelled by
  // whole-word anti-messages and re-executed en masse.
  const circuit::Circuit c = random_circuit(404);
  framework::DriverConfig cfg = fast_config();
  cfg.lanes = 64;
  cfg.partitioner = "Random";
  cfg.num_nodes = 4;
  cfg.latency_ns = 50000;
  cfg.throttle.mode = warped::ThrottleMode::kUnlimited;
  cfg.end_time = 300;

  const auto par = framework::run_parallel(c, cfg);
  const auto seq = framework::run_sequential(c, cfg);
  ASSERT_TRUE(logicsim::check_equivalence(par.run, seq).ok());
  EXPECT_GT(par.run.totals.total_rollbacks(), 0u);
  EXPECT_GT(par.run.totals.anti_messages_sent, 0u);
  expect_all_lanes_equal(c, cfg, par.run.final_states, "storm");
}

TEST(BatchEquivalenceExtras, RollbackStormPreserves128WideLanes) {
  // The same straggler factory over a two-word payload: cancellations and
  // re-executions must restore pooled event extensions and wide state
  // snapshots exactly, in every word.
  const circuit::Circuit c = random_circuit(404);
  framework::DriverConfig cfg = fast_config();
  cfg.lanes = 128;
  cfg.partitioner = "Random";
  cfg.num_nodes = 4;
  cfg.latency_ns = 50000;
  cfg.throttle.mode = warped::ThrottleMode::kUnlimited;
  cfg.end_time = 300;

  const auto par = framework::run_parallel(c, cfg);
  const auto seq = framework::run_sequential(c, cfg);
  ASSERT_TRUE(logicsim::check_equivalence(par.run, seq).ok());
  EXPECT_GT(par.run.totals.total_rollbacks(), 0u);
  expect_lanes_equal(c, cfg, par.run.final_states, "storm128",
                     boundary_lanes(cfg.lanes));
}

TEST(BatchEquivalenceExtras, LiveRepartitionPreservesEveryLane) {
  // Dynamic repartitioning at GVT epochs: migrated LPs carry full lane
  // words in their packages, and migration rollbacks cancel whole events.
  const circuit::Circuit c = random_circuit(505);
  framework::DriverConfig cfg = fast_config();
  cfg.lanes = 64;
  cfg.partitioner = "Multilevel";
  cfg.num_nodes = 4;
  cfg.repartition_interval = 2;
  cfg.repartition_min_gain = 0.0;
  cfg.repartition_churn_cost = 0.0;
  cfg.model.stim_drift_at = 150;  // shift the hot region mid-run

  const auto par = framework::run_parallel(c, cfg);
  const auto seq = framework::run_sequential(c, cfg);
  ASSERT_TRUE(logicsim::check_equivalence(par.run, seq).ok());
  expect_all_lanes_equal(c, cfg, par.run.final_states, "repartition");
}

TEST(BatchEquivalenceExtras, LiveRepartitionPreserves128WideLanes) {
  // Live migration with two-word payloads: migration packages serialize
  // pooled event extensions and wide states across node-local arenas.
  const circuit::Circuit c = random_circuit(505);
  framework::DriverConfig cfg = fast_config();
  cfg.lanes = 128;
  cfg.partitioner = "Multilevel";
  cfg.num_nodes = 4;
  cfg.repartition_interval = 2;
  cfg.repartition_min_gain = 0.0;
  cfg.repartition_churn_cost = 0.0;
  cfg.model.stim_drift_at = 150;  // shift the hot region mid-run

  const auto par = framework::run_parallel(c, cfg);
  const auto seq = framework::run_sequential(c, cfg);
  ASSERT_TRUE(logicsim::check_equivalence(par.run, seq).ok());
  expect_lanes_equal(c, cfg, par.run.final_states, "repartition128",
                     boundary_lanes(cfg.lanes));
}

TEST(BatchEquivalenceExtras, FaultSimulationKeepsLane0FaultFree) {
  const circuit::Circuit c = random_circuit(606);
  framework::DriverConfig cfg = fast_config();
  cfg.lanes = 64;
  cfg.partitioner = "Multilevel";
  cfg.num_nodes = 2;
  cfg.model.uniform_stimulus = true;
  cfg.model.faults = logicsim::sample_faults(c, 63, /*seed=*/9);
  ASSERT_EQ(cfg.model.faults.size(), 63u);

  const auto par = framework::run_parallel(c, cfg);
  const auto seq = framework::run_sequential(c, cfg);
  ASSERT_TRUE(logicsim::check_equivalence(par.run, seq).ok());

  // Lane 0 is the fault-free reference: bit-identical to the scalar run
  // with the base seed even with 63 faulty lanes alongside.
  const auto ref = scalar_reference(c, cfg, 0);
  EXPECT_TRUE(logicsim::check_lane_equivalence(c, par.run.final_states, 0,
                                               cfg.lanes, ref.final_states)
                  .ok());

  // Detection readout agrees across backends and finds at least one
  // fault (63 faults over a 250-gate circuit with 400 time units of
  // stimulus; total silence would mean the accumulators are broken).
  const auto det_par = logicsim::detected_faults(c, cfg.model.faults,
                                                 par.run.final_states,
                                                 cfg.lanes);
  const auto det_seq = logicsim::detected_faults(c, cfg.model.faults,
                                                 seq.final_states, cfg.lanes);
  EXPECT_EQ(det_par, det_seq);
  EXPECT_NE(std::count(det_par.begin(), det_par.end(), true), 0);
}

TEST(BatchEquivalenceExtras, WideFaultSimulationDetectsAcrossWords) {
  // 127 faults in one 128-lane pass: fault lanes 65..127 live in value
  // word 1, so detection must read divergence accumulators beyond the
  // legacy single-word slots.
  const circuit::Circuit c = random_circuit(606);
  framework::DriverConfig cfg = fast_config();
  cfg.lanes = 128;
  cfg.partitioner = "Multilevel";
  cfg.num_nodes = 2;
  cfg.model.uniform_stimulus = true;
  cfg.model.faults = logicsim::sample_faults(c, 127, /*seed=*/9);
  ASSERT_EQ(cfg.model.faults.size(), 127u);

  const auto par = framework::run_parallel(c, cfg);
  const auto seq = framework::run_sequential(c, cfg);
  ASSERT_TRUE(logicsim::check_equivalence(par.run, seq).ok());

  const auto ref = scalar_reference(c, cfg, 0);
  EXPECT_TRUE(logicsim::check_lane_equivalence(c, par.run.final_states, 0,
                                               cfg.lanes, ref.final_states)
                  .ok());

  const auto det_par = logicsim::detected_faults(c, cfg.model.faults,
                                                 par.run.final_states,
                                                 cfg.lanes);
  const auto det_seq = logicsim::detected_faults(c, cfg.model.faults,
                                                 seq.final_states, cfg.lanes);
  EXPECT_EQ(det_par, det_seq);
  EXPECT_NE(std::count(det_par.begin(), det_par.end(), true), 0);
  // The first 63 faults are the same sites as the 64-lane test; the upper
  // word must contribute detections of its own for word-1 readout to be
  // exercised (faults 64.. live at bits 65..127).
  const auto detected_in_upper_word =
      std::count(det_par.begin() + 64, det_par.end(), true);
  EXPECT_NE(detected_in_upper_word, 0);
}

TEST(BatchEquivalenceExtras, SingleLaneBatchedRunMatchesScalarEngine) {
  // lanes = 1 must elaborate the classic scalar behaviours — the batched
  // engine's existence is invisible to single-lane users.
  const circuit::Circuit c = random_circuit(707);
  framework::DriverConfig cfg = fast_config();
  cfg.lanes = 1;
  const auto seq1 = framework::run_sequential(c, cfg);

  framework::DriverConfig wide = cfg;
  wide.lanes = 2;
  const auto seq2 = framework::run_sequential(c, wide);
  const auto rep =
      logicsim::check_lane_equivalence(c, seq2.final_states, 0, wide.lanes,
                                       seq1.final_states);
  EXPECT_TRUE(rep.ok()) << rep.describe();
}

}  // namespace
}  // namespace pls
