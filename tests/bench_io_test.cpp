// Tests for the ISCAS'89 .bench parser/writer, including a from-memory copy
// of the real s27 benchmark and a parse→write→parse round-trip property.

#include <gtest/gtest.h>

#include "circuit/bench_io.hpp"
#include "circuit/generator.hpp"

namespace pls::circuit {
namespace {

// The ISCAS'89 s27 benchmark: 4 inputs, 1 output, 3 flip-flops, 10 gates.
constexpr const char* kS27 = R"(# s27 benchmark
INPUT(G0)
INPUT(G1)
INPUT(G2)
INPUT(G3)
OUTPUT(G17)

G5 = DFF(G10)
G6 = DFF(G11)
G7 = DFF(G13)
G14 = NOT(G0)
G17 = NOT(G11)
G8 = AND(G14, G6)
G15 = OR(G12, G8)
G16 = OR(G3, G8)
G9 = NAND(G16, G15)
G10 = NOR(G14, G11)
G11 = NOR(G5, G9)
G12 = NOR(G1, G7)
G13 = NAND(G2, G12)
)";

TEST(BenchParser, ParsesS27) {
  const Circuit c = parse_bench_string(kS27, "s27");
  EXPECT_EQ(c.primary_inputs().size(), 4u);
  EXPECT_EQ(c.primary_outputs().size(), 1u);
  EXPECT_EQ(c.flip_flops().size(), 3u);
  EXPECT_EQ(c.num_combinational(), 10u);
  EXPECT_TRUE(c.is_output(c.find("G17")));
  // Spot-check connectivity: G8 = AND(G14, G6).
  const GateId g8 = c.find("G8");
  ASSERT_NE(g8, kInvalidGate);
  EXPECT_EQ(c.type(g8), GateType::kAnd);
  ASSERT_EQ(c.fanins(g8).size(), 2u);
  EXPECT_EQ(c.fanins(g8)[0], c.find("G14"));
  EXPECT_EQ(c.fanins(g8)[1], c.find("G6"));
}

TEST(BenchParser, ForwardReferencesWork) {
  // G10 references G11 which is defined later — legal.
  const Circuit c = parse_bench_string(kS27);
  EXPECT_NE(c.find("G10"), kInvalidGate);
}

TEST(BenchParser, CaseInsensitiveKeywordsAndAliases) {
  const Circuit c = parse_bench_string(
      "input(a)\ninput(b)\noutput(y)\n"
      "n = inv(a)\nbb = buff(b)\nf = ff(n)\ny = nand(n, bb, f)\n");
  EXPECT_EQ(c.type(c.find("n")), GateType::kNot);
  EXPECT_EQ(c.type(c.find("bb")), GateType::kBuf);
  EXPECT_EQ(c.type(c.find("f")), GateType::kDff);
  EXPECT_EQ(c.fanins(c.find("y")).size(), 3u);
}

TEST(BenchParser, CommentsAndBlankLinesIgnored) {
  const Circuit c = parse_bench_string(
      "# header\n\nINPUT(a)  # trailing comment\n\n  \nOUTPUT(g)\n"
      "g = NOT(a)\n");
  EXPECT_EQ(c.size(), 2u);
}

TEST(BenchParser, CrlfLineEndingsParse) {
  // ISCAS archives ship DOS-format files; every '\n' becomes "\r\n" and
  // the stray '\r' must not end up inside signal names or keywords.
  std::string crlf(kS27);
  std::string::size_type pos = 0;
  while ((pos = crlf.find('\n', pos)) != std::string::npos) {
    crlf.replace(pos, 1, "\r\n");
    pos += 2;
  }
  const Circuit c = parse_bench_string(crlf, "s27crlf");
  EXPECT_EQ(c.primary_inputs().size(), 4u);
  EXPECT_EQ(c.num_combinational(), 10u);
  EXPECT_NE(c.find("G17"), kInvalidGate);  // no "G17\r" ghost signal
}

TEST(BenchParser, UndefinedSignalFails) {
  EXPECT_THROW(parse_bench_string("INPUT(a)\ng = AND(a, ghost)\n"),
               BenchParseError);
}

TEST(BenchParser, UndefinedOutputFails) {
  EXPECT_THROW(parse_bench_string("INPUT(a)\nOUTPUT(ghost)\n"),
               BenchParseError);
}

TEST(BenchParser, DuplicateDefinitionFails) {
  EXPECT_THROW(
      parse_bench_string("INPUT(a)\ng = NOT(a)\ng = BUF(a)\n"),
      BenchParseError);
  EXPECT_THROW(parse_bench_string("INPUT(a)\nINPUT(a)\n"), BenchParseError);
}

TEST(BenchParser, UnknownGateTypeFails) {
  EXPECT_THROW(parse_bench_string("INPUT(a)\ng = FROB(a)\n"),
               BenchParseError);
}

TEST(BenchParser, MalformedLineFails) {
  EXPECT_THROW(parse_bench_string("INPUT a\n"), BenchParseError);
  EXPECT_THROW(parse_bench_string("g = AND(a\n"), BenchParseError);
  EXPECT_THROW(parse_bench_string("g = (a)\n"), BenchParseError);
  EXPECT_THROW(parse_bench_string("WIBBLE(a)\n"), BenchParseError);
}

TEST(BenchParser, EmptyFaninFails) {
  EXPECT_THROW(parse_bench_string("INPUT(a)\ng = AND(a, )\n"),
               BenchParseError);
  EXPECT_THROW(parse_bench_string("INPUT(a)\ng = AND()\n"), BenchParseError);
}

TEST(BenchParser, CombinationalCycleFails) {
  EXPECT_THROW(parse_bench_string(
                   "INPUT(a)\nx = AND(a, y)\ny = AND(a, x)\n"),
               BenchParseError);
}

TEST(BenchParser, ErrorCarriesLineNumber) {
  try {
    parse_bench_string("INPUT(a)\n\ng = FROB(a)\n");
    FAIL() << "expected BenchParseError";
  } catch (const BenchParseError& e) {
    EXPECT_EQ(e.line(), 3);
  }
}

TEST(BenchParser, UnknownGateTypeErrorNamesLineAndGate) {
  try {
    parse_bench_string("INPUT(a)\ng = NOT(a)\nbad = FROB(g)\n");
    FAIL() << "expected BenchParseError";
  } catch (const BenchParseError& e) {
    EXPECT_EQ(e.line(), 3);
    EXPECT_NE(std::string(e.what()).find("line 3"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("FROB"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("'bad'"), std::string::npos);
  }
}

TEST(BenchWriter, RoundTripPreservesStructure) {
  const Circuit orig = parse_bench_string(kS27, "s27");
  const std::string text = write_bench_string(orig);
  const Circuit back = parse_bench_string(text, "s27rt");

  ASSERT_EQ(back.size(), orig.size());
  EXPECT_EQ(back.primary_inputs().size(), orig.primary_inputs().size());
  EXPECT_EQ(back.primary_outputs().size(), orig.primary_outputs().size());
  EXPECT_EQ(back.flip_flops().size(), orig.flip_flops().size());
  for (GateId g = 0; g < orig.size(); ++g) {
    const GateId h = back.find(orig.gate_name(g));
    ASSERT_NE(h, kInvalidGate) << orig.gate_name(g);
    EXPECT_EQ(back.type(h), orig.type(g));
    EXPECT_EQ(back.is_output(h), orig.is_output(g));
    const auto of = orig.fanins(g);
    const auto bf = back.fanins(h);
    ASSERT_EQ(bf.size(), of.size());
    for (std::size_t i = 0; i < of.size(); ++i) {
      EXPECT_EQ(back.gate_name(bf[i]), orig.gate_name(of[i]));
    }
  }
}

TEST(BenchWriter, RoundTripOnGeneratedCircuit) {
  GeneratorSpec spec;
  spec.num_comb_gates = 300;
  spec.num_inputs = 12;
  spec.num_outputs = 6;
  spec.num_dffs = 20;
  spec.seed = 99;
  const Circuit orig = generate(spec);
  const Circuit back = parse_bench_string(write_bench_string(orig), "rt");
  EXPECT_EQ(back.size(), orig.size());
  EXPECT_EQ(back.num_edges(), orig.num_edges());
  EXPECT_EQ(back.flip_flops().size(), orig.flip_flops().size());
  EXPECT_EQ(back.primary_outputs().size(), orig.primary_outputs().size());
}

TEST(BenchFile, MissingFileThrows) {
  EXPECT_THROW(parse_bench_file("/nonexistent/die.bench"),
               std::runtime_error);
}

TEST(BenchFile, WriteAndReadBack) {
  const std::string path = "/tmp/pls_s27_test.bench";
  const Circuit orig = parse_bench_string(kS27, "s27");
  write_bench_file(path, orig);
  const Circuit back = parse_bench_file(path);
  EXPECT_EQ(back.name(), "pls_s27_test");
  EXPECT_EQ(back.size(), orig.size());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace pls::circuit
