// Unit tests for the Circuit netlist model: construction, arity and cycle
// validation, CSR fanin/fanout indices, lookup, output marking.

#include <gtest/gtest.h>

#include "circuit/circuit.hpp"
#include "util/check.hpp"

namespace pls::circuit {
namespace {

Circuit tiny_and_or() {
  // a, b, c -> g1 = AND(a,b); g2 = OR(g1,c); output g2
  Circuit c("tiny");
  const GateId a = c.add_input("a");
  const GateId b = c.add_input("b");
  const GateId x = c.add_input("c");
  const GateId g1 = c.add_gate("g1", GateType::kAnd, {a, b});
  const GateId g2 = c.add_gate("g2", GateType::kOr, {g1, x});
  c.mark_output(g2);
  c.freeze();
  return c;
}

TEST(Circuit, BasicCounts) {
  const Circuit c = tiny_and_or();
  EXPECT_EQ(c.size(), 5u);
  EXPECT_EQ(c.primary_inputs().size(), 3u);
  EXPECT_EQ(c.primary_outputs().size(), 1u);
  EXPECT_EQ(c.flip_flops().size(), 0u);
  EXPECT_EQ(c.num_combinational(), 2u);
  EXPECT_EQ(c.num_edges(), 4u);
}

TEST(Circuit, FaninsAndFanouts) {
  const Circuit c = tiny_and_or();
  const GateId g1 = c.find("g1");
  const GateId g2 = c.find("g2");
  const GateId a = c.find("a");
  ASSERT_NE(g1, kInvalidGate);
  EXPECT_EQ(c.fanins(g1).size(), 2u);
  EXPECT_EQ(c.fanins(g1)[0], a);
  ASSERT_EQ(c.fanouts(a).size(), 1u);
  EXPECT_EQ(c.fanouts(a)[0], g1);
  ASSERT_EQ(c.fanouts(g1).size(), 1u);
  EXPECT_EQ(c.fanouts(g1)[0], g2);
  EXPECT_TRUE(c.fanouts(g2).empty());
}

TEST(Circuit, FindReturnsInvalidForUnknown) {
  const Circuit c = tiny_and_or();
  EXPECT_EQ(c.find("nope"), kInvalidGate);
}

TEST(Circuit, DuplicateNameRejected) {
  Circuit c;
  c.add_input("x");
  EXPECT_THROW(c.add_input("x"), util::CheckError);
}

TEST(Circuit, InputCannotHaveFanin) {
  Circuit c;
  const GateId a = c.add_input("a");
  const GateId b = c.add_input("b");
  EXPECT_THROW(c.connect(a, b), util::CheckError);
}

TEST(Circuit, ArityValidationAtFreeze) {
  {
    Circuit c;
    const GateId a = c.add_input("a");
    c.add_gate("g", GateType::kAnd, {a});  // AND needs >= 2
    EXPECT_THROW(c.freeze(), util::CheckError);
  }
  {
    Circuit c;
    const GateId a = c.add_input("a");
    const GateId b = c.add_input("b");
    c.add_gate("g", GateType::kNot, {a, b});  // NOT needs exactly 1
    EXPECT_THROW(c.freeze(), util::CheckError);
  }
  {
    Circuit c;
    c.add_input("a");
    c.add_gate("g", GateType::kDff, {});  // DFF needs its D input
    EXPECT_THROW(c.freeze(), util::CheckError);
  }
}

TEST(Circuit, CombinationalCycleRejected) {
  Circuit c;
  const GateId a = c.add_input("a");
  const GateId g1 = c.add_gate("g1", GateType::kAnd);
  const GateId g2 = c.add_gate("g2", GateType::kOr);
  c.connect(g1, a);
  c.connect(g1, g2);
  c.connect(g2, g1);
  c.connect(g2, a);
  EXPECT_THROW(c.freeze(), util::CheckError);
}

TEST(Circuit, CycleThroughDffIsLegal) {
  // Classic sequential loop: g = AND(a, ff); ff = DFF(g).
  Circuit c;
  const GateId a = c.add_input("a");
  const GateId ff = c.add_gate("ff", GateType::kDff);
  const GateId g = c.add_gate("g", GateType::kAnd, {a, ff});
  c.connect(ff, g);
  c.mark_output(g);
  EXPECT_NO_THROW(c.freeze());
  EXPECT_EQ(c.flip_flops().size(), 1u);
}

TEST(Circuit, SelfLoopThroughDffIsLegal) {
  Circuit c;
  c.add_input("a");
  const GateId ff = c.add_gate("ff", GateType::kDff);
  c.connect(ff, ff);  // toggle-style self feedback
  EXPECT_NO_THROW(c.freeze());
}

TEST(Circuit, EmptyCircuitRejected) {
  Circuit c;
  EXPECT_THROW(c.freeze(), util::CheckError);
}

TEST(Circuit, MutationAfterFreezeRejected) {
  Circuit c = tiny_and_or();
  EXPECT_THROW(c.add_input("new"), util::CheckError);
  EXPECT_THROW(c.connect(0, 1), util::CheckError);
}

TEST(Circuit, DoubleFreezeRejected) {
  Circuit c = tiny_and_or();
  EXPECT_THROW(c.freeze(), util::CheckError);
}

TEST(Circuit, MarkOutputIsIdempotent) {
  Circuit c;
  const GateId a = c.add_input("a");
  const GateId g = c.add_gate("g", GateType::kBuf, {a});
  c.mark_output(g);
  c.mark_output(g);
  c.mark_output("g");
  c.freeze();
  EXPECT_EQ(c.primary_outputs().size(), 1u);
  EXPECT_TRUE(c.is_output(g));
  EXPECT_FALSE(c.is_output(a));
}

TEST(Circuit, MarkOutputUnknownNameThrows) {
  Circuit c;
  c.add_input("a");
  EXPECT_THROW(c.mark_output("ghost"), util::CheckError);
}

TEST(Circuit, FanoutOfMultiSinkSignal) {
  Circuit c;
  const GateId a = c.add_input("a");
  c.add_gate("g1", GateType::kBuf, {a});
  c.add_gate("g2", GateType::kNot, {a});
  c.add_gate("g3", GateType::kBuf, {a});
  c.freeze();
  EXPECT_EQ(c.fanouts(a).size(), 3u);
}

TEST(Circuit, DuplicateFaninCountsAsTwoEdges) {
  // XOR(a, a) is degenerate but legal in .bench files.
  Circuit c;
  const GateId a = c.add_input("a");
  const GateId g = c.add_gate("g", GateType::kXor, {a, a});
  c.freeze();
  EXPECT_EQ(c.fanins(g).size(), 2u);
  EXPECT_EQ(c.fanouts(a).size(), 2u);
  EXPECT_EQ(c.num_edges(), 2u);
}

TEST(Circuit, NamesPreserved) {
  const Circuit c = tiny_and_or();
  EXPECT_EQ(c.gate_name(c.find("g1")), "g1");
  EXPECT_EQ(c.name(), "tiny");
  EXPECT_EQ(to_string(c.type(c.find("g1"))), "AND");
}

TEST(GateTypeTraits, ArityBounds) {
  EXPECT_EQ(min_arity(GateType::kInput), 0);
  EXPECT_EQ(max_arity(GateType::kInput), 0);
  EXPECT_EQ(min_arity(GateType::kNot), 1);
  EXPECT_EQ(max_arity(GateType::kNot), 1);
  EXPECT_EQ(min_arity(GateType::kDff), 1);
  EXPECT_EQ(min_arity(GateType::kNand), 2);
  EXPECT_GE(max_arity(GateType::kNand), 4);
  EXPECT_TRUE(is_sequential_source(GateType::kInput));
  EXPECT_TRUE(is_sequential_source(GateType::kDff));
  EXPECT_FALSE(is_sequential_source(GateType::kAnd));
}

}  // namespace
}  // namespace pls::circuit
