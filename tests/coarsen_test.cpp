// Tests for the coarsening phase: the paper's structural invariants
// (disjoint cover, weight conservation, primary-input rule), stopping
// conditions, weight caps, both schemes, and activity weighting.

#include <gtest/gtest.h>

#include "circuit/generator.hpp"
#include "partition/coarsen.hpp"
#include "util/check.hpp"

namespace pls::partition {
namespace {

circuit::Circuit test_circuit(std::uint64_t seed = 21) {
  circuit::GeneratorSpec spec;
  spec.num_comb_gates = 800;
  spec.num_inputs = 24;
  spec.num_outputs = 8;
  spec.num_dffs = 50;
  spec.seed = seed;
  return circuit::generate(spec);
}

TEST(Coarsen, ProducesShrinkingHierarchy) {
  const auto c = test_circuit();
  CoarsenOptions opt;
  opt.threshold = 64;
  const Hierarchy h = coarsen(c, opt);
  ASSERT_GE(h.num_levels(), 2u);
  std::size_t prev = h.base.num_vertices();
  for (const auto& lvl : h.levels) {
    EXPECT_LT(lvl.graph.num_vertices(), prev);
    prev = lvl.graph.num_vertices();
  }
  EXPECT_LE(h.coarsest().num_vertices(), 200u);  // well below the base
}

TEST(Coarsen, InvariantsHold) {
  const auto c = test_circuit();
  CoarsenOptions opt;
  opt.threshold = 64;
  EXPECT_NO_THROW(check_hierarchy_invariants(coarsen(c, opt)));
}

TEST(Coarsen, InvariantsHoldWithWeightCap) {
  const auto c = test_circuit();
  CoarsenOptions opt;
  opt.threshold = 32;
  opt.max_globule_weight = 40;
  const Hierarchy h = coarsen(c, opt);
  EXPECT_NO_THROW(check_hierarchy_invariants(h));
  for (graph::VertexId v = 0; v < h.coarsest().num_vertices(); ++v) {
    EXPECT_LE(h.coarsest().vertex_weight(v), 40u);
  }
}

TEST(Coarsen, TotalWeightConservedToCoarsest) {
  const auto c = test_circuit();
  const Hierarchy h = coarsen(c, CoarsenOptions{});
  EXPECT_EQ(h.coarsest().total_vertex_weight(), c.size());
}

TEST(Coarsen, NeverMergesTwoPrimaryInputs) {
  // check_hierarchy_invariants already asserts this; run it across seeds.
  for (std::uint64_t seed : {1ull, 2ull, 3ull, 4ull}) {
    const auto c = test_circuit(seed);
    CoarsenOptions opt;
    opt.seed = seed;
    EXPECT_NO_THROW(check_hierarchy_invariants(coarsen(c, opt)));
  }
}

TEST(Coarsen, ThresholdStopsCoarsening) {
  const auto c = test_circuit();
  CoarsenOptions opt;
  opt.threshold = 300;
  const Hierarchy h = coarsen(c, opt);
  // Coarsening stops at the first level at or below the threshold; with
  // halving-ish rounds the coarsest level is within a factor of the
  // threshold, never (say) 10x smaller.
  EXPECT_LE(h.coarsest().num_vertices(), 300u);
  EXPECT_GE(h.coarsest().num_vertices(), 30u);
}

TEST(Coarsen, MaxLevelsRespected) {
  const auto c = test_circuit();
  CoarsenOptions opt;
  opt.threshold = 1;  // would coarsen forever
  opt.max_levels = 3;
  EXPECT_LE(coarsen(c, opt).num_levels(), 3u);
}

TEST(Coarsen, AllInputsCircuitCannotCoarsen) {
  // A circuit of only primary inputs (plus one gate to satisfy freeze):
  // after the gate is absorbed nothing further can combine.
  circuit::Circuit c;
  std::vector<circuit::GateId> pis;
  for (int i = 0; i < 8; ++i) {
    pis.push_back(c.add_input("pi" + std::to_string(i)));
  }
  c.add_gate("g", circuit::GateType::kAnd,
             {pis[0], pis[1], pis[2], pis[3]});
  c.freeze();
  CoarsenOptions opt;
  opt.threshold = 2;
  const Hierarchy h = coarsen(c, opt);
  // One level may absorb the gate into an input globule, after which all
  // globules are input globules and coarsening halts above the threshold.
  EXPECT_GE(h.coarsest().num_vertices(), 8u);
  check_hierarchy_invariants(h);
}

TEST(Coarsen, HeavyEdgeSchemeWorks) {
  const auto c = test_circuit();
  CoarsenOptions opt;
  opt.scheme = CoarsenScheme::kHeavyEdge;
  opt.threshold = 64;
  const Hierarchy h = coarsen(c, opt);
  EXPECT_GE(h.num_levels(), 2u);
  EXPECT_NO_THROW(check_hierarchy_invariants(h));
  EXPECT_EQ(h.coarsest().total_vertex_weight(), c.size());
}

TEST(Coarsen, DeterministicForEqualSeeds) {
  const auto c = test_circuit();
  CoarsenOptions opt;
  opt.seed = 77;
  const Hierarchy a = coarsen(c, opt);
  const Hierarchy b = coarsen(c, opt);
  ASSERT_EQ(a.num_levels(), b.num_levels());
  for (std::size_t i = 0; i < a.num_levels(); ++i) {
    EXPECT_EQ(a.levels[i].parent_map, b.levels[i].parent_map);
  }
}

TEST(Coarsen, SeedsExploreDifferentCoarsenings) {
  const auto c = test_circuit();
  CoarsenOptions a_opt;
  a_opt.seed = 1;
  CoarsenOptions b_opt;
  b_opt.seed = 2;
  const Hierarchy a = coarsen(c, a_opt);
  const Hierarchy b = coarsen(c, b_opt);
  ASSERT_GE(a.num_levels(), 1u);
  ASSERT_GE(b.num_levels(), 1u);
  EXPECT_NE(a.levels[0].parent_map, b.levels[0].parent_map);
}

TEST(Coarsen, ActivityWeightingChangesEdgeWeights) {
  const auto c = test_circuit();
  std::vector<double> activity(c.size(), 0.0);
  for (std::size_t i = 0; i < activity.size(); ++i) {
    activity[i] = (i % 7 == 0) ? 10.0 : 0.1;
  }
  const auto weights = multilevel::weights_from_activity(activity);
  CoarsenOptions plain;
  CoarsenOptions weighted;
  weighted.weights = &weights;
  const Hierarchy hp = coarsen(c, plain);
  const Hierarchy hw = coarsen(c, weighted);
  // Total symmetrized edge weight of G0 must be strictly larger with
  // traffic scaling (a 10x-mean driver weighs traffic_cap-bounded ~40,
  // far above the unit default).
  std::uint64_t wp = 0, ww = 0;
  for (graph::VertexId v = 0; v < hp.base.num_vertices(); ++v) {
    wp += hp.base.weighted_degree(v);
  }
  for (graph::VertexId v = 0; v < hw.base.num_vertices(); ++v) {
    ww += hw.base.weighted_degree(v);
  }
  EXPECT_GT(ww, wp);
}

TEST(Coarsen, CoarseEdgesAreUnionsOfMemberEdges) {
  // If two globules are adjacent at level i+1, some pair of their members
  // must be adjacent at level i.
  const auto c = test_circuit();
  const Hierarchy h = coarsen(c, CoarsenOptions{});
  ASSERT_GE(h.num_levels(), 1u);
  const auto& lvl = h.levels[0];
  // Build member lists.
  std::vector<std::vector<graph::VertexId>> members(
      lvl.graph.num_vertices());
  for (graph::VertexId v = 0; v < h.base.num_vertices(); ++v) {
    members[lvl.parent_map[v]].push_back(v);
  }
  for (graph::VertexId g = 0;
       g < std::min<std::size_t>(lvl.graph.num_vertices(), 50); ++g) {
    for (const auto& e : lvl.graph.neighbors(g)) {
      bool witnessed = false;
      for (graph::VertexId m : members[g]) {
        for (const auto& me : h.base.neighbors(m)) {
          witnessed |= (lvl.parent_map[me.to] == e.to);
        }
      }
      EXPECT_TRUE(witnessed)
          << "coarse edge " << g << "-" << e.to << " has no fine witness";
    }
  }
}

TEST(Coarsen, RequiresFrozenCircuit) {
  circuit::Circuit c;
  c.add_input("a");
  EXPECT_THROW(coarsen(c, CoarsenOptions{}), util::CheckError);
}

}  // namespace
}  // namespace pls::partition
