// The central correctness property of the whole system, swept as a
// parameterized matrix: for every partitioning strategy, node count and
// state-saving policy, the optimistic parallel simulation commits exactly
// the results of the sequential reference run — same final state for every
// LP and the same number of committed events.  This exercises rollback,
// anti-message cancellation, coast-forward replay, GVT and fossil
// collection end to end on a real circuit.

#include <gtest/gtest.h>

#include "circuit/generator.hpp"
#include "framework/driver.hpp"
#include "logicsim/equivalence.hpp"

namespace pls {
namespace {

const circuit::Circuit& property_circuit() {
  static const circuit::Circuit c = [] {
    circuit::GeneratorSpec spec;
    spec.name = "prop";
    spec.num_comb_gates = 450;
    spec.num_inputs = 16;
    spec.num_outputs = 8;
    spec.num_dffs = 30;
    spec.seed = 1234;
    return circuit::generate(spec);
  }();
  return c;
}

framework::DriverConfig fast_config() {
  framework::DriverConfig cfg;
  cfg.end_time = 600;
  cfg.seed = 99;
  // Cheap events and a short but nonzero latency: plenty of optimism and
  // rollbacks without slow wall-clock runs.
  cfg.event_cost_ns = 0;
  cfg.send_overhead_ns = 0;
  cfg.latency_ns = 5000;
  cfg.gvt_interval_us = 500;
  return cfg;
}

struct EqParam {
  const char* partitioner;
  std::uint32_t nodes;
  std::uint32_t state_period;
};

class EquivalenceSweep : public ::testing::TestWithParam<EqParam> {};

TEST_P(EquivalenceSweep, ParallelCommitsSequentialResults) {
  const auto [name, nodes, period] = GetParam();
  framework::DriverConfig cfg = fast_config();
  cfg.partitioner = name;
  cfg.num_nodes = nodes;
  cfg.state_period = period;

  const auto& c = property_circuit();
  const auto par = framework::run_parallel(c, cfg);
  const auto seq = framework::run_sequential(c, cfg);
  const auto rep = logicsim::check_equivalence(par.run, seq);
  EXPECT_TRUE(rep.ok()) << rep.describe();

  // Accounting invariant: every processed event was either committed or
  // rolled back.
  EXPECT_EQ(par.run.totals.events_processed,
            par.run.totals.events_committed +
                par.run.totals.events_rolled_back);
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, EquivalenceSweep,
    ::testing::Values(
        EqParam{"Random", 2, 1}, EqParam{"Random", 4, 1},
        EqParam{"DFS", 2, 1}, EqParam{"DFS", 4, 1},
        EqParam{"Cluster", 4, 1}, EqParam{"Topological", 4, 1},
        EqParam{"Multilevel", 2, 1}, EqParam{"Multilevel", 4, 1},
        EqParam{"Multilevel", 8, 1}, EqParam{"ConePartition", 4, 1},
        // Periodic state saving with coast-forward replay:
        EqParam{"Multilevel", 4, 4}, EqParam{"Random", 4, 4},
        EqParam{"Topological", 4, 8}, EqParam{"Multilevel", 1, 1}),
    [](const auto& info) {
      return std::string(info.param.partitioner) + "_n" +
             std::to_string(info.param.nodes) + "_sp" +
             std::to_string(info.param.state_period);
    });

TEST(EquivalenceExtras, HighLatencyRollbackStorm) {
  // Large latency makes every cross-node signal a straggler factory.
  framework::DriverConfig cfg = fast_config();
  cfg.partitioner = "Random";  // maximal cross-node traffic
  cfg.num_nodes = 4;
  cfg.latency_ns = 50000;
  cfg.end_time = 400;

  const auto& c = property_circuit();
  const auto par = framework::run_parallel(c, cfg);
  const auto seq = framework::run_sequential(c, cfg);
  EXPECT_TRUE(logicsim::check_equivalence(par.run, seq).ok());
  EXPECT_GT(par.run.totals.total_rollbacks(), 0u);
  EXPECT_GT(par.run.totals.anti_messages_sent, 0u);
}

TEST(EquivalenceExtras, OptimismWindowPreservesResults) {
  framework::DriverConfig cfg = fast_config();
  cfg.partitioner = "Multilevel";
  cfg.num_nodes = 4;
  // Explicitly fixed: under the adaptive default this would only be the
  // initial window, not the hard bound the test name promises.
  cfg.throttle.mode = warped::ThrottleMode::kFixed;
  cfg.optimism_window = 50;

  const auto& c = property_circuit();
  const auto par = framework::run_parallel(c, cfg);
  const auto seq = framework::run_sequential(c, cfg);
  EXPECT_TRUE(logicsim::check_equivalence(par.run, seq).ok());
}

TEST(EquivalenceExtras, DifferentSeedsGiveDifferentButConsistentRuns) {
  const auto& c = property_circuit();
  framework::DriverConfig cfg = fast_config();
  cfg.num_nodes = 3;

  cfg.seed = 1;
  const auto par1 = framework::run_parallel(c, cfg);
  const auto seq1 = framework::run_sequential(c, cfg);
  EXPECT_TRUE(logicsim::check_equivalence(par1.run, seq1).ok());

  cfg.seed = 2;
  const auto seq2 = framework::run_sequential(c, cfg);
  // Different stimulus seed -> different trajectory.
  EXPECT_NE(seq1.events_processed, seq2.events_processed);
}

TEST(EquivalenceExtras, ActivityWeightedMultilevelStaysCorrect) {
  framework::DriverConfig cfg = fast_config();
  cfg.partitioner = "Multilevel";
  cfg.num_nodes = 4;
  cfg.use_activity = true;

  const auto& c = property_circuit();
  const auto par = framework::run_parallel(c, cfg);
  const auto seq = framework::run_sequential(c, cfg);
  EXPECT_TRUE(logicsim::check_equivalence(par.run, seq).ok());
}

}  // namespace
}  // namespace pls
