// Tests for the runtime registry and the simulation driver.

#include <gtest/gtest.h>

#include <filesystem>

#include "circuit/generator.hpp"
#include "framework/driver.hpp"
#include "framework/partition_cache.hpp"
#include "framework/registry.hpp"
#include "logicsim/activity.hpp"
#include "multilevel/weights.hpp"
#include "util/check.hpp"

namespace pls::framework {
namespace {

circuit::Circuit small_circuit() {
  circuit::GeneratorSpec spec;
  spec.num_comb_gates = 200;
  spec.num_inputs = 10;
  spec.num_outputs = 5;
  spec.num_dffs = 12;
  spec.seed = 4;
  return circuit::generate(spec);
}

TEST(Registry, ExposesThePaperSixStrategiesPlusHypergraph) {
  const auto& names = partitioner_names();
  ASSERT_EQ(names.size(), 7u);
  EXPECT_EQ(names[0], "Random");
  EXPECT_EQ(names[4], "Multilevel");
  EXPECT_EQ(names[6], "MultilevelHG");
}

TEST(Registry, NamesStayInSyncWithFactory) {
  // Smoke test guarding the listing/factory pair: every advertised name
  // must instantiate to a partitioner reporting that exact name, and
  // anything else must throw.  Catches a strategy added to one side only.
  for (const auto& name : partitioner_names()) {
    const auto p = make_partitioner(name);
    ASSERT_NE(p, nullptr) << name;
    EXPECT_EQ(p->name(), name);
  }
  EXPECT_THROW(make_partitioner("NoSuchStrategy"), util::CheckError);
  EXPECT_THROW(make_partitioner(""), util::CheckError);
  EXPECT_THROW(make_partitioner("multilevelhg"), util::CheckError);  // exact
}

TEST(Registry, ConeAliasWorks) {
  EXPECT_EQ(make_partitioner("Cone")->name(), "ConePartition");
}

TEST(Registry, UnknownNameThrows) {
  EXPECT_THROW(make_partitioner("Magical"), util::CheckError);
}

TEST(Registry, SelectionWithoutRecompilation) {
  // The paper's point: strategy is a runtime value.  Same circuit, every
  // strategy, one binary.
  const auto c = small_circuit();
  for (const auto& name : partitioner_names()) {
    const auto p = make_partitioner(name)->run(c, 4, 1);
    p.validate(c.size());
  }
}

TEST(Driver, PartitionOnlyFillsMetrics) {
  const auto c = small_circuit();
  DriverConfig cfg;
  cfg.partitioner = "Multilevel";
  cfg.num_nodes = 4;
  const DriverResult res = partition_only(c, cfg);
  res.partition.validate(c.size());
  EXPECT_GT(res.edge_cut, 0u);
  EXPECT_GE(res.comm_volume, 1u);
  EXPECT_GE(res.imbalance, 1.0);
  EXPECT_GT(res.concurrency, 0.0);
  EXPECT_GE(res.partition_seconds, 0.0);
}

TEST(Driver, ParallelRunProducesStats) {
  const auto c = small_circuit();
  DriverConfig cfg;
  cfg.partitioner = "Multilevel";
  cfg.num_nodes = 2;
  cfg.end_time = 300;
  cfg.event_cost_ns = 0;
  cfg.latency_ns = 1000;
  const DriverResult res = run_parallel(c, cfg);
  EXPECT_EQ(res.run.num_nodes, 2u);
  EXPECT_GT(res.run.totals.events_committed, 0u);
  EXPECT_GT(res.run.wall_seconds, 0.0);
  EXPECT_EQ(res.run.final_states.size(), c.size());
}

TEST(Driver, SequentialRunMatchesModel) {
  const auto c = small_circuit();
  DriverConfig cfg;
  cfg.end_time = 300;
  cfg.event_cost_ns = 0;
  const auto seq = run_sequential(c, cfg);
  EXPECT_GT(seq.events_processed, 0u);
  EXPECT_EQ(seq.final_states.size(), c.size());
  EXPECT_EQ(seq.per_lp_events.size(), c.size());
}

TEST(Driver, SeedControlsStimulus) {
  const auto c = small_circuit();
  DriverConfig cfg;
  cfg.end_time = 300;
  cfg.event_cost_ns = 0;
  cfg.seed = 10;
  const auto a = run_sequential(c, cfg);
  const auto b = run_sequential(c, cfg);
  EXPECT_EQ(a.events_processed, b.events_processed);
  cfg.seed = 11;
  const auto d = run_sequential(c, cfg);
  EXPECT_NE(a.events_processed, d.events_processed);
}

TEST(Driver, RepartitionRequiresWeightConsumingStrategy) {
  // Mirrors the use_activity validation: dynamic repartitioning warm-starts
  // an incremental weighted refinement, which only the multilevel pair can
  // consume.  Any other named strategy must fail fast, not silently run
  // static.
  const auto c = small_circuit();
  DriverConfig cfg;
  cfg.num_nodes = 2;
  cfg.end_time = 100;
  cfg.repartition_interval = 4;
  for (const char* name : {"Random", "DFS", "Cluster", "Topological",
                           "ConePartition"}) {
    cfg.partitioner = name;
    EXPECT_THROW(partition_only(c, cfg), util::CheckError) << name;
    EXPECT_THROW(run_parallel(c, cfg), util::CheckError) << name;
  }
  cfg.partitioner = "Multilevel";
  EXPECT_NO_THROW(partition_only(c, cfg));
  cfg.partitioner = "MultilevelHG";
  EXPECT_NO_THROW(partition_only(c, cfg));
}

TEST(Registry, IncrementalRepartitionReachesFixedPoint) {
  // With unchanged weights the warm-started refinement must converge to a
  // partition it then returns unchanged: quality_before == quality_after
  // and the input assignment comes back bit-identical.  Guards against an
  // incremental path that churns assignments (and thus migrations) without
  // an actual objective gain.
  const auto c = small_circuit();
  const std::vector<std::uint64_t> ones(c.size(), 1);
  const multilevel::VertexTrafficWeights w = multilevel::weights_from_activity(
      logicsim::normalize_counts(ones), logicsim::normalize_counts(ones));
  partition::MultilevelOptions ml;
  ml.weights = &w;
  for (const char* name : {"Multilevel", "MultilevelHG"}) {
    partition::Partition cur = make_partitioner(name, ml)->run(c, 4, 1);
    bool fixed = false;
    for (int iter = 0; iter < 5 && !fixed; ++iter) {
      const IncrementalRepartition inc =
          repartition_incremental(name, ml, c, 4, 1, cur);
      if (!inc.changed) {
        EXPECT_EQ(inc.partition.assign, cur.assign) << name;
        EXPECT_EQ(inc.quality_before, inc.quality_after) << name;
        fixed = true;
      } else {
        EXPECT_LT(inc.quality_after, inc.quality_before) << name;
        cur = inc.partition;
      }
    }
    EXPECT_TRUE(fixed) << name << ": no fixed point within 5 refinements";
  }
  EXPECT_THROW(repartition_incremental("Random", ml, c, 4, 1,
                                       make_partitioner("Random")->run(c, 4, 1)),
               util::CheckError);
}

TEST(Driver, RepartitioningPreservesCommittedResults) {
  // End-to-end determinism: the adaptive run must commit exactly the same
  // final states and event totals as the static run — live migration is
  // invisible to the simulated model.
  const auto c = small_circuit();
  DriverConfig cfg;
  cfg.partitioner = "Multilevel";
  cfg.num_nodes = 2;
  cfg.end_time = 300;
  cfg.event_cost_ns = 200;
  cfg.latency_ns = 20000;
  cfg.gvt_interval_us = 200;
  const DriverResult ref = run_parallel(c, cfg);

  cfg.repartition_interval = 2;
  cfg.repartition_min_gain = 0.0;
  const DriverResult out = run_parallel(c, cfg);

  ASSERT_EQ(out.run.final_states.size(), ref.run.final_states.size());
  for (std::size_t i = 0; i < ref.run.final_states.size(); ++i) {
    EXPECT_EQ(out.run.final_states[i], ref.run.final_states[i]) << "LP " << i;
  }
  EXPECT_EQ(out.run.totals.events_committed, ref.run.totals.events_committed);
  EXPECT_EQ(out.lps_migrated, out.run.totals.lps_migrated_in);
  // Every adopted epoch must have recorded a strict quality gain.
  for (const auto& ep : out.repartition_epochs) {
    if (ep.lps_moved > 0) {
      EXPECT_LT(ep.quality_after, ep.quality_before);
    }
  }
}

TEST(Driver, OomLimitPropagates) {
  const auto c = small_circuit();
  DriverConfig cfg;
  cfg.partitioner = "Random";
  cfg.num_nodes = 2;
  cfg.end_time = 100000;
  cfg.event_cost_ns = 0;
  cfg.latency_ns = 0;
  cfg.max_live_entries_per_node = 64;  // absurdly small
  cfg.gvt_interval_us = 200;
  const DriverResult res = run_parallel(c, cfg);
  EXPECT_TRUE(res.run.out_of_memory);
}

TEST(PartitionCache, RoundTripAndKeySensitivity) {
  const auto c = small_circuit();
  const partition::MultilevelOptions ml;
  const std::uint64_t key =
      partition_cache_key(c, 4, "Multilevel", 7, ml, nullptr);
  // The key is a pure function of its inputs and moves with each of them.
  EXPECT_EQ(key, partition_cache_key(c, 4, "Multilevel", 7, ml, nullptr));
  EXPECT_NE(key, partition_cache_key(c, 8, "Multilevel", 7, ml, nullptr));
  EXPECT_NE(key, partition_cache_key(c, 4, "Random", 7, ml, nullptr));
  EXPECT_NE(key, partition_cache_key(c, 4, "Multilevel", 8, ml, nullptr));
  multilevel::VertexTrafficWeights w = multilevel::uniform_weights(c.size());
  EXPECT_EQ(key, partition_cache_key(c, 4, "Multilevel", 7, ml, &w))
      << "uniform weights cannot change the outcome, so they share the key";
  w.vertex[3] = 5;
  EXPECT_NE(key, partition_cache_key(c, 4, "Multilevel", 7, ml, &w));

  const std::string dir =
      (std::filesystem::temp_directory_path() / "pls_pcache_test").string();
  std::filesystem::remove_all(dir);
  const partition::Partition p = make_partitioner("Multilevel")->run(c, 4, 7);
  partition::Partition loaded;
  EXPECT_FALSE(partition_cache_load(dir, key, 4, c.size(), &loaded));
  partition_cache_store(dir, key, p);
  ASSERT_TRUE(partition_cache_load(dir, key, 4, c.size(), &loaded));
  EXPECT_EQ(loaded.k, p.k);
  EXPECT_EQ(loaded.assign, p.assign);
  // Mismatched shape degrades to a miss, never a bad partition.
  EXPECT_FALSE(partition_cache_load(dir, key, 8, c.size(), &loaded));
  EXPECT_FALSE(partition_cache_load(dir, key, 4, c.size() + 1, &loaded));
  std::filesystem::remove_all(dir);
}

TEST(PartitionCache, DriverReplaysIdenticalAssignment) {
  const auto c = small_circuit();
  const std::string dir =
      (std::filesystem::temp_directory_path() / "pls_pcache_driver").string();
  std::filesystem::remove_all(dir);

  DriverConfig cfg;
  cfg.num_nodes = 4;
  cfg.partitioner = "Multilevel";
  cfg.partition_cache_dir = dir;
  const DriverResult cold = partition_only(c, cfg);
  EXPECT_FALSE(cold.partition_cache_hit);
  const DriverResult warm = partition_only(c, cfg);
  EXPECT_TRUE(warm.partition_cache_hit);
  EXPECT_EQ(warm.partition.assign, cold.partition.assign);
  EXPECT_EQ(warm.edge_cut, cold.edge_cut);

  // A different seed must not be served the cached plan.
  DriverConfig other = cfg;
  other.seed = cfg.seed + 1;
  const DriverResult miss = partition_only(c, other);
  EXPECT_FALSE(miss.partition_cache_hit);
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace pls::framework
