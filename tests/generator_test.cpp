// Tests for the ISCAS'89-like circuit generator: exact interface counts
// (the paper's Table 1), structural sanity, determinism, and parameterized
// sweeps over sizes and seeds.

#include <gtest/gtest.h>

#include "circuit/circuit_stats.hpp"
#include "circuit/generator.hpp"
#include "circuit/levelize.hpp"
#include "util/check.hpp"

namespace pls::circuit {
namespace {

TEST(IscasSpecs, Table1CountsAreExact) {
  // Paper Table 1: Circuit / Inputs / Gates / Outputs.
  struct Row {
    const char* name;
    std::size_t inputs, gates, outputs;
  };
  for (const Row& row : {Row{"s5378", 35, 2779, 49},
                         Row{"s9234", 36, 5597, 39},
                         Row{"s15850", 77, 10383, 150}}) {
    const Circuit c = make_iscas_like(row.name);
    const CircuitStats s = compute_stats(c);
    EXPECT_EQ(s.inputs, row.inputs) << row.name;
    EXPECT_EQ(s.comb_gates, row.gates) << row.name;
    EXPECT_EQ(s.outputs, row.outputs) << row.name;
  }
}

TEST(IscasSpecs, UnknownNameThrows) {
  EXPECT_THROW(make_iscas_like("s99999"), util::CheckError);
}

TEST(Generator, DeterministicForEqualSeeds) {
  GeneratorSpec spec;
  spec.num_comb_gates = 400;
  spec.seed = 5;
  const Circuit a = generate(spec);
  const Circuit b = generate(spec);
  ASSERT_EQ(a.size(), b.size());
  ASSERT_EQ(a.num_edges(), b.num_edges());
  for (GateId g = 0; g < a.size(); ++g) {
    EXPECT_EQ(a.type(g), b.type(g));
    const auto fa = a.fanins(g);
    const auto fb = b.fanins(g);
    ASSERT_EQ(fa.size(), fb.size());
    for (std::size_t i = 0; i < fa.size(); ++i) EXPECT_EQ(fa[i], fb[i]);
  }
}

TEST(Generator, DifferentSeedsDiffer) {
  GeneratorSpec spec;
  spec.num_comb_gates = 400;
  spec.seed = 5;
  const Circuit a = generate(spec);
  spec.seed = 6;
  const Circuit b = generate(spec);
  // Same counts by construction, but wiring must differ somewhere.
  ASSERT_EQ(a.size(), b.size());
  bool differs = a.num_edges() != b.num_edges();
  for (GateId g = 0; !differs && g < a.size(); ++g) {
    differs = a.type(g) != b.type(g);
    if (!differs) {
      const auto fa = a.fanins(g);
      const auto fb = b.fanins(g);
      differs = !std::equal(fa.begin(), fa.end(), fb.begin(), fb.end());
    }
  }
  EXPECT_TRUE(differs);
}

TEST(Generator, RespectsDepthTarget) {
  GeneratorSpec spec;
  spec.num_comb_gates = 600;
  spec.depth = 12;
  const Circuit c = generate(spec);
  EXPECT_EQ(levelize(c).max_level, 12u);
}

TEST(Generator, EveryCombGateReachableFromSource) {
  const Circuit c = make_iscas_like("s5378", 3);
  // BFS from all sources over fanout edges.
  std::vector<std::uint8_t> seen(c.size(), 0);
  std::vector<GateId> stack;
  for (GateId g : c.primary_inputs()) {
    stack.push_back(g);
    seen[g] = 1;
  }
  for (GateId g : c.flip_flops()) {
    stack.push_back(g);
    seen[g] = 1;
  }
  while (!stack.empty()) {
    const GateId g = stack.back();
    stack.pop_back();
    for (GateId out : c.fanouts(g)) {
      if (!seen[out]) {
        seen[out] = 1;
        stack.push_back(out);
      }
    }
  }
  for (GateId g = 0; g < c.size(); ++g) {
    EXPECT_TRUE(seen[g]) << "gate " << c.gate_name(g) << " unreachable";
  }
}

TEST(Generator, MostGatesDriveSomething) {
  const Circuit c = make_iscas_like("s9234", 3);
  std::size_t dangling = 0;
  for (GateId g = 0; g < c.size(); ++g) {
    if (c.fanouts(g).empty() && !c.is_output(g)) ++dangling;
  }
  // The generator wires dangling gates into higher levels; only a few
  // top-level stragglers may remain.
  EXPECT_LT(dangling, c.size() / 100);
}

TEST(Generator, HasSequentialFeedback) {
  const Circuit c = make_iscas_like("s5378", 3);
  // Every DFF must have its D input connected to combinational logic.
  for (GateId ff : c.flip_flops()) {
    ASSERT_EQ(c.fanins(ff).size(), 1u);
    EXPECT_NE(c.type(c.fanins(ff)[0]), GateType::kInput);
  }
}

TEST(Generator, FanoutDistributionIsSkewed) {
  // Real netlists have a few high-fanout nets (hub bias).
  const CircuitStats s = compute_stats(make_iscas_like("s9234", 3));
  EXPECT_GT(s.max_fanout, 20u);
  EXPECT_LT(s.avg_fanout, 4.0);
  EXPECT_GT(s.avg_fanout, 1.0);
}

TEST(Generator, RejectsImpossibleSpecs) {
  GeneratorSpec spec;
  spec.num_inputs = 0;
  EXPECT_THROW(generate(spec), util::CheckError);
  spec = GeneratorSpec{};
  spec.num_comb_gates = 4;
  spec.num_outputs = 10;
  EXPECT_THROW(generate(spec), util::CheckError);
}

TEST(Generator, TinySpecWorks) {
  GeneratorSpec spec;
  spec.num_inputs = 2;
  spec.num_outputs = 1;
  spec.num_comb_gates = 5;
  spec.num_dffs = 1;
  spec.depth = 2;
  const Circuit c = generate(spec);
  EXPECT_EQ(c.size(), 8u);
  EXPECT_EQ(c.num_combinational(), 5u);
}

// ---- property sweep over sizes and seeds ---------------------------------

struct GenParam {
  std::size_t gates;
  std::size_t inputs;
  std::size_t dffs;
  std::uint64_t seed;
};

class GeneratorSweep : public ::testing::TestWithParam<GenParam> {};

TEST_P(GeneratorSweep, StructuralInvariantsHold) {
  const GenParam p = GetParam();
  GeneratorSpec spec;
  spec.num_comb_gates = p.gates;
  spec.num_inputs = p.inputs;
  spec.num_outputs = std::max<std::size_t>(1, p.gates / 50);
  spec.num_dffs = p.dffs;
  spec.seed = p.seed;
  const Circuit c = generate(spec);  // freeze() validates arity + acyclic

  EXPECT_EQ(c.primary_inputs().size(), spec.num_inputs);
  EXPECT_EQ(c.primary_outputs().size(), spec.num_outputs);
  EXPECT_EQ(c.flip_flops().size(), spec.num_dffs);
  EXPECT_EQ(c.num_combinational(), spec.num_comb_gates);

  // Levelization must succeed (acyclic combinational part) and fanins of
  // every gate respect the declared arity bounds.
  const auto lv = levelize(c);
  EXPECT_GE(lv.max_level, 1u);
  for (GateId g = 0; g < c.size(); ++g) {
    const auto n = static_cast<int>(c.fanins(g).size());
    EXPECT_GE(n, min_arity(c.type(g)));
    EXPECT_LE(n, max_arity(c.type(g)));
  }
}

INSTANTIATE_TEST_SUITE_P(
    SizesAndSeeds, GeneratorSweep,
    ::testing::Values(GenParam{60, 4, 0, 1}, GenParam{60, 4, 8, 2},
                      GenParam{250, 16, 12, 3}, GenParam{250, 16, 12, 99},
                      GenParam{1000, 30, 64, 4}, GenParam{1000, 30, 64, 77},
                      GenParam{2779, 35, 179, 5},
                      GenParam{5597, 36, 211, 6}));

}  // namespace
}  // namespace pls::circuit
