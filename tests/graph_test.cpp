// Tests for the symmetrized WeightedGraph used by the partitioning layer.

#include <gtest/gtest.h>

#include <tuple>

#include "circuit/circuit.hpp"
#include "graph/weighted_graph.hpp"
#include "util/check.hpp"

namespace pls::graph {
namespace {

using EdgeTuple = std::tuple<VertexId, VertexId, std::uint32_t>;

TEST(WeightedGraph, MergesParallelEdges) {
  std::vector<EdgeTuple> edges{{0, 1, 2}, {1, 0, 3}, {1, 2, 1}};
  WeightedGraph g({1, 1, 1}, edges);
  EXPECT_EQ(g.num_vertices(), 3u);
  EXPECT_EQ(g.num_edges(), 2u);  // {0,1} merged, {1,2}
  ASSERT_EQ(g.neighbors(0).size(), 1u);
  EXPECT_EQ(g.neighbors(0)[0].to, 1u);
  EXPECT_EQ(g.neighbors(0)[0].weight, 5u);
  EXPECT_EQ(g.weighted_degree(1), 6u);
}

TEST(WeightedGraph, DropsSelfLoops) {
  std::vector<EdgeTuple> edges{{0, 0, 7}, {0, 1, 1}};
  WeightedGraph g({1, 1}, edges);
  EXPECT_EQ(g.num_edges(), 1u);
  EXPECT_EQ(g.weighted_degree(0), 1u);
}

TEST(WeightedGraph, VertexWeightsAndTotal) {
  WeightedGraph g({3, 4, 5}, std::vector<EdgeTuple>{});
  EXPECT_EQ(g.vertex_weight(1), 4u);
  EXPECT_EQ(g.total_vertex_weight(), 12u);
  EXPECT_EQ(g.num_edges(), 0u);
  EXPECT_TRUE(g.neighbors(0).empty());
}

TEST(WeightedGraph, AdjacencyIsSymmetric) {
  std::vector<EdgeTuple> edges{{0, 1, 1}, {1, 2, 2}, {0, 2, 3}};
  WeightedGraph g({1, 1, 1}, edges);
  for (VertexId v = 0; v < 3; ++v) {
    for (const Edge& e : g.neighbors(v)) {
      bool back = false;
      for (const Edge& r : g.neighbors(e.to)) {
        back |= (r.to == v && r.weight == e.weight);
      }
      EXPECT_TRUE(back) << "edge " << v << "->" << e.to << " not mirrored";
    }
  }
}

TEST(WeightedGraph, OutOfRangeEdgeThrows) {
  std::vector<EdgeTuple> edges{{0, 9, 1}};
  EXPECT_THROW(WeightedGraph({1, 1}, edges), pls::util::CheckError);
}

TEST(WeightedGraph, FromCircuitCountsDirectedPairs) {
  // a feeds g twice (XOR(a,a)): symmetrized weight 2.
  circuit::Circuit c;
  const auto a = c.add_input("a");
  const auto b = c.add_input("b");
  const auto g = c.add_gate("g", circuit::GateType::kXor, {a, a});
  c.add_gate("h", circuit::GateType::kAnd, {g, b});
  c.freeze();
  const WeightedGraph wg = WeightedGraph::from_circuit(c);
  EXPECT_EQ(wg.num_vertices(), 4u);
  EXPECT_EQ(wg.total_vertex_weight(), 4u);
  bool found = false;
  for (const Edge& e : wg.neighbors(a)) {
    if (e.to == g) {
      EXPECT_EQ(e.weight, 2u);
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(WeightedGraph, FromCircuitRequiresFrozen) {
  circuit::Circuit c;
  c.add_input("a");
  EXPECT_THROW(WeightedGraph::from_circuit(c), pls::util::CheckError);
}

TEST(WeightedGraph, EmptyGraphIsUsable) {
  WeightedGraph g;
  EXPECT_EQ(g.num_vertices(), 0u);
  EXPECT_EQ(g.num_edges(), 0u);
  EXPECT_EQ(g.total_vertex_weight(), 0u);
}

}  // namespace
}  // namespace pls::graph
