// Tests for the hypergraph subsystem: CSR construction and pin-count
// invariants, the λ−1 ≡ comm_volume equivalence, metric inequalities, the
// coarsening hierarchy, FM refinement, and the MultilevelHG partitioner.

#include <gtest/gtest.h>

#include <algorithm>

#include "circuit/generator.hpp"
#include "framework/registry.hpp"
#include "hypergraph/coarsen.hpp"
#include "hypergraph/initial.hpp"
#include "hypergraph/metrics.hpp"
#include "hypergraph/multilevel_hg_partitioner.hpp"
#include "hypergraph/refine.hpp"
#include "partition/metrics.hpp"
#include "partition/multilevel_partitioner.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace pls::hypergraph {
namespace {

circuit::Circuit test_circuit(std::size_t gates = 1200,
                              std::uint64_t seed = 31) {
  circuit::GeneratorSpec spec;
  spec.num_comb_gates = gates;
  spec.num_inputs = 32;
  spec.num_outputs = 16;
  spec.num_dffs = gates / 16;
  spec.seed = seed;
  return circuit::generate(spec);
}

partition::Partition random_partition(std::size_t n, std::uint32_t k,
                                      std::uint64_t seed) {
  util::Rng rng(seed);
  partition::Partition p;
  p.k = k;
  p.assign.resize(n);
  for (auto& a : p.assign) {
    a = static_cast<partition::PartId>(rng.below(k));
  }
  return p;
}

// ----- construction ----------------------------------------------------

TEST(Hypergraph, FromCircuitPinCountInvariants) {
  const auto c = test_circuit();
  const Hypergraph hg = Hypergraph::from_circuit(c);

  EXPECT_EQ(hg.num_vertices(), c.size());
  // One net per gate with >=1 distinct non-self fanout; never more nets
  // than gates.
  EXPECT_LE(hg.num_nets(), c.size());
  EXPECT_GT(hg.num_nets(), 0u);

  std::size_t pin_total = 0;
  for (NetId e = 0; e < hg.num_nets(); ++e) {
    const auto pins = hg.pins(e);
    // Every net has >=2 pins (driver + at least one sink), sorted and
    // duplicate-free, all in range.
    EXPECT_GE(pins.size(), 2u);
    EXPECT_TRUE(std::is_sorted(pins.begin(), pins.end()));
    EXPECT_TRUE(std::adjacent_find(pins.begin(), pins.end()) == pins.end());
    for (VertexId v : pins) EXPECT_LT(v, hg.num_vertices());
    pin_total += pins.size();
  }
  EXPECT_EQ(pin_total, hg.num_pins());

  // The vertex→net incidence is the exact transpose of net→pins.
  std::size_t incidence_total = 0;
  for (VertexId v = 0; v < hg.num_vertices(); ++v) {
    for (NetId e : hg.nets(v)) {
      const auto pins = hg.pins(e);
      EXPECT_TRUE(std::binary_search(pins.begin(), pins.end(), v));
    }
    incidence_total += hg.nets(v).size();
  }
  EXPECT_EQ(incidence_total, hg.num_pins());

  // Unit gate weights.
  EXPECT_EQ(hg.total_vertex_weight(), c.size());
}

TEST(Hypergraph, ExplicitConstructorMergesAndDrops) {
  // Net {0,0,1} has a duplicate pin; net {2} is single-pin and dropped.
  const Hypergraph hg({1, 1, 1}, {{0, 0, 1}, {2}, {1, 2}}, {5, 7, 9});
  EXPECT_EQ(hg.num_nets(), 2u);
  EXPECT_EQ(hg.pins(0).size(), 2u);
  EXPECT_EQ(hg.net_weight(0), 5u);
  EXPECT_EQ(hg.net_weight(1), 9u);
  EXPECT_EQ(hg.weighted_degree(1), 14u);  // nets 0 and 1
}

// ----- metrics ---------------------------------------------------------

TEST(HgMetrics, LambdaMinusOneEqualsCommVolume) {
  // The driver gate is a pin of its own fanout net, so λ(e)−1 counts
  // exactly the foreign parts the driver messages: the hypergraph λ−1
  // must equal partition::comm_volume for ANY partition.
  for (std::uint64_t cseed : {31ULL, 77ULL}) {
    const auto c = test_circuit(800, cseed);
    const Hypergraph hg = Hypergraph::from_circuit(c);
    for (std::uint32_t k : {2u, 3u, 8u}) {
      for (std::uint64_t pseed = 0; pseed < 4; ++pseed) {
        const auto p = random_partition(c.size(), k, pseed);
        EXPECT_EQ(connectivity_minus_one(hg, p),
                  partition::comm_volume(c, p))
            << "cseed=" << cseed << " k=" << k << " pseed=" << pseed;
      }
    }
  }
}

TEST(HgMetrics, LambdaMinusOneEqualsCommVolumeForAllStrategies) {
  const auto c = test_circuit(600, 5);
  const Hypergraph hg = Hypergraph::from_circuit(c);
  for (const auto& name : framework::partitioner_names()) {
    const auto p = framework::make_partitioner(name)->run(c, 4, 9);
    EXPECT_EQ(connectivity_minus_one(hg, p), partition::comm_volume(c, p))
        << name;
  }
}

TEST(HgMetrics, CutNetLambdaSandwich) {
  // For every partition: cut_net <= λ−1 <= (k−1)·cut_net.
  const auto c = test_circuit(700, 13);
  const Hypergraph hg = Hypergraph::from_circuit(c);
  for (std::uint32_t k : {2u, 4u, 8u}) {
    for (std::uint64_t pseed = 0; pseed < 4; ++pseed) {
      const auto p = random_partition(c.size(), k, pseed);
      const auto cn = cut_net(hg, p);
      const auto lm = connectivity_minus_one(hg, p);
      EXPECT_LE(cn, lm);
      EXPECT_LE(lm, static_cast<std::uint64_t>(k - 1) * cn);
    }
  }
}

TEST(HgMetrics, SinglePartIsUncut) {
  const auto c = test_circuit(300, 2);
  const Hypergraph hg = Hypergraph::from_circuit(c);
  partition::Partition p;
  p.k = 1;
  p.assign.assign(c.size(), 0);
  EXPECT_EQ(cut_net(hg, p), 0u);
  EXPECT_EQ(connectivity_minus_one(hg, p), 0u);
  EXPECT_DOUBLE_EQ(imbalance(hg, p), 1.0);
}

TEST(HgMetrics, InvalidPartitionRejected) {
  const auto c = test_circuit(300, 2);
  const Hypergraph hg = Hypergraph::from_circuit(c);
  partition::Partition bad;
  bad.k = 2;
  bad.assign.assign(c.size(), 5);  // part out of range
  EXPECT_THROW(cut_net(hg, bad), util::CheckError);
  EXPECT_THROW(connectivity_minus_one(hg, bad), util::CheckError);
}

// ----- coarsening ------------------------------------------------------

TEST(HgCoarsen, HierarchyInvariantsHold) {
  const auto c = test_circuit();
  HgCoarsenOptions opt;
  opt.threshold = 64;
  opt.seed = 3;
  opt.max_globule_weight = c.size() / 8;
  const HgHierarchy h = coarsen(c, opt);
  ASSERT_GE(h.levels.size(), 2u);
  check_hg_hierarchy_invariants(h);
  // Strictly shrinking levels, down to (or near) the threshold.
  std::size_t prev = h.base.num_vertices();
  for (const auto& lvl : h.levels) {
    EXPECT_LT(lvl.hg.num_vertices(), prev);
    prev = lvl.hg.num_vertices();
  }
}

TEST(HgCoarsen, GlobuleWeightCapRespected) {
  const auto c = test_circuit(2000, 7);
  HgCoarsenOptions opt;
  opt.threshold = 32;
  opt.max_globule_weight = 40;
  const HgHierarchy h = coarsen(c, opt);
  for (const auto& lvl : h.levels) {
    for (VertexId v = 0; v < lvl.hg.num_vertices(); ++v) {
      EXPECT_LE(lvl.hg.vertex_weight(v), 40u);
    }
  }
}

// ----- refinement ------------------------------------------------------

TEST(HgRefine, NeverIncreasesLambdaAndRespectsBalance) {
  const auto c = test_circuit(900, 11);
  const Hypergraph hg = Hypergraph::from_circuit(c);
  for (std::uint32_t k : {2u, 4u, 8u}) {
    auto p = random_partition(c.size(), k, 17);
    const auto before = connectivity_minus_one(hg, p);
    HgRefineOptions opt;
    opt.balance_tol = 0.05;
    const HgRefineResult r = refine_fm(hg, p, opt);
    EXPECT_EQ(r.lambda_before, before);
    EXPECT_EQ(r.lambda_after, connectivity_minus_one(hg, p));
    EXPECT_LE(r.lambda_after, r.lambda_before);
    // Random partitions are far from optimal: FM must find real gains.
    EXPECT_LT(r.lambda_after, before);
    EXPECT_LE(imbalance(hg, p), 1.06);
  }
}

// ----- the full partitioner --------------------------------------------

TEST(MultilevelHG, ValidBalancedPartition) {
  const auto c = test_circuit();
  const auto p = MultilevelHGPartitioner().run(c, 8, 1);
  p.validate(c.size());
  EXPECT_LE(partition::imbalance(c, p), 1.04);
  for (auto l : p.loads()) EXPECT_GT(l, 0u);
}

TEST(MultilevelHG, DeterministicBySeed) {
  const auto c = test_circuit();
  EXPECT_EQ(MultilevelHGPartitioner().run(c, 4, 9).assign,
            MultilevelHGPartitioner().run(c, 4, 9).assign);
  EXPECT_NE(MultilevelHGPartitioner().run(c, 4, 9).assign,
            MultilevelHGPartitioner().run(c, 4, 10).assign);
}

TEST(MultilevelHG, TraceShowsThreePhases) {
  const auto c = test_circuit();
  MultilevelHGTrace trace;
  const auto p = MultilevelHGPartitioner().run_traced(c, 4, 1, &trace);
  p.validate(c.size());
  ASSERT_GE(trace.level_sizes.size(), 1u);
  for (std::size_t i = 1; i < trace.level_sizes.size(); ++i) {
    EXPECT_LT(trace.level_sizes[i], trace.level_sizes[i - 1]);
  }
  EXPECT_EQ(trace.quality_after_level.size(), trace.level_sizes.size() + 1);
  EXPECT_EQ(trace.final_quality, trace.quality_after_level.back());
  EXPECT_LE(trace.quality_after_level.front(), trace.initial_quality);
}

TEST(MultilevelHG, TinyCircuitBelowThreshold) {
  circuit::GeneratorSpec spec;
  spec.num_comb_gates = 30;
  spec.num_inputs = 4;
  spec.num_outputs = 2;
  spec.num_dffs = 2;
  const auto c = circuit::generate(spec);
  const auto p = MultilevelHGPartitioner().run(c, 2, 1);
  p.validate(c.size());
}

TEST(MultilevelHG, BeatsGraphMultilevelOnLambda) {
  // The PR's acceptance criterion: on a >=10k-gate circuit at k=8 and
  // equal imbalance tolerance, optimizing λ−1 directly must reach a λ−1
  // volume no worse than the graph pipeline's (empirically ~2x better;
  // asserted with headroom so legal seed-to-seed variation can't flake).
  const auto c = circuit::make_iscas_like("s15850", 2000);
  ASSERT_GE(c.size(), 10000u);
  const Hypergraph hg = Hypergraph::from_circuit(c);
  const auto graph_p = partition::MultilevelPartitioner().run(c, 8, 1);
  const auto hg_p = MultilevelHGPartitioner().run(c, 8, 1);
  // Both pipelines run at the same default 3% tolerance.
  EXPECT_LE(partition::imbalance(c, hg_p), 1.04);
  EXPECT_LE(partition::imbalance(c, graph_p), 1.04);
  EXPECT_LE(connectivity_minus_one(hg, hg_p),
            connectivity_minus_one(hg, graph_p));
}

TEST(MultilevelHG, RegisteredInFrameworkRegistry) {
  const auto& names = framework::partitioner_names();
  EXPECT_NE(std::find(names.begin(), names.end(), "MultilevelHG"),
            names.end());
  const auto p = framework::make_partitioner("MultilevelHG");
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(p->name(), "MultilevelHG");
}

}  // namespace
}  // namespace pls::hypergraph
