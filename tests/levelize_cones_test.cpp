// Tests for levelization and cone analysis.

#include <gtest/gtest.h>

#include "circuit/cones.hpp"
#include "circuit/generator.hpp"
#include "circuit/levelize.hpp"

namespace pls::circuit {
namespace {

Circuit chain_circuit(int depth) {
  // a -> n0 -> n1 -> ... -> n(depth-1)
  Circuit c("chain");
  GateId prev = c.add_input("a");
  for (int i = 0; i < depth; ++i) {
    prev = c.add_gate("n" + std::to_string(i), GateType::kBuf, {prev});
  }
  c.mark_output(prev);
  c.freeze();
  return c;
}

TEST(Levelize, ChainLevelsAreSequential) {
  const Circuit c = chain_circuit(5);
  const auto lv = levelize(c);
  EXPECT_EQ(lv.max_level, 5u);
  EXPECT_EQ(lv.level[c.find("a")], 0u);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(lv.level[c.find("n" + std::to_string(i))],
              static_cast<std::uint32_t>(i + 1));
  }
  ASSERT_EQ(lv.by_level.size(), 6u);
  for (const auto& level : lv.by_level) EXPECT_EQ(level.size(), 1u);
}

TEST(Levelize, LongestPathWins) {
  // a -> g1 -> g2 ; g3 = AND(a, g2): level(g3) = 3 via the longer path.
  Circuit c;
  const GateId a = c.add_input("a");
  const GateId g1 = c.add_gate("g1", GateType::kBuf, {a});
  const GateId g2 = c.add_gate("g2", GateType::kNot, {g1});
  const GateId g3 = c.add_gate("g3", GateType::kAnd, {a, g2});
  c.freeze();
  const auto lv = levelize(c);
  EXPECT_EQ(lv.level[g3], 3u);
  EXPECT_EQ(lv.max_level, 3u);
}

TEST(Levelize, DffIsLevelZeroSource) {
  Circuit c;
  const GateId a = c.add_input("a");
  const GateId ff = c.add_gate("ff", GateType::kDff);
  const GateId g = c.add_gate("g", GateType::kAnd, {a, ff});
  c.connect(ff, g);  // feedback
  c.freeze();
  const auto lv = levelize(c);
  EXPECT_EQ(lv.level[ff], 0u);
  EXPECT_EQ(lv.level[g], 1u);
}

TEST(Levelize, EveryGateBelowFanoutUnlessDff) {
  const Circuit c = make_iscas_like("s5378", 5);
  const auto lv = levelize(c);
  for (GateId g = 0; g < c.size(); ++g) {
    for (GateId out : c.fanouts(g)) {
      if (c.type(out) == GateType::kDff) continue;
      EXPECT_LT(lv.level[g], lv.level[out]);
    }
  }
}

TEST(TopologicalOrder, IsValidOverCombinationalEdges) {
  const Circuit c = make_iscas_like("s5378", 5);
  const auto order = topological_order(c);
  ASSERT_EQ(order.size(), c.size());
  std::vector<std::size_t> pos(c.size());
  for (std::size_t i = 0; i < order.size(); ++i) pos[order[i]] = i;
  for (GateId g = 0; g < c.size(); ++g) {
    if (c.type(g) == GateType::kDff) continue;
    for (GateId f : c.fanins(g)) {
      EXPECT_LT(pos[f], pos[g]);
    }
  }
}

TEST(Cones, ChainConeIsSuffix) {
  const Circuit c = chain_circuit(4);
  const auto cone = fanout_cone(c, c.find("n1"));
  EXPECT_EQ(cone.size(), 3u);  // n1, n2, n3
}

TEST(Cones, FaninConeIsPrefix) {
  const Circuit c = chain_circuit(4);
  const auto cone = fanin_cone(c, c.find("n1"));
  EXPECT_EQ(cone.size(), 3u);  // n1, n0, a
}

TEST(Cones, StopsAtDffUnlessRequested) {
  // a -> g -> ff -> h : cone(a) without DFF traversal stops at ff.
  Circuit c;
  const GateId a = c.add_input("a");
  const GateId g = c.add_gate("g", GateType::kBuf, {a});
  const GateId ff = c.add_gate("ff", GateType::kDff, {g});
  c.add_gate("h", GateType::kNot, {ff});
  c.freeze();
  EXPECT_EQ(fanout_cone(c, a, false).size(), 3u);  // a, g, ff
  EXPECT_EQ(fanout_cone(c, a, true).size(), 4u);   // ... and h
}

TEST(Cones, DffRootStillExpands) {
  Circuit c;
  c.add_input("a");
  const GateId ff = c.add_gate("ff", GateType::kDff);
  const GateId g = c.add_gate("g", GateType::kNot, {ff});
  c.connect(ff, g);
  c.freeze();
  const auto cone = fanout_cone(c, ff, false);
  EXPECT_EQ(cone.size(), 2u);  // ff, g
}

TEST(Cones, InputConeSizesCoverInputs) {
  const Circuit c = make_iscas_like("s5378", 5);
  const auto sizes = input_cone_sizes(c);
  ASSERT_EQ(sizes.size(), c.primary_inputs().size());
  for (auto s : sizes) EXPECT_GE(s, 1u);
}

TEST(Cones, ConeContainsNoDuplicates) {
  const Circuit c = make_iscas_like("s5378", 7);
  auto cone = fanout_cone(c, c.primary_inputs()[0], true);
  const std::size_t n = cone.size();
  std::sort(cone.begin(), cone.end());
  cone.erase(std::unique(cone.begin(), cone.end()), cone.end());
  EXPECT_EQ(cone.size(), n);
}

}  // namespace
}  // namespace pls::circuit
