// Tests for the gate-level LP layer: exhaustive truth tables for
// eval_gate, behaviour of GateLp / DffLp / InputLp against a mock context,
// and the elaboration (build_model) port wiring.

#include <gtest/gtest.h>

#include <algorithm>
#include <tuple>
#include <vector>

#include "circuit/generator.hpp"
#include "logicsim/gate_eval.hpp"
#include "logicsim/netlist_lps.hpp"

namespace pls::logicsim {
namespace {

using circuit::GateType;
using warped::Event;
using warped::kTickPort;
using warped::LpId;
using warped::LpState;
using warped::SimTime;

// ---- eval_gate truth tables (parameterized sweep) --------------------------

struct EvalCase {
  GateType type;
  unsigned arity;
  std::uint64_t inputs;
  bool expected;
};

class EvalGateSweep : public ::testing::TestWithParam<EvalCase> {};

TEST_P(EvalGateSweep, MatchesTruthTable) {
  const auto [type, arity, inputs, expected] = GetParam();
  EXPECT_EQ(eval_gate(type, inputs, arity), expected);
}

INSTANTIATE_TEST_SUITE_P(
    TruthTables, EvalGateSweep,
    ::testing::Values(
        // BUF / NOT
        EvalCase{GateType::kBuf, 1, 0b0, false},
        EvalCase{GateType::kBuf, 1, 0b1, true},
        EvalCase{GateType::kNot, 1, 0b0, true},
        EvalCase{GateType::kNot, 1, 0b1, false},
        // AND2: only 11 -> 1
        EvalCase{GateType::kAnd, 2, 0b00, false},
        EvalCase{GateType::kAnd, 2, 0b01, false},
        EvalCase{GateType::kAnd, 2, 0b10, false},
        EvalCase{GateType::kAnd, 2, 0b11, true},
        // NAND2
        EvalCase{GateType::kNand, 2, 0b00, true},
        EvalCase{GateType::kNand, 2, 0b11, false},
        // OR2 / NOR2
        EvalCase{GateType::kOr, 2, 0b00, false},
        EvalCase{GateType::kOr, 2, 0b10, true},
        EvalCase{GateType::kNor, 2, 0b00, true},
        EvalCase{GateType::kNor, 2, 0b01, false},
        // XOR2 / XNOR2 (parity)
        EvalCase{GateType::kXor, 2, 0b00, false},
        EvalCase{GateType::kXor, 2, 0b01, true},
        EvalCase{GateType::kXor, 2, 0b10, true},
        EvalCase{GateType::kXor, 2, 0b11, false},
        EvalCase{GateType::kXnor, 2, 0b01, false},
        EvalCase{GateType::kXnor, 2, 0b11, true},
        // 3- and 4-input variants
        EvalCase{GateType::kAnd, 3, 0b111, true},
        EvalCase{GateType::kAnd, 3, 0b110, false},
        EvalCase{GateType::kNand, 4, 0b1111, false},
        EvalCase{GateType::kNand, 4, 0b0111, true},
        EvalCase{GateType::kOr, 4, 0b0000, false},
        EvalCase{GateType::kOr, 4, 0b0100, true},
        EvalCase{GateType::kNor, 3, 0b000, true},
        EvalCase{GateType::kXor, 3, 0b111, true},
        EvalCase{GateType::kXor, 3, 0b110, false}));

TEST(EvalGate, IgnoresBitsAboveArity) {
  // Garbage above the arity mask must not affect the result.
  EXPECT_TRUE(eval_gate(GateType::kAnd, 0xF3, 2));
  EXPECT_FALSE(eval_gate(GateType::kOr, 0xF0, 2));
}

TEST(EvalGate, ExhaustiveAndNandDuality) {
  for (unsigned arity = 1; arity <= 6; ++arity) {
    for (std::uint64_t in = 0; in < (1ull << arity); ++in) {
      EXPECT_NE(eval_gate(GateType::kAnd, in, arity),
                eval_gate(GateType::kNand, in, arity));
      EXPECT_NE(eval_gate(GateType::kOr, in, arity),
                eval_gate(GateType::kNor, in, arity));
      EXPECT_NE(eval_gate(GateType::kXor, in, arity),
                eval_gate(GateType::kXnor, in, arity));
    }
  }
}

// ---- mock context ----------------------------------------------------------

class MockContext final : public warped::Context {
 public:
  struct Sent {
    LpId target;
    SimTime recv_time;
    std::uint32_t port;
    std::uint64_t value;
    std::uint64_t mask;
  };

  SimTime now_v = 0;
  SimTime end_v = 1000;
  LpId self_v = 0;
  LpState state_v;
  std::vector<Sent> sent;

  SimTime now() const override { return now_v; }
  SimTime end_time() const override { return end_v; }
  LpId self() const override { return self_v; }
  LpState& state() override { return state_v; }
  void send(LpId target, SimTime recv_time, std::uint32_t port,
            std::uint64_t value, std::uint64_t mask) override {
    sent.push_back({target, recv_time, port, value, mask});
  }
};

Event port_event(std::uint32_t port, std::uint64_t value, SimTime t) {
  Event e;
  e.recv_time = t;
  e.port = port;
  e.value = value;
  return e;
}

Event tick_event(SimTime t) { return port_event(kTickPort, 0, t); }

TEST(GateLp, EmitsOnOutputChangeOnly) {
  GateLp g(GateType::kAnd, 2, {{7, 0}, {8, 1}}, /*delay=*/2);
  MockContext ctx;
  ctx.state_v = g.initial_state();

  // 01 -> output stays 0: no sends.
  ctx.now_v = 10;
  std::vector<Event> batch{port_event(0, 1, 10)};
  g.execute(ctx, batch);
  EXPECT_TRUE(ctx.sent.empty());
  EXPECT_FALSE(GateLp::output_of(ctx.state_v));

  // 11 -> output rises: one event per fanout port at t+delay.
  ctx.now_v = 20;
  batch = {port_event(1, 1, 20)};
  g.execute(ctx, batch);
  ASSERT_EQ(ctx.sent.size(), 2u);
  EXPECT_EQ(ctx.sent[0].target, 7u);
  EXPECT_EQ(ctx.sent[0].port, 0u);
  EXPECT_EQ(ctx.sent[0].recv_time, 22u);
  EXPECT_EQ(ctx.sent[0].value, 1u);
  EXPECT_EQ(ctx.sent[1].target, 8u);
  EXPECT_EQ(ctx.sent[1].port, 1u);
  EXPECT_TRUE(GateLp::output_of(ctx.state_v));
}

TEST(GateLp, BatchAppliesAllPortsAtOnce) {
  GateLp g(GateType::kAnd, 2, {{7, 0}}, 1);
  MockContext ctx;
  ctx.now_v = 5;
  std::vector<Event> batch{port_event(0, 1, 5), port_event(1, 1, 5)};
  g.execute(ctx, batch);
  ASSERT_EQ(ctx.sent.size(), 1u);  // single evaluation, single transition
  EXPECT_EQ(ctx.sent[0].value, 1u);
}

TEST(GateLp, PowerOnTickAnnouncesRisenOutput) {
  // NAND with all-zero inputs evaluates to 1 at power-on.
  GateLp g(GateType::kNand, 2, {{3, 0}}, 1);
  MockContext ctx;
  g.init(ctx);  // schedules the power-on tick
  ASSERT_EQ(ctx.sent.size(), 1u);
  EXPECT_EQ(ctx.sent[0].port, kTickPort);
  EXPECT_EQ(ctx.sent[0].recv_time, 0u);
  ctx.sent.clear();

  std::vector<Event> batch{tick_event(0)};
  ctx.now_v = 0;
  g.execute(ctx, batch);
  ASSERT_EQ(ctx.sent.size(), 1u);
  EXPECT_EQ(ctx.sent[0].value, 1u);
}

TEST(GateLp, SuppressesSendsBeyondEndTime) {
  GateLp g(GateType::kNot, 1, {{3, 0}}, 5);
  MockContext ctx;
  ctx.now_v = 998;
  ctx.end_v = 1000;
  std::vector<Event> batch{tick_event(998)};
  g.execute(ctx, batch);  // output rises but t+5 > end
  EXPECT_TRUE(ctx.sent.empty());
}

TEST(GateLp, RejectsIllegalArity) {
  EXPECT_THROW(GateLp(GateType::kAnd, 0, {}, 1), pls::util::CheckError);
  EXPECT_THROW(GateLp(GateType::kAnd, 65, {}, 1), pls::util::CheckError);
  EXPECT_THROW(GateLp(GateType::kAnd, 2, {}, 0), pls::util::CheckError);
}

TEST(DffLp, SamplesAtFirstEdgeAfterDataChange) {
  DffLp ff({{5, 0}}, /*period=*/10, /*phase=*/10, /*delay=*/1);
  MockContext ctx;

  // D rises at t=3: no output yet, but a sampling tick is armed for the
  // next clock edge (clock suppression — see DffLp::init).
  ctx.now_v = 3;
  std::vector<Event> batch{port_event(0, 1, 3)};
  ff.execute(ctx, batch);
  ASSERT_EQ(ctx.sent.size(), 1u);
  EXPECT_EQ(ctx.sent[0].port, kTickPort);
  EXPECT_EQ(ctx.sent[0].recv_time, 10u);
  EXPECT_FALSE(DffLp::q_of(ctx.state_v));
  ctx.sent.clear();

  // Clock edge at t=10: Q rises; no further tick until D changes again.
  ctx.now_v = 10;
  batch = {tick_event(10)};
  ff.execute(ctx, batch);
  ASSERT_EQ(ctx.sent.size(), 1u);
  EXPECT_EQ(ctx.sent[0].target, 5u);
  EXPECT_EQ(ctx.sent[0].recv_time, 11u);
  EXPECT_EQ(ctx.sent[0].value, 1u);
  EXPECT_TRUE(DffLp::q_of(ctx.state_v));
}

TEST(DffLp, EdgeComputationIsAligned) {
  DffLp ff({}, /*period=*/10, /*phase=*/5, /*delay=*/1);
  EXPECT_EQ(ff.next_edge_at_or_after(0), 5u);
  EXPECT_EQ(ff.next_edge_at_or_after(5), 5u);
  EXPECT_EQ(ff.next_edge_at_or_after(6), 15u);
  EXPECT_EQ(ff.next_edge_at_or_after(15), 15u);
  EXPECT_EQ(ff.next_edge_at_or_after(16), 25u);
}

TEST(DffLp, DataOnClockEdgeIsCaptured) {
  DffLp ff({{5, 0}}, 10, 10, 1);
  MockContext ctx;
  ctx.now_v = 10;
  // D event and tick in the same batch: data-first rule captures the 1.
  std::vector<Event> batch{tick_event(10), port_event(0, 1, 10)};
  ff.execute(ctx, batch);
  EXPECT_TRUE(DffLp::q_of(ctx.state_v));
}

TEST(DffLp, NoEmissionWhenQUnchanged) {
  DffLp ff({{5, 0}}, 10, 10, 1);
  MockContext ctx;
  ctx.now_v = 10;
  std::vector<Event> batch{tick_event(10)};  // D=0, Q=0
  ff.execute(ctx, batch);
  EXPECT_TRUE(ctx.sent.empty());  // no Q change, no tick re-armed
}

TEST(InputLp, VectorBitIsPureFunction) {
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(InputLp::vector_bit(7, 3, i), InputLp::vector_bit(7, 3, i));
  }
  // Different inputs / indices decorrelate.
  int diff = 0;
  for (int i = 0; i < 64; ++i) {
    diff += InputLp::vector_bit(7, 3, i) != InputLp::vector_bit(7, 4, i);
  }
  EXPECT_GT(diff, 10);
}

TEST(InputLp, AppliesVectorAndReschedules) {
  InputLp in({{2, 0}}, /*period=*/20, /*delay=*/1, /*seed=*/7);
  MockContext ctx;
  ctx.self_v = 9;
  ctx.now_v = 40;  // vector index 2
  std::vector<Event> batch{tick_event(40)};
  in.execute(ctx, batch);
  const bool expected = InputLp::vector_bit(7, 9, 2);
  // Sends the new value only if it changed from 0.
  if (expected) {
    ASSERT_EQ(ctx.sent.size(), 2u);
    EXPECT_EQ(ctx.sent[0].value, 1u);
    EXPECT_EQ(ctx.sent[0].recv_time, 41u);
    EXPECT_EQ(ctx.sent[1].port, kTickPort);
  } else {
    ASSERT_EQ(ctx.sent.size(), 1u);
    EXPECT_EQ(ctx.sent[0].port, kTickPort);
  }
  EXPECT_EQ(ctx.sent.back().recv_time, 60u);
}

// ---- batched (bit-parallel) engine -----------------------------------------

Event masked_event(std::uint32_t port, std::uint64_t value,
                   std::uint64_t mask, SimTime t) {
  Event e = port_event(port, value, t);
  e.mask = mask;
  return e;
}

TEST(Lanes, SeedAndMaskContract) {
  EXPECT_EQ(lane_seed(7, 0), 7u);  // lane 0 replays the base-seed run
  for (unsigned j = 1; j < kMaxLanes; ++j) {
    EXPECT_NE(lane_seed(7, j), lane_seed(7, j - 1));
  }
  EXPECT_EQ(lane_mask(1), 1u);
  EXPECT_EQ(lane_mask(3), 0b111u);
  EXPECT_EQ(lane_mask(64), ~std::uint64_t{0});
}

TEST(EvalGateWord, MatchesScalarEvalLaneByLane) {
  // The word evaluator is 64 scalar evaluators in parallel: for every gate
  // type and arity, lane j of the word result equals eval_gate applied to
  // lane j's packed input bits.
  const GateType types[] = {GateType::kBuf,  GateType::kNot,
                            GateType::kAnd,  GateType::kNand,
                            GateType::kOr,   GateType::kNor,
                            GateType::kXor,  GateType::kXnor};
  std::uint64_t x = 0x243f6a8885a308d3ULL;  // deterministic input stream
  auto next = [&x] {
    x ^= x << 13; x ^= x >> 7; x ^= x << 17;
    return x;
  };
  for (GateType type : types) {
    const unsigned max_arity =
        (type == GateType::kBuf || type == GateType::kNot) ? 1 : 4;
    for (unsigned arity = 1; arity <= max_arity; ++arity) {
      std::uint64_t inputs[4] = {};
      for (unsigned p = 0; p < arity; ++p) inputs[p] = next();
      const std::uint64_t word = eval_gate_word(type, inputs, arity);
      for (unsigned lane = 0; lane < 64; ++lane) {
        std::uint64_t packed = 0;
        for (unsigned p = 0; p < arity; ++p) {
          packed |= ((inputs[p] >> lane) & 1) << p;
        }
        EXPECT_EQ((word >> lane) & 1,
                  std::uint64_t{eval_gate(type, packed, arity)})
            << "type " << static_cast<int>(type) << " arity " << arity
            << " lane " << lane;
      }
    }
  }
}

TEST(BatchGateLp, MaskedApplicationAndDiffGatedEmission) {
  BatchGateLp g(GateType::kAnd, 2, {{7, 0}}, /*delay=*/2, /*lanes=*/64);
  MockContext ctx;
  ctx.state_v = g.initial_state();
  ASSERT_EQ(ctx.state_v.w.size(), 2u);

  // Port 0 rises on lanes 0-3 only; AND output stays all-zero: no send.
  ctx.now_v = 5;
  std::vector<Event> batch{masked_event(0, ~std::uint64_t{0}, 0xF, 5)};
  g.execute(ctx, batch);
  EXPECT_EQ(ctx.state_v.w[0], 0xFu);  // masked application, not the word
  EXPECT_TRUE(ctx.sent.empty());

  // Port 1 rises on lanes 0-7: output rises exactly where both are 1,
  // and the change mask is the lanes that actually flipped.
  ctx.now_v = 6;
  batch = {masked_event(1, ~std::uint64_t{0}, 0xFF, 6)};
  g.execute(ctx, batch);
  ASSERT_EQ(ctx.sent.size(), 1u);
  EXPECT_EQ(ctx.sent[0].value, 0xFu);
  EXPECT_EQ(ctx.sent[0].mask, 0xFu);
  EXPECT_EQ(ctx.sent[0].recv_time, 8u);

  // Lane 0 alone drops: only lane 0 appears in the next change mask.
  ctx.now_v = 9;
  batch = {masked_event(0, 0, 0b1, 9)};
  g.execute(ctx, batch);
  ASSERT_EQ(ctx.sent.size(), 2u);
  EXPECT_EQ(ctx.sent[1].value, 0xEu);
  EXPECT_EQ(ctx.sent[1].mask, 0b1u);
}

TEST(BatchGateLp, StuckAtForcesOnlyItsLane) {
  // BUF with lane 1 stuck at 1: power-on announces the forced lane, and
  // later input changes ripple through lane 0 while lane 1 never moves.
  BatchGateLp g(GateType::kBuf, 1, {{3, 0}}, 1, /*lanes=*/2,
                /*sa_mask=*/{0b10}, /*sa_value=*/{0b10});
  MockContext ctx;
  ctx.state_v = g.initial_state();
  ctx.now_v = 0;
  std::vector<Event> batch{tick_event(0)};
  g.execute(ctx, batch);
  ASSERT_EQ(ctx.sent.size(), 1u);
  EXPECT_EQ(ctx.sent[0].value, 0b10u);
  EXPECT_EQ(ctx.sent[0].mask, 0b10u);

  ctx.now_v = 5;
  batch = {masked_event(0, 0b11, 0b11, 5)};
  g.execute(ctx, batch);
  ASSERT_EQ(ctx.sent.size(), 2u);
  EXPECT_EQ(ctx.sent[1].value, 0b11u);
  EXPECT_EQ(ctx.sent[1].mask, 0b01u);  // lane 1 was already forced to 1
}

TEST(BatchDffLp, TickSamplesOnlyArmedLanes) {
  BatchDffLp ff({{5, 0}}, /*period=*/10, /*phase=*/10, /*delay=*/1,
                /*lanes=*/64);
  MockContext ctx;
  ctx.state_v = ff.initial_state();
  ASSERT_EQ(ctx.state_v.w.size(), 1u);

  // Lane 1's D rises at t=15: lane 1 is armed and a tick pends at t=20.
  ctx.now_v = 15;
  std::vector<Event> batch{masked_event(0, 0b10, 0b10, 15)};
  ff.execute(ctx, batch);
  ASSERT_EQ(ctx.sent.size(), 1u);
  EXPECT_EQ(ctx.sent[0].port, kTickPort);
  EXPECT_EQ(ctx.sent[0].recv_time, 20u);
  EXPECT_EQ(ctx.state_v.w[0], 0b10u);
  ctx.sent.clear();

  // At the t=20 edge lane 2's D changes in the same batch.  Lane 1 armed
  // this edge and samples; lane 2 did not — its scalar twin would capture
  // one period later, so it re-arms t=30 instead of sampling now.
  ctx.now_v = 20;
  batch = {tick_event(20), masked_event(0, 0b100, 0b100, 20)};
  ff.execute(ctx, batch);
  ASSERT_EQ(ctx.sent.size(), 2u);
  EXPECT_EQ(ctx.sent[0].port, kTickPort);  // re-armed for lane 2
  EXPECT_EQ(ctx.sent[0].recv_time, 30u);
  EXPECT_EQ(ctx.sent[1].target, 5u);
  EXPECT_EQ(ctx.sent[1].value, 0b10u);  // Q: only lane 1 captured
  EXPECT_EQ(ctx.sent[1].mask, 0b10u);
  EXPECT_EQ(ctx.state_v.w[0], 0b100u);
  ctx.sent.clear();

  // t=30: lane 2 finally samples; no lane re-arms.
  ctx.now_v = 30;
  batch = {tick_event(30)};
  ff.execute(ctx, batch);
  ASSERT_EQ(ctx.sent.size(), 1u);
  EXPECT_EQ(ctx.sent[0].value, 0b110u);
  EXPECT_EQ(ctx.sent[0].mask, 0b100u);
  EXPECT_EQ(ctx.state_v.w[0], 0u);
}

TEST(BatchDffLp, PhaseEdgeSamplesEveryLane) {
  // The init edge is the one tick every scalar run owns: all lanes sample.
  BatchDffLp ff({{5, 0}}, 10, 10, 1, /*lanes=*/64);
  MockContext ctx;
  ctx.state_v = ff.initial_state();
  ctx.now_v = 10;
  std::vector<Event> batch{tick_event(10),
                           masked_event(0, 0b101, 0b101, 10)};
  ff.execute(ctx, batch);
  ASSERT_EQ(ctx.sent.size(), 1u);  // no re-arm: everyone sampled
  EXPECT_EQ(ctx.sent[0].value, 0b101u);
  EXPECT_EQ(ctx.sent[0].mask, 0b101u);
}

TEST(BatchInputLp, VectorWordPacksPerLaneSeeds) {
  for (std::uint64_t n = 0; n < 8; ++n) {
    const std::uint64_t w =
        BatchInputLp::vector_word(/*seed=*/7, /*lp=*/3, n, /*lanes=*/8,
                                  /*uniform=*/false);
    EXPECT_LT(w, 1u << 8);  // lanes above the count stay clear
    for (unsigned j = 0; j < 8; ++j) {
      EXPECT_EQ((w >> j) & 1,
                std::uint64_t{InputLp::vector_bit(lane_seed(7, j), 3, n)})
          << "vector " << n << " lane " << j;
    }
    // Uniform mode broadcasts the base-seed bit to every lane.
    const std::uint64_t u =
        BatchInputLp::vector_word(7, 3, n, 8, /*uniform=*/true);
    EXPECT_EQ(u, InputLp::vector_bit(7, 3, n) ? lane_mask(8)
                                              : std::uint64_t{0});
  }
}

TEST(Lanes, SampleFaultsPicksDistinctSites) {
  const auto c = circuit::make_iscas_like("s5378", 3);
  const auto faults = sample_faults(c, 63, /*seed=*/11);
  ASSERT_EQ(faults.size(), 63u);
  std::vector<circuit::GateId> gates;
  for (const auto& f : faults) gates.push_back(f.gate);
  std::sort(gates.begin(), gates.end());
  EXPECT_EQ(std::adjacent_find(gates.begin(), gates.end()), gates.end());
}

// ---- elaboration -----------------------------------------------------------

TEST(BuildModel, OneLpPerGateWithCorrectKinds) {
  const auto c = circuit::make_iscas_like("s5378", 3);
  const SimModel model = build_model(c);
  ASSERT_EQ(model.lps.size(), c.size());
  for (circuit::GateId g = 0; g < c.size(); ++g) {
    auto* lp = model.lps[g].get();
    switch (c.type(g)) {
      case GateType::kInput:
        EXPECT_NE(dynamic_cast<InputLp*>(lp), nullptr);
        break;
      case GateType::kDff:
        EXPECT_NE(dynamic_cast<DffLp*>(lp), nullptr);
        break;
      default:
        EXPECT_NE(dynamic_cast<GateLp*>(lp), nullptr);
    }
  }
}

TEST(BuildModel, PortWiringMatchesFaninIndices) {
  // b drives g on port 1 (second fanin).
  circuit::Circuit c;
  const auto a = c.add_input("a");
  const auto b = c.add_input("b");
  const auto g = c.add_gate("g", GateType::kAnd, {a, b});
  c.freeze();
  const SimModel model = build_model(c);

  // Drive b's LP with a tick and observe where it sends: port 1 of g.
  MockContext ctx;
  ctx.self_v = b;
  ctx.now_v = 0;
  // Force a change: vector_bit may be 0; try a few vector indices.
  bool sent_something = false;
  for (int vec = 0; vec < 8 && !sent_something; ++vec) {
    ctx.now_v = vec * 20;
    std::vector<Event> batch{tick_event(ctx.now_v)};
    model.lps[b]->execute(ctx, batch);
    for (const auto& s : ctx.sent) {
      if (s.port != kTickPort) {
        EXPECT_EQ(s.target, g);
        EXPECT_EQ(s.port, 1u);
        sent_something = true;
      }
    }
  }
  EXPECT_TRUE(sent_something);
}

TEST(BuildModel, RequiresFrozenCircuit) {
  circuit::Circuit c;
  c.add_input("a");
  EXPECT_THROW(build_model(c), pls::util::CheckError);
}

TEST(BuildModel, LanesElaborateBatchedBehaviours) {
  const auto c = circuit::make_iscas_like("s5378", 3);
  ModelOptions opt;
  opt.lanes = 4;
  const SimModel model = build_model(c, opt);
  for (circuit::GateId g = 0; g < c.size(); ++g) {
    auto* lp = model.lps[g].get();
    switch (c.type(g)) {
      case GateType::kInput:
        EXPECT_NE(dynamic_cast<BatchInputLp*>(lp), nullptr);
        break;
      case GateType::kDff:
        EXPECT_NE(dynamic_cast<BatchDffLp*>(lp), nullptr);
        break;
      default:
        EXPECT_NE(dynamic_cast<BatchGateLp*>(lp), nullptr);
    }
  }
}

TEST(BuildModel, ValidatesLaneAndFaultConfiguration) {
  const auto c = circuit::make_iscas_like("s5378", 3);
  ModelOptions opt;
  opt.lanes = kMaxLanes + 1;
  EXPECT_THROW(build_model(c, opt), pls::util::CheckError);
  opt.lanes = 0;
  EXPECT_THROW(build_model(c, opt), pls::util::CheckError);
  opt.lanes = 65;  // multi-word widths are legal up to kMaxLanes
  EXPECT_NO_THROW(build_model(c, opt));
  opt.lanes = kMaxLanes;
  EXPECT_NO_THROW(build_model(c, opt));

  // Faults need lanes >= faults + 1 (lane 0 is the fault-free reference).
  opt.lanes = 1;
  opt.faults = {StuckAtFault{0, true}};
  EXPECT_THROW(build_model(c, opt), pls::util::CheckError);
  opt.lanes = 2;
  opt.faults = {StuckAtFault{0, true}, StuckAtFault{1, false}};
  EXPECT_THROW(build_model(c, opt), pls::util::CheckError);
  opt.lanes = 3;
  EXPECT_NO_THROW(build_model(c, opt));
  // A fault site outside the circuit is rejected.
  opt.faults = {StuckAtFault{static_cast<circuit::GateId>(c.size()), true}};
  EXPECT_THROW(build_model(c, opt), pls::util::CheckError);
}

}  // namespace
}  // namespace pls::logicsim
