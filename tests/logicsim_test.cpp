// Tests for the gate-level LP layer: exhaustive truth tables for
// eval_gate, behaviour of GateLp / DffLp / InputLp against a mock context,
// and the elaboration (build_model) port wiring.

#include <gtest/gtest.h>

#include <tuple>
#include <vector>

#include "circuit/generator.hpp"
#include "logicsim/gate_eval.hpp"
#include "logicsim/netlist_lps.hpp"

namespace pls::logicsim {
namespace {

using circuit::GateType;
using warped::Event;
using warped::kTickPort;
using warped::LpId;
using warped::LpState;
using warped::SimTime;

// ---- eval_gate truth tables (parameterized sweep) --------------------------

struct EvalCase {
  GateType type;
  unsigned arity;
  std::uint64_t inputs;
  bool expected;
};

class EvalGateSweep : public ::testing::TestWithParam<EvalCase> {};

TEST_P(EvalGateSweep, MatchesTruthTable) {
  const auto [type, arity, inputs, expected] = GetParam();
  EXPECT_EQ(eval_gate(type, inputs, arity), expected);
}

INSTANTIATE_TEST_SUITE_P(
    TruthTables, EvalGateSweep,
    ::testing::Values(
        // BUF / NOT
        EvalCase{GateType::kBuf, 1, 0b0, false},
        EvalCase{GateType::kBuf, 1, 0b1, true},
        EvalCase{GateType::kNot, 1, 0b0, true},
        EvalCase{GateType::kNot, 1, 0b1, false},
        // AND2: only 11 -> 1
        EvalCase{GateType::kAnd, 2, 0b00, false},
        EvalCase{GateType::kAnd, 2, 0b01, false},
        EvalCase{GateType::kAnd, 2, 0b10, false},
        EvalCase{GateType::kAnd, 2, 0b11, true},
        // NAND2
        EvalCase{GateType::kNand, 2, 0b00, true},
        EvalCase{GateType::kNand, 2, 0b11, false},
        // OR2 / NOR2
        EvalCase{GateType::kOr, 2, 0b00, false},
        EvalCase{GateType::kOr, 2, 0b10, true},
        EvalCase{GateType::kNor, 2, 0b00, true},
        EvalCase{GateType::kNor, 2, 0b01, false},
        // XOR2 / XNOR2 (parity)
        EvalCase{GateType::kXor, 2, 0b00, false},
        EvalCase{GateType::kXor, 2, 0b01, true},
        EvalCase{GateType::kXor, 2, 0b10, true},
        EvalCase{GateType::kXor, 2, 0b11, false},
        EvalCase{GateType::kXnor, 2, 0b01, false},
        EvalCase{GateType::kXnor, 2, 0b11, true},
        // 3- and 4-input variants
        EvalCase{GateType::kAnd, 3, 0b111, true},
        EvalCase{GateType::kAnd, 3, 0b110, false},
        EvalCase{GateType::kNand, 4, 0b1111, false},
        EvalCase{GateType::kNand, 4, 0b0111, true},
        EvalCase{GateType::kOr, 4, 0b0000, false},
        EvalCase{GateType::kOr, 4, 0b0100, true},
        EvalCase{GateType::kNor, 3, 0b000, true},
        EvalCase{GateType::kXor, 3, 0b111, true},
        EvalCase{GateType::kXor, 3, 0b110, false}));

TEST(EvalGate, IgnoresBitsAboveArity) {
  // Garbage above the arity mask must not affect the result.
  EXPECT_TRUE(eval_gate(GateType::kAnd, 0xF3, 2));
  EXPECT_FALSE(eval_gate(GateType::kOr, 0xF0, 2));
}

TEST(EvalGate, ExhaustiveAndNandDuality) {
  for (unsigned arity = 1; arity <= 6; ++arity) {
    for (std::uint64_t in = 0; in < (1ull << arity); ++in) {
      EXPECT_NE(eval_gate(GateType::kAnd, in, arity),
                eval_gate(GateType::kNand, in, arity));
      EXPECT_NE(eval_gate(GateType::kOr, in, arity),
                eval_gate(GateType::kNor, in, arity));
      EXPECT_NE(eval_gate(GateType::kXor, in, arity),
                eval_gate(GateType::kXnor, in, arity));
    }
  }
}

// ---- mock context ----------------------------------------------------------

class MockContext final : public warped::Context {
 public:
  struct Sent {
    LpId target;
    SimTime recv_time;
    std::uint32_t port;
    std::uint64_t value;
  };

  SimTime now_v = 0;
  SimTime end_v = 1000;
  LpId self_v = 0;
  LpState state_v;
  std::vector<Sent> sent;

  SimTime now() const override { return now_v; }
  SimTime end_time() const override { return end_v; }
  LpId self() const override { return self_v; }
  LpState& state() override { return state_v; }
  void send(LpId target, SimTime recv_time, std::uint32_t port,
            std::uint64_t value) override {
    sent.push_back({target, recv_time, port, value});
  }
};

Event port_event(std::uint32_t port, std::uint64_t value, SimTime t) {
  Event e;
  e.recv_time = t;
  e.port = port;
  e.value = value;
  return e;
}

Event tick_event(SimTime t) { return port_event(kTickPort, 0, t); }

TEST(GateLp, EmitsOnOutputChangeOnly) {
  GateLp g(GateType::kAnd, 2, {{7, 0}, {8, 1}}, /*delay=*/2);
  MockContext ctx;
  ctx.state_v = g.initial_state();

  // 01 -> output stays 0: no sends.
  ctx.now_v = 10;
  std::vector<Event> batch{port_event(0, 1, 10)};
  g.execute(ctx, batch);
  EXPECT_TRUE(ctx.sent.empty());
  EXPECT_FALSE(GateLp::output_of(ctx.state_v));

  // 11 -> output rises: one event per fanout port at t+delay.
  ctx.now_v = 20;
  batch = {port_event(1, 1, 20)};
  g.execute(ctx, batch);
  ASSERT_EQ(ctx.sent.size(), 2u);
  EXPECT_EQ(ctx.sent[0].target, 7u);
  EXPECT_EQ(ctx.sent[0].port, 0u);
  EXPECT_EQ(ctx.sent[0].recv_time, 22u);
  EXPECT_EQ(ctx.sent[0].value, 1u);
  EXPECT_EQ(ctx.sent[1].target, 8u);
  EXPECT_EQ(ctx.sent[1].port, 1u);
  EXPECT_TRUE(GateLp::output_of(ctx.state_v));
}

TEST(GateLp, BatchAppliesAllPortsAtOnce) {
  GateLp g(GateType::kAnd, 2, {{7, 0}}, 1);
  MockContext ctx;
  ctx.now_v = 5;
  std::vector<Event> batch{port_event(0, 1, 5), port_event(1, 1, 5)};
  g.execute(ctx, batch);
  ASSERT_EQ(ctx.sent.size(), 1u);  // single evaluation, single transition
  EXPECT_EQ(ctx.sent[0].value, 1u);
}

TEST(GateLp, PowerOnTickAnnouncesRisenOutput) {
  // NAND with all-zero inputs evaluates to 1 at power-on.
  GateLp g(GateType::kNand, 2, {{3, 0}}, 1);
  MockContext ctx;
  g.init(ctx);  // schedules the power-on tick
  ASSERT_EQ(ctx.sent.size(), 1u);
  EXPECT_EQ(ctx.sent[0].port, kTickPort);
  EXPECT_EQ(ctx.sent[0].recv_time, 0u);
  ctx.sent.clear();

  std::vector<Event> batch{tick_event(0)};
  ctx.now_v = 0;
  g.execute(ctx, batch);
  ASSERT_EQ(ctx.sent.size(), 1u);
  EXPECT_EQ(ctx.sent[0].value, 1u);
}

TEST(GateLp, SuppressesSendsBeyondEndTime) {
  GateLp g(GateType::kNot, 1, {{3, 0}}, 5);
  MockContext ctx;
  ctx.now_v = 998;
  ctx.end_v = 1000;
  std::vector<Event> batch{tick_event(998)};
  g.execute(ctx, batch);  // output rises but t+5 > end
  EXPECT_TRUE(ctx.sent.empty());
}

TEST(GateLp, RejectsIllegalArity) {
  EXPECT_THROW(GateLp(GateType::kAnd, 0, {}, 1), pls::util::CheckError);
  EXPECT_THROW(GateLp(GateType::kAnd, 65, {}, 1), pls::util::CheckError);
  EXPECT_THROW(GateLp(GateType::kAnd, 2, {}, 0), pls::util::CheckError);
}

TEST(DffLp, SamplesAtFirstEdgeAfterDataChange) {
  DffLp ff({{5, 0}}, /*period=*/10, /*phase=*/10, /*delay=*/1);
  MockContext ctx;

  // D rises at t=3: no output yet, but a sampling tick is armed for the
  // next clock edge (clock suppression — see DffLp::init).
  ctx.now_v = 3;
  std::vector<Event> batch{port_event(0, 1, 3)};
  ff.execute(ctx, batch);
  ASSERT_EQ(ctx.sent.size(), 1u);
  EXPECT_EQ(ctx.sent[0].port, kTickPort);
  EXPECT_EQ(ctx.sent[0].recv_time, 10u);
  EXPECT_FALSE(DffLp::q_of(ctx.state_v));
  ctx.sent.clear();

  // Clock edge at t=10: Q rises; no further tick until D changes again.
  ctx.now_v = 10;
  batch = {tick_event(10)};
  ff.execute(ctx, batch);
  ASSERT_EQ(ctx.sent.size(), 1u);
  EXPECT_EQ(ctx.sent[0].target, 5u);
  EXPECT_EQ(ctx.sent[0].recv_time, 11u);
  EXPECT_EQ(ctx.sent[0].value, 1u);
  EXPECT_TRUE(DffLp::q_of(ctx.state_v));
}

TEST(DffLp, EdgeComputationIsAligned) {
  DffLp ff({}, /*period=*/10, /*phase=*/5, /*delay=*/1);
  EXPECT_EQ(ff.next_edge_at_or_after(0), 5u);
  EXPECT_EQ(ff.next_edge_at_or_after(5), 5u);
  EXPECT_EQ(ff.next_edge_at_or_after(6), 15u);
  EXPECT_EQ(ff.next_edge_at_or_after(15), 15u);
  EXPECT_EQ(ff.next_edge_at_or_after(16), 25u);
}

TEST(DffLp, DataOnClockEdgeIsCaptured) {
  DffLp ff({{5, 0}}, 10, 10, 1);
  MockContext ctx;
  ctx.now_v = 10;
  // D event and tick in the same batch: data-first rule captures the 1.
  std::vector<Event> batch{tick_event(10), port_event(0, 1, 10)};
  ff.execute(ctx, batch);
  EXPECT_TRUE(DffLp::q_of(ctx.state_v));
}

TEST(DffLp, NoEmissionWhenQUnchanged) {
  DffLp ff({{5, 0}}, 10, 10, 1);
  MockContext ctx;
  ctx.now_v = 10;
  std::vector<Event> batch{tick_event(10)};  // D=0, Q=0
  ff.execute(ctx, batch);
  EXPECT_TRUE(ctx.sent.empty());  // no Q change, no tick re-armed
}

TEST(InputLp, VectorBitIsPureFunction) {
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(InputLp::vector_bit(7, 3, i), InputLp::vector_bit(7, 3, i));
  }
  // Different inputs / indices decorrelate.
  int diff = 0;
  for (int i = 0; i < 64; ++i) {
    diff += InputLp::vector_bit(7, 3, i) != InputLp::vector_bit(7, 4, i);
  }
  EXPECT_GT(diff, 10);
}

TEST(InputLp, AppliesVectorAndReschedules) {
  InputLp in({{2, 0}}, /*period=*/20, /*delay=*/1, /*seed=*/7);
  MockContext ctx;
  ctx.self_v = 9;
  ctx.now_v = 40;  // vector index 2
  std::vector<Event> batch{tick_event(40)};
  in.execute(ctx, batch);
  const bool expected = InputLp::vector_bit(7, 9, 2);
  // Sends the new value only if it changed from 0.
  if (expected) {
    ASSERT_EQ(ctx.sent.size(), 2u);
    EXPECT_EQ(ctx.sent[0].value, 1u);
    EXPECT_EQ(ctx.sent[0].recv_time, 41u);
    EXPECT_EQ(ctx.sent[1].port, kTickPort);
  } else {
    ASSERT_EQ(ctx.sent.size(), 1u);
    EXPECT_EQ(ctx.sent[0].port, kTickPort);
  }
  EXPECT_EQ(ctx.sent.back().recv_time, 60u);
}

// ---- elaboration -----------------------------------------------------------

TEST(BuildModel, OneLpPerGateWithCorrectKinds) {
  const auto c = circuit::make_iscas_like("s5378", 3);
  const SimModel model = build_model(c);
  ASSERT_EQ(model.lps.size(), c.size());
  for (circuit::GateId g = 0; g < c.size(); ++g) {
    auto* lp = model.lps[g].get();
    switch (c.type(g)) {
      case GateType::kInput:
        EXPECT_NE(dynamic_cast<InputLp*>(lp), nullptr);
        break;
      case GateType::kDff:
        EXPECT_NE(dynamic_cast<DffLp*>(lp), nullptr);
        break;
      default:
        EXPECT_NE(dynamic_cast<GateLp*>(lp), nullptr);
    }
  }
}

TEST(BuildModel, PortWiringMatchesFaninIndices) {
  // b drives g on port 1 (second fanin).
  circuit::Circuit c;
  const auto a = c.add_input("a");
  const auto b = c.add_input("b");
  const auto g = c.add_gate("g", GateType::kAnd, {a, b});
  c.freeze();
  const SimModel model = build_model(c);

  // Drive b's LP with a tick and observe where it sends: port 1 of g.
  MockContext ctx;
  ctx.self_v = b;
  ctx.now_v = 0;
  // Force a change: vector_bit may be 0; try a few vector indices.
  bool sent_something = false;
  for (int vec = 0; vec < 8 && !sent_something; ++vec) {
    ctx.now_v = vec * 20;
    std::vector<Event> batch{tick_event(ctx.now_v)};
    model.lps[b]->execute(ctx, batch);
    for (const auto& s : ctx.sent) {
      if (s.port != kTickPort) {
        EXPECT_EQ(s.target, g);
        EXPECT_EQ(s.port, 1u);
        sent_something = true;
      }
    }
  }
  EXPECT_TRUE(sent_something);
}

TEST(BuildModel, RequiresFrozenCircuit) {
  circuit::Circuit c;
  c.add_input("a");
  EXPECT_THROW(build_model(c), pls::util::CheckError);
}

}  // namespace
}  // namespace pls::logicsim
