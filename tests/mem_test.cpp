// Arena pool + Words unit and property tests (src/mem/): slot alignment,
// free-list recycling, exhaustion degradation, cross-thread reclamation
// and the O(1)-synchronization run-reclaim contract the Time Warp fossil
// collector and rollback path rely on.

#include <gtest/gtest.h>

#include <cstdint>
#include <thread>
#include <vector>

#include "mem/pool.hpp"
#include "mem/words.hpp"

namespace pls::mem {
namespace {

std::uintptr_t addr(const void* p) {
  return reinterpret_cast<std::uintptr_t>(p);
}

TEST(Pool, SlotsStartOnCacheLines) {
  Pool pool;
  // Every class, several blocks each: headers land on 64-byte boundaries
  // and payloads directly behind the 16-byte header.
  for (std::uint32_t n : {1u, 6u, 7u, 14u, 30u, 62u, 126u}) {
    for (int i = 0; i < 4; ++i) {
      BlockHeader* h = pool.alloc(n);
      EXPECT_EQ(addr(h) % 64, 0u) << "n=" << n;
      EXPECT_EQ(addr(payload_of(h)), addr(h) + sizeof(BlockHeader));
      EXPECT_GE(h->words, n);
      EXPECT_EQ(h->owner, &pool);
      pool.free_local(h);
    }
  }
}

TEST(Pool, ClassForRoundsUpAndOverflowsToHeap) {
  EXPECT_EQ(Pool::class_for(1), 0u);
  EXPECT_EQ(Pool::class_for(6), 0u);
  EXPECT_EQ(Pool::class_for(7), 1u);
  EXPECT_EQ(Pool::class_for(126), 4u);
  EXPECT_EQ(Pool::class_for(127), Pool::kHeapClass);
}

TEST(Pool, RecyclesFreedBlocksWithoutNewCarves) {
  Pool pool;
  BlockHeader* h = pool.alloc(14);
  pool.free_local(h);
  const PoolStats before = pool.snapshot();
  // Same class alloc must reuse the very slot just freed (LIFO list).
  BlockHeader* again = pool.alloc(10);
  EXPECT_EQ(again, h);
  const PoolStats after = pool.snapshot();
  EXPECT_EQ(after.carved, before.carved);
  EXPECT_EQ(after.recycled, before.recycled + 1);
  pool.free_local(again);
}

TEST(Pool, ExhaustionDegradesToHeapFallback) {
  PoolConfig cfg;
  cfg.slab_bytes = 4096;
  cfg.max_slabs = 1;  // one slab, then the budget is gone
  Pool pool(cfg);
  std::vector<BlockHeader*> blocks;
  // 126-word blocks stride 1 KiB: a 4 KiB slab holds exactly 4.
  for (int i = 0; i < 4; ++i) blocks.push_back(pool.alloc(126));
  for (BlockHeader* h : blocks) EXPECT_EQ(h->owner, &pool);

  BlockHeader* overflow = pool.alloc(126);
  EXPECT_EQ(overflow->owner, nullptr) << "budget exhaustion must degrade";
  EXPECT_EQ(overflow->cls, Pool::kHeapClass);
  const PoolStats s = pool.snapshot();
  EXPECT_EQ(s.slabs, 1u);
  EXPECT_GE(s.heap_fallbacks, 1u);

  // Heap-fallback payloads free through the same entry point.
  free_words(payload_of(overflow));
  for (BlockHeader* h : blocks) pool.free_local(h);
  // With slots back on the free list the pool serves pooled blocks again.
  BlockHeader* reused = pool.alloc(126);
  EXPECT_EQ(reused->owner, &pool);
  pool.free_local(reused);
}

TEST(Pool, OversizeRequestsBypassThePool) {
  Pool pool;
  PoolScope scope(&pool);
  std::uint64_t* p = alloc_words(Pool::kMaxPooledWords + 1);
  EXPECT_EQ(header_of(p)->owner, nullptr);
  free_words(p);
  EXPECT_EQ(pool.snapshot().heap_fallbacks, 1u);
}

TEST(Pool, CrossThreadFreeRoutesHomeThroughRemoteStack) {
  Pool pool;
  std::uint64_t* payloads[8];
  {
    PoolScope scope(&pool);
    for (auto& p : payloads) p = alloc_words(30);
  }
  // A foreign thread (no pool installed) frees them one by one: each free
  // is a lock-free push onto the owner's remote stack.
  std::thread t([&] {
    for (auto* p : payloads) free_words(p);
  });
  t.join();
  PoolStats s = pool.snapshot();
  EXPECT_EQ(s.remote_blocks, 8u);
  EXPECT_EQ(s.remote_splices, 8u);  // no batching without a ReclaimScope
  EXPECT_EQ(s.local_frees, 0u);

  // The owner's next dry alloc drains the stack and recycles.
  PoolScope scope(&pool);
  std::uint64_t* p = alloc_words(30);
  EXPECT_EQ(pool.snapshot().recycled, 1u);
  free_words(p);
}

TEST(Pool, ReclaimScopeSplicesARunInOneCas) {
  // The rollback/fossil O(1) contract: releasing a run of K pooled blocks
  // under a ReclaimScope costs one remote splice per owning pool — not K.
  Pool pool;
  constexpr int kRun = 64;
  std::uint64_t* payloads[kRun];
  {
    PoolScope scope(&pool);
    for (auto& p : payloads) p = alloc_words(14);
  }
  std::thread t([&] {
    ReclaimScope rs;
    for (auto* p : payloads) free_words(p);
  });  // scope destruction flushes the chain
  t.join();
  PoolStats s = pool.snapshot();
  EXPECT_EQ(s.remote_blocks, static_cast<std::uint64_t>(kRun));
  EXPECT_EQ(s.remote_splices, 1u) << "a run must cost one CAS, not " << kRun;
}

TEST(Pool, ReclaimScopeOnOwnerThreadStaysLocal) {
  Pool pool;
  PoolScope scope(&pool);
  std::uint64_t* payloads[16];
  for (auto& p : payloads) p = alloc_words(6);
  {
    ReclaimScope rs;
    for (auto* p : payloads) free_words(p);
  }
  PoolStats s = pool.snapshot();
  EXPECT_EQ(s.remote_splices, 0u);
  EXPECT_EQ(s.local_frees, 16u);
  // All sixteen come back from the free list.
  for (auto& p : payloads) p = alloc_words(6);
  EXPECT_EQ(pool.snapshot().recycled, 16u);
  for (auto* p : payloads) free_words(p);
}

TEST(Pool, AllocWithoutScopeFallsBackToHeap) {
  // No pool installed: correctness is preserved via plain heap blocks.
  std::uint64_t* p = alloc_words(30);
  EXPECT_EQ(header_of(p)->owner, nullptr);
  p[0] = 42;
  p[29] = 43;
  free_words(p);
}

TEST(Words, InlineSingleWordNeverAllocates) {
  Pool pool;
  PoolScope scope(&pool);
  Words w(1, 0xAB);
  EXPECT_EQ(w.size(), 1u);
  EXPECT_EQ(w[0], 0xABu);
  Words copy = w;
  EXPECT_EQ(copy, w);
  const PoolStats s = pool.snapshot();
  EXPECT_EQ(s.carved + s.recycled + s.heap_fallbacks, 0u)
      << "size <= 1 must stay inline";
}

TEST(Words, EqualSizeAssignReusesTheBlock) {
  Pool pool;
  PoolScope scope(&pool);
  Words a(4, 1);
  Words b(4, 2);
  const std::uint64_t* block = a.data();
  const PoolStats before = pool.snapshot();
  a = b;  // same size: must overwrite in place (rollback restore path)
  EXPECT_EQ(a.data(), block);
  EXPECT_EQ(a, b);
  const PoolStats after = pool.snapshot();
  EXPECT_EQ(after.carved + after.recycled, before.carved + before.recycled);
}

TEST(Words, ValueSemanticsAndExactSizeEquality) {
  Words a(3, 7);
  Words b(4, 7);
  EXPECT_FALSE(a == b) << "equality is exact-size even within a class";
  b.resize(3);
  EXPECT_EQ(a, b);
  b.at(2) = 9;
  EXPECT_FALSE(a == b);

  Words expected(3, 7);
  expected.at(2) = 9;
  Words moved = static_cast<Words&&>(b);
  EXPECT_EQ(moved.size(), 3u);
  EXPECT_EQ(moved, expected);
  EXPECT_TRUE(b.empty());  // NOLINT(bugprone-use-after-move): spec'd reset

  Words grown(2, 5);
  grown.resize(6);
  EXPECT_EQ(grown[0], 5u);
  EXPECT_EQ(grown[1], 5u);
  EXPECT_EQ(grown[5], 0u) << "growth zero-fills";
}

TEST(Words, MigratesAcrossThreadsAndFreesRemotely) {
  Pool pool;
  Words w;
  {
    PoolScope scope(&pool);
    w.assign(14, 0xFEED);
  }
  std::thread t([moved = static_cast<Words&&>(w)]() mutable {
    EXPECT_EQ(moved.at(13), 0xFEEDu);
    moved = Words();  // destruction on a foreign thread
  });
  t.join();
  EXPECT_EQ(pool.snapshot().remote_blocks, 1u);
}

}  // namespace
}  // namespace pls::mem
