// Tests for the shared multilevel core (src/multilevel/): activity-derived
// weights, the deduplicated balance/imbalance arithmetic, coarse-solution
// projection, the uniform-weight bit-identity safety net behind the
// refactor, and the driver's activity-guided modes.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstring>

#include "circuit/generator.hpp"
#include "framework/driver.hpp"
#include "framework/registry.hpp"
#include "hypergraph/hypergraph.hpp"
#include "hypergraph/metrics.hpp"
#include "logicsim/activity.hpp"
#include "multilevel/balance.hpp"
#include "multilevel/metrics.hpp"
#include "multilevel/vcycle.hpp"
#include "multilevel/weights.hpp"
#include "partition/metrics.hpp"
#include "partition/multilevel_partitioner.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace pls {
namespace {

circuit::Circuit test_circuit(std::size_t gates = 900,
                              std::uint64_t seed = 17) {
  circuit::GeneratorSpec spec;
  spec.num_comb_gates = gates;
  spec.num_inputs = 24;
  spec.num_outputs = 12;
  spec.num_dffs = gates / 16;
  spec.seed = seed;
  return circuit::generate(spec);
}

// ---- weights ------------------------------------------------------------

TEST(Weights, UniformProfileYieldsUniformWeights) {
  const std::vector<double> flat(100, 1.0);
  const auto w = multilevel::weights_from_activity(flat);
  EXPECT_TRUE(w.uniform());
  EXPECT_TRUE(std::all_of(w.vertex.begin(), w.vertex.end(),
                          [](std::uint32_t x) { return x == 1; }));
  // Traffic maps the mean to one constant (the granularity); uniformity is
  // what matters, every traffic consumer is scale-invariant.
  EXPECT_TRUE(std::all_of(w.traffic.begin(), w.traffic.end(),
                          [&](std::uint32_t x) { return x == w.traffic[0]; }));

  EXPECT_TRUE(multilevel::uniform_weights(32).uniform());
  EXPECT_EQ(multilevel::uniform_weights(32).total_vertex_weight(), 32u);
}

TEST(Weights, MappingIsMonotoneAndClamped) {
  multilevel::WeightOptions opt;  // vertex_cap 8, granularity 8, cap 256
  const std::vector<double> acts = {0.0, 0.1, 1.0, 2.0, 7.9, 100.0};
  const auto w = multilevel::weights_from_activity(acts, opt);
  for (std::size_t i = 1; i < acts.size(); ++i) {
    EXPECT_GE(w.vertex[i], w.vertex[i - 1]);
    EXPECT_GE(w.traffic[i], w.traffic[i - 1]);
  }
  EXPECT_EQ(w.vertex.front(), 1u);   // zero activity still weighs 1
  EXPECT_EQ(w.traffic.front(), 1u);
  EXPECT_EQ(w.vertex[2], 1u);        // mean activity = unit work weight
  EXPECT_EQ(w.traffic[2], opt.traffic_granularity);
  EXPECT_EQ(w.vertex.back(), opt.vertex_cap);
  EXPECT_EQ(w.traffic.back(), opt.traffic_cap);
  EXPECT_FALSE(w.uniform());
}

TEST(Weights, RejectsInvalidActivity) {
  EXPECT_THROW(multilevel::weights_from_activity({1.0, -0.5}),
               util::CheckError);
  EXPECT_THROW(multilevel::weights_from_activity({std::nan("")}),
               util::CheckError);
  const std::vector<double> two{1.0, 1.0};
  const std::vector<double> one{1.0};
  EXPECT_THROW(multilevel::weights_from_activity(two, one),
               util::CheckError);  // work/traffic must cover the same gates
}

// ---- balance / imbalance dedupe -----------------------------------------

TEST(Balance, LimitMatchesTheHistoricalInlineFormula) {
  util::SplitMix64 rng(7);
  for (int i = 0; i < 200; ++i) {
    const std::uint64_t total = rng.next() % 1000000;
    const auto k = static_cast<std::uint32_t>(1 + rng.next() % 64);
    const double tol = static_cast<double>(rng.next() % 100) / 250.0;
    const auto expect = static_cast<std::uint64_t>(
        std::ceil(static_cast<double>(total) / static_cast<double>(k) *
                  (1.0 + tol)));
    EXPECT_EQ(multilevel::balance_limit(total, k, tol), expect);
  }
}

TEST(Metrics, ImbalanceDefinitionsAgree) {
  // Property (satellite): the circuit-, graph- and hypergraph-side
  // imbalance of the same partition are the same number — one definition,
  // three callers.
  const auto c = test_circuit(500, 3);
  const auto hg = hypergraph::Hypergraph::from_circuit(c);
  util::SplitMix64 rng(11);
  for (std::uint32_t k : {2u, 5u, 8u}) {
    partition::Partition p;
    p.k = k;
    p.assign.resize(c.size());
    for (auto& a : p.assign) {
      a = static_cast<partition::PartId>(rng.next() % k);
    }
    const double ci = partition::imbalance(c, p);
    const double hi = hypergraph::imbalance(hg, p);
    EXPECT_DOUBLE_EQ(ci, hi) << "k=" << k;
    EXPECT_DOUBLE_EQ(ci, multilevel::imbalance_from_loads(
                             p.loads(), c.size(), k))
        << "k=" << k;
  }
}

TEST(Metrics, ImbalanceEdgeCases) {
  const std::vector<std::uint64_t> loads{0, 0};
  EXPECT_DOUBLE_EQ(multilevel::imbalance_from_loads(loads, 0, 2), 1.0);
  const std::vector<std::uint64_t> one{10};
  EXPECT_DOUBLE_EQ(multilevel::imbalance_from_loads(one, 10, 1), 1.0);
}

// ---- projection ---------------------------------------------------------

TEST(Vcycle, ProjectExpandsByParentMap) {
  partition::Partition coarse;
  coarse.k = 3;
  coarse.assign = {2, 0, 1};
  const std::vector<std::uint32_t> parent_map = {0, 1, 1, 2, 0};
  const auto fine = multilevel::project(parent_map, coarse);
  EXPECT_EQ(fine.k, 3u);
  EXPECT_EQ(fine.assign, (std::vector<partition::PartId>{2, 0, 0, 1, 2}));
}

// ---- uniform-weight bit-identity (the refactor safety net) --------------

TEST(UniformWeights, MultilevelBitIdentical) {
  const auto c = test_circuit();
  const auto uni = multilevel::uniform_weights(c.size());
  partition::MultilevelOptions wopt;
  wopt.weights = &uni;
  for (std::uint64_t seed : {1ull, 42ull}) {
    const auto p0 = partition::MultilevelPartitioner().run(c, 8, seed);
    const auto p1 = partition::MultilevelPartitioner(wopt).run(c, 8, seed);
    EXPECT_EQ(p0.assign, p1.assign) << "seed=" << seed;
    EXPECT_EQ(partition::edge_cut(c, p0), partition::edge_cut(c, p1));
    EXPECT_EQ(partition::comm_volume(c, p0), partition::comm_volume(c, p1));
  }
}

TEST(UniformWeights, MultilevelHGBitIdentical) {
  const auto c = test_circuit();
  const auto hg = hypergraph::Hypergraph::from_circuit(c);
  const auto uni = multilevel::uniform_weights(c.size());
  partition::MultilevelOptions wopt;
  wopt.weights = &uni;
  for (std::uint64_t seed : {1ull, 42ull}) {
    const auto p0 =
        framework::make_partitioner("MultilevelHG")->run(c, 8, seed);
    const auto p1 =
        framework::make_partitioner("MultilevelHG", wopt)->run(c, 8, seed);
    EXPECT_EQ(p0.assign, p1.assign) << "seed=" << seed;
    EXPECT_EQ(hypergraph::connectivity_minus_one(hg, p0),
              hypergraph::connectivity_minus_one(hg, p1));
  }
}

TEST(UniformWeights, ScaledUniformTrafficStaysBitIdentical) {
  // weights_from_activity maps a flat profile to traffic weight
  // `granularity`, not 1 — the pipelines must be scale-invariant in
  // traffic, so this too reproduces the unweighted partition exactly.
  const auto c = test_circuit(700, 9);
  const auto w = multilevel::weights_from_activity(
      std::vector<double>(c.size(), 1.0));
  ASSERT_TRUE(w.uniform());
  ASSERT_NE(w.traffic.front(), 1u);
  partition::MultilevelOptions wopt;
  wopt.weights = &w;
  for (const char* strat : {"Multilevel", "MultilevelHG"}) {
    const auto p0 = framework::make_partitioner(strat)->run(c, 4, 5);
    const auto p1 = framework::make_partitioner(strat, wopt)->run(c, 4, 5);
    EXPECT_EQ(p0.assign, p1.assign) << strat;
  }
}

// ---- activity profiling and the guided mode -----------------------------

TEST(Activity, ProfileDeterministicUnderFixedSeed) {
  const auto c = test_circuit(400, 21);
  logicsim::ModelOptions mo;
  mo.stim_seed = 77;
  const auto a = logicsim::profile_activity(c, mo, 300);
  const auto b = logicsim::profile_activity(c, mo, 300);
  EXPECT_EQ(a.work, b.work);
  EXPECT_EQ(a.traffic, b.traffic);
  mo.stim_seed = 78;
  const auto d = logicsim::profile_activity(c, mo, 300);
  EXPECT_NE(a.work, d.work);
}

TEST(Activity, GuidedNeverWorsensTheWeightedObjective) {
  // run_guided_vcycle's contract: candidate B replays the unweighted seed
  // chain, so the weighted λ−1 of the activity-guided partition is never
  // above the unweighted partition's.
  const auto c = test_circuit(1100, 13);
  logicsim::ModelOptions mo;
  mo.stim_seed = 5;
  const auto prof = logicsim::profile_activity(c, mo, 300);
  const auto w = multilevel::weights_from_activity(prof.work, prof.traffic);
  const auto whg = hypergraph::Hypergraph::from_circuit(c, &w);

  partition::MultilevelOptions wopt;
  wopt.weights = &w;
  for (std::uint64_t seed : {1ull, 9ull}) {
    const auto off =
        framework::make_partitioner("MultilevelHG")->run(c, 8, seed);
    const auto act =
        framework::make_partitioner("MultilevelHG", wopt)->run(c, 8, seed);
    EXPECT_LE(hypergraph::connectivity_minus_one(whg, act),
              hypergraph::connectivity_minus_one(whg, off))
        << "seed=" << seed;
  }
}

// ---- driver plumbing ----------------------------------------------------

TEST(Driver, UseActivityFailsFastForNonMultilevelStrategies) {
  const auto c = test_circuit(300, 2);
  for (const char* strategy :
       {"Random", "DFS", "Cluster", "Topological", "ConePartition"}) {
    framework::DriverConfig cfg;
    cfg.partitioner = strategy;
    cfg.use_activity = true;
    cfg.end_time = 200;
    try {
      framework::partition_only(c, cfg);
      FAIL() << strategy << " should have been rejected";
    } catch (const util::CheckError& e) {
      EXPECT_NE(std::strstr(e.what(), strategy), nullptr)
          << "message must name the offending strategy: " << e.what();
    }
  }
}

TEST(Driver, ProfileModeRepartitionsBothPipelines) {
  const auto c = test_circuit(600, 4);
  for (const char* strategy : {"Multilevel", "MultilevelHG"}) {
    framework::DriverConfig cfg;
    cfg.partitioner = strategy;
    cfg.num_nodes = 4;
    cfg.use_activity = true;
    cfg.end_time = 400;
    const auto res = framework::partition_only(c, cfg);
    res.partition.validate(c.size());
    EXPECT_EQ(res.activity_mode, "profile") << strategy;
    EXPECT_GE(res.activity_seconds, 0.0);
  }
}

TEST(Driver, WarmupModeFeedsBackCommittedCounts) {
  const auto c = test_circuit(400, 6);
  framework::DriverConfig cfg;
  cfg.partitioner = "MultilevelHG";
  cfg.num_nodes = 2;
  cfg.use_activity = true;
  cfg.activity_source = framework::DriverConfig::ActivitySource::kWarmup;
  cfg.end_time = 400;
  cfg.event_cost_ns = 0;
  cfg.latency_ns = 1000;
  const auto res = framework::run_parallel(c, cfg);
  res.partition.validate(c.size());
  EXPECT_EQ(res.activity_mode, "warmup");
  EXPECT_GT(res.run.totals.events_committed, 0u);

  // The per-LP export the warm-up relies on: per-LP committed events sum
  // to the node totals, and the committed-send counters are alive.
  std::uint64_t lp_committed = 0;
  std::uint64_t lp_sends = 0;
  for (const auto& lp : res.run.per_lp) {
    lp_committed += lp.events_committed;
    lp_sends += lp.sends_committed;
  }
  EXPECT_EQ(lp_committed, res.run.totals.events_committed);
  EXPECT_GT(lp_sends, 0u);
}

}  // namespace
}  // namespace pls
