// End-to-end tests of the multilevel partitioner: the paper's three-phase
// pipeline, projection property, quality vs baselines, options and traces.

#include <gtest/gtest.h>

#include "circuit/generator.hpp"
#include "multilevel/metrics.hpp"
#include "multilevel/weights.hpp"
#include "partition/baselines.hpp"
#include "partition/metrics.hpp"
#include "partition/multilevel_partitioner.hpp"

namespace pls::partition {
namespace {

circuit::Circuit test_circuit(std::size_t gates = 1200,
                              std::uint64_t seed = 31) {
  circuit::GeneratorSpec spec;
  spec.num_comb_gates = gates;
  spec.num_inputs = 32;
  spec.num_outputs = 16;
  spec.num_dffs = gates / 16;
  spec.seed = seed;
  return circuit::generate(spec);
}

TEST(Multilevel, ValidBalancedPartition) {
  const auto c = test_circuit();
  const Partition p = MultilevelPartitioner().run(c, 8, 1);
  p.validate(c.size());
  EXPECT_LE(imbalance(c, p), 1.12);  // within the default 10% tolerance
  const auto loads = p.loads();
  for (auto l : loads) EXPECT_GT(l, 0u);
}

TEST(Multilevel, BeatsRandomOnEdgeCut) {
  const auto c = test_circuit();
  for (std::uint32_t k : {2u, 4u, 8u}) {
    const auto ml = edge_cut(c, MultilevelPartitioner().run(c, k, 1));
    const auto rnd = edge_cut(c, RandomPartitioner().run(c, k, 1));
    EXPECT_LT(ml, rnd / 2) << "k=" << k;
  }
}

TEST(Multilevel, BeatsTopologicalOnEdgeCut) {
  const auto c = test_circuit();
  EXPECT_LT(edge_cut(c, MultilevelPartitioner().run(c, 8, 1)),
            edge_cut(c, TopologicalPartitioner().run(c, 8, 1)));
}

TEST(Multilevel, DeterministicBySeed) {
  const auto c = test_circuit();
  EXPECT_EQ(MultilevelPartitioner().run(c, 4, 9).assign,
            MultilevelPartitioner().run(c, 4, 9).assign);
  EXPECT_NE(MultilevelPartitioner().run(c, 4, 9).assign,
            MultilevelPartitioner().run(c, 4, 10).assign);
}

TEST(Multilevel, TraceShowsThreePhases) {
  const auto c = test_circuit();
  MultilevelTrace trace;
  const Partition p =
      MultilevelPartitioner().run_traced(c, 4, 1, &trace);
  p.validate(c.size());

  // Coarsening produced a strictly shrinking hierarchy.
  ASSERT_GE(trace.level_sizes.size(), 2u);
  for (std::size_t i = 1; i < trace.level_sizes.size(); ++i) {
    EXPECT_LT(trace.level_sizes[i], trace.level_sizes[i - 1]);
  }
  // Refinement at the finest level produced the final cut, and the trace
  // has one entry per refined level (coarsest + every projection).
  EXPECT_EQ(trace.quality_after_level.size(), trace.level_sizes.size() + 1);
  EXPECT_EQ(trace.final_quality, trace.quality_after_level.back());
  // Refinement improved on (or matched) the raw initial partition.
  EXPECT_LE(trace.quality_after_level.front(), trace.initial_quality);
}

TEST(Multilevel, RefinementReducesCutAcrossLevels) {
  // The multilevel claim: refining at every intermediate level beats only
  // refining the original graph.  At minimum, the final cut must not be
  // worse than the projected initial partition's cut would be — proxied
  // here by the coarsest-level cut bound.
  const auto c = test_circuit(2000, 5);
  MultilevelTrace trace;
  MultilevelPartitioner().run_traced(c, 8, 2, &trace);
  EXPECT_LT(trace.final_quality, trace.initial_quality * 2);
}

TEST(Multilevel, HeavyEdgeSchemeOptionWorks) {
  const auto c = test_circuit();
  MultilevelOptions opt;
  opt.scheme = CoarsenScheme::kHeavyEdge;
  const Partition p = MultilevelPartitioner(opt).run(c, 4, 1);
  p.validate(c.size());
  EXPECT_LT(edge_cut(c, p), edge_cut(c, RandomPartitioner().run(c, 4, 1)));
}

TEST(Multilevel, KlAndFmRefinerOptionsWork) {
  const auto c = test_circuit(600, 8);
  for (RefinerKind kind :
       {RefinerKind::kKernighanLin, RefinerKind::kFiducciaMattheyses}) {
    MultilevelOptions opt;
    opt.refiner = kind;
    const Partition p = MultilevelPartitioner(opt).run(c, 4, 1);
    p.validate(c.size());
    EXPECT_LE(imbalance(c, p), 1.35);
  }
}

TEST(Multilevel, ActivityWeightedCoarseningWorks) {
  const auto c = test_circuit();
  std::vector<double> activity(c.size(), 1.0);
  for (std::size_t i = 0; i < activity.size(); i += 3) activity[i] = 8.0;
  const auto weights = multilevel::weights_from_activity(activity);
  MultilevelOptions opt;
  opt.weights = &weights;
  const Partition p = MultilevelPartitioner(opt).run(c, 4, 1);
  p.validate(c.size());
  // The weighted pipeline balances *work* (activity-weighted load), not
  // gate counts: measure imbalance in the same currency.
  const auto loads = p.loads(weights.vertex);
  EXPECT_LE(multilevel::imbalance_from_loads(
                loads, weights.total_vertex_weight(), p.k),
            1.12);
}

TEST(Multilevel, CustomThreshold) {
  const auto c = test_circuit();
  MultilevelOptions opt;
  opt.coarsen_threshold = 200;
  MultilevelTrace trace;
  MultilevelPartitioner(opt).run_traced(c, 4, 1, &trace);
  ASSERT_FALSE(trace.level_sizes.empty());
  EXPECT_LE(trace.level_sizes.back(), 200u);
}

TEST(Multilevel, TinyCircuitBelowThreshold) {
  // Smaller than the coarsening threshold: initial + refine on G0 only.
  circuit::GeneratorSpec spec;
  spec.num_comb_gates = 30;
  spec.num_inputs = 4;
  spec.num_outputs = 2;
  spec.num_dffs = 2;
  const auto c = circuit::generate(spec);
  const Partition p = MultilevelPartitioner().run(c, 2, 1);
  p.validate(c.size());
}

TEST(Multilevel, ConcurrencyAtLeastAsGoodAsTraversals) {
  // Coarsening from inputs + input-globule spreading should preserve more
  // concurrency than contiguity-driven traversal partitioners.
  const auto c = test_circuit(2000, 12);
  const double ml = concurrency(c, MultilevelPartitioner().run(c, 8, 1));
  const double dfs = concurrency(c, DepthFirstPartitioner().run(c, 8, 1));
  const double bfs = concurrency(c, BfsClusterPartitioner().run(c, 8, 1));
  EXPECT_GT(ml, std::min(dfs, bfs));
}

TEST(Multilevel, ScalesToIscasSizes) {
  const auto c = circuit::make_iscas_like("s9234", 3);
  const Partition p = MultilevelPartitioner().run(c, 8, 1);
  p.validate(c.size());
  EXPECT_LE(imbalance(c, p), 1.12);
  EXPECT_LT(edge_cut(c, p), c.num_edges() / 3);
}

}  // namespace
}  // namespace pls::partition
