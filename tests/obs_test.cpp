// Tests for the src/obs/ observability subsystem: trace-ring overflow
// semantics (exact drop counter, newest-wins, non-blocking producer),
// export determinism modulo timestamps, metrics-sampler lifecycle under
// concurrent gauge writes, and an end-to-end kernel trace smoke.

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <regex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "obs/session.hpp"
#include "obs/trace.hpp"
#include "warped/kernel.hpp"

namespace pls::obs {
namespace {

// ---- TraceRing --------------------------------------------------------

TEST(TraceRing, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(TraceRing(1).capacity(), 16u);   // minimum
  EXPECT_EQ(TraceRing(16).capacity(), 16u);
  EXPECT_EQ(TraceRing(17).capacity(), 32u);
  EXPECT_EQ(TraceRing(100).capacity(), 128u);
}

TEST(TraceRing, OverflowKeepsExactDropCountAndNewestEvents) {
  TraceRing ring(16);
  for (std::uint64_t i = 0; i < 100; ++i) {
    ring.record(TraceKind::kExecBatch, /*ts=*/i, /*dur=*/1, /*a=*/i, 0, 0);
  }
  EXPECT_EQ(ring.recorded(), 100u);
  EXPECT_EQ(ring.dropped(), 84u);  // exact: recorded - capacity
  EXPECT_EQ(ring.size(), 16u);

  // Survivors are the NEWEST 16, oldest first.
  const std::vector<TraceEvent> all = ring.snapshot();
  ASSERT_EQ(all.size(), 16u);
  for (std::size_t i = 0; i < all.size(); ++i) {
    EXPECT_EQ(all[i].a, 84 + i);
  }
  const std::vector<TraceEvent> t = ring.tail(4);
  ASSERT_EQ(t.size(), 4u);
  EXPECT_EQ(t.front().a, 96u);
  EXPECT_EQ(t.back().a, 99u);
  // tail() larger than held events just returns them all.
  EXPECT_EQ(ring.tail(1000).size(), 16u);
}

TEST(TraceRing, NoDropsBelowCapacity) {
  TraceRing ring(64);
  for (std::uint64_t i = 0; i < 10; ++i) {
    ring.record(TraceKind::kRollback, i, 0, i, 0);
  }
  EXPECT_EQ(ring.dropped(), 0u);
  EXPECT_EQ(ring.size(), 10u);
  EXPECT_EQ(ring.snapshot().front().a, 0u);
}

TEST(TraceRing, ProducerThreadNeverBlocksAndJoinedReadIsComplete) {
  // A dedicated producer hammers a tiny ring far past capacity; after the
  // join the reader must see the exact count and the newest events.
  TraceRing ring(32);
  constexpr std::uint64_t kEvents = 100'000;
  std::thread producer([&ring] {
    for (std::uint64_t i = 0; i < kEvents; ++i) {
      ring.record(TraceKind::kExecBatch, i, 0, i, 0, 7);
    }
  });
  producer.join();
  EXPECT_EQ(ring.recorded(), kEvents);
  EXPECT_EQ(ring.dropped(), kEvents - ring.capacity());
  const auto snap = ring.snapshot();
  ASSERT_EQ(snap.size(), ring.capacity());
  EXPECT_EQ(snap.back().a, kEvents - 1);
}

// ---- export determinism ----------------------------------------------

/// Record the same logical event sequence into a session, with timestamps
/// offset by `ts_base` to simulate run-to-run timing differences.
void record_fixture(ObsSession& s, std::uint64_t ts_base) {
  const std::uint64_t t0 = s.t0_ns();
  for (std::uint32_t n = 0; n < s.num_nodes(); ++n) {
    TraceRing* ring = s.ring(n);
    ASSERT_NE(ring, nullptr);
    ring->record(TraceKind::kGvtJoin, t0 + ts_base + 10, 0, 1, 42);
    ring->record(TraceKind::kExecBatch, t0 + ts_base + 20, 5 + ts_base % 7,
                 3, 100, n);
    ring->record(TraceKind::kRollback, t0 + ts_base + 30, 0, 2, 1, n);
    ring->record(TraceKind::kThrottle, t0 + ts_base + 40, 0, 64, 123456, 2);
    ring->record(TraceKind::kMigrateShip, t0 + ts_base + 50, 0, 1, 9, n);
  }
  s.set_gvt(77);
}

/// Neutralize the only run-dependent fields: "ts" and "dur" values.
std::string strip_timestamps(std::string json) {
  static const std::regex ts_re("\"(ts|dur)\":[-0-9.eE+]+");
  return std::regex_replace(json, ts_re, "\"$1\":0");
}

TEST(Export, PerfettoTraceIsDeterministicModuloTimestamps) {
  ObsConfig cfg;
  cfg.trace = true;
  cfg.ring_capacity = 64;

  std::string out[2];
  for (int run = 0; run < 2; ++run) {
    ObsSession s(2, cfg);
    record_fixture(s, run == 0 ? 0 : 913);  // different timings per "run"
    std::ostringstream os;
    write_perfetto_trace(os, s);
    out[run] = strip_timestamps(os.str());
  }
  EXPECT_EQ(out[0], out[1]);
  // Sanity: the export really contains the recorded taxonomy.
  for (const char* needle :
       {"\"exec\"", "\"rollback\"", "\"throttle\"", "\"mig_ship\"",
        "\"gvt_join\"", "\"dropped_node0\"", "\"dropped_node1\""}) {
    EXPECT_NE(out[0].find(needle), std::string::npos) << needle;
  }
}

TEST(Export, TraceJsonParsesAsBalancedJson) {
  // No JSON library in the image: check structural balance + key facts.
  ObsConfig cfg;
  cfg.trace = true;
  ObsSession s(2, cfg);
  record_fixture(s, 0);
  std::ostringstream os;
  write_perfetto_trace(os, s);
  const std::string j = os.str();
  int depth = 0;
  bool in_str = false, esc = false;
  for (char ch : j) {
    if (esc) { esc = false; continue; }
    if (ch == '\\') { esc = true; continue; }
    if (ch == '"') { in_str = !in_str; continue; }
    if (in_str) continue;
    if (ch == '{' || ch == '[') ++depth;
    if (ch == '}' || ch == ']') --depth;
    ASSERT_GE(depth, 0);
  }
  EXPECT_FALSE(in_str);
  EXPECT_EQ(depth, 0);
  EXPECT_NE(j.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(j.find("\"thread_name\""), std::string::npos);
}

// ---- metrics sampler --------------------------------------------------

TEST(MetricsSampler, StartStopJoinsCleanlyUnderConcurrentGaugeWrites) {
  ObsConfig cfg;
  cfg.metrics_interval_us = 1000;  // 1 ms
  ObsSession s(2, cfg);

  std::atomic<bool> stop{false};
  std::thread writer([&] {
    std::uint64_t v = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      ++v;
      for (std::uint32_t n = 0; n < 2; ++n) {
        NodeGauges& g = s.gauges(n);
        g.events_processed.store(v, std::memory_order_relaxed);
        g.events_committed.store(v / 2, std::memory_order_relaxed);
        g.live_entries.store(v % 97, std::memory_order_relaxed);
      }
      s.set_gvt(v);
    }
  });

  s.start_sampling();
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  stop.store(true, std::memory_order_relaxed);
  writer.join();
  s.stop_sampling();

  const auto& samples = s.samples();
  // First sample is immediate, the final one is taken at stop; ~20 ms at
  // 1 ms cadence yields plenty even on a loaded machine.
  ASSERT_GE(samples.size(), 3u);
  EXPECT_EQ(s.samples_truncated(), 0u);
  for (std::size_t i = 1; i < samples.size(); ++i) {
    EXPECT_GE(samples[i].wall_ns, samples[i - 1].wall_ns);
  }
  for (const auto& smp : samples) {
    ASSERT_EQ(smp.nodes.size(), 2u);
  }
  // The final sample (taken after the writer joined) sees its last state.
  const auto& last = samples.back();
  EXPECT_EQ(last.nodes[0].events_processed, last.gvt);
}

TEST(MetricsSampler, StopWithoutStartIsANoOp) {
  ObsConfig cfg;  // interval 0: sampler never starts
  ObsSession s(1, cfg);
  s.start_sampling();
  s.stop_sampling();
  s.stop_sampling();  // idempotent
  EXPECT_TRUE(s.samples().empty());
}

TEST(MetricsExport, CsvAndJsonCarryTheSeries) {
  ObsConfig cfg;
  cfg.metrics_interval_us = 1000;
  ObsSession s(1, cfg);
  s.gauges(0).events_committed.store(5, std::memory_order_relaxed);
  s.set_gvt(9);
  s.start_sampling();
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  s.stop_sampling();

  std::ostringstream csv;
  write_metrics_csv(csv, s);
  const std::string c = csv.str();
  EXPECT_EQ(c.rfind("wall_ms,node,metric,value\n", 0), 0u);
  EXPECT_NE(c.find(",-1,gvt,9"), std::string::npos);
  EXPECT_NE(c.find(",0,committed,5"), std::string::npos);

  std::ostringstream js;
  write_metrics_json(js, s);
  EXPECT_NE(js.str().find("\"samples\""), std::string::npos);
  EXPECT_NE(js.str().find("\"gvt\":9"), std::string::npos);
}

// ---- end-to-end kernel smoke -----------------------------------------

/// Minimal two-LP ping-pong across nodes: guarantees cross-node traffic,
/// GVT rounds and (with a tiny latency skew) at least a few rollbacks.
class PingLp final : public warped::LogicalProcess {
 public:
  PingLp(warped::LpId peer, warped::SimTime period)
      : peer_(peer), period_(period) {}

  void init(warped::Context& ctx) override {
    if (period_ <= ctx.end_time()) ctx.schedule_self(period_);
  }

  void execute(warped::Context& ctx, warped::EventBatch batch) override {
    warped::LpState& st = ctx.state();
    for (const auto& e : batch) {
      if (e.port != warped::kTickPort) st.a += e.value;
    }
    if (ctx.now() + 1 <= ctx.end_time()) {
      ctx.send(peer_, ctx.now() + 1, 0, st.a + 1);
    }
    if (ctx.now() + period_ <= ctx.end_time()) {
      ctx.schedule_self(ctx.now() + period_);
    }
  }

 private:
  warped::LpId peer_;
  warped::SimTime period_;
};

TEST(ObsKernel, TwoNodeRunRecordsTraceAndMetrics) {
  ObsConfig ocfg;
  ocfg.trace = true;
  ocfg.metrics_interval_us = 500;
  ObsSession session(2, ocfg);

  PingLp a(1, 5), b(0, 7);
  std::vector<warped::LogicalProcess*> lps{&a, &b};
  warped::KernelConfig kc;
  kc.num_nodes = 2;
  kc.end_time = 500;
  kc.network.latency_ns = 5000;
  kc.gvt_interval_us = 500;
  kc.obs = &session;
  warped::Kernel kernel(lps, {0, 1}, kc);
  session.start_sampling();
  const warped::RunStats out = kernel.run();
  session.stop_sampling();

  EXPECT_EQ(out.final_gvt, warped::kEndOfTime);
  // Both nodes recorded exec batches and GVT joins.
  for (std::uint32_t n = 0; n < 2; ++n) {
    const TraceRing* ring = session.ring(n);
    ASSERT_NE(ring, nullptr);
    EXPECT_GT(ring->recorded(), 0u) << "node " << n;
    bool exec = false, join = false;
    for (const TraceEvent& ev : ring->snapshot()) {
      exec |= ev.kind == TraceKind::kExecBatch;
      join |= ev.kind == TraceKind::kGvtJoin;
    }
    EXPECT_TRUE(exec) << "node " << n;
    EXPECT_TRUE(join) << "node " << n;
  }
  // Node 0's controller traced round completions, and the session's GVT
  // gauge reached end-of-time with it.
  bool done = false;
  for (const TraceEvent& ev : session.ring(0)->snapshot()) {
    done |= ev.kind == TraceKind::kGvtDone;
  }
  EXPECT_TRUE(done);
  EXPECT_EQ(session.gvt(), warped::kEndOfTime);
  ASSERT_GE(session.samples().size(), 2u);

  // The whole thing exports without tripping the JsonWriter's balance
  // checks.
  std::ostringstream os;
  write_perfetto_trace(os, session);
  EXPECT_GT(os.str().size(), 100u);
}

}  // namespace
}  // namespace pls::obs
