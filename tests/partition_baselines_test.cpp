// Tests for the five baseline partitioners: completeness, balance,
// determinism, and each algorithm's defining structural property —
// parameterized across circuits, k and seeds.

#include <gtest/gtest.h>

#include <memory>

#include "circuit/generator.hpp"
#include "circuit/levelize.hpp"
#include "framework/registry.hpp"
#include "partition/baselines.hpp"
#include "partition/metrics.hpp"

namespace pls::partition {
namespace {

circuit::Circuit test_circuit(std::uint64_t seed = 11) {
  circuit::GeneratorSpec spec;
  spec.num_comb_gates = 600;
  spec.num_inputs = 20;
  spec.num_outputs = 10;
  spec.num_dffs = 40;
  spec.seed = seed;
  return circuit::generate(spec);
}

TEST(RandomPartitioner, PerfectBalance) {
  const auto c = test_circuit();
  const Partition p = RandomPartitioner().run(c, 4, 1);
  p.validate(c.size());
  const auto loads = p.loads();
  const auto mx = *std::max_element(loads.begin(), loads.end());
  const auto mn = *std::min_element(loads.begin(), loads.end());
  EXPECT_LE(mx - mn, 1u);
}

TEST(RandomPartitioner, SeedChangesAssignment) {
  const auto c = test_circuit();
  const Partition a = RandomPartitioner().run(c, 4, 1);
  const Partition b = RandomPartitioner().run(c, 4, 2);
  EXPECT_NE(a.assign, b.assign);
}

TEST(RandomPartitioner, HighEdgeCut) {
  // Random scatter cuts roughly (k-1)/k of all edges — its known weakness.
  const auto c = test_circuit();
  const Partition p = RandomPartitioner().run(c, 4, 1);
  const double frac = static_cast<double>(edge_cut(c, p)) /
                      static_cast<double>(c.num_edges());
  EXPECT_GT(frac, 0.6);
}

TEST(DepthFirstPartitioner, ContiguousChunksOfTraversal) {
  const auto c = test_circuit();
  const Partition p = DepthFirstPartitioner().run(c, 5, 0);
  p.validate(c.size());
  const auto loads = p.loads();
  const auto mx = *std::max_element(loads.begin(), loads.end());
  const auto mn = *std::min_element(loads.begin(), loads.end());
  EXPECT_LE(mx - mn, 1u);
}

TEST(DepthFirstPartitioner, DeterministicIgnoringSeed) {
  const auto c = test_circuit();
  EXPECT_EQ(DepthFirstPartitioner().run(c, 4, 1).assign,
            DepthFirstPartitioner().run(c, 4, 999).assign);
}

TEST(DepthFirstPartitioner, LowerCutThanRandom) {
  const auto c = test_circuit();
  EXPECT_LT(edge_cut(c, DepthFirstPartitioner().run(c, 8, 1)),
            edge_cut(c, RandomPartitioner().run(c, 8, 1)));
}

TEST(BfsClusterPartitioner, BalancedAndComplete) {
  const auto c = test_circuit();
  const Partition p = BfsClusterPartitioner().run(c, 3, 0);
  p.validate(c.size());
  EXPECT_LE(imbalance(c, p), 1.01);
}

TEST(BfsClusterPartitioner, LowerCutThanRandom) {
  const auto c = test_circuit();
  EXPECT_LT(edge_cut(c, BfsClusterPartitioner().run(c, 8, 1)),
            edge_cut(c, RandomPartitioner().run(c, 8, 1)));
}

TEST(TopologicalPartitioner, SpreadsEveryLevelAcrossAllParts) {
  const auto c = test_circuit();
  const std::uint32_t k = 4;
  const Partition p = TopologicalPartitioner().run(c, k, 0);
  p.validate(c.size());
  // Gates at the same topological level can fire concurrently; the
  // algorithm scatters each level round-robin, so any level with >= k
  // gates must touch all k parts.
  const auto lv = circuit::levelize(c);
  for (const auto& gates : lv.by_level) {
    if (gates.size() < k) continue;
    std::vector<bool> seen(k, false);
    for (auto g : gates) seen[p.assign[g]] = true;
    for (std::uint32_t part = 0; part < k; ++part) {
      EXPECT_TRUE(seen[part]);
    }
  }
  // That spread is what the concurrency metric rewards.
  EXPECT_GT(concurrency(c, p), 0.9);
}

TEST(TopologicalPartitioner, CutsMostLevelBoundaries) {
  // The paper: "more signals are split across partitions for concurrency"
  // — topological cut should be among the worst of the structured
  // algorithms.
  const auto c = test_circuit();
  EXPECT_GT(edge_cut(c, TopologicalPartitioner().run(c, 8, 0)),
            edge_cut(c, DepthFirstPartitioner().run(c, 8, 0)));
}

TEST(TopologicalPartitioner, NearPerfectBalance) {
  // The rotation continues across levels: loads differ by at most one.
  const auto c = test_circuit();
  const auto loads = TopologicalPartitioner().run(c, 4, 0).loads();
  const auto mx = *std::max_element(loads.begin(), loads.end());
  const auto mn = *std::min_element(loads.begin(), loads.end());
  EXPECT_LE(mx - mn, 1u);
}

TEST(FanoutConePartitioner, CompleteAndDeterministic) {
  const auto c = test_circuit();
  const Partition p = FanoutConePartitioner().run(c, 4, 0);
  p.validate(c.size());
  EXPECT_EQ(p.assign, FanoutConePartitioner().run(c, 4, 5).assign);
}

TEST(FanoutConePartitioner, LowCommunication) {
  // Cone clustering's selling point: keep each input's cone together.
  const auto c = test_circuit();
  EXPECT_LT(edge_cut(c, FanoutConePartitioner().run(c, 4, 0)),
            edge_cut(c, RandomPartitioner().run(c, 4, 0)) / 2);
}

// ---- parameterized sweep: every baseline yields a valid partition --------

struct SweepParam {
  const char* name;
  std::uint32_t k;
  std::uint64_t circuit_seed;
};

class BaselineSweep : public ::testing::TestWithParam<SweepParam> {};

TEST_P(BaselineSweep, ProducesCompleteValidPartition) {
  const auto [name, k, cseed] = GetParam();
  const auto c = test_circuit(cseed);
  const auto strategy = framework::make_partitioner(name);
  const Partition p = strategy->run(c, k, 42);
  p.validate(c.size());

  // Every part must be non-empty for k <= inputs (all these circuits have
  // 20 inputs) and the load spread bounded.
  const auto loads = p.loads();
  for (std::uint32_t part = 0; part < k; ++part) {
    EXPECT_GT(loads[part], 0u) << name << " left node " << part << " empty";
  }
  // Static sanity on metrics plumbing.
  EXPECT_LE(edge_cut(c, p), c.num_edges());
  EXPECT_GE(concurrency(c, p), 0.0);
  EXPECT_LE(concurrency(c, p), 1.0);
}

INSTANTIATE_TEST_SUITE_P(
    AllBaselines, BaselineSweep,
    ::testing::Values(
        SweepParam{"Random", 2, 1}, SweepParam{"Random", 8, 2},
        SweepParam{"DFS", 2, 1}, SweepParam{"DFS", 8, 2},
        SweepParam{"Cluster", 2, 1}, SweepParam{"Cluster", 8, 2},
        SweepParam{"Topological", 2, 1}, SweepParam{"Topological", 8, 2},
        SweepParam{"ConePartition", 2, 1}, SweepParam{"ConePartition", 8, 2},
        SweepParam{"Multilevel", 2, 1}, SweepParam{"Multilevel", 8, 2},
        SweepParam{"Random", 3, 3}, SweepParam{"DFS", 5, 3},
        SweepParam{"Cluster", 6, 3}, SweepParam{"Topological", 7, 3},
        SweepParam{"ConePartition", 5, 3}, SweepParam{"Multilevel", 6, 3}),
    [](const auto& info) {
      return std::string(info.param.name) + "_k" +
             std::to_string(info.param.k) + "_c" +
             std::to_string(info.param.circuit_seed);
    });

TEST(AllPartitioners, KEqualsOneIsTrivial) {
  const auto c = test_circuit();
  for (const auto& name : framework::partitioner_names()) {
    const Partition p = framework::make_partitioner(name)->run(c, 1, 7);
    p.validate(c.size());
    for (auto a : p.assign) EXPECT_EQ(a, 0u);
  }
}

TEST(AllPartitioners, KLargerThanUsualStillValid) {
  const auto c = test_circuit();
  for (const auto& name : framework::partitioner_names()) {
    const Partition p = framework::make_partitioner(name)->run(c, 16, 7);
    p.validate(c.size());
  }
}

}  // namespace
}  // namespace pls::partition
