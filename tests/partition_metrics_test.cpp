// Tests for the static partition quality metrics: edge cut, imbalance,
// concurrency, communication volume.

#include <gtest/gtest.h>

#include "circuit/circuit.hpp"
#include "graph/weighted_graph.hpp"
#include "partition/metrics.hpp"
#include "util/check.hpp"

namespace pls::partition {
namespace {

circuit::Circuit diamond() {
  // a -> g1, g2 ; g3 = AND(g1, g2)
  circuit::Circuit c;
  const auto a = c.add_input("a");
  const auto g1 = c.add_gate("g1", circuit::GateType::kBuf, {a});
  const auto g2 = c.add_gate("g2", circuit::GateType::kNot, {a});
  c.add_gate("g3", circuit::GateType::kAnd, {g1, g2});
  c.freeze();
  return c;
}

Partition make_partition(std::initializer_list<PartId> parts,
                         std::uint32_t k) {
  Partition p;
  p.k = k;
  p.assign = parts;
  return p;
}

TEST(EdgeCut, CountsCrossingDirectedEdges) {
  const auto c = diamond();
  // a,g1 on 0; g2,g3 on 1: cut edges are a->g2 and g1->g3.
  const auto p = make_partition({0, 0, 1, 1}, 2);
  EXPECT_EQ(edge_cut(c, p), 2u);
}

TEST(EdgeCut, ZeroWhenSinglePartition) {
  const auto c = diamond();
  EXPECT_EQ(edge_cut(c, make_partition({0, 0, 0, 0}, 1)), 0u);
}

TEST(EdgeCut, AllEdgesWhenFullySplit) {
  const auto c = diamond();
  EXPECT_EQ(edge_cut(c, make_partition({0, 1, 2, 3}, 4)), c.num_edges());
}

TEST(EdgeCut, WeightedGraphVariantMatchesCircuit) {
  const auto c = diamond();
  const auto g = graph::WeightedGraph::from_circuit(c);
  const auto p = make_partition({0, 0, 1, 1}, 2);
  EXPECT_EQ(edge_cut(g, p), edge_cut(c, p));
}

TEST(Imbalance, PerfectIsOne) {
  const auto c = diamond();
  EXPECT_DOUBLE_EQ(imbalance(c, make_partition({0, 0, 1, 1}, 2)), 1.0);
}

TEST(Imbalance, SkewDetected) {
  const auto c = diamond();
  EXPECT_DOUBLE_EQ(imbalance(c, make_partition({0, 0, 0, 1}, 2)), 1.5);
}

TEST(Imbalance, WeightedGraphUsesVertexWeights) {
  std::vector<std::tuple<graph::VertexId, graph::VertexId, std::uint32_t>>
      no_edges;
  graph::WeightedGraph g({10, 1, 1}, no_edges);
  Partition p = make_partition({0, 1, 1}, 2);
  // Loads: 10 vs 2, ideal 6 -> imbalance 10/6.
  EXPECT_NEAR(imbalance(g, p), 10.0 / 6.0, 1e-12);
}

TEST(Concurrency, PerfectSpreadIsOne) {
  const auto c = diamond();
  // Levels: {a} / {g1,g2} / {g3}.  k=2: level 1 split across both parts.
  const auto p = make_partition({0, 0, 1, 1}, 2);
  EXPECT_DOUBLE_EQ(concurrency(c, p), 1.0);
}

TEST(Concurrency, SerializedLevelScoresLow) {
  const auto c = diamond();
  // g1,g2 both on node 0: that level runs serialized.
  const auto p = make_partition({0, 0, 0, 1}, 2);
  EXPECT_LT(concurrency(c, p), 1.0);
}

TEST(Concurrency, SinglePartitionIsStillDefined) {
  const auto c = diamond();
  const double v = concurrency(c, make_partition({0, 0, 0, 0}, 1));
  EXPECT_GT(v, 0.0);
  EXPECT_LE(v, 1.0);
}

TEST(CommVolume, CountsDistinctForeignParts) {
  const auto c = diamond();
  // a on 0 drives g1 (0) and g2 (1): one foreign destination.  g1 on 0
  // drives g3 (1): one.  g2,g3 on 1 drive nothing foreign.
  EXPECT_EQ(comm_volume(c, make_partition({0, 0, 1, 1}, 2)), 2u);
}

TEST(CommVolume, BroadcastCountedOncePerPart) {
  // One driver fanning out to three sinks in the same foreign part: one
  // inter-node message per transition, not three.
  circuit::Circuit c;
  const auto a = c.add_input("a");
  c.add_gate("g1", circuit::GateType::kBuf, {a});
  c.add_gate("g2", circuit::GateType::kNot, {a});
  c.add_gate("g3", circuit::GateType::kBuf, {a});
  c.freeze();
  EXPECT_EQ(comm_volume(c, make_partition({0, 1, 1, 1}, 2)), 1u);
  EXPECT_LE(comm_volume(c, make_partition({0, 1, 1, 1}, 2)),
            edge_cut(c, make_partition({0, 1, 1, 1}, 2)));
}

TEST(Metrics, InvalidPartitionRejected) {
  const auto c = diamond();
  Partition bad;
  bad.k = 2;
  bad.assign = {0, 0, 5, 1};  // part 5 out of range
  EXPECT_THROW(edge_cut(c, bad), util::CheckError);
  Partition short_p;
  short_p.k = 2;
  short_p.assign = {0, 0};
  EXPECT_THROW(imbalance(c, short_p), util::CheckError);
}

}  // namespace
}  // namespace pls::partition
