// Tests for the greedy / Kernighan–Lin / Fiduccia–Mattheyses refiners:
// cut never increases, balance limits hold, known-optimal small cases are
// found, and a parameterized sweep over all refiners and graph shapes.

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <tuple>

#include "circuit/generator.hpp"
#include "graph/weighted_graph.hpp"
#include "partition/initial.hpp"
#include "partition/metrics.hpp"
#include "partition/refine.hpp"
#include "util/rng.hpp"

namespace pls::partition {
namespace {

using EdgeTuple = std::tuple<graph::VertexId, graph::VertexId, std::uint32_t>;

/// Two 4-cliques joined by a single light edge: optimal bisection cuts
/// exactly that bridge.
graph::WeightedGraph two_cliques() {
  std::vector<EdgeTuple> edges;
  for (int base : {0, 4}) {
    for (int i = 0; i < 4; ++i) {
      for (int j = i + 1; j < 4; ++j) {
        edges.emplace_back(base + i, base + j, 4);
      }
    }
  }
  edges.emplace_back(3, 4, 1);  // bridge
  return graph::WeightedGraph(std::vector<std::uint32_t>(8, 1), edges);
}

/// Worst-case starting partition for two_cliques: stripes across cliques.
Partition striped_partition() {
  Partition p;
  p.k = 2;
  p.assign = {0, 1, 0, 1, 0, 1, 0, 1};
  return p;
}

graph::WeightedGraph random_graph(std::size_t n, std::size_t m,
                                  std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<EdgeTuple> edges;
  edges.reserve(m + n);
  // A ring guarantees connectivity, then random chords.
  for (graph::VertexId v = 0; v < n; ++v) {
    edges.emplace_back(v, (v + 1) % n, 1);
  }
  for (std::size_t i = 0; i < m; ++i) {
    const auto u = static_cast<graph::VertexId>(rng.below(n));
    const auto v = static_cast<graph::VertexId>(rng.below(n));
    edges.emplace_back(u, v, 1 + static_cast<std::uint32_t>(rng.below(4)));
  }
  return graph::WeightedGraph(std::vector<std::uint32_t>(n, 1), edges);
}

Partition random_partition(std::size_t n, std::uint32_t k,
                           std::uint64_t seed) {
  util::Rng rng(seed);
  Partition p;
  p.k = k;
  p.assign.resize(n);
  for (auto& a : p.assign) a = static_cast<PartId>(rng.below(k));
  return p;
}

TEST(GreedyRefiner, FindsOptimalBisectionOfTwoCliques) {
  const auto g = two_cliques();
  Partition p = striped_partition();
  RefineOptions opt;
  opt.balance_tol = 0.01;
  const auto res = GreedyRefiner().refine(g, p, opt);
  EXPECT_EQ(res.cut_after, 1u);  // only the bridge
  EXPECT_LT(res.cut_after, res.cut_before);
  // Cliques whole on each side.
  for (int i = 1; i < 4; ++i) EXPECT_EQ(p.assign[i], p.assign[0]);
  for (int i = 5; i < 8; ++i) EXPECT_EQ(p.assign[i], p.assign[4]);
}

TEST(KLRefiner, FindsOptimalBisectionOfTwoCliques) {
  const auto g = two_cliques();
  Partition p = striped_partition();
  RefineOptions opt;
  opt.balance_tol = 0.01;
  const auto res = KernighanLinRefiner().refine(g, p, opt);
  EXPECT_EQ(res.cut_after, 1u);
}

TEST(FMRefiner, FindsOptimalBisectionOfTwoCliques) {
  const auto g = two_cliques();
  Partition p = striped_partition();
  RefineOptions opt;
  opt.balance_tol = 0.01;
  const auto res = FiducciaMattheysesRefiner().refine(g, p, opt);
  EXPECT_EQ(res.cut_after, 1u);
}

TEST(GreedyRefiner, ConvergesInFewIterations) {
  // The paper: "The greedy algorithm was found to converge in a few
  // iterations."
  const auto g = random_graph(400, 1200, 3);
  Partition p = random_partition(400, 4, 4);
  RefineOptions opt;
  opt.max_iters = 50;
  const auto res = GreedyRefiner().refine(g, p, opt);
  EXPECT_LE(res.iterations, 15u);
}

TEST(GreedyRefiner, LockingBoundsMovesPerIteration) {
  const auto g = random_graph(200, 600, 5);
  Partition p = random_partition(200, 4, 6);
  RefineOptions opt;
  opt.max_iters = 1;
  const auto res = GreedyRefiner().refine(g, p, opt);
  EXPECT_LE(res.moves, 200u);  // each vertex moved at most once
}

TEST(Refiners, NoopOnSinglePartition) {
  const auto g = random_graph(100, 300, 7);
  for (RefinerKind kind : {RefinerKind::kGreedy, RefinerKind::kKernighanLin,
                           RefinerKind::kFiducciaMattheyses}) {
    Partition p;
    p.k = 1;
    p.assign.assign(100, 0);
    const auto res = make_refiner(kind)->refine(g, p, RefineOptions{});
    EXPECT_EQ(res.cut_after, 0u);
    EXPECT_EQ(res.moves, 0u);
  }
}

TEST(Refiners, AlreadyOptimalStaysPut) {
  const auto g = two_cliques();
  Partition p;
  p.k = 2;
  p.assign = {0, 0, 0, 0, 1, 1, 1, 1};
  for (RefinerKind kind : {RefinerKind::kGreedy, RefinerKind::kKernighanLin,
                           RefinerKind::kFiducciaMattheyses}) {
    Partition q = p;
    const auto res = make_refiner(kind)->refine(g, q, RefineOptions{});
    EXPECT_EQ(res.cut_after, 1u);
    EXPECT_EQ(q.assign, p.assign) << make_refiner(kind)->name();
  }
}

// ---- parameterized: all refiners on various graphs preserve contracts ----

struct RefineParam {
  RefinerKind kind;
  std::size_t n;
  std::size_t m;
  std::uint32_t k;
  std::uint64_t seed;
};

class RefinerSweep : public ::testing::TestWithParam<RefineParam> {};

TEST_P(RefinerSweep, CutNeverIncreasesAndBalanceHolds) {
  const RefineParam prm = GetParam();
  const auto g = random_graph(prm.n, prm.m, prm.seed);
  Partition p = random_partition(prm.n, prm.k, prm.seed + 1);
  RefineOptions opt;
  opt.balance_tol = 0.25;
  opt.seed = prm.seed + 2;

  const std::uint64_t before = edge_cut(g, p);
  const double imb_before = imbalance(g, p);
  const auto res = make_refiner(prm.kind)->refine(g, p, opt);

  p.validate(prm.n);
  EXPECT_EQ(res.cut_before, before);
  EXPECT_LE(res.cut_after, before);
  EXPECT_EQ(res.cut_after, edge_cut(g, p));

  // Moves respect the limit: no part may exceed ceil(W/k · (1+tol)) — the
  // refiners' exact feasibility bound — unless it already did before
  // refinement started.
  const double limit = std::ceil(static_cast<double>(prm.n) / prm.k *
                                 (1.0 + opt.balance_tol));
  const auto loads = p.loads();
  for (auto load : loads) {
    EXPECT_LE(static_cast<double>(load),
              std::max(limit, imb_before * prm.n / prm.k + 1));
  }
}

std::string refiner_name(RefinerKind k) {
  switch (k) {
    case RefinerKind::kGreedy: return "Greedy";
    case RefinerKind::kKernighanLin: return "KL";
    case RefinerKind::kFiducciaMattheyses: return "FM";
  }
  return "?";
}

INSTANTIATE_TEST_SUITE_P(
    Contracts, RefinerSweep,
    ::testing::Values(
        RefineParam{RefinerKind::kGreedy, 60, 150, 2, 1},
        RefineParam{RefinerKind::kGreedy, 300, 900, 4, 2},
        RefineParam{RefinerKind::kGreedy, 800, 2400, 8, 3},
        RefineParam{RefinerKind::kKernighanLin, 60, 150, 2, 1},
        RefineParam{RefinerKind::kKernighanLin, 300, 900, 4, 2},
        RefineParam{RefinerKind::kKernighanLin, 800, 2400, 8, 3},
        RefineParam{RefinerKind::kFiducciaMattheyses, 60, 150, 2, 1},
        RefineParam{RefinerKind::kFiducciaMattheyses, 300, 900, 4, 2},
        RefineParam{RefinerKind::kFiducciaMattheyses, 800, 2400, 8, 3}),
    [](const auto& info) {
      return refiner_name(info.param.kind) + "_n" +
             std::to_string(info.param.n) + "_k" +
             std::to_string(info.param.k);
    });

// ---- initial partitioning ------------------------------------------------

TEST(InitialPartition, SpreadsInputGlobules) {
  const auto g = random_graph(64, 100, 9);
  std::vector<std::uint8_t> is_input(64, 0);
  for (int i = 0; i < 16; ++i) is_input[i] = 1;
  InitialOptions opt;
  opt.k = 4;
  const Partition p = initial_partition(g, is_input, opt);
  p.validate(64);
  // Each part gets inputs/k = 4 input globules (equal weights).
  std::vector<int> inputs_per_part(4, 0);
  for (int i = 0; i < 16; ++i) ++inputs_per_part[p.assign[i]];
  for (int n : inputs_per_part) EXPECT_EQ(n, 4);
}

TEST(InitialPartition, RespectsBalanceTolerance) {
  const auto g = random_graph(500, 800, 10);
  std::vector<std::uint8_t> is_input(500, 0);
  InitialOptions opt;
  opt.k = 5;
  opt.balance_tol = 0.10;
  const Partition p = initial_partition(g, is_input, opt);
  EXPECT_LE(imbalance(g, p), 1.11);
}

TEST(InitialPartition, HeavyGlobulesPlacedLeastLoaded) {
  // One giant globule plus dust: the giant sits alone-ish on its part.
  std::vector<std::uint32_t> weights(21, 1);
  weights[0] = 100;
  std::vector<EdgeTuple> no_edges;
  graph::WeightedGraph g(weights, no_edges);
  std::vector<std::uint8_t> is_input(21, 0);
  InitialOptions opt;
  opt.k = 2;
  const Partition p = initial_partition(g, is_input, opt);
  std::uint64_t with_giant = 0;
  for (int i = 1; i <= 20; ++i) {
    with_giant += (p.assign[i] == p.assign[0]);
  }
  EXPECT_LE(with_giant, 3u);  // nearly everything on the other part
}

TEST(InitialPartition, DeterministicBySeed) {
  const auto g = random_graph(100, 200, 11);
  std::vector<std::uint8_t> is_input(100, 0);
  InitialOptions opt;
  opt.k = 3;
  opt.seed = 42;
  EXPECT_EQ(initial_partition(g, is_input, opt).assign,
            initial_partition(g, is_input, opt).assign);
}

}  // namespace
}  // namespace pls::partition
