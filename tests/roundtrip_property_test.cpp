// Property sweep: for arbitrary generated circuits, the .bench writer and
// parser form an exact round trip (graph isomorphism by name), and all
// partitioners behave identically on the round-tripped circuit — i.e. the
// on-disk format is a faithful serialization of everything the system
// depends on.

#include <gtest/gtest.h>

#include "circuit/bench_io.hpp"
#include "circuit/circuit_stats.hpp"
#include "circuit/generator.hpp"
#include "framework/registry.hpp"
#include "partition/metrics.hpp"

namespace pls {
namespace {

struct RtParam {
  std::size_t gates;
  std::size_t inputs;
  std::size_t dffs;
  std::uint64_t seed;
};

class RoundTripSweep : public ::testing::TestWithParam<RtParam> {};

circuit::Circuit make(const RtParam& p) {
  circuit::GeneratorSpec spec;
  spec.num_comb_gates = p.gates;
  spec.num_inputs = p.inputs;
  spec.num_outputs = std::max<std::size_t>(1, p.gates / 40);
  spec.num_dffs = p.dffs;
  spec.seed = p.seed;
  return circuit::generate(spec);
}

TEST_P(RoundTripSweep, WriterParserAreInverse) {
  const circuit::Circuit orig = make(GetParam());
  const circuit::Circuit back =
      circuit::parse_bench_string(circuit::write_bench_string(orig), "rt");

  ASSERT_EQ(back.size(), orig.size());
  ASSERT_EQ(back.num_edges(), orig.num_edges());
  for (circuit::GateId g = 0; g < orig.size(); ++g) {
    const circuit::GateId h = back.find(orig.gate_name(g));
    ASSERT_NE(h, circuit::kInvalidGate);
    EXPECT_EQ(back.type(h), orig.type(g));
    EXPECT_EQ(back.is_output(h), orig.is_output(g));
    const auto of = orig.fanins(g);
    const auto bf = back.fanins(h);
    ASSERT_EQ(bf.size(), of.size());
    for (std::size_t i = 0; i < of.size(); ++i) {
      EXPECT_EQ(back.gate_name(bf[i]), orig.gate_name(of[i]));
    }
  }
  // Derived statistics agree wholesale.
  const auto so = circuit::compute_stats(orig);
  const auto sb = circuit::compute_stats(back);
  EXPECT_EQ(sb.depth, so.depth);
  EXPECT_EQ(sb.max_fanout, so.max_fanout);
  EXPECT_EQ(sb.flip_flops, so.flip_flops);
}

TEST_P(RoundTripSweep, PartitionersSeeTheSameGraph) {
  const circuit::Circuit orig = make(GetParam());
  const circuit::Circuit back =
      circuit::parse_bench_string(circuit::write_bench_string(orig), "rt");
  // Gate ids are assigned in declaration order, which the writer preserves
  // (inputs first, then gates by id), so deterministic partitioners must
  // produce identical assignments — and therefore identical cuts.
  for (const auto& name : framework::partitioner_names()) {
    const auto strategy = framework::make_partitioner(name);
    const auto po = strategy->run(orig, 4, 11);
    const auto pb = strategy->run(back, 4, 11);
    EXPECT_EQ(po.assign, pb.assign) << name;
    EXPECT_EQ(partition::edge_cut(orig, po), partition::edge_cut(back, pb))
        << name;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, RoundTripSweep,
    ::testing::Values(RtParam{50, 4, 0, 1}, RtParam{50, 4, 6, 2},
                      RtParam{200, 12, 16, 3}, RtParam{200, 12, 16, 4},
                      RtParam{700, 24, 40, 5}, RtParam{700, 24, 40, 6},
                      RtParam{1500, 32, 90, 7}),
    [](const auto& info) {
      return "g" + std::to_string(info.param.gates) + "_s" +
             std::to_string(info.param.seed);
    });

}  // namespace
}  // namespace pls
