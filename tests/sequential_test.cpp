// Tests for the sequential reference simulator on hand-built circuits with
// waveforms that can be predicted by hand.

#include <gtest/gtest.h>

#include "circuit/bench_io.hpp"
#include "circuit/circuit.hpp"
#include "logicsim/netlist_lps.hpp"
#include "logicsim/sequential.hpp"

namespace pls::logicsim {
namespace {

using circuit::GateType;

TEST(Sequential, InverterChainTracksStimulus) {
  // a -> n0 -> n1 (two inverters): after settling, n1 == a, n0 == !a.
  circuit::Circuit c;
  const auto a = c.add_input("a");
  const auto n0 = c.add_gate("n0", GateType::kNot, {a});
  const auto n1 = c.add_gate("n1", GateType::kNot, {n0});
  c.mark_output(n1);
  c.freeze();

  ModelOptions opt;
  opt.stim_period = 20;
  opt.stim_seed = 7;
  SimModel model = build_model(c, opt);
  // End at 90: the last vector the chain can fully absorb is at t=80
  // (a's transition reaches n1 by t=83).
  const SeqStats out = simulate_sequential(model.behaviours(), 90);

  const bool a_final = InputLp::vector_bit(7, a, 80 / 20);
  EXPECT_EQ(InputLp::output_of(out.final_states[a]), a_final);
  EXPECT_EQ(GateLp::output_of(out.final_states[n0]), !a_final);
  EXPECT_EQ(GateLp::output_of(out.final_states[n1]), a_final);
}

TEST(Sequential, PowerOnSettlesInvertedGates) {
  // NAND(a,b) with a=b=0 must settle to 1 even with no stimulus change.
  circuit::Circuit c;
  const auto a = c.add_input("a");
  const auto b = c.add_input("b");
  const auto g = c.add_gate("g", GateType::kNand, {a, b});
  c.freeze();

  ModelOptions opt;
  opt.stim_period = 1000000;  // effectively static inputs (vector 0 only)
  opt.stim_seed = 1;          // chosen so that not both inputs are 1
  SimModel model = build_model(c, opt);
  const SeqStats out = simulate_sequential(model.behaviours(), 50);

  const bool av = InputLp::output_of(out.final_states[a]);
  const bool bv = InputLp::output_of(out.final_states[b]);
  EXPECT_EQ(GateLp::output_of(out.final_states[g]), !(av && bv));
}

TEST(Sequential, DffDelaysDataByOneClock) {
  // in -> ff; ff samples every 10 starting at phase 5.
  circuit::Circuit c;
  const auto a = c.add_input("a");
  const auto ff = c.add_gate("ff", GateType::kDff, {a});
  c.mark_output(ff);
  c.freeze();

  ModelOptions opt;
  opt.clock_period = 10;
  opt.clock_phase = 5;
  opt.stim_period = 40;
  opt.stim_seed = 3;
  SimModel model = build_model(c, opt);
  const SeqStats out = simulate_sequential(model.behaviours(), 200);

  // Q must equal the input value at the last clock edge (t=195), which is
  // the vector applied at t=160 (index 4).
  const bool expected = InputLp::vector_bit(3, a, 4);
  EXPECT_EQ(DffLp::q_of(out.final_states[ff]), expected);
}

TEST(Sequential, EventCountScalesWithHorizon) {
  circuit::Circuit c;
  const auto a = c.add_input("a");
  c.add_gate("n0", GateType::kNot, {a});
  c.freeze();
  SimModel m1 = build_model(c);
  SimModel m2 = build_model(c);
  const auto short_run = simulate_sequential(m1.behaviours(), 100);
  const auto long_run = simulate_sequential(m2.behaviours(), 1000);
  EXPECT_GT(long_run.events_processed, short_run.events_processed);
}

TEST(Sequential, PerLpEventCountsSumToTotal) {
  const auto c = circuit::parse_bench_string(R"(
INPUT(a)
INPUT(b)
OUTPUT(y)
x = NAND(a, b)
f = DFF(x)
y = XOR(x, f)
)");
  SimModel model = build_model(c);
  const SeqStats out = simulate_sequential(model.behaviours(), 500);
  std::uint64_t sum = 0;
  for (auto n : out.per_lp_events) sum += n;
  EXPECT_EQ(sum, out.events_processed);
  EXPECT_GT(out.events_processed, 0u);
}

TEST(Sequential, DeterministicAcrossRuns) {
  const auto c = circuit::parse_bench_string(R"(
INPUT(a)
INPUT(b)
g1 = OR(a, b)
g2 = NOT(g1)
f = DFF(g2)
g3 = AND(g1, f)
OUTPUT(g3)
)");
  SimModel m1 = build_model(c);
  SimModel m2 = build_model(c);
  const auto r1 = simulate_sequential(m1.behaviours(), 400);
  const auto r2 = simulate_sequential(m2.behaviours(), 400);
  EXPECT_EQ(r1.events_processed, r2.events_processed);
  ASSERT_EQ(r1.final_states.size(), r2.final_states.size());
  for (std::size_t i = 0; i < r1.final_states.size(); ++i) {
    EXPECT_EQ(r1.final_states[i], r2.final_states[i]);
  }
}

}  // namespace
}  // namespace pls::logicsim
