// Unit tests for the util layer: RNG determinism and distribution, running
// statistics, CSV escaping, CLI parsing, table rendering, spin calibration.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "util/check.hpp"
#include "util/cli.hpp"
#include "util/csv.hpp"
#include "util/log.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace pls::util {
namespace {

TEST(Rng, DeterministicForEqualSeeds) {
  Rng a(123), b(123);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.next() == b.next());
  EXPECT_LT(same, 2);
}

TEST(Rng, BelowStaysInRange) {
  Rng r(7);
  for (std::uint64_t bound : {1ull, 2ull, 3ull, 10ull, 1000ull, 1ull << 40}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(r.below(bound), bound);
  }
}

TEST(Rng, BelowZeroOrOneBoundIsZero) {
  Rng r(9);
  EXPECT_EQ(r.below(0), 0u);
  EXPECT_EQ(r.below(1), 0u);
}

TEST(Rng, BelowIsRoughlyUniform) {
  Rng r(11);
  constexpr int kBuckets = 8;
  constexpr int kDraws = 80000;
  int counts[kBuckets] = {};
  for (int i = 0; i < kDraws; ++i) ++counts[r.below(kBuckets)];
  for (int c : counts) {
    EXPECT_NEAR(c, kDraws / kBuckets, kDraws / kBuckets * 0.1);
  }
}

TEST(Rng, RangeInclusive) {
  Rng r(13);
  bool lo_seen = false, hi_seen = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = r.range(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    lo_seen |= (v == -3);
    hi_seen |= (v == 3);
  }
  EXPECT_TRUE(lo_seen);
  EXPECT_TRUE(hi_seen);
}

TEST(Rng, UniformInUnitInterval) {
  Rng r(17);
  double sum = 0;
  for (int i = 0; i < 20000; ++i) {
    const double u = r.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 20000, 0.5, 0.02);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng r(19);
  std::vector<int> v{0, 1, 2, 3, 4, 5, 6, 7, 8, 9};
  auto w = v;
  r.shuffle(w);
  std::sort(w.begin(), w.end());
  EXPECT_EQ(v, w);
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng a(21);
  Rng child = a.split();
  // Child stream should not replicate the parent stream.
  Rng b(21);
  (void)b.split();
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (child.next() == b.next());
  EXPECT_LT(same, 2);
}

TEST(SplitMix64, KnownFirstValueIsStable) {
  SplitMix64 s(0);
  const auto v1 = s.next();
  SplitMix64 t(0);
  EXPECT_EQ(v1, t.next());
  EXPECT_NE(v1, t.next());
}

TEST(RunningStat, MeanAndVariance) {
  RunningStat s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_EQ(s.min(), 2.0);
  EXPECT_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStat, MergeMatchesCombinedStream) {
  RunningStat a, b, all;
  for (int i = 0; i < 50; ++i) {
    const double x = i * 0.7 - 3;
    (i % 2 ? a : b).add(x);
    all.add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_EQ(a.min(), all.min());
  EXPECT_EQ(a.max(), all.max());
}

TEST(RunningStat, EmptyIsZero) {
  RunningStat s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(Samples, PercentileInterpolates) {
  Samples s;
  for (int i = 1; i <= 100; ++i) s.add(i);
  EXPECT_DOUBLE_EQ(s.percentile(0), 1.0);
  EXPECT_DOUBLE_EQ(s.percentile(100), 100.0);
  EXPECT_NEAR(s.percentile(50), 50.5, 1e-9);
}

TEST(Samples, PercentileOfEmptyThrows) {
  Samples s;
  EXPECT_THROW(s.percentile(50), CheckError);
}

TEST(Samples, MeanStdDev) {
  Samples s;
  s.add(1);
  s.add(3);
  EXPECT_DOUBLE_EQ(s.mean(), 2.0);
  EXPECT_NEAR(s.stddev(), std::sqrt(2.0), 1e-12);
  EXPECT_EQ(s.min(), 1.0);
  EXPECT_EQ(s.max(), 3.0);
}

TEST(Histogram, BucketsAndClamping) {
  Histogram h(0, 10, 5);
  h.add(-1);   // clamps to first
  h.add(0.5);
  h.add(9.9);
  h.add(42);   // clamps to last
  EXPECT_EQ(h.total(), 4u);
  EXPECT_EQ(h.bucket(0), 2u);
  EXPECT_EQ(h.bucket(4), 2u);
  EXPECT_DOUBLE_EQ(h.bucket_lo(0), 0.0);
  EXPECT_DOUBLE_EQ(h.bucket_hi(4), 10.0);
  EXPECT_FALSE(h.ascii().empty());
}

TEST(Histogram, RejectsEmptyRange) {
  EXPECT_THROW(Histogram(1, 1, 4), CheckError);
  EXPECT_THROW(Histogram(0, 1, 0), CheckError);
}

TEST(Csv, EscapesSpecials) {
  EXPECT_EQ(CsvWriter::escape("plain"), "plain");
  EXPECT_EQ(CsvWriter::escape("a,b"), "\"a,b\"");
  EXPECT_EQ(CsvWriter::escape("say \"hi\""), "\"say \"\"hi\"\"\"");
  EXPECT_EQ(CsvWriter::escape("line\nbreak"), "\"line\nbreak\"");
}

TEST(Csv, WritesHeaderAndRows) {
  const std::string path = "/tmp/pls_csv_test.csv";
  {
    CsvWriter w(path, {"a", "b"});
    w.row({"1", "x,y"});
    w.row({"2", "z"});
    w.flush();
    EXPECT_EQ(w.rows_written(), 2u);
  }
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "a,b");
  std::getline(in, line);
  EXPECT_EQ(line, "1,\"x,y\"");
  std::remove(path.c_str());
}

TEST(Csv, RowWidthMismatchThrows) {
  CsvWriter w("/tmp/pls_csv_test2.csv", {"a", "b"});
  EXPECT_THROW(w.row({"only-one"}), CheckError);
  std::remove("/tmp/pls_csv_test2.csv");
}

TEST(Cli, ParsesFlagsAndPositionals) {
  Cli cli("test");
  cli.add_flag("nodes", "node count", "4");
  cli.add_flag("verbose", "chatty", "false");
  cli.add_flag("name", "a name", "def");
  const char* argv[] = {"prog", "--nodes=8", "--verbose", "pos1",
                        "--name", "abc", "pos2"};
  ASSERT_TRUE(cli.parse(7, argv));
  EXPECT_EQ(cli.get_int("nodes"), 8);
  EXPECT_TRUE(cli.get_bool("verbose"));
  EXPECT_EQ(cli.get("name"), "abc");
  ASSERT_EQ(cli.positional().size(), 2u);
  EXPECT_EQ(cli.positional()[0], "pos1");
}

TEST(Cli, UnknownFlagFails) {
  Cli cli("test");
  const char* argv[] = {"prog", "--bogus=1"};
  EXPECT_FALSE(cli.parse(2, argv));
}

TEST(Cli, DefaultsApply) {
  Cli cli("test");
  cli.add_flag("n", "count", "17");
  const char* argv[] = {"prog"};
  ASSERT_TRUE(cli.parse(1, argv));
  EXPECT_EQ(cli.get_int("n"), 17);
}

TEST(Cli, BadIntegerThrows) {
  Cli cli("test");
  cli.add_flag("n", "count", "17");
  const char* argv[] = {"prog", "--n=notanumber"};
  ASSERT_TRUE(cli.parse(2, argv));
  EXPECT_THROW(cli.get_int("n"), std::runtime_error);
}

TEST(Table, RendersAlignedGrid) {
  AsciiTable t({"circuit", "time"});
  t.add_row({"s5378", "91.66"});
  t.add_rule();
  t.add_row({"s9234", "529.39"});
  const std::string out = t.render();
  EXPECT_NE(out.find("s5378"), std::string::npos);
  EXPECT_NE(out.find("| circuit |"), std::string::npos);
  EXPECT_EQ(t.row_count(), 2u);
}

TEST(Table, NumFormatsAndNaN) {
  EXPECT_EQ(AsciiTable::num(1.23456, 2), "1.23");
  EXPECT_EQ(AsciiTable::num(std::nan(""), 2), "-");
}

TEST(Table, RowWidthMismatchThrows) {
  AsciiTable t({"a", "b"});
  EXPECT_THROW(t.add_row({"1"}), CheckError);
}

TEST(Timer, MeasuresElapsedTime) {
  WallTimer t;
  busy_spin_ns(2'000'000);  // 2 ms
  const double e = t.elapsed_seconds();
  EXPECT_GT(e, 0.0005);
  EXPECT_LT(e, 0.5);
}

TEST(Timer, SpinCalibrationIsSane) {
  // Any machine this runs on executes between 0.05 and 100 iterations/ns.
  EXPECT_GT(spin_iters_per_ns(), 0.05);
  EXPECT_LT(spin_iters_per_ns(), 100.0);
}

TEST(Timer, SpinDurationApproximatesRequest) {
  busy_spin_ns(1000);  // warm
  WallTimer t;
  busy_spin_ns(5'000'000);
  const double e = t.elapsed_seconds();
  EXPECT_GT(e, 0.002);
  EXPECT_LT(e, 0.1);
}

TEST(Check, ThrowsWithMessage) {
  try {
    PLS_CHECK_MSG(1 == 2, "math broke: " << 42);
    FAIL() << "expected CheckError";
  } catch (const CheckError& e) {
    EXPECT_NE(std::string(e.what()).find("math broke: 42"),
              std::string::npos);
  }
}

TEST(Check, PassingCheckIsSilent) {
  EXPECT_NO_THROW(PLS_CHECK(2 + 2 == 4));
}

TEST(Log, FormatLineWithoutTimestamps) {
  EXPECT_EQ(detail::format_line(LogLevel::kInfo, "hello", false, 99.0,
                                "node3"),
            "[pls INFO ] hello");
}

TEST(Log, FormatLineWithTimestampsAndTag) {
  EXPECT_EQ(detail::format_line(LogLevel::kWarn, "msg", true, 1.5, "node3"),
            "[pls WARN  +1.500s node3] msg");
  // No tag set: the offset still appears, no trailing tag.
  EXPECT_EQ(detail::format_line(LogLevel::kError, "boom", true, 0.0, ""),
            "[pls ERROR +0.000s] boom");
}

TEST(Log, TimestampToggleRoundTrips) {
  const bool before = log_timestamps();
  set_log_timestamps(true);
  EXPECT_TRUE(log_timestamps());
  set_log_timestamps(false);
  EXPECT_FALSE(log_timestamps());
  set_log_timestamps(before);
}

}  // namespace
}  // namespace pls::util
