// The coalescing comm fabric (src/warped/channel.hpp): the lock-free
// BatchMailbox must deliver every message exactly once in push order
// under producer contention and honor its probably_empty staleness
// contract; the HoldingHeap's lazy-deletion min-tracking must agree with
// a reference multiset through arbitrary push/pop interleavings; the
// SendCoalescer must obey its flush rules (size, age, disabled mode,
// explicit flush) and stamp delivery deadlines at flush time; and —
// the property the whole design hangs on — the Mattern GVT accounting
// must treat a buffered batch of n messages as exactly n transients:
// counted at add time, blocking round completion until drained, with
// buffered minima holding the sender's report down.  Finally, live
// migration through the coalesced channel must commit bit-identical
// results with coalescing on and off.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <memory>
#include <set>
#include <thread>
#include <tuple>
#include <vector>

#include "util/rng.hpp"
#include "warped/channel.hpp"
#include "warped/gvt.hpp"
#include "warped/kernel.hpp"

namespace pls::warped {
namespace {

InFlight make_msg(SimTime recv_time, std::uint64_t seq,
                  std::uint64_t epoch = 0) {
  InFlight f;
  f.seq = seq;
  f.epoch = epoch;
  f.event.recv_time = recv_time;
  f.event.value = seq * 0x9e3779b97f4a7c15ULL;
  return f;
}

std::unique_ptr<Batch> make_batch(std::uint64_t first_seq, std::size_t n) {
  auto b = std::make_unique<Batch>();
  for (std::size_t i = 0; i < n; ++i) {
    b->msgs.push_back(make_msg(100 + first_seq + i, first_seq + i));
  }
  return b;
}

// ---- BatchMailbox ----------------------------------------------------------

TEST(BatchMailbox, DrainPreservesContentAndPushOrder) {
  BatchMailbox box;
  box.push(make_batch(0, 3));
  box.push(make_batch(3, 1));
  box.push(make_batch(4, 5));

  std::vector<InFlight> out;
  EXPECT_EQ(box.drain(out), 9u);
  ASSERT_EQ(out.size(), 9u);
  // Batches come out in push order, messages in batch order.
  for (std::uint64_t i = 0; i < 9; ++i) {
    EXPECT_EQ(out[i].seq, i);
    EXPECT_EQ(out[i].event.recv_time, 100 + i);
    EXPECT_EQ(out[i].event.value, i * 0x9e3779b97f4a7c15ULL);
  }
  EXPECT_TRUE(box.probably_empty());
  EXPECT_EQ(box.drain(out), 0u);
}

TEST(BatchMailbox, DrainAppendsWithoutDisturbingExistingContent) {
  BatchMailbox box;
  box.push(make_batch(10, 2));
  std::vector<InFlight> out;
  out.push_back(make_msg(1, 99));
  EXPECT_EQ(box.drain(out), 2u);
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[0].seq, 99u);
  EXPECT_EQ(out[1].seq, 10u);
  EXPECT_EQ(out[2].seq, 11u);
}

TEST(BatchMailbox, ProbablyEmptyStalenessContract) {
  BatchMailbox box;
  EXPECT_TRUE(box.probably_empty());
  // Once push() has returned, every probe must see "not empty" until the
  // content is drained — the direction that would deadlock the receive
  // loop if it ever went stale.
  box.push(make_batch(0, 4));
  EXPECT_FALSE(box.probably_empty());
  EXPECT_FALSE(box.probably_empty());
  std::vector<InFlight> out;
  EXPECT_EQ(box.drain(out), 4u);
  EXPECT_TRUE(box.probably_empty());
}

TEST(BatchMailbox, DestructorFreesUndrainedChain) {
  // Leak-checked by ASan/LSan in the sanitizer CI jobs.
  BatchMailbox box;
  box.push(make_batch(0, 8));
  box.push(make_batch(8, 8));
}

TEST(BatchMailbox, MpscStressDeliversEveryMessageExactlyOnce) {
  constexpr std::uint32_t kProducers = 4;
  constexpr std::uint64_t kBatchesPerProducer = 500;
  constexpr std::uint64_t kMsgsPerBatch = 8;
  constexpr std::uint64_t kTotal =
      kProducers * kBatchesPerProducer * kMsgsPerBatch;

  BatchMailbox box;
  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (std::uint32_t p = 0; p < kProducers; ++p) {
    producers.emplace_back([&box, p] {
      for (std::uint64_t i = 0; i < kBatchesPerProducer; ++i) {
        // Globally unique seqs: producer p owns [p*N, (p+1)*N).
        const std::uint64_t first =
            (p * kBatchesPerProducer + i) * kMsgsPerBatch;
        box.push(make_batch(first, kMsgsPerBatch));
      }
    });
  }

  // Consume concurrently with production (single consumer, per contract).
  std::vector<InFlight> got;
  got.reserve(kTotal);
  while (got.size() < kTotal) {
    if (box.drain(got) == 0) std::this_thread::yield();
  }
  for (auto& t : producers) t.join();
  EXPECT_EQ(box.drain(got), 0u);
  EXPECT_TRUE(box.probably_empty());

  ASSERT_EQ(got.size(), kTotal);
  std::vector<bool> seen(kTotal, false);
  for (const InFlight& m : got) {
    ASSERT_LT(m.seq, kTotal);
    EXPECT_FALSE(seen[m.seq]) << "duplicate seq " << m.seq;
    seen[m.seq] = true;
    EXPECT_EQ(m.event.recv_time, 100 + m.seq);
  }
  // Per-producer batch order survives even though batches interleave.
  std::vector<std::uint64_t> last(kProducers, 0);
  for (const InFlight& m : got) {
    const std::uint64_t p = m.seq / (kBatchesPerProducer * kMsgsPerBatch);
    EXPECT_GE(m.seq + 1, last[p]) << "producer " << p << " reordered";
    last[p] = m.seq + 1;
  }
}

// ---- HoldingHeap -----------------------------------------------------------

TEST(HoldingHeap, PropertyAgainstReferenceMultiset) {
  // Random push/pop interleavings vs a reference: pops must come out in
  // (deliver_at_ns, seq) order and min_recv_time() must always equal the
  // minimum recv_time over the live contents.
  HoldingHeap heap;
  std::multiset<std::tuple<std::uint64_t, std::uint64_t, SimTime>> ref;
  std::multiset<SimTime> live_recv;
  util::Rng rng(1234);
  std::uint64_t seq = 0;

  for (int step = 0; step < 20000; ++step) {
    const bool push = heap.empty() || (rng.next() % 3) != 0;
    if (push) {
      InFlight f = make_msg(rng.next() % 512, seq++);
      f.deliver_at_ns = rng.next() % 1024;
      ref.emplace(f.deliver_at_ns, f.seq, f.event.recv_time);
      live_recv.insert(f.event.recv_time);
      heap.push(std::move(f));
    } else {
      const auto expect = *ref.begin();
      ref.erase(ref.begin());
      const InFlight got = heap.pop();
      EXPECT_EQ(got.deliver_at_ns, std::get<0>(expect));
      EXPECT_EQ(got.seq, std::get<1>(expect));
      EXPECT_EQ(got.event.recv_time, std::get<2>(expect));
      live_recv.erase(live_recv.find(got.event.recv_time));
    }
    EXPECT_EQ(heap.size(), ref.size());
    const SimTime want =
        live_recv.empty() ? kEndOfTime : *live_recv.begin();
    EXPECT_EQ(heap.min_recv_time(), want) << "step " << step;
    if (!ref.empty()) {
      EXPECT_EQ(heap.top().deliver_at_ns, std::get<0>(*ref.begin()));
      EXPECT_EQ(heap.next_deadline_ns(), std::get<0>(*ref.begin()));
    } else {
      EXPECT_EQ(heap.next_deadline_ns(), 0u);
    }
  }
}

// ---- SendCoalescer ---------------------------------------------------------

TEST(SendCoalescer, BurstCoalescesIntoOneBatchPerDestination) {
  InProcChannel ch(3);
  SendCoalescer co;
  co.configure(&ch, CoalesceConfig{});

  for (std::uint64_t i = 0; i < 5; ++i) co.add(1, make_msg(50 + i, i), 0, 0);
  for (std::uint64_t i = 5; i < 8; ++i) co.add(2, make_msg(50 + i, i), 0, 0);
  EXPECT_EQ(co.buffered(), 8u);
  EXPECT_EQ(co.stats().batches_flushed, 0u);
  EXPECT_TRUE(ch.probably_empty(1));

  EXPECT_EQ(co.flush_all(1000, 0), 8u);
  EXPECT_EQ(co.buffered(), 0u);
  EXPECT_EQ(co.stats().batches_flushed, 2u);
  EXPECT_EQ(co.stats().msgs_flushed, 8u);
  EXPECT_EQ(co.stats().max_batch_msgs, 5u);

  std::vector<InFlight> out;
  EXPECT_EQ(ch.drain(1, out), 5u);
  EXPECT_EQ(ch.drain(2, out), 3u);
  EXPECT_TRUE(ch.probably_empty(0));
  // Content and field passthrough (epoch, seq, payload).
  for (std::uint64_t i = 0; i < 8; ++i) {
    EXPECT_EQ(out[i].seq, i);
    EXPECT_EQ(out[i].event.recv_time, 50 + i);
  }
  // Nothing ever went to destination 0.
  EXPECT_EQ(ch.drain(0, out), 0u);
  EXPECT_EQ(co.flush_all(2000, 0), 0u);  // idle flush is a no-op
}

TEST(SendCoalescer, SizeBoundFlushesFromInsideAdd) {
  InProcChannel ch(2);
  SendCoalescer co;
  CoalesceConfig cfg;
  cfg.max_batch_msgs = 4;
  co.configure(&ch, cfg);

  for (std::uint64_t i = 0; i < 3; ++i) co.add(1, make_msg(10, i), 0, 0);
  EXPECT_EQ(co.stats().batches_flushed, 0u);
  co.add(1, make_msg(10, 3), 0, 0);  // reaches the bound -> flush
  EXPECT_EQ(co.stats().batches_flushed, 1u);
  EXPECT_EQ(co.buffered(), 0u);
  co.add(1, make_msg(10, 4), 0, 0);  // next buffer starts fresh
  EXPECT_EQ(co.buffered(), 1u);

  std::vector<InFlight> out;
  EXPECT_EQ(ch.drain(1, out), 4u);
  EXPECT_EQ(co.stats().max_batch_msgs, 4u);
}

TEST(SendCoalescer, AgeBoundFlushesStaleBuffer) {
  InProcChannel ch(2);
  SendCoalescer co;
  CoalesceConfig cfg;
  cfg.max_batch_age_ns = 1000;
  co.configure(&ch, cfg);

  co.add(1, make_msg(10, 0), /*now_ns=*/5000, 0);
  co.add(1, make_msg(10, 1), /*now_ns=*/5900, 0);  // age 900 < 1000: buffered
  EXPECT_EQ(co.stats().batches_flushed, 0u);
  co.add(1, make_msg(10, 2), /*now_ns=*/6000, 0);  // age 1000: flush
  EXPECT_EQ(co.stats().batches_flushed, 1u);
  EXPECT_EQ(co.stats().msgs_flushed, 3u);
  EXPECT_EQ(co.buffered(), 0u);
}

TEST(SendCoalescer, DisabledModeFlushesEveryAddAsSingletonBatch) {
  InProcChannel ch(2);
  SendCoalescer co;
  CoalesceConfig cfg;
  cfg.enabled = false;
  co.configure(&ch, cfg);

  for (std::uint64_t i = 0; i < 6; ++i) {
    co.add(1, make_msg(10 + i, i), 100 * i, 7);
    EXPECT_EQ(co.buffered(), 0u);
  }
  EXPECT_EQ(co.stats().batches_flushed, 6u);
  EXPECT_EQ(co.stats().msgs_flushed, 6u);
  EXPECT_EQ(co.stats().max_batch_msgs, 1u);
  std::vector<InFlight> out;
  EXPECT_EQ(ch.drain(1, out), 6u);
  // Disabled mode pays the wire per message: deadline = its own add time
  // (== flush time) + latency.
  for (std::uint64_t i = 0; i < 6; ++i) {
    EXPECT_EQ(out[i].deliver_at_ns, 100 * i + 7);
  }
}

TEST(SendCoalescer, DeliveryDeadlineStampedAtFlushTime) {
  // The wire is paid when the batch leaves, not when a message is
  // buffered: all messages of one batch share flush_time + latency, so a
  // coalesced delivery is never earlier than the per-message baseline's.
  InProcChannel ch(2);
  SendCoalescer co;
  co.configure(&ch, CoalesceConfig{});

  co.add(1, make_msg(10, 0), /*now_ns=*/100, /*latency_ns=*/50);
  co.add(1, make_msg(11, 1), /*now_ns=*/200, /*latency_ns=*/50);
  co.flush_dest(1, /*now_ns=*/300, /*latency_ns=*/50);

  std::vector<InFlight> out;
  ASSERT_EQ(ch.drain(1, out), 2u);
  EXPECT_EQ(out[0].deliver_at_ns, 350u);
  EXPECT_EQ(out[1].deliver_at_ns, 350u);
}

TEST(SendCoalescer, MinRecvTimeTracksBufferedAndResetsOnFlush) {
  InProcChannel ch(3);
  SendCoalescer co;
  co.configure(&ch, CoalesceConfig{});

  EXPECT_EQ(co.min_recv_time(), kEndOfTime);
  co.add(1, make_msg(70, 0), 0, 0);
  EXPECT_EQ(co.min_recv_time(), 70u);
  co.add(2, make_msg(40, 1), 0, 0);
  EXPECT_EQ(co.min_recv_time(), 40u);
  co.add(1, make_msg(90, 2), 0, 0);
  EXPECT_EQ(co.min_recv_time(), 40u);

  co.flush_dest(2, 0, 0);  // the 40 leaves; 70 still buffered for dest 1
  EXPECT_EQ(co.min_recv_time(), 70u);
  co.flush_all(0, 0);
  EXPECT_EQ(co.min_recv_time(), kEndOfTime);
}

// ---- GVT transient accounting under coalescing -----------------------------

TEST(GvtCoalescing, BufferedWhiteBlocksRoundUntilDrained) {
  // Node 0 buffers (and counts) a white message for node 1, then both
  // nodes join round 1.  The round must NOT complete while the message
  // sits in the send buffer or in the mailbox; after the drain is
  // counted, it completes and the late-white fold bounds GVT by the
  // message's receive time.
  GvtCoordinator gvt(2);
  InProcChannel ch(2);
  SendCoalescer co;
  co.configure(&ch, CoalesceConfig{});

  gvt.start_round(1);
  // Epoch 0 send, counted at buffer-add time (the accounting boundary).
  gvt.count_send(0, 0);
  co.add(1, make_msg(/*recv_time=*/42, 0, /*epoch=*/0), 0, 0);

  // Sender joins with the coalescer minimum folded in (besides it, it
  // holds nothing).  Receiver joins idle.
  gvt.join(0, 1, std::min<SimTime>(kEndOfTime, co.min_recv_time()));
  gvt.join(1, 1, kEndOfTime);
  ASSERT_TRUE(gvt.all_joined(1));

  // Buffered-but-unflushed: one white sent, none received.
  EXPECT_FALSE(gvt.whites_drained(1));

  // Flushed but not yet drained: still a transient.
  co.flush_all(0, 0);
  EXPECT_FALSE(gvt.whites_drained(1));

  // Drain and count: the round completes.
  std::vector<InFlight> got;
  ASSERT_EQ(ch.drain(1, got), 1u);
  gvt.count_drain(1, got[0].epoch, /*my_round=*/1, got[0].event.recv_time);
  EXPECT_TRUE(gvt.whites_drained(1));

  // Both paths bound the estimate by the message: the sender's report
  // (via min_recv_time) and the receiver's late-white fold.
  EXPECT_EQ(gvt.round_min(), 42u);
}

TEST(GvtCoalescing, BatchOfNCountsAsNTransients) {
  // Property: across random buffering/flushing/draining, the white
  // counters balance exactly when every individually-counted message has
  // been individually drain-counted — batch boundaries are invisible.
  constexpr std::uint32_t kNodes = 3;
  GvtCoordinator gvt(kNodes);
  InProcChannel ch(kNodes);
  std::vector<SendCoalescer> co(kNodes);
  for (auto& c : co) c.configure(&ch, CoalesceConfig{});
  util::Rng rng(99);
  gvt.start_round(1);

  std::uint64_t sent = 0;
  std::uint64_t drained = 0;
  std::vector<InFlight> got;
  for (int step = 0; step < 5000; ++step) {
    const std::uint32_t src = rng.next() % kNodes;
    const std::uint32_t dst = (src + 1 + rng.next() % (kNodes - 1)) % kNodes;
    switch (rng.next() % 4) {
      case 0:
      case 1: {  // buffer one white message (counted at add)
        gvt.count_send(src, 0);
        ++sent;
        co[src].add(dst, make_msg(rng.next() % 1000, sent, 0), 0, 0);
        break;
      }
      case 2:  // flush somebody
        co[src].flush_all(0, 0);
        break;
      case 3: {  // drain an endpoint, counting per message
        got.clear();
        ch.drain(dst, got);
        for (const InFlight& m : got) {
          gvt.count_drain(dst, m.epoch, 1, m.event.recv_time);
          ++drained;
        }
        break;
      }
    }
    // whites_drained tracks exactly the add-counted-minus-drain-counted
    // transient population, never batch counts.
    EXPECT_EQ(gvt.whites_drained(1), sent == drained) << "step " << step;
  }

  // Drain everything down and confirm balance.
  for (auto& c : co) c.flush_all(0, 0);
  for (std::uint32_t n = 0; n < kNodes; ++n) {
    got.clear();
    ch.drain(n, got);
    for (const InFlight& m : got) {
      gvt.count_drain(n, m.epoch, 1, m.event.recv_time);
      ++drained;
    }
  }
  EXPECT_EQ(sent, drained);
  EXPECT_TRUE(gvt.whites_drained(1));
}

// ---- end-to-end: live migration through the coalesced channel --------------

// Same star as the kernel-matrix tests: all cross-LP edges touch the hub.
class HubLp final : public LogicalProcess {
 public:
  HubLp(LpId first_spoke, LpId num_spokes, SimTime period)
      : first_(first_spoke), n_(num_spokes), period_(period) {}

  void init(Context& ctx) override {
    if (period_ <= ctx.end_time()) ctx.schedule_self(period_);
  }

  void execute(Context& ctx, EventBatch batch) override {
    LpState& s = ctx.state();
    bool tick = false;
    for (const auto& e : batch) {
      if (e.port == kTickPort) tick = true;
      else s.b = s.b * 31 + e.value;
    }
    if (!tick) return;
    s.a += 1;
    if (ctx.now() + 1 <= ctx.end_time()) {
      for (LpId i = 0; i < n_; ++i) {
        ctx.send(first_ + i, ctx.now() + 1, 0, s.a + i);
      }
    }
    if (ctx.now() + period_ <= ctx.end_time()) {
      ctx.schedule_self(ctx.now() + period_);
    }
  }

 private:
  LpId first_;
  LpId n_;
  SimTime period_;
};

class SpokeLp final : public LogicalProcess {
 public:
  explicit SpokeLp(LpId hub) : hub_(hub) {}

  void init(Context&) override {}

  void execute(Context& ctx, EventBatch batch) override {
    LpState& s = ctx.state();
    for (const auto& e : batch) {
      if (e.port == kTickPort) continue;
      s.a += e.value;
      if (ctx.now() + 1 <= ctx.end_time()) {
        ctx.send(hub_, ctx.now() + 1, 0, s.a ^ (s.a >> 3));
      }
    }
  }

 private:
  LpId hub_;
};

RunStats run_migrating_star(std::uint32_t nodes, bool coalesce) {
  constexpr LpId kSpokes = 14;
  std::vector<std::unique_ptr<LogicalProcess>> owners;
  owners.push_back(std::make_unique<HubLp>(1, kSpokes, 7));
  for (LpId i = 0; i < kSpokes; ++i) {
    owners.push_back(std::make_unique<SpokeLp>(0));
  }
  std::vector<LogicalProcess*> lps;
  for (auto& o : owners) lps.push_back(o.get());

  KernelConfig cfg;
  cfg.end_time = 400;
  cfg.num_nodes = nodes;
  cfg.network.latency_ns = 15000;
  cfg.network.send_overhead_ns = 500;
  cfg.gvt_interval_us = 500;
  cfg.coalesce.enabled = coalesce;
  // Rotate every LP (hub included) to the next node at every epoch:
  // migration packages continually ride the coalesced channel.
  cfg.repartition_interval = 2;
  cfg.repartition_hook =
      [nodes](const RepartitionRequest& req) -> std::vector<std::uint32_t> {
    std::vector<std::uint32_t> next(req.current.size());
    for (std::size_t i = 0; i < next.size(); ++i) {
      next[i] = (req.current[i] + 1) % nodes;
    }
    return next;
  };
  std::vector<std::uint32_t> node_of(kSpokes + 1);
  for (LpId i = 0; i <= kSpokes; ++i) node_of[i] = i % nodes;
  Kernel kernel(lps, node_of, cfg);
  return kernel.run();
}

TEST(CoalescedMigration, LiveMigrationResultsAreBitIdenticalOnVsOff) {
  const RunStats off = run_migrating_star(4, /*coalesce=*/false);
  const RunStats on = run_migrating_star(4, /*coalesce=*/true);

  // Migration actually happened in both runs and nothing got lost.
  EXPECT_GT(on.totals.lps_migrated_out, 0u);
  EXPECT_EQ(on.totals.lps_migrated_out, on.totals.lps_migrated_in);
  EXPECT_GT(off.totals.lps_migrated_out, 0u);

  ASSERT_EQ(on.final_states.size(), off.final_states.size());
  for (std::size_t i = 0; i < off.final_states.size(); ++i) {
    EXPECT_EQ(on.final_states[i], off.final_states[i]) << "LP " << i;
  }
  EXPECT_EQ(on.totals.events_committed, off.totals.events_committed);
  EXPECT_EQ(on.final_gvt, kEndOfTime);
  EXPECT_EQ(off.final_gvt, kEndOfTime);
}

}  // namespace
}  // namespace pls::warped
