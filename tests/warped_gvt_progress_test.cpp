// GVT progress regression test: the asynchronous Mattern-style GVT must
// drive a deterministic small-circuit simulation to completion within a
// hard wall-clock budget (the seed kernel's barrier-coupled GVT livelocked
// exactly here when node threads outnumbered cores), and the Time Warp
// accounting — rollback and anti-message bookkeeping, node totals, per-LP
// attribution — must be self-consistent afterwards.

#include <gtest/gtest.h>

#include "circuit/generator.hpp"
#include "framework/driver.hpp"
#include "logicsim/equivalence.hpp"
#include "util/timer.hpp"

namespace pls {
namespace {

// Far above anything observed (~0.3 s on one core), far below the 300 s
// ctest timeout: a regression to timeslice-granularity progress trips this
// long before CI kills the binary.
constexpr double kWallBudgetSeconds = 60.0;

const circuit::Circuit& small_circuit() {
  static const circuit::Circuit c = [] {
    circuit::GeneratorSpec spec;
    spec.name = "gvt_progress";
    spec.num_comb_gates = 300;
    spec.num_inputs = 12;
    spec.num_outputs = 6;
    spec.num_dffs = 20;
    spec.seed = 77;
    return circuit::generate(spec);
  }();
  return c;
}

framework::DriverConfig progress_config() {
  framework::DriverConfig cfg;
  cfg.end_time = 500;
  cfg.seed = 7;
  cfg.event_cost_ns = 0;
  cfg.send_overhead_ns = 0;
  cfg.latency_ns = 10000;  // enough wall latency to provoke stragglers
  cfg.gvt_interval_us = 500;
  // A healthy run always makes progress, so even a tight watchdog must
  // never fire; if the kernel regresses into a stall, this turns the hang
  // into a diagnosed failure within seconds.
  cfg.watchdog_timeout_ms = 5000;
  return cfg;
}

void check_accounting(const warped::RunStats& run) {
  // Every processed event was either committed or rolled back.
  EXPECT_EQ(run.totals.events_processed,
            run.totals.events_committed + run.totals.events_rolled_back);

  // Per-LP attribution must re-sum to the node totals.
  std::uint64_t lp_processed = 0;
  std::uint64_t lp_rolled_back = 0;
  std::uint64_t lp_rollbacks = 0;
  for (const auto& lp : run.per_lp) {
    lp_processed += lp.events_processed;
    lp_rolled_back += lp.events_rolled_back;
    lp_rollbacks += lp.rollbacks;
    // A single rollback cannot undo more events than the LP ever lost,
    // and an LP with undone events must have rolled back at least once.
    EXPECT_LE(lp.max_rollback_depth, lp.events_rolled_back);
    // (The converse — rollbacks > 0 implies a positive depth — does NOT
    // hold: a straggler landing exactly at a replay frontier rolls back
    // without undoing any processed batch.)
    if (lp.events_rolled_back > 0) {
      EXPECT_GT(lp.rollbacks, 0u);
    }
  }
  EXPECT_EQ(lp_processed, run.totals.events_processed);
  EXPECT_EQ(lp_rolled_back, run.totals.events_rolled_back);
  EXPECT_EQ(lp_rollbacks, run.totals.total_rollbacks());
}

TEST(GvtProgress, CompletesUnderHardTimeoutAcrossNodeCounts) {
  const auto& c = small_circuit();
  const auto seq = framework::run_sequential(c, progress_config());

  for (std::uint32_t nodes : {2u, 4u, 8u}) {
    framework::DriverConfig cfg = progress_config();
    cfg.num_nodes = nodes;

    util::WallTimer timer;
    const auto par = framework::run_parallel(c, cfg);
    const double wall = timer.elapsed_seconds();

    EXPECT_LT(wall, kWallBudgetSeconds) << "nodes=" << nodes;
    EXPECT_FALSE(par.run.stalled) << "nodes=" << nodes;
    EXPECT_FALSE(par.run.out_of_memory) << "nodes=" << nodes;
    EXPECT_EQ(par.run.final_gvt, warped::kEndOfTime) << "nodes=" << nodes;
    EXPECT_GT(par.run.gvt_cycles, 0u) << "nodes=" << nodes;
    EXPECT_TRUE(logicsim::check_equivalence(par.run, seq).ok())
        << "nodes=" << nodes;
    check_accounting(par.run);
  }
}

TEST(GvtProgress, RollbackStormStaysLiveAndConsistent) {
  // Maximal cross-node traffic + long latency: the straggler factory that
  // used to wedge the seed kernel.  Must still terminate promptly with
  // coherent rollback/anti-message counters.
  framework::DriverConfig cfg = progress_config();
  cfg.partitioner = "Random";
  cfg.num_nodes = 4;
  cfg.latency_ns = 40000;

  util::WallTimer timer;
  const auto par = framework::run_parallel(small_circuit(), cfg);
  EXPECT_LT(timer.elapsed_seconds(), kWallBudgetSeconds);
  EXPECT_FALSE(par.run.stalled);
  EXPECT_EQ(par.run.final_gvt, warped::kEndOfTime);
  EXPECT_GT(par.run.totals.total_rollbacks(), 0u);
  check_accounting(par.run);

  // A secondary rollback is anti-message-induced, so cancellations must
  // have flowed: either across nodes (counted) or within one.
  if (par.run.totals.secondary_rollbacks > 0 &&
      par.run.totals.intra_node_events == 0) {
    EXPECT_GT(par.run.totals.anti_messages_sent, 0u);
  }
}

TEST(GvtProgress, RepeatedRunsTerminateIdentically) {
  // Three consecutive runs (fresh thread interleavings each time) must all
  // terminate in budget with identical committed results — the reliability
  // bar the seed kernel failed.
  const auto& c = small_circuit();
  framework::DriverConfig cfg = progress_config();
  cfg.num_nodes = 4;

  std::vector<warped::LpState> first;
  for (int rep = 0; rep < 3; ++rep) {
    util::WallTimer timer;
    const auto par = framework::run_parallel(c, cfg);
    EXPECT_LT(timer.elapsed_seconds(), kWallBudgetSeconds) << "rep=" << rep;
    EXPECT_FALSE(par.run.stalled) << "rep=" << rep;
    EXPECT_EQ(par.run.final_gvt, warped::kEndOfTime) << "rep=" << rep;
    check_accounting(par.run);
    if (rep == 0) {
      first = par.run.final_states;
    } else {
      EXPECT_EQ(par.run.final_states, first) << "rep=" << rep;
    }
  }
}

}  // namespace
}  // namespace pls
